# Development entry points for the Sieve reproduction.

GO ?= go

.PHONY: all build test test-short test-race bench bench-compare bench-stream bench-serve bench-obs bench-load bench-sampler bench-all loadtest vet fmt fuzz-smoke serve experiments record report clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-checks the parallel stratification/k-sweep/KDE paths.
test-race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

# Hot-path benchmarks (stratification, PKS k-sweep, KDE grid), sequential vs
# parallel, recorded to BENCH_parallel.json (go test -json event stream) so
# future PRs have a perf trajectory to diff against.
bench:
	$(GO) test -run XXX -bench 'BenchmarkStratify|BenchmarkPKSSelect|BenchmarkKDEGrid' \
		-benchmem -benchtime 10x -json . > BENCH_parallel.json
	@echo "benchmark event stream written to BENCH_parallel.json"

# Re-run the hot-path benchmarks and diff them against the checked-in
# BENCH_parallel.json with the repo's own comparison tool (benchstat-style
# old → new deltas, no external dependency).
bench-compare:
	$(GO) test -run XXX -bench 'BenchmarkStratify|BenchmarkPKSSelect|BenchmarkKDEGrid' \
		-benchmem -benchtime 10x -json . > BENCH_parallel.new.json
	$(GO) run ./cmd/benchcmp BENCH_parallel.json BENCH_parallel.new.json
	@rm -f BENCH_parallel.new.json

# Streaming-vs-materialized ingestion: allocs/op of the streaming sampler
# must stay flat as the invocation count grows (bounded by kernels ×
# reservoir), recorded to BENCH_stream.json.
bench-stream:
	$(GO) test -run XXX -bench 'BenchmarkSampleStream' \
		-benchmem -benchtime 1x -json . > BENCH_stream.json
	@echo "benchmark event stream written to BENCH_stream.json"

# Plan-service request latency: a full cache-miss sampling request vs the
# content-hash cache-hit fast path, recorded to BENCH_serve.json.
bench-serve:
	$(GO) test -run XXX -bench 'BenchmarkServe' \
		-benchmem -benchtime 1x -json ./internal/server > BENCH_serve.json
	@echo "benchmark event stream written to BENCH_serve.json"

# Observability overhead: the full sampling pipeline with no collector vs one
# recording every stage span, recorded to BENCH_obs.json. The two sub-
# benchmarks must stay within ~2% of each other.
bench-obs:
	$(GO) test -run XXX -bench 'BenchmarkSample$$' \
		-benchmem -benchtime 1x -json . > BENCH_obs.json
	@echo "benchmark event stream written to BENCH_obs.json"

# Quick load-harness smoke against a locally started sieved: 5 seconds of
# closed-loop mixed-scenario traffic, report to stdout (CI runs the same
# shape; see docs/load.md).
loadtest:
	$(GO) build -o /tmp/sieved-loadtest ./cmd/sieved
	/tmp/sieved-loadtest -addr 127.0.0.1:8372 -log-level warn & \
	  PID=$$!; trap "kill $$PID" EXIT; sleep 0.5; \
	  $(GO) run ./cmd/sieveload -targets http://127.0.0.1:8372 \
	    -duration 5s -ramp 0:8 -budget 8 -snapshot 0 -out -

# Refresh the checked-in BENCH_load.json: two peered replicas, a zipfian and
# a uniform pass over the same catalog (see scripts/bench_load.sh for the
# tunables).
bench-load:
	./scripts/bench_load.sh

# Per-methodology planning cost: one sub-benchmark per registered sampling
# strategy (sieve, pks, twophase, rss — BenchmarkSamplerPlan iterates the
# registry, so a new strategy shows up automatically), recorded to
# BENCH_sampler.json. See docs/sampling-methods.md.
bench-sampler:
	$(GO) test -run XXX -bench 'BenchmarkSamplerPlan' \
		-benchmem -benchtime 10x -json ./internal/sampler > BENCH_sampler.json
	@echo "benchmark event stream written to BENCH_sampler.json"

# Sample observability report + Chrome trace for the checked-in lmc fixture
# (CI runs the same as a smoke test of the -report/-trace-out surface).
report:
	$(GO) run ./cmd/sieve -profile-in testdata/profile_lmc_scale0.01.csv \
		-report obs_report.json -trace-out obs_trace.json
	@echo "wrote obs_report.json and obs_trace.json"

# Run the sieved plan service on the default port.
serve:
	$(GO) run ./cmd/sieved -addr :8372

# Short fuzz pass over every profiler CSV fuzz target (CI runs the same).
fuzz-smoke:
	@for t in $$($(GO) test ./internal/profiler -list 'Fuzz.*' | grep '^Fuzz'); do \
		echo "fuzzing $$t"; \
		$(GO) test ./internal/profiler -run XXX -fuzz "^$$t$$" -fuzztime 10s || exit 1; \
	done

# One iteration of every figure/ablation benchmark with its metrics.
bench-all:
	$(GO) test -run XXX -bench . -benchmem -benchtime 1x .

# Regenerate every table and figure at the default scale.
experiments:
	$(GO) run ./cmd/experiments -experiment all

# Refresh the checked-in experiment record.
record:
	$(GO) run ./cmd/experiments -experiment all -scale 0.04 > experiments_scale0.04.txt

clean:
	$(GO) clean ./...
