# Development entry points for the Sieve reproduction.

GO ?= go

.PHONY: all build test test-short bench vet fmt experiments record clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

# One iteration of every figure/ablation benchmark with its metrics.
bench:
	$(GO) test -run XXX -bench . -benchmem -benchtime 1x .

# Regenerate every table and figure at the default scale.
experiments:
	$(GO) run ./cmd/experiments -experiment all

# Refresh the checked-in experiment record.
record:
	$(GO) run ./cmd/experiments -experiment all -scale 0.04 > experiments_scale0.04.txt

clean:
	$(GO) clean ./...
