// Package api defines the wire types of the sieved HTTP JSON protocol: the
// request envelopes accepted by POST /v1/sample, /v1/batch and
// /v1/characterize, and the response documents every endpoint answers with.
//
// These types are the supported integration surface for external clients
// (and for the client package, which wraps them in a typed HTTP client).
// internal/server consumes them through type aliases, so the server and any
// out-of-process consumer marshal the exact same bytes — the JSON encoding
// here is a compatibility contract, pinned byte-for-byte by the server's
// golden wire tests. Field order in the structs is deliberate: encoding/json
// emits struct fields in declaration order, and reordering them would change
// the documents on the wire.
package api

import (
	"encoding/json"
	"strconv"
)

// Version identifies the sieved API generation, reported by GET /healthz.
// It versions the wire protocol, not the build.
const Version = "v1.10"

// TraceHeader is the distributed-tracing header: a traceparent-style value
// whose first dash-separated token is the 32-hex-digit trace id. Clients may
// mint it (client.WithTraceID); the server mints one when absent, echoes the
// id back on the response under the same header, and propagates the incoming
// value verbatim on peer proxy and fetch-and-fill hops, so one id names the
// request across every replica it touches.
const TraceHeader = "X-Sieved-Trace"

// RequestOptions is the wire form of the sampling knobs. Zero values select
// the paper defaults, mirroring sieve.Options.
type RequestOptions struct {
	// Theta is the CoV threshold θ (0 = paper default 0.4; negative is a 400).
	Theta float64 `json:"theta,omitempty"`
	// Selection is dominant-cta-first (default), first-chronological or
	// max-cta.
	Selection string `json:"selection,omitempty"`
	// Splitter is kde (default), equal-width or gmm.
	Splitter string `json:"splitter,omitempty"`
	// Parallelism is the per-request sampling worker count, capped by the
	// server's configured default. Plans are byte-identical at any worker
	// count, so this is a scheduling knob only: it does not participate in
	// the plan's content hash.
	Parallelism int `json:"parallelism,omitempty"`
	// Stream selects the bounded-memory streaming sampler.
	Stream bool `json:"stream,omitempty"`
	// ReservoirSize bounds rows retained per kernel in stream mode.
	ReservoirSize int `json:"reservoir_size,omitempty"`
	// Seed seeds the streaming reservoir priority hash. It participates in
	// the plan's content hash even outside stream mode, so load generators
	// can use it as a cache salt to force a cold cache per run.
	Seed uint64 `json:"seed,omitempty"`
	// Arch picks the hardware model for workload-mode profiling (ampere
	// default, turing).
	Arch string `json:"arch,omitempty"`
	// Method selects the sampling methodology: "sieve" (default — also
	// selected by the empty string), "pks", "twophase" or "rss". Non-default
	// methods are canonicalized into the plan's content hash, so the same
	// source sampled under two methods yields two distinct plan ids; the
	// default is hashed exactly as before, keeping existing plan ids stable.
	// "pks" requires workload mode (its feature vectors and golden reference
	// are profiled server-side); no method other than "sieve" supports
	// stream mode.
	Method string `json:"method,omitempty"`
}

// SampleRequest is the JSON envelope accepted by /v1/sample and
// /v1/characterize, and the per-item shape inside /v1/batch. Exactly one of
// ProfileCSV and Workload must be set.
type SampleRequest struct {
	// ProfileCSV is an inline profile table in the WriteProfileCSV format.
	ProfileCSV string `json:"profile_csv,omitempty"`
	// Workload is a Table I catalog workload name to generate and profile
	// server-side, scaled by Scale (0 = 0.05).
	Workload string  `json:"workload,omitempty"`
	Scale    float64 `json:"scale,omitempty"`
	// Options carries the sampling knobs.
	Options RequestOptions `json:"options"`
}

// PlanEnvelope wraps a plan document on the wire: the response of
// POST /v1/sample and GET /v1/plans/{id}.
type PlanEnvelope struct {
	// PlanID is the plan's content hash (profile source + plan-affecting
	// options), under which GET /v1/plans/{id} re-serves the same bytes.
	PlanID string `json:"plan_id"`
	// Cached reports the plan was served from the content-hash cache.
	Cached bool `json:"cached"`
	// Coalesced reports the request joined another request's in-flight
	// computation instead of starting its own.
	Coalesced bool `json:"coalesced,omitempty"`
	// Plan is the marshaled plan document (a Plan).
	Plan json.RawMessage `json:"plan"`
}

// Stratum is the wire form of one stratum of a plan.
type Stratum struct {
	Kernel         string  `json:"kernel"`
	Tier           int     `json:"tier"`
	Members        int     `json:"members"`
	Invocations    []int   `json:"invocations"`
	Representative int     `json:"representative"`
	Weight         float64 `json:"weight"`
	InstructionSum float64 `json:"instruction_sum"`
}

// Plan is the wire form of a sampling plan. Method and ErrorInterval were
// added for the pluggable-methodology subsystem; both are omitted for
// default-method plans, so documents produced before the subsystem existed
// are byte-identical to today's default output.
type Plan struct {
	Theta             float64   `json:"theta"`
	TotalInstructions float64   `json:"total_instructions"`
	TierInvocations   [3]int    `json:"tier_invocations"`
	Sampled           bool      `json:"sampled"`
	NumStrata         int       `json:"num_strata"`
	Representatives   []int     `json:"representatives"`
	Strata            []Stratum `json:"strata"`
	// Method names the methodology that built the plan ("pks", "twophase",
	// "rss"); absent for the default Sieve sampler.
	Method string `json:"method,omitempty"`
	// ErrorInterval is the methodology-supplied confidence interval on the
	// plan's relative estimation error; absent when the methodology does not
	// quantify its own uncertainty.
	ErrorInterval *ErrorInterval `json:"error_interval,omitempty"`
}

// ErrorInterval is the wire form of a plan's error confidence interval. All
// quantities are relative (0.01 = 1%).
type ErrorInterval struct {
	// Mean is the central estimate of the relative error (mean signed
	// resample error, or 0 for analytic variance-derived intervals).
	Mean float64 `json:"mean"`
	// StdErr is the standard error of Mean.
	StdErr float64 `json:"std_err"`
	// Low and High bound the interval (Mean ± 2·StdErr).
	Low  float64 `json:"low"`
	High float64 `json:"high"`
	// Resamples is the repeated-subsampling count behind the interval; 0
	// marks an analytic (variance-derived) interval.
	Resamples int `json:"resamples,omitempty"`
}

// BatchRequest is the wire form of POST /v1/batch: stratify many profiles in
// one request. Each item is a full SampleRequest, so a batch can mix CSV and
// workload sources and vary options per item.
type BatchRequest struct {
	Items []SampleRequest `json:"items"`
}

// BatchItemResult is the per-item envelope inside a batch response: the
// plan's envelope on success, an HTTP-style status plus error otherwise.
// Items fail independently — one malformed profile does not sink its
// siblings.
type BatchItemResult struct {
	// Status is the item's HTTP-equivalent status (200 on success, else the
	// code /v1/sample would have answered).
	Status int `json:"status"`
	// PlanID is the item's content hash (set whenever the item resolved).
	PlanID string `json:"plan_id,omitempty"`
	// Cached reports the plan was served from the cache without computing.
	Cached bool `json:"cached,omitempty"`
	// Coalesced reports the item joined another request's in-flight
	// computation instead of starting its own.
	Coalesced bool `json:"coalesced,omitempty"`
	// Plan is the marshaled plan document (success only).
	Plan json.RawMessage `json:"plan,omitempty"`
	// Error carries the failure detail (non-2xx only).
	Error string `json:"error,omitempty"`
}

// BatchResponse is the wire form of a /v1/batch response.
type BatchResponse struct {
	Items []BatchItemResult `json:"items"`
}

// KernelSummary is the wire form of one kernel characterization row.
type KernelSummary struct {
	Kernel      string  `json:"kernel"`
	Invocations int     `json:"invocations"`
	Tier        int     `json:"tier"`
	InstrMin    float64 `json:"instr_min"`
	InstrMean   float64 `json:"instr_mean"`
	InstrMax    float64 `json:"instr_max"`
	InstrCoV    float64 `json:"instr_cov"`
	InstrShare  float64 `json:"instr_share"`
	DominantCTA int     `json:"dominant_cta"`
	Strata      int     `json:"strata"`
}

// CharacterizeResponse is the wire form of a /v1/characterize response.
type CharacterizeResponse struct {
	Kernels []KernelSummary `json:"kernels"`
}

// Health is the JSON body of GET /healthz: liveness plus ring membership, so
// any replica can be asked who its peers are. Old probes that send
// Accept: text/plain get a bare "ok" body instead.
type Health struct {
	Status string `json:"status"`
	// Self is this replica's advertised base URL ("" when no ring is
	// configured).
	Self string `json:"self,omitempty"`
	// Peers lists the full replica set, self included, in ring member order
	// (absent when running single-node).
	Peers []string `json:"peers,omitempty"`
	// Version is the API generation (Version).
	Version string `json:"version"`
}

// LatencyMS is the latency quantile pair inside DebugMetrics, in
// milliseconds.
type LatencyMS struct {
	P50 float64 `json:"p50"`
	P99 float64 `json:"p99"`
}

// DebugMetrics mirrors the GET /debug/metrics JSON document. The key set is
// a compatibility contract (dashboards parse it); the server's
// TestDebugMetricsJSONShape pins it.
type DebugMetrics struct {
	Requests     int64 `json:"requests"`
	Failures     int64 `json:"failures"`
	CacheHits    int64 `json:"cache_hits"`
	CacheMisses  int64 `json:"cache_misses"`
	CacheEntries int64 `json:"cache_entries"`
	Computations int64 `json:"computations"`
	Coalesced    int64 `json:"coalesced"`
	BatchItems   int64 `json:"batch_items"`
	PeerFills    int64 `json:"peer_fills"`
	PeerProxied  int64 `json:"peer_proxied"`
	InFlight     int64 `json:"in_flight"`
	Rejected     int64 `json:"rejected"`
	RowsIngested int64 `json:"rows_ingested"`
	// MethodRequests counts sample requests per resolved sampling
	// methodology, keyed by canonical method name ("sieve", "pks", …). The
	// map grows as methods are first requested.
	MethodRequests map[string]int64 `json:"method_requests"`
	LatencyMS      LatencyMS        `json:"latency_ms"`
}

// TraceSpan is one node of a trace's span tree: the wire form of an obs
// span, with start offsets in nanoseconds relative to the request's start.
type TraceSpan struct {
	Name       string           `json:"name"`
	StartNS    int64            `json:"start_ns"`
	DurationNS int64            `json:"duration_ns"`
	Attrs      map[string]any   `json:"attrs,omitempty"`
	Counters   map[string]int64 `json:"counters,omitempty"`
	Children   []*TraceSpan     `json:"children,omitempty"`
}

// TraceSummary is one row of the GET /debug/traces listing.
type TraceSummary struct {
	// TraceID is the 32-hex-digit id from TraceHeader.
	TraceID string `json:"trace_id"`
	Method  string `json:"method"`
	Path    string `json:"path"`
	Status  int    `json:"status"`
	// StartUnixNS is the request's wall-clock start (Unix nanoseconds).
	StartUnixNS int64 `json:"start_unix_ns"`
	DurationNS  int64 `json:"duration_ns"`
}

// Trace is the JSON body of GET /debug/traces/{id}: one completed request's
// identity, per-stage attribution and full span tree on the replica that
// answered. With ?format=chrome the endpoint renders the same tree as Chrome
// trace-event JSON instead.
type Trace struct {
	TraceSummary
	// Replica is the answering replica's advertised base URL ("" single-node).
	Replica string `json:"replica,omitempty"`
	// StageNS sums span durations per serving stage (decode, cache, slot,
	// flight, compute, proxy, write), in nanoseconds. Stages the request never
	// entered are absent.
	StageNS map[string]int64 `json:"stage_ns,omitempty"`
	// Spans is the request's span forest.
	Spans []*TraceSpan `json:"spans"`
}

// TraceList is the JSON body of GET /debug/traces: the most recent completed
// traces plus the slowest ones still resident in the bounded ring store.
type TraceList struct {
	// Stored is the number of traces currently resident; Capacity is the ring
	// size (old traces are overwritten once Stored reaches it).
	Stored   int            `json:"stored"`
	Capacity int            `json:"capacity"`
	Recent   []TraceSummary `json:"recent"`
	Slowest  []TraceSummary `json:"slowest"`
}

// Error is the JSON body of every failed request: {"error": "..."}. It
// doubles as the typed error the client package returns for non-2xx
// responses, carrying the HTTP status out of band.
type Error struct {
	// Status is the HTTP status of the failed response (not serialized; the
	// wire body carries only the message).
	Status int `json:"-"`
	// Message is the failure detail.
	Message string `json:"error"`
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Status != 0 {
		return "sieved: status " + strconv.Itoa(e.Status) + ": " + e.Message
	}
	return "sieved: " + e.Message
}
