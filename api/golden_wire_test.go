package api_test

import (
	"encoding/json"
	"testing"

	"github.com/gpusampling/sieve/api"
)

// These tests pin the JSON bytes of the wire types around the sampling-
// methodology fields. The encoding is a compatibility contract: field order
// follows struct declaration order, and the method/error_interval fields are
// omitted when unset, so documents exchanged before the methodology subsystem
// existed marshal byte-identically today. A failure here means the wire
// format changed — do not re-golden without bumping api.Version and auditing
// every consumer.

func marshal(t *testing.T, v any) string {
	t.Helper()
	buf, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(buf)
}

// TestGoldenRequestOptionsMethodOmitted pins the pre-subsystem request bytes:
// options without a method must not mention one.
func TestGoldenRequestOptionsMethodOmitted(t *testing.T) {
	got := marshal(t, api.SampleRequest{
		Workload: "lmc",
		Scale:    0.05,
		Options:  api.RequestOptions{Theta: 0.4, Seed: 7},
	})
	want := `{"workload":"lmc","scale":0.05,"options":{"theta":0.4,"seed":7}}`
	if got != want {
		t.Errorf("request bytes drifted:\n got %s\nwant %s", got, want)
	}
}

// TestGoldenRequestOptionsMethod pins where the method field lands: last in
// options, after every pre-existing knob.
func TestGoldenRequestOptionsMethod(t *testing.T) {
	got := marshal(t, api.SampleRequest{
		Workload: "lmc",
		Options:  api.RequestOptions{Theta: 0.4, Arch: "turing", Method: "twophase"},
	})
	want := `{"workload":"lmc","options":{"theta":0.4,"arch":"turing","method":"twophase"}}`
	if got != want {
		t.Errorf("request bytes drifted:\n got %s\nwant %s", got, want)
	}
}

// TestGoldenPlanDefaultMethodOmitted pins the default-method plan document:
// no method key, no error_interval key — byte-identical to plans served
// before the subsystem existed.
func TestGoldenPlanDefaultMethodOmitted(t *testing.T) {
	got := marshal(t, api.Plan{
		Theta:             0.4,
		TotalInstructions: 1000,
		TierInvocations:   [3]int{1, 2, 0},
		NumStrata:         1,
		Representatives:   []int{0},
		Strata: []api.Stratum{{
			Kernel:         "k",
			Tier:           1,
			Members:        3,
			Invocations:    []int{0, 1, 2},
			Representative: 0,
			Weight:         1,
			InstructionSum: 1000,
		}},
	})
	want := `{"theta":0.4,"total_instructions":1000,"tier_invocations":[1,2,0],"sampled":false,` +
		`"num_strata":1,"representatives":[0],"strata":[{"kernel":"k","tier":1,"members":3,` +
		`"invocations":[0,1,2],"representative":0,"weight":1,"instruction_sum":1000}]}`
	if got != want {
		t.Errorf("plan bytes drifted:\n got %s\nwant %s", got, want)
	}
}

// TestGoldenPlanMethodAndInterval pins the extended plan document: method and
// error_interval trail the pre-existing fields, and a zero Resamples (an
// analytic interval) is omitted inside the interval.
func TestGoldenPlanMethodAndInterval(t *testing.T) {
	plan := api.Plan{
		Theta:           0.4,
		TierInvocations: [3]int{0, 0, 0},
		Method:          "rss",
		ErrorInterval: &api.ErrorInterval{
			Mean:      0.01,
			StdErr:    0.005,
			Low:       0,
			High:      0.02,
			Resamples: 16,
		},
	}
	got := marshal(t, plan)
	want := `{"theta":0.4,"total_instructions":0,"tier_invocations":[0,0,0],"sampled":false,` +
		`"num_strata":0,"representatives":null,"strata":null,"method":"rss",` +
		`"error_interval":{"mean":0.01,"std_err":0.005,"low":0,"high":0.02,"resamples":16}}`
	if got != want {
		t.Errorf("plan bytes drifted:\n got %s\nwant %s", got, want)
	}

	plan.ErrorInterval.Resamples = 0
	got = marshal(t, plan)
	want = `{"theta":0.4,"total_instructions":0,"tier_invocations":[0,0,0],"sampled":false,` +
		`"num_strata":0,"representatives":null,"strata":null,"method":"rss",` +
		`"error_interval":{"mean":0.01,"std_err":0.005,"low":0,"high":0.02}}`
	if got != want {
		t.Errorf("analytic-interval bytes drifted:\n got %s\nwant %s", got, want)
	}
}

// TestGoldenRoundTrip checks the extended fields survive an
// unmarshal/marshal cycle, so proxies that re-encode envelopes do not strip
// the methodology metadata.
func TestGoldenRoundTrip(t *testing.T) {
	in := `{"workload":"lmc","options":{"method":"pks","seed":3}}`
	var req api.SampleRequest
	if err := json.Unmarshal([]byte(in), &req); err != nil {
		t.Fatal(err)
	}
	if req.Options.Method != "pks" {
		t.Fatalf("method lost in decode: %+v", req.Options)
	}
	got := marshal(t, req)
	want := `{"workload":"lmc","options":{"seed":3,"method":"pks"}}`
	if got != want {
		t.Errorf("round-trip bytes drifted:\n got %s\nwant %s", got, want)
	}
}
