package sieve

import (
	"context"

	"github.com/gpusampling/sieve/internal/pks"
)

// PKSPolicy selects the representative invocation within a PKS cluster.
type PKSPolicy = pks.Policy

// PKS representative-selection policies. The original proposal uses
// first-chronological; random and centroid are the alternates evaluated in
// the paper's Fig. 5.
const (
	PKSSelectFirst    = pks.SelectFirst
	PKSSelectRandom   = pks.SelectRandom
	PKSSelectCentroid = pks.SelectCentroid
)

// PKSClusteringAlgo selects the baseline's clustering engine.
type PKSClusteringAlgo = pks.ClusteringAlgo

// Clustering engines: PKS's k-means (default) and TBPoint-style
// agglomerative hierarchical clustering from the paper's related work.
const (
	PKSAlgoKMeans       = pks.AlgoKMeans
	PKSAlgoHierarchical = pks.AlgoHierarchical
)

// PKSOptions configures the PKS baseline. The k = 1..MaxK sweep runs across
// GOMAXPROCS workers by default when its estimated cost clears the
// MinParallelWork threshold (set Parallelism to 1 for sequential execution;
// results are byte-identical either way), and Restarts adds deterministic
// k-means restarts per candidate k.
type PKSOptions = pks.Options

// PKSPlan is a complete PKS selection: clusters, representatives and the
// count weights its estimator uses.
type PKSPlan = pks.Result

// PKSSelect runs the Principal Kernel Selection baseline: standardize the
// 12-characteristic feature rows, reduce with PCA, cluster with k-means
// (k chosen 1..20 by minimizing per-invocation distortion against the golden
// cycle counts — the real-hardware dependency the paper criticizes), and
// select one representative per cluster.
func PKSSelect(features [][]float64, goldenCycles []float64, opts PKSOptions) (*PKSPlan, error) {
	return pks.Select(features, goldenCycles, opts)
}

// PKSSelectContext is PKSSelect with cancellation: the k = 1..MaxK sweep
// observes ctx between candidate clusterings, so a cancelled or timed-out
// caller gets ctx.Err() back and releases the sweep workers.
func PKSSelectContext(ctx context.Context, features [][]float64, goldenCycles []float64, opts PKSOptions) (*PKSPlan, error) {
	return pks.SelectContext(ctx, features, goldenCycles, opts)
}
