// Benchmarks regenerating every table and figure of the paper's evaluation
// (one per experiment), plus the ablation studies DESIGN.md calls out and
// micro-benchmarks of the core algorithms. Accuracy results are attached as
// custom benchmark metrics (err-pct, speedup-x, …) so `go test -bench`
// output doubles as an experiment record.
package sieve_test

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"github.com/gpusampling/sieve"
	"github.com/gpusampling/sieve/internal/experiments"
	"github.com/gpusampling/sieve/internal/kde"
)

// benchScale keeps per-iteration work bounded; the experiments scale
// distributional shape, not structure.
const benchScale = 0.02

func newRunner() *experiments.Runner {
	return experiments.NewRunner(experiments.Config{Scale: benchScale})
}

func BenchmarkTable1Inventory(b *testing.B) {
	r := newRunner()
	for i := 0; i < b.N; i++ {
		if _, err := r.Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2TierFractions(b *testing.B) {
	r := newRunner()
	var rows []experiments.TierRow
	var err error
	for i := 0; i < b.N; i++ {
		if rows, err = r.Fig2(); err != nil {
			b.Fatal(err)
		}
	}
	var t1 float64
	for _, row := range rows {
		t1 += row.Fractions[0][0]
	}
	b.ReportMetric(100*t1/float64(len(rows)), "tier1-pct")
}

func BenchmarkFig3Accuracy(b *testing.B) {
	r := newRunner()
	var evs []*experiments.Evaluation
	var err error
	for i := 0; i < b.N; i++ {
		if evs, err = r.Fig3(); err != nil {
			b.Fatal(err)
		}
	}
	var sieveSum, pksSum float64
	for _, ev := range evs {
		sieveSum += ev.SieveError
		pksSum += ev.PKSError
	}
	n := float64(len(evs))
	b.ReportMetric(100*sieveSum/n, "sieve-err-pct")
	b.ReportMetric(100*pksSum/n, "pks-err-pct")
}

func BenchmarkFig4Dispersion(b *testing.B) {
	r := newRunner()
	var evs []*experiments.Evaluation
	var err error
	for i := 0; i < b.N; i++ {
		if evs, err = r.Fig3(); err != nil {
			b.Fatal(err)
		}
	}
	var sieveCoV, pksCoV float64
	for _, ev := range evs {
		sieveCoV += ev.SieveCoV
		pksCoV += ev.PKSCoV
	}
	n := float64(len(evs))
	b.ReportMetric(sieveCoV/n, "sieve-cov")
	b.ReportMetric(pksCoV/n, "pks-cov")
}

func BenchmarkFig5Selection(b *testing.B) {
	r := newRunner()
	var rows []experiments.SelectionRow
	var err error
	for i := 0; i < b.N; i++ {
		if rows, err = r.Fig5(); err != nil {
			b.Fatal(err)
		}
	}
	var first, random, centroid float64
	for _, row := range rows {
		first += row.First
		random += row.Random
		centroid += row.Centroid
	}
	n := float64(len(rows))
	b.ReportMetric(100*first/n, "first-err-pct")
	b.ReportMetric(100*random/n, "random-err-pct")
	b.ReportMetric(100*centroid/n, "centroid-err-pct")
}

func BenchmarkFig6Speedup(b *testing.B) {
	r := newRunner()
	var evs []*experiments.Evaluation
	var err error
	for i := 0; i < b.N; i++ {
		if evs, err = r.Fig3(); err != nil {
			b.Fatal(err)
		}
	}
	var sieveSp, pksSp float64
	var n float64
	for _, ev := range evs {
		if ev.Name == "gst" {
			continue
		}
		sieveSp += ev.SieveSpeedup
		pksSp += ev.PKSSpeedup
		n++
	}
	b.ReportMetric(sieveSp/n, "sieve-speedup-x")
	b.ReportMetric(pksSp/n, "pks-speedup-x")
}

func BenchmarkFig7Profiling(b *testing.B) {
	r := newRunner()
	var rows []experiments.ProfilingRow
	var err error
	for i := 0; i < b.N; i++ {
		if rows, err = r.Fig7(); err != nil {
			b.Fatal(err)
		}
	}
	var sp float64
	for _, row := range rows {
		sp += row.Speedup()
	}
	b.ReportMetric(sp/float64(len(rows)), "profiling-speedup-x")
}

func BenchmarkFig8Traditional(b *testing.B) {
	r := newRunner()
	var evs []*experiments.Evaluation
	var err error
	for i := 0; i < b.N; i++ {
		if evs, err = r.Fig8(); err != nil {
			b.Fatal(err)
		}
	}
	var sieveSum, pksSum float64
	for _, ev := range evs {
		sieveSum += ev.SieveError
		pksSum += ev.PKSError
	}
	n := float64(len(evs))
	b.ReportMetric(100*sieveSum/n, "sieve-err-pct")
	b.ReportMetric(100*pksSum/n, "pks-err-pct")
}

func BenchmarkFig9CrossArch(b *testing.B) {
	r := newRunner()
	var rows []experiments.CrossArchRow
	var err error
	for i := 0; i < b.N; i++ {
		if rows, err = r.Fig9(); err != nil {
			b.Fatal(err)
		}
	}
	var sieveSum, pksSum float64
	for _, row := range rows {
		sieveSum += row.SieveError()
		pksSum += row.PKSError()
	}
	n := float64(len(rows))
	b.ReportMetric(100*sieveSum/n, "sieve-err-pct")
	b.ReportMetric(100*pksSum/n, "pks-err-pct")
}

func BenchmarkFig10Theta(b *testing.B) {
	r := newRunner()
	var points []experiments.ThetaPoint
	var err error
	for i := 0; i < b.N; i++ {
		if points, err = r.Fig10(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*points[0].AvgError, "theta0.1-err-pct")
	b.ReportMetric(100*points[len(points)-1].AvgError, "theta1.0-err-pct")
}

// BenchmarkSimulation reproduces Section V-G: trace the representatives of a
// workload and simulate them, serially and in parallel.
func BenchmarkSimulation(b *testing.B) {
	w, err := sieve.GenerateWorkload("gms", 0.005)
	if err != nil {
		b.Fatal(err)
	}
	hw, err := sieve.NewHardware(sieve.Ampere())
	if err != nil {
		b.Fatal(err)
	}
	profile, err := sieve.ProfileInstructionCounts(w, hw)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := sieve.Sample(sieve.ProfileRows(profile), sieve.Options{})
	if err != nil {
		b.Fatal(err)
	}
	traces, err := sieve.GeneratePlanTraces(w, plan, 10000, 1)
	if err != nil {
		b.Fatal(err)
	}
	simulator, err := sieve.NewSimulator(sieve.Ampere())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := simulator.SimulateAll(traces); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := simulator.SimulateParallel(traces, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Ablations (DESIGN.md §5) ---------------------------------------------------

// workloadFixture prepares a challenging workload with golden cycles once.
type workloadFixture struct {
	w      *sieve.Workload
	golden []float64
	total  float64
	rows   []sieve.InvocationProfile
}

func newFixture(b *testing.B, name string, scale float64) *workloadFixture {
	b.Helper()
	w, err := sieve.GenerateWorkload(name, scale)
	if err != nil {
		b.Fatal(err)
	}
	hw, err := sieve.NewHardware(sieve.Ampere())
	if err != nil {
		b.Fatal(err)
	}
	profile, err := sieve.ProfileInstructionCounts(w, hw)
	if err != nil {
		b.Fatal(err)
	}
	golden := hw.MeasureWorkload(w)
	var total float64
	for _, c := range golden {
		total += c
	}
	return &workloadFixture{w: w, golden: golden, total: total, rows: sieve.ProfileRows(profile)}
}

func (f *workloadFixture) at(i int) (float64, error) { return f.golden[i], nil }

func (f *workloadFixture) planError(b *testing.B, plan *sieve.Plan) float64 {
	b.Helper()
	pred, err := plan.Predict(f.at)
	if err != nil {
		b.Fatal(err)
	}
	return abs(pred.Cycles-f.total) / f.total
}

// BenchmarkAblationSieveSelection compares Sieve's representative policies
// (the paper found dominant-CTA best and max-CTA less accurate).
func BenchmarkAblationSieveSelection(b *testing.B) {
	f := newFixture(b, "lmc", benchScale)
	for _, policy := range []sieve.SelectionPolicy{
		sieve.SelectDominantCTAFirst, sieve.SelectFirstChronological, sieve.SelectMaxCTA,
	} {
		b.Run(policy.String(), func(b *testing.B) {
			var e float64
			for i := 0; i < b.N; i++ {
				plan, err := sieve.Sample(f.rows, sieve.Options{Selection: policy})
				if err != nil {
					b.Fatal(err)
				}
				e = f.planError(b, plan)
			}
			b.ReportMetric(100*e, "err-pct")
		})
	}
}

// BenchmarkAblationEstimator isolates the estimator from stratification:
// identical Sieve strata evaluated with Sieve's instruction-weighted
// harmonic-mean-IPC estimator versus PKS's invocation-count × representative-
// cycles estimator.
func BenchmarkAblationEstimator(b *testing.B) {
	f := newFixture(b, "rnnt", benchScale)
	plan, err := sieve.Sample(f.rows, sieve.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("harmonic-ipc", func(b *testing.B) {
		var e float64
		for i := 0; i < b.N; i++ {
			e = f.planError(b, plan)
		}
		b.ReportMetric(100*e, "err-pct")
	})
	b.Run("count-weighted-cycles", func(b *testing.B) {
		var e float64
		for i := 0; i < b.N; i++ {
			var pred float64
			for _, s := range plan.Strata {
				pred += float64(len(s.Invocations)) * f.golden[s.Representative]
			}
			e = abs(pred-f.total) / f.total
		}
		b.ReportMetric(100*e, "err-pct")
	})
}

// BenchmarkAblationTier3Splitter compares KDE valley-splitting against
// equal-width binning for Tier-3 kernels.
func BenchmarkAblationTier3Splitter(b *testing.B) {
	f := newFixture(b, "spt", benchScale)
	for _, splitter := range []sieve.Splitter{sieve.SplitKDE, sieve.SplitEqualWidth, sieve.SplitGMM} {
		b.Run(splitter.String(), func(b *testing.B) {
			var e float64
			var strata int
			for i := 0; i < b.N; i++ {
				plan, err := sieve.Sample(f.rows, sieve.Options{Tier3Splitter: splitter})
				if err != nil {
					b.Fatal(err)
				}
				e = f.planError(b, plan)
				strata = plan.NumStrata()
			}
			b.ReportMetric(100*e, "err-pct")
			b.ReportMetric(float64(strata), "strata")
		})
	}
}

// BenchmarkAblationPKSKCap raises PKS's cluster cap beyond the paper's 20 to
// test whether more clusters close the gap.
func BenchmarkAblationPKSKCap(b *testing.B) {
	f := newFixture(b, "dcg", 0.01)
	hw, err := sieve.NewHardware(sieve.Ampere())
	if err != nil {
		b.Fatal(err)
	}
	full, err := sieve.ProfileFull(f.w, hw)
	if err != nil {
		b.Fatal(err)
	}
	features := sieve.FeatureRows(full)
	for _, maxK := range []int{10, 20, 40} {
		b.Run(fmt.Sprintf("k%d", maxK), func(b *testing.B) {
			var e float64
			for i := 0; i < b.N; i++ {
				plan, err := sieve.PKSSelect(features, f.golden, sieve.PKSOptions{Seed: 1, MaxK: maxK})
				if err != nil {
					b.Fatal(err)
				}
				pred, err := plan.PredictCycles(f.at)
				if err != nil {
					b.Fatal(err)
				}
				e = abs(pred-f.total) / f.total
			}
			b.ReportMetric(100*e, "err-pct")
		})
	}
}

// BenchmarkAblationTwoLevelProfiling compares PKS fed by the full 12-metric
// profile against PKS fed by the cheaper two-level profile (the mitigation
// described in §II-B): profiling cost drops, accuracy degrades.
func BenchmarkAblationTwoLevelProfiling(b *testing.B) {
	f := newFixture(b, "lmc", 0.01)
	hw, err := sieve.NewHardware(sieve.Ampere())
	if err != nil {
		b.Fatal(err)
	}
	profiles := map[string]*sieve.Profile{}
	if profiles["full"], err = sieve.ProfileFull(f.w, hw); err != nil {
		b.Fatal(err)
	}
	if profiles["two-level"], err = sieve.ProfileTwoLevel(f.w, hw, 300); err != nil {
		b.Fatal(err)
	}
	for _, name := range []string{"full", "two-level"} {
		profile := profiles[name]
		b.Run(name, func(b *testing.B) {
			var e float64
			for i := 0; i < b.N; i++ {
				plan, err := sieve.PKSSelect(sieve.FeatureRows(profile), f.golden, sieve.PKSOptions{Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				pred, err := plan.PredictCycles(f.at)
				if err != nil {
					b.Fatal(err)
				}
				e = abs(pred-f.total) / f.total
			}
			b.ReportMetric(100*e, "err-pct")
			b.ReportMetric(profile.WallSeconds, "profiling-sec")
		})
	}
}

// BenchmarkAblationPKP measures Principal Kernel Projection on top of Sieve:
// how much of each representative trace still needs simulating, and the
// projection error versus full trace simulation.
func BenchmarkAblationPKP(b *testing.B) {
	w, err := sieve.GenerateWorkload("lmc", 0.005)
	if err != nil {
		b.Fatal(err)
	}
	hw, err := sieve.NewHardware(sieve.Ampere())
	if err != nil {
		b.Fatal(err)
	}
	profile, err := sieve.ProfileInstructionCounts(w, hw)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := sieve.Sample(sieve.ProfileRows(profile), sieve.Options{})
	if err != nil {
		b.Fatal(err)
	}
	traces, err := sieve.GeneratePlanTraces(w, plan, 120000, 1)
	if err != nil {
		b.Fatal(err)
	}
	simulator, err := sieve.NewSimulator(sieve.Ampere())
	if err != nil {
		b.Fatal(err)
	}
	var fracSum, errSum float64
	var n int
	for i := 0; i < b.N; i++ {
		fracSum, errSum, n = 0, 0, 0
		for _, tr := range traces {
			full, err := simulator.Simulate(tr)
			if err != nil {
				b.Fatal(err)
			}
			proj, err := simulator.SimulateProjected(tr, sieve.PKPOptions{})
			if err != nil {
				b.Fatal(err)
			}
			fracSum += proj.SimulatedFraction
			errSum += abs(float64(proj.SMCycles)-float64(full.SMCycles)) / float64(full.SMCycles)
			n++
		}
	}
	b.ReportMetric(100*fracSum/float64(n), "simulated-pct")
	b.ReportMetric(100*errSum/float64(n), "projection-err-pct")
}

// BenchmarkBaselineClustering compares the baseline with its two clustering
// engines: PKS's k-means and TBPoint-style hierarchical clustering.
func BenchmarkBaselineClustering(b *testing.B) {
	f := newFixture(b, "rnnt", 0.01)
	hw, err := sieve.NewHardware(sieve.Ampere())
	if err != nil {
		b.Fatal(err)
	}
	full, err := sieve.ProfileFull(f.w, hw)
	if err != nil {
		b.Fatal(err)
	}
	features := sieve.FeatureRows(full)
	for _, algo := range []sieve.PKSClusteringAlgo{sieve.PKSAlgoKMeans, sieve.PKSAlgoHierarchical} {
		b.Run(algo.String(), func(b *testing.B) {
			var e float64
			for i := 0; i < b.N; i++ {
				plan, err := sieve.PKSSelect(features, f.golden, sieve.PKSOptions{Seed: 1, Clustering: algo})
				if err != nil {
					b.Fatal(err)
				}
				pred, err := plan.PredictCycles(f.at)
				if err != nil {
					b.Fatal(err)
				}
				e = abs(pred-f.total) / f.total
			}
			b.ReportMetric(100*e, "err-pct")
		})
	}
}

// --- micro-benchmarks -----------------------------------------------------------

// BenchmarkSample measures the observability layer's overhead on the
// materializing sampler: nocollector is the production path (every
// instrumentation site reduced to one context lookup), collector records the
// full span tree. The bench-obs Makefile target records both in
// BENCH_obs.json; the collector variant must stay within a few percent.
func BenchmarkSample(b *testing.B) {
	f := newFixture(b, "nst", benchScale)
	b.Run("nocollector", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sieve.SampleContext(context.Background(), f.rows, sieve.Options{}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(f.rows)), "invocations")
	})
	b.Run("collector", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ctx := sieve.WithCollector(context.Background(), sieve.NewCollector())
			if _, err := sieve.SampleContext(ctx, f.rows, sieve.Options{}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(f.rows)), "invocations")
	})
}

// BenchmarkStratify compares the sequential per-kernel walk against the
// bounded-worker fan-out (Parallelism: 0 = GOMAXPROCS). Both produce
// byte-identical plans; only the wall clock differs.
func BenchmarkStratify(b *testing.B) {
	f := newFixture(b, "nst", benchScale)
	for _, bc := range []struct {
		name        string
		parallelism int
	}{
		{"sequential", 1},
		{"parallel", 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sieve.Sample(f.rows, sieve.Options{Parallelism: bc.parallelism}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(f.rows)), "invocations")
		})
	}
}

// BenchmarkPKSSelect compares the sequential k = 1..20 sweep against the
// parallel sweep with per-k deterministic RNGs.
func BenchmarkPKSSelect(b *testing.B) {
	f := newFixture(b, "lmc", 0.01)
	hw, err := sieve.NewHardware(sieve.Ampere())
	if err != nil {
		b.Fatal(err)
	}
	full, err := sieve.ProfileFull(f.w, hw)
	if err != nil {
		b.Fatal(err)
	}
	features := sieve.FeatureRows(full)
	for _, bc := range []struct {
		name        string
		parallelism int
	}{
		{"sequential", 1},
		{"parallel", 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sieve.PKSSelect(features, f.golden, sieve.PKSOptions{Seed: 1, Parallelism: bc.parallelism}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkKDEGrid measures density-grid evaluation — the Tier-3 splitting
// hot path. "per-point" replays the pre-binning algorithm (an independent
// evaluation per grid point via Density); "exact" is the sliding-window
// reference evaluator (GridExact); "binned" is the production Grid path,
// which linear-bins samples onto the grid and convolves with a truncated
// kernel table when the bandwidth spans enough grid steps, falling back to
// the exact evaluator otherwise (the narrow regime exercises the fallback).
// "binned-into" is the same path through GridInto with caller-owned buffers,
// the zero-allocation form the splitter uses.
func BenchmarkKDEGrid(b *testing.B) {
	const nSamples, gridPoints = 50000, 2048
	rng := rand.New(rand.NewSource(1))
	samples := make([]float64, nSamples)
	for i := range samples {
		center := []float64{1e4, 5e4, 2.5e5}[rng.Intn(3)]
		samples[i] = center * (1 + 0.05*rng.NormFloat64())
	}
	for _, bw := range []struct {
		name      string
		bandwidth float64
	}{
		{"silverman", 0},
		{"narrow", 25},
	} {
		est, err := kde.New(samples, bw.bandwidth)
		if err != nil {
			b.Fatal(err)
		}
		bounds, _, err := est.Grid(2) // the [lo, hi] span every variant evaluates
		if err != nil {
			b.Fatal(err)
		}
		lo, step := bounds[0], (bounds[1]-bounds[0])/float64(gridPoints-1)
		b.Run(bw.name+"/per-point", func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var sink float64
				for p := 0; p < gridPoints; p++ {
					sink += est.Density(lo + float64(p)*step)
				}
				_ = sink
			}
		})
		b.Run(bw.name+"/exact", func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := est.GridExact(gridPoints); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(bw.name+"/binned", func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := est.Grid(gridPoints); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(bw.name+"/binned-into", func(b *testing.B) {
			xs, ds := make([]float64, gridPoints), make([]float64, gridPoints)
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := est.GridInto(ctx, xs, ds); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkHardwareMeasure(b *testing.B) {
	w, err := sieve.GenerateWorkload("lgt", benchScale)
	if err != nil {
		b.Fatal(err)
	}
	hw, err := sieve.NewHardware(sieve.Ampere())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hw.MeasureWorkload(w)
	}
	b.ReportMetric(float64(w.NumInvocations()), "invocations")
}

func BenchmarkGenerateWorkload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := sieve.GenerateWorkload("nst", benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceGenerate(b *testing.B) {
	w, err := sieve.GenerateWorkload("gms", 0.005)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sieve.GenerateTrace(&w.Invocations[0], 20000, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// BenchmarkSampleStream measures the bounded-memory streaming sampler
// against the materializing path on a synthetic multi-kernel source. The
// rows are generated on the fly, so the streaming variants' allocs/op stay
// bounded by kernels × reservoir while the materialized variant must first
// build the full row slice — the gap widens with the invocation count (see
// BENCH_stream.json).
func BenchmarkSampleStream(b *testing.B) {
	// synthSource yields n deterministic rows across 8 kernels mixing the
	// three tiers: constant, low-variance and bimodal instruction counts.
	kernels := [8]string{"kern0", "kern1", "kern2", "kern3", "kern4", "kern5", "kern6", "kern7"}
	synthSource := func(n int) sieve.RowSource {
		i := 0
		return func() (sieve.InvocationProfile, error) {
			if i >= n {
				return sieve.InvocationProfile{}, io.EOF
			}
			k := i % 8
			h := uint64(i)*0x9e3779b97f4a7c15 + uint64(k)
			h ^= h >> 29
			jitter := float64(h%1000) / 1000
			var instr float64
			switch {
			case k < 3: // Tier-1: constant per kernel
				instr = float64(1000 * (k + 1))
			case k < 6: // Tier-2: a few percent of spread
				instr = float64(5000*(k+1)) * (1 + 0.05*jitter)
			default: // Tier-3: bimodal
				instr = float64(20000 * (1 + int(h%2)*10))
				instr *= 1 + 0.02*jitter
			}
			row := sieve.InvocationProfile{
				Kernel:           kernels[k],
				Index:            i,
				InstructionCount: instr,
				CTASize:          64 << (k % 3),
			}
			i++
			return row, nil
		}
	}
	for _, n := range []int{20000, 80000, 320000} {
		opts := sieve.StreamOptions{ReservoirSize: 1024}
		b.Run(fmt.Sprintf("stream/seq/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			o := opts
			o.Parallelism = 1
			for i := 0; i < b.N; i++ {
				if _, err := sieve.SampleStream(synthSource(n), o); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("stream/par/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sieve.SampleStream(synthSource(n), opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("materialized/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				next := synthSource(n)
				rows := make([]sieve.InvocationProfile, 0)
				for {
					r, err := next()
					if err == io.EOF {
						break
					}
					if err != nil {
						b.Fatal(err)
					}
					rows = append(rows, r)
				}
				if _, err := sieve.Sample(rows, sieve.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
