// Package client is the typed HTTP client for the sieved plan service — the
// supported way to talk to sieved from Go, used by the sieveload load
// harness and by sieved replicas themselves for peer proxy and
// fetch-and-fill traffic.
//
// A Client is cheap to construct and safe for concurrent use. Every method
// takes a context; on top of that an optional per-request timeout
// (WithTimeout) bounds each attempt individually, so a retried request gets
// a fresh attempt budget instead of inheriting an almost-expired deadline.
//
// Failed requests are retried with jittered exponential backoff, but only
// when retrying can help: transport errors (connection refused, reset, DNS)
// and 5xx responses. 4xx responses are the caller's fault and are never
// retried — re-sending a malformed profile cannot fix it. Non-2xx responses
// come back as *api.Error carrying the HTTP status, so callers branch with
// errors.As.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/gpusampling/sieve/api"
)

// Client talks to one sieved base URL.
type Client struct {
	base    string
	hc      *http.Client
	timeout time.Duration
	retries int
	backoff time.Duration
	header  http.Header

	// jitter is the backoff jitter source; guarded by mu because a Client is
	// shared across goroutines and rand.Rand is not.
	mu     sync.Mutex
	jitter *rand.Rand
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (connection pool,
// transport, TLS). The default is a plain &http.Client{}.
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithTimeout bounds each request attempt (not the whole retry sequence).
// Zero means only the caller's context limits the attempt.
func WithTimeout(d time.Duration) Option { return func(c *Client) { c.timeout = d } }

// WithRetries sets how many times a retryable failure is re-attempted after
// the first try (default 2; 0 disables retries).
func WithRetries(n int) Option { return func(c *Client) { c.retries = n } }

// WithBackoff sets the base backoff between retries (default 100ms). The
// n-th retry waits backoff·2ⁿ scaled by a uniform [0.5, 1.5) jitter, so a
// thundering herd of clients desynchronizes instead of re-colliding.
func WithBackoff(d time.Duration) Option { return func(c *Client) { c.backoff = d } }

// WithHeader adds a header to every request (e.g. the peer-forwarding
// marker sieved replicas stamp on proxied traffic).
func WithHeader(key, value string) Option {
	return func(c *Client) { c.header.Set(key, value) }
}

// New builds a Client for the sieved at baseURL (scheme + host[:port],
// trailing slash tolerated).
func New(baseURL string, opts ...Option) (*Client, error) {
	base := strings.TrimRight(strings.TrimSpace(baseURL), "/")
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		return nil, fmt.Errorf("client: base URL %q must start with http:// or https://", baseURL)
	}
	c := &Client{
		base:    base,
		hc:      &http.Client{},
		retries: 2,
		backoff: 100 * time.Millisecond,
		header:  make(http.Header),
		jitter:  rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// BaseURL returns the normalized base URL this client targets.
func (c *Client) BaseURL() string { return c.base }

// retryable reports whether a failed attempt may be re-tried: transport
// errors and 5xx statuses, never 4xx. Context cancellation and deadline
// expiry are terminal — the caller's budget is spent, not the server's.
func retryable(status int, err error) bool {
	if err != nil {
		return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
	}
	return status >= 500
}

// sleepBackoff waits the jittered exponential backoff for retry attempt n
// (0-based), honoring ctx.
func (c *Client) sleepBackoff(ctx context.Context, n int) error {
	d := c.backoff << uint(n)
	c.mu.Lock()
	d = time.Duration(float64(d) * (0.5 + c.jitter.Float64()))
	c.mu.Unlock()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// do runs one request with the retry policy and returns the final status and
// body. err is non-nil only for transport-level failures (after retries) or
// a cancelled context; HTTP-level failures return err == nil with the status
// and the server's error body, which typed wrappers turn into *api.Error.
func (c *Client) do(ctx context.Context, method, path, contentType string, body []byte) (status int, respBody []byte, err error) {
	for attempt := 0; ; attempt++ {
		status, respBody, err = c.once(ctx, method, path, contentType, body)
		if err == nil && status < 500 {
			return status, respBody, nil
		}
		if attempt >= c.retries || !retryable(status, err) {
			return status, respBody, err
		}
		if serr := c.sleepBackoff(ctx, attempt); serr != nil {
			return status, respBody, err
		}
	}
}

// once runs a single attempt under the per-request timeout.
func (c *Client) once(ctx context.Context, method, path, contentType string, body []byte) (int, []byte, error) {
	if c.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.timeout)
		defer cancel()
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return 0, nil, err
	}
	for k, vs := range c.header {
		for _, v := range vs {
			req.Header.Set(k, v)
		}
	}
	if tv := traceHeaderValue(ctx); tv != "" {
		req.Header.Set(api.TraceHeader, tv)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, b, nil
}

// decode unmarshals a 2xx body into out, or turns a non-2xx body into
// *api.Error with the status attached.
func decode(status int, body []byte, out any) error {
	if status < 200 || status > 299 {
		apiErr := &api.Error{Status: status}
		if jerr := json.Unmarshal(body, apiErr); jerr != nil || apiErr.Message == "" {
			apiErr.Message = strings.TrimSpace(string(body))
		}
		return apiErr
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("client: decode response: %w", err)
	}
	return nil
}

// Sample posts a JSON sample request and returns the plan envelope.
func (c *Client) Sample(ctx context.Context, req *api.SampleRequest) (*api.PlanEnvelope, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	status, respBody, err := c.do(ctx, http.MethodPost, "/v1/sample", "application/json", body)
	if err != nil {
		return nil, err
	}
	env := &api.PlanEnvelope{}
	if err := decode(status, respBody, env); err != nil {
		return nil, err
	}
	return env, nil
}

// SampleRaw posts a JSON sample request and relays the response verbatim:
// the HTTP status and the exact body bytes, whatever the status was. It is
// the proxy building block — sieved replicas use it to forward a request to
// the owning peer and relay the answer untouched. err is non-nil only when
// no usable response arrived (transport failure or cancelled context).
func (c *Client) SampleRaw(ctx context.Context, req *api.SampleRequest) (status int, body []byte, err error) {
	b, err := json.Marshal(req)
	if err != nil {
		return 0, nil, err
	}
	return c.do(ctx, http.MethodPost, "/v1/sample", "application/json", b)
}

// SampleCSV posts a raw profile CSV (text/csv) with the options encoded as
// query parameters, the curl-friendly request shape, and returns the plan
// envelope.
func (c *Client) SampleCSV(ctx context.Context, profileCSV string, opts api.RequestOptions) (*api.PlanEnvelope, error) {
	q := optionsQuery(opts)
	path := "/v1/sample"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	status, respBody, err := c.do(ctx, http.MethodPost, path, "text/csv", []byte(profileCSV))
	if err != nil {
		return nil, err
	}
	env := &api.PlanEnvelope{}
	if err := decode(status, respBody, env); err != nil {
		return nil, err
	}
	return env, nil
}

// optionsQuery renders RequestOptions as the query parameters the CSV
// request shape accepts, omitting zero values.
func optionsQuery(o api.RequestOptions) url.Values {
	q := url.Values{}
	if o.Theta != 0 {
		q.Set("theta", strconv.FormatFloat(o.Theta, 'g', -1, 64))
	}
	if o.Selection != "" {
		q.Set("selection", o.Selection)
	}
	if o.Splitter != "" {
		q.Set("splitter", o.Splitter)
	}
	if o.Parallelism != 0 {
		q.Set("parallelism", strconv.Itoa(o.Parallelism))
	}
	if o.Stream {
		q.Set("stream", "true")
	}
	if o.ReservoirSize != 0 {
		q.Set("reservoir_size", strconv.Itoa(o.ReservoirSize))
	}
	if o.Seed != 0 {
		q.Set("seed", strconv.FormatUint(o.Seed, 10))
	}
	if o.Arch != "" {
		q.Set("arch", o.Arch)
	}
	return q
}

// Batch posts many sample requests in one call and returns the per-item
// results. Items fail independently; Batch returns an error only when the
// batch itself was rejected or unreachable.
func (c *Client) Batch(ctx context.Context, req *api.BatchRequest) (*api.BatchResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	status, respBody, err := c.do(ctx, http.MethodPost, "/v1/batch", "application/json", body)
	if err != nil {
		return nil, err
	}
	out := &api.BatchResponse{}
	if err := decode(status, respBody, out); err != nil {
		return nil, err
	}
	return out, nil
}

// GetPlan fetches a cached plan by content hash. A plan that is not cached
// anywhere returns *api.Error with Status 404.
func (c *Client) GetPlan(ctx context.Context, id string) (*api.PlanEnvelope, error) {
	status, respBody, err := c.do(ctx, http.MethodGet, "/v1/plans/"+url.PathEscape(id), "", nil)
	if err != nil {
		return nil, err
	}
	env := &api.PlanEnvelope{}
	if err := decode(status, respBody, env); err != nil {
		return nil, err
	}
	return env, nil
}

// Healthz reports liveness plus ring membership, so callers can discover the
// replica set from any one replica.
func (c *Client) Healthz(ctx context.Context) (*api.Health, error) {
	status, respBody, err := c.do(ctx, http.MethodGet, "/healthz", "", nil)
	if err != nil {
		return nil, err
	}
	h := &api.Health{}
	if err := decode(status, respBody, h); err != nil {
		return nil, err
	}
	return h, nil
}

// DebugMetrics snapshots the server's /debug/metrics counters — the load
// harness reads it before and after a run to attribute cache-hit, coalescing
// and peer-traffic rates to the run.
func (c *Client) DebugMetrics(ctx context.Context) (*api.DebugMetrics, error) {
	status, respBody, err := c.do(ctx, http.MethodGet, "/debug/metrics", "", nil)
	if err != nil {
		return nil, err
	}
	m := &api.DebugMetrics{}
	if err := decode(status, respBody, m); err != nil {
		return nil, err
	}
	return m, nil
}
