package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"github.com/gpusampling/sieve/api"
)

// countingServer answers each request with the next status in script (the
// last entry repeats), recording the attempt count.
func countingServer(t *testing.T, script ...int) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		i := int(n) - 1
		if i >= len(script) {
			i = len(script) - 1
		}
		status := script[i]
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		if status == http.StatusOK {
			fmt.Fprint(w, `{"plan_id":"abc","cached":true,"plan":{"theta":0.4}}`)
		} else {
			fmt.Fprintf(w, `{"error":"scripted %d"}`, status)
		}
	}))
	t.Cleanup(ts.Close)
	return ts, &calls
}

func fastClient(t *testing.T, base string, opts ...Option) *Client {
	t.Helper()
	c, err := New(base, append([]Option{WithBackoff(time.Millisecond)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestRetryOn5xx: transient 5xx responses are retried and the eventual
// success is returned.
func TestRetryOn5xx(t *testing.T) {
	ts, calls := countingServer(t, 503, 502, 200)
	c := fastClient(t, ts.URL, WithRetries(3))
	env, err := c.GetPlan(context.Background(), "abc")
	if err != nil {
		t.Fatalf("GetPlan after transient 5xx: %v", err)
	}
	if env.PlanID != "abc" || !env.Cached {
		t.Fatalf("envelope = %+v", env)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3 (two retries then success)", got)
	}
}

// TestNoRetryOn4xx: caller errors are terminal — one attempt, typed error.
func TestNoRetryOn4xx(t *testing.T) {
	ts, calls := countingServer(t, 422)
	c := fastClient(t, ts.URL, WithRetries(5))
	_, err := c.GetPlan(context.Background(), "abc")
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Status != 422 {
		t.Fatalf("err = %v, want *api.Error with status 422", err)
	}
	if apiErr.Message != "scripted 422" {
		t.Fatalf("message = %q", apiErr.Message)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("attempts = %d, want 1 (4xx never retried)", got)
	}
}

// TestRetryBudgetRespected: a persistent 5xx consumes exactly 1 + retries
// attempts and surfaces the final status.
func TestRetryBudgetRespected(t *testing.T) {
	ts, calls := countingServer(t, 500)
	c := fastClient(t, ts.URL, WithRetries(2))
	_, err := c.GetPlan(context.Background(), "abc")
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Status != 500 {
		t.Fatalf("err = %v, want *api.Error with status 500", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3 (initial + 2 retries)", got)
	}
}

// errTripper fails every round trip at the transport layer, counting calls —
// the deterministic stand-in for connection-refused/reset errors.
type errTripper struct{ calls atomic.Int64 }

func (e *errTripper) RoundTrip(*http.Request) (*http.Response, error) {
	e.calls.Add(1)
	return nil, errors.New("connect: connection refused")
}

// TestRetryOnConnectError: transport-level failures are retried up to the
// budget and the transport error is surfaced.
func TestRetryOnConnectError(t *testing.T) {
	tr := &errTripper{}
	c := fastClient(t, "http://sieved.invalid", WithRetries(2),
		WithHTTPClient(&http.Client{Transport: tr}))
	_, err := c.Healthz(context.Background())
	if err == nil {
		t.Fatal("Healthz over a dead transport succeeded")
	}
	if got := tr.calls.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3 (initial + 2 retries)", got)
	}
}

// TestNoRetryAfterContextCancel: a cancelled context stops the retry loop
// instead of burning the remaining budget against a dead server.
func TestNoRetryAfterContextCancel(t *testing.T) {
	tr := &errTripper{}
	c := fastClient(t, "http://sieved.invalid", WithRetries(10),
		WithHTTPClient(&http.Client{Transport: tr}))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.Healthz(ctx)
	if err == nil {
		t.Fatal("cancelled Healthz succeeded")
	}
	if got := tr.calls.Load(); got > 1 {
		t.Fatalf("attempts = %d after cancel, want ≤ 1", got)
	}
}

// TestConcurrentRetries hammers one shared Client from many goroutines so
// the race detector checks the jitter source and header plumbing.
func TestConcurrentRetries(t *testing.T) {
	ts, _ := countingServer(t, 503, 200, 503, 200, 503, 200, 200)
	c := fastClient(t, ts.URL, WithRetries(4))
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			_, err := c.GetPlan(context.Background(), "abc")
			done <- err
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatalf("concurrent GetPlan: %v", err)
		}
	}
}

// TestSampleRawRelaysVerbatim: SampleRaw returns the exact status and body,
// 4xx included, with no typed-error translation — the proxy contract.
func TestSampleRawRelaysVerbatim(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if got := r.Header.Get("X-Test-Marker"); got != "yes" {
			t.Errorf("configured header missing: %q", got)
		}
		w.WriteHeader(http.StatusUnprocessableEntity)
		fmt.Fprint(w, `{"error":"empty profile"}`)
	}))
	t.Cleanup(ts.Close)
	c := fastClient(t, ts.URL, WithHeader("X-Test-Marker", "yes"))
	status, body, err := c.SampleRaw(context.Background(), &api.SampleRequest{Workload: "lmc"})
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusUnprocessableEntity || string(body) != `{"error":"empty profile"}` {
		t.Fatalf("relay = %d %q", status, body)
	}
}

func TestNewValidatesBaseURL(t *testing.T) {
	if _, err := New("sieved:8372"); err == nil {
		t.Fatal("schemeless base URL accepted")
	}
	c, err := New("  http://sieved:8372/ ")
	if err != nil {
		t.Fatal(err)
	}
	if c.BaseURL() != "http://sieved:8372" {
		t.Fatalf("BaseURL = %q", c.BaseURL())
	}
}
