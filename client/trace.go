// Distributed-tracing support: minting trace ids, carrying them on a
// context, and reading completed traces back from a replica's trace store.
//
// A trace id names one logical request across every replica it touches. The
// client injects it as the api.TraceHeader request header; sieved echoes the
// id back on the response and propagates it on proxy and fetch-and-fill
// hops, so the id retrieved from any replica's /debug/traces store ties the
// whole path together.
package client

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/url"
	"strings"

	"github.com/gpusampling/sieve/api"
)

// traceIDKey carries a trace id on a context.
type traceIDKey struct{}

// WithTraceID returns a context that makes every client request carry the
// given trace id in the api.TraceHeader header. Invalid ids (per
// ValidTraceID) are ignored and the request traces under a server-minted id
// instead.
func WithTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceIDKey{}, id)
}

// TraceID returns the trace id carried by ctx ("" when none).
func TraceID(ctx context.Context) string {
	id, _ := ctx.Value(traceIDKey{}).(string)
	return id
}

// NewTraceID mints a random 32-hex-digit trace id from crypto/rand. Load
// generators that need deterministic ids can format their own instead — any
// 16–64 hex digits are accepted (ValidTraceID).
func NewTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; trace under a
		// server-minted id rather than crash the request path.
		return ""
	}
	return hex.EncodeToString(b[:])
}

// ValidTraceID reports whether id is an acceptable trace id: 16–64 lowercase
// hex digits. The bounds keep ids indexable while letting callers embed
// their own structure (the canonical minted form is 32 digits).
func ValidTraceID(id string) bool {
	if len(id) < 16 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// traceHeaderValue renders the header value for a context-carried id ("" when
// the context carries none or an invalid one).
func traceHeaderValue(ctx context.Context) string {
	id := TraceID(ctx)
	if !ValidTraceID(id) {
		return ""
	}
	return id + "-01"
}

// ParseTraceHeader extracts the trace id from an api.TraceHeader value: the
// first dash-separated token, lowercased. Returns "" for values that do not
// carry a valid id.
func ParseTraceHeader(v string) string {
	v = strings.TrimSpace(v)
	if i := strings.IndexByte(v, '-'); i >= 0 {
		v = v[:i]
	}
	v = strings.ToLower(v)
	if !ValidTraceID(v) {
		return ""
	}
	return v
}

// GetTrace fetches one completed trace by id from the replica's bounded
// trace store. Traces are resident only until overwritten, so a 404
// (*api.Error) is an expected answer under load, not a protocol failure.
func (c *Client) GetTrace(ctx context.Context, id string) (*api.Trace, error) {
	status, respBody, err := c.do(ctx, "GET", "/debug/traces/"+url.PathEscape(id), "", nil)
	if err != nil {
		return nil, err
	}
	t := &api.Trace{}
	if err := decode(status, respBody, t); err != nil {
		return nil, err
	}
	return t, nil
}

// Traces lists the replica's recent and slowest resident traces.
func (c *Client) Traces(ctx context.Context) (*api.TraceList, error) {
	status, respBody, err := c.do(ctx, "GET", "/debug/traces", "", nil)
	if err != nil {
		return nil, err
	}
	l := &api.TraceList{}
	if err := decode(status, respBody, l); err != nil {
		return nil, err
	}
	return l, nil
}
