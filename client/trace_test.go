package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/gpusampling/sieve/api"
)

// TestTraceIDContextRoundTrip: WithTraceID/TraceID carry the id, and a bare
// context carries none.
func TestTraceIDContextRoundTrip(t *testing.T) {
	ctx := context.Background()
	if got := TraceID(ctx); got != "" {
		t.Fatalf("bare context TraceID = %q", got)
	}
	id := NewTraceID()
	if !ValidTraceID(id) {
		t.Fatalf("NewTraceID minted invalid id %q", id)
	}
	if len(id) != 32 {
		t.Fatalf("NewTraceID length = %d, want 32", len(id))
	}
	if got := TraceID(WithTraceID(ctx, id)); got != id {
		t.Fatalf("TraceID round trip = %q, want %q", got, id)
	}
}

// TestValidTraceID pins the accepted id grammar: 16–64 lowercase hex digits.
func TestValidTraceID(t *testing.T) {
	for id, want := range map[string]bool{
		"0123456789abcdef":                 true,
		"0123456789abcdef0123456789abcdef": true,
		"0123456789ABCDEF":                 false, // uppercase
		"0123456789abcde":                  false, // too short
		"xyz":                              false,
		"":                                 false,
		"0123456789abcdeg":                 false, // non-hex
	} {
		if got := ValidTraceID(id); got != want {
			t.Errorf("ValidTraceID(%q) = %v, want %v", id, got, want)
		}
	}
	if ValidTraceID(string(make([]byte, 65))) {
		t.Error("65-byte id accepted")
	}
}

// TestParseTraceHeader: the id is the first dash token, lowercased; invalid
// ids parse to "".
func TestParseTraceHeader(t *testing.T) {
	for in, want := range map[string]string{
		"0123456789abcdef0123456789abcdef-01":    "0123456789abcdef0123456789abcdef",
		"0123456789abcdef0123456789abcdef":       "0123456789abcdef0123456789abcdef",
		"  0123456789ABCDEF0123456789ABCDEF-01 ": "0123456789abcdef0123456789abcdef",
		"nope-01":                                "",
		"":                                       "",
	} {
		if got := ParseTraceHeader(in); got != want {
			t.Errorf("ParseTraceHeader(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestTraceHeaderInjection: a context-carried trace id rides every request as
// api.TraceHeader; an invalid id is dropped rather than sent.
func TestTraceHeaderInjection(t *testing.T) {
	var gotHeader string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotHeader = r.Header.Get(api.TraceHeader)
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"status":"ok","version":"` + api.Version + `"}`))
	}))
	t.Cleanup(ts.Close)
	c := fastClient(t, ts.URL)

	id := "00000000000000000000000000abcdef"
	if _, err := c.Healthz(WithTraceID(context.Background(), id)); err != nil {
		t.Fatal(err)
	}
	if want := id + "-01"; gotHeader != want {
		t.Fatalf("trace header = %q, want %q", gotHeader, want)
	}

	if _, err := c.Healthz(WithTraceID(context.Background(), "NOT-HEX")); err != nil {
		t.Fatal(err)
	}
	if gotHeader != "" {
		t.Fatalf("invalid id still sent: %q", gotHeader)
	}
}

// TestGetTraceAndTraces: the trace read methods decode the wire documents and
// surface 404 as *api.Error.
func TestGetTraceAndTraces(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		switch r.URL.Path {
		case "/debug/traces":
			w.Write([]byte(`{"stored":1,"capacity":256,"recent":[{"trace_id":"00000000000000000000000000abcdef","method":"POST","path":"/v1/sample","status":200,"start_unix_ns":1,"duration_ns":42}],"slowest":[]}`))
		case "/debug/traces/00000000000000000000000000abcdef":
			w.Write([]byte(`{"trace_id":"00000000000000000000000000abcdef","method":"POST","path":"/v1/sample","status":200,"start_unix_ns":1,"duration_ns":42,"stage_ns":{"compute":40},"spans":[{"name":"request","start_ns":0,"duration_ns":42}]}`))
		default:
			w.WriteHeader(http.StatusNotFound)
			w.Write([]byte(`{"error":"no such trace"}`))
		}
	}))
	t.Cleanup(ts.Close)
	c := fastClient(t, ts.URL)
	ctx := context.Background()

	l, err := c.Traces(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if l.Capacity != 256 || len(l.Recent) != 1 || l.Recent[0].DurationNS != 42 {
		t.Fatalf("trace list = %+v", l)
	}

	tr, err := c.GetTrace(ctx, l.Recent[0].TraceID)
	if err != nil {
		t.Fatal(err)
	}
	if tr.StageNS["compute"] != 40 || len(tr.Spans) != 1 || tr.Spans[0].Name != "request" {
		t.Fatalf("trace = %+v", tr)
	}

	_, err = c.GetTrace(ctx, "00000000000000000000000000000000")
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("missing trace error = %v", err)
	}
}
