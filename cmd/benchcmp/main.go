// Command benchcmp compares two benchmark recordings produced by
// `go test -json -bench` (the BENCH_*.json files this repo checks in) and
// prints per-benchmark deltas. It is a dependency-free stand-in for
// benchstat, tuned for the single-run event streams the Makefile records:
// no distribution statistics, just old → new with percentage change per
// unit.
//
// Usage:
//
//	go run ./cmd/benchcmp OLD.json NEW.json
//
// Exit status is 0 whenever both files parse; deltas are informational (CI
// runs benches at -benchtime=1x to catch rot, not to gate on timing).
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: benchcmp OLD.json NEW.json")
		os.Exit(2)
	}
	old, err := parseFile(os.Args[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: %s: %v\n", os.Args[1], err)
		os.Exit(1)
	}
	new_, err := parseFile(os.Args[2])
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: %s: %v\n", os.Args[2], err)
		os.Exit(1)
	}
	report(os.Stdout, old, new_)
}

// result is one benchmark line: its iteration count plus every
// value-with-unit pair (ns/op, B/op, allocs/op, custom metrics).
type result struct {
	name       string
	iterations int64
	values     map[string]float64
}

// parseFile reads a `go test -json` event stream (or plain `go test -bench`
// text output) and returns the benchmark results in order of appearance.
func parseFile(path string) ([]result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parse(f)
}

func parse(r io.Reader) ([]result, error) {
	// go test -json flushes benchmark output in fragments — the name ("
	// BenchmarkX \t") and the measurements ("5\t123 ns/op\n") arrive as
	// separate output events — so the events' text is reassembled first and
	// only then split into lines. Plain `go test -bench` output takes the
	// same path unchanged, so older recordings stay comparable.
	var text strings.Builder
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "{") {
			var ev struct {
				Action string
				Output string
			}
			if err := json.Unmarshal([]byte(line), &ev); err != nil {
				return nil, fmt.Errorf("malformed test event: %w", err)
			}
			if ev.Action == "output" {
				text.WriteString(ev.Output)
			}
			continue
		}
		text.WriteString(line)
		text.WriteString("\n")
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	var results []result
	for _, line := range strings.Split(text.String(), "\n") {
		if res, ok := parseBenchLine(line); ok {
			results = append(results, res)
		}
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found")
	}
	return results, nil
}

// parseBenchLine parses one benchmark result line, e.g.
//
//	BenchmarkKDEGrid/silverman/binned-8   500   2341 ns/op   0 B/op   0 allocs/op
//
// The trailing -N GOMAXPROCS suffix is stripped from the name so recordings
// from machines with different core counts line up.
func parseBenchLine(line string) (result, bool) {
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	res := result{name: trimProcSuffix(fields[0]), iterations: iters, values: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		res.values[fields[i+1]] = v
	}
	if len(res.values) == 0 {
		return result{}, false
	}
	return res, true
}

// trimProcSuffix drops the trailing -N core-count suffix from a benchmark
// name, if present.
func trimProcSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// unitOrder fixes the display order for the standard units; custom metrics
// follow alphabetically.
var unitOrder = []string{"ns/op", "B/op", "allocs/op"}

// report prints one section per unit present in both recordings, with a row
// per benchmark name they share.
func report(w io.Writer, old, new_ []result) {
	oldBy := byName(old)
	newBy := byName(new_)

	units := sharedUnits(old, new_)
	for _, unit := range units {
		type row struct {
			name     string
			old, new float64
		}
		var rows []row
		for _, o := range old {
			n, ok := newBy[o.name]
			if !ok {
				continue
			}
			ov, okO := o.values[unit]
			nv, okN := n.values[unit]
			if okO && okN {
				rows = append(rows, row{o.name, ov, nv})
			}
		}
		if len(rows) == 0 {
			continue
		}
		width := len("name")
		for _, r := range rows {
			if len(r.name) > width {
				width = len(r.name)
			}
		}
		fmt.Fprintf(w, "\n%-*s  %14s  %14s  %8s   [%s]\n", width, "name", "old", "new", "delta", unit)
		for _, r := range rows {
			fmt.Fprintf(w, "%-*s  %14s  %14s  %8s\n", width, r.name, formatValue(r.old), formatValue(r.new), delta(r.old, r.new))
		}
	}
	var onlyOld, onlyNew []string
	for _, o := range old {
		if _, ok := newBy[o.name]; !ok {
			onlyOld = append(onlyOld, o.name)
		}
	}
	for _, n := range new_ {
		if _, ok := oldBy[n.name]; !ok {
			onlyNew = append(onlyNew, n.name)
		}
	}
	if len(onlyOld) > 0 {
		fmt.Fprintf(w, "\nonly in old: %s\n", strings.Join(onlyOld, ", "))
	}
	if len(onlyNew) > 0 {
		fmt.Fprintf(w, "\nonly in new: %s\n", strings.Join(onlyNew, ", "))
	}
}

func byName(rs []result) map[string]result {
	m := make(map[string]result, len(rs))
	for _, r := range rs {
		if _, dup := m[r.name]; !dup { // first run wins, like benchstat's input order
			m[r.name] = r
		}
	}
	return m
}

// sharedUnits returns the units to report: the standard trio first, then any
// custom metrics both recordings contain, in old-recording order.
func sharedUnits(old, new_ []result) []string {
	has := func(rs []result, unit string) bool {
		for _, r := range rs {
			if _, ok := r.values[unit]; ok {
				return true
			}
		}
		return false
	}
	seen := map[string]bool{}
	var units []string
	for _, u := range unitOrder {
		if has(old, u) && has(new_, u) {
			units = append(units, u)
			seen[u] = true
		}
	}
	for _, r := range old {
		for u := range r.values {
			if !seen[u] && has(new_, u) {
				units = append(units, u)
				seen[u] = true
			}
		}
	}
	// Map iteration order above is nondeterministic; sort the custom tail.
	tail := units[lenStd(units):]
	sortStrings(tail)
	return units
}

func lenStd(units []string) int {
	n := 0
	for _, u := range units {
		for _, s := range unitOrder {
			if u == s {
				n++
			}
		}
	}
	return n
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// delta formats the old → new change as a signed percentage; "~" when old is
// zero (no baseline to compare against).
func delta(old, new_ float64) string {
	if old == 0 {
		if new_ == 0 {
			return "0.00%"
		}
		return "~"
	}
	return fmt.Sprintf("%+.2f%%", 100*(new_-old)/old)
}

// formatValue renders a metric compactly: integers without decimals, large
// values with thousands grouping left to the reader.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'f', 3, 64)
}
