package main

import (
	"strings"
	"testing"
)

const oldStream = `{"Action":"start","Package":"example"}
{"Action":"output","Package":"example","Output":"BenchmarkKDEGrid/silverman/per-point-8 \t       1\t317301295 ns/op\t  163840 B/op\t       2 allocs/op\n"}
{"Action":"output","Package":"example","Output":"BenchmarkStratify/sequential-8 \t       1\t21500000 ns/op\t 1847608 B/op\t    1221 allocs/op\t     24731 invocations\n"}
{"Action":"output","Package":"example","Output":"BenchmarkGone-8 \t       1\t100 ns/op\n"}
{"Action":"output","Package":"example","Output":"ok  \texample\t1.0s\n"}
`

const newStream = `{"Action":"output","Package":"example","Output":"BenchmarkKDEGrid/silverman/per-point-8 \t     100\t31730129 ns/op\t  163840 B/op\t       2 allocs/op\n"}
{"Action":"output","Package":"example","Output":"BenchmarkStratify/sequential-8 \t     100\t19300000 ns/op\t 1640000 B/op\t     900 allocs/op\t     24731 invocations\n"}
{"Action":"output","Package":"example","Output":"BenchmarkFresh-8 \t     100\t50 ns/op\n"}
`

func mustParse(t *testing.T, stream string) []result {
	t.Helper()
	rs, err := parse(strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func TestParseExtractsBenchmarkLines(t *testing.T) {
	rs := mustParse(t, oldStream)
	if len(rs) != 3 {
		t.Fatalf("parsed %d results, want 3", len(rs))
	}
	first := rs[0]
	if first.name != "BenchmarkKDEGrid/silverman/per-point" {
		t.Fatalf("name %q: GOMAXPROCS suffix not stripped", first.name)
	}
	if first.iterations != 1 {
		t.Fatalf("iterations %d, want 1", first.iterations)
	}
	if first.values["ns/op"] != 317301295 {
		t.Fatalf("ns/op %v", first.values["ns/op"])
	}
	if rs[1].values["invocations"] != 24731 {
		t.Fatalf("custom metric lost: %v", rs[1].values)
	}
}

// TestParseReassemblesSplitEvents covers the shape `go test -json` actually
// emits: the benchmark name and its measurements arrive as separate output
// events and must be stitched back into one line before parsing.
func TestParseReassemblesSplitEvents(t *testing.T) {
	stream := `{"Action":"output","Package":"example","Output":"BenchmarkSplit/case-8 \t"}
{"Action":"output","Package":"example","Output":"     500\t      2000 ns/op\t       0 B/op\t       0 allocs/op\n"}
`
	rs := mustParse(t, stream)
	if len(rs) != 1 {
		t.Fatalf("parsed %d results, want 1", len(rs))
	}
	if rs[0].name != "BenchmarkSplit/case" || rs[0].iterations != 500 || rs[0].values["ns/op"] != 2000 {
		t.Fatalf("split-event result: %+v", rs[0])
	}
}

func TestParsePlainTextOutput(t *testing.T) {
	rs := mustParse(t, "BenchmarkX-4   200   500 ns/op\nPASS\n")
	if len(rs) != 1 || rs[0].name != "BenchmarkX" || rs[0].values["ns/op"] != 500 {
		t.Fatalf("plain-text parse: %+v", rs)
	}
}

func TestParseRejectsEmptyInput(t *testing.T) {
	if _, err := parse(strings.NewReader(`{"Action":"output","Output":"PASS\n"}`)); err == nil {
		t.Fatal("want error for a stream with no benchmark lines")
	}
}

func TestReportDeltasAndCoverage(t *testing.T) {
	old := mustParse(t, oldStream)
	new_ := mustParse(t, newStream)
	var buf strings.Builder
	report(&buf, old, new_)
	out := buf.String()

	for _, want := range []string{
		"-90.00%", // KDE ns/op 317301295 → 31730129
		"[ns/op]", "[B/op]", "[allocs/op]", "[invocations]",
		"only in old: BenchmarkGone",
		"only in new: BenchmarkFresh",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestDeltaEdgeCases(t *testing.T) {
	if d := delta(0, 0); d != "0.00%" {
		t.Fatalf("delta(0,0) = %q", d)
	}
	if d := delta(0, 5); d != "~" {
		t.Fatalf("delta(0,5) = %q", d)
	}
	if d := delta(100, 150); d != "+50.00%" {
		t.Fatalf("delta(100,150) = %q", d)
	}
}
