// Command experiments regenerates every table and figure of the paper's
// evaluation (Section V) against the synthetic reproduction substrate.
//
// Usage:
//
//	experiments -experiment all
//	experiments -experiment fig3 -scale 0.1
//	experiments -experiment fig9 -seed 7
//
// Valid experiment ids: table1 table2 fig2 fig3 fig4 fig5 fig6 fig7 fig8
// fig9 fig10 warmup sim dse scaling baselines xval all. The warmup study
// implements the paper's stated future work; sim reproduces Section V-G;
// dse sweeps the design space the sampling plan is meant to drive; scaling
// validates the speedup-vs-scale extrapolation; baselines adds the
// TBPoint-style related-work comparator; xval rank-correlates the analytical
// model with the cycle-level simulator.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/gpusampling/sieve/internal/cliflags"
	"github.com/gpusampling/sieve/internal/experiments"
	"github.com/gpusampling/sieve/internal/obs"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id (table1, table2, fig2..fig10, all)")
		scale      = cliflags.Scale(flag.CommandLine, 0)
		theta      = cliflags.Theta(flag.CommandLine)
		seed       = cliflags.Seed(flag.CommandLine)
		workers    = cliflags.Parallelism(flag.CommandLine, "workers")
		method     = flag.String("method", "", "comma-separated sampling methodologies for the accuracy tables (empty = every registered strategy)")
		logLevel   = cliflags.LogLevel(flag.CommandLine)
	)
	stream, reservoir := cliflags.Stream(flag.CommandLine)
	report, traceOut := cliflags.Report(flag.CommandLine)
	flag.Parse()
	logger := cliflags.MustLogger("experiments", *logLevel)

	// -report / -trace-out record per-stage spans across every experiment's
	// sampling runs into one collector, exported after the tables print.
	ctx := context.Background()
	var col *obs.Collector
	if *report != "" || *traceOut != "" {
		col = obs.New()
		ctx = obs.WithCollector(ctx, col)
	}

	r := experiments.NewRunner(experiments.Config{
		Scale: *scale, Theta: *theta, Seed: *seed, Parallelism: *workers,
		Stream: *stream, ReservoirSize: *reservoir, Ctx: ctx,
		Methods: cliflags.SplitList(*method),
	})
	ids := strings.Split(strings.ToLower(*experiment), ",")
	if len(ids) == 1 && ids[0] == "all" {
		ids = []string{"table1", "table2", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "warmup", "sim", "dse", "scaling", "baselines", "xval"}
	}
	if err := run(r, ids, *workers); err != nil {
		logger.Error("run failed", "error", err)
		os.Exit(1)
	}
	if err := cliflags.WriteObsOutputs(col, *report, *traceOut); err != nil {
		logger.Error("observability export failed", "error", err)
		os.Exit(1)
	}
}

func run(r *experiments.Runner, ids []string, workers int) error {
	fmt.Printf("config: scale=%g theta=%g seed=%d\n\n",
		r.Config().Scale, r.Config().Theta, r.Config().Seed)
	// Pre-warm the workload pipelines in parallel: figures share them.
	var warm []string
	for _, id := range ids {
		switch id {
		case "table1":
			warm = append(warm, experiments.ChallengingNames()...)
			warm = append(warm, experiments.TraditionalNames()...)
		case "fig8":
			warm = append(warm, experiments.TraditionalNames()...)
		case "table2":
		default:
			warm = append(warm, experiments.ChallengingNames()...)
		}
	}
	if len(warm) > 0 {
		if err := r.Warm(dedup(warm), workers); err != nil {
			return err
		}
	}
	for _, id := range ids {
		tab, err := produce(r, id)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if err := tab.Print(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

func dedup(names []string) []string {
	seen := make(map[string]bool)
	var out []string
	for _, n := range names {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

func produce(r *experiments.Runner, id string) (*experiments.Table, error) {
	switch id {
	case "table1":
		return r.Table1()
	case "table2":
		return experiments.Table2(), nil
	case "fig2":
		rows, err := r.Fig2()
		if err != nil {
			return nil, err
		}
		return experiments.RenderFig2(rows), nil
	case "fig3":
		evs, err := r.Fig3()
		if err != nil {
			return nil, err
		}
		return experiments.RenderAccuracy(
			"Fig. 3: prediction error for Sieve and PKS (Cactus + MLPerf)", evs,
			"paper: Sieve 1.2% avg (max 3.2%); PKS 16.5% avg (max 60.4% spt, 46% rnnt)"), nil
	case "fig4":
		evs, err := r.Fig3()
		if err != nil {
			return nil, err
		}
		return experiments.RenderFig4(evs), nil
	case "fig5":
		rows, err := r.Fig5()
		if err != nil {
			return nil, err
		}
		return experiments.RenderFig5(rows), nil
	case "fig6":
		evs, err := r.Fig3()
		if err != nil {
			return nil, err
		}
		return experiments.RenderFig6(evs)
	case "fig7":
		rows, err := r.Fig7()
		if err != nil {
			return nil, err
		}
		return experiments.RenderFig7(rows)
	case "fig8":
		evs, err := r.Fig8()
		if err != nil {
			return nil, err
		}
		return experiments.RenderAccuracy(
			"Fig. 8: prediction error in traditional suites (Parboil + Rodinia + SDK)", evs,
			"paper: Sieve 0.32% avg (max 2.3%); PKS 1.3% avg (max 23% cfd)"), nil
	case "fig9":
		rows, err := r.Fig9()
		if err != nil {
			return nil, err
		}
		return experiments.RenderFig9(rows), nil
	case "fig10":
		points, err := r.Fig10()
		if err != nil {
			return nil, err
		}
		return experiments.RenderFig10(points), nil
	case "warmup":
		rows, err := r.WarmupStudy()
		if err != nil {
			return nil, err
		}
		return experiments.RenderWarmup(rows), nil
	case "sim":
		rows, err := r.SimStudy(0)
		if err != nil {
			return nil, err
		}
		return experiments.RenderSimStudy(rows), nil
	case "dse":
		results, err := r.DSE()
		if err != nil {
			return nil, err
		}
		return experiments.RenderDSE(results), nil
	case "scaling":
		rows, err := r.Scaling()
		if err != nil {
			return nil, err
		}
		return experiments.RenderScaling(rows), nil
	case "baselines":
		rows, err := r.Baselines()
		if err != nil {
			return nil, err
		}
		return experiments.RenderBaselines(rows), nil
	case "xval":
		rows, err := r.CrossValidate(0)
		if err != nil {
			return nil, err
		}
		return experiments.RenderXVal(rows), nil
	default:
		return nil, fmt.Errorf("unknown experiment %q", id)
	}
}
