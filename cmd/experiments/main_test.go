package main

import (
	"testing"

	"github.com/gpusampling/sieve/internal/experiments"
)

func TestProduceKnownIDs(t *testing.T) {
	r := experiments.NewRunner(experiments.Config{Scale: 0.005})
	// Cheap ones executed for real; expensive figures are covered by the
	// experiments package's own tests.
	for _, id := range []string{"table2"} {
		tab, err := produce(r, id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if tab == nil || len(tab.Rows) == 0 {
			t.Fatalf("%s: empty table", id)
		}
	}
}

func TestProduceUnknownID(t *testing.T) {
	r := experiments.NewRunner(experiments.Config{Scale: 0.005})
	if _, err := produce(r, "fig99"); err == nil {
		t.Fatal("want error for unknown experiment")
	}
}

func TestDedup(t *testing.T) {
	got := dedup([]string{"a", "b", "a", "c", "b"})
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("dedup = %v", got)
	}
}

func TestRunSmallExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real (small) experiment")
	}
	r := experiments.NewRunner(experiments.Config{Scale: 0.005})
	if err := run(r, []string{"fig7"}, 2); err != nil {
		t.Fatal(err)
	}
	if err := run(r, []string{"nope"}, 1); err == nil {
		t.Fatal("want error for unknown id")
	}
}
