// Command sieve runs the Sieve sampling pipeline on one workload: profile
// (or load a profile CSV), stratify, select weighted representative kernel
// invocations, and optionally validate the prediction against the golden
// full-run measurement.
//
// Usage:
//
//	sieve -workload lmc -scale 0.05                  # end to end with validation
//	sieve -workload lmc -profile-out lmc.csv         # emit the profile CSV
//	sieve -profile-in lmc.csv                        # stratify a saved profile
//	sieve -workload rnnt -theta 0.2 -policy max-cta  # explore options
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"

	"github.com/gpusampling/sieve"
	"github.com/gpusampling/sieve/internal/cliflags"
	"github.com/gpusampling/sieve/internal/core"
	"github.com/gpusampling/sieve/internal/pks"
	"github.com/gpusampling/sieve/internal/sampler"
)

func main() {
	var (
		workload     = flag.String("workload", "", "Table I workload name to generate and profile")
		specFile     = flag.String("spec", "", "generate from a custom workload spec JSON instead of a catalog name")
		scale        = cliflags.Scale(flag.CommandLine, 0.05)
		theta        = cliflags.Theta(flag.CommandLine)
		policy       = flag.String("policy", "dominant-cta-first", "representative policy: dominant-cta-first, first-chronological, max-cta")
		splitter     = flag.String("splitter", "kde", "Tier-3 splitter: kde, equal-width, gmm")
		arch         = cliflags.Arch(flag.CommandLine)
		profileIn    = flag.String("profile-in", "", "read the profile from this CSV instead of profiling")
		profileOut   = flag.String("profile-out", "", "write the instruction-count profile CSV here")
		validate     = flag.Bool("validate", true, "measure the full run and report prediction error (needs -workload)")
		characterize = flag.Bool("characterize", false, "print the per-kernel workload characterization")
		parallelism  = cliflags.Parallelism(flag.CommandLine)
		method       = cliflags.Method(flag.CommandLine)
		seed         = cliflags.Seed(flag.CommandLine)
		logLevel     = cliflags.LogLevel(flag.CommandLine)
	)
	stream, reservoir := cliflags.Stream(flag.CommandLine)
	report, traceOut := cliflags.Report(flag.CommandLine)
	flag.Parse()
	logger := cliflags.MustLogger("sieve", *logLevel)
	if *characterize {
		if err := runCharacterize(*workload, *scale, *theta, *arch, *profileIn); err != nil {
			logger.Error("characterize failed", "error", err)
			os.Exit(1)
		}
		return
	}
	cfg := runConfig{
		Workload: *workload, SpecFile: *specFile, Scale: *scale, Theta: *theta,
		Policy: *policy, Splitter: *splitter, Arch: *arch,
		ProfileIn: *profileIn, ProfileOut: *profileOut,
		Validate: *validate, Parallelism: *parallelism,
		Stream: *stream, Reservoir: *reservoir,
		Method: *method, Seed: *seed,
		Report: *report, TraceOut: *traceOut,
	}
	if err := run(cfg); err != nil {
		logger.Error("run failed", "error", err)
		os.Exit(1)
	}
}

// runConfig carries the resolved command-line options.
type runConfig struct {
	Workload, SpecFile     string
	Scale, Theta           float64
	Policy, Splitter, Arch string
	ProfileIn, ProfileOut  string
	Validate               bool
	Parallelism            int
	Stream                 bool
	Reservoir              int
	Method                 string
	Seed                   int64
	Report, TraceOut       string
}

func run(cfg runConfig) error {
	workload, specFile := cfg.Workload, cfg.SpecFile
	scale := cfg.Scale
	policyName, splitterName, archName := cfg.Policy, cfg.Splitter, cfg.Arch
	profileIn, profileOut := cfg.ProfileIn, cfg.ProfileOut
	validate := cfg.Validate
	opts := sieve.Options{Theta: cfg.Theta, Parallelism: cfg.Parallelism}
	switch policyName {
	case "dominant-cta-first":
		opts.Selection = sieve.SelectDominantCTAFirst
	case "first-chronological":
		opts.Selection = sieve.SelectFirstChronological
	case "max-cta":
		opts.Selection = sieve.SelectMaxCTA
	default:
		return fmt.Errorf("unknown policy %q", policyName)
	}
	switch splitterName {
	case "kde":
		opts.Tier3Splitter = sieve.SplitKDE
	case "equal-width":
		opts.Tier3Splitter = sieve.SplitEqualWidth
	case "gmm":
		opts.Tier3Splitter = sieve.SplitGMM
	default:
		return fmt.Errorf("unknown splitter %q", splitterName)
	}
	archCfg, err := sieve.ResolveArch(archName)
	if err != nil {
		return err
	}
	hw, err := sieve.NewHardware(archCfg)
	if err != nil {
		return err
	}
	if cfg.Stream && profileIn != "" && profileOut != "" {
		return fmt.Errorf("-profile-out needs a materialized profile; drop it or drop -stream")
	}
	method := sampler.Canonical(cfg.Method)
	if _, err := sampler.New(method); err != nil {
		return err
	}
	if method != core.MethodSieve && cfg.Stream {
		return fmt.Errorf("-method %s does not support -stream (only the default sieve sampler streams)", method)
	}

	// -report / -trace-out attach an observability collector to the context the
	// sampling pipeline runs under; without them the context stays bare and the
	// pipeline records nothing.
	ctx := context.Background()
	var col *sieve.Collector
	if cfg.Report != "" || cfg.TraceOut != "" {
		col = sieve.NewCollector()
		ctx = sieve.WithCollector(ctx, col)
	}

	var profile *sieve.Profile
	var w *sieve.Workload
	switch {
	case specFile != "":
		f, err := os.Open(specFile)
		if err != nil {
			return err
		}
		spec, err := sieve.ReadWorkloadSpecJSON(f)
		f.Close()
		if err != nil {
			return err
		}
		if w, err = sieve.GenerateFromSpec(spec, scale); err != nil {
			return err
		}
		fmt.Printf("custom workload %s (%s): %d kernels, %d invocations\n",
			w.Name, w.Suite, w.NumKernels(), w.NumInvocations())
		if profile, err = sieve.ProfileInstructionCounts(w, hw); err != nil {
			return err
		}
	case profileIn != "":
		validate = false // no workload to measure
		if cfg.Stream {
			// Leave the profile on disk: SampleCSV streams it row by row.
			break
		}
		f, err := os.Open(profileIn)
		if err != nil {
			return err
		}
		defer f.Close()
		if profile, err = sieve.ReadProfileCSV(f); err != nil {
			return err
		}
		fmt.Printf("loaded profile: %d invocations from %s\n", profile.NumInvocations(), profileIn)
	case workload != "":
		if w, err = sieve.GenerateWorkload(workload, scale); err != nil {
			return err
		}
		fmt.Printf("workload %s (%s): %d kernels, %d invocations\n",
			w.Name, w.Suite, w.NumKernels(), w.NumInvocations())
		if profile, err = sieve.ProfileInstructionCounts(w, hw); err != nil {
			return err
		}
		fmt.Printf("profiled with %s in %.1fs (modeled)\n", profile.Tool, profile.WallSeconds)
	default:
		return fmt.Errorf("need -workload or -profile-in")
	}

	if profileOut != "" {
		f, err := os.Create(profileOut)
		if err != nil {
			return err
		}
		if err := sieve.WriteProfileCSV(profile, f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("profile CSV written to %s\n", profileOut)
	}

	var plan *sieve.Plan
	switch {
	case cfg.Stream && profile == nil:
		// -stream -profile-in: the bounded-memory path end to end — the
		// profile table is never materialized.
		f, err := os.Open(profileIn)
		if err != nil {
			return err
		}
		plan, err = sieve.SampleCSVContext(ctx, f, sieve.StreamOptions{Options: opts, ReservoirSize: cfg.Reservoir})
		f.Close()
		if err != nil {
			return err
		}
		fmt.Printf("streamed profile from %s\n", profileIn)
	case cfg.Stream:
		plan, err = sieve.SampleStreamContext(ctx, sieve.SliceSource(sieve.ProfileRows(profile)),
			sieve.StreamOptions{Options: opts, ReservoirSize: cfg.Reservoir})
		if err != nil {
			return err
		}
	case method != core.MethodSieve:
		mp := &sieve.MethodProfile{Rows: sieve.ProfileRows(profile)}
		if method == sampler.MethodPKS {
			if w == nil {
				return fmt.Errorf("-method pks needs a generated workload (-workload or -spec): its feature vectors and golden cycle reference come from full profiling")
			}
			full, err := sieve.ProfileFull(w, hw)
			if err != nil {
				return err
			}
			mp.Features = sieve.FeatureRows(full)
			mp.GoldenCycles = hw.MeasureWorkload(w)
		}
		plan, err = sieve.SampleMethodContext(ctx, method, mp, sieve.MethodOptions{
			Core: opts,
			Seed: cfg.Seed,
			PKS:  pks.Options{Seed: cfg.Seed, Parallelism: cfg.Parallelism},
		})
		if err != nil {
			return err
		}
	default:
		plan, err = sieve.SampleContext(ctx, sieve.ProfileRows(profile), opts)
		if err != nil {
			return err
		}
	}
	if col != nil {
		if err := cliflags.WriteObsOutputs(col, cfg.Report, cfg.TraceOut); err != nil {
			return err
		}
		if cfg.Report != "" && cfg.Report != "-" {
			fmt.Printf("observability report written to %s\n", cfg.Report)
		}
		if cfg.TraceOut != "" && cfg.TraceOut != "-" {
			fmt.Printf("trace-event JSON written to %s\n", cfg.TraceOut)
		}
	}
	printPlan(plan)
	if plan.Method != "" {
		fmt.Printf("methodology: %s (seed %d)\n", plan.Method, cfg.Seed)
	}
	if iv := plan.Interval; iv != nil {
		if iv.Resamples > 0 {
			fmt.Printf("resampled error interval (%d resamples): %.3f%% ± %.3f%%, 2σ band [%.3f%%, %.3f%%]\n",
				iv.Resamples, 100*iv.Mean, 100*iv.StdErr, 100*iv.Low, 100*iv.High)
		} else {
			fmt.Printf("analytic error interval: ±%.3f%% (2σ band [%.3f%%, %.3f%%])\n",
				100*iv.StdErr, 100*iv.Low, 100*iv.High)
		}
	}
	if bound, err := plan.EstimateErrorBound(); err == nil {
		fmt.Printf("\nheuristic uncertainty (no golden reference): ±%.2f%% (2σ); worst stratum %s (%.0f%% of variance)\n",
			100*bound.TwoSigma, bound.WorstStratum, 100*bound.WorstContribution)
	}

	if validate && w != nil {
		golden := hw.MeasureWorkload(w)
		pred, err := plan.Predict(func(i int) (float64, error) { return golden[i], nil })
		if err != nil {
			return err
		}
		var total float64
		for _, c := range golden {
			total += c
		}
		fmt.Printf("\nvalidation on %s:\n", archCfg.Name)
		fmt.Printf("  golden cycles     %.4g\n", total)
		fmt.Printf("  predicted cycles  %.4g\n", pred.Cycles)
		fmt.Printf("  predicted IPC     %.2f\n", pred.IPC)
		fmt.Printf("  error             %.2f%%\n", 100*abs(pred.Cycles-total)/total)
		if plan.Sampled {
			fmt.Printf("  simulation speedup unavailable (sampled plan: membership lists are partial)\n")
		} else {
			sp, err := plan.Speedup(golden)
			if err != nil {
				return err
			}
			fmt.Printf("  simulation speedup %.0fx\n", sp)
		}
	}
	return nil
}

// runCharacterize prints the per-kernel workload characterization.
func runCharacterize(workload string, scale, theta float64, archName, profileIn string) error {
	archCfg, err := sieve.ResolveArch(archName)
	if err != nil {
		return err
	}
	var profile *sieve.Profile
	switch {
	case profileIn != "":
		f, err := os.Open(profileIn)
		if err != nil {
			return err
		}
		defer f.Close()
		if profile, err = sieve.ReadProfileCSV(f); err != nil {
			return err
		}
	case workload != "":
		w, err := sieve.GenerateWorkload(workload, scale)
		if err != nil {
			return err
		}
		hw, err := sieve.NewHardware(archCfg)
		if err != nil {
			return err
		}
		if profile, err = sieve.ProfileInstructionCounts(w, hw); err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -workload or -profile-in")
	}
	sums, err := sieve.Characterize(sieve.ProfileRows(profile), theta)
	if err != nil {
		return err
	}
	fmt.Printf("%-28s %6s %-7s %8s %10s %10s %10s %7s %7s %7s\n",
		"kernel", "invocs", "tier", "share", "instr min", "instr mean", "instr max", "CoV", "CTA", "strata")
	for _, s := range sums {
		fmt.Printf("%-28s %6d %-7s %7.2f%% %10.3g %10.3g %10.3g %7.3f %7d %7d\n",
			s.Kernel, s.Invocations, s.Tier, 100*s.InstrShare,
			s.InstrMin, s.InstrMean, s.InstrMax, s.InstrCoV, s.DominantCTA, s.Strata)
	}
	return nil
}

func printPlan(plan *sieve.Plan) {
	// TierInvocations counts every streamed invocation even when a sampled
	// plan retains only a bounded subset per stratum, so it is the honest
	// total for both paths.
	total := plan.TierInvocations[0] + plan.TierInvocations[1] + plan.TierInvocations[2]
	fmt.Printf("\nstratification (θ=%.2f): %d strata over %d invocations\n",
		plan.Theta, plan.NumStrata(), total)
	if plan.Sampled {
		fmt.Printf("sampled plan: %d invocations retained in bounded reservoirs\n", plan.NumInvocations())
	}
	fmt.Printf("tier mix: Tier-1 %d, Tier-2 %d, Tier-3 %d invocations\n",
		plan.TierInvocations[0], plan.TierInvocations[1], plan.TierInvocations[2])

	strata := append([]sieve.Stratum(nil), plan.Strata...)
	sort.Slice(strata, func(a, b int) bool { return strata[a].Weight > strata[b].Weight })
	limit := 15
	if len(strata) < limit {
		limit = len(strata)
	}
	fmt.Printf("\ntop %d strata by weight:\n", limit)
	fmt.Printf("  %-28s %-7s %9s %8s %12s\n", "kernel", "tier", "members", "weight", "rep(index)")
	for _, s := range strata[:limit] {
		fmt.Printf("  %-28s %-7s %9d %7.2f%% %12d\n",
			s.Kernel, s.Tier, len(s.Invocations), 100*s.Weight, s.Representative)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
