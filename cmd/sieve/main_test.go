package main

import (
	"os"
	"path/filepath"
	"testing"
)

// base returns a runConfig with the defaults the flag set would produce.
func base() runConfig {
	return runConfig{
		Scale: 0.01, Theta: 0.4,
		Policy: "dominant-cta-first", Splitter: "kde", Arch: "ampere",
	}
}

func TestRunEndToEnd(t *testing.T) {
	cfg := base()
	cfg.Workload, cfg.Validate = "gru", true
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRunPolicies(t *testing.T) {
	for _, policy := range []string{"first-chronological", "max-cta"} {
		cfg := base()
		cfg.Workload, cfg.Scale, cfg.Policy, cfg.Arch = "dwt2d", 1.0, policy, "turing"
		if err := run(cfg); err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
	}
}

func TestRunProfileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "profile.csv")
	cfg := base()
	cfg.Workload, cfg.Scale, cfg.ProfileOut = "histo", 1.0, csv
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(csv); err != nil {
		t.Fatalf("profile CSV not written: %v", err)
	}
	// Load the CSV back instead of a workload.
	cfg = base()
	cfg.ProfileIn, cfg.Validate = csv, true
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRunStream(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "profile.csv")
	cfg := base()
	cfg.Workload, cfg.Scale, cfg.ProfileOut = "histo", 1.0, csv
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}

	// Stream the CSV end to end without materializing it.
	cfg = base()
	cfg.ProfileIn, cfg.Stream = csv, true
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}

	// A tiny reservoir forces the sampled fallback; the run must still work.
	cfg.Reservoir = 4
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}

	// Streaming straight from a generated workload, with validation: the
	// sampler sees the rows through SliceSource and still predicts.
	cfg = base()
	cfg.Workload, cfg.Stream, cfg.Validate = "gru", true, true
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}

	// -profile-out cannot be served from the never-materialized CSV stream.
	cfg = base()
	cfg.ProfileIn, cfg.Stream, cfg.ProfileOut = csv, true, filepath.Join(dir, "again.csv")
	if err := run(cfg); err == nil {
		t.Fatal("want error for -stream -profile-in -profile-out")
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*runConfig)
	}{
		{"no input", func(c *runConfig) { c.Scale = 0.1 }},
		{"bad policy", func(c *runConfig) { c.Workload, c.Policy = "gru", "nope" }},
		{"bad arch", func(c *runConfig) { c.Workload, c.Arch = "gru", "tpu" }},
		{"unknown workload", func(c *runConfig) { c.Workload = "zzz" }},
		{"missing profile", func(c *runConfig) { c.ProfileIn = "/does/not/exist.csv" }},
		{"missing profile stream", func(c *runConfig) { c.ProfileIn, c.Stream = "/does/not/exist.csv", true }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := base()
			c.mutate(&cfg)
			if err := run(cfg); err == nil {
				t.Fatal("want error")
			}
		})
	}
}

func TestRunCharacterize(t *testing.T) {
	if err := runCharacterize("gru", 0.01, 0.4, "ampere", ""); err != nil {
		t.Fatal(err)
	}
	if err := runCharacterize("", 0.01, 0.4, "ampere", ""); err == nil {
		t.Fatal("want error without input")
	}
	if err := runCharacterize("gru", 0.01, 0.4, "apu", ""); err == nil {
		t.Fatal("want error for unknown arch")
	}
}

func TestRunFromCustomSpec(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "spec.json")
	content := `{
	  "Name": "custom", "Suite": "Custom",
	  "Kernels": 3, "FullInvocations": 400, "Seed": 5,
	  "Tier1Frac": 0.4, "LowVarCoVLo": 0.05, "LowVarCoVHi": 0.3,
	  "Uniformity": 0.5, "LocalityJitter": 0.02
	}`
	if err := os.WriteFile(spec, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := base()
	cfg.SpecFile, cfg.Scale, cfg.Splitter, cfg.Validate = spec, 1.0, "gmm", true
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	cfg = base()
	cfg.SpecFile, cfg.Scale = "/missing/spec.json", 1.0
	if err := run(cfg); err == nil {
		t.Fatal("want error for missing spec file")
	}
}

func TestRunRejectsUnknownSplitter(t *testing.T) {
	cfg := base()
	cfg.Workload, cfg.Splitter = "gru", "median"
	if err := run(cfg); err == nil {
		t.Fatal("want error for unknown splitter")
	}
	cfg = base()
	cfg.Workload, cfg.Scale, cfg.Splitter, cfg.Validate = "gst", 1.0, "equal-width", true
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
}
