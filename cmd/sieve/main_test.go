package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunEndToEnd(t *testing.T) {
	if err := run("gru", "", 0.01, 0.4, "dominant-cta-first", "kde", "ampere", "", "", true, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunPolicies(t *testing.T) {
	for _, policy := range []string{"first-chronological", "max-cta"} {
		if err := run("dwt2d", "", 1.0, 0.4, policy, "kde", "turing", "", "", false, 0); err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
	}
}

func TestRunProfileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "profile.csv")
	if err := run("histo", "", 1.0, 0.4, "dominant-cta-first", "kde", "ampere", "", csv, false, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(csv); err != nil {
		t.Fatalf("profile CSV not written: %v", err)
	}
	// Load the CSV back instead of a workload.
	if err := run("", "", 0.01, 0.4, "dominant-cta-first", "kde", "ampere", csv, "", true, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		call func() error
	}{
		{"no input", func() error { return run("", "", 0.1, 0.4, "dominant-cta-first", "kde", "ampere", "", "", false, 0) }},
		{"bad policy", func() error { return run("gru", "", 0.1, 0.4, "nope", "kde", "ampere", "", "", false, 0) }},
		{"bad arch", func() error { return run("gru", "", 0.1, 0.4, "dominant-cta-first", "kde", "tpu", "", "", false, 0) }},
		{"unknown workload", func() error { return run("zzz", "", 0.1, 0.4, "dominant-cta-first", "kde", "ampere", "", "", false, 0) }},
		{"missing profile", func() error {
			return run("", "", 0.1, 0.4, "dominant-cta-first", "kde", "ampere", "/does/not/exist.csv", "", false, 0)
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.call(); err == nil {
				t.Fatal("want error")
			}
		})
	}
}

func TestRunCharacterize(t *testing.T) {
	if err := runCharacterize("gru", 0.01, 0.4, "ampere", ""); err != nil {
		t.Fatal(err)
	}
	if err := runCharacterize("", 0.01, 0.4, "ampere", ""); err == nil {
		t.Fatal("want error without input")
	}
	if err := runCharacterize("gru", 0.01, 0.4, "apu", ""); err == nil {
		t.Fatal("want error for unknown arch")
	}
}

func TestRunFromCustomSpec(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "spec.json")
	content := `{
	  "Name": "custom", "Suite": "Custom",
	  "Kernels": 3, "FullInvocations": 400, "Seed": 5,
	  "Tier1Frac": 0.4, "LowVarCoVLo": 0.05, "LowVarCoVHi": 0.3,
	  "Uniformity": 0.5, "LocalityJitter": 0.02
	}`
	if err := os.WriteFile(spec, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("", spec, 1.0, 0.4, "dominant-cta-first", "gmm", "ampere", "", "", true, 0); err != nil {
		t.Fatal(err)
	}
	if err := run("", "/missing/spec.json", 1.0, 0.4, "dominant-cta-first", "kde", "ampere", "", "", false, 0); err == nil {
		t.Fatal("want error for missing spec file")
	}
}

func TestRunRejectsUnknownSplitter(t *testing.T) {
	if err := run("gru", "", 0.01, 0.4, "dominant-cta-first", "median", "ampere", "", "", false, 0); err == nil {
		t.Fatal("want error for unknown splitter")
	}
	if err := run("gst", "", 1.0, 0.4, "dominant-cta-first", "equal-width", "ampere", "", "", true, 0); err != nil {
		t.Fatal(err)
	}
}
