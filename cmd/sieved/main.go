// Command sieved serves the Sieve sampling pipeline as a long-lived HTTP
// JSON service: POST a profile CSV (or a catalog workload name) and get a
// content-hash-addressed sampling plan back, cached so identical requests
// are computed once. See docs/service.md for the API.
//
// Usage:
//
//	sieved -addr :8372
//	curl -fsS -X POST -H 'Content-Type: text/csv' --data-binary @profile.csv \
//	    'http://localhost:8372/v1/sample?theta=0.4'
//	curl -fsS -X POST -d '{"workload":"lmc","scale":0.05}' \
//	    http://localhost:8372/v1/sample
//
// The server bounds concurrent sampling runs with a worker-slot semaphore,
// caps request bodies and per-request compute time, and drains in-flight
// runs on SIGINT/SIGTERM before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/gpusampling/sieve/internal/cliflags"
	"github.com/gpusampling/sieve/internal/server"
)

func main() {
	var (
		addr          = flag.String("addr", ":8372", "listen address")
		maxConcurrent = flag.Int("max-concurrent", 0, "worker slots: concurrent sampling runs (0 = GOMAXPROCS)")
		timeout       = flag.Duration("timeout", 60*time.Second, "per-request compute timeout")
		maxBodyMB     = flag.Int("max-body-mb", 32, "request body size limit in MiB (CSV profiles included)")
		cacheEntries  = flag.Int("cache", 128, "plan cache capacity (content-hash-addressed LRU entries)")
		drain         = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain window for in-flight runs")
		withPprof     = flag.Bool("pprof", false, "expose the net/http/pprof profiling handlers under /debug/pprof/")
		batchItems    = flag.Int("max-batch-items", 0, "item limit per POST /v1/batch request (0 = default 64)")
		traceStore    = flag.Int("trace-store", 0, "completed-trace ring store capacity behind GET /debug/traces (0 = default 256)")
		parallelism   = cliflags.Parallelism(flag.CommandLine)
		logLevel      = cliflags.LogLevel(flag.CommandLine)
	)
	peers, self := cliflags.Peers(flag.CommandLine)
	flag.Parse()
	logger := cliflags.MustLogger("sieved", *logLevel)
	if err := run(*addr, server.Config{
		MaxConcurrent:  *maxConcurrent,
		RequestTimeout: *timeout,
		MaxBodyBytes:   int64(*maxBodyMB) << 20,
		CacheEntries:   *cacheEntries,
		MaxBatchItems:  *batchItems,
		TraceEntries:   *traceStore,
		Parallelism:    *parallelism,
		Logger:         logger,
	}, *self, *peers, *drain, *withPprof, logger); err != nil {
		logger.Error("exiting", "error", err)
		os.Exit(1)
	}
}

func run(addr string, cfg server.Config, self, peers string, drain time.Duration, withPprof bool, logger *slog.Logger) error {
	s := server.New(cfg)
	if peerList := server.SplitPeers(peers); len(peerList) > 0 {
		if err := s.SetPeers(self, peerList); err != nil {
			return fmt.Errorf("configure shard ring: %w", err)
		}
		logger.Info("shard ring configured", "self", self, "peers", peerList)
	}
	s.Metrics().Publish("sieved")
	handler := s.Handler()
	if withPprof {
		// The profiling handlers mount on an outer mux so they bypass the
		// access-logged application handler (scrapes every few seconds would
		// drown the log) and stay absent entirely unless requested.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", addr, "pprof", withPprof)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting, then let in-flight sampling runs
	// drain within the window; their request contexts are cancelled when the
	// window expires, which frees the compute workers promptly.
	logger.Info("draining in-flight runs", "window", drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		_ = httpSrv.Close()
		return fmt.Errorf("drain window expired: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
