// Command sieveload is the capacity-aware load harness for a running sieved
// — single node or a -peers cluster. It drives the service through
// registered workload scenarios (JSON sample, raw-CSV sample, batch,
// plan re-reads) in a closed loop (ramped worker pools) or an open loop
// (paced QPS), with zipfian or uniform popularity over a catalog of Table I
// profiles, and writes a BENCH_load.json report: per-workload latency
// percentiles, offered vs achieved QPS, and the targets' own /debug/metrics
// movement (cache-hit, coalescing, peer-traffic rates) across the run.
//
// Usage:
//
//	sieved -addr :8372 &
//	sieveload -targets http://localhost:8372 -duration 30s -ramp 0:4,10s:32
//
// Passing several distributions runs one pass per distribution with a
// distinct cache salt (so each pass starts cold) and reports them together:
//
//	sieveload -dist zipfian,uniform -duration 30s -out BENCH_load.json
//
// See docs/load.md for the full scenario and report reference.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/gpusampling/sieve/client"
	"github.com/gpusampling/sieve/internal/cliflags"
	"github.com/gpusampling/sieve/internal/load"
)

// BenchSchema versions the multi-run wrapper document.
const BenchSchema = "sieve-load-bench/v1"

// benchDoc is the written report: always a runs array, one entry per
// distribution pass, so consumers parse one shape whether the harness ran
// one pass or several.
type benchDoc struct {
	Schema string         `json:"schema"`
	Runs   []*load.Report `json:"runs"`
}

func main() {
	var (
		workloadsF = flag.String("workloads", "sample,sample-csv,batch,planfetch",
			"comma-separated scenario names to run concurrently (see docs/load.md)")
		mode = flag.String("mode", load.ModeClosed,
			"loop mode: closed (ramp = worker count, back-to-back requests) or open (ramp = offered QPS, shed when saturated)")
		duration = flag.Duration("duration", 30*time.Second, "run length per distribution pass")
		rampF    = flag.String("ramp", "0:16",
			"load schedule as offset:target pairs, e.g. 0:100,30s:1000,2m:5000 (workers in closed mode, QPS in open mode)")
		budget = flag.Int("budget", 64,
			"shared global concurrency budget split across scenarios by max-min allocation (0 = unbounded)")
		distF = flag.String("dist", "zipfian",
			"popularity distribution over the catalog: zipfian or uniform; a comma list runs one pass per distribution")
		zipfS = flag.Float64("zipf-s", 1.2, "zipfian skew exponent (> 1; larger = hotter hot set)")
		seed  = flag.Int64("seed", 1,
			"run seed: derives every worker's RNG and the per-pass cache salt (same seed = same request streams)")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-request timeout")
		profilesF = flag.String("profiles", strings.Join(load.DefaultProfileNames, ","),
			"comma-separated Table I workload names forming the profile catalog")
		scalesF = flag.String("scales", "0.25,0.5,1",
			"comma-separated scale factors crossed with -profiles (catalog size = names × scales)")
		methodsF = flag.String("methods", "",
			"comma-separated sampling-methodology pool drawn per workload-mode request (e.g. sieve,twophase,rss; empty = server default; non-default methods cache under distinct plan ids)")
		traceEvery = flag.Int("trace-every", 16,
			"trace every Nth request per worker with a minted X-Sieved-Trace id; sampled traces are fetched back after the run and feed the report's per-stage latency attribution (0 disables)")
		snapshot = flag.Duration("snapshot", 5*time.Second, "period between progress lines on stderr (0 = silent)")
		out      = flag.String("out", "BENCH_load.json", "report destination ('-' = stdout, '' = none)")
		theta    = cliflags.Theta(flag.CommandLine)
		logLevel = cliflags.LogLevel(flag.CommandLine)
	)
	targets := cliflags.Targets(flag.CommandLine, "http://localhost:8372")
	flag.Parse()
	logger := cliflags.MustLogger("sieveload", *logLevel)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ramp, err := load.ParseRamp(*rampF)
	if err != nil {
		fatal(err)
	}
	var dists []load.Dist
	for _, kind := range cliflags.SplitList(*distF) {
		d, err := load.ParseDist(kind, *zipfS)
		if err != nil {
			fatal(err)
		}
		dists = append(dists, d)
	}
	if len(dists) == 0 {
		fatal(fmt.Errorf("sieveload: no distribution selected"))
	}
	scales, err := parseScales(*scalesF)
	if err != nil {
		fatal(err)
	}
	workloadNames := cliflags.SplitList(*workloadsF)
	needCSV := false
	for _, w := range workloadNames {
		if w == "sample-csv" {
			needCSV = true
		}
	}
	catalog, err := load.BuildCatalog(cliflags.SplitList(*profilesF), scales, needCSV)
	if err != nil {
		fatal(err)
	}
	targetList := cliflags.SplitList(*targets)
	if err := probeTargets(ctx, targetList, logger.Info); err != nil {
		fatal(err)
	}

	doc := benchDoc{Schema: BenchSchema}
	for i, dist := range dists {
		cfg := load.Config{
			Targets:   targetList,
			Workloads: workloadNames,
			Mode:      *mode,
			Duration:  *duration,
			Ramp:      ramp,
			Budget:    *budget,
			Dist:      dist,
			// Each pass salts the cache differently so it starts cold even
			// against a long-lived server — the zipfian-vs-uniform contrast
			// would otherwise measure the previous pass's warm cache.
			Seed:       *seed + int64(i)*1_000_000_007,
			Theta:      *theta,
			Methods:    cliflags.SplitList(*methodsF),
			Timeout:    *timeout,
			TraceEvery: *traceEvery,
			Catalog:    catalog,
			Snapshot:   *snapshot,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			},
		}
		runner, err := load.NewRunner(cfg)
		if err != nil {
			fatal(err)
		}
		logger.Info("pass starting", "dist", dist.Kind, "mode", *mode,
			"duration", *duration, "ramp", ramp.String(), "budget", *budget,
			"catalog", len(catalog), "targets", targetList)
		rep, err := runner.Run(ctx)
		if err != nil {
			fatal(err)
		}
		doc.Runs = append(doc.Runs, rep)
		logger.Info("pass done", "dist", dist.Kind,
			"achieved_qps", fmt.Sprintf("%.1f", rep.AchievedQPS),
			"offered_qps", fmt.Sprintf("%.1f", rep.OfferedQPS),
			"p50_ms", fmt.Sprintf("%.2f", rep.LatencyMS.P50),
			"p99_ms", fmt.Sprintf("%.2f", rep.LatencyMS.P99),
			"cache_hit_rate", fmt.Sprintf("%.3f", rep.Server.CacheHitRate),
			"coalesced_rate", fmt.Sprintf("%.3f", rep.Server.CoalescedRate),
			"hot_rate", fmt.Sprintf("%.3f", rep.Server.HotRate))
		if table := rep.TraceAttribution.Table(); table != "" {
			fmt.Fprint(os.Stderr, table)
		}
		if ctx.Err() != nil {
			break // interrupted: report what completed
		}
	}
	if err := writeDoc(*out, doc); err != nil {
		fatal(err)
	}
}

// probeTargets health-checks every target before the run so a typo'd URL
// fails in one second, not after a full pass of transport errors.
func probeTargets(ctx context.Context, targets []string, infof func(string, ...any)) error {
	if len(targets) == 0 {
		return fmt.Errorf("sieveload: no targets")
	}
	for _, t := range targets {
		c, err := client.New(t, client.WithTimeout(5*time.Second))
		if err != nil {
			return err
		}
		h, err := c.Healthz(ctx)
		if err != nil {
			return fmt.Errorf("sieveload: target %s unreachable: %w", t, err)
		}
		infof("target healthy", "target", t, "version", h.Version, "peers", len(h.Peers))
	}
	return nil
}

func parseScales(csv string) ([]float64, error) {
	var out []float64
	for _, s := range cliflags.SplitList(csv) {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, fmt.Errorf("sieveload: bad scale %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func writeDoc(path string, doc benchDoc) error {
	if path == "" {
		return nil
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "sieveload: %v\n", err)
	os.Exit(1)
}
