// Command simulate replays SASS-like trace files through the trace-driven
// cycle-level GPU simulator — the paper's Section V-G workflow, where
// parallel simulation time is determined by the longest-running kernel
// invocation.
//
// Modes:
//
//	simulate -traces traces/                   # each trace on its own core (GOMAXPROCS workers)
//	simulate -traces traces/ -parallel 0       # serial, one SM + extrapolation
//	simulate -traces traces/ -pkp              # PKP early exit (IPC convergence)
//	simulate -traces traces/ -multism 16       # explicit multi-SM simulation
//	simulate -traces traces/ -arch turing      # or a JSON arch file
//	simulate -traces traces/ -json out.json    # machine-readable results
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"github.com/gpusampling/sieve"
	"github.com/gpusampling/sieve/internal/cliflags"
)

func main() {
	var (
		dir      = flag.String("traces", "traces", "directory of .trace files")
		archName = cliflags.Arch(flag.CommandLine)
		parallel = cliflags.Parallelism(flag.CommandLine, "parallel")
		pkp      = flag.Bool("pkp", false, "Principal Kernel Projection: stop each trace once IPC converges")
		multiSM  = flag.Int("multism", 0, "simulate across this many explicit SMs (0 = single-SM mode)")
		jsonOut  = flag.String("json", "", "also write results as JSON to this file")
		logLevel = cliflags.LogLevel(flag.CommandLine)
	)
	flag.Parse()
	logger := cliflags.MustLogger("simulate", *logLevel)
	if err := run(*dir, *archName, *parallel, *pkp, *multiSM, *jsonOut); err != nil {
		logger.Error("run failed", "error", err)
		os.Exit(1)
	}
}

// record is the JSON form of one simulated trace.
type record struct {
	Kernel            string  `json:"kernel"`
	Invocation        int     `json:"invocation"`
	GPUCycles         float64 `json:"gpu_cycles"`
	SMCycles          uint64  `json:"sm_cycles"`
	IPC               float64 `json:"ipc"`
	L1HitRate         float64 `json:"l1_hit_rate"`
	L2HitRate         float64 `json:"l2_hit_rate"`
	SimulatedFraction float64 `json:"simulated_fraction,omitempty"`
	Imbalance         float64 `json:"imbalance,omitempty"`
}

func run(dir, archName string, parallel int, pkp bool, multiSM int, jsonOut string) error {
	if pkp && multiSM > 0 {
		return fmt.Errorf("-pkp and -multism are mutually exclusive")
	}
	arch, err := sieve.ResolveArch(archName)
	if err != nil {
		return err
	}

	paths, err := filepath.Glob(filepath.Join(dir, "*.trace"))
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("no .trace files in %s", dir)
	}
	sort.Strings(paths)

	var traces []*sieve.Trace
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		tr, err := sieve.ReadTrace(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		traces = append(traces, tr)
	}

	simulator, err := sieve.NewSimulator(arch)
	if err != nil {
		return err
	}

	start := time.Now()
	var records []record
	mode := "serial"
	switch {
	case pkp:
		mode = "serial + PKP"
		for _, tr := range traces {
			res, err := simulator.SimulateProjected(tr, sieve.PKPOptions{})
			if err != nil {
				return err
			}
			records = append(records, record{
				Kernel: res.Kernel, Invocation: res.Invocation,
				GPUCycles: res.Cycles, SMCycles: res.SMCycles, IPC: res.IPC,
				L1HitRate: res.L1HitRate, L2HitRate: res.L2HitRate,
				SimulatedFraction: res.SimulatedFraction,
			})
		}
	case multiSM > 0:
		mode = fmt.Sprintf("multi-SM (%d)", multiSM)
		for _, tr := range traces {
			res, err := simulator.SimulateMultiSM(tr, multiSM)
			if err != nil {
				return err
			}
			records = append(records, record{
				Kernel: res.Kernel, Invocation: res.Invocation,
				GPUCycles: res.Cycles, SMCycles: res.SMCycles, IPC: res.IPC,
				L1HitRate: res.L1HitRate, L2HitRate: res.L2HitRate,
				Imbalance: res.Imbalance,
			})
		}
	default:
		var results []*sieve.SimResult
		if parallel > 0 {
			mode = fmt.Sprintf("parallel (%d workers)", parallel)
			results, err = simulator.SimulateParallel(traces, parallel)
		} else {
			results, err = simulator.SimulateAll(traces)
		}
		if err != nil {
			return err
		}
		for _, res := range results {
			records = append(records, record{
				Kernel: res.Kernel, Invocation: res.Invocation,
				GPUCycles: res.Cycles, SMCycles: res.SMCycles, IPC: res.IPC,
				L1HitRate: res.L1HitRate, L2HitRate: res.L2HitRate,
			})
		}
	}
	elapsed := time.Since(start)

	fmt.Printf("simulated %d traces on %s, %s dispatch, wall time %s\n\n",
		len(records), arch.Name, mode, elapsed.Round(time.Millisecond))
	fmt.Printf("%-36s %12s %12s %8s %8s %8s\n",
		"kernel/invocation", "GPU cycles", "SM cycles", "IPC", "L1 hit", "L2 hit")
	var totalCycles float64
	for _, r := range records {
		extra := ""
		if r.SimulatedFraction > 0 && r.SimulatedFraction < 1 {
			extra = fmt.Sprintf("  (PKP: %.0f%% simulated)", 100*r.SimulatedFraction)
		}
		if r.Imbalance > 0 {
			extra = fmt.Sprintf("  (imbalance %.2f)", r.Imbalance)
		}
		fmt.Printf("%-36s %12.3g %12d %8.2f %7.1f%% %7.1f%%%s\n",
			fmt.Sprintf("%s/%d", r.Kernel, r.Invocation),
			r.GPUCycles, r.SMCycles, r.IPC, 100*r.L1HitRate, 100*r.L2HitRate, extra)
		totalCycles += r.GPUCycles
	}
	fmt.Printf("\ntotal estimated GPU cycles across representatives: %.4g\n", totalCycles)

	if jsonOut != "" {
		f, err := os.Create(jsonOut)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(records); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("JSON results written to %s\n", jsonOut)
	}
	return nil
}
