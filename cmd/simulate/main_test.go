package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"github.com/gpusampling/sieve"
)

// writeTraces produces a small trace directory via the public API.
func writeTraces(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	w, err := sieve.GenerateWorkload("dwt2d", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	hw, err := sieve.NewHardware(sieve.Ampere())
	if err != nil {
		t.Fatal(err)
	}
	profile, err := sieve.ProfileInstructionCounts(w, hw)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := sieve.Sample(sieve.ProfileRows(profile), sieve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	traces, err := sieve.GeneratePlanTraces(w, plan, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range traces {
		f, err := os.Create(filepath.Join(dir, filepath.Base(tr.Kernel)+string(rune('a'+i))+".trace"))
		if err != nil {
			t.Fatal(err)
		}
		if err := sieve.WriteTrace(tr, f); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	return dir
}

func TestRunSerialAndParallel(t *testing.T) {
	dir := writeTraces(t)
	if err := run(dir, "ampere", 0, false, 0, ""); err != nil {
		t.Fatal(err)
	}
	if err := run(dir, "turing", 2, false, 0, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(t.TempDir(), "ampere", 0, false, 0, ""); err == nil {
		t.Fatal("want error for empty trace dir")
	}
	if err := run(writeTraces(t), "cpu", 0, false, 0, ""); err == nil {
		t.Fatal("want error for unknown arch")
	}
	// A corrupt trace file must surface a parse error.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.trace"), []byte("garbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(dir, "ampere", 0, false, 0, ""); err == nil {
		t.Fatal("want error for corrupt trace")
	}
}

func TestRunPKPAndMultiSMModes(t *testing.T) {
	dir := writeTraces(t)
	if err := run(dir, "ampere", 0, true, 0, ""); err != nil {
		t.Fatal(err)
	}
	if err := run(dir, "ampere", 0, false, 4, ""); err != nil {
		t.Fatal(err)
	}
	if err := run(dir, "ampere", 0, true, 4, ""); err == nil {
		t.Fatal("pkp and multism must be mutually exclusive")
	}
}

func TestRunJSONOutput(t *testing.T) {
	dir := writeTraces(t)
	out := filepath.Join(t.TempDir(), "results.json")
	if err := run(dir, "ampere", 0, false, 0, out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var records []map[string]any
	if err := json.Unmarshal(data, &records); err != nil {
		t.Fatal(err)
	}
	if len(records) == 0 {
		t.Fatal("no JSON records")
	}
	if _, ok := records[0]["gpu_cycles"]; !ok {
		t.Fatalf("record missing gpu_cycles: %v", records[0])
	}
}
