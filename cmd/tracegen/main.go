// Command tracegen emits SASS-like traces for the representative kernel
// invocations Sieve selects — the reproduction of the paper's modified
// Accel-sim/NVBit tracer that "only create[s] the SASS trace of the selected
// kernel invocations" (Section V-G). One plain-text trace file is written per
// representative, so each can be dispatched to a separate simulator core.
//
// Usage:
//
//	tracegen -workload lmc -scale 0.02 -out traces/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/gpusampling/sieve"
	"github.com/gpusampling/sieve/internal/cliflags"
)

func main() {
	var (
		workload = flag.String("workload", "", "Table I workload name")
		scale    = flag.Float64("scale", 0.02, "workload scale factor in (0, 1]")
		theta    = flag.Float64("theta", sieve.DefaultTheta, "CoV threshold θ")
		outDir   = flag.String("out", "traces", "output directory for trace files")
		maxInstr = flag.Int("max-warp-instrs", 0, "per-trace warp-instruction cap (0 = default)")
		seed     = flag.Int64("seed", 1, "tracer seed")
		logLevel = cliflags.LogLevel(flag.CommandLine)
	)
	flag.Parse()
	logger := cliflags.MustLogger("tracegen", *logLevel)
	if err := run(*workload, *scale, *theta, *outDir, *maxInstr, *seed); err != nil {
		logger.Error("run failed", "error", err)
		os.Exit(1)
	}
}

func run(workload string, scale, theta float64, outDir string, maxInstr int, seed int64) error {
	if workload == "" {
		return fmt.Errorf("need -workload")
	}
	w, err := sieve.GenerateWorkload(workload, scale)
	if err != nil {
		return err
	}
	hw, err := sieve.NewHardware(sieve.Ampere())
	if err != nil {
		return err
	}
	profile, err := sieve.ProfileInstructionCounts(w, hw)
	if err != nil {
		return err
	}
	plan, err := sieve.Sample(sieve.ProfileRows(profile), sieve.Options{Theta: theta})
	if err != nil {
		return err
	}
	traces, err := sieve.GeneratePlanTraces(w, plan, maxInstr, seed)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	var totalInstrs int
	for _, tr := range traces {
		name := fmt.Sprintf("%s_inv%06d.trace", tr.Kernel, tr.Invocation)
		path := filepath.Join(outDir, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := sieve.WriteTrace(tr, f); err != nil {
			f.Close()
			return fmt.Errorf("write %s: %w", path, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		totalInstrs += len(tr.Instrs)
	}
	fmt.Printf("workload %s: %d invocations, %d strata\n", w.Name, w.NumInvocations(), plan.NumStrata())
	fmt.Printf("wrote %d traces (%d warp instructions) to %s\n", len(traces), totalInstrs, outDir)
	return nil
}
