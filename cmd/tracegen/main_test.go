package main

import (
	"path/filepath"
	"testing"
)

func TestRunWritesTraces(t *testing.T) {
	dir := t.TempDir()
	if err := run("dwt2d", 1.0, 0.4, dir, 2000, 1); err != nil {
		t.Fatal(err)
	}
	paths, err := filepath.Glob(filepath.Join(dir, "*.trace"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no trace files written")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", 0.1, 0.4, t.TempDir(), 0, 1); err == nil {
		t.Fatal("want error for missing workload")
	}
	if err := run("nope", 0.1, 0.4, t.TempDir(), 0, 1); err == nil {
		t.Fatal("want error for unknown workload")
	}
	if err := run("dwt2d", 5, 0.4, t.TempDir(), 0, 1); err == nil {
		t.Fatal("want error for invalid scale")
	}
}
