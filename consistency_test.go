// Plan-stability guard for the binned KDE evaluator: the sampling plans the
// public API emits must be unchanged by the linear-binning optimization. The
// valley set is the only place binning could leak into a plan (everything
// downstream of splitting is deterministic), so for every Tier-3 kernel in
// every catalog workload this compares the stratification the production
// (binned) grid produces against the exact reference evaluator.
package sieve_test

import (
	"fmt"
	"sort"
	"testing"

	"github.com/gpusampling/sieve"
	"github.com/gpusampling/sieve/internal/kde"
	"github.com/gpusampling/sieve/internal/stats"
)

func TestPlanValleysBinnedMatchExactAcrossWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("generates and profiles the full workload catalog")
	}
	hw, err := sieve.NewHardware(sieve.Ampere())
	if err != nil {
		t.Fatal(err)
	}
	tier3Kernels := 0
	for _, spec := range sieve.WorkloadCatalog() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			w, err := sieve.GenerateFromSpec(spec, 0.01)
			if err != nil {
				t.Fatal(err)
			}
			profile, err := sieve.ProfileInstructionCounts(w, hw)
			if err != nil {
				t.Fatal(err)
			}
			byKernel := map[string][]float64{}
			for _, row := range sieve.ProfileRows(profile) {
				byKernel[row.Kernel] = append(byKernel[row.Kernel], row.InstructionCount)
			}
			for kernel, counts := range byKernel {
				if len(counts) < 2 || stats.CoV(counts) < sieve.DefaultTheta {
					continue // Tier-1/2: no KDE involved
				}
				tier3Kernels++
				assertBinnedSplitMatchesExact(t, fmt.Sprintf("%s/%s", spec.Name, kernel), counts)
			}
		})
	}
	if tier3Kernels == 0 {
		t.Fatal("catalog produced no Tier-3 kernels; the consistency sweep checked nothing")
	}
}

// assertBinnedSplitMatchesExact stratifies counts once via the production
// grid (binned where the bandwidth gate allows) and once via the exact
// reference evaluator, and requires identical strata — same group count,
// same group sizes, same members. Identical strata make every downstream
// plan quantity (representatives, weights, predictions) byte-identical.
func assertBinnedSplitMatchesExact(t *testing.T, label string, counts []float64) {
	t.Helper()
	sorted := append([]float64(nil), counts...)
	sort.Float64s(sorted)
	est, err := kde.NewSorted(sorted, 0)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	binnedValleys, err := est.Valleys(kde.DefaultGridPoints)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	xs, ds, err := est.GridExact(kde.DefaultGridPoints)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	exactValleys := kde.ValleysFromGrid(xs, ds)

	binned := kde.SplitAtValleys(counts, binnedValleys)
	exact := kde.SplitAtValleys(counts, exactValleys)
	if len(binned) != len(exact) {
		t.Fatalf("%s: binned grid yields %d strata, exact yields %d (valleys %v vs %v)",
			label, len(binned), len(exact), binnedValleys, exactValleys)
	}
	for i := range binned {
		if len(binned[i]) != len(exact[i]) {
			t.Fatalf("%s: stratum %d has %d members binned vs %d exact",
				label, i, len(binned[i]), len(exact[i]))
		}
		for j := range binned[i] {
			if binned[i][j] != exact[i][j] {
				t.Fatalf("%s: stratum %d member %d differs: %g vs %g",
					label, i, j, binned[i][j], exact[i][j])
			}
		}
	}
}
