package sieve_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/gpusampling/sieve"
)

// syntheticProfile builds kernels × rows Tier-3 invocations (bimodal
// instruction counts force KDE splitting) — large enough that stratification
// takes real time, so mid-run cancellation is observable.
func syntheticProfile(kernels, rows int) []sieve.InvocationProfile {
	rng := rand.New(rand.NewSource(42))
	profile := make([]sieve.InvocationProfile, 0, kernels*rows)
	idx := 0
	for k := 0; k < kernels; k++ {
		for i := 0; i < rows; i++ {
			count := 1e6 + 1e5*rng.Float64()
			if i%2 == 1 {
				count *= 40 // second mode, CoV ≥ θ
			}
			profile = append(profile, sieve.InvocationProfile{
				Kernel:           fmt.Sprintf("kernel_%03d", k),
				Index:            idx,
				InstructionCount: count,
				CTASize:          128 + 32*(i%4),
			})
			idx++
		}
	}
	return profile
}

// csvReader renders a profile as the WriteProfileCSV wire format.
func csvReader(t *testing.T, profile []sieve.InvocationProfile) *strings.Reader {
	t.Helper()
	var b strings.Builder
	b.WriteString("kernel,index,seq,cta_size,instruction_count\n")
	for i, r := range profile {
		fmt.Fprintf(&b, "%s,%d,%d,%d,%g\n", r.Kernel, r.Index, i, r.CTASize, r.InstructionCount)
	}
	return strings.NewReader(b.String())
}

// waitGoroutines polls until the goroutine count drops back to within slack
// of the baseline, failing the test if cancelled workers leaked.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak after cancellation: %d running, baseline %d", n, baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestSampleContextCanceledPromptly(t *testing.T) {
	profile := syntheticProfile(96, 3000)
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := sieve.SampleContext(ctx, profile, sieve.Options{})
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		// The run may legitimately win the race on a fast machine; anything
		// other than success must be context.Canceled.
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if err != nil && time.Since(start) > 2*time.Second {
			t.Fatalf("cancellation not prompt: returned after %v", time.Since(start))
		}
	case <-time.After(10 * time.Second):
		t.Fatal("SampleContext did not return after cancellation")
	}
	waitGoroutines(t, baseline)
}

func TestSampleContextExpiredDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := sieve.SampleContext(ctx, syntheticProfile(2, 8), sieve.Options{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestSampleStreamContextCanceled(t *testing.T) {
	profile := syntheticProfile(8, 64)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	baseline := runtime.NumGoroutine()
	_, err := sieve.SampleStreamContext(ctx, sieve.SliceSource(profile), sieve.StreamOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	waitGoroutines(t, baseline)
}

func TestSampleCSVContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := sieve.SampleCSVContext(ctx, csvReader(t, syntheticProfile(2, 8)), sieve.StreamOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestPKSSelectContextCanceled(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	features := make([][]float64, 400)
	golden := make([]float64, len(features))
	for i := range features {
		row := make([]float64, 12)
		for j := range row {
			row[j] = rng.Float64()
		}
		features[i] = row
		golden[i] = 1 + rng.Float64()
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	baseline := runtime.NumGoroutine()
	_, err := sieve.PKSSelectContext(ctx, features, golden, sieve.PKSOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	waitGoroutines(t, baseline)
}

func TestPredictContextCanceled(t *testing.T) {
	profile := syntheticProfile(4, 32)
	plan, err := sieve.Sample(profile, sieve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = plan.PredictContext(ctx, func(i int) (float64, error) { return 100, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestContextVariantsMatchPlain pins the wrapper contract: the Background
// context variants must produce byte-identical results to the original
// entry points.
func TestContextVariantsMatchPlain(t *testing.T) {
	profile := syntheticProfile(6, 120)
	plain, err := sieve.Sample(profile, sieve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := sieve.SampleContext(context.Background(), profile, sieve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Strata, withCtx.Strata) || plain.TotalInstructions != withCtx.TotalInstructions {
		t.Fatal("SampleContext(context.Background()) differs from Sample")
	}

	pred1, err := plain.Predict(func(i int) (float64, error) { return 1e5, nil })
	if err != nil {
		t.Fatal(err)
	}
	pred2, err := plain.PredictContext(context.Background(), func(i int) (float64, error) { return 1e5, nil })
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pred1, pred2) {
		t.Fatal("PredictContext(context.Background()) differs from Predict")
	}
}

// TestSentinelErrors pins the errors.Is contract the serving layer maps onto
// HTTP status codes.
func TestSentinelErrors(t *testing.T) {
	if _, err := sieve.Sample(nil, sieve.Options{}); !errors.Is(err, sieve.ErrEmptyProfile) {
		t.Fatalf("empty profile err = %v, want ErrEmptyProfile", err)
	}
	if _, err := sieve.Sample(syntheticProfile(1, 4), sieve.Options{Theta: -0.1}); !errors.Is(err, sieve.ErrInvalidTheta) {
		t.Fatalf("negative theta err = %v, want ErrInvalidTheta", err)
	}
	if _, err := sieve.Sample(syntheticProfile(1, 4), sieve.Options{ThetaSet: true}); !errors.Is(err, sieve.ErrInvalidTheta) {
		t.Fatalf("explicit zero theta err = %v, want ErrInvalidTheta", err)
	}
	if _, err := sieve.SampleStream(sieve.SliceSource(nil), sieve.StreamOptions{}); !errors.Is(err, sieve.ErrEmptyProfile) {
		t.Fatalf("empty stream err = %v, want ErrEmptyProfile", err)
	}

	// A kernel overflowing its reservoir marks the plan Sampled; exact-
	// membership metrics must refuse with ErrSampledPlan.
	profile := syntheticProfile(1, 64)
	plan, err := sieve.SampleStream(sieve.SliceSource(profile), sieve.StreamOptions{ReservoirSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Sampled {
		t.Fatal("expected a sampled plan with an 8-row reservoir over 64 rows")
	}
	golden := make([]float64, len(profile))
	for i := range golden {
		golden[i] = 1
	}
	if _, err := plan.Speedup(golden); !errors.Is(err, sieve.ErrSampledPlan) {
		t.Fatalf("Speedup on sampled plan err = %v, want ErrSampledPlan", err)
	}
	if _, err := plan.WeightedCycleCoV(golden); !errors.Is(err, sieve.ErrSampledPlan) {
		t.Fatalf("WeightedCycleCoV on sampled plan err = %v, want ErrSampledPlan", err)
	}
}
