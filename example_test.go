package sieve_test

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/gpusampling/sieve"
)

// ExampleSample stratifies a hand-written profile: one constant kernel
// (Tier-1) and one bimodal kernel that KDE splits into two strata.
func ExampleSample() {
	profile := []sieve.InvocationProfile{
		{Kernel: "gemm", Index: 0, InstructionCount: 1e6, CTASize: 256},
		{Kernel: "copy", Index: 1, InstructionCount: 1e4, CTASize: 128},
		{Kernel: "gemm", Index: 2, InstructionCount: 1e6, CTASize: 256},
		{Kernel: "copy", Index: 3, InstructionCount: 9e6, CTASize: 128},
		{Kernel: "gemm", Index: 4, InstructionCount: 1e6, CTASize: 256},
		{Kernel: "copy", Index: 5, InstructionCount: 1.1e4, CTASize: 128},
	}
	plan, err := sieve.Sample(profile, sieve.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("strata:", plan.NumStrata())
	for _, s := range plan.Strata {
		fmt.Printf("%s %s members=%d rep=%d\n", s.Kernel, s.Tier, len(s.Invocations), s.Representative)
	}
	// Output:
	// strata: 3
	// copy Tier-3 members=2 rep=1
	// copy Tier-3 members=1 rep=3
	// gemm Tier-1 members=3 rep=0
}

// ExamplePlan_Predict estimates full-application cycles from representative
// measurements only.
func ExamplePlan_Predict() {
	profile := []sieve.InvocationProfile{
		{Kernel: "a", Index: 0, InstructionCount: 100, CTASize: 64},
		{Kernel: "a", Index: 1, InstructionCount: 100, CTASize: 64},
		{Kernel: "b", Index: 2, InstructionCount: 900, CTASize: 64},
	}
	plan, err := sieve.Sample(profile, sieve.Options{})
	if err != nil {
		log.Fatal(err)
	}
	// "Simulate" the representatives: kernel a runs at IPC 1, b at IPC 10.
	pred, err := plan.Predict(func(i int) (float64, error) {
		if i == 2 {
			return 90, nil // 900 instructions at IPC 10
		}
		return 100, nil // 100 instructions at IPC 1
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cycles=%.0f ipc=%.2f\n", pred.Cycles, pred.IPC)
	// Output:
	// cycles=290 ipc=3.79
}

// ExampleGenerateWorkload synthesizes a Table I workload deterministically.
func ExampleGenerateWorkload() {
	w, err := sieve.GenerateWorkload("dwt2d", 1.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s/%s: %d kernels, %d invocations\n", w.Suite, w.Name, w.NumKernels(), w.NumInvocations())
	// Output:
	// Rodinia/dwt2d: 4 kernels, 10 invocations
}

// ExampleTierFractions computes the Fig. 2 quantity for two thresholds.
func ExampleTierFractions() {
	profile := []sieve.InvocationProfile{
		{Kernel: "k", Index: 0, InstructionCount: 100, CTASize: 32},
		{Kernel: "k", Index: 1, InstructionCount: 166, CTASize: 32},
	}
	fr, err := sieve.TierFractions(profile, []float64{0.1, 0.5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("theta=0.1 tier3=%.0f%%\n", 100*fr[0][2])
	fmt.Printf("theta=0.5 tier2=%.0f%%\n", 100*fr[1][1])
	// Output:
	// theta=0.1 tier3=100%
	// theta=0.5 tier2=100%
}

// ExampleSampleContext bounds a sampling run with a deadline. The context
// threads through the stratification worker pool, the k-sweep and the KDE
// grids, so a cancelled or expired context stops the run between work items
// and the call returns ctx.Err().
func ExampleSampleContext() {
	profile := []sieve.InvocationProfile{
		{Kernel: "gemm", Index: 0, InstructionCount: 1e6, CTASize: 256},
		{Kernel: "copy", Index: 1, InstructionCount: 1e4, CTASize: 128},
		{Kernel: "gemm", Index: 2, InstructionCount: 1e6, CTASize: 256},
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	plan, err := sieve.SampleContext(ctx, profile, sieve.Options{})
	if err != nil {
		log.Fatal(err) // context.DeadlineExceeded if the budget expired
	}
	fmt.Println("strata:", plan.NumStrata())
	// Output:
	// strata: 2
}
