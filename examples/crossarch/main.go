// Cross-architecture study (the paper's Fig. 9): can a sampling method
// predict the *relative* performance difference between two GPUs? The same
// representative invocations are "run" on the Ampere and Turing models and
// the predicted Ampere-over-Turing speedup is compared against the golden
// full-run measurement. Sieve tracks the golden reference; PKS can mislead.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"math"
	"os"

	"github.com/gpusampling/sieve"
	"github.com/gpusampling/sieve/internal/cliflags"
)

// fatal reports a terminal error through the structured logger and exits.
func fatal(logger *slog.Logger, err error) {
	logger.Error("crossarch failed", "error", err)
	os.Exit(1)
}

func main() {
	scale := flag.Float64("scale", 0.03, "workload scale factor in (0, 1]")
	logLevel := cliflags.LogLevel(flag.CommandLine)
	flag.Parse()
	logger := cliflags.MustLogger("crossarch", *logLevel)

	ampere, err := sieve.NewHardware(sieve.Ampere())
	if err != nil {
		fatal(logger, err)
	}
	turing, err := sieve.NewHardware(sieve.Turing())
	if err != nil {
		fatal(logger, err)
	}

	specs, err := sieve.WorkloadsBySuite(sieve.SuiteCactus)
	if err != nil {
		fatal(logger, err)
	}

	fmt.Printf("Ampere (RTX 3080) speedup over Turing (RTX 2080 Ti):\n\n")
	fmt.Printf("%-8s %8s %8s %8s %11s %11s\n", "workload", "golden", "Sieve", "PKS", "Sieve err", "PKS err")
	var sieveSum, pksSum float64
	var n int
	for _, spec := range specs {
		if spec.Name == "rfl" {
			continue // the paper could not run rfl on the Turing system
		}
		w, err := sieve.GenerateFromSpec(spec, *scale)
		if err != nil {
			fatal(logger, err)
		}
		goldenA := ampere.MeasureWorkload(w)
		goldenT := turing.MeasureWorkload(w)
		atA := func(i int) (float64, error) { return goldenA[i], nil }
		atT := func(i int) (float64, error) { return goldenT[i], nil }

		golden := turing.Seconds(sum(goldenT)) / ampere.Seconds(sum(goldenA))

		// Sieve: representatives are selected purely from the
		// microarchitecture-independent profile, so the same plan serves
		// both architectures.
		profile, err := sieve.ProfileInstructionCounts(w, ampere)
		if err != nil {
			fatal(logger, err)
		}
		plan, err := sieve.Sample(sieve.ProfileRows(profile), sieve.Options{})
		if err != nil {
			fatal(logger, err)
		}
		predA, err := plan.Predict(atA)
		if err != nil {
			fatal(logger, err)
		}
		predT, err := plan.Predict(atT)
		if err != nil {
			fatal(logger, err)
		}
		sieveSpeedup := turing.Seconds(predT.Cycles) / ampere.Seconds(predA.Cycles)

		// PKS: representative selection depends on the Ampere golden
		// reference (the microarchitecture dependency the paper criticizes).
		full, err := sieve.ProfileFull(w, ampere)
		if err != nil {
			fatal(logger, err)
		}
		pksPlan, err := sieve.PKSSelect(sieve.FeatureRows(full), goldenA, sieve.PKSOptions{Seed: 1})
		if err != nil {
			fatal(logger, err)
		}
		pksA, err := pksPlan.PredictCycles(atA)
		if err != nil {
			fatal(logger, err)
		}
		pksT, err := pksPlan.PredictCycles(atT)
		if err != nil {
			fatal(logger, err)
		}
		pksSpeedup := turing.Seconds(pksT) / ampere.Seconds(pksA)

		se := math.Abs(sieveSpeedup-golden) / golden
		pe := math.Abs(pksSpeedup-golden) / golden
		sieveSum += se
		pksSum += pe
		n++
		fmt.Printf("%-8s %8.3f %8.3f %8.3f %10.2f%% %10.2f%%\n",
			spec.Name, golden, sieveSpeedup, pksSpeedup, 100*se, 100*pe)
	}
	fmt.Printf("\naverages: Sieve %.2f%%, PKS %.2f%% — the paper reports 1.5%% vs 9.8%%\n",
		100*sieveSum/float64(n), 100*pksSum/float64(n))
	fmt.Println("workloads slower on Ampere (speedup < 1) have working sets that fit")
	fmt.Println("Turing's 5.5 MB L2 but spill Ampere's 5 MB (lmc, lmr)")
}

func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}
