// Custom workloads and custom GPUs: downstream users are not limited to the
// Table I catalog or the two evaluation cards. This example defines a
// workload specification and a GPU configuration inline (the same JSON the
// command-line tools accept as files), generates the workload, samples it
// with Sieve, and validates the prediction on the custom part — including
// the golden-free uncertainty estimate a user would consult before spending
// any simulation time.
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"github.com/gpusampling/sieve"
)

const customSpec = `{
  "Name": "hydro-mini", "Suite": "Custom",
  "Kernels": 9, "FullInvocations": 20000, "Seed": 2026,
  "Tier1Frac": 0.35, "Tier3Frac": 0.2,
  "LowVarCoVLo": 0.05, "LowVarCoVHi": 0.45,
  "Skew": 0.5, "Uniformity": 0.8,
  "InstrLo": 5e7, "InstrHi": 4e8,
  "LocalityJitter": 0.02, "FP32Lo": 0.2, "FP32Hi": 0.8,
  "RampFrac": 0.02, "RampScale": 0.95, "ColdScale": 0.4,
  "HotCacheFrac": 0.2
}`

const customArch = `{
  "name": "prototype-x",
  "base": "ampere",
  "sms": 96,
  "dram_bandwidth_gbs": 1100,
  "l2_bytes": 8388608
}`

func main() {
	spec, err := sieve.ReadWorkloadSpecJSON(strings.NewReader(customSpec))
	if err != nil {
		log.Fatal(err)
	}
	arch, err := sieve.ReadArchJSON(strings.NewReader(customArch))
	if err != nil {
		log.Fatal(err)
	}
	w, err := sieve.GenerateFromSpec(spec, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	hw, err := sieve.NewHardware(arch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("custom workload %s: %d kernels, %d invocations\n",
		w.Name, w.NumKernels(), w.NumInvocations())
	fmt.Printf("custom GPU %s: %d SMs, %.0f GB/s, %.1f MB L2\n\n",
		arch.Name, arch.SMs, arch.DRAMBandwidthGBs, arch.L2Bytes/(1<<20))

	profile, err := sieve.ProfileInstructionCounts(w, hw)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := sieve.Sample(sieve.ProfileRows(profile), sieve.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan: %d strata (Tier-1/2/3 invocations %d/%d/%d)\n",
		plan.NumStrata(), plan.TierInvocations[0], plan.TierInvocations[1], plan.TierInvocations[2])

	// Before simulating anything: what does stratified-sampling theory say
	// about this plan's uncertainty? No golden reference required.
	bound, err := plan.EstimateErrorBound()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("a-priori uncertainty: ±%.2f%% (conservative 2σ heuristic), worst stratum %s\n\n",
		100*bound.TwoSigma, bound.WorstStratum)

	// Now validate against the custom part's golden measurement.
	golden := hw.MeasureWorkload(w)
	var total float64
	for _, c := range golden {
		total += c
	}
	pred, err := plan.Predict(func(i int) (float64, error) { return golden[i], nil })
	if err != nil {
		log.Fatal(err)
	}
	speedup, err := plan.Speedup(golden)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("golden cycles    %.4g\n", total)
	fmt.Printf("predicted cycles %.4g (error %.2f%%)\n",
		pred.Cycles, 100*math.Abs(pred.Cycles-total)/total)
	fmt.Printf("simulation speedup %.0fx\n", speedup)

	// Per-kernel characterization, the workload-analysis view.
	sums, err := sieve.Characterize(sieve.ProfileRows(profile), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop kernels by instruction share:\n")
	for i, s := range sums {
		if i == 5 {
			break
		}
		fmt.Printf("  %-24s %s %6.2f%% of instructions, CoV %.2f\n",
			s.Kernel, s.Tier, 100*s.InstrShare, s.InstrCoV)
	}
}
