// Design-space exploration: the reason sampling methodologies exist. Sieve
// selects representative kernel invocations once, from a purely
// microarchitecture-independent profile, and the same plan is then evaluated
// on every candidate GPU configuration — here a sweep over SM count and DRAM
// bandwidth around the RTX 3080 baseline. At each design point the sampled
// prediction (representatives only) is validated against the golden full-run
// measurement, including whether the sampled results *rank* the candidates
// correctly.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"github.com/gpusampling/sieve"
)

func main() {
	var (
		workload = flag.String("workload", "lmc", "Table I workload name")
		scale    = flag.Float64("scale", 0.02, "workload scale factor in (0, 1]")
	)
	flag.Parse()

	w, err := sieve.GenerateWorkload(*workload, *scale)
	if err != nil {
		log.Fatal(err)
	}
	base, err := sieve.NewHardware(sieve.Ampere())
	if err != nil {
		log.Fatal(err)
	}
	// Select the plan ONCE, against the baseline profile. Nothing below
	// re-runs profiling or stratification.
	profile, err := sieve.ProfileInstructionCounts(w, base)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := sieve.Sample(sieve.ProfileRows(profile), sieve.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload %s: %d invocations, %d representatives (selected once)\n\n",
		w.Name, w.NumInvocations(), plan.NumStrata())

	fmt.Printf("%-6s %-10s %14s %14s %9s %12s\n",
		"SMs", "DRAM GB/s", "golden cycles", "predicted", "error", "vs baseline")
	type point struct{ golden, predicted float64 }
	var points []point
	var baseline float64
	for _, smF := range []float64{0.5, 1.0, 1.5} {
		for _, bwF := range []float64{0.5, 1.0, 1.5} {
			arch := sieve.Ampere()
			arch.SMs = int(float64(arch.SMs)*smF + 0.5)
			arch.DRAMBandwidthGBs *= bwF
			hw, err := sieve.NewHardware(arch)
			if err != nil {
				log.Fatal(err)
			}
			golden := hw.MeasureWorkload(w)
			var total float64
			for _, c := range golden {
				total += c
			}
			pred, err := plan.Predict(func(i int) (float64, error) { return golden[i], nil })
			if err != nil {
				log.Fatal(err)
			}
			if smF == 1.0 && bwF == 1.0 {
				baseline = total
			}
			points = append(points, point{golden: total, predicted: pred.Cycles})
			vsBase := "-"
			if baseline > 0 {
				vsBase = fmt.Sprintf("%.2fx", baseline/total)
			}
			fmt.Printf("%-6d %-10.0f %14.4g %14.4g %8.2f%% %12s\n",
				arch.SMs, arch.DRAMBandwidthGBs, total, pred.Cycles,
				100*math.Abs(pred.Cycles-total)/total, vsBase)
		}
	}

	// Rank fidelity: do the sampled predictions order the candidates the
	// same way the golden measurements do?
	concordant, pairs := 0, 0
	for i := 0; i < len(points); i++ {
		for j := i + 1; j < len(points); j++ {
			pairs++
			g := points[i].golden < points[j].golden
			p := points[i].predicted < points[j].predicted
			if g == p {
				concordant++
			}
		}
	}
	fmt.Printf("\nrank fidelity across the design space: %d/%d candidate pairs ordered correctly\n",
		concordant, pairs)
}
