// MLPerf sampling study: run Sieve and the PKS baseline side by side on the
// MLPerf inference workloads — the paper's motivating scenario, where
// full-application simulation would take "a century" on current simulators —
// and compare prediction error, simulation speedup and profiling cost.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"github.com/gpusampling/sieve"
)

func main() {
	scale := flag.Float64("scale", 0.03, "workload scale factor in (0, 1]")
	flag.Parse()

	hw, err := sieve.NewHardware(sieve.Ampere())
	if err != nil {
		log.Fatal(err)
	}
	specs, err := sieve.WorkloadsBySuite(sieve.SuiteMLPerf)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-14s %12s %11s %11s %12s %12s %12s\n",
		"workload", "invocations", "Sieve err", "PKS err", "Sieve spdup", "PKS spdup", "prof spdup")
	var sieveSum, pksSum float64
	for _, spec := range specs {
		w, err := sieve.GenerateFromSpec(spec, *scale)
		if err != nil {
			log.Fatal(err)
		}
		golden := hw.MeasureWorkload(w)
		var total float64
		for _, c := range golden {
			total += c
		}
		at := func(i int) (float64, error) { return golden[i], nil }

		// Sieve: cheap single-metric profile, per-kernel stratification.
		icProfile, err := sieve.ProfileInstructionCounts(w, hw)
		if err != nil {
			log.Fatal(err)
		}
		plan, err := sieve.Sample(sieve.ProfileRows(icProfile), sieve.Options{})
		if err != nil {
			log.Fatal(err)
		}
		sievePred, err := plan.Predict(at)
		if err != nil {
			log.Fatal(err)
		}
		sieveSpeedup, err := plan.Speedup(golden)
		if err != nil {
			log.Fatal(err)
		}

		// PKS: 12-metric profile, PCA + k-means with golden k-selection.
		fullProfile, err := sieve.ProfileFull(w, hw)
		if err != nil {
			log.Fatal(err)
		}
		pksPlan, err := sieve.PKSSelect(sieve.FeatureRows(fullProfile), golden, sieve.PKSOptions{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		pksPred, err := pksPlan.PredictCycles(at)
		if err != nil {
			log.Fatal(err)
		}
		pksSpeedup, err := pksPlan.Speedup(golden)
		if err != nil {
			log.Fatal(err)
		}

		sieveErr := math.Abs(sievePred.Cycles-total) / total
		pksErr := math.Abs(pksPred-total) / total
		sieveSum += sieveErr
		pksSum += pksErr
		fmt.Printf("%-14s %12d %10.2f%% %10.2f%% %11.0fx %11.0fx %11.1fx\n",
			spec.Name, w.NumInvocations(), 100*sieveErr, 100*pksErr,
			sieveSpeedup, pksSpeedup, fullProfile.WallSeconds/icProfile.WallSeconds)
	}
	n := float64(len(specs))
	fmt.Printf("\naverages: Sieve %.2f%%, PKS %.2f%% — the paper reports 1.3%% vs 16.0%% on MLPerf\n",
		100*sieveSum/n, 100*pksSum/n)
	fmt.Println("(the profiling-speedup column is why Sieve's one-metric profile matters:")
	fmt.Println(" the paper measured >1 month of Nsight profiling for some MLPerf workloads)")
}
