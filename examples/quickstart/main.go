// Quickstart: the minimal Sieve workflow from the paper's Fig. 1 —
// profile a workload's kernel invocations (instruction counts only),
// stratify them into per-kernel strata, select weighted representatives,
// "simulate" just the representatives, and predict full-application
// performance.
package main

import (
	"fmt"
	"log"

	"github.com/gpusampling/sieve"
)

func main() {
	// 1. The workload: a synthetic stand-in for Cactus' lmc (58 kernels,
	//    248k invocations at full scale; 2% here for a quick run).
	w, err := sieve.GenerateWorkload("lmc", 0.02)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload %s: %d kernels, %d invocations\n",
		w.Name, w.NumKernels(), w.NumInvocations())

	// 2. The hardware: an analytical RTX 3080 model stands in for silicon.
	hw, err := sieve.NewHardware(sieve.Ampere())
	if err != nil {
		log.Fatal(err)
	}

	// 3. Profile: one microarchitecture-independent metric per invocation.
	profile, err := sieve.ProfileInstructionCounts(w, hw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiled %d invocations in %.1fs (modeled NVBit run)\n",
		profile.NumInvocations(), profile.WallSeconds)

	// 4. Sieve: stratify and select weighted representatives (θ = 0.4).
	plan, err := sieve.Sample(sieve.ProfileRows(profile), sieve.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sieved into %d strata (Tier-1/2/3 invocations: %d/%d/%d)\n",
		plan.NumStrata(), plan.TierInvocations[0], plan.TierInvocations[1], plan.TierInvocations[2])

	// 5. "Simulate" only the representatives and predict the full run.
	pred, err := plan.Predict(func(i int) (float64, error) {
		return hw.Cycles(&w.Invocations[i]), nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// 6. Validate against the golden full-run measurement.
	golden := hw.MeasureWorkload(w)
	var total float64
	for _, c := range golden {
		total += c
	}
	speedup, err := plan.Speedup(golden)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npredicted cycles: %.4g (IPC %.1f)\n", pred.Cycles, pred.IPC)
	fmt.Printf("measured cycles:  %.4g\n", total)
	fmt.Printf("prediction error: %.2f%%\n", 100*abs(pred.Cycles-total)/total)
	fmt.Printf("simulation speedup: %.0fx (%d of %d invocations simulated)\n",
		speedup, plan.NumStrata(), w.NumInvocations())
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
