// Tracing and detailed simulation (the paper's Section V-G): after Sieve
// picks representative kernel invocations, only their SASS-like traces are
// generated and fed to the trace-driven cycle-level simulator — serially on
// one core, or with each trace file dispatched to a separate core, where
// total time is determined by the longest-running kernel invocation.
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"time"

	"github.com/gpusampling/sieve"
)

func main() {
	var (
		workload = flag.String("workload", "gms", "Table I workload name")
		scale    = flag.Float64("scale", 0.01, "workload scale factor in (0, 1]")
		maxWarp  = flag.Int("max-warp-instrs", 20000, "per-trace warp-instruction cap")
	)
	flag.Parse()

	w, err := sieve.GenerateWorkload(*workload, *scale)
	if err != nil {
		log.Fatal(err)
	}
	hw, err := sieve.NewHardware(sieve.Ampere())
	if err != nil {
		log.Fatal(err)
	}
	profile, err := sieve.ProfileInstructionCounts(w, hw)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := sieve.Sample(sieve.ProfileRows(profile), sieve.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload %s: %d invocations -> %d representative traces\n",
		w.Name, w.NumInvocations(), plan.NumStrata())

	traces, err := sieve.GeneratePlanTraces(w, plan, *maxWarp, 1)
	if err != nil {
		log.Fatal(err)
	}
	var instrs int
	for _, tr := range traces {
		instrs += len(tr.Instrs)
	}
	fmt.Printf("traced %d warp instructions across %d files\n\n", instrs, len(traces))

	simulator, err := sieve.NewSimulator(sieve.Ampere())
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	serial, err := simulator.SimulateAll(traces)
	if err != nil {
		log.Fatal(err)
	}
	serialTime := time.Since(start)

	workers := runtime.GOMAXPROCS(0)
	start = time.Now()
	parallel, err := simulator.SimulateParallel(traces, workers)
	if err != nil {
		log.Fatal(err)
	}
	parallelTime := time.Since(start)

	var slowest *sieve.SimResult
	var totalCycles float64
	for i, r := range serial {
		totalCycles += r.Cycles
		if slowest == nil || r.SMCycles > slowest.SMCycles {
			slowest = serial[i]
		}
	}
	fmt.Printf("serial simulation:   %8s\n", serialTime.Round(time.Millisecond))
	fmt.Printf("parallel simulation: %8s (%d workers)\n", parallelTime.Round(time.Millisecond), workers)
	fmt.Printf("longest-running representative: %s/%d (%d SM cycles)\n",
		slowest.Kernel, slowest.Invocation, slowest.SMCycles)
	fmt.Printf("estimated GPU cycles across representatives: %.4g\n\n", totalCycles)

	// Parallel dispatch is a pure scheduling change: identical results.
	for i := range serial {
		if serial[i].SMCycles != parallel[i].SMCycles {
			log.Fatalf("parallel result diverged for trace %d", i)
		}
	}
	fmt.Println("serial and parallel dispatch agree on every trace (pure scheduling change)")
}
