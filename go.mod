module github.com/gpusampling/sieve

go 1.22
