package sieve

import (
	"fmt"
	"io"
	"os"

	"github.com/gpusampling/sieve/internal/cudamodel"
	"github.com/gpusampling/sieve/internal/gpu"
)

// Workload is a GPU-compute program execution: a chronological sequence of
// kernel invocations.
type Workload = cudamodel.Workload

// Invocation is one dynamic kernel execution.
type Invocation = cudamodel.Invocation

// Characteristics holds the twelve microarchitecture-independent execution
// characteristics of Table II.
type Characteristics = cudamodel.Characteristics

// Dim3 is a CUDA grid/block dimension triple.
type Dim3 = cudamodel.Dim3

// CharacteristicNames returns the twelve metric names in feature-vector
// order.
func CharacteristicNames() []string { return cudamodel.CharacteristicNames() }

// Arch describes a GPU platform (SM count, clock, bandwidth, caches …).
type Arch = gpu.Arch

// Hardware is a deterministic analytical timing model of one GPU — the
// stand-in for real silicon used as golden reference.
type Hardware = gpu.Model

// Ampere returns the paper's baseline platform, an RTX 3080.
func Ampere() Arch { return gpu.Ampere() }

// Turing returns the paper's second platform, an RTX 2080 Ti.
func Turing() Arch { return gpu.Turing() }

// NewHardware returns a timing model for the architecture.
func NewHardware(arch Arch) (*Hardware, error) { return gpu.NewModel(arch) }

// ReadArchJSON parses a JSON architecture description: a named base
// ("ampere" by default, or "turing") plus any field overrides, validated
// before returning. Lets design-space studies define custom GPUs in files.
func ReadArchJSON(r io.Reader) (Arch, error) { return gpu.ReadArch(r) }

// WriteArchJSON serializes the full architecture description as JSON.
func WriteArchJSON(a Arch, w io.Writer) error { return gpu.WriteArch(a, w) }

// ResolveArch interprets an architecture argument: "ampere", "turing", or a
// path to a JSON architecture description.
func ResolveArch(nameOrPath string) (Arch, error) {
	switch nameOrPath {
	case "ampere":
		return Ampere(), nil
	case "turing":
		return Turing(), nil
	}
	f, err := os.Open(nameOrPath)
	if err != nil {
		return Arch{}, fmt.Errorf("sieve: architecture %q is neither a known name nor a readable config: %w", nameOrPath, err)
	}
	defer f.Close()
	return gpu.ReadArch(f)
}
