// Package cliflags centralizes the flag definitions the sieve command-line
// tools share. cmd/sieve, cmd/experiments, cmd/simulate and cmd/sieved had
// each re-declared -theta, -parallelism and -seed with drifting defaults and
// help text (and under drifting names: -workers, -parallel); registering them
// here gives every tool the same canonical name, default and wording, while
// legacy names stay usable as aliases bound to the same value.
package cliflags

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"runtime"
	"strings"

	"github.com/gpusampling/sieve/internal/core"
	"github.com/gpusampling/sieve/internal/obs"
	"github.com/gpusampling/sieve/internal/sampler"
)

// Canonical help text, shared verbatim by every tool.
const (
	thetaHelp       = "Sieve CoV threshold θ separating Tier-2 from Tier-3 (paper default 0.4)"
	parallelismHelp = "worker count for the parallel sampling pipelines (1 = sequential; results are byte-identical at any value)"
	seedHelp        = "deterministic RNG seed for PKS clustering and k-means restarts (0 = default)"
	archHelp        = "hardware model: ampere, turing, or a JSON arch file"
	streamHelp      = "use the bounded-memory streaming sampler (single pass, per-kernel reservoirs)"
	reservoirHelp   = "rows retained per kernel in -stream mode (0 = default)"
	logLevelHelp    = "structured-log level: debug, info, warn or error"
	peersHelp       = "comma-separated base URLs of the sieved replica set for consistent-hash shard routing (empty = single node)"
	selfHelp        = "this replica's own advertised base URL, as the other replicas reach it (required with -peers)"
	targetsHelp     = "comma-separated sieved base URLs to drive (one per replica; requests spread across them)"
	reportHelp      = "write an observability report (per-stage spans, counters, histograms) as JSON to this file ('-' = stdout)"
	traceOutHelp    = "write the recorded stage spans as Chrome trace_viewer trace-event JSON to this file (open via chrome://tracing or ui.perfetto.dev)"
)

// Theta registers the canonical -theta flag: the paper's default θ = 0.4.
func Theta(fs *flag.FlagSet) *float64 {
	return fs.Float64("theta", core.DefaultTheta, thetaHelp)
}

// Seed registers the canonical -seed flag.
func Seed(fs *flag.FlagSet) *int64 {
	return fs.Int64("seed", 0, seedHelp)
}

// Parallelism registers the canonical -parallelism flag, defaulting to
// GOMAXPROCS, plus any legacy alias names bound to the same value (e.g.
// "workers" in cmd/experiments, "parallel" in cmd/simulate).
func Parallelism(fs *flag.FlagSet, aliases ...string) *int {
	def := runtime.GOMAXPROCS(0)
	p := fs.Int("parallelism", def, parallelismHelp)
	for _, a := range aliases {
		fs.IntVar(p, a, def, "alias for -parallelism")
	}
	return p
}

// Scale registers the shared -scale flag with a tool-specific default
// (cmd/experiments uses 0 to mean "per-experiment default").
func Scale(fs *flag.FlagSet, def float64) *float64 {
	help := "workload scale factor in (0, 1]"
	if def == 0 {
		help += "; 0 = per-experiment default"
	}
	return fs.Float64("scale", def, help)
}

// Arch registers the shared -arch flag.
func Arch(fs *flag.FlagSet) *string {
	return fs.String("arch", "ampere", archHelp)
}

// Method registers the shared -method flag selecting the sampling
// methodology. The help text enumerates whatever strategies the binary
// actually links (the sampler registry is populated by package init), so it
// never drifts from the registered set.
func Method(fs *flag.FlagSet) *string {
	return fs.String("method", core.MethodSieve,
		"sampling methodology: "+strings.Join(sampler.Names(), ", "))
}

// Stream registers the shared -stream / -reservoir streaming-mode pair.
func Stream(fs *flag.FlagSet) (stream *bool, reservoir *int) {
	return fs.Bool("stream", false, streamHelp), fs.Int("reservoir", 0, reservoirHelp)
}

// Peers registers the shared -peers / -self replica-set pair for the sieved
// shard ring.
func Peers(fs *flag.FlagSet) (peers, self *string) {
	return fs.String("peers", "", peersHelp), fs.String("self", "", selfHelp)
}

// Targets registers the shared -targets flag naming the sieved replicas a
// client-side tool drives (cmd/sieveload).
func Targets(fs *flag.FlagSet, def string) *string {
	return fs.String("targets", def, targetsHelp)
}

// SplitList parses a comma-separated flag value into trimmed, non-empty
// entries.
func SplitList(csv string) []string {
	var out []string
	for _, part := range strings.Split(csv, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// LogLevel registers the shared -log-level flag.
func LogLevel(fs *flag.FlagSet) *string {
	return fs.String("log-level", "info", logLevelHelp)
}

// Report registers the shared -report / -trace-out observability output pair.
func Report(fs *flag.FlagSet) (report, traceOut *string) {
	return fs.String("report", "", reportHelp), fs.String("trace-out", "", traceOutHelp)
}

// WriteObsOutputs exports a collector's recorded spans to the -report and
// -trace-out destinations registered by Report: the structured JSON report to
// reportPath and Chrome trace_viewer trace-event JSON to tracePath. "-" means
// stdout, an empty path skips that output, and a nil collector is a no-op.
func WriteObsOutputs(col *obs.Collector, reportPath, tracePath string) error {
	if col == nil {
		return nil
	}
	rep := col.Report()
	if reportPath != "" {
		if err := writeTo(reportPath, rep.WriteJSON); err != nil {
			return fmt.Errorf("write report: %w", err)
		}
	}
	if tracePath != "" {
		if err := writeTo(tracePath, rep.WriteTrace); err != nil {
			return fmt.Errorf("write trace: %w", err)
		}
	}
	return nil
}

// writeTo streams write into path, with "-" meaning stdout.
func writeTo(path string, write func(io.Writer) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// NewLogger builds the shared structured logger every tool uses: slog text
// lines on stderr at the named level (the -log-level value). An unknown level
// is an error so typos fail loudly instead of silently logging at info.
func NewLogger(level string) (*slog.Logger, error) {
	var l slog.Level
	if err := l.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("invalid log level %q (use debug, info, warn or error)", level)
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: l})), nil
}

// MustLogger is NewLogger for main() preambles: an invalid level prints the
// error and exits, since no logger exists yet to report it.
func MustLogger(tool, level string) *slog.Logger {
	logger, err := NewLogger(level)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
		os.Exit(2)
	}
	return logger.With("tool", tool)
}
