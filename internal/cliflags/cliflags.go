// Package cliflags centralizes the flag definitions the sieve command-line
// tools share. cmd/sieve, cmd/experiments, cmd/simulate and cmd/sieved had
// each re-declared -theta, -parallelism and -seed with drifting defaults and
// help text (and under drifting names: -workers, -parallel); registering them
// here gives every tool the same canonical name, default and wording, while
// legacy names stay usable as aliases bound to the same value.
package cliflags

import (
	"flag"
	"runtime"

	"github.com/gpusampling/sieve/internal/core"
)

// Canonical help text, shared verbatim by every tool.
const (
	thetaHelp       = "Sieve CoV threshold θ separating Tier-2 from Tier-3 (paper default 0.4)"
	parallelismHelp = "worker count for the parallel sampling pipelines (1 = sequential; results are byte-identical at any value)"
	seedHelp        = "deterministic RNG seed for PKS clustering and k-means restarts (0 = default)"
	archHelp        = "hardware model: ampere, turing, or a JSON arch file"
	streamHelp      = "use the bounded-memory streaming sampler (single pass, per-kernel reservoirs)"
	reservoirHelp   = "rows retained per kernel in -stream mode (0 = default)"
)

// Theta registers the canonical -theta flag: the paper's default θ = 0.4.
func Theta(fs *flag.FlagSet) *float64 {
	return fs.Float64("theta", core.DefaultTheta, thetaHelp)
}

// Seed registers the canonical -seed flag.
func Seed(fs *flag.FlagSet) *int64 {
	return fs.Int64("seed", 0, seedHelp)
}

// Parallelism registers the canonical -parallelism flag, defaulting to
// GOMAXPROCS, plus any legacy alias names bound to the same value (e.g.
// "workers" in cmd/experiments, "parallel" in cmd/simulate).
func Parallelism(fs *flag.FlagSet, aliases ...string) *int {
	def := runtime.GOMAXPROCS(0)
	p := fs.Int("parallelism", def, parallelismHelp)
	for _, a := range aliases {
		fs.IntVar(p, a, def, "alias for -parallelism")
	}
	return p
}

// Scale registers the shared -scale flag with a tool-specific default
// (cmd/experiments uses 0 to mean "per-experiment default").
func Scale(fs *flag.FlagSet, def float64) *float64 {
	help := "workload scale factor in (0, 1]"
	if def == 0 {
		help += "; 0 = per-experiment default"
	}
	return fs.Float64("scale", def, help)
}

// Arch registers the shared -arch flag.
func Arch(fs *flag.FlagSet) *string {
	return fs.String("arch", "ampere", archHelp)
}

// Stream registers the shared -stream / -reservoir streaming-mode pair.
func Stream(fs *flag.FlagSet) (stream *bool, reservoir *int) {
	return fs.Bool("stream", false, streamHelp), fs.Int("reservoir", 0, reservoirHelp)
}
