package cliflags

import (
	"flag"
	"runtime"
	"testing"
)

func newSet() *flag.FlagSet {
	return flag.NewFlagSet("test", flag.ContinueOnError)
}

func TestThetaDefault(t *testing.T) {
	fs := newSet()
	theta := Theta(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if *theta != 0.4 {
		t.Fatalf("theta default = %g, want the paper's 0.4", *theta)
	}
}

func TestParallelismAliasesShareValue(t *testing.T) {
	fs := newSet()
	p := Parallelism(fs, "workers", "parallel")
	if err := fs.Parse([]string{"-workers", "3"}); err != nil {
		t.Fatal(err)
	}
	if *p != 3 {
		t.Fatalf("alias -workers did not set -parallelism: got %d", *p)
	}

	fs = newSet()
	p = Parallelism(fs, "workers")
	if err := fs.Parse([]string{"-parallelism", "2", "-workers", "5"}); err != nil {
		t.Fatal(err)
	}
	if *p != 5 {
		t.Fatalf("last flag should win across alias and canonical name: got %d", *p)
	}

	fs = newSet()
	p = Parallelism(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if *p != runtime.GOMAXPROCS(0) {
		t.Fatalf("parallelism default = %d, want GOMAXPROCS = %d", *p, runtime.GOMAXPROCS(0))
	}
}

func TestScaleHelpMentionsPerExperimentDefault(t *testing.T) {
	fs := newSet()
	Scale(fs, 0)
	f := fs.Lookup("scale")
	if f == nil {
		t.Fatal("scale flag not registered")
	}
	if f.DefValue != "0" {
		t.Fatalf("scale default = %s", f.DefValue)
	}
}

func TestPeersRegistrar(t *testing.T) {
	fs := newSet()
	peers, self := Peers(fs)
	if err := fs.Parse([]string{"-peers", "http://a:1,http://b:2", "-self", "http://a:1"}); err != nil {
		t.Fatal(err)
	}
	if *peers != "http://a:1,http://b:2" || *self != "http://a:1" {
		t.Fatalf("parsed peers=%q self=%q", *peers, *self)
	}
	// Defaults: single-node operation.
	fs2 := newSet()
	p2, s2 := Peers(fs2)
	if err := fs2.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if *p2 != "" || *s2 != "" {
		t.Fatalf("defaults peers=%q self=%q, want empty", *p2, *s2)
	}
}

func TestSharedRegistrars(t *testing.T) {
	fs := newSet()
	seed := Seed(fs)
	arch := Arch(fs)
	stream, reservoir := Stream(fs)
	if err := fs.Parse([]string{"-seed", "7", "-arch", "turing", "-stream", "-reservoir", "64"}); err != nil {
		t.Fatal(err)
	}
	if *seed != 7 || *arch != "turing" || !*stream || *reservoir != 64 {
		t.Fatalf("parsed seed=%d arch=%s stream=%v reservoir=%d", *seed, *arch, *stream, *reservoir)
	}
}
