package cluster

import (
	"math/rand"
	"testing"
)

// TestLloydZeroSteadyStateAllocs pins the zero-allocation property of the
// Lloyd iteration loop: once a Scratch has grown to the run's (n, dim, k),
// repeated seeded runs over the same dataset allocate nothing. This is what
// makes the PKS k-sweep (one Scratch reused across every candidate k)
// allocation-free outside result materialization.
func TestLloydZeroSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	rng := rand.New(rand.NewSource(42))
	points := make([][]float64, 400)
	for i := range points {
		points[i] = []float64{rng.NormFloat64(), rng.NormFloat64() + float64(i%4)*10, rng.NormFloat64()}
	}
	ds, err := NewDataset(points)
	if err != nil {
		t.Fatalf("NewDataset: %v", err)
	}
	cfg := Config{K: 4, Rng: rng}
	if err := validate(ds, &cfg); err != nil {
		t.Fatalf("validate: %v", err)
	}
	s := &Scratch{}
	lloyd(ds, &cfg, rand.New(rand.NewSource(7)), s) // warm-up grows the scratch

	allocs := testing.AllocsPerRun(25, func() {
		lloyd(ds, &cfg, rand.New(rand.NewSource(7)), s)
	})
	// Budget of 2 covers the rand.New source + Rand wrappers the closure
	// itself creates; the Lloyd loop contributes zero.
	if allocs > 2 {
		t.Fatalf("lloyd steady state allocates %.0f objects per run, want ≤ 2 (rng construction only)", allocs)
	}
}

// TestKMeansDatasetScratchReuseMatchesFresh verifies that reusing one
// Scratch across runs cannot leak state between them: results with a shared
// scratch are identical to results with a fresh scratch per call.
func TestKMeansDatasetScratchReuseMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	points := make([][]float64, 150)
	for i := range points {
		points[i] = []float64{rng.Float64() * 100, rng.Float64()}
	}
	ds, err := NewDataset(points)
	if err != nil {
		t.Fatalf("NewDataset: %v", err)
	}
	shared := &Scratch{}
	for k := 1; k <= 8; k++ {
		cfg := Config{K: k, Rng: rand.New(rand.NewSource(int64(k)))}
		got, err := KMeansDataset(ds, cfg, shared)
		if err != nil {
			t.Fatalf("K=%d shared: %v", k, err)
		}
		cfg2 := Config{K: k, Rng: rand.New(rand.NewSource(int64(k)))}
		want, err := KMeansDataset(ds, cfg2, nil)
		if err != nil {
			t.Fatalf("K=%d fresh: %v", k, err)
		}
		if got.Inertia != want.Inertia || got.Iterations != want.Iterations {
			t.Fatalf("K=%d: shared scratch diverges from fresh (inertia %v vs %v, iters %d vs %d)",
				k, got.Inertia, want.Inertia, got.Iterations, want.Iterations)
		}
		for i := range got.Assignments {
			if got.Assignments[i] != want.Assignments[i] {
				t.Fatalf("K=%d: assignment %d differs: %d vs %d", k, i, got.Assignments[i], want.Assignments[i])
			}
		}
	}
}
