package cluster

import (
	"fmt"
	"math"
)

// Agglomerative performs bottom-up hierarchical clustering with average
// linkage (UPGMA) until k clusters remain — the clustering style TBPoint
// (Huang et al., IPDPS 2014) uses to group kernel invocations, referenced in
// the Sieve paper's related work.
//
// The distance matrix is O(n²); callers cluster a bounded sample and assign
// the rest to the nearest resulting centroid (as the PKS pipeline does for
// k-means).
func Agglomerative(points [][]float64, k int) (*Result, error) {
	cuts, err := AgglomerativeCuts(points, []int{k})
	if err != nil {
		return nil, err
	}
	return cuts[k], nil
}

// AgglomerativeCuts builds one dendrogram and returns the clustering at each
// requested cut level k. Building once and cutting many times is what makes
// a k-sweep over hierarchical clusterings affordable.
func AgglomerativeCuts(points [][]float64, ks []int) (map[int]*Result, error) {
	n := len(points)
	if n == 0 {
		return nil, fmt.Errorf("cluster: no points")
	}
	dim := len(points[0])
	if dim == 0 {
		return nil, fmt.Errorf("cluster: zero-dimensional points")
	}
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("cluster: point %d has %d dims, want %d", i, len(p), dim)
		}
	}
	if len(ks) == 0 {
		return nil, fmt.Errorf("cluster: no cut levels requested")
	}
	wanted := make(map[int]bool, len(ks))
	minK := n
	for _, k := range ks {
		if k < 1 || k > n {
			return nil, fmt.Errorf("cluster: k = %d outside [1, %d]", k, n)
		}
		wanted[k] = true
		if k < minK {
			minK = k
		}
	}

	// Lance–Williams average linkage over an explicit distance matrix.
	type clust struct {
		size  int
		alive bool
	}
	clusters := make([]clust, n)
	assign := make([]int, n) // point -> cluster id (ids mutate by merging)
	for i := range clusters {
		clusters[i] = clust{size: 1, alive: true}
		assign[i] = i
	}
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
		for j := 0; j < i; j++ {
			d := math.Sqrt(sqDist(points[i], points[j]))
			dist[i][j] = d
			dist[j][i] = d
		}
	}

	snapshot := func() *Result {
		remap := make(map[int]int)
		for i := 0; i < n; i++ {
			if clusters[i].alive {
				remap[i] = len(remap)
			}
		}
		res := &Result{
			Centroids:   make([][]float64, len(remap)),
			Assignments: make([]int, n),
			Sizes:       make([]int, len(remap)),
		}
		for c := range res.Centroids {
			res.Centroids[c] = make([]float64, dim)
		}
		for p := range points {
			c := remap[assign[p]]
			res.Assignments[p] = c
			res.Sizes[c]++
			for d, v := range points[p] {
				res.Centroids[c][d] += v
			}
		}
		for c := range res.Centroids {
			for d := range res.Centroids[c] {
				res.Centroids[c][d] /= float64(res.Sizes[c])
			}
		}
		for p := range points {
			res.Inertia += sqDist(points[p], res.Centroids[res.Assignments[p]])
		}
		return res
	}

	out := make(map[int]*Result, len(ks))
	alive := n
	if wanted[alive] {
		out[alive] = snapshot()
	}
	for alive > minK {
		// Find the closest pair of live clusters.
		bi, bj, best := -1, -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !clusters[i].alive {
				continue
			}
			for j := 0; j < i; j++ {
				if !clusters[j].alive {
					continue
				}
				if dist[i][j] < best {
					bi, bj, best = i, j, dist[i][j]
				}
			}
		}
		if bi < 0 {
			break
		}
		// Merge bj into bi; update average-linkage distances.
		si := float64(clusters[bi].size)
		sj := float64(clusters[bj].size)
		for m := 0; m < n; m++ {
			if m == bi || m == bj || !clusters[m].alive {
				continue
			}
			d := (si*dist[bi][m] + sj*dist[bj][m]) / (si + sj)
			dist[bi][m] = d
			dist[m][bi] = d
		}
		clusters[bi].size += clusters[bj].size
		clusters[bj].alive = false
		for p := range assign {
			if assign[p] == bj {
				assign[p] = bi
			}
		}
		alive--
		if wanted[alive] {
			out[alive] = snapshot()
		}
	}
	for _, k := range ks {
		if out[k] == nil {
			return nil, fmt.Errorf("cluster: dendrogram never reached %d clusters", k)
		}
	}
	return out, nil
}
