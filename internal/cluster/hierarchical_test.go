package cluster

import (
	"math"
	"testing"
)

func TestAgglomerativeValidation(t *testing.T) {
	good := [][]float64{{1}, {2}}
	cases := []struct {
		name string
		pts  [][]float64
		k    int
	}{
		{"no points", nil, 1},
		{"zero dim", [][]float64{{}}, 1},
		{"ragged", [][]float64{{1}, {1, 2}}, 1},
		{"k zero", good, 0},
		{"k too large", good, 3},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Agglomerative(c.pts, c.k); err == nil {
				t.Fatal("want error")
			}
		})
	}
}

func TestAgglomerativeSeparatesBlobs(t *testing.T) {
	pts := twoBlobs(30, 77)
	res, err := Agglomerative(pts, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, b := res.Assignments[0], res.Assignments[1]
	if a == b {
		t.Fatal("blobs merged")
	}
	for i, c := range res.Assignments {
		want := a
		if i%2 == 1 {
			want = b
		}
		if c != want {
			t.Fatalf("point %d assigned %d, want %d", i, c, want)
		}
	}
	if res.Sizes[a] != 30 || res.Sizes[b] != 30 {
		t.Fatalf("sizes = %v", res.Sizes)
	}
	for _, cent := range res.Centroids {
		nearOrigin := math.Hypot(cent[0], cent[1]) < 5
		nearFar := math.Hypot(cent[0]-100, cent[1]-100) < 5
		if !nearOrigin && !nearFar {
			t.Fatalf("centroid %v off blob centers", cent)
		}
	}
}

func TestAgglomerativeKEqualsN(t *testing.T) {
	pts := [][]float64{{0}, {5}, {10}}
	res, err := Agglomerative(pts, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 3 || res.Inertia > 1e-12 {
		t.Fatalf("K=N should be singleton clusters: %+v", res)
	}
}

func TestAgglomerativeK1(t *testing.T) {
	pts := [][]float64{{0, 0}, {2, 2}, {4, 4}}
	res, err := Agglomerative(pts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 1 {
		t.Fatalf("clusters = %d", len(res.Centroids))
	}
	if res.Centroids[0][0] != 2 || res.Centroids[0][1] != 2 {
		t.Fatalf("centroid = %v, want mean (2,2)", res.Centroids[0])
	}
}

func TestAgglomerativeMergesNearestFirst(t *testing.T) {
	// Points at 0, 1, 10: at k=2, {0,1} must merge, 10 stays alone.
	pts := [][]float64{{0}, {1}, {10}}
	res, err := Agglomerative(pts, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignments[0] != res.Assignments[1] {
		t.Fatal("nearest pair not merged first")
	}
	if res.Assignments[2] == res.Assignments[0] {
		t.Fatal("far point merged prematurely")
	}
}

func TestAgglomerativeInvariants(t *testing.T) {
	pts := twoBlobs(20, 3)
	for _, k := range []int{1, 2, 5, 10} {
		res, err := Agglomerative(pts, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Centroids) != k || len(res.Sizes) != k {
			t.Fatalf("k=%d: got %d clusters", k, len(res.Centroids))
		}
		total := 0
		for _, s := range res.Sizes {
			if s == 0 {
				t.Fatalf("k=%d: empty cluster", k)
			}
			total += s
		}
		if total != len(pts) {
			t.Fatalf("k=%d: sizes sum to %d", k, total)
		}
		for _, a := range res.Assignments {
			if a < 0 || a >= k {
				t.Fatalf("k=%d: assignment %d out of range", k, a)
			}
		}
	}
}

func TestAgglomerativeCuts(t *testing.T) {
	pts := twoBlobs(15, 41)
	cuts, err := AgglomerativeCuts(pts, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(cuts) != 3 {
		t.Fatalf("cuts = %d", len(cuts))
	}
	// Inertia is monotone non-increasing in k.
	if cuts[1].Inertia < cuts[2].Inertia || cuts[2].Inertia < cuts[4].Inertia {
		t.Fatalf("inertia not monotone: %g, %g, %g", cuts[1].Inertia, cuts[2].Inertia, cuts[4].Inertia)
	}
	// The k=2 cut must match the direct call.
	direct, err := Agglomerative(pts, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range direct.Assignments {
		if direct.Assignments[i] != cuts[2].Assignments[i] {
			t.Fatal("direct call diverges from dendrogram cut")
		}
	}
	if _, err := AgglomerativeCuts(pts, nil); err == nil {
		t.Fatal("want error for empty cut list")
	}
	if _, err := AgglomerativeCuts(pts, []int{0}); err == nil {
		t.Fatal("want error for k=0")
	}
}
