// Package cluster implements the k-means clustering substrate used by the
// PKS baseline (Baddouh et al., MICRO 2021): k-means++ seeding, Lloyd
// iterations with empty-cluster repair, and cluster-quality metrics.
//
// Determinism: all randomness flows through the caller-supplied *rand.Rand,
// so a fixed seed reproduces the same clustering — the property the
// experiment harness relies on.
package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
)

// Result describes a k-means clustering.
type Result struct {
	// Centroids holds the k cluster centers.
	Centroids [][]float64
	// Assignments maps each input point index to its cluster index.
	Assignments []int
	// Sizes holds the number of points per cluster.
	Sizes []int
	// Inertia is the total within-cluster sum of squared distances.
	Inertia float64
	// Iterations is the number of Lloyd iterations performed.
	Iterations int
}

// Config controls a k-means run.
type Config struct {
	// K is the number of clusters; required, ≥ 1.
	K int
	// MaxIterations bounds Lloyd iterations (default 100).
	MaxIterations int
	// Tolerance stops iteration when no centroid moves more than this
	// squared distance (default 1e-9).
	Tolerance float64
	// Rng supplies randomness for k-means++ seeding; required.
	Rng *rand.Rand
	// Restarts runs the whole algorithm this many times from independent
	// seedings and keeps the lowest-inertia clustering (default 1; ties break
	// toward the earlier restart). Restart seeds are drawn from Rng up front,
	// so the result does not depend on Parallelism or scheduling.
	Restarts int
	// Parallelism bounds concurrent restarts: 0 selects GOMAXPROCS, 1 runs
	// them sequentially. A single run (Restarts ≤ 1) is always sequential.
	Parallelism int
}

// KMeans clusters points (each a feature vector of equal length) into cfg.K
// clusters. It returns an error for invalid configuration, empty or ragged
// input, or K exceeding the number of points.
func KMeans(points [][]float64, cfg Config) (*Result, error) {
	if err := validate(points, &cfg); err != nil {
		return nil, err
	}
	if cfg.Restarts == 1 {
		return lloyd(points, &cfg, cfg.Rng), nil
	}
	// Draw every restart seed from the shared Rng before fanning out: the
	// per-restart RNGs are then fully determined by the caller's seed and the
	// parallel result is byte-identical to the sequential one.
	seeds := make([]int64, cfg.Restarts)
	for i := range seeds {
		seeds[i] = cfg.Rng.Int63()
	}
	results := make([]*Result, cfg.Restarts)
	workers := cfg.Parallelism
	if workers > cfg.Restarts {
		workers = cfg.Restarts
	}
	if workers <= 1 {
		for i, seed := range seeds {
			results[i] = lloyd(points, &cfg, rand.New(rand.NewSource(seed)))
		}
	} else {
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for i, seed := range seeds {
			wg.Add(1)
			go func(i int, seed int64) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				results[i] = lloyd(points, &cfg, rand.New(rand.NewSource(seed)))
			}(i, seed)
		}
		wg.Wait()
	}
	best := results[0]
	for _, r := range results[1:] {
		if r.Inertia < best.Inertia {
			best = r
		}
	}
	return best, nil
}

// lloyd runs one seeded k-means++ / Lloyd-iteration pass over validated
// input. cfg is read-only here, so concurrent restarts may share it.
func lloyd(points [][]float64, cfg *Config, rng *rand.Rand) *Result {
	dim := len(points[0])
	centroids := seedPlusPlus(points, cfg.K, rng)
	assign := make([]int, len(points))
	sizes := make([]int, cfg.K)

	var iterations int
	for iterations = 1; iterations <= cfg.MaxIterations; iterations++ {
		// Assignment step.
		for i, p := range points {
			assign[i] = nearest(p, centroids)
		}
		// Update step.
		next := make([][]float64, cfg.K)
		for c := range next {
			next[c] = make([]float64, dim)
		}
		for c := range sizes {
			sizes[c] = 0
		}
		for i, p := range points {
			c := assign[i]
			sizes[c]++
			for d, v := range p {
				next[c][d] += v
			}
		}
		for c := range next {
			if sizes[c] == 0 {
				// Empty-cluster repair: reseat on the point farthest from
				// its assigned centroid.
				far := farthestPoint(points, centroids, assign)
				copy(next[c], points[far])
				assign[far] = c
				sizes[c] = 1
				continue
			}
			for d := range next[c] {
				next[c][d] /= float64(sizes[c])
			}
		}
		// Convergence check.
		var moved float64
		for c := range centroids {
			moved = math.Max(moved, sqDist(centroids[c], next[c]))
		}
		centroids = next
		if moved <= cfg.Tolerance {
			break
		}
	}
	if iterations > cfg.MaxIterations {
		iterations = cfg.MaxIterations
	}

	// Final assignment against the converged centroids.
	for c := range sizes {
		sizes[c] = 0
	}
	var inertia float64
	for i, p := range points {
		c := nearest(p, centroids)
		assign[i] = c
		sizes[c]++
		inertia += sqDist(p, centroids[c])
	}
	return &Result{
		Centroids:   centroids,
		Assignments: assign,
		Sizes:       sizes,
		Inertia:     inertia,
		Iterations:  iterations,
	}
}

func validate(points [][]float64, cfg *Config) error {
	if len(points) == 0 {
		return fmt.Errorf("cluster: no points")
	}
	dim := len(points[0])
	if dim == 0 {
		return fmt.Errorf("cluster: zero-dimensional points")
	}
	for i, p := range points {
		if len(p) != dim {
			return fmt.Errorf("cluster: point %d has %d dims, want %d", i, len(p), dim)
		}
	}
	if cfg.K < 1 {
		return fmt.Errorf("cluster: K = %d, want ≥ 1", cfg.K)
	}
	if cfg.K > len(points) {
		return fmt.Errorf("cluster: K = %d exceeds %d points", cfg.K, len(points))
	}
	if cfg.Rng == nil {
		return fmt.Errorf("cluster: nil Rng (pass a seeded *rand.Rand for reproducibility)")
	}
	if cfg.MaxIterations <= 0 {
		cfg.MaxIterations = 100
	}
	if cfg.Tolerance <= 0 {
		cfg.Tolerance = 1e-9
	}
	if cfg.Restarts <= 0 {
		cfg.Restarts = 1
	}
	if cfg.Parallelism == 0 {
		cfg.Parallelism = runtime.GOMAXPROCS(0)
	}
	return nil
}

// seedPlusPlus selects k initial centroids with the k-means++ strategy:
// the first uniformly, each next proportionally to squared distance from the
// nearest chosen centroid.
func seedPlusPlus(points [][]float64, k int, rng *rand.Rand) [][]float64 {
	centroids := make([][]float64, 0, k)
	centroids = append(centroids, clone(points[rng.Intn(len(points))]))

	// dMin[i] tracks the squared distance from point i to its nearest
	// already-chosen centroid; updated incrementally as centroids are added.
	dMin := make([]float64, len(points))
	for i, p := range points {
		dMin[i] = sqDist(p, centroids[0])
	}
	for len(centroids) < k {
		var total float64
		for _, d := range dMin {
			total += d
		}
		var next int
		if total <= 0 {
			// All points coincide with existing centroids; any choice works.
			next = rng.Intn(len(points))
		} else {
			target := rng.Float64() * total
			var acc float64
			next = len(points) - 1
			for i, d := range dMin {
				acc += d
				if acc >= target {
					next = i
					break
				}
			}
		}
		chosen := clone(points[next])
		centroids = append(centroids, chosen)
		for i, p := range points {
			if d := sqDist(p, chosen); d < dMin[i] {
				dMin[i] = d
			}
		}
	}
	return centroids
}

func nearest(p []float64, centroids [][]float64) int {
	best, bestD := 0, math.Inf(1)
	for c, cent := range centroids {
		if d := sqDist(p, cent); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

func farthestPoint(points [][]float64, centroids [][]float64, assign []int) int {
	far, farD := 0, -1.0
	for i, p := range points {
		if d := sqDist(p, centroids[assign[i]]); d > farD {
			far, farD = i, d
		}
	}
	return far
}

func sqDist(a, b []float64) float64 {
	var acc float64
	for i := range a {
		d := a[i] - b[i]
		acc += d * d
	}
	return acc
}

func clone(p []float64) []float64 {
	out := make([]float64, len(p))
	copy(out, p)
	return out
}
