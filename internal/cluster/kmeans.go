// Package cluster implements the k-means clustering substrate used by the
// PKS baseline (Baddouh et al., MICRO 2021): k-means++ seeding, Lloyd
// iterations with empty-cluster repair, and cluster-quality metrics.
//
// Determinism: all randomness flows through the caller-supplied *rand.Rand,
// so a fixed seed reproduces the same clustering — the property the
// experiment harness relies on.
//
// The Lloyd kernels run over a flat struct-of-arrays Dataset (one
// contiguous []float64 with a row stride) rather than [][]float64, with
// reusable Scratch buffers, so the iteration loop is memory-bandwidth-bound
// and allocation-free — the k-sweep in internal/pks flattens its fitting
// sample once and reuses one Scratch across all candidate k values.
package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
)

// Result describes a k-means clustering.
type Result struct {
	// Centroids holds the k cluster centers.
	Centroids [][]float64
	// Assignments maps each input point index to its cluster index.
	Assignments []int
	// Sizes holds the number of points per cluster.
	Sizes []int
	// Inertia is the total within-cluster sum of squared distances.
	Inertia float64
	// Iterations is the number of Lloyd iterations performed.
	Iterations int
}

// Config controls a k-means run.
type Config struct {
	// K is the number of clusters; required, ≥ 1.
	K int
	// MaxIterations bounds Lloyd iterations (default 100).
	MaxIterations int
	// Tolerance stops iteration when no centroid moves more than this
	// squared distance (default 1e-9).
	Tolerance float64
	// Rng supplies randomness for k-means++ seeding; required.
	Rng *rand.Rand
	// Restarts runs the whole algorithm this many times from independent
	// seedings and keeps the lowest-inertia clustering (default 1; ties break
	// toward the earlier restart). Restart seeds are drawn from Rng up front,
	// so the result does not depend on Parallelism or scheduling.
	Restarts int
	// Parallelism bounds concurrent restarts: 0 selects GOMAXPROCS, 1 runs
	// them sequentially. A single run (Restarts ≤ 1) is always sequential.
	Parallelism int
}

// Dataset is a columnar (flat, row-major) point set: point i occupies
// data[i*dim : (i+1)*dim]. Flattening once and iterating with a stride keeps
// the Lloyd kernels on contiguous memory instead of chasing a pointer per
// point.
type Dataset struct {
	data []float64
	n    int
	dim  int
}

// NewDataset flattens points into a Dataset. It returns an error for empty,
// zero-dimensional or ragged input.
func NewDataset(points [][]float64) (*Dataset, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("cluster: no points")
	}
	dim := len(points[0])
	if dim == 0 {
		return nil, fmt.Errorf("cluster: zero-dimensional points")
	}
	data := make([]float64, 0, len(points)*dim)
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("cluster: point %d has %d dims, want %d", i, len(p), dim)
		}
		data = append(data, p...)
	}
	return &Dataset{data: data, n: len(points), dim: dim}, nil
}

// Len returns the number of points.
func (d *Dataset) Len() int { return d.n }

// Dim returns the per-point dimensionality.
func (d *Dataset) Dim() int { return d.dim }

// row returns point i as a slice view into the flat storage.
func (d *Dataset) row(i int) []float64 { return d.data[i*d.dim : (i+1)*d.dim] }

// Scratch holds the per-run Lloyd state (centroids, assignment, sizes,
// seeding distances) so repeated runs — restarts, or a k-sweep over the same
// dataset — allocate nothing after the first use. A zero Scratch is ready;
// it grows to the largest (n, dim, k) it has seen.
type Scratch struct {
	centroids  []float64 // k*dim, current centroids
	next       []float64 // k*dim, update-step accumulator
	assign     []int     // n
	sizes      []int     // k
	dMin       []float64 // n, k-means++ nearest-chosen-centroid distances
	inertia    float64
	iterations int
}

// resize readies the scratch for a run over n points of dim dimensions with
// k clusters, reusing prior capacity where possible.
func (s *Scratch) resize(n, dim, k int) {
	s.centroids = growFloats(s.centroids, k*dim)
	s.next = growFloats(s.next, k*dim)
	s.dMin = growFloats(s.dMin, n)
	if cap(s.assign) < n {
		s.assign = make([]int, n)
	}
	s.assign = s.assign[:n]
	if cap(s.sizes) < k {
		s.sizes = make([]int, k)
	}
	s.sizes = s.sizes[:k]
}

func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// KMeans clusters points (each a feature vector of equal length) into cfg.K
// clusters. It returns an error for invalid configuration, empty or ragged
// input, or K exceeding the number of points.
func KMeans(points [][]float64, cfg Config) (*Result, error) {
	ds, err := NewDataset(points)
	if err != nil {
		return nil, err
	}
	return KMeansDataset(ds, cfg, nil)
}

// KMeansDataset is KMeans over an already-flattened Dataset. scratch, when
// non-nil, supplies reusable iteration buffers (and is left holding the last
// run's state); callers sweeping many configurations over one dataset pass
// the same Scratch to keep the steady-state allocation count at the Result
// materialization alone. A nil scratch uses a private one.
func KMeansDataset(ds *Dataset, cfg Config, scratch *Scratch) (*Result, error) {
	if err := validate(ds, &cfg); err != nil {
		return nil, err
	}
	if scratch == nil {
		scratch = &Scratch{}
	}
	if cfg.Restarts == 1 {
		lloyd(ds, &cfg, cfg.Rng, scratch)
		return materialize(ds, &cfg, scratch), nil
	}
	// Draw every restart seed from the shared Rng before fanning out: the
	// per-restart RNGs are then fully determined by the caller's seed and the
	// parallel result is byte-identical to the sequential one.
	seeds := make([]int64, cfg.Restarts)
	for i := range seeds {
		seeds[i] = cfg.Rng.Int63()
	}
	workers := cfg.Parallelism
	if workers > cfg.Restarts {
		workers = cfg.Restarts
	}
	if workers <= 1 {
		// Sequential restarts share one scratch; only an improving restart
		// pays the materialization. Ties break toward the earlier restart,
		// exactly like the parallel reduction below.
		var best *Result
		for _, seed := range seeds {
			lloyd(ds, &cfg, rand.New(rand.NewSource(seed)), scratch)
			if best == nil || scratch.inertia < best.Inertia {
				best = materialize(ds, &cfg, scratch)
			}
		}
		return best, nil
	}
	// Parallel restarts: workers own disjoint restart slots and private
	// scratch; the reduction below walks slots in restart order.
	results := make([]*Result, cfg.Restarts)
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, seed := range seeds {
		wg.Add(1)
		go func(i int, seed int64) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var s Scratch
			lloyd(ds, &cfg, rand.New(rand.NewSource(seed)), &s)
			results[i] = materialize(ds, &cfg, &s)
		}(i, seed)
	}
	wg.Wait()
	best := results[0]
	for _, r := range results[1:] {
		if r.Inertia < best.Inertia {
			best = r
		}
	}
	return best, nil
}

// materialize copies the scratch's converged state into a standalone Result.
func materialize(ds *Dataset, cfg *Config, s *Scratch) *Result {
	dim := ds.dim
	res := &Result{
		Centroids:   make([][]float64, cfg.K),
		Assignments: append([]int(nil), s.assign...),
		Sizes:       append([]int(nil), s.sizes...),
		Inertia:     s.inertia,
		Iterations:  s.iterations,
	}
	for c := range res.Centroids {
		res.Centroids[c] = append([]float64(nil), s.centroids[c*dim:(c+1)*dim]...)
	}
	return res
}

// lloyd runs one seeded k-means++ / Lloyd-iteration pass over the dataset,
// leaving the converged centroids, assignment, sizes and inertia in s. The
// iteration loop performs no allocations: the assignment and update steps
// are fused into one pass over the flat data, and the centroid buffers
// ping-pong between s.centroids and s.next.
func lloyd(ds *Dataset, cfg *Config, rng *rand.Rand, s *Scratch) {
	n, dim, k := ds.n, ds.dim, cfg.K
	s.resize(n, dim, k)
	seedPlusPlus(ds, k, rng, s)
	centroids, next := s.centroids, s.next
	assign, sizes := s.assign, s.sizes

	var iterations int
	for iterations = 1; iterations <= cfg.MaxIterations; iterations++ {
		// Fused assignment + update step: classify each point against the
		// current centroids and accumulate it into its cluster's sum in the
		// same pass over the flat data.
		clear(next)
		for c := range sizes {
			sizes[c] = 0
		}
		for i := 0; i < n; i++ {
			p := ds.data[i*dim : (i+1)*dim]
			c, _ := nearestFlat(p, centroids, k, dim)
			assign[i] = c
			sizes[c]++
			acc := next[c*dim : (c+1)*dim]
			for d, v := range p {
				acc[d] += v
			}
		}
		for c := 0; c < k; c++ {
			cent := next[c*dim : (c+1)*dim]
			if sizes[c] == 0 {
				// Empty-cluster repair: reseat on the point farthest from
				// its assigned centroid.
				far := farthestFlat(ds, centroids, assign)
				copy(cent, ds.row(far))
				assign[far] = c
				sizes[c] = 1
				continue
			}
			inv := float64(sizes[c])
			for d := range cent {
				cent[d] /= inv
			}
		}
		// Convergence check.
		var moved float64
		for c := 0; c < k; c++ {
			moved = math.Max(moved, sqDistFlat(centroids[c*dim:(c+1)*dim], next[c*dim:(c+1)*dim]))
		}
		centroids, next = next, centroids
		if moved <= cfg.Tolerance {
			break
		}
	}
	if iterations > cfg.MaxIterations {
		iterations = cfg.MaxIterations
	}

	// Final assignment against the converged centroids; the winning
	// candidate's distance is fully accumulated, so inertia is bitwise
	// identical to a separate sqDist pass.
	for c := range sizes {
		sizes[c] = 0
	}
	var inertia float64
	for i := 0; i < n; i++ {
		c, d := nearestFlat(ds.data[i*dim:(i+1)*dim], centroids, k, dim)
		assign[i] = c
		sizes[c]++
		inertia += d
	}
	s.centroids, s.next = centroids, next
	s.inertia = inertia
	s.iterations = iterations
}

func validate(ds *Dataset, cfg *Config) error {
	if cfg.K < 1 {
		return fmt.Errorf("cluster: K = %d, want ≥ 1", cfg.K)
	}
	if cfg.K > ds.n {
		return fmt.Errorf("cluster: K = %d exceeds %d points", cfg.K, ds.n)
	}
	if cfg.Rng == nil {
		return fmt.Errorf("cluster: nil Rng (pass a seeded *rand.Rand for reproducibility)")
	}
	if cfg.MaxIterations <= 0 {
		cfg.MaxIterations = 100
	}
	if cfg.Tolerance <= 0 {
		cfg.Tolerance = 1e-9
	}
	if cfg.Restarts <= 0 {
		cfg.Restarts = 1
	}
	if cfg.Parallelism == 0 {
		cfg.Parallelism = runtime.GOMAXPROCS(0)
	}
	return nil
}

// seedPlusPlus selects k initial centroids with the k-means++ strategy into
// s.centroids: the first uniformly, each next proportionally to squared
// distance from the nearest chosen centroid.
func seedPlusPlus(ds *Dataset, k int, rng *rand.Rand, s *Scratch) {
	dim := ds.dim
	copy(s.centroids[:dim], ds.row(rng.Intn(ds.n)))

	// dMin[i] tracks the squared distance from point i to its nearest
	// already-chosen centroid; updated incrementally as centroids are added.
	dMin := s.dMin
	first := s.centroids[:dim]
	for i := 0; i < ds.n; i++ {
		dMin[i] = sqDistFlat(ds.row(i), first)
	}
	for chosen := 1; chosen < k; chosen++ {
		var total float64
		for _, d := range dMin {
			total += d
		}
		var next int
		if total <= 0 {
			// All points coincide with existing centroids; any choice works.
			next = rng.Intn(ds.n)
		} else {
			target := rng.Float64() * total
			var acc float64
			next = ds.n - 1
			for i, d := range dMin {
				acc += d
				if acc >= target {
					next = i
					break
				}
			}
		}
		cent := s.centroids[chosen*dim : (chosen+1)*dim]
		copy(cent, ds.row(next))
		for i := 0; i < ds.n; i++ {
			if d := sqDistFlat(ds.row(i), cent); d < dMin[i] {
				dMin[i] = d
			}
		}
	}
}

// nearestFlat returns the index of the centroid closest to p and its exact
// squared distance. Candidates that cannot beat the best-so-far abort the
// accumulation early (partial-distance pruning); the pruning never fires on
// the winning centroid, so the returned distance is the full, bitwise-exact
// sum in dimension order.
func nearestFlat(p, centroids []float64, k, dim int) (int, float64) {
	best, bestD := 0, math.Inf(1)
	for c := 0; c < k; c++ {
		cent := centroids[c*dim : (c+1)*dim]
		var acc float64
		if dim <= 4 {
			// Tiny rows (the common case after PCA): the pruning branch
			// costs more than it saves.
			for j, v := range cent {
				diff := p[j] - v
				acc += diff * diff
			}
		} else {
			for j, v := range cent {
				diff := p[j] - v
				acc += diff * diff
				if acc >= bestD {
					break
				}
			}
		}
		if acc < bestD {
			best, bestD = c, acc
		}
	}
	return best, bestD
}

// farthestFlat returns the index of the point farthest from its assigned
// centroid.
func farthestFlat(ds *Dataset, centroids []float64, assign []int) int {
	dim := ds.dim
	far, farD := 0, -1.0
	for i := 0; i < ds.n; i++ {
		c := assign[i]
		if d := sqDistFlat(ds.data[i*dim:(i+1)*dim], centroids[c*dim:(c+1)*dim]); d > farD {
			far, farD = i, d
		}
	}
	return far
}

// sqDistFlat is the squared Euclidean distance between two equal-length
// rows, accumulated in dimension order (the canonical summation order every
// distance in this package uses, so results are reproducible bitwise).
func sqDistFlat(a, b []float64) float64 {
	var acc float64
	for i := range a {
		d := a[i] - b[i]
		acc += d * d
	}
	return acc
}

// nearest returns the index of the centroid (rows of a [][]float64) closest
// to p — the row-slice counterpart of nearestFlat, used by the quality
// metrics and tests.
func nearest(p []float64, centroids [][]float64) int {
	best, bestD := 0, math.Inf(1)
	for c, cent := range centroids {
		if d := sqDist(p, cent); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

func sqDist(a, b []float64) float64 {
	var acc float64
	for i := range a {
		d := a[i] - b[i]
		acc += d * d
	}
	return acc
}
