package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// twoBlobs builds two well-separated 2-D Gaussian blobs.
func twoBlobs(n int, seed int64) [][]float64 {
	r := rng(seed)
	pts := make([][]float64, 0, 2*n)
	for i := 0; i < n; i++ {
		pts = append(pts, []float64{r.NormFloat64(), r.NormFloat64()})
		pts = append(pts, []float64{100 + r.NormFloat64(), 100 + r.NormFloat64()})
	}
	return pts
}

func TestKMeansValidation(t *testing.T) {
	good := [][]float64{{1}, {2}}
	cases := []struct {
		name string
		pts  [][]float64
		cfg  Config
	}{
		{"no points", nil, Config{K: 1, Rng: rng(1)}},
		{"zero dim", [][]float64{{}}, Config{K: 1, Rng: rng(1)}},
		{"ragged", [][]float64{{1}, {1, 2}}, Config{K: 1, Rng: rng(1)}},
		{"k zero", good, Config{K: 0, Rng: rng(1)}},
		{"k too large", good, Config{K: 3, Rng: rng(1)}},
		{"nil rng", good, Config{K: 1}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := KMeans(c.pts, c.cfg); err == nil {
				t.Fatal("want error")
			}
		})
	}
}

func TestKMeansSeparatesBlobs(t *testing.T) {
	pts := twoBlobs(100, 42)
	res, err := KMeans(pts, Config{K: 2, Rng: rng(7)})
	if err != nil {
		t.Fatal(err)
	}
	// Points alternate blob A, blob B. All even indices must share a cluster
	// and all odd indices the other.
	a := res.Assignments[0]
	b := res.Assignments[1]
	if a == b {
		t.Fatal("blobs merged")
	}
	for i, c := range res.Assignments {
		want := a
		if i%2 == 1 {
			want = b
		}
		if c != want {
			t.Fatalf("point %d assigned %d, want %d", i, c, want)
		}
	}
	if res.Sizes[a] != 100 || res.Sizes[b] != 100 {
		t.Fatalf("sizes = %v", res.Sizes)
	}
	// Centroids near (0,0) and (100,100).
	for _, cent := range res.Centroids {
		nearOrigin := math.Hypot(cent[0], cent[1]) < 5
		nearFar := math.Hypot(cent[0]-100, cent[1]-100) < 5
		if !nearOrigin && !nearFar {
			t.Fatalf("centroid %v far from both blob centers", cent)
		}
	}
}

func TestKMeansK1CentroidIsMean(t *testing.T) {
	pts := [][]float64{{0, 0}, {2, 4}, {4, 2}}
	res, err := KMeans(pts, Config{K: 1, Rng: rng(3)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Centroids[0][0]-2) > 1e-9 || math.Abs(res.Centroids[0][1]-2) > 1e-9 {
		t.Fatalf("centroid = %v, want mean (2,2)", res.Centroids[0])
	}
	if res.Sizes[0] != 3 {
		t.Fatalf("sizes = %v", res.Sizes)
	}
}

func TestKMeansDeterministicForSeed(t *testing.T) {
	pts := twoBlobs(50, 5)
	a, err := KMeans(pts, Config{K: 4, Rng: rng(99)})
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(pts, Config{K: 4, Rng: rng(99)})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assignments {
		if a.Assignments[i] != b.Assignments[i] {
			t.Fatal("same seed produced different clusterings")
		}
	}
	if a.Inertia != b.Inertia {
		t.Fatal("same seed produced different inertia")
	}
}

func TestKMeansInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rng(seed)
		n := 5 + r.Intn(100)
		dim := 1 + r.Intn(5)
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = make([]float64, dim)
			for d := range pts[i] {
				pts[i][d] = r.NormFloat64() * 10
			}
		}
		k := 1 + r.Intn(5)
		if k > n {
			k = n
		}
		res, err := KMeans(pts, Config{K: k, Rng: r})
		if err != nil {
			return false
		}
		// Sizes sum to n, no cluster is empty, inertia is finite and ≥ 0,
		// every assignment is in range and matches the nearest centroid.
		total := 0
		for _, s := range res.Sizes {
			if s == 0 {
				return false
			}
			total += s
		}
		if total != n {
			return false
		}
		if res.Inertia < 0 || math.IsNaN(res.Inertia) || math.IsInf(res.Inertia, 0) {
			return false
		}
		for i, p := range pts {
			a := res.Assignments[i]
			if a < 0 || a >= k {
				return false
			}
			if a != nearest(p, res.Centroids) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestKMeansInertiaDecreasesWithK(t *testing.T) {
	pts := twoBlobs(60, 17)
	var prev float64 = math.Inf(1)
	for k := 1; k <= 6; k++ {
		res, err := KMeans(pts, Config{K: k, Rng: rng(int64(k))})
		if err != nil {
			t.Fatal(err)
		}
		// k-means++ with one run is not guaranteed monotone, but on clean
		// blob data it should be within a generous margin.
		if res.Inertia > prev*1.2 {
			t.Fatalf("inertia grew sharply at k=%d: %g -> %g", k, prev, res.Inertia)
		}
		if res.Inertia < prev {
			prev = res.Inertia
		}
	}
}

func TestKMeansIdenticalPoints(t *testing.T) {
	pts := [][]float64{{5, 5}, {5, 5}, {5, 5}, {5, 5}}
	res, err := KMeans(pts, Config{K: 2, Rng: rng(1)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia != 0 {
		t.Fatalf("inertia = %g for identical points", res.Inertia)
	}
	total := 0
	for _, s := range res.Sizes {
		total += s
	}
	if total != 4 {
		t.Fatalf("sizes = %v", res.Sizes)
	}
}

func TestKMeansKEqualsN(t *testing.T) {
	pts := [][]float64{{0}, {10}, {20}}
	res, err := KMeans(pts, Config{K: 3, Rng: rng(2)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia > 1e-9 {
		t.Fatalf("K=N should give ~zero inertia, got %g", res.Inertia)
	}
	seen := map[int]bool{}
	for _, a := range res.Assignments {
		seen[a] = true
	}
	if len(seen) != 3 {
		t.Fatalf("K=N should use every cluster, got %v", res.Assignments)
	}
}

func TestWithinClusterValues(t *testing.T) {
	vals := []float64{10, 20, 30, 40}
	assign := []int{0, 1, 0, 1}
	groups, err := WithinClusterValues(vals, assign, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups[0]) != 2 || groups[0][0] != 10 || groups[0][1] != 30 {
		t.Fatalf("group 0 = %v", groups[0])
	}
	if len(groups[1]) != 2 || groups[1][0] != 20 || groups[1][1] != 40 {
		t.Fatalf("group 1 = %v", groups[1])
	}
	if _, err := WithinClusterValues(vals, assign[:3], 2); err == nil {
		t.Fatal("want error on length mismatch")
	}
	if _, err := WithinClusterValues(vals, []int{0, 1, 0, 5}, 2); err == nil {
		t.Fatal("want error on out-of-range assignment")
	}
	if _, err := WithinClusterValues(vals, assign, 0); err == nil {
		t.Fatal("want error on k=0")
	}
}

func TestMeanSilhouetteSeparatedVsMixed(t *testing.T) {
	pts := twoBlobs(40, 11)
	good := make([]int, len(pts))
	for i := range good {
		good[i] = i % 2
	}
	gs, err := MeanSilhouette(pts, good, 2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if gs < 0.9 {
		t.Fatalf("well-separated silhouette = %g, want > 0.9", gs)
	}
	// Random assignment should score much worse.
	r := rng(13)
	bad := make([]int, len(pts))
	for i := range bad {
		bad[i] = r.Intn(2)
	}
	bs, err := MeanSilhouette(pts, bad, 2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if bs >= gs {
		t.Fatalf("random assignment silhouette %g not worse than correct %g", bs, gs)
	}
}

func TestMeanSilhouetteEdgeCases(t *testing.T) {
	// Single cluster → 0 by convention.
	s, err := MeanSilhouette([][]float64{{1}, {2}}, []int{0, 0}, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if s != 0 {
		t.Fatalf("k=1 silhouette = %g", s)
	}
	if _, err := MeanSilhouette([][]float64{{1}}, []int{0, 1}, 2, 100); err == nil {
		t.Fatal("want error on length mismatch")
	}
	if _, err := MeanSilhouette([][]float64{{1}, {2}}, []int{0, 7}, 2, 100); err == nil {
		t.Fatal("want error on out-of-range assignment")
	}
}
