package cluster

import (
	"fmt"
	"math"
)

// WithinClusterValues groups the scalar values (e.g. per-invocation cycle
// counts) by cluster assignment — the shape Figure 4 of the paper needs to
// compute per-cluster cycle-count dispersion. Assignments must index valid
// clusters 0..k-1 and match values in length.
func WithinClusterValues(values []float64, assignments []int, k int) ([][]float64, error) {
	if len(values) != len(assignments) {
		return nil, fmt.Errorf("cluster: %d values vs %d assignments", len(values), len(assignments))
	}
	if k < 1 {
		return nil, fmt.Errorf("cluster: k = %d", k)
	}
	groups := make([][]float64, k)
	for i, a := range assignments {
		if a < 0 || a >= k {
			return nil, fmt.Errorf("cluster: assignment %d out of range [0, %d)", a, k)
		}
		groups[a] = append(groups[a], values[i])
	}
	return groups, nil
}

// MeanSilhouette returns the mean silhouette coefficient of a clustering —
// a quality score in [-1, 1] where higher is better-separated. Clusters of
// size 1 contribute 0 per the usual convention. For large inputs the score is
// computed on at most maxSample points chosen deterministically by stride,
// keeping the O(n²) distance work bounded.
func MeanSilhouette(points [][]float64, assignments []int, k, maxSample int) (float64, error) {
	if len(points) != len(assignments) {
		return 0, fmt.Errorf("cluster: %d points vs %d assignments", len(points), len(assignments))
	}
	if len(points) < 2 || k < 2 {
		return 0, nil
	}
	if maxSample < 2 {
		maxSample = 2
	}
	stride := 1
	if len(points) > maxSample {
		stride = (len(points) + maxSample - 1) / maxSample
	}
	var idx []int
	for i := 0; i < len(points); i += stride {
		idx = append(idx, i)
	}

	sizes := make([]int, k)
	for _, a := range assignments {
		if a < 0 || a >= k {
			return 0, fmt.Errorf("cluster: assignment %d out of range [0, %d)", a, k)
		}
		sizes[a]++
	}

	var total float64
	var counted int
	sumDist := make([]float64, k)
	cnt := make([]int, k)
	for _, i := range idx {
		ci := assignments[i]
		if sizes[ci] < 2 {
			counted++ // silhouette 0
			continue
		}
		for c := range sumDist {
			sumDist[c], cnt[c] = 0, 0
		}
		for _, j := range idx {
			if i == j {
				continue
			}
			d := math.Sqrt(sqDist(points[i], points[j]))
			sumDist[assignments[j]] += d
			cnt[assignments[j]]++
		}
		if cnt[ci] == 0 {
			counted++ // no sampled intra-cluster peer
			continue
		}
		a := sumDist[ci] / float64(cnt[ci])
		b := math.Inf(1)
		for c := 0; c < k; c++ {
			if c == ci || cnt[c] == 0 {
				continue
			}
			if m := sumDist[c] / float64(cnt[c]); m < b {
				b = m
			}
		}
		if math.IsInf(b, 1) {
			counted++
			continue
		}
		den := math.Max(a, b)
		if den > 0 {
			total += (b - a) / den
		}
		counted++
	}
	if counted == 0 {
		return 0, nil
	}
	return total / float64(counted), nil
}
