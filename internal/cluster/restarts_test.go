package cluster

import (
	"math/rand"
	"reflect"
	"testing"
)

// restartBlobs draws three well-separated 2-D blobs.
func restartBlobs(seed int64, perBlob int) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	var points [][]float64
	for _, c := range [][2]float64{{0, 0}, {40, 0}, {0, 40}} {
		for i := 0; i < perBlob; i++ {
			points = append(points, []float64{c[0] + rng.NormFloat64(), c[1] + rng.NormFloat64()})
		}
	}
	return points
}

// TestKMeansRestartsDeterministicAcrossParallelism pins the restart fan-out:
// seeds are drawn before dispatch, so worker count must not change anything.
func TestKMeansRestartsDeterministicAcrossParallelism(t *testing.T) {
	points := restartBlobs(1, 60)
	var want *Result
	for _, par := range []int{1, 0, 2, 16} {
		got, err := KMeans(points, Config{
			K: 3, Rng: rand.New(rand.NewSource(7)), Restarts: 6, Parallelism: par,
		})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("parallelism %d: clustering diverges (inertia %g vs %g)", par, got.Inertia, want.Inertia)
		}
	}
}

// TestKMeansRestartsKeepLowestInertia replays the internal seed schedule and
// checks the multi-restart result equals the best single run.
func TestKMeansRestartsKeepLowestInertia(t *testing.T) {
	points := restartBlobs(2, 40)
	const restarts = 5
	rng := rand.New(rand.NewSource(11))
	best := 0.0
	for i := 0; i < restarts; i++ {
		single, err := KMeans(points, Config{K: 3, Rng: rand.New(rand.NewSource(rng.Int63()))})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 || single.Inertia < best {
			best = single.Inertia
		}
	}
	multi, err := KMeans(points, Config{K: 3, Rng: rand.New(rand.NewSource(11)), Restarts: restarts})
	if err != nil {
		t.Fatal(err)
	}
	if multi.Inertia != best {
		t.Fatalf("restart result inertia %g, want best single-run inertia %g", multi.Inertia, best)
	}
}

func TestKMeansSingleRestartUnchanged(t *testing.T) {
	points := restartBlobs(3, 30)
	a, err := KMeans(points, Config{K: 2, Rng: rand.New(rand.NewSource(5))})
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(points, Config{K: 2, Rng: rand.New(rand.NewSource(5)), Restarts: 1, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Restarts: 1 must reproduce the default single-run path exactly")
	}
}
