package core

import (
	"fmt"
	"sort"
)

// ErrorInterval is a methodology-supplied confidence interval on a plan's
// relative estimation error. Strategies that quantify their own uncertainty
// (ranked-set resampling, two-phase pilot variance) attach one to the plan;
// all quantities are relative (0.01 = 1%).
type ErrorInterval struct {
	// Mean is the central estimate of the relative error. Resampling
	// strategies report the mean signed error across resamples; analytic
	// strategies report 0 (the estimator is unbiased in expectation).
	Mean float64
	// StdErr is the standard error of Mean — s/√R for R resamples, or the
	// analytic standard deviation for variance-derived intervals.
	StdErr float64
	// Low and High bound the interval (Mean ± 2·StdErr).
	Low  float64
	High float64
	// Resamples is the number of repeated subsamples behind the interval;
	// 0 marks an analytic (variance-derived) interval.
	Resamples int
}

// StratumSpec describes one stratum of a plan being assembled by an
// alternate sampling methodology: which invocations it contains, which one
// represents it, and the tier label it should carry.
type StratumSpec struct {
	// Kernel labels the stratum; conventionally the kernel every member
	// belongs to, but methodologies that group across kernels (e.g. PKS
	// clusters) may use a synthetic label.
	Kernel string
	// Tier is the tier label recorded on the stratum (Tier1..Tier3).
	Tier Tier
	// Members holds the global invocation indices of every member, in any
	// order; Assemble sorts them chronologically.
	Members []int
	// Representative is the selected invocation index; must be a member.
	Representative int
}

// Assemble builds a complete, predictable Result from explicit stratum
// specifications. It is the constructor alternate methodologies use: the
// specs must partition the profile exactly (every row in exactly one
// stratum), and Assemble computes instruction sums, instruction-share
// weights, tier totals and the prediction indexes so the assembled plan
// supports Predict, Speedup, WeightedCycleCoV and EstimateErrorBound
// exactly like a plan built by Stratify.
func Assemble(profile []InvocationProfile, specs []StratumSpec, theta float64) (*Result, error) {
	if theta <= 0 {
		return nil, fmt.Errorf("core: %w: assemble needs a positive theta, got %g", ErrInvalidTheta, theta)
	}
	if len(profile) == 0 {
		return nil, fmt.Errorf("core: %w", ErrEmptyProfile)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("core: assemble: no strata specified")
	}
	byIndex := make(map[int]*InvocationProfile, len(profile))
	posByIndex := make(map[int]int, len(profile))
	for i := range profile {
		p := &profile[i]
		if p.Kernel == "" {
			return nil, fmt.Errorf("core: profile row %d has no kernel name", i)
		}
		if p.InstructionCount <= 0 {
			return nil, fmt.Errorf("core: profile row %d (kernel %s) has non-positive instruction count", i, p.Kernel)
		}
		if p.CTASize <= 0 {
			return nil, fmt.Errorf("core: profile row %d (kernel %s) has non-positive CTA size", i, p.Kernel)
		}
		if _, dup := byIndex[p.Index]; dup {
			return nil, fmt.Errorf("core: duplicate invocation index %d", p.Index)
		}
		byIndex[p.Index] = p
		posByIndex[p.Index] = i
	}

	res := &Result{Theta: theta, byIndex: byIndex, posByIndex: posByIndex}
	assigned := make(map[int]int, len(profile)) // invocation index → spec position
	for si, spec := range specs {
		if spec.Tier < Tier1 || spec.Tier > Tier3 {
			return nil, fmt.Errorf("core: assemble: stratum %d (%s) has invalid tier %d", si, spec.Kernel, spec.Tier)
		}
		if len(spec.Members) == 0 {
			return nil, fmt.Errorf("core: assemble: stratum %d (%s) has no members", si, spec.Kernel)
		}
		s := Stratum{Kernel: spec.Kernel, Tier: spec.Tier}
		s.Invocations = append([]int(nil), spec.Members...)
		sort.Ints(s.Invocations)
		repSeen := false
		for _, idx := range s.Invocations {
			row, ok := byIndex[idx]
			if !ok {
				return nil, fmt.Errorf("core: assemble: stratum %d (%s) references unknown invocation %d", si, spec.Kernel, idx)
			}
			if prev, dup := assigned[idx]; dup {
				return nil, fmt.Errorf("core: assemble: invocation %d assigned to strata %d and %d", idx, prev, si)
			}
			assigned[idx] = si
			s.InstructionSum += row.InstructionCount
			if idx == spec.Representative {
				repSeen = true
			}
		}
		if !repSeen {
			return nil, fmt.Errorf("core: assemble: stratum %d (%s) representative %d is not a member", si, spec.Kernel, spec.Representative)
		}
		s.Representative = spec.Representative
		res.TierInvocations[spec.Tier-1] += len(s.Invocations)
		res.Strata = append(res.Strata, s)
	}
	if len(assigned) != len(profile) {
		return nil, fmt.Errorf("core: assemble: strata cover %d of %d invocations", len(assigned), len(profile))
	}

	for i := range res.Strata {
		res.TotalInstructions += res.Strata[i].InstructionSum
	}
	for i := range res.Strata {
		res.Strata[i].Weight = res.Strata[i].InstructionSum / res.TotalInstructions
	}
	return res, nil
}

// ChooseRepresentative applies the paper's Section III-C representative
// selection to an arbitrary member set, so alternate methodologies reuse
// the exact policy (dominant-CTA-first, first-chronological, max-CTA) the
// default sampler applies within its strata. Members may arrive in any
// order; selection runs on the chronological ordering.
func ChooseRepresentative(members []InvocationProfile, tier Tier, policy SelectionPolicy) (int, error) {
	if len(members) == 0 {
		return 0, fmt.Errorf("core: choose representative: empty stratum")
	}
	ordered := make([]*InvocationProfile, len(members))
	for i := range members {
		ordered[i] = &members[i]
	}
	sort.Slice(ordered, func(a, b int) bool { return ordered[a].Index < ordered[b].Index })
	return selectRepresentative(ordered, tier, policy)
}
