package core

import (
	"fmt"
	"math"

	"github.com/gpusampling/sieve/internal/stats"
)

// ErrorBound is a pre-simulation estimate of a sampling plan's prediction
// uncertainty, computed without any golden reference — one of Sieve's selling
// points over PKS is exactly that no real-hardware reference is needed.
//
// The estimate uses classical stratified-sampling theory with the
// within-stratum *instruction-count* dispersion as a proxy for cycle
// dispersion. It is deliberately conservative: it assumes per-cycle cost
// could vary as much as invocation size does, whereas Sieve's CPI-based
// estimator is exact when per-instruction cost is stable (the paper's core
// premise). Observed errors therefore typically sit far below the bound;
// treat it as a screening signal — a plan whose bound is large has strata
// whose homogeneity rests entirely on the per-instruction-stability
// assumption.
type ErrorBound struct {
	// RelativeStdDev is the estimated relative standard deviation of the
	// predicted cycle count: sqrt(Σ (wᵢ · covᵢ)²) over strata with more
	// than one member (a single representative drawn per stratum).
	RelativeStdDev float64
	// TwoSigma is 2× RelativeStdDev — a ~95% heuristic bound.
	TwoSigma float64
	// WorstStratum names the stratum contributing the most variance.
	WorstStratum string
	// WorstContribution is that stratum's share of the total variance.
	WorstContribution float64
}

// EstimateErrorBound computes the heuristic prediction-uncertainty estimate
// for the plan from its input profile (no cycle measurements required).
func (r *Result) EstimateErrorBound() (*ErrorBound, error) {
	if len(r.Strata) == 0 {
		return nil, fmt.Errorf("core: no strata to bound")
	}
	var variance float64
	bound := &ErrorBound{}
	for i := range r.Strata {
		s := &r.Strata[i]
		if len(s.Invocations) < 2 {
			continue
		}
		counts := make([]float64, len(s.Invocations))
		for j, idx := range s.Invocations {
			p, ok := r.byIndex[idx]
			if !ok {
				return nil, fmt.Errorf("core: stratum %d references unknown invocation %d", i, idx)
			}
			counts[j] = p.InstructionCount
		}
		contrib := s.Weight * stats.CoV(counts)
		v := contrib * contrib
		variance += v
		if v > bound.WorstContribution {
			bound.WorstContribution = v
			bound.WorstStratum = s.Kernel
		}
	}
	if variance > 0 {
		bound.WorstContribution /= variance
	}
	bound.RelativeStdDev = math.Sqrt(variance)
	bound.TwoSigma = 2 * bound.RelativeStdDev
	return bound, nil
}
