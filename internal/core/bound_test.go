package core

import (
	"testing"
)

func TestErrorBoundTier1IsZero(t *testing.T) {
	// Constant kernels have zero within-stratum dispersion: the bound is 0.
	p := profileOf(
		[3]interface{}{"a", 100.0, 64},
		[3]interface{}{"a", 100.0, 64},
		[3]interface{}{"b", 500.0, 64},
		[3]interface{}{"b", 500.0, 64},
	)
	res, err := Stratify(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bound, err := res.EstimateErrorBound()
	if err != nil {
		t.Fatal(err)
	}
	if bound.RelativeStdDev != 0 || bound.TwoSigma != 0 {
		t.Fatalf("constant strata bound = %+v, want 0", bound)
	}
}

func TestErrorBoundGrowsWithDispersion(t *testing.T) {
	tight := profileOf(
		[3]interface{}{"k", 100.0, 64},
		[3]interface{}{"k", 101.0, 64},
		[3]interface{}{"k", 99.0, 64},
		[3]interface{}{"k", 100.0, 64},
	)
	loose := profileOf(
		[3]interface{}{"k", 100.0, 64},
		[3]interface{}{"k", 130.0, 64},
		[3]interface{}{"k", 70.0, 64},
		[3]interface{}{"k", 100.0, 64},
	)
	tr, err := Stratify(tight, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lr, err := Stratify(loose, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tb, err := tr.EstimateErrorBound()
	if err != nil {
		t.Fatal(err)
	}
	lb, err := lr.EstimateErrorBound()
	if err != nil {
		t.Fatal(err)
	}
	if lb.RelativeStdDev <= tb.RelativeStdDev {
		t.Fatalf("looser strata should bound higher: %g vs %g", lb.RelativeStdDev, tb.RelativeStdDev)
	}
	if lb.TwoSigma != 2*lb.RelativeStdDev {
		t.Fatal("TwoSigma must be 2x the std dev")
	}
	if lb.WorstStratum != "k" {
		t.Fatalf("worst stratum = %q", lb.WorstStratum)
	}
	if lb.WorstContribution < 0.99 {
		t.Fatalf("single dispersive stratum should own the variance: %g", lb.WorstContribution)
	}
}

func TestErrorBoundEmptyResult(t *testing.T) {
	empty := &Result{}
	if _, err := empty.EstimateErrorBound(); err == nil {
		t.Fatal("want error for empty result")
	}
}

func TestErrorBoundTracksObservedErrorOrder(t *testing.T) {
	// The heuristic should at least order plans correctly: the tighter the
	// θ, the smaller the bound.
	var rows [][3]interface{}
	for k := 0; k < 6; k++ {
		base := 1000.0 * float64(k+1)
		for j := 0; j < 50; j++ {
			spread := 1 + 0.35*float64(j%5-2)/2
			rows = append(rows, [3]interface{}{kernelName(k), base * spread, 128})
		}
	}
	p := profileOf(rows...)
	prev := -1.0
	for _, theta := range []float64{0.1, 0.4, 1.0} {
		res, err := Stratify(p, Options{Theta: theta})
		if err != nil {
			t.Fatal(err)
		}
		bound, err := res.EstimateErrorBound()
		if err != nil {
			t.Fatal(err)
		}
		if bound.RelativeStdDev < prev-1e-12 {
			t.Fatalf("bound should not shrink as θ loosens: %g after %g", bound.RelativeStdDev, prev)
		}
		prev = bound.RelativeStdDev
	}
}

func kernelName(k int) string {
	return string(rune('a' + k))
}
