package core

import (
	"context"
	"fmt"
	"sort"

	"github.com/gpusampling/sieve/internal/stats"
)

// KernelSummary characterizes one kernel's invocation behaviour — the
// workload-analysis view of a profile (the paper's Fig. 1 notes the selected
// representatives drive "detailed simulation or workload analysis").
type KernelSummary struct {
	// Kernel is the kernel name.
	Kernel string
	// Invocations is the number of profiled invocations.
	Invocations int
	// Tier is the kernel's classification at the given θ.
	Tier Tier
	// InstrMin/Mean/Max summarize the dynamic instruction counts.
	InstrMin, InstrMean, InstrMax float64
	// InstrCoV is the coefficient of variation of the instruction counts.
	InstrCoV float64
	// InstrShare is the kernel's fraction of the workload's instructions.
	InstrShare float64
	// DominantCTA is the most common CTA size.
	DominantCTA int
	// Strata is the number of strata the kernel contributes at θ.
	Strata int
}

// Characterize summarizes every kernel of a profile at the given θ
// (DefaultTheta if zero), ordered by descending instruction share.
func Characterize(profile []InvocationProfile, theta float64) ([]KernelSummary, error) {
	return CharacterizeContext(context.Background(), profile, theta)
}

// CharacterizeContext is Characterize with cancellation, inherited from the
// underlying StratifyContext pass.
func CharacterizeContext(ctx context.Context, profile []InvocationProfile, theta float64) ([]KernelSummary, error) {
	res, err := StratifyContext(ctx, profile, Options{Theta: theta})
	if err != nil {
		return nil, err
	}

	type agg struct {
		counts []float64
		ctas   map[int]int
		strata int
		tier   Tier
	}
	byKernel := make(map[string]*agg)
	for i := range profile {
		p := &profile[i]
		a, ok := byKernel[p.Kernel]
		if !ok {
			a = &agg{ctas: make(map[int]int)}
			byKernel[p.Kernel] = a
		}
		a.counts = append(a.counts, p.InstructionCount)
		a.ctas[p.CTASize]++
	}
	for _, s := range res.Strata {
		a := byKernel[s.Kernel]
		if a == nil {
			return nil, fmt.Errorf("core: stratum references unknown kernel %q", s.Kernel)
		}
		a.strata++
		a.tier = s.Tier
	}

	out := make([]KernelSummary, 0, len(byKernel))
	for kernel, a := range byKernel {
		sum := stats.Sum(a.counts)
		dominant, best := 0, -1
		for cta, n := range a.ctas {
			if n > best || (n == best && cta < dominant) {
				dominant, best = cta, n
			}
		}
		out = append(out, KernelSummary{
			Kernel:      kernel,
			Invocations: len(a.counts),
			Tier:        a.tier,
			InstrMin:    stats.Min(a.counts),
			InstrMean:   stats.Mean(a.counts),
			InstrMax:    stats.Max(a.counts),
			InstrCoV:    stats.CoV(a.counts),
			InstrShare:  sum / res.TotalInstructions,
			DominantCTA: dominant,
			Strata:      a.strata,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].InstrShare != out[j].InstrShare {
			return out[i].InstrShare > out[j].InstrShare
		}
		return out[i].Kernel < out[j].Kernel
	})
	return out, nil
}
