package core

import (
	"math"
	"testing"
)

func TestCharacterizeBasics(t *testing.T) {
	p := profileOf(
		[3]interface{}{"big", 1000.0, 256},
		[3]interface{}{"small", 10.0, 64},
		[3]interface{}{"big", 1000.0, 256},
		[3]interface{}{"small", 12.0, 64},
		[3]interface{}{"big", 1000.0, 128},
	)
	sums, err := Characterize(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 2 {
		t.Fatalf("summaries = %d", len(sums))
	}
	// Ordered by instruction share: big first.
	big := sums[0]
	if big.Kernel != "big" || big.Invocations != 3 {
		t.Fatalf("first summary = %+v", big)
	}
	if big.Tier != Tier1 || big.InstrCoV != 0 {
		t.Fatalf("big should be Tier-1 constant: %+v", big)
	}
	if big.InstrMin != 1000 || big.InstrMax != 1000 || big.InstrMean != 1000 {
		t.Fatalf("big stats = %+v", big)
	}
	if big.DominantCTA != 256 {
		t.Fatalf("big dominant CTA = %d", big.DominantCTA)
	}
	if big.Strata != 1 {
		t.Fatalf("big strata = %d", big.Strata)
	}
	small := sums[1]
	if small.Tier != Tier2 {
		t.Fatalf("small tier = %v", small.Tier)
	}
	wantShare := 3000.0 / 3022.0
	if math.Abs(big.InstrShare-wantShare) > 1e-12 {
		t.Fatalf("big share = %g, want %g", big.InstrShare, wantShare)
	}
	if math.Abs(big.InstrShare+small.InstrShare-1) > 1e-12 {
		t.Fatal("shares must sum to 1")
	}
}

func TestCharacterizeTier3StrataCount(t *testing.T) {
	var rows [][3]interface{}
	for i := 0; i < 40; i++ {
		rows = append(rows, [3]interface{}{"multi", 100.0 + float64(i%2), 128})
		rows = append(rows, [3]interface{}{"multi", 50000.0 + float64(i%3), 128})
	}
	sums, err := Characterize(profileOf(rows...), 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 1 {
		t.Fatalf("summaries = %d", len(sums))
	}
	if sums[0].Tier != Tier3 {
		t.Fatalf("tier = %v", sums[0].Tier)
	}
	if sums[0].Strata < 2 {
		t.Fatalf("bimodal kernel should contribute ≥ 2 strata, got %d", sums[0].Strata)
	}
}

func TestCharacterizeErrors(t *testing.T) {
	if _, err := Characterize(nil, 0.4); err == nil {
		t.Fatal("want error on empty profile")
	}
}
