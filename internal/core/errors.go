package core

import "errors"

// Sentinel errors shared across the sampling stack. They are wrapped with
// call-site detail (kernel names, offending values) everywhere they occur, so
// resolve them with errors.Is rather than equality. The serving layer maps
// them onto HTTP status codes: an invalid option is the caller's request
// (400), an empty profile is a well-formed request over unusable data (422),
// and asking a sampled plan for exact-membership metrics is likewise a
// semantic conflict (422), never a server fault (500).
var (
	// ErrInvalidTheta marks a rejected CoV threshold: explicitly requested
	// θ = 0 (degenerate — no multi-valued stratum can reach CoV < 0) or a
	// negative θ.
	ErrInvalidTheta = errors.New("invalid theta")
	// ErrEmptyProfile marks a profile with no invocation rows, whether
	// materialized or streamed.
	ErrEmptyProfile = errors.New("empty profile")
	// ErrSampledPlan marks a metric that requires exact stratum membership
	// (Speedup, WeightedCycleCoV) requested on a sampled streaming plan whose
	// membership lists cover a bounded reservoir only.
	ErrSampledPlan = errors.New("sampled streaming plan")
)
