package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// synthProfile builds a deterministic multi-kernel profile mixing Tier-1,
// Tier-2 and Tier-3 shapes so the parallel stratifier exercises every path.
func synthProfile(seed int64, kernels, maxInvocations int) []InvocationProfile {
	rng := rand.New(rand.NewSource(seed))
	ctas := []int{64, 128, 256, 512}
	var profile []InvocationProfile
	index := 0
	for k := 0; k < kernels; k++ {
		name := fmt.Sprintf("kernel_%02d", k)
		n := 1 + rng.Intn(maxInvocations)
		base := 1e4 * (1 + rng.Float64()*99)
		shape := k % 3
		for i := 0; i < n; i++ {
			count := base
			switch shape {
			case 1: // low variability: Tier-2 territory
				count = base * (1 + 0.1*rng.Float64())
			case 2: // bimodal: Tier-3 territory
				if rng.Intn(2) == 0 {
					count = base * (10 + rng.Float64())
				} else {
					count = base * (1 + 0.05*rng.Float64())
				}
			}
			profile = append(profile, InvocationProfile{
				Kernel:           name,
				Index:            index,
				InstructionCount: count,
				CTASize:          ctas[rng.Intn(len(ctas))],
			})
			index++
		}
	}
	return profile
}

// assertResultsEqual compares the externally visible stratification state.
func assertResultsEqual(t *testing.T, want, got *Result, label string) {
	t.Helper()
	if !reflect.DeepEqual(want.Strata, got.Strata) {
		t.Fatalf("%s: strata diverge from sequential result", label)
	}
	if want.TierInvocations != got.TierInvocations {
		t.Fatalf("%s: tier counts %v != %v", label, got.TierInvocations, want.TierInvocations)
	}
	if want.TotalInstructions != got.TotalInstructions {
		t.Fatalf("%s: total instructions %g != %g", label, got.TotalInstructions, want.TotalInstructions)
	}
}

func TestStratifyParallelMatchesSequential(t *testing.T) {
	cases := []struct {
		name     string
		profile  []InvocationProfile
		splitter Splitter
	}{
		{"many-kernels-kde", synthProfile(1, 24, 60), SplitKDE},
		{"many-kernels-equal-width", synthProfile(2, 16, 40), SplitEqualWidth},
		{"many-kernels-gmm", synthProfile(3, 10, 30), SplitGMM},
		{"single-kernel", synthProfile(4, 1, 80), SplitKDE},
		{"single-invocation", synthProfile(5, 1, 1), SplitKDE},
		{"two-invocations", synthProfile(6, 2, 1), SplitKDE},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// MinParallelWork: 1 forces the pool even on these small synthetic
			// profiles, so the parallel path itself is what gets compared.
			seq, err := Stratify(tc.profile, Options{Parallelism: 1, Tier3Splitter: tc.splitter, MinParallelWork: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{0, 2, 7, 64} {
				par, err := Stratify(tc.profile, Options{Parallelism: workers, Tier3Splitter: tc.splitter, MinParallelWork: 1})
				if err != nil {
					t.Fatalf("parallelism %d: %v", workers, err)
				}
				assertResultsEqual(t, seq, par, fmt.Sprintf("parallelism %d", workers))
			}
		})
	}
}

func TestStratifyParallelAcrossSeeds(t *testing.T) {
	for seed := int64(10); seed < 15; seed++ {
		profile := synthProfile(seed, 12, 50)
		seq, err := Stratify(profile, Options{Parallelism: 1, MinParallelWork: 1})
		if err != nil {
			t.Fatal(err)
		}
		par, err := Stratify(profile, Options{Parallelism: 8, MinParallelWork: 1})
		if err != nil {
			t.Fatal(err)
		}
		assertResultsEqual(t, seq, par, fmt.Sprintf("seed %d", seed))
	}
}

func TestStratifyNegativeParallelismRejected(t *testing.T) {
	profile := synthProfile(1, 2, 5)
	if _, err := Stratify(profile, Options{Parallelism: -1}); err == nil {
		t.Fatal("want error for negative parallelism")
	}
	if _, err := Stratify(profile, Options{MinParallelWork: -3}); err == nil {
		t.Fatal("want error for negative MinParallelWork")
	}
}

// TestStratifyWorkGateMatchesForcedPool proves the work-size gate is purely
// a scheduling decision: routing a profile inline (high threshold) and
// forcing it onto the pool (threshold 1) produce identical plans.
func TestStratifyWorkGateMatchesForcedPool(t *testing.T) {
	profile := synthProfile(21, 18, 60)
	inline, err := Stratify(profile, Options{Parallelism: 4, MinParallelWork: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := Stratify(profile, Options{Parallelism: 4, MinParallelWork: 1})
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, inline, pooled, "work gate")
}

// TestStratifyParallelErrorDeterministic checks that the first-by-kernel-order
// error wins regardless of which worker fails first.
func TestStratifyParallelErrorDeterministic(t *testing.T) {
	profile := synthProfile(7, 6, 20)
	// A negative theta is caught in validation; instead force a kernel error
	// path is not reachable via public input validation (bad rows are caught
	// up front), so assert validation errors are identical at any
	// parallelism instead.
	profile[3].InstructionCount = -1
	var msgs []string
	for _, workers := range []int{1, 8} {
		_, err := Stratify(profile, Options{Parallelism: workers})
		if err == nil {
			t.Fatal("want validation error")
		}
		msgs = append(msgs, err.Error())
	}
	if msgs[0] != msgs[1] {
		t.Fatalf("error diverges: %q vs %q", msgs[0], msgs[1])
	}
}
