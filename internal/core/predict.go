package core

import (
	"context"
	"fmt"
	"sort"

	"github.com/gpusampling/sieve/internal/stats"
)

// CycleSource supplies the measured (or simulated) cycle count of one
// invocation, addressed by its global chronological index. It abstracts over
// "run the representative on real hardware" and "simulate the representative
// trace".
type CycleSource func(invocationIndex int) (float64, error)

// Prediction is Sieve's application-level performance estimate
// (Section III-D).
type Prediction struct {
	// IPC is the predicted application IPC: the weighted harmonic mean of
	// per-representative IPC values.
	IPC float64
	// Cycles is the predicted total cycle count: total instructions divided
	// by predicted IPC.
	Cycles float64
	// RepresentativeCycles is the summed cycle count of the simulated
	// representatives — the cost of the sampled run.
	RepresentativeCycles float64
}

// Predict estimates whole-application performance from per-representative
// cycle counts: IPC_i = instr(rep_i)/cycles(rep_i), combined as the weighted
// harmonic mean with the strata's instruction-share weights.
func (r *Result) Predict(cycles CycleSource) (*Prediction, error) {
	return r.PredictContext(context.Background(), cycles)
}

// PredictContext is Predict with cancellation: ctx is checked before each
// representative's cycle lookup, the step that may run a real simulation or
// hardware measurement, so a cancelled caller stops paying for cycles it no
// longer wants and receives ctx.Err().
func (r *Result) PredictContext(ctx context.Context, cycles CycleSource) (*Prediction, error) {
	if len(r.Strata) == 0 {
		return nil, fmt.Errorf("core: no strata to predict from")
	}
	ipcs := make([]float64, len(r.Strata))
	weights := make([]float64, len(r.Strata))
	repCycles := make([]float64, len(r.Strata))
	var repTotal float64
	for i := range r.Strata {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		s := &r.Strata[i]
		rep, ok := r.byIndex[s.Representative]
		if !ok {
			return nil, fmt.Errorf("core: stratum %d references unknown invocation %d", i, s.Representative)
		}
		c, err := cycles(s.Representative)
		if err != nil {
			return nil, fmt.Errorf("core: cycle source for invocation %d: %w", s.Representative, err)
		}
		if c <= 0 {
			return nil, fmt.Errorf("core: non-positive cycle count %g for invocation %d", c, s.Representative)
		}
		ipcs[i] = rep.InstructionCount / c
		weights[i] = s.Weight
		repCycles[i] = c
		repTotal += c
	}
	if r.CountWeighted {
		// Count-weighted estimator (PKS): each representative stands in for
		// every member of its stratum cycle-for-cycle, so predicted total
		// cycles are Σ members × representative cycles and IPC follows.
		var total float64
		for i := range r.Strata {
			total += float64(len(r.Strata[i].Invocations)) * repCycles[i]
		}
		return &Prediction{
			IPC:                  r.TotalInstructions / total,
			Cycles:               total,
			RepresentativeCycles: repTotal,
		}, nil
	}
	ipc, err := stats.WeightedHarmonicMean(ipcs, weights)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &Prediction{
		IPC:                  ipc,
		Cycles:               r.TotalInstructions / ipc,
		RepresentativeCycles: repTotal,
	}, nil
}

// RepresentativeIndices returns the selected invocation indices, ascending.
func (r *Result) RepresentativeIndices() []int {
	out := make([]int, len(r.Strata))
	for i := range r.Strata {
		out[i] = r.Strata[i].Representative
	}
	sort.Ints(out)
	return out
}

// NumStrata returns the number of strata (and thus representatives).
func (r *Result) NumStrata() int { return len(r.Strata) }

// NumInvocations returns the total invocation count covered by the strata.
func (r *Result) NumInvocations() int {
	n := 0
	for i := range r.Strata {
		n += len(r.Strata[i].Invocations)
	}
	return n
}

// golden resolves one invocation Index to its golden cycle count.
// goldenCycles is positional: entry i belongs to the i-th profile row
// ingested by Stratify/StratifyStream, NOT to global invocation index i. The
// two coincide for dense 0..n-1 profiles, but CSV-loaded or filtered profiles
// with sparse or offset indices must be resolved through the plan's
// index→position mapping — indexing goldenCycles by Index directly would
// silently read another invocation's cycles whenever the index happens to be
// in range.
func (r *Result) golden(goldenCycles []float64, idx int) (float64, error) {
	pos, ok := r.posByIndex[idx]
	if !ok {
		return 0, fmt.Errorf("core: invocation index %d not in the stratified profile", idx)
	}
	if pos >= len(goldenCycles) {
		return 0, fmt.Errorf("core: golden cycles has %d entries; invocation %d is profile row %d", len(goldenCycles), idx, pos)
	}
	return goldenCycles[pos], nil
}

// Speedup returns the simulation speedup of the sampling plan given the
// golden per-invocation cycle counts of the full run: total cycles divided by
// the representatives' cycles (Section IV: "the ratio of the total cycle
// count for the entire workload execution divided by the total cycle count
// for all representative kernel invocations").
//
// goldenCycles parallels the profile rows passed to Stratify: entry i is the
// measured cycle count of the i-th row, whatever its global invocation
// Index. Sampled streaming plans cannot compute a speedup — their membership
// lists are bounded samples, so the numerator would silently undercount.
func (r *Result) Speedup(goldenCycles []float64) (float64, error) {
	if r.Sampled {
		return 0, fmt.Errorf("core: %w: speedup undefined (stratum membership is partial); re-stratify with a reservoir that fits every kernel", ErrSampledPlan)
	}
	var total, reps float64
	for i := range r.Strata {
		s := &r.Strata[i]
		for _, idx := range s.Invocations {
			c, err := r.golden(goldenCycles, idx)
			if err != nil {
				return 0, err
			}
			total += c
		}
		c, err := r.golden(goldenCycles, s.Representative)
		if err != nil {
			return 0, err
		}
		reps += c
	}
	if reps == 0 {
		return 0, fmt.Errorf("core: representatives have zero cycles")
	}
	return total / reps, nil
}

// WeightedCycleCoV returns the invocation-weighted mean coefficient of
// variation of cycle counts within strata — the dispersion metric of Fig. 4.
// Single-member strata contribute zero dispersion. goldenCycles follows the
// same positional contract as Speedup: entry i belongs to the i-th profile
// row, resolved through the plan's index→position mapping.
func (r *Result) WeightedCycleCoV(goldenCycles []float64) (float64, error) {
	if r.Sampled {
		return 0, fmt.Errorf("core: %w: cycle CoV undefined (stratum membership is partial)", ErrSampledPlan)
	}
	var num, den float64
	for i := range r.Strata {
		s := &r.Strata[i]
		var acc stats.Accumulator
		for _, idx := range s.Invocations {
			c, err := r.golden(goldenCycles, idx)
			if err != nil {
				return 0, err
			}
			acc.Add(c)
		}
		num += acc.CoV() * float64(len(s.Invocations))
		den += float64(len(s.Invocations))
	}
	if den == 0 {
		return 0, fmt.Errorf("core: no invocations in strata")
	}
	return num / den, nil
}

// TierFractions computes, for each θ in thetas, the fraction of invocations
// classified Tier-1, Tier-2 and Tier-3 — the quantity Fig. 2 plots. The
// returned slice parallels thetas; each element sums to one. Every θ in the
// sweep is used verbatim: a zero entry is an error, not a silent request for
// DefaultTheta (a Fig. 2-style sweep including θ=0 used to quietly report
// the θ=0.4 mix instead).
func TierFractions(profile []InvocationProfile, thetas []float64) ([][3]float64, error) {
	out := make([][3]float64, len(thetas))
	for ti, theta := range thetas {
		res, err := Stratify(profile, Options{Theta: theta, ThetaSet: true})
		if err != nil {
			return nil, fmt.Errorf("theta sweep entry %d (θ=%g): %w", ti, theta, err)
		}
		total := float64(res.NumInvocations())
		for tier := 0; tier < 3; tier++ {
			out[ti][tier] = float64(res.TierInvocations[tier]) / total
		}
	}
	return out, nil
}
