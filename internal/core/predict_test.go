package core

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

// constantCPI returns a CycleSource where cycles = cpi × instructions of the
// representative, looked up in the profile.
func constantCPI(profile []InvocationProfile, cpi float64) CycleSource {
	byIdx := make(map[int]float64)
	for _, p := range profile {
		byIdx[p.Index] = p.InstructionCount
	}
	return func(i int) (float64, error) {
		instr, ok := byIdx[i]
		if !ok {
			return 0, fmt.Errorf("unknown invocation %d", i)
		}
		return cpi * instr, nil
	}
}

func TestPredictExactWhenCPIUniform(t *testing.T) {
	// When every invocation has the same CPI, the prediction must be exact:
	// predicted cycles = CPI × total instructions.
	p := profileOf(
		[3]interface{}{"a", 100.0, 128},
		[3]interface{}{"a", 100.0, 128},
		[3]interface{}{"b", 5000.0, 256},
		[3]interface{}{"b", 5200.0, 256},
		[3]interface{}{"b", 4800.0, 256},
	)
	res, err := Stratify(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const cpi = 2.5
	pred, err := res.Predict(constantCPI(p, cpi))
	if err != nil {
		t.Fatal(err)
	}
	wantCycles := cpi * res.TotalInstructions
	if math.Abs(pred.Cycles-wantCycles) > 1e-9*wantCycles {
		t.Fatalf("Cycles = %g, want %g", pred.Cycles, wantCycles)
	}
	if math.Abs(pred.IPC-1/cpi) > 1e-12 {
		t.Fatalf("IPC = %g, want %g", pred.IPC, 1/cpi)
	}
	if pred.RepresentativeCycles <= 0 || pred.RepresentativeCycles >= pred.Cycles {
		t.Fatalf("RepresentativeCycles = %g out of range", pred.RepresentativeCycles)
	}
}

func TestPredictWeightsByInstructionShare(t *testing.T) {
	// Kernel a: 10% of instructions at IPC 1. Kernel b: 90% at IPC 10.
	// Predicted cycles = 0.1·T/1 + 0.9·T/10 = 0.19·T.
	p := profileOf(
		[3]interface{}{"a", 100.0, 128},
		[3]interface{}{"b", 900.0, 128},
	)
	res, err := Stratify(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	src := func(i int) (float64, error) {
		switch i {
		case 0:
			return 100, nil // IPC 1
		case 1:
			return 90, nil // IPC 10
		}
		return 0, fmt.Errorf("unexpected index %d", i)
	}
	pred, err := res.Predict(src)
	if err != nil {
		t.Fatal(err)
	}
	if want := 190.0; math.Abs(pred.Cycles-want) > 1e-9 {
		t.Fatalf("Cycles = %g, want %g", pred.Cycles, want)
	}
}

func TestPredictErrors(t *testing.T) {
	p := profileOf([3]interface{}{"a", 100.0, 128})
	res, err := Stratify(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Predict(func(int) (float64, error) { return 0, nil }); err == nil {
		t.Fatal("want error for zero cycles")
	}
	if _, err := res.Predict(func(int) (float64, error) { return 0, fmt.Errorf("boom") }); err == nil {
		t.Fatal("want error from cycle source")
	}
	empty := &Result{}
	if _, err := empty.Predict(func(int) (float64, error) { return 1, nil }); err == nil {
		t.Fatal("want error for empty result")
	}
}

func TestRepresentativeIndicesSortedUnique(t *testing.T) {
	p := profileOf(
		[3]interface{}{"b", 10.0, 64},
		[3]interface{}{"a", 20.0, 64},
		[3]interface{}{"b", 10.0, 64},
		[3]interface{}{"c", 30.0, 64},
	)
	res, err := Stratify(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	idxs := res.RepresentativeIndices()
	if len(idxs) != 3 {
		t.Fatalf("representatives = %v", idxs)
	}
	for i := 1; i < len(idxs); i++ {
		if idxs[i] <= idxs[i-1] {
			t.Fatalf("not sorted/unique: %v", idxs)
		}
	}
}

func TestSpeedup(t *testing.T) {
	p := profileOf(
		[3]interface{}{"a", 100.0, 64},
		[3]interface{}{"a", 100.0, 64},
		[3]interface{}{"a", 100.0, 64},
		[3]interface{}{"a", 100.0, 64},
	)
	res, err := Stratify(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	golden := []float64{10, 10, 10, 10}
	sp, err := res.Speedup(golden)
	if err != nil {
		t.Fatal(err)
	}
	if sp != 4 {
		t.Fatalf("speedup = %g, want 4 (one rep of four equals)", sp)
	}
	if _, err := res.Speedup([]float64{1}); err == nil {
		t.Fatal("want error for short golden slice")
	}
}

func TestWeightedCycleCoV(t *testing.T) {
	p := profileOf(
		[3]interface{}{"a", 100.0, 64},
		[3]interface{}{"a", 100.0, 64},
		[3]interface{}{"b", 900.0, 64},
		[3]interface{}{"b", 900.0, 64},
	)
	res, err := Stratify(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Stratum a: cycles {10, 30} → CoV = 10/20 = 0.5. Stratum b: {50, 50} →
	// CoV 0. Weighted by 2 invocations each → 0.25.
	cov, err := res.WeightedCycleCoV([]float64{10, 30, 50, 50})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cov-0.25) > 1e-12 {
		t.Fatalf("weighted CoV = %g, want 0.25", cov)
	}
	if _, err := res.WeightedCycleCoV([]float64{1}); err == nil {
		t.Fatal("want error for short golden slice")
	}
}

func TestTierFractions(t *testing.T) {
	// Kernel a constant (Tier-1, 2 invocations), kernel b CoV ≈ 0.25
	// (Tier-2 at θ=0.5, Tier-3 at θ=0.1), 2 invocations.
	p := profileOf(
		[3]interface{}{"a", 100.0, 64},
		[3]interface{}{"b", 100.0, 64},
		[3]interface{}{"a", 100.0, 64},
		[3]interface{}{"b", 166.0, 64},
	)
	fr, err := TierFractions(p, []float64{0.1, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(fr) != 2 {
		t.Fatalf("fractions = %v", fr)
	}
	// θ=0.1: a Tier-1 (0.5), b Tier-3 (0.5).
	if fr[0][0] != 0.5 || fr[0][2] != 0.5 {
		t.Fatalf("θ=0.1 fractions = %v", fr[0])
	}
	// θ=0.5: a Tier-1 (0.5), b Tier-2 (0.5).
	if fr[1][0] != 0.5 || fr[1][1] != 0.5 {
		t.Fatalf("θ=0.5 fractions = %v", fr[1])
	}
	for _, f := range fr {
		if math.Abs(f[0]+f[1]+f[2]-1) > 1e-12 {
			t.Fatalf("fractions don't sum to 1: %v", f)
		}
	}
}

func TestNumInvocationsAndStrata(t *testing.T) {
	p := profileOf(
		[3]interface{}{"a", 1.0, 64},
		[3]interface{}{"b", 2.0, 64},
		[3]interface{}{"a", 1.0, 64},
	)
	res, err := Stratify(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumStrata() != 2 || res.NumInvocations() != 3 {
		t.Fatalf("strata %d, invocations %d", res.NumStrata(), res.NumInvocations())
	}
}

// TestTierFractionsRejectsThetaZero is the regression test for the silent
// θ=0 remap: a Fig. 2-style sweep containing θ=0 used to run that entry at
// DefaultTheta and report the wrong tier mix. It must now fail loudly.
func TestTierFractionsRejectsThetaZero(t *testing.T) {
	p := profileOf(
		[3]interface{}{"a", 100.0, 64},
		[3]interface{}{"a", 150.0, 64},
	)
	_, err := TierFractions(p, []float64{0.4, 0})
	if err == nil {
		t.Fatal("sweep with θ=0 must error, not silently run at DefaultTheta")
	}
	if want := "θ=0"; !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not identify the bad sweep entry", err)
	}
}

// TestThetaZeroExplicit covers the ThetaSet sentinel: the zero-value Options
// still select DefaultTheta, while an explicitly-set zero errors.
func TestThetaZeroExplicit(t *testing.T) {
	p := profileOf([3]interface{}{"a", 100.0, 64})
	res, err := Stratify(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Theta != DefaultTheta {
		t.Fatalf("zero-value options ran at θ=%g, want DefaultTheta", res.Theta)
	}
	if _, err := Stratify(p, Options{ThetaSet: true}); err == nil {
		t.Fatal("explicit θ=0 must error")
	}
	res, err = Stratify(p, Options{Theta: 0.3, ThetaSet: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Theta != 0.3 {
		t.Fatalf("explicit θ=0.3 ran at %g", res.Theta)
	}
}

// sparseProfile clones a dense profile onto offset, gappy invocation indices.
func sparseProfile(p []InvocationProfile, base, stride int) []InvocationProfile {
	out := append([]InvocationProfile(nil), p...)
	for i := range out {
		out[i].Index = base + stride*i
	}
	return out
}

// TestSpeedupSparseIndices is the regression test for golden-cycle
// mis-indexing: with offset indices, Speedup used to either reject a
// correct-length golden slice ("outside golden cycles") or, when the offset
// indices happened to stay in range, silently read the wrong invocation's
// cycles. goldenCycles is positional — entry i belongs to profile row i.
func TestSpeedupSparseIndices(t *testing.T) {
	dense := profileOf(
		[3]interface{}{"a", 100.0, 64},
		[3]interface{}{"a", 100.0, 64},
		[3]interface{}{"b", 900.0, 64},
		[3]interface{}{"b", 900.0, 64},
	)
	golden := []float64{10, 30, 50, 70}
	wantSp := func() float64 {
		res, err := Stratify(dense, Options{})
		if err != nil {
			t.Fatal(err)
		}
		sp, err := res.Speedup(golden)
		if err != nil {
			t.Fatal(err)
		}
		return sp
	}()
	for _, c := range []struct {
		name         string
		base, stride int
	}{
		{"offset out of range", 1000, 1},
		{"sparse in range", 0, 2}, // indices 0,2,4,6 with 2 in range: silent wrong read before the fix
		{"offset in range", 1, 1}, // indices 1..4, three in range
	} {
		t.Run(c.name, func(t *testing.T) {
			sparse := sparseProfile(dense, c.base, c.stride)
			res, err := Stratify(sparse, Options{})
			if err != nil {
				t.Fatal(err)
			}
			sp, err := res.Speedup(golden)
			if err != nil {
				t.Fatal(err)
			}
			if sp != wantSp {
				t.Fatalf("speedup %g, want %g", sp, wantSp)
			}
			cov, err := res.WeightedCycleCoV(golden)
			if err != nil {
				t.Fatal(err)
			}
			wantRes, err := Stratify(dense, Options{})
			if err != nil {
				t.Fatal(err)
			}
			wantCov, err := wantRes.WeightedCycleCoV(golden)
			if err != nil {
				t.Fatal(err)
			}
			if cov != wantCov {
				t.Fatalf("weighted CoV %g, want %g", cov, wantCov)
			}
		})
	}
	// A short golden slice still errors with a position-aware message.
	sparse := sparseProfile(dense, 1000, 1)
	res, err := Stratify(sparse, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Speedup(golden[:2]); err == nil {
		t.Fatal("want error for short golden slice")
	}
}
