// Package core implements Sieve, the paper's contribution: a stratified
// sampling methodology for GPU-compute workloads (Section III).
//
// Sieve consumes a minimal per-invocation profile — kernel name, invocation
// ID, dynamic instruction count, CTA size — and stratifies the invocations
// per kernel by instruction-count variability:
//
//   - Tier-1: zero variation across invocations → one stratum per kernel.
//   - Tier-2: coefficient of variation below the threshold θ → one stratum.
//   - Tier-3: CoV ≥ θ → the kernel's invocations are split with 1-D kernel
//     density estimation into strata whose CoV is below θ.
//
// One representative invocation is selected per stratum (first-chronological
// for Tier-1; first-chronological with the dominant CTA size for Tier-2/3)
// and weighted by the stratum's share of total instruction count. Overall
// performance is predicted as the weighted harmonic mean of per-
// representative IPC.
package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/gpusampling/sieve/internal/kde"
	"github.com/gpusampling/sieve/internal/obs"
	"github.com/gpusampling/sieve/internal/stats"
)

// DefaultTheta is the paper's recommended CoV threshold (Section III-B:
// "a threshold of θ = 0.4 strikes a good balance between accuracy and
// speed").
const DefaultTheta = 0.4

// Tier classifies a kernel's instruction-count variability (Section III-B).
type Tier int

const (
	// Tier1 kernels execute exactly the same instruction count every
	// invocation.
	Tier1 Tier = iota + 1
	// Tier2 kernels vary, with CoV below the threshold θ.
	Tier2
	// Tier3 kernels vary with CoV at or above θ and are split with KDE.
	Tier3
)

// String returns "Tier-1", "Tier-2" or "Tier-3".
func (t Tier) String() string {
	switch t {
	case Tier1:
		return "Tier-1"
	case Tier2:
		return "Tier-2"
	case Tier3:
		return "Tier-3"
	default:
		return fmt.Sprintf("Tier(%d)", int(t))
	}
}

// SelectionPolicy picks the representative invocation within a stratum.
type SelectionPolicy int

const (
	// SelectDominantCTAFirst picks the first-chronological invocation with
	// the stratum's most common CTA size — the paper's default for Tier-2/3
	// ("the selected kernel invocation occupies the available hardware
	// resources in a representative way for the rest of stratum").
	SelectDominantCTAFirst SelectionPolicy = iota
	// SelectFirstChronological picks the earliest invocation outright.
	SelectFirstChronological
	// SelectMaxCTA picks the first-chronological invocation with the
	// largest CTA size — evaluated by the paper and found less accurate.
	SelectMaxCTA
)

// String names the policy.
func (p SelectionPolicy) String() string {
	switch p {
	case SelectDominantCTAFirst:
		return "dominant-cta-first"
	case SelectFirstChronological:
		return "first-chronological"
	case SelectMaxCTA:
		return "max-cta"
	default:
		return fmt.Sprintf("SelectionPolicy(%d)", int(p))
	}
}

// Splitter chooses the Tier-3 sub-stratification algorithm.
type Splitter int

const (
	// SplitKDE cuts at kernel-density-estimate valleys, then bisects — the
	// paper's method.
	SplitKDE Splitter = iota
	// SplitEqualWidth bins instruction counts into equal-width histogram
	// bins, then bisects — the ablation baseline.
	SplitEqualWidth
	// SplitGMM fits a Gaussian mixture with EM and cuts at hard-assignment
	// boundaries — the model-based ablation alternative.
	SplitGMM
)

// String names the splitter.
func (s Splitter) String() string {
	switch s {
	case SplitKDE:
		return "kde"
	case SplitEqualWidth:
		return "equal-width"
	case SplitGMM:
		return "gmm"
	default:
		return fmt.Sprintf("Splitter(%d)", int(s))
	}
}

// InvocationProfile is the per-invocation information Sieve needs — exactly
// what the instruction-count profiler collects (Section III-A), plus the CTA
// size used by representative selection.
type InvocationProfile struct {
	// Kernel is the kernel name.
	Kernel string
	// Index is the global chronological invocation index.
	Index int
	// InstructionCount is the dynamically executed instruction count.
	InstructionCount float64
	// CTASize is the thread-block size.
	CTASize int
}

// Options configures stratification.
type Options struct {
	// Theta is the CoV threshold θ separating Tier-2 from Tier-3;
	// DefaultTheta if zero (unless ThetaSet is true). θ = 0 itself is
	// degenerate — no multi-valued stratum can reach CoV < 0 — and is
	// rejected when requested explicitly via ThetaSet.
	Theta float64
	// ThetaSet marks Theta as explicitly chosen: Theta is used verbatim and
	// Theta == 0 becomes a loud error instead of silently running at
	// DefaultTheta. Sweeps that iterate θ values should set it so a stray
	// zero in the sweep fails instead of quietly reporting DefaultTheta
	// results.
	ThetaSet bool
	// Selection is the representative-selection policy.
	Selection SelectionPolicy
	// Tier3Splitter picks the Tier-3 splitting algorithm.
	Tier3Splitter Splitter
	// Parallelism bounds the workers stratifying kernels concurrently:
	// 0 selects GOMAXPROCS, 1 runs sequentially. Kernels are independent and
	// reassembled in deterministic order, so the result is byte-identical at
	// any parallelism.
	Parallelism int
	// MinParallelWork is the profile size (rows) below which stratification
	// ignores Parallelism and runs the per-kernel loop inline: small
	// profiles finish faster without goroutine and scheduling overhead.
	// 0 selects DefaultMinParallelWork; negative is an error. Set to 1 to
	// force the worker pool on any profile.
	MinParallelWork int
	// Method names the sampling methodology that should build the plan.
	// core.Stratify implements only the paper's stratified sampler and
	// accepts "" or MethodSieve; every other registered method ("pks",
	// "twophase", "rss", …) is dispatched by the sieve.Sample entry points
	// or the internal/sampler registry before core is reached, so a foreign
	// method arriving here is a programming error and fails loudly instead
	// of silently producing a default-method plan.
	Method string
}

// MethodSieve names the default methodology: the paper's stratified sampler
// implemented by this package. An empty Options.Method means the same thing,
// and plans it produces leave Result.Method empty so legacy plan documents
// and cache keys stay byte-stable.
const MethodSieve = "sieve"

// DefaultMinParallelWork is the profile-row threshold below which the
// per-kernel worker pool is skipped. BenchmarkStratify on the default
// fixture (~25k rows) shows single-digit-percent pool gains at best, and
// sub-thousand-row profiles stratify in well under the cost of spinning up
// workers, so the crossover sits comfortably above typical small inputs.
const DefaultMinParallelWork = 2048

// withDefaults returns the options with zero values replaced by defaults.
func (o Options) withDefaults() (Options, error) {
	if o.Theta == 0 {
		if o.ThetaSet {
			return o, fmt.Errorf("core: %w: theta 0 is degenerate (no multi-invocation stratum can reach CoV < 0); use a positive threshold", ErrInvalidTheta)
		}
		o.Theta = DefaultTheta
	}
	if o.Theta < 0 {
		return o, fmt.Errorf("core: %w: negative theta %g", ErrInvalidTheta, o.Theta)
	}
	switch o.Selection {
	case SelectDominantCTAFirst, SelectFirstChronological, SelectMaxCTA:
	default:
		return o, fmt.Errorf("core: unknown selection policy %d", o.Selection)
	}
	switch o.Tier3Splitter {
	case SplitKDE, SplitEqualWidth, SplitGMM:
	default:
		return o, fmt.Errorf("core: unknown splitter %d", o.Tier3Splitter)
	}
	switch o.Method {
	case "", MethodSieve:
	default:
		return o, fmt.Errorf("core: method %q is not implemented by core.Stratify; dispatch through sieve.Sample or the internal/sampler registry", o.Method)
	}
	if o.Parallelism == 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	if o.Parallelism < 0 {
		return o, fmt.Errorf("core: negative parallelism %d", o.Parallelism)
	}
	if o.MinParallelWork == 0 {
		o.MinParallelWork = DefaultMinParallelWork
	}
	if o.MinParallelWork < 0 {
		return o, fmt.Errorf("core: negative MinParallelWork %d", o.MinParallelWork)
	}
	return o, nil
}

// Stratum is one group of same-kernel, similar-instruction-count invocations
// with its selected representative and weight.
type Stratum struct {
	// Kernel is the kernel every member invocation belongs to.
	Kernel string
	// Tier is the owning kernel's tier.
	Tier Tier
	// Invocations holds member invocation indices in chronological order.
	Invocations []int
	// InstructionSum is the total instruction count across members.
	InstructionSum float64
	// Representative is the selected invocation index.
	Representative int
	// Weight is InstructionSum divided by the workload's total instruction
	// count; weights across strata sum to one.
	Weight float64
}

// Result is a complete stratification: the sampling plan Sieve emits.
type Result struct {
	// Strata holds every stratum, ordered by kernel name and ascending
	// instruction count.
	Strata []Stratum
	// TotalInstructions is the workload's total instruction count.
	TotalInstructions float64
	// TierInvocations counts invocations per tier (index Tier-1).
	TierInvocations [3]int
	// Theta is the threshold used.
	Theta float64
	// Sampled reports that at least one kernel exceeded its streaming
	// reservoir, so stratum membership lists (and anything derived from
	// them, e.g. Speedup) cover a bounded sample rather than every
	// invocation. Plans built by Stratify, and streaming plans where every
	// kernel fit its reservoir, are exact and leave this false.
	Sampled bool
	// Method names the methodology that produced the plan. Empty means the
	// default Sieve stratified sampler — kept empty (rather than "sieve") so
	// plans from the pre-registry code paths and plans routed through the
	// default strategy stay byte-identical.
	Method string
	// Interval, when non-nil, carries a methodology-supplied confidence
	// interval on the plan's relative estimation error (e.g. ranked-set
	// resampling or two-phase pilot-variance analysis). The default sampler
	// leaves it nil.
	Interval *ErrorInterval
	// CountWeighted marks plans whose estimator extrapolates by invocation
	// count — predicted cycles = Σ over strata of (member count ×
	// representative cycles), the PKS estimator — instead of Sieve's
	// instruction-share weighted harmonic-mean IPC. Set by methodologies
	// that cluster across kernels, where instruction-share weighting is not
	// the native semantics.
	CountWeighted bool
	// byIndex retains the input rows needed for prediction (keyed by
	// global invocation Index). Exhaustive for materialized plans; retained
	// rows plus representatives for sampled streaming plans.
	byIndex map[int]*InvocationProfile
	// posByIndex maps a global invocation Index to the row's chronological
	// position in the ingested profile — the index golden-cycle arrays are
	// addressed by. Profiles with sparse or offset invocation indices make
	// the two differ.
	posByIndex map[int]int
}

// Stratify groups the profiled invocations into strata per Section III-B and
// selects a weighted representative per stratum per Section III-C.
func Stratify(profile []InvocationProfile, opts Options) (*Result, error) {
	return StratifyContext(context.Background(), profile, opts)
}

// StratifyContext is Stratify with cancellation: the per-kernel worker pool
// checks ctx between kernels, so a cancelled or timed-out context stops the
// stratification promptly — partially processed kernels are discarded and the
// workers return to the runtime — and the call reports ctx.Err().
func StratifyContext(ctx context.Context, profile []InvocationProfile, opts Options) (*Result, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(profile) == 0 {
		return nil, fmt.Errorf("core: %w", ErrEmptyProfile)
	}
	byIndex := make(map[int]*InvocationProfile, len(profile))
	posByIndex := make(map[int]int, len(profile))
	for i := range profile {
		p := &profile[i]
		if p.Kernel == "" {
			return nil, fmt.Errorf("core: profile row %d has no kernel name", i)
		}
		if p.InstructionCount <= 0 {
			return nil, fmt.Errorf("core: profile row %d (kernel %s) has non-positive instruction count", i, p.Kernel)
		}
		if p.CTASize <= 0 {
			return nil, fmt.Errorf("core: profile row %d (kernel %s) has non-positive CTA size", i, p.Kernel)
		}
		if _, dup := byIndex[p.Index]; dup {
			return nil, fmt.Errorf("core: duplicate invocation index %d", p.Index)
		}
		byIndex[p.Index] = p
		posByIndex[p.Index] = i
	}

	// Group rows per kernel, preserving chronological order.
	kernelRows := make(map[string][]*InvocationProfile)
	var kernelOrder []string
	for i := range profile {
		p := &profile[i]
		if _, seen := kernelRows[p.Kernel]; !seen {
			kernelOrder = append(kernelOrder, p.Kernel)
		}
		kernelRows[p.Kernel] = append(kernelRows[p.Kernel], p)
	}
	sort.Strings(kernelOrder)

	// Observability: with a collector in ctx this records a core.stratify span
	// (with one core.kernel child per kernel, created by stratifyKernel); with
	// none, StartSpan returns a nil span and ctx unchanged, so the compute path
	// below is untouched and the plan stays byte-identical.
	ctx, sp := obs.StartSpan(ctx, "core.stratify")
	defer sp.End()
	if sp.Active() {
		sp.SetAttr("theta", opts.Theta)
		sp.SetAttr("parallelism", opts.Parallelism)
		sp.SetAttr("kernels", len(kernelOrder))
		sp.SetAttr("splitter", opts.Tier3Splitter.String())
		sp.Add("rows", int64(len(profile)))
	}

	// Stratify kernels on a bounded worker pool: kernels are independent, so
	// each worker owns one kernel's rows end to end and the per-kernel
	// outputs are reassembled below in sorted kernel order — the result is
	// byte-identical to the sequential walk regardless of worker count.
	type kernelOutput struct {
		strata []Stratum
		tier   Tier
		rows   int
		err    error
	}
	outputs := make([]kernelOutput, len(kernelOrder))
	process := func(i int) {
		kernel := kernelOrder[i]
		rows := kernelRows[kernel]
		sort.Slice(rows, func(a, b int) bool { return rows[a].Index < rows[b].Index })
		strata, tier, err := stratifyKernel(ctx, kernel, rows, opts)
		if err != nil {
			err = fmt.Errorf("core: kernel %s: %w", kernel, err)
		}
		outputs[i] = kernelOutput{strata: strata, tier: tier, rows: len(rows), err: err}
	}
	// Work-size gate: profiles below the threshold run inline — the pool's
	// scheduling decision, never its result, depends on input size.
	workers := min(opts.Parallelism, len(kernelOrder))
	if len(profile) < opts.MinParallelWork {
		workers = 1
	}
	if sp.Active() {
		sp.SetAttr("workers", workers)
	}
	if workers <= 1 {
		for i := range kernelOrder {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			process(i)
		}
	} else {
		// Workers pull kernel indices from a shared counter and check ctx
		// before each pull, so cancellation is observed between work items:
		// in-progress kernels finish, queued ones are never started, and every
		// worker slot is released by the time the call returns.
		var wg sync.WaitGroup
		var next atomic.Int64
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ctx.Err() == nil {
					i := int(next.Add(1)) - 1
					if i >= len(kernelOrder) {
						return
					}
					process(i)
				}
			}()
		}
		wg.Wait()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	res := &Result{Theta: opts.Theta, byIndex: byIndex, posByIndex: posByIndex}
	for _, out := range outputs {
		if out.err != nil {
			return nil, out.err
		}
		res.TierInvocations[out.tier-1] += out.rows
		res.Strata = append(res.Strata, out.strata...)
	}
	if sp.Active() {
		sp.SetAttr("strata", len(res.Strata))
		sp.SetAttr("tier1_invocations", res.TierInvocations[0])
		sp.SetAttr("tier2_invocations", res.TierInvocations[1])
		sp.SetAttr("tier3_invocations", res.TierInvocations[2])
	}

	// Weights: stratum instruction share of the total (Section III-C).
	for i := range res.Strata {
		res.TotalInstructions += res.Strata[i].InstructionSum
	}
	for i := range res.Strata {
		res.Strata[i].Weight = res.Strata[i].InstructionSum / res.TotalInstructions
	}
	return res, nil
}

// stratifyKernel classifies one kernel's invocations and returns its strata.
// When a collector rides ctx it records a core.kernel span carrying the tier
// decision, the stratum count and the per-stratum CoV.
func stratifyKernel(ctx context.Context, kernel string, rows []*InvocationProfile, opts Options) ([]Stratum, Tier, error) {
	ctx, sp := obs.StartSpan(ctx, "core.kernel")
	defer sp.End()

	counts := make([]float64, len(rows))
	allEqual := true
	for i, r := range rows {
		counts[i] = r.InstructionCount
		if counts[i] != counts[0] {
			allEqual = false
		}
	}

	var tier Tier
	switch {
	case allEqual:
		tier = Tier1
	case stats.CoV(counts) < opts.Theta:
		tier = Tier2
	default:
		tier = Tier3
	}
	if sp.Active() {
		sp.SetAttr("kernel", kernel)
		sp.SetAttr("rows", len(rows))
		sp.SetAttr("tier", tier.String())
		sp.SetAttr("cov", stats.CoV(counts))
	}

	if tier != Tier3 {
		s, err := buildStratum(kernel, tier, rows, opts)
		if err != nil {
			return nil, tier, err
		}
		if sp.Active() {
			sp.SetAttr("strata", 1)
			sp.SetAttr("strata_cov", []float64{stats.CoV(counts)})
		}
		return []Stratum{s}, tier, nil
	}

	// Tier-3: split the instruction counts so each group's CoV < θ, then
	// map value groups back to rows. The splitters return ascending groups
	// that partition the sorted sample, so sorting rows by (count, index)
	// and carving by group lengths reproduces the assignment exactly.
	groups, err := splitTier3(ctx, counts, opts)
	if err != nil {
		return nil, tier, err
	}
	if sp.Active() {
		sp.SetAttr("strata", len(groups))
		covs := make([]float64, len(groups))
		for i, g := range groups {
			covs[i] = stats.CoV(g)
		}
		sp.SetAttr("strata_cov", covs)
	}
	sortedRows := append([]*InvocationProfile(nil), rows...)
	sort.SliceStable(sortedRows, func(a, b int) bool {
		if sortedRows[a].InstructionCount != sortedRows[b].InstructionCount {
			return sortedRows[a].InstructionCount < sortedRows[b].InstructionCount
		}
		return sortedRows[a].Index < sortedRows[b].Index
	})
	var strata []Stratum
	at := 0
	for _, g := range groups {
		members := sortedRows[at : at+len(g)]
		at += len(g)
		s, err := buildStratum(kernel, tier, members, opts)
		if err != nil {
			return nil, tier, err
		}
		strata = append(strata, s)
	}
	if at != len(sortedRows) {
		return nil, tier, fmt.Errorf("splitter dropped invocations: %d of %d assigned", at, len(sortedRows))
	}
	return strata, tier, nil
}

// splitTier3 partitions instruction counts into ascending groups whose CoV
// is below θ, with the configured splitting algorithm.
func splitTier3(ctx context.Context, counts []float64, opts Options) ([][]float64, error) {
	switch opts.Tier3Splitter {
	case SplitKDE:
		return kde.SplitUnderCoVContext(ctx, counts, opts.Theta)
	case SplitEqualWidth:
		return equalWidthSplit(ctx, counts, opts.Theta)
	case SplitGMM:
		return kde.SplitUnderCoVGMMContext(ctx, counts, opts.Theta)
	default:
		return nil, fmt.Errorf("unknown splitter %d", opts.Tier3Splitter)
	}
}

// buildStratum assembles a stratum from member rows and selects its
// representative.
func buildStratum(kernel string, tier Tier, members []*InvocationProfile, opts Options) (Stratum, error) {
	s := Stratum{Kernel: kernel, Tier: tier}
	s.Invocations = make([]int, len(members))
	order := append([]*InvocationProfile(nil), members...)
	sort.Slice(order, func(a, b int) bool { return order[a].Index < order[b].Index })
	for i, r := range order {
		s.Invocations[i] = r.Index
		s.InstructionSum += r.InstructionCount
	}
	rep, err := selectRepresentative(order, tier, opts.Selection)
	if err != nil {
		return s, err
	}
	s.Representative = rep
	return s, nil
}

// selectRepresentative implements Section III-C on chronologically ordered
// members.
func selectRepresentative(ordered []*InvocationProfile, tier Tier, policy SelectionPolicy) (int, error) {
	if len(ordered) == 0 {
		return 0, fmt.Errorf("empty stratum")
	}
	if tier == Tier1 || policy == SelectFirstChronological {
		// Tier-1: all invocations are interchangeable; take the first.
		return ordered[0].Index, nil
	}
	switch policy {
	case SelectDominantCTAFirst:
		// Most common CTA size; ties break toward the size seen first.
		freq := make(map[int]int)
		for _, r := range ordered {
			freq[r.CTASize]++
		}
		dominant, best := 0, -1
		for _, r := range ordered {
			if f := freq[r.CTASize]; f > best {
				dominant, best = r.CTASize, f
			}
		}
		for _, r := range ordered {
			if r.CTASize == dominant {
				return r.Index, nil
			}
		}
		return ordered[0].Index, nil
	case SelectMaxCTA:
		max := 0
		for _, r := range ordered {
			if r.CTASize > max {
				max = r.CTASize
			}
		}
		for _, r := range ordered {
			if r.CTASize == max {
				return r.Index, nil
			}
		}
		return ordered[0].Index, nil
	default:
		return 0, fmt.Errorf("unknown selection policy %d", policy)
	}
}

// equalWidthSplit is the ablation Tier-3 splitter: Freedman–Diaconis
// equal-width bins followed by the same CoV-constrained bisection the KDE
// path uses for stubborn groups.
func equalWidthSplit(ctx context.Context, counts []float64, theta float64) ([][]float64, error) {
	bins := stats.FreedmanDiaconisBins(counts, 64)
	h, err := stats.NewHistogram(counts, bins)
	if err != nil {
		return nil, err
	}
	sorted := append([]float64(nil), counts...)
	sort.Float64s(sorted)
	var groups [][]float64
	var current []float64
	currentBin := -1
	for _, v := range sorted {
		b := h.Bin(v)
		if b != currentBin && len(current) > 0 {
			groups = append(groups, current)
			current = nil
		}
		currentBin = b
		current = append(current, v)
	}
	if len(current) > 0 {
		groups = append(groups, current)
	}
	// Bisect any group still over threshold by delegating to the KDE
	// splitter, which reduces to pure bisection on already-tight samples.
	var out [][]float64
	for _, g := range groups {
		if len(g) > 1 && stats.CoV(g) >= theta {
			sub, err := kde.SplitUnderCoVContext(ctx, g, theta)
			if err != nil {
				return nil, err
			}
			out = append(out, sub...)
			continue
		}
		out = append(out, g)
	}
	return out, nil
}
