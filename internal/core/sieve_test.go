package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/gpusampling/sieve/internal/stats"
)

// profileOf builds a profile from (kernel, instr, cta) triples in
// chronological order.
func profileOf(rows ...[3]interface{}) []InvocationProfile {
	out := make([]InvocationProfile, len(rows))
	for i, r := range rows {
		out[i] = InvocationProfile{
			Kernel:           r[0].(string),
			Index:            i,
			InstructionCount: r[1].(float64),
			CTASize:          r[2].(int),
		}
	}
	return out
}

func TestTierAndPolicyStrings(t *testing.T) {
	if Tier1.String() != "Tier-1" || Tier2.String() != "Tier-2" || Tier3.String() != "Tier-3" {
		t.Fatal("tier strings")
	}
	if Tier(9).String() != "Tier(9)" {
		t.Fatal("unknown tier string")
	}
	if SelectDominantCTAFirst.String() != "dominant-cta-first" ||
		SelectFirstChronological.String() != "first-chronological" ||
		SelectMaxCTA.String() != "max-cta" {
		t.Fatal("policy strings")
	}
	if SelectionPolicy(9).String() != "SelectionPolicy(9)" {
		t.Fatal("unknown policy string")
	}
	if SplitKDE.String() != "kde" || SplitEqualWidth.String() != "equal-width" {
		t.Fatal("splitter strings")
	}
	if Splitter(9).String() != "Splitter(9)" {
		t.Fatal("unknown splitter string")
	}
}

func TestStratifyValidation(t *testing.T) {
	if _, err := Stratify(nil, Options{}); err == nil {
		t.Fatal("want error for empty profile")
	}
	bad := []InvocationProfile{{Kernel: "", Index: 0, InstructionCount: 1, CTASize: 32}}
	if _, err := Stratify(bad, Options{}); err == nil {
		t.Fatal("want error for missing kernel name")
	}
	bad[0].Kernel = "k"
	bad[0].InstructionCount = 0
	if _, err := Stratify(bad, Options{}); err == nil {
		t.Fatal("want error for zero instruction count")
	}
	bad[0].InstructionCount = 1
	bad[0].CTASize = 0
	if _, err := Stratify(bad, Options{}); err == nil {
		t.Fatal("want error for zero CTA size")
	}
	dup := profileOf([3]interface{}{"k", 1.0, 32}, [3]interface{}{"k", 2.0, 32})
	dup[1].Index = 0
	if _, err := Stratify(dup, Options{}); err == nil {
		t.Fatal("want error for duplicate index")
	}
	if _, err := Stratify(profileOf([3]interface{}{"k", 1.0, 32}), Options{Theta: -1}); err == nil {
		t.Fatal("want error for negative theta")
	}
	if _, err := Stratify(profileOf([3]interface{}{"k", 1.0, 32}), Options{Selection: SelectionPolicy(99)}); err == nil {
		t.Fatal("want error for unknown policy")
	}
	if _, err := Stratify(profileOf([3]interface{}{"k", 1.0, 32}), Options{Tier3Splitter: Splitter(99)}); err == nil {
		t.Fatal("want error for unknown splitter")
	}
}

func TestTier1ConstantKernel(t *testing.T) {
	p := profileOf(
		[3]interface{}{"k", 100.0, 128},
		[3]interface{}{"k", 100.0, 256},
		[3]interface{}{"k", 100.0, 128},
	)
	res, err := Stratify(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Strata) != 1 {
		t.Fatalf("strata = %d, want 1", len(res.Strata))
	}
	s := res.Strata[0]
	if s.Tier != Tier1 {
		t.Fatalf("tier = %v", s.Tier)
	}
	if s.Representative != 0 {
		t.Fatalf("Tier-1 representative = %d, want first-chronological 0", s.Representative)
	}
	if s.Weight != 1 {
		t.Fatalf("weight = %g", s.Weight)
	}
	if res.TierInvocations != [3]int{3, 0, 0} {
		t.Fatalf("tier counts = %v", res.TierInvocations)
	}
}

func TestTier2LowVariabilityKernel(t *testing.T) {
	// CoV of {95, 100, 105} ≈ 0.041 < 0.4 → single Tier-2 stratum.
	p := profileOf(
		[3]interface{}{"k", 95.0, 128},
		[3]interface{}{"k", 100.0, 256},
		[3]interface{}{"k", 105.0, 256},
	)
	res, err := Stratify(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Strata) != 1 || res.Strata[0].Tier != Tier2 {
		t.Fatalf("strata = %+v", res.Strata)
	}
	// Dominant CTA is 256 (2 of 3); first-chronological with 256 is index 1.
	if res.Strata[0].Representative != 1 {
		t.Fatalf("representative = %d, want 1 (first with dominant CTA)", res.Strata[0].Representative)
	}
	if res.TierInvocations != [3]int{0, 3, 0} {
		t.Fatalf("tier counts = %v", res.TierInvocations)
	}
}

func TestTier3KernelSplitsIntoTightStrata(t *testing.T) {
	// Bimodal kernel: counts around 100 and around 10000.
	var rows [][3]interface{}
	for i := 0; i < 50; i++ {
		rows = append(rows, [3]interface{}{"k", 100.0 + float64(i%3), 128})
		rows = append(rows, [3]interface{}{"k", 10000.0 + float64(i%5), 128})
	}
	res, err := Stratify(profileOf(rows...), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Strata) < 2 {
		t.Fatalf("bimodal kernel produced %d strata", len(res.Strata))
	}
	if res.TierInvocations[2] != 100 {
		t.Fatalf("tier counts = %v", res.TierInvocations)
	}
	total := 0
	for _, s := range res.Strata {
		if s.Tier != Tier3 {
			t.Fatalf("stratum tier = %v", s.Tier)
		}
		total += len(s.Invocations)
		// Members must be homogeneous: CoV below θ.
		var counts []float64
		for _, idx := range s.Invocations {
			counts = append(counts, res.byIndex[idx].InstructionCount)
		}
		if cov := stats.CoV(counts); cov >= 0.4 {
			t.Fatalf("stratum CoV %g ≥ θ", cov)
		}
		// Chronological member order.
		for i := 1; i < len(s.Invocations); i++ {
			if s.Invocations[i] <= s.Invocations[i-1] {
				t.Fatal("stratum members out of chronological order")
			}
		}
	}
	if total != 100 {
		t.Fatalf("strata cover %d invocations, want 100", total)
	}
}

func TestWeightsSumToOneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nKernels := 1 + rng.Intn(6)
		var profile []InvocationProfile
		idx := 0
		for k := 0; k < nKernels; k++ {
			n := 1 + rng.Intn(40)
			base := 100 * math.Pow(10, rng.Float64()*3)
			mode := rng.Intn(3)
			for j := 0; j < n; j++ {
				instr := base
				switch mode {
				case 1:
					instr *= 1 + 0.1*rng.NormFloat64()
				case 2:
					instr *= math.Pow(4, float64(rng.Intn(3))) * (1 + 0.02*rng.NormFloat64())
				}
				if instr < 1 {
					instr = 1
				}
				profile = append(profile, InvocationProfile{
					Kernel:           fmt.Sprintf("k%d", k),
					Index:            idx,
					InstructionCount: instr,
					CTASize:          64 << rng.Intn(4),
				})
				idx++
			}
		}
		res, err := Stratify(profile, Options{})
		if err != nil {
			return false
		}
		// Invariants: weights sum to 1; every invocation in exactly one
		// stratum; representative is a member of its stratum; tier counts
		// cover everything.
		var wsum float64
		seen := make(map[int]bool)
		for _, s := range res.Strata {
			wsum += s.Weight
			repOK := false
			for _, i := range s.Invocations {
				if seen[i] {
					return false
				}
				seen[i] = true
				if i == s.Representative {
					repOK = true
				}
			}
			if !repOK {
				return false
			}
		}
		if len(seen) != len(profile) {
			return false
		}
		if math.Abs(wsum-1) > 1e-9 {
			return false
		}
		if res.TierInvocations[0]+res.TierInvocations[1]+res.TierInvocations[2] != len(profile) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestThetaMonotonicity(t *testing.T) {
	// Lowering θ cannot decrease the number of strata, and Tier-3
	// invocation share cannot shrink.
	rng := rand.New(rand.NewSource(31))
	var rows [][3]interface{}
	for k := 0; k < 5; k++ {
		base := 1000.0 * float64(k+1)
		for j := 0; j < 60; j++ {
			rows = append(rows, [3]interface{}{
				fmt.Sprintf("k%d", k),
				base * (1 + 0.5*rng.NormFloat64()*float64(k)/4) * math.Pow(2, float64(rng.Intn(k+1))),
				128,
			})
		}
	}
	for i := range rows {
		if rows[i][1].(float64) < 1 {
			rows[i][1] = 1.0
		}
	}
	p := profileOf(rows...)
	prevStrata := -1
	prevT3 := math.MaxInt
	for _, theta := range []float64{1.0, 0.5, 0.1} {
		res, err := Stratify(p, Options{Theta: theta})
		if err != nil {
			t.Fatal(err)
		}
		if prevStrata >= 0 && res.NumStrata() < prevStrata {
			t.Fatalf("θ=%g produced fewer strata (%d) than looser θ (%d)", theta, res.NumStrata(), prevStrata)
		}
		if res.TierInvocations[2] < prevT3 && prevT3 != math.MaxInt {
			t.Fatalf("θ=%g shrank Tier-3 share", theta)
		}
		prevStrata = res.NumStrata()
		prevT3 = res.TierInvocations[2]
	}
}

func TestSelectionPolicies(t *testing.T) {
	p := profileOf(
		[3]interface{}{"k", 90.0, 128},
		[3]interface{}{"k", 110.0, 512},
		[3]interface{}{"k", 100.0, 256},
		[3]interface{}{"k", 101.0, 256},
	)
	// first-chronological → index 0.
	res, err := Stratify(p, Options{Selection: SelectFirstChronological})
	if err != nil {
		t.Fatal(err)
	}
	if res.Strata[0].Representative != 0 {
		t.Fatalf("first-chronological rep = %d", res.Strata[0].Representative)
	}
	// dominant CTA (256, twice) → first with 256 is index 2.
	res, err = Stratify(p, Options{Selection: SelectDominantCTAFirst})
	if err != nil {
		t.Fatal(err)
	}
	if res.Strata[0].Representative != 2 {
		t.Fatalf("dominant-cta rep = %d", res.Strata[0].Representative)
	}
	// max CTA (512) → index 1.
	res, err = Stratify(p, Options{Selection: SelectMaxCTA})
	if err != nil {
		t.Fatal(err)
	}
	if res.Strata[0].Representative != 1 {
		t.Fatalf("max-cta rep = %d", res.Strata[0].Representative)
	}
}

func TestSingleInvocationKernel(t *testing.T) {
	p := profileOf([3]interface{}{"solo", 1234.0, 64})
	res, err := Stratify(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Strata) != 1 || res.Strata[0].Tier != Tier1 || res.Strata[0].Representative != 0 {
		t.Fatalf("solo kernel strata = %+v", res.Strata)
	}
}

func TestMultipleKernelsNeverShareStrata(t *testing.T) {
	// Sieve must never merge invocations of different kernels (Section III-E)
	// even when counts are identical — the defining contrast with PKS.
	p := profileOf(
		[3]interface{}{"a", 100.0, 128},
		[3]interface{}{"b", 100.0, 128},
		[3]interface{}{"a", 100.0, 128},
		[3]interface{}{"b", 100.0, 128},
	)
	res, err := Stratify(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Strata) != 2 {
		t.Fatalf("strata = %d, want one per kernel", len(res.Strata))
	}
	for _, s := range res.Strata {
		for _, idx := range s.Invocations {
			if res.byIndex[idx].Kernel != s.Kernel {
				t.Fatal("stratum mixes kernels")
			}
		}
	}
}

func TestEqualWidthSplitterAlsoSatisfiesCoV(t *testing.T) {
	var rows [][3]interface{}
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 200; i++ {
		mode := math.Pow(8, float64(rng.Intn(3)))
		rows = append(rows, [3]interface{}{"k", 1000 * mode * (1 + 0.03*rng.NormFloat64()), 128})
	}
	res, err := Stratify(profileOf(rows...), Options{Tier3Splitter: SplitEqualWidth})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range res.Strata {
		total += len(s.Invocations)
		var counts []float64
		for _, idx := range s.Invocations {
			counts = append(counts, res.byIndex[idx].InstructionCount)
		}
		if len(counts) > 1 && stats.CoV(counts) >= 0.4 {
			t.Fatalf("equal-width stratum CoV %g ≥ θ", stats.CoV(counts))
		}
	}
	if total != 200 {
		t.Fatalf("equal-width split lost invocations: %d", total)
	}
}

func TestDefaultThetaApplied(t *testing.T) {
	p := profileOf([3]interface{}{"k", 1.0, 32})
	res, err := Stratify(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Theta != DefaultTheta {
		t.Fatalf("theta = %g, want default %g", res.Theta, DefaultTheta)
	}
}

func TestGMMSplitterAlsoSatisfiesCoV(t *testing.T) {
	var rows [][3]interface{}
	rng := rand.New(rand.NewSource(79))
	for i := 0; i < 200; i++ {
		mode := math.Pow(8, float64(rng.Intn(3)))
		rows = append(rows, [3]interface{}{"k", 1000 * mode * (1 + 0.03*rng.NormFloat64()), 128})
	}
	res, err := Stratify(profileOf(rows...), Options{Tier3Splitter: SplitGMM})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range res.Strata {
		total += len(s.Invocations)
		var counts []float64
		for _, idx := range s.Invocations {
			counts = append(counts, res.byIndex[idx].InstructionCount)
		}
		if len(counts) > 1 && stats.CoV(counts) >= 0.4 {
			t.Fatalf("gmm stratum CoV %g ≥ θ", stats.CoV(counts))
		}
	}
	if total != 200 {
		t.Fatalf("gmm split lost invocations: %d", total)
	}
}
