package core

import (
	"context"
	"fmt"
	"sort"

	"github.com/gpusampling/sieve/internal/obs"
	"github.com/gpusampling/sieve/internal/stats"
	"github.com/gpusampling/sieve/internal/stream"
)

// StreamOptions configures bounded-memory streaming stratification. The
// embedded Options carry the usual θ/selection/splitter/parallelism knobs;
// the extra fields bound the streaming pass itself.
type StreamOptions struct {
	Options
	// ReservoirSize bounds the rows retained per kernel;
	// stream.DefaultReservoirSize if zero. Kernels whose invocation count
	// fits the reservoir are stratified exactly — byte-identical to
	// Stratify on the same rows; larger kernels fall back to sampled
	// Tier-3 splitting and partial membership lists (Result.Sampled).
	ReservoirSize int
	// Seed seeds the deterministic reservoir priority hash;
	// stream.DefaultSeed if zero. Reservoir membership is a pure function
	// of (Seed, invocation index), independent of Parallelism.
	Seed uint64
	// BatchSize is the dispatch granularity of the sharded streaming pass;
	// stream.DefaultBatchSize if zero.
	BatchSize int
}

// streamOptions is the single conversion point between the sampling options
// and the ingestion layer's knobs; parallelism comes from the embedded
// Options after defaulting so the two layers can never disagree.
func (o StreamOptions) streamOptions(parallelism int) stream.Options {
	return stream.Options{
		ReservoirSize: o.ReservoirSize,
		Seed:          o.Seed,
		Parallelism:   parallelism,
		BatchSize:     o.BatchSize,
	}
}

// RowSource yields the next profile row, or io.EOF after the last one. Rows
// must arrive in strictly ascending global Index order (the natural order of
// a chronological profile log), which is how the single pass detects
// duplicate indices without retaining an index set.
type RowSource func() (InvocationProfile, error)

// StratifyStream is the bounded-memory analogue of Stratify: a single pass
// over the source feeds per-kernel online accumulators (tier classification
// without retaining rows), exact streaming dominant-CTA/first-invocation
// tracking, and a deterministic seeded reservoir per kernel. Memory is
// O(kernels × ReservoirSize) regardless of how many invocations stream by.
//
//   - Every kernel fits its reservoir → the plan is byte-identical to
//     Stratify on the same rows, at any Parallelism.
//   - A kernel overflows → its tier comes from the merged accumulators, its
//     representative and instruction totals remain exact (streaming
//     frequency/first tracking covers every invocation), but Tier-3 KDE
//     splitting runs on the reservoir sample, stratum membership lists are
//     partial, and the plan is marked Sampled.
func StratifyStream(next RowSource, opts StreamOptions) (*Result, error) {
	return StratifyStreamContext(context.Background(), next, opts)
}

// StratifyStreamContext is StratifyStream with cancellation: the ingestion
// pass checks ctx between dispatch batches and the per-kernel stratification
// loop checks it between kernels, so a cancelled or timed-out context stops
// the single pass mid-stream, drains the ingestion shards, and reports
// ctx.Err().
func StratifyStreamContext(ctx context.Context, next RowSource, opts StreamOptions) (*Result, error) {
	o, err := opts.Options.withDefaults()
	if err != nil {
		return nil, err
	}
	// The stream.ingest span (from IngestContext) and the per-kernel
	// core.kernel spans nest under this one; without a collector StartSpan is
	// a no-op and the pass is untouched.
	ctx, sp := obs.StartSpan(ctx, "core.stratify_stream")
	defer sp.End()
	if sp.Active() {
		sp.SetAttr("theta", o.Theta)
		sp.SetAttr("parallelism", o.Parallelism)
		sp.SetAttr("splitter", o.Tier3Splitter.String())
	}
	digest, err := stream.IngestContext(ctx, func() (stream.Row, error) {
		p, err := next()
		if err != nil {
			return stream.Row{}, err
		}
		return stream.Row{
			Kernel:           p.Kernel,
			Index:            p.Index,
			InstructionCount: p.InstructionCount,
			CTASize:          p.CTASize,
		}, nil
	}, opts.streamOptions(o.Parallelism))
	if err != nil {
		return nil, err
	}
	if digest.Rows == 0 {
		return nil, fmt.Errorf("core: %w", ErrEmptyProfile)
	}

	res := &Result{
		Theta:      o.Theta,
		byIndex:    make(map[int]*InvocationProfile),
		posByIndex: make(map[int]int),
	}
	for _, kd := range digest.Kernels {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var strata []Stratum
		var tier Tier
		if kd.Complete() {
			// Exact fallback: the reservoir holds every row, so run the
			// very same per-kernel stratifier Stratify uses.
			rows := res.registerRows(kd.Rows())
			strata, tier, err = stratifyKernel(ctx, kd.Name, rows, o)
		} else {
			res.Sampled = true
			strata, tier, err = stratifyKernelDigest(ctx, kd, o, res)
		}
		if err != nil {
			return nil, fmt.Errorf("core: kernel %s: %w", kd.Name, err)
		}
		res.TierInvocations[tier-1] += kd.N()
		res.Strata = append(res.Strata, strata...)
	}
	for i := range res.Strata {
		res.TotalInstructions += res.Strata[i].InstructionSum
	}
	for i := range res.Strata {
		res.Strata[i].Weight = res.Strata[i].InstructionSum / res.TotalInstructions
	}
	if sp.Active() {
		sp.SetAttr("kernels", len(digest.Kernels))
		sp.SetAttr("strata", len(res.Strata))
		sp.SetAttr("sampled", res.Sampled)
		sp.Add("rows", int64(digest.Rows))
	}
	return res, nil
}

// registerRows copies retained stream rows into the result's lookup maps and
// returns them as stratifier input.
func (r *Result) registerRows(rows []stream.Row) []*InvocationProfile {
	profs := make([]InvocationProfile, len(rows))
	out := make([]*InvocationProfile, len(rows))
	for i, row := range rows {
		profs[i] = InvocationProfile{
			Kernel:           row.Kernel,
			Index:            row.Index,
			InstructionCount: row.InstructionCount,
			CTASize:          row.CTASize,
		}
		r.byIndex[row.Index] = &profs[i]
		r.posByIndex[row.Index] = row.Pos
		out[i] = &profs[i]
	}
	return out
}

// registerRow copies one stream row (e.g. an off-reservoir representative)
// into the result's lookup maps.
func (r *Result) registerRow(row stream.Row) {
	if _, ok := r.byIndex[row.Index]; ok {
		return
	}
	p := InvocationProfile{
		Kernel:           row.Kernel,
		Index:            row.Index,
		InstructionCount: row.InstructionCount,
		CTASize:          row.CTASize,
	}
	r.byIndex[row.Index] = &p
	r.posByIndex[row.Index] = row.Pos
}

// stratifyKernelDigest builds strata for a kernel that overflowed its
// reservoir, from the digest's exact aggregates plus the bounded row sample.
// Its core.kernel span mirrors stratifyKernel's, with sampled=true and the
// retained-sample size alongside the exact invocation count.
func stratifyKernelDigest(ctx context.Context, kd *stream.KernelDigest, opts Options, res *Result) ([]Stratum, Tier, error) {
	acc := kd.Stats()
	var tier Tier
	switch {
	case acc.Min() == acc.Max():
		tier = Tier1
	case acc.CoV() < opts.Theta:
		tier = Tier2
	default:
		tier = Tier3
	}

	ctx, sp := obs.StartSpan(ctx, "core.kernel")
	defer sp.End()
	rows := res.registerRows(kd.Rows())
	if sp.Active() {
		sp.SetAttr("kernel", kd.Name)
		sp.SetAttr("rows", kd.N())
		sp.SetAttr("retained", len(rows))
		sp.SetAttr("tier", tier.String())
		sp.SetAttr("cov", acc.CoV())
		sp.SetAttr("sampled", true)
	}
	if tier != Tier3 {
		// One stratum covering the whole kernel. The instruction total and
		// the representative are exact — the accumulator and the streaming
		// CTA-frequency/first-row tracking saw every invocation — only the
		// membership list is limited to the retained sample.
		s := Stratum{Kernel: kd.Name, Tier: tier, InstructionSum: acc.Sum()}
		s.Invocations = make([]int, len(rows))
		for i, p := range rows {
			s.Invocations[i] = p.Index
		}
		var rep stream.Row
		switch {
		case tier == Tier1 || opts.Selection == SelectFirstChronological:
			rep = kd.First()
		case opts.Selection == SelectDominantCTAFirst:
			rep = kd.DominantCTA().First
		case opts.Selection == SelectMaxCTA:
			rep = kd.MaxCTA().First
		default:
			return nil, tier, fmt.Errorf("unknown selection policy %d", opts.Selection)
		}
		res.registerRow(rep)
		s.Representative = rep.Index
		if sp.Active() {
			sp.SetAttr("strata", 1)
			sp.SetAttr("strata_cov", []float64{acc.CoV()})
		}
		return []Stratum{s}, tier, nil
	}

	// Tier-3: split the reservoir sample exactly as the materializing path
	// splits the full kernel, then scale each stratum's sampled instruction
	// share up to the kernel's exact total so weights stay unbiased.
	counts := make([]float64, len(rows))
	var sampledSum float64
	for i, p := range rows {
		counts[i] = p.InstructionCount
		sampledSum += p.InstructionCount
	}
	groups, err := splitTier3(ctx, counts, opts)
	if err != nil {
		return nil, tier, err
	}
	if sp.Active() {
		sp.SetAttr("strata", len(groups))
		covs := make([]float64, len(groups))
		for i, g := range groups {
			covs[i] = stats.CoV(g)
		}
		sp.SetAttr("strata_cov", covs)
	}
	sortedRows := append([]*InvocationProfile(nil), rows...)
	sort.SliceStable(sortedRows, func(a, b int) bool {
		if sortedRows[a].InstructionCount != sortedRows[b].InstructionCount {
			return sortedRows[a].InstructionCount < sortedRows[b].InstructionCount
		}
		return sortedRows[a].Index < sortedRows[b].Index
	})
	scale := acc.Sum() / sampledSum
	var strata []Stratum
	at := 0
	for _, g := range groups {
		members := sortedRows[at : at+len(g)]
		at += len(g)
		s, err := buildStratum(kd.Name, tier, members, opts)
		if err != nil {
			return nil, tier, err
		}
		s.InstructionSum *= scale
		strata = append(strata, s)
	}
	if at != len(sortedRows) {
		return nil, tier, fmt.Errorf("splitter dropped invocations: %d of %d assigned", at, len(sortedRows))
	}
	return strata, tier, nil
}
