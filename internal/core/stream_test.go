package core

import (
	"io"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// rowSource adapts a row slice to the streaming pull interface.
func rowSource(rows []InvocationProfile) RowSource {
	i := 0
	return func() (InvocationProfile, error) {
		if i >= len(rows) {
			return InvocationProfile{}, io.EOF
		}
		r := rows[i]
		i++
		return r, nil
	}
}

// streamProfile builds a mixed-tier profile: a Tier-1 kernel, a low-variance
// Tier-2 kernel and a multi-modal Tier-3 kernel, interleaved chronologically.
func streamProfile(n int, seed int64) []InvocationProfile {
	rng := rand.New(rand.NewSource(seed))
	out := make([]InvocationProfile, 0, n)
	for i := 0; i < n; i++ {
		var p InvocationProfile
		switch i % 3 {
		case 0:
			p = InvocationProfile{Kernel: "const", InstructionCount: 5e4, CTASize: 128}
		case 1:
			p = InvocationProfile{Kernel: "lowvar", InstructionCount: 2e5 * (1 + 0.1*rng.Float64()), CTASize: 256}
		default:
			center := []float64{1e4, 9e4, 4e5}[rng.Intn(3)]
			p = InvocationProfile{Kernel: "multi", InstructionCount: center * (1 + 0.05*rng.Float64()), CTASize: []int{64, 128}[rng.Intn(2)]}
		}
		p.Index = i
		out = append(out, p)
	}
	return out
}

func samePlan(t *testing.T, want, got *Result, label string) {
	t.Helper()
	if !reflect.DeepEqual(want.Strata, got.Strata) {
		t.Fatalf("%s: strata diverge", label)
	}
	if want.TotalInstructions != got.TotalInstructions {
		t.Fatalf("%s: total instructions %g vs %g", label, want.TotalInstructions, got.TotalInstructions)
	}
	if want.TierInvocations != got.TierInvocations {
		t.Fatalf("%s: tier invocations %v vs %v", label, want.TierInvocations, got.TierInvocations)
	}
	if want.Theta != got.Theta || want.Sampled != got.Sampled {
		t.Fatalf("%s: theta/sampled diverge", label)
	}
}

// TestStratifyStreamMatchesStratify is the headline equivalence: whenever
// every kernel fits its reservoir, the streaming plan is byte-identical to
// the materializing plan — at any Parallelism, any batch size, and any
// reservoir at least as large as the biggest kernel.
func TestStratifyStreamMatchesStratify(t *testing.T) {
	profile := streamProfile(900, 7)
	for _, opts := range []Options{
		{},
		{Selection: SelectFirstChronological},
		{Selection: SelectMaxCTA},
		{Tier3Splitter: SplitEqualWidth},
		{Tier3Splitter: SplitGMM},
		{Theta: 0.2},
	} {
		want, err := Stratify(profile, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []int{1, 2, 3, 8} {
			for _, reservoir := range []int{300, 1024, 100000} {
				sopts := StreamOptions{Options: opts, ReservoirSize: reservoir, BatchSize: 64}
				sopts.Parallelism = p
				got, err := StratifyStream(rowSource(profile), sopts)
				if err != nil {
					t.Fatal(err)
				}
				if got.Sampled {
					t.Fatalf("opts %+v p=%d reservoir=%d: plan marked sampled though every kernel fits", opts, p, reservoir)
				}
				samePlan(t, want, got, "streaming equivalence")
			}
		}
	}
}

// TestStratifyStreamSampledPlan exercises the overflow path: the reservoir is
// far smaller than the kernels, so tier decisions come from the merged
// accumulators and Tier-3 splits run on the sample.
func TestStratifyStreamSampledPlan(t *testing.T) {
	profile := streamProfile(3000, 11)
	want, err := Stratify(profile, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := StratifyStream(rowSource(profile), StreamOptions{ReservoirSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Sampled {
		t.Fatal("plan not marked sampled despite reservoir overflow")
	}
	// Tier classification from accumulators matches the exact pass.
	if got.TierInvocations != want.TierInvocations {
		t.Fatalf("tier invocations %v, want %v", got.TierInvocations, want.TierInvocations)
	}
	// Instruction totals stay exact (accumulator sums, not sampled sums).
	if rel := math.Abs(got.TotalInstructions-want.TotalInstructions) / want.TotalInstructions; rel > 1e-9 {
		t.Fatalf("total instructions off by %g", rel)
	}
	// Weights normalize.
	var wsum float64
	for i := range got.Strata {
		wsum += got.Strata[i].Weight
	}
	if math.Abs(wsum-1) > 1e-9 {
		t.Fatalf("weights sum to %g", wsum)
	}
	// Tier-1/Tier-2 representatives are exact — same invocation the
	// materializing path picks (streaming frequency/first tracking sees
	// every row even when the reservoir does not).
	wantRep := map[string]int{}
	for i := range want.Strata {
		s := &want.Strata[i]
		if s.Tier != Tier3 {
			wantRep[s.Kernel] = s.Representative
		}
	}
	for i := range got.Strata {
		s := &got.Strata[i]
		if s.Tier == Tier3 {
			continue
		}
		if rep, ok := wantRep[s.Kernel]; !ok || rep != s.Representative {
			t.Fatalf("kernel %s: streaming representative %d, exact %d", s.Kernel, s.Representative, rep)
		}
	}
	// Prediction works on a sampled plan: every representative is resolvable.
	pred, err := got.Predict(func(i int) (float64, error) { return 1000, nil })
	if err != nil {
		t.Fatal(err)
	}
	if pred.IPC <= 0 || pred.Cycles <= 0 {
		t.Fatalf("degenerate prediction %+v", pred)
	}
	// Speedup and cycle CoV refuse partial membership loudly.
	golden := make([]float64, len(profile))
	for i := range golden {
		golden[i] = 100
	}
	if _, err := got.Speedup(golden); err == nil || !strings.Contains(err.Error(), "sampled") {
		t.Fatalf("Speedup on sampled plan: err = %v, want sampled-plan refusal", err)
	}
	if _, err := got.WeightedCycleCoV(golden); err == nil || !strings.Contains(err.Error(), "sampled") {
		t.Fatalf("WeightedCycleCoV on sampled plan: err = %v, want sampled-plan refusal", err)
	}
}

func TestStratifyStreamErrors(t *testing.T) {
	if _, err := StratifyStream(rowSource(nil), StreamOptions{}); err == nil {
		t.Fatal("want error for empty stream")
	}
	bad := []InvocationProfile{{Kernel: "k", Index: 0, InstructionCount: -1, CTASize: 32}}
	if _, err := StratifyStream(rowSource(bad), StreamOptions{}); err == nil {
		t.Fatal("want error for invalid row")
	}
	outOfOrder := []InvocationProfile{
		{Kernel: "k", Index: 1, InstructionCount: 1, CTASize: 32},
		{Kernel: "k", Index: 0, InstructionCount: 1, CTASize: 32},
	}
	if _, err := StratifyStream(rowSource(outOfOrder), StreamOptions{}); err == nil {
		t.Fatal("want error for out-of-order indices")
	}
	opts := StreamOptions{}
	opts.Theta = -2
	if _, err := StratifyStream(rowSource(streamProfile(9, 1)), opts); err == nil {
		t.Fatal("want error for bad theta")
	}
	if _, err := StratifyStream(rowSource(streamProfile(9, 1)), StreamOptions{ReservoirSize: -3}); err == nil {
		t.Fatal("want error for bad reservoir size")
	}
}

// TestStratifyStreamSparseIndices feeds offset, gappy indices end to end:
// stratification, prediction and speedup must resolve positions through the
// plan's mapping, not assume dense 0..n-1 indices.
func TestStratifyStreamSparseIndices(t *testing.T) {
	profile := streamProfile(300, 3)
	for i := range profile {
		profile[i].Index = 1000 + 7*i
	}
	dense := streamProfile(300, 3)

	sparsePlan, err := StratifyStream(rowSource(profile), StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	densePlan, err := StratifyStream(rowSource(dense), StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	golden := make([]float64, len(profile))
	for i := range golden {
		golden[i] = 500 + 3*float64(i%17)
	}
	sparseSp, err := sparsePlan.Speedup(golden)
	if err != nil {
		t.Fatal(err)
	}
	denseSp, err := densePlan.Speedup(golden)
	if err != nil {
		t.Fatal(err)
	}
	if sparseSp != denseSp {
		t.Fatalf("sparse speedup %g != dense %g", sparseSp, denseSp)
	}
}
