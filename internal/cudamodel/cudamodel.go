// Package cudamodel defines the GPU-compute workload model the whole
// reproduction is built on: kernels, kernel invocations, launch
// configurations, and the twelve microarchitecture-independent execution
// characteristics PKS profiles (Table II of the paper), of which Sieve uses
// only one (dynamic instruction count).
//
// An Invocation also carries Hidden microarchitectural behaviour (cache
// locality, DRAM row locality, unit mix, working-set size). Hidden state is
// what real silicon exhibits but microarchitecture-independent profiling
// cannot observe; the hardware timing model consumes it, the profilers never
// expose it. This asymmetry is the paper's central phenomenon: invocations
// that look alike to a profiler can still run for very different cycle
// counts.
package cudamodel

import (
	"fmt"
	"sort"
)

// WarpSize is the number of threads per warp on every NVIDIA architecture
// modeled here.
const WarpSize = 32

// Dim3 is a CUDA grid or block dimension triple.
type Dim3 struct {
	X, Y, Z int32
}

// Count returns the total element count X·Y·Z.
func (d Dim3) Count() int {
	return int(d.X) * int(d.Y) * int(d.Z)
}

// String formats the dimension as "(x, y, z)".
func (d Dim3) String() string {
	return fmt.Sprintf("(%d, %d, %d)", d.X, d.Y, d.Z)
}

// Characteristics holds the twelve microarchitecture-independent execution
// characteristics PKS collects per kernel invocation (Table II). Counters are
// dynamic totals for the invocation; DivergenceEfficiency is a fraction in
// (0, 1].
type Characteristics struct {
	CoalescedGlobalLoads  float64
	CoalescedGlobalStores float64
	CoalescedLocalLoads   float64
	ThreadGlobalLoads     float64
	ThreadGlobalStores    float64
	ThreadLocalLoads      float64
	ThreadSharedLoads     float64
	ThreadSharedStores    float64
	ThreadGlobalAtomics   float64
	InstructionCount      float64
	DivergenceEfficiency  float64
	ThreadBlocks          float64
}

// NumCharacteristics is the dimensionality of the PKS feature space.
const NumCharacteristics = 12

// Vector returns the characteristics as a 12-element feature vector in the
// order of CharacteristicNames.
func (c *Characteristics) Vector() []float64 {
	return []float64{
		c.CoalescedGlobalLoads,
		c.CoalescedGlobalStores,
		c.CoalescedLocalLoads,
		c.ThreadGlobalLoads,
		c.ThreadGlobalStores,
		c.ThreadLocalLoads,
		c.ThreadSharedLoads,
		c.ThreadSharedStores,
		c.ThreadGlobalAtomics,
		c.InstructionCount,
		c.DivergenceEfficiency,
		c.ThreadBlocks,
	}
}

// CharacteristicNames returns the metric names in Vector order, matching
// Table II of the paper.
func CharacteristicNames() []string {
	return []string{
		"coalesced_global_loads",
		"coalesced_global_stores",
		"coalesced_local_loads",
		"thread_global_loads",
		"thread_global_stores",
		"thread_local_loads",
		"thread_shared_loads",
		"thread_shared_stores",
		"thread_global_atomics",
		"instruction_count",
		"divergence_efficiency",
		"thread_blocks",
	}
}

// Hidden is the per-invocation microarchitectural behaviour that real
// hardware exhibits but microarchitecture-independent profiling cannot see.
// The gpu timing model consumes it; profilers must never serialize it.
type Hidden struct {
	// CacheLocality is the fraction of memory transactions served by the
	// cache hierarchy when the working set fits in the L2 (0..1).
	CacheLocality float64
	// RowLocality is the DRAM row-buffer hit fraction, scaling effective
	// DRAM bandwidth (0..1).
	RowLocality float64
	// FP32Fraction is the fraction of instructions eligible for the doubled
	// FP32 datapath introduced with Ampere (0..1).
	FP32Fraction float64
	// TensorFraction is the fraction of work issued to tensor pipes (0..1);
	// significant for the MLPerf workloads.
	TensorFraction float64
	// BankConflictFactor is the shared-memory serialization multiplier (≥1).
	BankConflictFactor float64
	// L2WorkingSet is the invocation's resident working set in bytes,
	// deciding whether CacheLocality applies against a given L2 capacity.
	L2WorkingSet float64
}

// Invocation is one dynamic execution of a kernel.
type Invocation struct {
	// Kernel is the kernel (function) name; invocations of the same kernel
	// share it.
	Kernel string
	// Index is the global chronological invocation index within the
	// workload, starting at 0.
	Index int
	// Seq is the per-kernel invocation sequence number, starting at 0.
	Seq int
	// Grid and Block are the launch dimensions.
	Grid, Block Dim3
	// Chars holds the microarchitecture-independent characteristics.
	Chars Characteristics
	// Hidden holds microarchitecture-dependent behaviour (see Hidden).
	Hidden Hidden
}

// CTASize returns the number of threads per thread block (CTA).
func (inv *Invocation) CTASize() int { return inv.Block.Count() }

// Threads returns the total launched thread count.
func (inv *Invocation) Threads() float64 {
	return float64(inv.Grid.Count()) * float64(inv.Block.Count())
}

// Warps returns the total launched warp count (CTA-padded).
func (inv *Invocation) Warps() float64 {
	warpsPerCTA := float64((inv.CTASize() + WarpSize - 1) / WarpSize)
	return warpsPerCTA * float64(inv.Grid.Count())
}

// Workload is a complete GPU-compute program execution: the chronological
// sequence of kernel invocations.
type Workload struct {
	// Name identifies the workload (e.g. "lmc").
	Name string
	// Suite identifies the benchmark suite (e.g. "Cactus").
	Suite string
	// Invocations is the chronological invocation list. Invocation i must
	// have Index == i.
	Invocations []Invocation
}

// Validate checks the workload's structural invariants: non-empty, indices
// chronological, sequence numbers dense per kernel, positive instruction
// counts, divergence efficiency in (0, 1], and sane launch dims.
func (w *Workload) Validate() error {
	if w.Name == "" {
		return fmt.Errorf("cudamodel: workload has no name")
	}
	if len(w.Invocations) == 0 {
		return fmt.Errorf("cudamodel: workload %q has no invocations", w.Name)
	}
	nextSeq := make(map[string]int)
	for i := range w.Invocations {
		inv := &w.Invocations[i]
		if inv.Index != i {
			return fmt.Errorf("cudamodel: %q invocation %d has index %d", w.Name, i, inv.Index)
		}
		if inv.Kernel == "" {
			return fmt.Errorf("cudamodel: %q invocation %d has no kernel name", w.Name, i)
		}
		if inv.Seq != nextSeq[inv.Kernel] {
			return fmt.Errorf("cudamodel: %q invocation %d of kernel %q has seq %d, want %d",
				w.Name, i, inv.Kernel, inv.Seq, nextSeq[inv.Kernel])
		}
		nextSeq[inv.Kernel]++
		if inv.Chars.InstructionCount <= 0 {
			return fmt.Errorf("cudamodel: %q invocation %d has non-positive instruction count", w.Name, i)
		}
		if inv.Chars.DivergenceEfficiency <= 0 || inv.Chars.DivergenceEfficiency > 1 {
			return fmt.Errorf("cudamodel: %q invocation %d has divergence efficiency %g outside (0, 1]",
				w.Name, i, inv.Chars.DivergenceEfficiency)
		}
		if inv.Grid.Count() <= 0 || inv.Block.Count() <= 0 {
			return fmt.Errorf("cudamodel: %q invocation %d has empty grid or block", w.Name, i)
		}
	}
	return nil
}

// NumInvocations returns the number of kernel invocations.
func (w *Workload) NumInvocations() int { return len(w.Invocations) }

// KernelNames returns the distinct kernel names in sorted order.
func (w *Workload) KernelNames() []string {
	seen := make(map[string]bool)
	var names []string
	for i := range w.Invocations {
		k := w.Invocations[i].Kernel
		if !seen[k] {
			seen[k] = true
			names = append(names, k)
		}
	}
	sort.Strings(names)
	return names
}

// NumKernels returns the number of distinct kernels.
func (w *Workload) NumKernels() int { return len(w.KernelNames()) }

// TotalInstructions returns the workload's total dynamic instruction count.
func (w *Workload) TotalInstructions() float64 {
	var total float64
	for i := range w.Invocations {
		total += w.Invocations[i].Chars.InstructionCount
	}
	return total
}

// InvocationsByKernel returns, per kernel name, the chronological invocation
// indices of that kernel.
func (w *Workload) InvocationsByKernel() map[string][]int {
	byKernel := make(map[string][]int)
	for i := range w.Invocations {
		k := w.Invocations[i].Kernel
		byKernel[k] = append(byKernel[k], i)
	}
	return byKernel
}
