package cudamodel

import (
	"testing"
)

// validInvocation builds a minimal valid invocation for tests.
func validInvocation(kernel string, index, seq int) Invocation {
	return Invocation{
		Kernel: kernel,
		Index:  index,
		Seq:    seq,
		Grid:   Dim3{X: 10, Y: 1, Z: 1},
		Block:  Dim3{X: 256, Y: 1, Z: 1},
		Chars: Characteristics{
			InstructionCount:     1e6,
			DivergenceEfficiency: 1,
			ThreadBlocks:         10,
		},
	}
}

func validWorkload() *Workload {
	return &Workload{
		Name:  "toy",
		Suite: "Test",
		Invocations: []Invocation{
			validInvocation("A", 0, 0),
			validInvocation("B", 1, 0),
			validInvocation("A", 2, 1),
		},
	}
}

func TestDim3Count(t *testing.T) {
	d := Dim3{X: 2, Y: 3, Z: 4}
	if d.Count() != 24 {
		t.Fatalf("Count = %d", d.Count())
	}
	if d.String() != "(2, 3, 4)" {
		t.Fatalf("String = %q", d.String())
	}
}

func TestCharacteristicsVectorOrderMatchesNames(t *testing.T) {
	c := Characteristics{
		CoalescedGlobalLoads:  1,
		CoalescedGlobalStores: 2,
		CoalescedLocalLoads:   3,
		ThreadGlobalLoads:     4,
		ThreadGlobalStores:    5,
		ThreadLocalLoads:      6,
		ThreadSharedLoads:     7,
		ThreadSharedStores:    8,
		ThreadGlobalAtomics:   9,
		InstructionCount:      10,
		DivergenceEfficiency:  11,
		ThreadBlocks:          12,
	}
	v := c.Vector()
	names := CharacteristicNames()
	if len(v) != NumCharacteristics || len(names) != NumCharacteristics {
		t.Fatalf("lengths %d, %d, want %d", len(v), len(names), NumCharacteristics)
	}
	for i, x := range v {
		if x != float64(i+1) {
			t.Fatalf("Vector[%d] = %g, want %d (order mismatch with %q)", i, x, i+1, names[i])
		}
	}
	if names[9] != "instruction_count" {
		t.Fatalf("instruction_count must be the 10th metric, got %q", names[9])
	}
}

func TestInvocationGeometry(t *testing.T) {
	inv := Invocation{
		Grid:  Dim3{X: 4, Y: 2, Z: 1},
		Block: Dim3{X: 33, Y: 1, Z: 1},
	}
	if inv.CTASize() != 33 {
		t.Fatalf("CTASize = %d", inv.CTASize())
	}
	if inv.Threads() != 8*33 {
		t.Fatalf("Threads = %g", inv.Threads())
	}
	// 33 threads → 2 warps per CTA (padding), 8 CTAs → 16 warps.
	if inv.Warps() != 16 {
		t.Fatalf("Warps = %g", inv.Warps())
	}
}

func TestValidateAcceptsValidWorkload(t *testing.T) {
	if err := validWorkload().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejections(t *testing.T) {
	mutate := func(f func(w *Workload)) *Workload {
		w := validWorkload()
		f(w)
		return w
	}
	cases := []struct {
		name string
		w    *Workload
	}{
		{"no name", mutate(func(w *Workload) { w.Name = "" })},
		{"no invocations", &Workload{Name: "x"}},
		{"bad index", mutate(func(w *Workload) { w.Invocations[1].Index = 5 })},
		{"no kernel name", mutate(func(w *Workload) { w.Invocations[0].Kernel = "" })},
		{"bad seq", mutate(func(w *Workload) { w.Invocations[2].Seq = 7 })},
		{"zero instructions", mutate(func(w *Workload) { w.Invocations[0].Chars.InstructionCount = 0 })},
		{"bad divergence", mutate(func(w *Workload) { w.Invocations[0].Chars.DivergenceEfficiency = 1.5 })},
		{"zero divergence", mutate(func(w *Workload) { w.Invocations[0].Chars.DivergenceEfficiency = 0 })},
		{"empty grid", mutate(func(w *Workload) { w.Invocations[0].Grid = Dim3{} })},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.w.Validate(); err == nil {
				t.Fatal("want validation error")
			}
		})
	}
}

func TestWorkloadAggregates(t *testing.T) {
	w := validWorkload()
	if w.NumInvocations() != 3 {
		t.Fatalf("NumInvocations = %d", w.NumInvocations())
	}
	names := w.KernelNames()
	if len(names) != 2 || names[0] != "A" || names[1] != "B" {
		t.Fatalf("KernelNames = %v", names)
	}
	if w.NumKernels() != 2 {
		t.Fatalf("NumKernels = %d", w.NumKernels())
	}
	if w.TotalInstructions() != 3e6 {
		t.Fatalf("TotalInstructions = %g", w.TotalInstructions())
	}
}

func TestInvocationsByKernel(t *testing.T) {
	w := validWorkload()
	byK := w.InvocationsByKernel()
	if len(byK) != 2 {
		t.Fatalf("groups = %d", len(byK))
	}
	a := byK["A"]
	if len(a) != 2 || a[0] != 0 || a[1] != 2 {
		t.Fatalf("A indices = %v", a)
	}
	b := byK["B"]
	if len(b) != 1 || b[0] != 1 {
		t.Fatalf("B indices = %v", b)
	}
	// Indices must be chronological.
	for _, idxs := range byK {
		for i := 1; i < len(idxs); i++ {
			if idxs[i] <= idxs[i-1] {
				t.Fatal("indices out of order")
			}
		}
	}
}
