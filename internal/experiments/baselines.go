package experiments

import (
	"fmt"

	"github.com/gpusampling/sieve/internal/gpu"
	"github.com/gpusampling/sieve/internal/pks"
	"github.com/gpusampling/sieve/internal/sim"
	"github.com/gpusampling/sieve/internal/stats"
	"github.com/gpusampling/sieve/internal/trace"
)

// Three-way baseline comparison: Sieve versus PKS (k-means) versus a
// TBPoint-style variant (agglomerative hierarchical clustering over the same
// 12 characteristics) — the progression of prior work the paper's related-
// work section describes.

// BaselineRow is one workload's error under each method.
type BaselineRow struct {
	Name    string
	Sieve   float64
	PKS     float64
	TBPoint float64
}

// Baselines compares the three methods on the challenging suites.
func (r *Runner) Baselines() ([]BaselineRow, error) {
	var rows []BaselineRow
	for _, name := range challengingNames() {
		p, err := r.get(name)
		if err != nil {
			return nil, err
		}
		src := cyclesFrom(p.golden)
		row := BaselineRow{Name: name}

		sievePred, err := p.sieve.Predict(src)
		if err != nil {
			return nil, err
		}
		row.Sieve = relErr(sievePred.Cycles, p.total)

		pksPred, err := p.pks.PredictCycles(src)
		if err != nil {
			return nil, err
		}
		row.PKS = relErr(pksPred, p.total)

		tb, err := pks.Select(p.features, p.golden, pks.Options{
			Seed: r.cfg.Seed, Clustering: pks.AlgoHierarchical,
			Parallelism: r.cfg.Parallelism,
		})
		if err != nil {
			return nil, fmt.Errorf("%s: tbpoint: %w", name, err)
		}
		tbPred, err := tb.PredictCycles(src)
		if err != nil {
			return nil, err
		}
		row.TBPoint = relErr(tbPred, p.total)
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderBaselines formats the three-way comparison.
func RenderBaselines(rows []BaselineRow) *Table {
	t := &Table{
		Title:  "Baselines: Sieve vs PKS (k-means) vs TBPoint-style (hierarchical)",
		Header: []string{"workload", "Sieve", "PKS", "TBPoint-style"},
	}
	var s, p, tb float64
	for _, row := range rows {
		t.Rows = append(t.Rows, []string{row.Name, pct(row.Sieve), pct(row.PKS), pct(row.TBPoint)})
		s += row.Sieve
		p += row.PKS
		tb += row.TBPoint
	}
	n := float64(len(rows))
	t.Rows = append(t.Rows, []string{"average", pct(s / n), pct(p / n), pct(tb / n)})
	t.Notes = append(t.Notes,
		"the related-work progression: hierarchical clustering (TBPoint) -> k-means",
		"with a golden-referenced k (PKS) -> per-kernel stratification (Sieve)")
	return t
}

// --- analytical-model / detailed-simulator cross-validation --------------------

// XValRow correlates the analytical hardware model with the trace-driven
// simulator on one workload's representatives. The two substrates are
// independent implementations; a strong rank correlation between their
// per-representative IPC orderings is the reproduction's internal
// consistency check.
type XValRow struct {
	Name            string
	Representatives int
	// Spearman is the rank correlation between analytical and simulated
	// IPC across the representatives.
	Spearman float64
}

// xvalWorkloads bounds the simulation work.
var xvalWorkloads = []string{"gms", "lmc", "bert"}

// CrossValidate traces every representative of a few workloads, simulates
// them, and rank-correlates simulated IPC with the analytical model's IPC.
func (r *Runner) CrossValidate(maxWarpInstrs int) ([]XValRow, error) {
	if maxWarpInstrs <= 0 {
		maxWarpInstrs = 60000
	}
	simulator, err := sim.New(gpu.Ampere())
	if err != nil {
		return nil, err
	}
	var rows []XValRow
	for _, name := range xvalWorkloads {
		p, err := r.get(name)
		if err != nil {
			return nil, err
		}
		var analytical, simulated []float64
		for _, idx := range p.sieve.RepresentativeIndices() {
			inv := &p.w.Invocations[idx]
			tr, err := trace.Generate(inv, maxWarpInstrs, r.cfg.Seed)
			if err != nil {
				return nil, err
			}
			res, err := simulator.Simulate(tr)
			if err != nil {
				return nil, err
			}
			analytical = append(analytical, p.hw.IPC(inv))
			simulated = append(simulated, res.IPC)
		}
		rho, err := stats.Spearman(analytical, simulated)
		if err != nil {
			return nil, err
		}
		rows = append(rows, XValRow{
			Name:            name,
			Representatives: len(analytical),
			Spearman:        rho,
		})
	}
	return rows, nil
}

// RenderXVal formats the cross-validation study.
func RenderXVal(rows []XValRow) *Table {
	t := &Table{
		Title:  "Cross-validation: analytical hardware model vs trace-driven simulator",
		Header: []string{"workload", "representatives", "Spearman(IPC)"},
	}
	for _, row := range rows {
		t.Rows = append(t.Rows, []string{
			row.Name, fmt.Sprintf("%d", row.Representatives), fmt.Sprintf("%.3f", row.Spearman),
		})
	}
	t.Notes = append(t.Notes,
		"the analytical golden-reference model and the cycle-level simulator are",
		"independent implementations; a high rank correlation of per-representative",
		"IPC is the reproduction's internal consistency check")
	return t
}
