package experiments

import (
	"fmt"

	"github.com/gpusampling/sieve/internal/gpu"
	"github.com/gpusampling/sieve/internal/stats"
)

// Design-space exploration: the whole point of a sampling methodology
// (Fig. 1 of the paper: the representative kernel invocations "drive
// architecture design space exploration"). Sieve selects representatives
// once — from a microarchitecture-independent profile — and the same plan is
// then evaluated on every candidate configuration. This study sweeps the
// Ampere baseline across SM count and DRAM bandwidth and checks that the
// sampled prediction tracks the golden full-run measurement at every design
// point.

// DSEPoint is one design point's outcome for one workload.
type DSEPoint struct {
	// Config describes the swept parameters.
	SMs          int
	BandwidthGBs float64
	// GoldenCycles and PredictedCycles compare the full run with the
	// Sieve-sampled prediction on this configuration.
	GoldenCycles, PredictedCycles float64
	// Error is |predicted-golden|/golden.
	Error float64
	// SpeedupVsBase is the golden performance of this point relative to the
	// baseline configuration (wall-clock, same clock assumed).
	SpeedupVsBase float64
}

// DSEResult is the sweep for one workload.
type DSEResult struct {
	Name   string
	Points []DSEPoint
	// MaxError and MeanError aggregate the per-point prediction errors.
	MaxError, MeanError float64
	// RankFidelity is 1 when the sampled predictions order every pair of
	// design points the same way the golden measurements do (Kendall-style
	// pairwise concordance).
	RankFidelity float64
}

// dseSweep enumerates the swept configurations: SM count and memory
// bandwidth each at 50%, 75%, 100%, 125% and 150% of the Ampere baseline
// (varied one at a time, plus the corners).
func dseSweep() []gpu.Arch {
	base := gpu.Ampere()
	factors := []float64{0.5, 0.75, 1.0, 1.25, 1.5}
	var out []gpu.Arch
	seen := map[string]bool{}
	add := func(smF, bwF float64) {
		a := base
		a.SMs = int(float64(base.SMs)*smF + 0.5)
		a.DRAMBandwidthGBs = base.DRAMBandwidthGBs * bwF
		a.Name = fmt.Sprintf("ampere-sm%.2f-bw%.2f", smF, bwF)
		if !seen[a.Name] {
			seen[a.Name] = true
			out = append(out, a)
		}
	}
	for _, f := range factors {
		add(f, 1.0)
		add(1.0, f)
	}
	add(0.5, 0.5)
	add(1.5, 1.5)
	return out
}

// dseWorkloads is the subset swept; enough to cover memory-bound,
// compute-heavy and tensor-heavy behaviour without a quadratic runtime.
var dseWorkloads = []string{"lmc", "dcg", "bert", "rnnt"}

// DSE runs the design-space exploration study.
func (r *Runner) DSE() ([]DSEResult, error) {
	configs := dseSweep()
	var out []DSEResult
	for _, name := range dseWorkloads {
		p, err := r.get(name)
		if err != nil {
			return nil, err
		}
		res := DSEResult{Name: name}
		var baseGolden float64
		var errSum float64
		for ci, arch := range configs {
			model, err := gpu.NewModel(arch)
			if err != nil {
				return nil, err
			}
			// Golden: measure every invocation on this configuration.
			golden := model.MeasureWorkload(p.w)
			total := stats.Sum(golden)
			// Sampled: measure only the representatives, reuse the plan.
			pred, err := p.sieve.Predict(cyclesFrom(golden))
			if err != nil {
				return nil, fmt.Errorf("%s @ %s: %w", name, arch.Name, err)
			}
			if ci == 0 {
				baseGolden = total
			}
			point := DSEPoint{
				SMs:             arch.SMs,
				BandwidthGBs:    arch.DRAMBandwidthGBs,
				GoldenCycles:    total,
				PredictedCycles: pred.Cycles,
				Error:           relErr(pred.Cycles, total),
				SpeedupVsBase:   baseGolden / total,
			}
			res.Points = append(res.Points, point)
			errSum += point.Error
			if point.Error > res.MaxError {
				res.MaxError = point.Error
			}
		}
		res.MeanError = errSum / float64(len(res.Points))
		res.RankFidelity = rankFidelity(res.Points)
		out = append(out, res)
	}
	return out, nil
}

// rankFidelity is the fraction of design-point pairs ordered identically by
// golden and predicted cycles (pairwise concordance; ties count as
// concordant).
func rankFidelity(points []DSEPoint) float64 {
	if len(points) < 2 {
		return 1
	}
	concordant, pairs := 0, 0
	for i := 0; i < len(points); i++ {
		for j := i + 1; j < len(points); j++ {
			pairs++
			g := sign(points[i].GoldenCycles - points[j].GoldenCycles)
			p := sign(points[i].PredictedCycles - points[j].PredictedCycles)
			if g == p || g == 0 || p == 0 {
				concordant++
			}
		}
	}
	return float64(concordant) / float64(pairs)
}

func sign(x float64) int {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	default:
		return 0
	}
}

// RenderDSE formats the design-space exploration study.
func RenderDSE(results []DSEResult) *Table {
	t := &Table{
		Title:  "Design-space exploration: Sieve representatives reused across configurations",
		Header: []string{"workload", "design points", "mean err", "max err", "rank fidelity"},
	}
	for _, res := range results {
		t.Rows = append(t.Rows, []string{
			res.Name,
			fmt.Sprintf("%d", len(res.Points)),
			pct(res.MeanError),
			pct(res.MaxError),
			pct(res.RankFidelity),
		})
	}
	t.Notes = append(t.Notes,
		"the plan is selected once from the microarchitecture-independent profile and",
		"evaluated on every swept configuration (SMs and DRAM bandwidth at 50%-150%)")
	return t
}
