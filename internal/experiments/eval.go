// Package experiments is the reproduction harness: one function per table
// and figure of the paper's evaluation (Section V), producing printable rows
// and machine-readable results. cmd/experiments and the root bench suite are
// thin wrappers around this package.
package experiments

import (
	"context"
	"fmt"
	"io"

	"github.com/gpusampling/sieve/internal/core"
	"github.com/gpusampling/sieve/internal/cudamodel"
	"github.com/gpusampling/sieve/internal/gpu"
	"github.com/gpusampling/sieve/internal/pks"
	"github.com/gpusampling/sieve/internal/profiler"
	"github.com/gpusampling/sieve/internal/sampler"
	"github.com/gpusampling/sieve/internal/stats"
	"github.com/gpusampling/sieve/internal/workloads"

	// Link the alternate sampling methodologies into the evaluation so the
	// accuracy tables can compare every registered strategy.
	_ "github.com/gpusampling/sieve/internal/sampler/rss"
	_ "github.com/gpusampling/sieve/internal/sampler/twophase"
)

// Config holds the experiment-wide knobs.
type Config struct {
	// Scale is the workload generation scale in (0, 1]; 0 selects
	// DefaultScale.
	Scale float64
	// Theta is Sieve's CoV threshold; 0 selects core.DefaultTheta.
	Theta float64
	// Seed drives PKS's k-means and random selection.
	Seed int64
	// Parallelism bounds the workers inside the sampling pipelines
	// (stratification fan-out, PKS k-sweep); 0 selects GOMAXPROCS,
	// 1 forces sequential execution. Results are identical either way.
	Parallelism int
	// Stream routes Sieve stratification through the bounded-memory
	// streaming pipeline (core.StratifyStream) instead of the materializing
	// one. With the default ReservoirSize every experiment-scale kernel
	// fits its reservoir, so tables and figures are unchanged.
	Stream bool
	// ReservoirSize bounds the rows retained per kernel in Stream mode;
	// 0 selects a generous default that keeps experiment-scale workloads
	// exact (the evaluation needs full membership lists for Speedup and
	// WeightedCycleCoV).
	ReservoirSize int
	// Ctx, when non-nil, is the context every sampling pipeline runs under;
	// attach an obs.Collector to it (cmd/experiments -report/-trace-out) to
	// record per-stage spans across all experiments. Nil means Background.
	Ctx context.Context
	// Methods restricts which sampling methodologies the accuracy
	// comparisons evaluate (canonical names, e.g. "sieve", "pks",
	// "twophase", "rss"); nil or empty selects every registered strategy.
	// Sieve and PKS are always prepared regardless — the other figures
	// need their plans — so the filter only prunes the extra strategies.
	Methods []string
}

// methodNames resolves the methodology list for the accuracy comparisons:
// the configured subset, or every registered strategy with the two paper
// baselines leading for readable tables.
func (c Config) methodNames() []string {
	if len(c.Methods) > 0 {
		return c.Methods
	}
	names := []string{core.MethodSieve, sampler.MethodPKS}
	for _, n := range sampler.Names() {
		if n != core.MethodSieve && n != sampler.MethodPKS {
			names = append(names, n)
		}
	}
	return names
}

// ctx returns the configured context, defaulting to Background.
func (c Config) ctx() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}

// DefaultScale keeps full-suite experiments laptop-sized while preserving the
// distributional shapes the experiments measure.
const DefaultScale = 0.05

func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = DefaultScale
	}
	if c.Theta == 0 {
		c.Theta = core.DefaultTheta
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.ReservoirSize == 0 {
		c.ReservoirSize = 1 << 20
	}
	return c
}

// stratify runs Sieve stratification at the given θ through whichever
// pipeline the config selects — every experiment call site goes through
// here so -stream exercises the streaming path end to end.
func (c Config) stratify(rows []core.InvocationProfile, theta float64) (*core.Result, error) {
	opts := core.Options{Theta: theta, Parallelism: c.Parallelism}
	if !c.Stream {
		return core.StratifyContext(c.ctx(), rows, opts)
	}
	i := 0
	return core.StratifyStreamContext(c.ctx(), func() (core.InvocationProfile, error) {
		if i >= len(rows) {
			return core.InvocationProfile{}, io.EOF
		}
		r := rows[i]
		i++
		return r, nil
	}, core.StreamOptions{Options: opts, ReservoirSize: c.ReservoirSize})
}

// Evaluation is the per-workload comparison of Sieve and PKS on one
// architecture — the raw material of Figs. 3–6 and 8.
type Evaluation struct {
	Name  string
	Suite string

	Invocations int
	Kernels     int

	GoldenCycles float64 // total measured cycles (golden reference)

	SieveError   float64 // |predicted-measured|/measured
	SieveSpeedup float64
	SieveCoV     float64 // weighted within-stratum cycle CoV
	SieveStrata  int

	PKSError    float64
	PKSSpeedup  float64
	PKSCoV      float64
	PKSClusters int

	// Methods is the full methodology comparison (sieve and pks included,
	// mirroring the legacy fields above), one entry per evaluated strategy in
	// table order.
	Methods []MethodEval
}

// MethodEval is one sampling methodology's accuracy on one workload.
type MethodEval struct {
	// Method is the canonical registry name.
	Method string
	// Error is |predicted-measured|/measured cycles.
	Error float64
	// Units is the number of sampling units backing the plan (strata for the
	// stratified methods, clusters for pks).
	Units int
	// Interval is the methodology's own error confidence interval, when the
	// strategy quantifies one (twophase, rss); nil otherwise.
	Interval *core.ErrorInterval
}

// methodRows returns the evaluation's per-method comparison, synthesizing
// the two legacy columns for evaluations built before Methods existed (or
// synthetic test fixtures that only populate them).
func (ev *Evaluation) methodRows() []MethodEval {
	if len(ev.Methods) > 0 {
		return ev.Methods
	}
	return []MethodEval{
		{Method: core.MethodSieve, Error: ev.SieveError, Units: ev.SieveStrata},
		{Method: sampler.MethodPKS, Error: ev.PKSError, Units: ev.PKSClusters},
	}
}

// prepared bundles the expensive per-workload artifacts shared by the
// figures: the generated workload, golden cycles and both sampling plans.
type prepared struct {
	w      *cudamodel.Workload
	hw     *gpu.Model
	golden []float64
	total  float64

	sieveProfile []core.InvocationProfile
	sieve        *core.Result
	sieveProfSec float64 // modeled instruction-count profiling time

	features    [][]float64
	pks         *pks.Result
	fullProfSec float64 // modeled 12-metric profiling time

	// methodPlans holds the registry-built plans of the extra strategies
	// (twophase, rss, …) keyed by method name; sieve and pks live in their
	// dedicated fields above.
	methodPlans map[string]*core.Result
}

// prepare generates the workload and runs both sampling pipelines on the
// baseline (Ampere) hardware model.
func prepare(spec workloads.Spec, cfg Config) (*prepared, error) {
	cfg = cfg.withDefaults()
	w, err := workloads.Generate(spec, cfg.Scale)
	if err != nil {
		return nil, err
	}
	hw, err := gpu.NewModel(gpu.Ampere())
	if err != nil {
		return nil, err
	}
	p := &prepared{w: w, hw: hw}
	p.golden = hw.MeasureWorkload(w)
	p.total = stats.Sum(p.golden)

	// Sieve pipeline: instruction-count profile → stratification.
	icProf, err := profiler.NewInstructionCountProfiler().Profile(w, hw)
	if err != nil {
		return nil, err
	}
	p.sieveProfile = SieveProfile(icProf)
	p.sieveProfSec = icProf.WallSeconds
	p.sieve, err = cfg.stratify(p.sieveProfile, cfg.Theta)
	if err != nil {
		return nil, err
	}

	// PKS pipeline: full profile → PCA → k-means with golden k-selection.
	fullProf, err := profiler.NewFullProfiler().Profile(w, hw)
	if err != nil {
		return nil, err
	}
	p.features = FeatureRows(fullProf)
	p.fullProfSec = fullProf.WallSeconds
	p.pks, err = pks.SelectContext(cfg.ctx(), p.features, p.golden, pks.Options{Seed: cfg.Seed, Parallelism: cfg.Parallelism})
	if err != nil {
		return nil, err
	}

	// Extra strategies from the sampler registry (twophase, rss, …), planned
	// from the same rows so the accuracy tables compare methodologies on
	// identical inputs.
	p.methodPlans = make(map[string]*core.Result)
	sp := &sampler.Profile{Rows: p.sieveProfile, Features: p.features, GoldenCycles: p.golden}
	for _, m := range cfg.methodNames() {
		if m == core.MethodSieve || m == sampler.MethodPKS {
			continue
		}
		plan, err := sampler.Run(cfg.ctx(), m, sp, sampler.Options{
			Core: core.Options{Theta: cfg.Theta, Parallelism: cfg.Parallelism},
			Seed: cfg.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %s plan: %w", spec.Name, m, err)
		}
		p.methodPlans[m] = plan
	}
	return p, nil
}

// methodEvals builds the per-methodology accuracy rows for one prepared
// workload, reusing the already-computed sieve and pks errors.
func (p *prepared) methodEvals(cfg Config, sieveErr, pksErr float64) ([]MethodEval, error) {
	src := cyclesFrom(p.golden)
	var out []MethodEval
	for _, m := range cfg.methodNames() {
		switch m {
		case core.MethodSieve:
			out = append(out, MethodEval{Method: m, Error: sieveErr, Units: p.sieve.NumStrata()})
		case sampler.MethodPKS:
			out = append(out, MethodEval{Method: m, Error: pksErr, Units: p.pks.K})
		default:
			plan, ok := p.methodPlans[m]
			if !ok {
				return nil, fmt.Errorf("method %q was not prepared (configured after Warm?)", m)
			}
			pred, err := plan.Predict(src)
			if err != nil {
				return nil, fmt.Errorf("%s predict: %w", m, err)
			}
			out = append(out, MethodEval{
				Method:   m,
				Error:    relErr(pred.Cycles, p.total),
				Units:    plan.NumStrata(),
				Interval: plan.Interval,
			})
		}
	}
	return out, nil
}

// SieveProfile converts a profiler table into Sieve's input rows.
func SieveProfile(p *profiler.Profile) []core.InvocationProfile {
	out := make([]core.InvocationProfile, len(p.Records))
	for i, r := range p.Records {
		out[i] = core.InvocationProfile{
			Kernel:           r.Kernel,
			Index:            r.Index,
			InstructionCount: r.Chars.InstructionCount,
			CTASize:          r.CTASize,
		}
	}
	return out
}

// FeatureRows converts a full profiler table into PKS's 12-D feature rows.
func FeatureRows(p *profiler.Profile) [][]float64 {
	out := make([][]float64, len(p.Records))
	for i := range p.Records {
		out[i] = p.Records[i].Chars.Vector()
	}
	return out
}

// cyclesFrom adapts a golden cycle slice into a CycleSource.
func cyclesFrom(golden []float64) func(int) (float64, error) {
	return func(i int) (float64, error) {
		if i < 0 || i >= len(golden) {
			return 0, fmt.Errorf("invocation %d outside measured range %d", i, len(golden))
		}
		return golden[i], nil
	}
}

// EvaluateWorkload runs the full Sieve-vs-PKS comparison for one workload on
// the baseline architecture.
func EvaluateWorkload(spec workloads.Spec, cfg Config) (*Evaluation, error) {
	p, err := prepare(spec, cfg)
	if err != nil {
		return nil, err
	}
	ev := &Evaluation{
		Name:         spec.Name,
		Suite:        spec.Suite,
		Invocations:  p.w.NumInvocations(),
		Kernels:      p.w.NumKernels(),
		GoldenCycles: p.total,
		SieveStrata:  p.sieve.NumStrata(),
		PKSClusters:  p.pks.K,
	}

	sievePred, err := p.sieve.Predict(cyclesFrom(p.golden))
	if err != nil {
		return nil, fmt.Errorf("%s: sieve predict: %w", spec.Name, err)
	}
	if ev.SieveError, err = stats.AbsRelError(sievePred.Cycles, p.total); err != nil {
		return nil, err
	}
	if ev.SieveSpeedup, err = p.sieve.Speedup(p.golden); err != nil {
		return nil, err
	}
	if ev.SieveCoV, err = p.sieve.WeightedCycleCoV(p.golden); err != nil {
		return nil, err
	}

	pksPred, err := p.pks.PredictCycles(cyclesFrom(p.golden))
	if err != nil {
		return nil, fmt.Errorf("%s: pks predict: %w", spec.Name, err)
	}
	if ev.PKSError, err = stats.AbsRelError(pksPred, p.total); err != nil {
		return nil, err
	}
	if ev.PKSSpeedup, err = p.pks.Speedup(p.golden); err != nil {
		return nil, err
	}
	if ev.PKSCoV, err = p.pks.WeightedCycleCoV(p.golden); err != nil {
		return nil, err
	}
	if ev.Methods, err = p.methodEvals(cfg, ev.SieveError, ev.PKSError); err != nil {
		return nil, fmt.Errorf("%s: %w", spec.Name, err)
	}
	return ev, nil
}
