package experiments

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"github.com/gpusampling/sieve/internal/core"
	"github.com/gpusampling/sieve/internal/cudamodel"
	"github.com/gpusampling/sieve/internal/workloads"
)

// testCfg keeps test runs small; the floor in the generator means tiny
// workloads are still exercised in full.
var testCfg = Config{Scale: 0.01}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Scale != DefaultScale || c.Theta == 0 || c.Seed == 0 {
		t.Fatalf("defaults = %+v", c)
	}
}

func TestTable2Shape(t *testing.T) {
	tab := Table2()
	if len(tab.Rows) != cudamodel.NumCharacteristics {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	sieveCount := 0
	for _, row := range tab.Rows {
		if row[1] != "x" {
			t.Fatalf("PKS must collect every metric, row %v", row)
		}
		if row[2] == "x" {
			sieveCount++
			if row[0] != "instruction_count" {
				t.Fatalf("Sieve collects %s", row[0])
			}
		}
	}
	if sieveCount != 1 {
		t.Fatalf("Sieve collects %d metrics, want 1", sieveCount)
	}
}

func TestTablePrint(t *testing.T) {
	tab := &Table{
		Title:  "demo",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"x", "y"}},
		Notes:  []string{"note"},
	}
	var buf bytes.Buffer
	if err := tab.Print(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"demo", "a", "x", "note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("printed table missing %q:\n%s", want, out)
		}
	}
}

func TestEvaluateWorkloadBasics(t *testing.T) {
	spec, err := workloads.ByName("gru")
	if err != nil {
		t.Fatal(err)
	}
	ev, err := EvaluateWorkload(spec, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Name != "gru" || ev.Suite != workloads.SuiteCactus {
		t.Fatalf("identity %s/%s", ev.Suite, ev.Name)
	}
	if ev.SieveError < 0 || ev.PKSError < 0 {
		t.Fatal("negative errors")
	}
	if ev.SieveSpeedup <= 1 || ev.PKSSpeedup <= 1 {
		t.Fatalf("speedups must exceed 1: %g, %g", ev.SieveSpeedup, ev.PKSSpeedup)
	}
	if ev.SieveStrata < ev.Kernels {
		t.Fatalf("Sieve has %d strata for %d kernels; at least one per kernel required", ev.SieveStrata, ev.Kernels)
	}
	if ev.PKSClusters < 1 || ev.PKSClusters > 20 {
		t.Fatalf("PKS clusters = %d", ev.PKSClusters)
	}
}

func TestRunnerMemoizes(t *testing.T) {
	r := NewRunner(testCfg)
	a, err := r.get("lbm")
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.get("lbm")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("runner did not memoize")
	}
	if names := r.sortedCacheNames(); len(names) != 1 || names[0] != "lbm" {
		t.Fatalf("cache = %v", names)
	}
}

func TestRunnerWarmParallel(t *testing.T) {
	r := NewRunner(testCfg)
	if err := r.Warm([]string{"lbm", "histo", "dwt2d"}, 3); err != nil {
		t.Fatal(err)
	}
	if got := len(r.sortedCacheNames()); got != 3 {
		t.Fatalf("warmed %d workloads", got)
	}
	if err := r.Warm([]string{"no-such-workload"}, 1); err == nil {
		t.Fatal("want error for unknown workload")
	}
}

// TestHeadlineShape is the integration check for the paper's central claim
// (Fig. 3): on the challenging suites Sieve is substantially more accurate
// than PKS, while both are accurate on a traditional workload.
func TestHeadlineShape(t *testing.T) {
	if testing.Short() {
		t.Skip("integration shape test")
	}
	r := NewRunner(Config{Scale: 0.02})
	challenging := []string{"lmc", "dcg", "nst", "spt", "rnnt"}
	evs, err := r.Evaluations(challenging)
	if err != nil {
		t.Fatal(err)
	}
	var sieveSum, pksSum float64
	for _, ev := range evs {
		sieveSum += ev.SieveError
		pksSum += ev.PKSError
		if ev.SieveCoV >= ev.PKSCoV {
			t.Errorf("%s: Sieve stratum CoV %.3f not below PKS cluster CoV %.3f",
				ev.Name, ev.SieveCoV, ev.PKSCoV)
		}
	}
	n := float64(len(evs))
	sieveAvg, pksAvg := sieveSum/n, pksSum/n
	if sieveAvg > 0.05 {
		t.Fatalf("Sieve average error %.2f%% exceeds 5%%", 100*sieveAvg)
	}
	if pksAvg < 3*sieveAvg {
		t.Fatalf("PKS average error %.2f%% not substantially above Sieve %.2f%%",
			100*pksAvg, 100*sieveAvg)
	}
	// A traditional workload: both methods accurate.
	lbm, err := r.evaluate("lbm")
	if err != nil {
		t.Fatal(err)
	}
	if lbm.SieveError > 0.05 || lbm.PKSError > 0.1 {
		t.Fatalf("traditional workload should be easy: sieve %.2f%%, pks %.2f%%",
			100*lbm.SieveError, 100*lbm.PKSError)
	}
}

func TestFig2FractionsSumToOne(t *testing.T) {
	r := NewRunner(testCfg)
	// Restrict to two representative workloads to keep the test quick.
	for _, name := range []string{"gms", "gst"} {
		p, err := r.get(name)
		if err != nil {
			t.Fatal(err)
		}
		fr, err := coreTierFractions(p)
		if err != nil {
			t.Fatal(err)
		}
		for ti, f := range fr {
			if math.Abs(f[0]+f[1]+f[2]-1) > 1e-9 {
				t.Fatalf("%s θ=%g fractions %v do not sum to 1", name, Fig2Thetas[ti], f)
			}
		}
		if name == "gms" {
			// gms: essentially no Tier-3 even at the tightest threshold.
			if fr[0][2] > 0.05 {
				t.Fatalf("gms Tier-3 fraction %g at θ=0.1, expected ~0", fr[0][2])
			}
		}
		if name == "gst" {
			// gst: majority Tier-3 at θ=0.5.
			if fr[1][2] < 0.4 {
				t.Fatalf("gst Tier-3 fraction %g at θ=0.5, expected > 0.4", fr[1][2])
			}
		}
	}
}

func TestFig7ProfilingShape(t *testing.T) {
	r := NewRunner(testCfg)
	rows := []ProfilingRow{}
	for _, name := range []string{"gru", "gms", "bert", "resnet50"} {
		p, err := r.get(name)
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, ProfilingRow{
			Name: name, Suite: p.w.Suite,
			FullSeconds: p.fullProfSec, InstrSeconds: p.sieveProfSec,
		})
	}
	var cactus, mlperf []float64
	for _, row := range rows {
		if row.Speedup() <= 1 {
			t.Fatalf("%s: profiling speedup %.2f not above 1", row.Name, row.Speedup())
		}
		if row.Suite == workloads.SuiteCactus {
			cactus = append(cactus, row.Speedup())
		} else {
			mlperf = append(mlperf, row.Speedup())
		}
	}
	// MLPerf's instruction-type diversity makes full profiling relatively
	// costlier (paper's Fig. 7 observation).
	if avg(mlperf) <= avg(cactus) {
		t.Fatalf("MLPerf profiling speedup %.1f should exceed Cactus %.1f", avg(mlperf), avg(cactus))
	}
	tab, err := RenderFig7(rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(rows)+2 {
		t.Fatalf("rendered rows = %d", len(tab.Rows))
	}
}

func TestFig9ExcludesRflAndMLPerf(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-arch integration test")
	}
	r := NewRunner(testCfg)
	rows, err := r.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 { // 10 Cactus workloads minus rfl
		t.Fatalf("Fig. 9 has %d rows, want 9", len(rows))
	}
	for _, row := range rows {
		if row.Name == "rfl" {
			t.Fatal("rfl must be excluded per the paper")
		}
		if row.Golden <= 0 || row.Sieve <= 0 || row.PKS <= 0 {
			t.Fatalf("non-positive speedups in %+v", row)
		}
	}
	tab := RenderFig9(rows)
	if len(tab.Rows) != len(rows)+2 {
		t.Fatalf("rendered rows = %d", len(tab.Rows))
	}
}

func TestFig10ThetaTrend(t *testing.T) {
	if testing.Short() {
		t.Skip("θ sweep integration test")
	}
	// Use a private sweep over two workloads for speed: tight θ must not be
	// less accurate than loose θ, and speedup must not grow when tightening.
	r := NewRunner(testCfg)
	type point struct{ err, sp float64 }
	sweep := func(theta float64) point {
		var errSum float64
		var sps []float64
		for _, name := range []string{"lmc", "rnnt"} {
			p, err := r.get(name)
			if err != nil {
				t.Fatal(err)
			}
			res, err := coreStratifyAt(p, theta)
			if err != nil {
				t.Fatal(err)
			}
			pred, err := res.Predict(cyclesFrom(p.golden))
			if err != nil {
				t.Fatal(err)
			}
			errSum += relErr(pred.Cycles, p.total)
			sp, err := res.Speedup(p.golden)
			if err != nil {
				t.Fatal(err)
			}
			sps = append(sps, sp)
		}
		return point{err: errSum / 2, sp: avg(sps)}
	}
	tight := sweep(0.1)
	loose := sweep(1.0)
	if tight.err > loose.err+0.02 {
		t.Fatalf("θ=0.1 error %.3f clearly above θ=1.0 error %.3f", tight.err, loose.err)
	}
	if tight.sp > loose.sp*1.5 {
		t.Fatalf("tightening θ should not raise speedup: %.1f vs %.1f", tight.sp, loose.sp)
	}
}

// coreTierFractions and coreStratifyAt are tiny indirections so the tests
// exercise the same code paths the figures use.
func coreTierFractions(p *prepared) ([][3]float64, error) {
	return tierFractionsForTest(p)
}

func tierFractionsForTest(p *prepared) ([][3]float64, error) {
	return coreTierFractionsImpl(p)
}

func avg(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func coreTierFractionsImpl(p *prepared) ([][3]float64, error) {
	return core.TierFractions(p.sieveProfile, Fig2Thetas)
}

func coreStratifyAt(p *prepared, theta float64) (*core.Result, error) {
	return core.Stratify(p.sieveProfile, core.Options{Theta: theta})
}

// TestStreamConfigMatchesMaterialized: with the default (exact-at-scale)
// reservoir, routing the experiments through the streaming pipeline must
// reproduce the materialized plan byte for byte, so every figure and table
// is unchanged under -stream.
func TestStreamConfigMatchesMaterialized(t *testing.T) {
	spec, err := workloads.ByName("gru")
	if err != nil {
		t.Fatal(err)
	}
	exact, err := prepare(spec, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	streamCfg := testCfg
	streamCfg.Stream = true
	streamed, err := prepare(spec, streamCfg)
	if err != nil {
		t.Fatal(err)
	}
	if streamed.sieve.Sampled {
		t.Fatal("default experiment reservoir must keep the plan exact")
	}
	if !reflect.DeepEqual(streamed.sieve.Strata, exact.sieve.Strata) {
		t.Fatal("streaming experiments produced a different plan")
	}
	evExact, err := EvaluateWorkload(spec, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	evStream, err := EvaluateWorkload(spec, streamCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(evExact, evStream) {
		t.Fatalf("evaluations diverge:\n exact  %+v\n stream %+v", evExact, evStream)
	}
}
