package experiments

import (
	"strings"
	"testing"
)

func TestSimStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("traces and simulates several workloads")
	}
	r := NewRunner(testCfg)
	rows, err := r.SimStudy(2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(simStudyWorkloads) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if row.Representatives < 1 || row.WarpInstrs < row.Representatives {
			t.Fatalf("%s: degenerate study row %+v", row.Name, row)
		}
		if row.SerialWall <= 0 || row.ParallelWall <= 0 {
			t.Fatalf("%s: missing wall times", row.Name)
		}
		if row.LongestSMCycles == 0 || row.TotalGPUCycles <= 0 {
			t.Fatalf("%s: missing simulation results", row.Name)
		}
	}
	tab := RenderSimStudy(rows)
	var buf strings.Builder
	if err := tab.Print(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "V-G") {
		t.Fatal("rendered table missing title")
	}
}

func TestDSE(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps the design space")
	}
	r := NewRunner(testCfg)
	results, err := r.DSE()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(dseWorkloads) {
		t.Fatalf("results = %d", len(results))
	}
	for _, res := range results {
		if len(res.Points) < 9 {
			t.Fatalf("%s: only %d design points", res.Name, len(res.Points))
		}
		if res.MaxError > 0.10 {
			t.Fatalf("%s: sampled prediction err %.1f%% at some design point", res.Name, 100*res.MaxError)
		}
		if res.RankFidelity < 0.9 {
			t.Fatalf("%s: rank fidelity %.2f — sampling must preserve design-point ordering", res.Name, res.RankFidelity)
		}
		// Halving bandwidth or SMs must slow the golden runs: the sweep must
		// contain real performance variation, not flat lines.
		var minSp, maxSp float64 = 1e18, 0
		for _, pt := range res.Points {
			if pt.SpeedupVsBase < minSp {
				minSp = pt.SpeedupVsBase
			}
			if pt.SpeedupVsBase > maxSp {
				maxSp = pt.SpeedupVsBase
			}
		}
		if maxSp/minSp < 1.2 {
			t.Fatalf("%s: design space too flat (%.2f..%.2f)", res.Name, minSp, maxSp)
		}
	}
	tab := RenderDSE(results)
	if len(tab.Rows) != len(results) {
		t.Fatalf("rendered rows = %d", len(tab.Rows))
	}
}

func TestDSESweepShape(t *testing.T) {
	configs := dseSweep()
	if len(configs) != 11 {
		t.Fatalf("sweep has %d configs, want 11 (5+5-1 axis points + 2 corners)", len(configs))
	}
	seen := map[string]bool{}
	for _, a := range configs {
		if err := a.Validate(); err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		if seen[a.Name] {
			t.Fatalf("duplicate config %s", a.Name)
		}
		seen[a.Name] = true
	}
}

func TestRankFidelity(t *testing.T) {
	perfect := []DSEPoint{
		{GoldenCycles: 1, PredictedCycles: 10},
		{GoldenCycles: 2, PredictedCycles: 20},
		{GoldenCycles: 3, PredictedCycles: 30},
	}
	if got := rankFidelity(perfect); got != 1 {
		t.Fatalf("perfect ordering fidelity = %g", got)
	}
	inverted := []DSEPoint{
		{GoldenCycles: 1, PredictedCycles: 30},
		{GoldenCycles: 2, PredictedCycles: 20},
		{GoldenCycles: 3, PredictedCycles: 10},
	}
	if got := rankFidelity(inverted); got != 0 {
		t.Fatalf("inverted ordering fidelity = %g", got)
	}
	if got := rankFidelity(perfect[:1]); got != 1 {
		t.Fatalf("single point fidelity = %g", got)
	}
}

func TestScalingStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps several scales")
	}
	r := NewRunner(testCfg)
	rows, err := r.Scaling()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(scalingWorkloads) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if len(row.Points) != len(scalingScales) {
			t.Fatalf("%s: %d points", row.Name, len(row.Points))
		}
		first, last := row.Points[0], row.Points[len(row.Points)-1]
		// Speedup must grow clearly with scale (8x more invocations).
		if last.Speedup < first.Speedup*3 {
			t.Fatalf("%s: speedup %g -> %g not growing with scale", row.Name, first.Speedup, last.Speedup)
		}
		// Accuracy stays in the low single digits at every scale.
		for _, p := range row.Points {
			if p.Error > 0.06 {
				t.Fatalf("%s @ %.2f: error %.1f%%", row.Name, p.Scale, 100*p.Error)
			}
		}
	}
	if tab := RenderScaling(rows); len(tab.Rows) != len(rows)*len(scalingScales) {
		t.Fatal("rendered row count")
	}
}

func TestBaselinesShape(t *testing.T) {
	if testing.Short() {
		t.Skip("three-way baseline comparison")
	}
	r := NewRunner(testCfg)
	rows, err := r.Baselines()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 16 {
		t.Fatalf("rows = %d", len(rows))
	}
	var s, p, tb float64
	for _, row := range rows {
		s += row.Sieve
		p += row.PKS
		tb += row.TBPoint
	}
	// Sieve must beat both baselines clearly on average.
	if s*3 > p || s*3 > tb {
		t.Fatalf("Sieve %.4f not clearly below PKS %.4f / TBPoint %.4f", s/16, p/16, tb/16)
	}
	if tab := RenderBaselines(rows); len(tab.Rows) != len(rows)+1 {
		t.Fatal("rendered rows")
	}
}

func TestCrossValidate(t *testing.T) {
	if testing.Short() {
		t.Skip("traces and simulates representatives")
	}
	r := NewRunner(testCfg)
	rows, err := r.CrossValidate(8000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(xvalWorkloads) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if row.Representatives < 2 {
			t.Fatalf("%s: %d representatives", row.Name, row.Representatives)
		}
		// The two substrates must agree positively on ordering.
		if row.Spearman < 0 {
			t.Fatalf("%s: Spearman %.3f — models anti-correlated", row.Name, row.Spearman)
		}
	}
	if tab := RenderXVal(rows); len(tab.Rows) != len(rows) {
		t.Fatal("rendered rows")
	}
}
