package experiments

import (
	"fmt"

	"github.com/gpusampling/sieve/internal/core"
	"github.com/gpusampling/sieve/internal/cudamodel"
	"github.com/gpusampling/sieve/internal/gpu"
	"github.com/gpusampling/sieve/internal/pks"
	"github.com/gpusampling/sieve/internal/stats"
	"github.com/gpusampling/sieve/internal/workloads"
)

// --- Table I -----------------------------------------------------------------

// Table1 reproduces the workload inventory: suite, workload, kernel count
// and invocation count, both the paper's full-scale numbers and the counts
// generated at the runner's scale.
func (r *Runner) Table1() (*Table, error) {
	t := &Table{
		Title:  "Table I: workloads (paper full-scale counts; generated at scale shown)",
		Header: []string{"suite", "workload", "kernels", "invocations(paper)", fmt.Sprintf("invocations(scale %g)", r.cfg.Scale)},
	}
	for _, spec := range workloads.Catalog() {
		p, err := r.get(spec.Name)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			spec.Suite, spec.Name,
			fmt.Sprintf("%d", spec.Kernels),
			fmt.Sprintf("%d", spec.FullInvocations),
			fmt.Sprintf("%d", p.w.NumInvocations()),
		})
	}
	return t, nil
}

// --- Table II ----------------------------------------------------------------

// Table2 reproduces the profiled-characteristics comparison: the twelve PKS
// metrics versus Sieve's single one.
func Table2() *Table {
	t := &Table{
		Title:  "Table II: execution characteristics profiled by PKS versus Sieve",
		Header: []string{"execution characteristic", "PKS", "Sieve"},
	}
	for _, name := range cudamodel.CharacteristicNames() {
		sieve := ""
		if name == "instruction_count" {
			sieve = "x"
		}
		t.Rows = append(t.Rows, []string{name, "x", sieve})
	}
	return t
}

// --- Fig. 2 ------------------------------------------------------------------

// Fig2Thetas are the thresholds the paper plots in Fig. 2.
var Fig2Thetas = []float64{0.1, 0.5, 1.0}

// TierRow is one workload's tier mix at every Fig. 2 threshold.
type TierRow struct {
	Name string
	// Fractions[i] holds the Tier-1/2/3 invocation fractions at
	// Fig2Thetas[i].
	Fractions [][3]float64
}

// Fig2 reproduces the tier-fraction experiment over Cactus and MLPerf.
func (r *Runner) Fig2() ([]TierRow, error) {
	var rows []TierRow
	for _, name := range challengingNames() {
		p, err := r.get(name)
		if err != nil {
			return nil, err
		}
		fr, err := core.TierFractions(p.sieveProfile, Fig2Thetas)
		if err != nil {
			return nil, err
		}
		rows = append(rows, TierRow{Name: name, Fractions: fr})
	}
	return rows, nil
}

// RenderFig2 formats Fig. 2 rows.
func RenderFig2(rows []TierRow) *Table {
	t := &Table{
		Title:  "Fig. 2: fraction of kernel invocations per tier vs threshold θ",
		Header: []string{"workload"},
	}
	for _, theta := range Fig2Thetas {
		t.Header = append(t.Header,
			fmt.Sprintf("T1(θ=%.1f)", theta),
			fmt.Sprintf("T2(θ=%.1f)", theta),
			fmt.Sprintf("T3(θ=%.1f)", theta))
	}
	var avg [3][3]float64
	for _, row := range rows {
		cells := []string{row.Name}
		for ti, f := range row.Fractions {
			for tier := 0; tier < 3; tier++ {
				cells = append(cells, pct(f[tier]))
				avg[ti][tier] += f[tier] / float64(len(rows))
			}
		}
		t.Rows = append(t.Rows, cells)
	}
	cells := []string{"average"}
	for ti := range Fig2Thetas {
		for tier := 0; tier < 3; tier++ {
			cells = append(cells, pct(avg[ti][tier]))
		}
	}
	t.Rows = append(t.Rows, cells)
	t.Notes = append(t.Notes, "paper: ~41% Tier-1; Tier-2 22%/42%/49% at θ=0.1/0.5/1.0; gms+lmr all Tier-1/2; gst >50% Tier-3")
	return t
}

// --- Fig. 3 / Fig. 8 (accuracy) -----------------------------------------------

// Fig3 reproduces the headline accuracy comparison on Cactus and MLPerf.
func (r *Runner) Fig3() ([]*Evaluation, error) {
	return r.Evaluations(challengingNames())
}

// Fig8 reproduces the accuracy comparison on the traditional suites.
func (r *Runner) Fig8() ([]*Evaluation, error) {
	return r.Evaluations(traditionalNames())
}

// RenderAccuracy formats an accuracy comparison (Fig. 3 and Fig. 8) in long
// form: one row per (workload, methodology), labeled by an explicit
// methodology column rather than positional per-method headers, so the table
// stays readable however many strategies an evaluation carries. Strategies
// that quantify their own uncertainty additionally show their 2σ interval.
// Per-method average and max rows close the table.
func RenderAccuracy(title string, evs []*Evaluation, paperNote string) *Table {
	t := &Table{
		Title:  title,
		Header: []string{"workload", "suite", "methodology", "error", "units", "2σ interval"},
	}
	// Aggregate per methodology, in order of first appearance.
	var order []string
	sums := make(map[string]float64)
	maxs := make(map[string]float64)
	counts := make(map[string]int)
	interval := func(me MethodEval) string {
		if me.Interval == nil {
			return "-"
		}
		return fmt.Sprintf("[%+.2f%%, %+.2f%%]", 100*me.Interval.Low, 100*me.Interval.High)
	}
	for _, ev := range evs {
		for _, me := range ev.methodRows() {
			t.Rows = append(t.Rows, []string{
				ev.Name, ev.Suite, me.Method, pct(me.Error), fmt.Sprintf("%d", me.Units), interval(me),
			})
			if counts[me.Method] == 0 {
				order = append(order, me.Method)
			}
			counts[me.Method]++
			sums[me.Method] += me.Error
			maxs[me.Method] = max(maxs[me.Method], me.Error)
		}
	}
	for _, m := range order {
		t.Rows = append(t.Rows, []string{"average", "", m, pct(sums[m] / float64(counts[m])), "", ""})
	}
	for _, m := range order {
		t.Rows = append(t.Rows, []string{"max", "", m, pct(maxs[m]), "", ""})
	}
	t.Notes = append(t.Notes, paperNote)
	return t
}

// --- Fig. 4 (dispersion) -------------------------------------------------------

// RenderFig4 formats the within-cluster cycle-count CoV comparison.
func RenderFig4(evs []*Evaluation) *Table {
	t := &Table{
		Title:  "Fig. 4: cycle-count CoV within clusters/strata (invocation-weighted)",
		Header: []string{"workload", "Sieve CoV", "PKS CoV"},
	}
	var sSum, pSum float64
	for _, ev := range evs {
		t.Rows = append(t.Rows, []string{ev.Name, fmt.Sprintf("%.3f", ev.SieveCoV), fmt.Sprintf("%.3f", ev.PKSCoV)})
		sSum += ev.SieveCoV
		pSum += ev.PKSCoV
	}
	n := float64(len(evs))
	t.Rows = append(t.Rows, []string{"average", fmt.Sprintf("%.3f", sSum/n), fmt.Sprintf("%.3f", pSum/n)})
	t.Notes = append(t.Notes, "paper: Sieve avg 0.09 (max 0.2 lmc); PKS avg 0.57 (max 3.25 dcg)")
	return t
}

// --- Fig. 5 (PKS selection policies) -------------------------------------------

// SelectionRow is one workload's PKS error under each representative policy.
type SelectionRow struct {
	Name     string
	First    float64
	Random   float64
	Centroid float64
	Sieve    float64 // Sieve's error, the reference line
}

// Fig5 reproduces the representative-selection sensitivity study: PKS error
// with first-chronological, random, and centroid representatives.
func (r *Runner) Fig5() ([]SelectionRow, error) {
	var rows []SelectionRow
	for _, name := range challengingNames() {
		p, err := r.get(name)
		if err != nil {
			return nil, err
		}
		row := SelectionRow{Name: name}
		src := cyclesFrom(p.golden)
		sievePred, err := p.sieve.Predict(src)
		if err != nil {
			return nil, err
		}
		row.Sieve = relErr(sievePred.Cycles, p.total)
		for _, pol := range []struct {
			policy pks.Policy
			dst    *float64
		}{
			{pks.SelectFirst, &row.First},
			{pks.SelectRandom, &row.Random},
			{pks.SelectCentroid, &row.Centroid},
		} {
			res := p.pks
			if pol.policy != pks.SelectFirst {
				res, err = pks.Select(p.features, p.golden, pks.Options{Seed: r.cfg.Seed, Selection: pol.policy, Parallelism: r.cfg.Parallelism})
				if err != nil {
					return nil, fmt.Errorf("%s: pks %v: %w", name, pol.policy, err)
				}
			}
			pred, err := res.PredictCycles(src)
			if err != nil {
				return nil, err
			}
			*pol.dst = relErr(pred, p.total)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderFig5 formats the selection-policy comparison.
func RenderFig5(rows []SelectionRow) *Table {
	t := &Table{
		Title:  "Fig. 5: PKS error by representative selection policy (Sieve shown for reference)",
		Header: []string{"workload", "PKS-first", "PKS-random", "PKS-centroid", "Sieve"},
	}
	var f, rr, c, s float64
	for _, row := range rows {
		t.Rows = append(t.Rows, []string{row.Name, pct(row.First), pct(row.Random), pct(row.Centroid), pct(row.Sieve)})
		f += row.First
		rr += row.Random
		c += row.Centroid
		s += row.Sieve
	}
	n := float64(len(rows))
	t.Rows = append(t.Rows, []string{"average", pct(f / n), pct(rr / n), pct(c / n), pct(s / n)})
	t.Notes = append(t.Notes, "paper: first 16.5% avg; random 6.8%; centroid 3.9%; none closes the gap with Sieve (1.2%)")
	return t
}

// --- Fig. 6 (speedup) -----------------------------------------------------------

// RenderFig6 formats the simulation-speedup comparison; gst is excluded from
// the harmonic means, as in the paper.
func RenderFig6(evs []*Evaluation) (*Table, error) {
	t := &Table{
		Title:  "Fig. 6: simulation speedup (log-scale quantity; gst excluded from means)",
		Header: []string{"workload", "Sieve speedup", "PKS speedup", "Sieve reps", "PKS reps"},
	}
	var sieveSp, pksSp []float64
	for _, ev := range evs {
		t.Rows = append(t.Rows, []string{
			ev.Name, times(ev.SieveSpeedup), times(ev.PKSSpeedup),
			fmt.Sprintf("%d", ev.SieveStrata), fmt.Sprintf("%d", ev.PKSClusters),
		})
		if ev.Name == "gst" {
			continue
		}
		sieveSp = append(sieveSp, ev.SieveSpeedup)
		pksSp = append(pksSp, ev.PKSSpeedup)
	}
	sHM, err := stats.HarmonicMean(sieveSp)
	if err != nil {
		return nil, err
	}
	pHM, err := stats.HarmonicMean(pksSp)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"harmonic mean (no gst)", times(sHM), times(pHM), "", ""})
	t.Notes = append(t.Notes,
		"paper: Sieve 922x vs PKS 1272x harmonic mean at full invocation counts; speedup grows",
		"~linearly with profiled invocations, so scaled runs sit proportionally lower")
	return t, nil
}

// --- Fig. 7 (profiling time) ------------------------------------------------------

// ProfilingRow is one workload's modeled profiling cost under each toolchain.
type ProfilingRow struct {
	Name         string
	Suite        string
	FullSeconds  float64 // 12-metric (Nsight-style), feeds PKS
	InstrSeconds float64 // instruction-count-only (NVBit-style), feeds Sieve
}

// Speedup returns the profiling-time ratio full/instr.
func (p ProfilingRow) Speedup() float64 { return p.FullSeconds / p.InstrSeconds }

// Fig7 reproduces the profiling-time experiment over Cactus and MLPerf.
func (r *Runner) Fig7() ([]ProfilingRow, error) {
	var rows []ProfilingRow
	for _, name := range challengingNames() {
		p, err := r.get(name)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ProfilingRow{
			Name:         name,
			Suite:        p.w.Suite,
			FullSeconds:  p.fullProfSec,
			InstrSeconds: p.sieveProfSec,
		})
	}
	return rows, nil
}

// RenderFig7 formats the profiling-time comparison.
func RenderFig7(rows []ProfilingRow) (*Table, error) {
	t := &Table{
		Title:  "Fig. 7: profiling time, PKS (12 metrics) vs Sieve (instruction count)",
		Header: []string{"workload", "PKS profiling", "Sieve profiling", "speedup"},
	}
	var speedups []float64
	var maxSp float64
	for _, row := range rows {
		sp := row.Speedup()
		speedups = append(speedups, sp)
		maxSp = max(maxSp, sp)
		t.Rows = append(t.Rows, []string{
			row.Name,
			fmt.Sprintf("%.0fs", row.FullSeconds),
			fmt.Sprintf("%.0fs", row.InstrSeconds),
			times(sp),
		})
	}
	hm, err := stats.HarmonicMean(speedups)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"harmonic mean", "", "", times(hm)})
	t.Rows = append(t.Rows, []string{"max", "", "", times(maxSp)})
	t.Notes = append(t.Notes, "paper: 8x harmonic-mean speedup, up to 98x; larger for MLPerf (more instruction types -> more Nsight passes)")
	return t, nil
}

// --- Fig. 9 (cross-architecture relative accuracy) --------------------------------

// CrossArchRow compares the Ampere-vs-Turing speedup predicted by each method
// with the golden measurement.
type CrossArchRow struct {
	Name string
	// Golden, Sieve and PKS are the Ampere-over-Turing wall-clock speedups.
	Golden, Sieve, PKS float64
}

// SieveError returns Sieve's relative speedup-prediction error.
func (c CrossArchRow) SieveError() float64 { return relErr(c.Sieve, c.Golden) }

// PKSError returns PKS's relative speedup-prediction error.
func (c CrossArchRow) PKSError() float64 { return relErr(c.PKS, c.Golden) }

// Fig9 reproduces the relative-accuracy experiment: predicting the
// performance difference between the Ampere and Turing parts. Per the paper,
// the MLPerf workloads and Cactus' rfl are excluded (they could not be run on
// the Turing system).
func (r *Runner) Fig9() ([]CrossArchRow, error) {
	turing, err := gpu.NewModel(gpu.Turing())
	if err != nil {
		return nil, err
	}
	ampere, err := gpu.NewModel(gpu.Ampere())
	if err != nil {
		return nil, err
	}
	specs, err := workloads.BySuite(workloads.SuiteCactus)
	if err != nil {
		return nil, err
	}
	var rows []CrossArchRow
	for _, spec := range specs {
		if spec.Name == "rfl" {
			continue // paper: rfl could not run on the RTX 2080 Ti
		}
		p, err := r.get(spec.Name)
		if err != nil {
			return nil, err
		}
		turingCycles := turing.MeasureWorkload(p.w)
		goldenA := ampere.Seconds(p.total)
		goldenT := turing.Seconds(stats.Sum(turingCycles))

		sievePredA, err := p.sieve.Predict(cyclesFrom(p.golden))
		if err != nil {
			return nil, err
		}
		sievePredT, err := p.sieve.Predict(cyclesFrom(turingCycles))
		if err != nil {
			return nil, err
		}
		pksPredA, err := p.pks.PredictCycles(cyclesFrom(p.golden))
		if err != nil {
			return nil, err
		}
		pksPredT, err := p.pks.PredictCycles(cyclesFrom(turingCycles))
		if err != nil {
			return nil, err
		}
		rows = append(rows, CrossArchRow{
			Name:   spec.Name,
			Golden: goldenT / goldenA,
			Sieve:  turing.Seconds(sievePredT.Cycles) / ampere.Seconds(sievePredA.Cycles),
			PKS:    turing.Seconds(pksPredT) / ampere.Seconds(pksPredA),
		})
	}
	return rows, nil
}

// RenderFig9 formats the cross-architecture comparison.
func RenderFig9(rows []CrossArchRow) *Table {
	t := &Table{
		Title:  "Fig. 9: Ampere (RTX 3080) speedup over Turing (RTX 2080 Ti)",
		Header: []string{"workload", "golden", "Sieve", "PKS", "Sieve err", "PKS err"},
	}
	var sSum, pSum, sMax, pMax float64
	for _, row := range rows {
		t.Rows = append(t.Rows, []string{
			row.Name,
			fmt.Sprintf("%.3f", row.Golden),
			fmt.Sprintf("%.3f", row.Sieve),
			fmt.Sprintf("%.3f", row.PKS),
			pct(row.SieveError()),
			pct(row.PKSError()),
		})
		sSum += row.SieveError()
		pSum += row.PKSError()
		sMax = max(sMax, row.SieveError())
		pMax = max(pMax, row.PKSError())
	}
	n := float64(len(rows))
	t.Rows = append(t.Rows, []string{"average", "", "", "", pct(sSum / n), pct(pSum / n)})
	t.Rows = append(t.Rows, []string{"max", "", "", "", pct(sMax), pct(pMax)})
	t.Notes = append(t.Notes, "paper: Sieve 1.5% avg (max 3.5% dcg); PKS 9.8% avg (12.1% gru, 23.5% nst, 40.3% spt)")
	return t
}

// --- Fig. 10 (θ sensitivity) --------------------------------------------------------

// ThetaPoint is the average error and speedup at one θ value.
type ThetaPoint struct {
	Theta        float64
	AvgError     float64
	AvgSpeedupHM float64
}

// Fig10Thetas is the θ sweep of the sensitivity experiment.
var Fig10Thetas = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}

// Fig10 reproduces the θ-sensitivity study: Sieve's average prediction error
// and harmonic-mean speedup across Cactus and MLPerf as θ varies. gst is
// excluded from the speedup mean, as in Fig. 6.
func (r *Runner) Fig10() ([]ThetaPoint, error) {
	var out []ThetaPoint
	for _, theta := range Fig10Thetas {
		var errSum float64
		var speedups []float64
		names := challengingNames()
		for _, name := range names {
			p, err := r.get(name)
			if err != nil {
				return nil, err
			}
			res, err := r.cfg.stratify(p.sieveProfile, theta)
			if err != nil {
				return nil, err
			}
			pred, err := res.Predict(cyclesFrom(p.golden))
			if err != nil {
				return nil, err
			}
			errSum += relErr(pred.Cycles, p.total)
			if name == "gst" {
				continue
			}
			sp, err := res.Speedup(p.golden)
			if err != nil {
				return nil, err
			}
			speedups = append(speedups, sp)
		}
		hm, err := stats.HarmonicMean(speedups)
		if err != nil {
			return nil, err
		}
		out = append(out, ThetaPoint{
			Theta:        theta,
			AvgError:     errSum / float64(len(names)),
			AvgSpeedupHM: hm,
		})
	}
	return out, nil
}

// RenderFig10 formats the θ sweep.
func RenderFig10(points []ThetaPoint) *Table {
	t := &Table{
		Title:  "Fig. 10: Sieve prediction error vs speedup as a function of θ",
		Header: []string{"theta", "avg error", "harmonic-mean speedup"},
	}
	for _, p := range points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.1f", p.Theta), pct(p.AvgError), times(p.AvgSpeedupHM),
		})
	}
	t.Notes = append(t.Notes, "paper: θ<0.5 -> error <1.6%; θ in [0.6,0.8] -> ~3%; θ=1.0 -> 4.8%; speedup much less sensitive")
	return t
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
