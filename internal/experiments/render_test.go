package experiments

import (
	"strings"
	"testing"
	"time"

	"github.com/gpusampling/sieve/internal/core"
)

// Render functions are pure formatting; feed them synthetic rows and check
// structure so the figure plumbing is covered without re-running pipelines.

func renderToString(t *testing.T, tab *Table) string {
	t.Helper()
	var b strings.Builder
	if err := tab.Print(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func syntheticEvaluations() []*Evaluation {
	return []*Evaluation{
		{Name: "alpha", Suite: "Cactus", SieveError: 0.01, PKSError: 0.2,
			SieveSpeedup: 100, PKSSpeedup: 200, SieveCoV: 0.1, PKSCoV: 0.5,
			SieveStrata: 10, PKSClusters: 5},
		{Name: "gst", Suite: "Cactus", SieveError: 0.002, PKSError: 0.01,
			SieveSpeedup: 1.1, PKSSpeedup: 1.2, SieveCoV: 0.3, PKSCoV: 1.5,
			SieveStrata: 30, PKSClusters: 20},
		{Name: "beta", Suite: "MLPerf", SieveError: 0.03, PKSError: 0.5,
			SieveSpeedup: 300, PKSSpeedup: 150, SieveCoV: 0.2, PKSCoV: 0.9,
			SieveStrata: 40, PKSClusters: 18},
	}
}

func TestRenderAccuracyStructure(t *testing.T) {
	tab := RenderAccuracy("title", syntheticEvaluations(), "note")
	// Long form: 3 workloads × 2 methods (legacy fields synthesize
	// sieve+pks) + per-method average and max rows.
	if len(tab.Rows) != 3*2+2+2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	out := renderToString(t, tab)
	for _, want := range []string{"alpha", "methodology", "sieve", "pks", "average", "max", "note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in rendered table:\n%s", want, out)
		}
	}
}

// TestRenderAccuracyMethodColumn checks the 4-method long form: every
// methodology is labeled in its own column, and interval-bearing strategies
// show their 2σ band.
func TestRenderAccuracyMethodColumn(t *testing.T) {
	evs := []*Evaluation{{
		Name: "alpha", Suite: "Cactus",
		Methods: []MethodEval{
			{Method: "sieve", Error: 0.01, Units: 10},
			{Method: "pks", Error: 0.2, Units: 5},
			{Method: "twophase", Error: 0.02, Units: 20,
				Interval: &core.ErrorInterval{Low: -0.05, High: 0.05}},
			{Method: "rss", Error: 0.03, Units: 10,
				Interval: &core.ErrorInterval{Mean: 0.01, Low: -0.01, High: 0.03, Resamples: 16}},
		},
	}}
	tab := RenderAccuracy("title", evs, "note")
	if len(tab.Rows) != 4+4+4 { // 1 workload × 4 methods + averages + maxes
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	out := renderToString(t, tab)
	for _, want := range []string{"twophase", "rss", "[-5.00%, +5.00%]", "[-1.00%, +3.00%]"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in rendered table:\n%s", want, out)
		}
	}
}

func TestRenderFig4Structure(t *testing.T) {
	tab := RenderFig4(syntheticEvaluations())
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if !strings.Contains(renderToString(t, tab), "0.500") {
		t.Fatal("CoV values missing")
	}
}

func TestRenderFig5Structure(t *testing.T) {
	rows := []SelectionRow{
		{Name: "a", First: 0.2, Random: 0.1, Centroid: 0.05, Sieve: 0.01},
		{Name: "b", First: 0.4, Random: 0.2, Centroid: 0.10, Sieve: 0.02},
	}
	tab := RenderFig5(rows)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	out := renderToString(t, tab)
	if !strings.Contains(out, "30.00%") { // average of First
		t.Fatalf("averages missing:\n%s", out)
	}
}

func TestRenderFig6ExcludesGst(t *testing.T) {
	tab, err := RenderFig6(syntheticEvaluations())
	if err != nil {
		t.Fatal(err)
	}
	// Harmonic mean over alpha+beta only: HM(100, 300) = 150.
	out := renderToString(t, tab)
	if !strings.Contains(out, "150.0x") {
		t.Fatalf("gst not excluded from harmonic mean:\n%s", out)
	}
}

func TestRenderFig6ErrorsOnAllGst(t *testing.T) {
	evs := []*Evaluation{{Name: "gst", SieveSpeedup: 1, PKSSpeedup: 1}}
	if _, err := RenderFig6(evs); err == nil {
		t.Fatal("want error when no workload remains for the mean")
	}
}

func TestRenderFig2Structure(t *testing.T) {
	rows := []TierRow{
		{Name: "w1", Fractions: [][3]float64{{0.5, 0.3, 0.2}, {0.5, 0.4, 0.1}, {0.5, 0.5, 0}}},
		{Name: "w2", Fractions: [][3]float64{{0.2, 0.2, 0.6}, {0.2, 0.6, 0.2}, {0.2, 0.8, 0}}},
	}
	tab := RenderFig2(rows)
	if len(tab.Rows) != 3 { // 2 workloads + average
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	out := renderToString(t, tab)
	if !strings.Contains(out, "35.00%") { // avg Tier-1 at θ=0.1
		t.Fatalf("tier averages missing:\n%s", out)
	}
}

func TestRenderFig10Structure(t *testing.T) {
	points := []ThetaPoint{
		{Theta: 0.1, AvgError: 0.01, AvgSpeedupHM: 50},
		{Theta: 1.0, AvgError: 0.05, AvgSpeedupHM: 160},
	}
	tab := RenderFig10(points)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if !strings.Contains(renderToString(t, tab), "160.0x") {
		t.Fatal("speedups missing")
	}
}

func TestRenderWarmupStructure(t *testing.T) {
	rows := []WarmupRow{
		{Name: "a", PerfectWarmupError: 0.01, ColdSampleError: 0.05, ColdPenalty: 1.1},
	}
	tab := RenderWarmup(rows)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if !strings.Contains(renderToString(t, tab), "1.10x") {
		t.Fatal("penalty missing")
	}
}

func TestRenderSimStudyStructure(t *testing.T) {
	rows := []SimStudyRow{{
		Name: "a", Representatives: 3, WarpInstrs: 1000,
		SerialWall: 100 * time.Millisecond, ParallelWall: 40 * time.Millisecond,
		LongestSMCycles: 5000, TotalGPUCycles: 1e6,
	}}
	tab := RenderSimStudy(rows)
	if len(tab.Rows) != 1 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	out := renderToString(t, tab)
	if !strings.Contains(out, "100ms") || !strings.Contains(out, "5000") {
		t.Fatalf("sim fields missing:\n%s", out)
	}
}

func TestRenderDSEStructure(t *testing.T) {
	results := []DSEResult{{
		Name: "a", Points: make([]DSEPoint, 11),
		MeanError: 0.01, MaxError: 0.02, RankFidelity: 1,
	}}
	tab := RenderDSE(results)
	if len(tab.Rows) != 1 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if !strings.Contains(renderToString(t, tab), "100.00%") {
		t.Fatal("rank fidelity missing")
	}
}

func TestRenderScalingStructure(t *testing.T) {
	rows := []ScalingRow{{
		Name:   "a",
		Points: []ScalingPoint{{Scale: 0.01, Invocations: 100, Strata: 5, Error: 0.01, Speedup: 20}},
	}}
	tab := RenderScaling(rows)
	if len(tab.Rows) != 1 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if !strings.Contains(renderToString(t, tab), "20.0x") {
		t.Fatal("speedup missing")
	}
}

func TestRenderBaselinesStructure(t *testing.T) {
	rows := []BaselineRow{{Name: "a", Sieve: 0.01, PKS: 0.2, TBPoint: 0.3}}
	tab := RenderBaselines(rows)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestRenderXValStructure(t *testing.T) {
	rows := []XValRow{{Name: "a", Representatives: 9, Spearman: 0.7}}
	tab := RenderXVal(rows)
	if len(tab.Rows) != 1 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if !strings.Contains(renderToString(t, tab), "0.700") {
		t.Fatal("spearman missing")
	}
}
