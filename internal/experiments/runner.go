package experiments

import (
	"fmt"
	"sort"
	"sync"

	"github.com/gpusampling/sieve/internal/workloads"
)

// Runner memoizes the expensive per-workload pipeline artifacts (generation,
// golden measurement, Sieve stratification, PKS selection) so the figures can
// share them within one process.
type Runner struct {
	cfg Config

	mu    sync.Mutex
	cache map[string]*prepared
}

// NewRunner returns a Runner for the given configuration.
func NewRunner(cfg Config) *Runner {
	return &Runner{cfg: cfg.withDefaults(), cache: make(map[string]*prepared)}
}

// Config returns the runner's effective configuration.
func (r *Runner) Config() Config { return r.cfg }

// get returns the memoized pipeline artifacts for a workload, preparing them
// on first use.
func (r *Runner) get(name string) (*prepared, error) {
	r.mu.Lock()
	if p, ok := r.cache[name]; ok {
		r.mu.Unlock()
		return p, nil
	}
	r.mu.Unlock()

	spec, err := workloads.ByName(name)
	if err != nil {
		return nil, err
	}
	p, err := prepare(spec, r.cfg)
	if err != nil {
		return nil, fmt.Errorf("prepare %s: %w", name, err)
	}
	r.mu.Lock()
	r.cache[name] = p
	r.mu.Unlock()
	return p, nil
}

// Warm prepares the named workloads concurrently, bounding parallelism to
// keep peak memory proportional to a few workloads.
func (r *Runner) Warm(names []string, parallelism int) error {
	if parallelism < 1 {
		parallelism = 1
	}
	sem := make(chan struct{}, parallelism)
	errs := make(chan error, len(names))
	var wg sync.WaitGroup
	for _, name := range names {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if _, err := r.get(name); err != nil {
				errs <- err
			}
		}(name)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ChallengingNames returns the Cactus and MLPerf workload names — the set
// most figures evaluate.
func ChallengingNames() []string { return challengingNames() }

// TraditionalNames returns the Parboil, Rodinia and SDK workload names.
func TraditionalNames() []string { return traditionalNames() }

// challengingNames returns the Cactus then MLPerf workload names in catalog
// order — the set most figures evaluate.
func challengingNames() []string {
	var names []string
	for _, suite := range []string{workloads.SuiteCactus, workloads.SuiteMLPerf} {
		specs, _ := workloads.BySuite(suite)
		for _, s := range specs {
			names = append(names, s.Name)
		}
	}
	return names
}

// traditionalNames returns the Parboil, Rodinia and SDK workload names in
// catalog order.
func traditionalNames() []string {
	var names []string
	for _, suite := range []string{workloads.SuiteParboil, workloads.SuiteRodinia, workloads.SuiteSDK} {
		specs, _ := workloads.BySuite(suite)
		for _, s := range specs {
			names = append(names, s.Name)
		}
	}
	return names
}

// evaluate builds the Evaluation for one prepared workload (the shared logic
// behind Figs. 3, 4, 6 and 8).
func (r *Runner) evaluate(name string) (*Evaluation, error) {
	p, err := r.get(name)
	if err != nil {
		return nil, err
	}
	ev := &Evaluation{
		Name:         p.w.Name,
		Suite:        p.w.Suite,
		Invocations:  p.w.NumInvocations(),
		Kernels:      p.w.NumKernels(),
		GoldenCycles: p.total,
		SieveStrata:  p.sieve.NumStrata(),
		PKSClusters:  p.pks.K,
	}
	src := cyclesFrom(p.golden)
	sievePred, err := p.sieve.Predict(src)
	if err != nil {
		return nil, fmt.Errorf("%s: sieve predict: %w", name, err)
	}
	ev.SieveError = relErr(sievePred.Cycles, p.total)
	if ev.SieveSpeedup, err = p.sieve.Speedup(p.golden); err != nil {
		return nil, err
	}
	if ev.SieveCoV, err = p.sieve.WeightedCycleCoV(p.golden); err != nil {
		return nil, err
	}
	pksPred, err := p.pks.PredictCycles(src)
	if err != nil {
		return nil, fmt.Errorf("%s: pks predict: %w", name, err)
	}
	ev.PKSError = relErr(pksPred, p.total)
	if ev.PKSSpeedup, err = p.pks.Speedup(p.golden); err != nil {
		return nil, err
	}
	if ev.PKSCoV, err = p.pks.WeightedCycleCoV(p.golden); err != nil {
		return nil, err
	}
	if ev.Methods, err = p.methodEvals(r.cfg, ev.SieveError, ev.PKSError); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return ev, nil
}

// Evaluations returns the Sieve-vs-PKS evaluation for every named workload.
func (r *Runner) Evaluations(names []string) ([]*Evaluation, error) {
	out := make([]*Evaluation, 0, len(names))
	for _, name := range names {
		ev, err := r.evaluate(name)
		if err != nil {
			return nil, err
		}
		out = append(out, ev)
	}
	return out, nil
}

// relErr is |predicted-measured|/measured (measured is validated > 0 before
// reaching here).
func relErr(predicted, measured float64) float64 {
	d := predicted - measured
	if d < 0 {
		d = -d
	}
	return d / measured
}

// sortedCacheNames returns the names currently memoized (for diagnostics).
func (r *Runner) sortedCacheNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var names []string
	for n := range r.cache {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
