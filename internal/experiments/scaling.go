package experiments

import (
	"fmt"

	"github.com/gpusampling/sieve/internal/gpu"
	"github.com/gpusampling/sieve/internal/profiler"
	"github.com/gpusampling/sieve/internal/stats"
	"github.com/gpusampling/sieve/internal/workloads"
)

// Scaling study: the reproduction generates workloads at a fraction of
// Table I's invocation counts, and EXPERIMENTS.md claims simulation speedup
// grows roughly linearly with that fraction while accuracy stays flat. This
// experiment measures both claims directly, so the extrapolation from
// scaled runs to the paper's full-count speedups is evidence, not assertion.

// ScalingPoint is one (workload, scale) measurement.
type ScalingPoint struct {
	Scale       float64
	Invocations int
	Strata      int
	Error       float64
	Speedup     float64
}

// ScalingRow is one workload's scale sweep.
type ScalingRow struct {
	Name   string
	Points []ScalingPoint
}

// scalingWorkloads keeps the sweep affordable while covering different
// kernel-count regimes.
var scalingWorkloads = []string{"gru", "lmc", "rnnt"}

// scalingScales is the swept generation fraction.
var scalingScales = []float64{0.01, 0.02, 0.04, 0.08}

// Scaling runs the scale-sensitivity study with the runner's θ and seed.
func (r *Runner) Scaling() ([]ScalingRow, error) {
	hw, err := gpu.NewModel(gpu.Ampere())
	if err != nil {
		return nil, err
	}
	var rows []ScalingRow
	for _, name := range scalingWorkloads {
		spec, err := workloads.ByName(name)
		if err != nil {
			return nil, err
		}
		row := ScalingRow{Name: name}
		for _, scale := range scalingScales {
			w, err := workloads.Generate(spec, scale)
			if err != nil {
				return nil, err
			}
			prof, err := profiler.NewInstructionCountProfiler().Profile(w, hw)
			if err != nil {
				return nil, err
			}
			plan, err := r.cfg.stratify(SieveProfile(prof), r.cfg.Theta)
			if err != nil {
				return nil, err
			}
			golden := hw.MeasureWorkload(w)
			pred, err := plan.Predict(cyclesFrom(golden))
			if err != nil {
				return nil, err
			}
			sp, err := plan.Speedup(golden)
			if err != nil {
				return nil, err
			}
			row.Points = append(row.Points, ScalingPoint{
				Scale:       scale,
				Invocations: w.NumInvocations(),
				Strata:      plan.NumStrata(),
				Error:       relErr(pred.Cycles, stats.Sum(golden)),
				Speedup:     sp,
			})
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderScaling formats the scaling study.
func RenderScaling(rows []ScalingRow) *Table {
	t := &Table{
		Title:  "Scaling study: Sieve accuracy and speedup vs generated workload scale",
		Header: []string{"workload", "scale", "invocations", "strata", "error", "speedup"},
	}
	for _, row := range rows {
		for _, p := range row.Points {
			t.Rows = append(t.Rows, []string{
				row.Name,
				fmt.Sprintf("%.2f", p.Scale),
				fmt.Sprintf("%d", p.Invocations),
				fmt.Sprintf("%d", p.Strata),
				pct(p.Error),
				times(p.Speedup),
			})
		}
	}
	t.Notes = append(t.Notes,
		"speedup grows ~linearly with the profiled invocation count (strata counts",
		"saturate at the kernel structure) while accuracy stays flat — the basis for",
		"extrapolating scaled-run speedups to the paper's full Table I counts")
	return t
}
