package experiments

import (
	"fmt"
	"runtime"
	"time"

	"github.com/gpusampling/sieve/internal/gpu"
	"github.com/gpusampling/sieve/internal/sim"
	"github.com/gpusampling/sieve/internal/trace"
)

// Section V-G of the paper: the selected kernel invocations are traced
// (SASS plain-text files) and simulated — serially on one core or with each
// trace dispatched to a separate core, where total time is determined by the
// longest-running kernel invocation. This study reproduces that workflow on
// the trace-driven simulator for a subset of workloads.

// SimStudyRow summarizes tracing + detailed simulation for one workload.
type SimStudyRow struct {
	Name            string
	Representatives int
	WarpInstrs      int
	// SerialWall and ParallelWall are host wall-clock simulation times.
	SerialWall, ParallelWall time.Duration
	// LongestSMCycles is the slowest representative (the parallel-dispatch
	// critical path).
	LongestSMCycles uint64
	// TotalGPUCycles is the summed estimated GPU cycles of the
	// representatives.
	TotalGPUCycles float64
}

// simStudyWorkloads is the subset traced and simulated; chosen to cover
// short (gst), medium and kernel-heavy workloads without making the study
// dominate the experiment run.
var simStudyWorkloads = []string{"gst", "gms", "gru", "bert"}

// SimStudy traces the representatives of a few workloads and simulates them
// serially and in parallel, like the paper's Section V-G.
func (r *Runner) SimStudy(maxWarpInstrs int) ([]SimStudyRow, error) {
	if maxWarpInstrs <= 0 {
		maxWarpInstrs = 20000
	}
	simulator, err := sim.New(gpu.Ampere())
	if err != nil {
		return nil, err
	}
	var rows []SimStudyRow
	for _, name := range simStudyWorkloads {
		p, err := r.get(name)
		if err != nil {
			return nil, err
		}
		var traces []*trace.Trace
		row := SimStudyRow{Name: name}
		for _, idx := range p.sieve.RepresentativeIndices() {
			tr, err := trace.Generate(&p.w.Invocations[idx], maxWarpInstrs, r.cfg.Seed)
			if err != nil {
				return nil, fmt.Errorf("%s: trace invocation %d: %w", name, idx, err)
			}
			traces = append(traces, tr)
			row.WarpInstrs += len(tr.Instrs)
		}
		row.Representatives = len(traces)

		start := time.Now()
		serial, err := simulator.SimulateAll(traces)
		if err != nil {
			return nil, fmt.Errorf("%s: serial simulation: %w", name, err)
		}
		row.SerialWall = time.Since(start)

		start = time.Now()
		if _, err := simulator.SimulateParallel(traces, runtime.GOMAXPROCS(0)); err != nil {
			return nil, fmt.Errorf("%s: parallel simulation: %w", name, err)
		}
		row.ParallelWall = time.Since(start)

		for _, res := range serial {
			row.TotalGPUCycles += res.Cycles
			if res.SMCycles > row.LongestSMCycles {
				row.LongestSMCycles = res.SMCycles
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderSimStudy formats the Section V-G study.
func RenderSimStudy(rows []SimStudyRow) *Table {
	t := &Table{
		Title:  "Section V-G: tracing + detailed simulation of the selected invocations",
		Header: []string{"workload", "reps", "warp instrs", "serial wall", "parallel wall", "longest rep (SM cycles)", "GPU cycles"},
	}
	for _, row := range rows {
		t.Rows = append(t.Rows, []string{
			row.Name,
			fmt.Sprintf("%d", row.Representatives),
			fmt.Sprintf("%d", row.WarpInstrs),
			row.SerialWall.Round(time.Millisecond).String(),
			row.ParallelWall.Round(time.Millisecond).String(),
			fmt.Sprintf("%d", row.LongestSMCycles),
			fmt.Sprintf("%.3g", row.TotalGPUCycles),
		})
	}
	t.Notes = append(t.Notes,
		"paper: each representative's trace is a standalone plain-text file, so parallel",
		"simulation time is determined by the longest-running kernel invocation")
	return t
}
