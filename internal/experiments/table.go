package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is the printable form of every experiment's output: a title, a
// header row, data rows, and optional footnote lines (aggregates,
// paper-expectation reminders).
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Print renders the table with aligned columns.
func (t *Table) Print(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s ==\n", t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) error {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		_, err := fmt.Fprintln(w, b.String())
		return err
	}
	if err := writeRow(t.Header); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", sum(widths)+2*(len(widths)-1))); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "  %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

// pct formats a fraction as a percentage with two decimals.
func pct(x float64) string { return fmt.Sprintf("%.2f%%", 100*x) }

// times formats a speedup factor.
func times(x float64) string { return fmt.Sprintf("%.1fx", x) }
