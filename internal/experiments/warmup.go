package experiments

import (
	"fmt"

	"github.com/gpusampling/sieve/internal/cudamodel"
)

// The paper's evaluation assumes perfect warmup: "the cache and
// microarchitecture state is perfectly warmed up at the beginning of each
// sample", and notes that "studying the impact of warmup on sampling
// accuracy is left for future work" (Section IV). This file implements that
// study on the reproduction substrate: representative kernel invocations are
// re-measured as if simulated from cold microarchitectural state (empty
// caches, closed DRAM rows), and the resulting prediction error is compared
// with the perfect-warmup error.

// WarmupRow is one workload's sensitivity to sample warmup.
type WarmupRow struct {
	Name  string
	Suite string
	// PerfectWarmupError is Sieve's error with in-situ (warm) representative
	// measurements — the paper's assumption.
	PerfectWarmupError float64
	// ColdSampleError is Sieve's error when every representative is
	// measured from cold state.
	ColdSampleError float64
	// ColdPenalty is the mean slowdown of the representatives when cold.
	ColdPenalty float64
}

// Cold-start cost is dominated by compulsory misses: starting a sample with
// empty caches turns the first touch of the working set into DRAM traffic.
// For a long-running invocation this is a vanishing fraction of its total
// traffic — the paper's argument for assuming perfect warmup — while short
// invocations pay proportionally more.

// WarmupStudy measures, for every challenging workload, how Sieve's accuracy
// degrades when representatives are simulated without warmup.
func (r *Runner) WarmupStudy() ([]WarmupRow, error) {
	var rows []WarmupRow
	for _, name := range challengingNames() {
		p, err := r.get(name)
		if err != nil {
			return nil, err
		}
		warmPred, err := p.sieve.Predict(cyclesFrom(p.golden))
		if err != nil {
			return nil, err
		}

		// Cold measurement: re-run each representative with cold caches.
		coldCycles := make(map[int]float64)
		var penalty float64
		var n int
		for _, idx := range p.sieve.RepresentativeIndices() {
			inv := p.w.Invocations[idx] // copy
			chill(&inv)
			cold := p.hw.Cycles(&inv)
			coldCycles[idx] = cold
			penalty += cold / p.golden[idx]
			n++
		}
		coldPred, err := p.sieve.Predict(func(i int) (float64, error) {
			c, ok := coldCycles[i]
			if !ok {
				return 0, fmt.Errorf("invocation %d is not a representative", i)
			}
			return c, nil
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, WarmupRow{
			Name:               name,
			Suite:              p.w.Suite,
			PerfectWarmupError: relErr(warmPred.Cycles, p.total),
			ColdSampleError:    relErr(coldPred.Cycles, p.total),
			ColdPenalty:        penalty / float64(n),
		})
	}
	return rows, nil
}

// chill resets an invocation's hidden state to cold-start conditions: the
// cache hit rate loses the compulsory-miss fraction (working set over total
// traffic) and DRAM row buffers start closed.
func chill(inv *cudamodel.Invocation) {
	traffic := (inv.Chars.CoalescedGlobalLoads + inv.Chars.CoalescedGlobalStores) * 32
	if traffic > 0 {
		delta := inv.Hidden.L2WorkingSet / traffic
		if delta > 1 {
			delta = 1
		}
		inv.Hidden.CacheLocality -= delta
		if inv.Hidden.CacheLocality < 0 {
			inv.Hidden.CacheLocality = 0
		}
	}
	inv.Hidden.RowLocality *= 0.9
}

// RenderWarmup formats the warmup study.
func RenderWarmup(rows []WarmupRow) *Table {
	t := &Table{
		Title:  "Warmup study (paper future work): Sieve error with perfect vs no sample warmup",
		Header: []string{"workload", "perfect warmup", "cold samples", "cold slowdown"},
	}
	var warm, cold float64
	for _, row := range rows {
		t.Rows = append(t.Rows, []string{
			row.Name, pct(row.PerfectWarmupError), pct(row.ColdSampleError),
			fmt.Sprintf("%.2fx", row.ColdPenalty),
		})
		warm += row.PerfectWarmupError
		cold += row.ColdSampleError
	}
	n := float64(len(rows))
	t.Rows = append(t.Rows, []string{"average", pct(warm / n), pct(cold / n), ""})
	t.Notes = append(t.Notes,
		"the paper assumes perfect warmup; without functional warming, the cold-start",
		"penalty of each representative inflates predicted cycles for memory-bound strata")
	return t
}
