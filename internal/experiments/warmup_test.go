package experiments

import (
	"strings"
	"testing"
)

func TestWarmupStudyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("warmup integration study")
	}
	r := NewRunner(testCfg)
	rows, err := r.WarmupStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 16 {
		t.Fatalf("rows = %d, want 16 (Cactus + MLPerf)", len(rows))
	}
	var warmSum, coldSum float64
	for _, row := range rows {
		if row.ColdPenalty < 1 {
			t.Fatalf("%s: cold representatives cannot be faster (penalty %.2f)", row.Name, row.ColdPenalty)
		}
		if row.PerfectWarmupError < 0 || row.ColdSampleError < 0 {
			t.Fatal("negative errors")
		}
		warmSum += row.PerfectWarmupError
		coldSum += row.ColdSampleError
	}
	// Aggregate claim: cold sampling is clearly worse than perfect warmup,
	// but not catastrophically so for long-running invocations.
	if coldSum <= warmSum {
		t.Fatalf("cold sampling (%.4f) should err more than perfect warmup (%.4f)", coldSum, warmSum)
	}
	if coldSum/16 > 0.25 {
		t.Fatalf("cold-sample average error %.1f%% implausibly large for long-running invocations", 100*coldSum/16)
	}
	tab := RenderWarmup(rows)
	if len(tab.Rows) != len(rows)+1 {
		t.Fatalf("rendered rows = %d", len(tab.Rows))
	}
	var buf strings.Builder
	if err := tab.Print(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Warmup study") {
		t.Fatal("rendered table missing title")
	}
}
