// Package gpu models the GPU hardware platforms of the paper's evaluation —
// an NVIDIA RTX 3080 (Ampere) and an RTX 2080 Ti (Turing) — and provides the
// deterministic analytical timing model that stands in for real silicon as
// the golden reference.
//
// The model is interval-style: a kernel invocation's cycle count is the
// maximum of its compute-issue, DRAM-bandwidth and shared-memory demands,
// inflated by exposed latency when occupancy is low, plus a fixed launch
// overhead. Crucially, cycle count depends on the invocation's Hidden
// microarchitectural behaviour (cache locality, row locality, unit mix,
// working-set size) that microarchitecture-independent profiling cannot
// observe. That dependency is what makes the PKS clusters heterogeneous in
// execution time — the effect the paper measures — while Sieve's per-kernel
// strata remain homogeneous.
package gpu

import "fmt"

// Arch describes a GPU hardware platform.
type Arch struct {
	// Name is the marketing name of the card.
	Name string
	// Generation is the architecture family ("Ampere", "Turing").
	Generation string
	// SMs is the number of streaming multiprocessors.
	SMs int
	// ClockGHz is the sustained core clock in GHz.
	ClockGHz float64
	// IssuePerSM is the baseline warp instructions issued per SM per cycle.
	IssuePerSM float64
	// FP32Boost is the throughput multiplier applied to the FP32-eligible
	// instruction fraction (Ampere doubled the FP32 datapath).
	FP32Boost float64
	// TensorBoost is the throughput multiplier applied to the
	// tensor-pipe-eligible work fraction.
	TensorBoost float64
	// DRAMBandwidthGBs is the peak DRAM bandwidth in GB/s.
	DRAMBandwidthGBs float64
	// L2Bytes is the L2 cache capacity in bytes.
	L2Bytes float64
	// MemLatencyCycles is the average DRAM access latency in core cycles.
	MemLatencyCycles float64
	// MaxThreadsPerSM is the architectural thread-residency limit per SM.
	MaxThreadsPerSM int
	// SharedThroughputPerSM is shared-memory accesses served per SM per
	// cycle (one transaction per bank-conflict-free warp access).
	SharedThroughputPerSM float64
	// LaunchOverheadCycles is the fixed per-kernel-launch cost in cycles.
	LaunchOverheadCycles float64
}

// Ampere returns the RTX 3080 configuration used as the paper's baseline
// platform: 68 SMs, 10 GB GDDR6X at 760 GB/s (Section IV).
func Ampere() Arch {
	return Arch{
		Name:                  "RTX 3080",
		Generation:            "Ampere",
		SMs:                   68,
		ClockGHz:              1.71,
		IssuePerSM:            4,
		FP32Boost:             0.85, // doubled FP32 datapath, shared with INT32
		TensorBoost:           1.6,  // 3rd-gen tensor cores
		DRAMBandwidthGBs:      760,
		L2Bytes:               5 << 20,
		MemLatencyCycles:      470,
		MaxThreadsPerSM:       1536,
		SharedThroughputPerSM: 4,
		LaunchOverheadCycles:  1000,
	}
}

// Turing returns the RTX 2080 Ti configuration used for the cross-architecture
// experiments: 68 SMs, 11 GB GDDR6 at 616 GB/s (Section IV).
func Turing() Arch {
	return Arch{
		Name:                  "RTX 2080 Ti",
		Generation:            "Turing",
		SMs:                   68,
		ClockGHz:              1.545,
		IssuePerSM:            4,
		FP32Boost:             0, // single FP32 datapath
		TensorBoost:           0.8,
		DRAMBandwidthGBs:      616,
		L2Bytes:               5632 << 10, // 5.5 MB
		MemLatencyCycles:      440,
		MaxThreadsPerSM:       1024,
		SharedThroughputPerSM: 4,
		LaunchOverheadCycles:  1000,
	}
}

// Validate checks that every architectural parameter is physically sensible.
func (a Arch) Validate() error {
	switch {
	case a.Name == "" || a.Generation == "":
		return fmt.Errorf("gpu: arch missing name or generation")
	case a.SMs <= 0:
		return fmt.Errorf("gpu: %s: non-positive SM count", a.Name)
	case a.ClockGHz <= 0:
		return fmt.Errorf("gpu: %s: non-positive clock", a.Name)
	case a.IssuePerSM <= 0:
		return fmt.Errorf("gpu: %s: non-positive issue rate", a.Name)
	case a.FP32Boost < 0 || a.TensorBoost < 0:
		return fmt.Errorf("gpu: %s: negative throughput boost", a.Name)
	case a.DRAMBandwidthGBs <= 0:
		return fmt.Errorf("gpu: %s: non-positive DRAM bandwidth", a.Name)
	case a.L2Bytes <= 0:
		return fmt.Errorf("gpu: %s: non-positive L2 capacity", a.Name)
	case a.MemLatencyCycles <= 0:
		return fmt.Errorf("gpu: %s: non-positive memory latency", a.Name)
	case a.MaxThreadsPerSM <= 0:
		return fmt.Errorf("gpu: %s: non-positive thread residency", a.Name)
	case a.SharedThroughputPerSM <= 0:
		return fmt.Errorf("gpu: %s: non-positive shared-memory throughput", a.Name)
	case a.LaunchOverheadCycles < 0:
		return fmt.Errorf("gpu: %s: negative launch overhead", a.Name)
	}
	return nil
}

// BytesPerCycle returns the peak DRAM bytes transferred per core cycle.
func (a Arch) BytesPerCycle() float64 {
	return a.DRAMBandwidthGBs / a.ClockGHz
}
