package gpu

import (
	"encoding/json"
	"fmt"
	"io"
)

// archJSON is the on-disk form of an architecture description. Field names
// are stable and documented in README; zero-valued fields inherit from the
// base the file names (or Ampere when none).
type archJSON struct {
	Name                  string   `json:"name"`
	Generation            string   `json:"generation"`
	Base                  string   `json:"base,omitempty"` // "ampere" (default) or "turing"
	SMs                   *int     `json:"sms,omitempty"`
	ClockGHz              *float64 `json:"clock_ghz,omitempty"`
	IssuePerSM            *float64 `json:"issue_per_sm,omitempty"`
	FP32Boost             *float64 `json:"fp32_boost,omitempty"`
	TensorBoost           *float64 `json:"tensor_boost,omitempty"`
	DRAMBandwidthGBs      *float64 `json:"dram_bandwidth_gbs,omitempty"`
	L2Bytes               *float64 `json:"l2_bytes,omitempty"`
	MemLatencyCycles      *float64 `json:"mem_latency_cycles,omitempty"`
	MaxThreadsPerSM       *int     `json:"max_threads_per_sm,omitempty"`
	SharedThroughputPerSM *float64 `json:"shared_throughput_per_sm,omitempty"`
	LaunchOverheadCycles  *float64 `json:"launch_overhead_cycles,omitempty"`
}

// ReadArch parses an architecture description from JSON. The description
// starts from a named base configuration ("ampere" by default, or "turing")
// and overrides any field present in the file, so design-space variants need
// only list what changes:
//
//	{"name": "wide-ampere", "base": "ampere", "sms": 96, "dram_bandwidth_gbs": 1000}
//
// The resulting architecture is validated before being returned.
func ReadArch(r io.Reader) (Arch, error) {
	var cfg archJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return Arch{}, fmt.Errorf("gpu: parse arch config: %w", err)
	}
	var a Arch
	switch cfg.Base {
	case "", "ampere":
		a = Ampere()
	case "turing":
		a = Turing()
	default:
		return Arch{}, fmt.Errorf("gpu: unknown base architecture %q", cfg.Base)
	}
	if cfg.Name != "" {
		a.Name = cfg.Name
	}
	if cfg.Generation != "" {
		a.Generation = cfg.Generation
	}
	if cfg.SMs != nil {
		a.SMs = *cfg.SMs
	}
	if cfg.ClockGHz != nil {
		a.ClockGHz = *cfg.ClockGHz
	}
	if cfg.IssuePerSM != nil {
		a.IssuePerSM = *cfg.IssuePerSM
	}
	if cfg.FP32Boost != nil {
		a.FP32Boost = *cfg.FP32Boost
	}
	if cfg.TensorBoost != nil {
		a.TensorBoost = *cfg.TensorBoost
	}
	if cfg.DRAMBandwidthGBs != nil {
		a.DRAMBandwidthGBs = *cfg.DRAMBandwidthGBs
	}
	if cfg.L2Bytes != nil {
		a.L2Bytes = *cfg.L2Bytes
	}
	if cfg.MemLatencyCycles != nil {
		a.MemLatencyCycles = *cfg.MemLatencyCycles
	}
	if cfg.MaxThreadsPerSM != nil {
		a.MaxThreadsPerSM = *cfg.MaxThreadsPerSM
	}
	if cfg.SharedThroughputPerSM != nil {
		a.SharedThroughputPerSM = *cfg.SharedThroughputPerSM
	}
	if cfg.LaunchOverheadCycles != nil {
		a.LaunchOverheadCycles = *cfg.LaunchOverheadCycles
	}
	if err := a.Validate(); err != nil {
		return Arch{}, err
	}
	return a, nil
}

// WriteArch serializes the full architecture description as JSON (all fields
// explicit, base omitted).
func WriteArch(a Arch, w io.Writer) error {
	if err := a.Validate(); err != nil {
		return err
	}
	cfg := archJSON{
		Name:                  a.Name,
		Generation:            a.Generation,
		SMs:                   &a.SMs,
		ClockGHz:              &a.ClockGHz,
		IssuePerSM:            &a.IssuePerSM,
		FP32Boost:             &a.FP32Boost,
		TensorBoost:           &a.TensorBoost,
		DRAMBandwidthGBs:      &a.DRAMBandwidthGBs,
		L2Bytes:               &a.L2Bytes,
		MemLatencyCycles:      &a.MemLatencyCycles,
		MaxThreadsPerSM:       &a.MaxThreadsPerSM,
		SharedThroughputPerSM: &a.SharedThroughputPerSM,
		LaunchOverheadCycles:  &a.LaunchOverheadCycles,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(cfg)
}
