package gpu

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadArchOverridesBase(t *testing.T) {
	in := `{"name": "wide-ampere", "sms": 96, "dram_bandwidth_gbs": 1000}`
	a, err := ReadArch(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if a.Name != "wide-ampere" || a.SMs != 96 || a.DRAMBandwidthGBs != 1000 {
		t.Fatalf("overrides not applied: %+v", a)
	}
	// Unmentioned fields inherit from Ampere.
	if a.ClockGHz != Ampere().ClockGHz || a.L2Bytes != Ampere().L2Bytes {
		t.Fatal("base fields not inherited")
	}
}

func TestReadArchTuringBase(t *testing.T) {
	a, err := ReadArch(strings.NewReader(`{"base": "turing", "name": "t2"}`))
	if err != nil {
		t.Fatal(err)
	}
	if a.DRAMBandwidthGBs != Turing().DRAMBandwidthGBs {
		t.Fatal("turing base not applied")
	}
	if a.Name != "t2" {
		t.Fatal("name override lost")
	}
}

func TestReadArchErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"bad json", `{`},
		{"unknown field", `{"name": "x", "warp_width": 64}`},
		{"unknown base", `{"base": "volta"}`},
		{"invalid result", `{"sms": 0}`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ReadArch(strings.NewReader(c.in)); err == nil {
				t.Fatal("want error")
			}
		})
	}
}

func TestArchJSONRoundTrip(t *testing.T) {
	orig := Turing()
	orig.Name = "custom"
	orig.SMs = 42
	var buf bytes.Buffer
	if err := WriteArch(orig, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadArch(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != orig {
		t.Fatalf("round trip changed arch:\n got %+v\nwant %+v", got, orig)
	}
}

func TestWriteArchRejectsInvalid(t *testing.T) {
	bad := Ampere()
	bad.ClockGHz = 0
	var buf bytes.Buffer
	if err := WriteArch(bad, &buf); err == nil {
		t.Fatal("want error for invalid arch")
	}
}
