package gpu

import (
	"fmt"
	"math"

	"github.com/gpusampling/sieve/internal/cudamodel"
)

// transactionBytes is the size of one coalesced memory transaction (a 32-byte
// sector, the granularity Nsight counts).
const transactionBytes = 32

// Model is the analytical hardware timing model for one architecture. It
// plays the role of the paper's real GPUs: the experiments "run" every kernel
// invocation through it to obtain golden cycle counts, and "run" the selected
// representatives through it to obtain the sampled prediction inputs.
type Model struct {
	arch Arch
}

// NewModel returns a timing model for the architecture, validating it first.
func NewModel(arch Arch) (*Model, error) {
	if err := arch.Validate(); err != nil {
		return nil, err
	}
	return &Model{arch: arch}, nil
}

// Arch returns the modeled architecture.
func (m *Model) Arch() Arch { return m.arch }

// Cycles returns the deterministic cycle count for executing inv on this
// architecture. The invocation is not modified.
func (m *Model) Cycles(inv *cudamodel.Invocation) float64 {
	a := m.arch
	c := &inv.Chars
	h := &inv.Hidden

	// --- Compute demand -------------------------------------------------
	// Thread-level instructions issue as warp instructions; divergence
	// inflates the issue-slot demand (inactive lanes still occupy slots).
	warpInstr := c.InstructionCount / cudamodel.WarpSize
	divEff := c.DivergenceEfficiency
	if divEff <= 0 || divEff > 1 {
		divEff = 1
	}
	issueDemand := warpInstr / divEff

	// Unit-mix boosts: Ampere's doubled FP32 datapath and the tensor pipes
	// raise effective issue throughput for the eligible fractions. These
	// fractions live in Hidden — real silicon exploits them, the PKS feature
	// vector cannot see them.
	throughput := a.IssuePerSM * float64(a.SMs)
	boost := 1 + a.FP32Boost*clamp01(h.FP32Fraction) + a.TensorBoost*clamp01(h.TensorFraction)
	computeCycles := issueDemand / (throughput * boost)

	// --- DRAM demand -----------------------------------------------------
	transactions := c.CoalescedGlobalLoads + c.CoalescedGlobalStores +
		c.CoalescedLocalLoads + c.ThreadGlobalAtomics
	bytes := transactions * transactionBytes
	locality := clamp01(h.CacheLocality)
	if h.L2WorkingSet > a.L2Bytes {
		// Working set spills past the L2: most of the would-be hits turn
		// into DRAM traffic. The residual captures L1/register reuse.
		locality *= 0.3
	}
	dramBytes := bytes * (1 - locality)
	// Row-buffer locality scales achievable bandwidth between 55% and 100%
	// of peak.
	effBPC := a.BytesPerCycle() * (0.55 + 0.45*clamp01(h.RowLocality))
	memCycles := dramBytes / effBPC

	// --- Shared-memory demand ---------------------------------------------
	sharedAccesses := (c.ThreadSharedLoads + c.ThreadSharedStores) / cudamodel.WarpSize
	conflict := h.BankConflictFactor
	if conflict < 1 {
		conflict = 1
	}
	sharedCycles := sharedAccesses * conflict / (a.SharedThroughputPerSM * float64(a.SMs))

	// --- Latency exposure -------------------------------------------------
	// With too few resident threads the SMs cannot hide memory latency:
	// scale the bound up smoothly as parallelism drops below the
	// architectural residency limit.
	parallelism := inv.Threads() / (float64(a.SMs) * float64(a.MaxThreadsPerSM))
	if parallelism > 1 {
		parallelism = 1
	}
	exposure := 1 + (a.MemLatencyCycles/2000)*(1-parallelism)

	bound := math.Max(computeCycles, math.Max(memCycles, sharedCycles))
	return bound*exposure + a.LaunchOverheadCycles
}

// IPC returns thread-level instructions per cycle for inv on this
// architecture.
func (m *Model) IPC(inv *cudamodel.Invocation) float64 {
	return inv.Chars.InstructionCount / m.Cycles(inv)
}

// Seconds converts a cycle count on this architecture to wall-clock seconds.
func (m *Model) Seconds(cycles float64) float64 {
	return cycles / (m.arch.ClockGHz * 1e9)
}

// MeasureWorkload returns the golden per-invocation cycle counts for every
// invocation of w, in chronological order — the paper's "cycle count per
// kernel invocation obtained on real hardware".
func (m *Model) MeasureWorkload(w *cudamodel.Workload) []float64 {
	out := make([]float64, len(w.Invocations))
	for i := range w.Invocations {
		out[i] = m.Cycles(&w.Invocations[i])
	}
	return out
}

// TotalCycles returns the golden total cycle count of the full workload
// execution — the denominator of the paper's error metric.
func (m *Model) TotalCycles(w *cudamodel.Workload) float64 {
	var total float64
	for i := range w.Invocations {
		total += m.Cycles(&w.Invocations[i])
	}
	return total
}

// String identifies the model.
func (m *Model) String() string {
	return fmt.Sprintf("gpu.Model(%s)", m.arch.Name)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
