package gpu

import (
	"math"
	"testing"

	"github.com/gpusampling/sieve/internal/cudamodel"
)

// testInvocation builds a mid-size memory- and compute-balanced invocation.
func testInvocation() cudamodel.Invocation {
	return cudamodel.Invocation{
		Kernel: "k",
		Grid:   cudamodel.Dim3{X: 1024, Y: 1, Z: 1},
		Block:  cudamodel.Dim3{X: 256, Y: 1, Z: 1},
		Chars: cudamodel.Characteristics{
			InstructionCount:      1e9,
			CoalescedGlobalLoads:  2e6,
			CoalescedGlobalStores: 1e6,
			ThreadSharedLoads:     1e7,
			ThreadSharedStores:    5e6,
			DivergenceEfficiency:  1,
			ThreadBlocks:          1024,
		},
		Hidden: cudamodel.Hidden{
			CacheLocality:      0.6,
			RowLocality:        0.8,
			FP32Fraction:       0.5,
			BankConflictFactor: 1,
			L2WorkingSet:       1 << 20,
		},
	}
}

func mustModel(t *testing.T, a Arch) *Model {
	t.Helper()
	m, err := NewModel(a)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestArchConfigsValid(t *testing.T) {
	for _, a := range []Arch{Ampere(), Turing()} {
		if err := a.Validate(); err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
	}
	if Ampere().SMs != 68 || Turing().SMs != 68 {
		t.Fatal("both evaluation GPUs have 68 SMs per the paper")
	}
	if Ampere().DRAMBandwidthGBs != 760 || Turing().DRAMBandwidthGBs != 616 {
		t.Fatal("paper-specified DRAM bandwidths")
	}
}

func TestArchValidateRejections(t *testing.T) {
	base := Ampere()
	cases := []struct {
		name   string
		mutate func(*Arch)
	}{
		{"no name", func(a *Arch) { a.Name = "" }},
		{"zero SMs", func(a *Arch) { a.SMs = 0 }},
		{"zero clock", func(a *Arch) { a.ClockGHz = 0 }},
		{"zero issue", func(a *Arch) { a.IssuePerSM = 0 }},
		{"negative boost", func(a *Arch) { a.FP32Boost = -1 }},
		{"zero bandwidth", func(a *Arch) { a.DRAMBandwidthGBs = 0 }},
		{"zero L2", func(a *Arch) { a.L2Bytes = 0 }},
		{"zero latency", func(a *Arch) { a.MemLatencyCycles = 0 }},
		{"zero residency", func(a *Arch) { a.MaxThreadsPerSM = 0 }},
		{"zero shared throughput", func(a *Arch) { a.SharedThroughputPerSM = 0 }},
		{"negative launch overhead", func(a *Arch) { a.LaunchOverheadCycles = -1 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			a := base
			c.mutate(&a)
			if err := a.Validate(); err == nil {
				t.Fatal("want validation error")
			}
			if _, err := NewModel(a); err == nil {
				t.Fatal("NewModel must reject invalid arch")
			}
		})
	}
}

func TestCyclesDeterministic(t *testing.T) {
	m := mustModel(t, Ampere())
	inv := testInvocation()
	a := m.Cycles(&inv)
	b := m.Cycles(&inv)
	if a != b {
		t.Fatalf("nondeterministic cycles: %g vs %g", a, b)
	}
	if a <= 0 || math.IsNaN(a) || math.IsInf(a, 0) {
		t.Fatalf("cycles = %g", a)
	}
}

func TestCyclesMonotoneInInstructions(t *testing.T) {
	m := mustModel(t, Ampere())
	inv := testInvocation()
	small := m.Cycles(&inv)
	inv.Chars.InstructionCount *= 10
	large := m.Cycles(&inv)
	if large <= small {
		t.Fatalf("10x instructions did not increase cycles: %g vs %g", small, large)
	}
}

func TestCyclesMonotoneInMemoryTraffic(t *testing.T) {
	m := mustModel(t, Ampere())
	inv := testInvocation()
	inv.Chars.CoalescedGlobalLoads = 1e8 // memory-bound regime
	base := m.Cycles(&inv)
	inv.Chars.CoalescedGlobalLoads = 5e8
	more := m.Cycles(&inv)
	if more <= base {
		t.Fatalf("more DRAM traffic did not increase cycles: %g vs %g", base, more)
	}
}

func TestCacheLocalityReducesCycles(t *testing.T) {
	m := mustModel(t, Ampere())
	inv := testInvocation()
	inv.Chars.CoalescedGlobalLoads = 1e8
	inv.Hidden.CacheLocality = 0.1
	cold := m.Cycles(&inv)
	inv.Hidden.CacheLocality = 0.9
	warm := m.Cycles(&inv)
	if warm >= cold {
		t.Fatalf("higher locality should cut cycles: cold %g, warm %g", cold, warm)
	}
}

func TestL2SpillDisablesLocality(t *testing.T) {
	m := mustModel(t, Ampere())
	inv := testInvocation()
	inv.Chars.CoalescedGlobalLoads = 1e8
	inv.Hidden.CacheLocality = 0.9
	inv.Hidden.L2WorkingSet = 1 << 20 // fits
	fits := m.Cycles(&inv)
	inv.Hidden.L2WorkingSet = 64 << 20 // spills
	spills := m.Cycles(&inv)
	if spills <= fits {
		t.Fatalf("L2 spill should cost cycles: fits %g, spills %g", fits, spills)
	}
}

func TestDivergenceCostsCycles(t *testing.T) {
	m := mustModel(t, Ampere())
	inv := testInvocation()
	inv.Chars.DivergenceEfficiency = 1
	conv := m.Cycles(&inv)
	inv.Chars.DivergenceEfficiency = 0.25
	div := m.Cycles(&inv)
	if div <= conv {
		t.Fatalf("divergence should cost cycles: %g vs %g", conv, div)
	}
}

func TestLowOccupancyExposesLatency(t *testing.T) {
	m := mustModel(t, Ampere())
	inv := testInvocation()
	inv.Grid = cudamodel.Dim3{X: 2, Y: 1, Z: 1} // almost no parallelism
	inv.Chars.ThreadBlocks = 2
	tiny := m.Cycles(&inv)
	inv.Grid = cudamodel.Dim3{X: 100000, Y: 1, Z: 1}
	inv.Chars.ThreadBlocks = 100000
	wide := m.Cycles(&inv)
	// Same work, more parallelism → cheaper or equal.
	if wide > tiny {
		t.Fatalf("full occupancy should not be slower: tiny %g, wide %g", tiny, wide)
	}
}

func TestBankConflictsCostCycles(t *testing.T) {
	m := mustModel(t, Ampere())
	inv := testInvocation()
	inv.Chars.ThreadSharedLoads = 5e9 // shared-bound regime
	inv.Hidden.BankConflictFactor = 1
	clean := m.Cycles(&inv)
	inv.Hidden.BankConflictFactor = 8
	conflicted := m.Cycles(&inv)
	if conflicted <= clean {
		t.Fatalf("bank conflicts should cost cycles: %g vs %g", clean, conflicted)
	}
}

func TestFP32FractionHelpsAmpereOnly(t *testing.T) {
	amp := mustModel(t, Ampere())
	tur := mustModel(t, Turing())
	inv := testInvocation()
	inv.Chars.CoalescedGlobalLoads = 0 // compute-bound
	inv.Chars.CoalescedGlobalStores = 0
	inv.Chars.ThreadSharedLoads = 0
	inv.Chars.ThreadSharedStores = 0

	inv.Hidden.FP32Fraction = 0
	ampScalar := amp.Cycles(&inv)
	turScalar := tur.Cycles(&inv)
	inv.Hidden.FP32Fraction = 1
	ampFP := amp.Cycles(&inv)
	turFP := tur.Cycles(&inv)

	if ampFP >= ampScalar {
		t.Fatalf("FP32 fraction should speed up Ampere: %g vs %g", ampScalar, ampFP)
	}
	if turFP != turScalar {
		t.Fatalf("Turing has no FP32 boost: %g vs %g", turScalar, turFP)
	}
}

func TestIPCAndSeconds(t *testing.T) {
	m := mustModel(t, Ampere())
	inv := testInvocation()
	cycles := m.Cycles(&inv)
	ipc := m.IPC(&inv)
	if math.Abs(ipc*cycles-inv.Chars.InstructionCount) > 1e-6*inv.Chars.InstructionCount {
		t.Fatalf("IPC inconsistent: ipc %g × cycles %g != instr %g", ipc, cycles, inv.Chars.InstructionCount)
	}
	secs := m.Seconds(cycles)
	if math.Abs(secs-cycles/(1.71e9)) > 1e-12*secs {
		t.Fatalf("Seconds = %g", secs)
	}
}

func TestMeasureWorkloadAndTotal(t *testing.T) {
	m := mustModel(t, Ampere())
	inv := testInvocation()
	w := &cudamodel.Workload{
		Name:        "w",
		Invocations: []cudamodel.Invocation{inv, inv, inv},
	}
	for i := range w.Invocations {
		w.Invocations[i].Index = i
		w.Invocations[i].Seq = i
	}
	per := m.MeasureWorkload(w)
	if len(per) != 3 {
		t.Fatalf("per-invocation count %d", len(per))
	}
	var sum float64
	for _, c := range per {
		sum += c
	}
	if got := m.TotalCycles(w); math.Abs(got-sum) > 1e-9*sum {
		t.Fatalf("TotalCycles %g != sum %g", got, sum)
	}
}

func TestCrossArchDifference(t *testing.T) {
	// A heavily memory-bound invocation must run in fewer cycles on the
	// higher-bytes-per-cycle Ampere part.
	amp := mustModel(t, Ampere())
	tur := mustModel(t, Turing())
	inv := testInvocation()
	inv.Chars.CoalescedGlobalLoads = 1e9
	inv.Hidden.CacheLocality = 0
	ampC := amp.Cycles(&inv)
	turC := tur.Cycles(&inv)
	if ampC >= turC {
		t.Fatalf("memory-bound work should favor Ampere in cycles: A %g, T %g", ampC, turC)
	}
	// Working set between 5 MB and 5.5 MB: fits Turing L2 only → Turing can
	// win wall-clock despite the lower clock.
	inv.Hidden.CacheLocality = 0.95
	inv.Hidden.L2WorkingSet = 5.25 * (1 << 20)
	ampT := amp.Seconds(amp.Cycles(&inv))
	turT := tur.Seconds(tur.Cycles(&inv))
	if turT >= ampT {
		t.Fatalf("L2-straddling working set should favor Turing: A %gs, T %gs", ampT, turT)
	}
}

func TestBytesPerCycle(t *testing.T) {
	a := Ampere()
	want := 760.0 / 1.71
	if math.Abs(a.BytesPerCycle()-want) > 1e-9 {
		t.Fatalf("BytesPerCycle = %g, want %g", a.BytesPerCycle(), want)
	}
}

func TestLaunchOverheadFloorsTinyKernels(t *testing.T) {
	m := mustModel(t, Ampere())
	inv := testInvocation()
	inv.Chars.InstructionCount = 1
	inv.Chars.CoalescedGlobalLoads = 0
	inv.Chars.CoalescedGlobalStores = 0
	inv.Chars.ThreadSharedLoads = 0
	inv.Chars.ThreadSharedStores = 0
	if c := m.Cycles(&inv); c < Ampere().LaunchOverheadCycles {
		t.Fatalf("tiny kernel cycles %g below launch overhead", c)
	}
}
