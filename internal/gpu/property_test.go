package gpu

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/gpusampling/sieve/internal/cudamodel"
)

// randomInvocation draws a structurally valid invocation.
func randomInvocation(rng *rand.Rand) cudamodel.Invocation {
	instr := math.Pow(10, 6+rng.Float64()*3)
	return cudamodel.Invocation{
		Kernel: "k",
		Grid:   cudamodel.Dim3{X: int32(1 + rng.Intn(100000)), Y: 1, Z: 1},
		Block:  cudamodel.Dim3{X: int32(32 * (1 + rng.Intn(32))), Y: 1, Z: 1},
		Chars: cudamodel.Characteristics{
			InstructionCount:      instr,
			CoalescedGlobalLoads:  instr * rng.Float64() * 0.05,
			CoalescedGlobalStores: instr * rng.Float64() * 0.02,
			ThreadSharedLoads:     instr * rng.Float64() * 0.2,
			ThreadSharedStores:    instr * rng.Float64() * 0.1,
			DivergenceEfficiency:  0.2 + rng.Float64()*0.8,
			ThreadBlocks:          float64(1 + rng.Intn(100000)),
		},
		Hidden: cudamodel.Hidden{
			CacheLocality:      rng.Float64(),
			RowLocality:        rng.Float64(),
			FP32Fraction:       rng.Float64(),
			TensorFraction:     rng.Float64() * 0.5,
			BankConflictFactor: 1 + rng.Float64()*4,
			L2WorkingSet:       math.Pow(10, 4+rng.Float64()*5),
		},
	}
}

// TestPropertyCyclesPositiveFinite: every structurally valid invocation
// yields positive finite cycles on both architectures.
func TestPropertyCyclesPositiveFinite(t *testing.T) {
	amp, _ := NewModel(Ampere())
	tur, _ := NewModel(Turing())
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inv := randomInvocation(rng)
		for _, m := range []*Model{amp, tur} {
			c := m.Cycles(&inv)
			if c <= 0 || math.IsNaN(c) || math.IsInf(c, 0) {
				return false
			}
			if ipc := m.IPC(&inv); ipc <= 0 || math.IsInf(ipc, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyCyclesMonotoneInWork: scaling every work-proportional counter
// up never reduces cycles.
func TestPropertyCyclesMonotoneInWork(t *testing.T) {
	m, _ := NewModel(Ampere())
	f := func(seed int64, rawScale uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		inv := randomInvocation(rng)
		base := m.Cycles(&inv)
		scale := 1 + float64(rawScale%50)/10 // 1..5.9
		big := inv
		big.Chars.InstructionCount *= scale
		big.Chars.CoalescedGlobalLoads *= scale
		big.Chars.CoalescedGlobalStores *= scale
		big.Chars.ThreadSharedLoads *= scale
		big.Chars.ThreadSharedStores *= scale
		return m.Cycles(&big) >= base-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyLocalityNeverHurts: raising hidden cache locality never
// increases cycles (fixed working set below the L2 capacity).
func TestPropertyLocalityNeverHurts(t *testing.T) {
	m, _ := NewModel(Ampere())
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inv := randomInvocation(rng)
		inv.Hidden.L2WorkingSet = 1 << 20 // fits: isolate the locality term
		lo := inv
		hi := inv
		a, b := rng.Float64(), rng.Float64()
		if a > b {
			a, b = b, a
		}
		lo.Hidden.CacheLocality = a
		hi.Hidden.CacheLocality = b
		return m.Cycles(&hi) <= m.Cycles(&lo)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
