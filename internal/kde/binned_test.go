package kde

import (
	"context"
	"encoding/csv"
	"math"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"testing"
)

// trimodal draws a deterministic three-mode sample.
func trimodal(seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		center := []float64{10, 55, 200}[rng.Intn(3)]
		xs[i] = center + rng.NormFloat64()*center/20
	}
	return xs
}

// binnedTolerance is the analytic error bound of the linear-binned evaluator
// against the exact one, doubled for safety: linear interpolation of the
// kernel between grid nodes contributes at most invSqrt2Pi·step²/(8h³), and
// the 6σ truncation mismatch at most ~2e-8 of the density scale 1/(√2π·h).
func binnedTolerance(e *Estimator, xs []float64) float64 {
	step := xs[1] - xs[0]
	h := e.Bandwidth()
	return 2*invSqrt2Pi*step*step/(8*h*h*h) + 2e-8*invSqrt2Pi/h
}

// TestGridBinnedMatchesExact pins the binned fast path to the exact
// evaluator within the analytic error bound, across sample shapes and grid
// resolutions. Grid positions must stay bitwise identical.
func TestGridBinnedMatchesExact(t *testing.T) {
	samples := map[string][]float64{
		"trimodal":   trimodal(1, 400),
		"bimodal":    {100, 101, 102, 100.5, 9000, 9010, 9005, 9001, 9002},
		"duplicates": {5, 5, 5, 5, 5, 50000, 50000, 50000, 50000},
	}
	rng := rand.New(rand.NewSource(2))
	uniform := make([]float64, 1000)
	for i := range uniform {
		uniform[i] = rng.Float64() * 1e6
	}
	samples["uniform"] = uniform

	for name, xs := range samples {
		for _, n := range []int{64, DefaultGridPoints, 2048} {
			e, err := New(xs, 0)
			if err != nil {
				t.Fatal(err)
			}
			gx, gd, err := e.Grid(n)
			if err != nil {
				t.Fatal(err)
			}
			ex, ed, err := e.GridExact(n)
			if err != nil {
				t.Fatal(err)
			}
			tol := binnedTolerance(e, gx)
			for i := range gx {
				if gx[i] != ex[i] {
					t.Fatalf("%s grid(%d): position %d diverges: %g vs %g", name, n, i, gx[i], ex[i])
				}
				if diff := math.Abs(gd[i] - ed[i]); diff > tol {
					t.Fatalf("%s grid(%d): density %d off by %g > tol %g (binned %g, exact %g)",
						name, n, i, diff, tol, gd[i], ed[i])
				}
			}
		}
	}
}

// TestGridExactMatchesDensity pins the exact evaluator to the per-point
// Density definition: both truncate the kernel at 6 bandwidths, so every
// grid density must be bitwise equal to an independent Density call.
func TestGridExactMatchesDensity(t *testing.T) {
	for _, n := range []int{2, 17, 512, 1500} {
		e, err := New(trimodal(1, 400), 0)
		if err != nil {
			t.Fatal(err)
		}
		xs, ds, err := e.GridExact(n)
		if err != nil {
			t.Fatal(err)
		}
		for i := range xs {
			if want := e.Density(xs[i]); ds[i] != want {
				t.Fatalf("grid(%d) point %d: density %g != Density(%g) = %g", n, i, ds[i], xs[i], want)
			}
		}
	}
}

// TestGridNarrowBandwidthFallsBackToExact: when the kernel is narrower than
// binnedMinBandwidthSteps grid steps the binned approximation cannot resolve
// it, so Grid must produce the exact (bitwise Density-equal) result.
func TestGridNarrowBandwidthFallsBackToExact(t *testing.T) {
	xs := trimodal(3, 500)
	const n = 128
	// Pick a bandwidth well under 6 grid steps of the resulting span.
	e, err := New(xs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	gx, gd, err := e.Grid(n)
	if err != nil {
		t.Fatal(err)
	}
	step := gx[1] - gx[0]
	if e.Bandwidth() >= binnedMinBandwidthSteps*step {
		t.Fatalf("test setup: bandwidth %g not narrow relative to step %g", e.Bandwidth(), step)
	}
	for i := range gx {
		if want := e.Density(gx[i]); gd[i] != want {
			t.Fatalf("narrow grid point %d: %g != Density %g", i, gd[i], want)
		}
	}
}

// TestGridEdgeCases covers the degenerate inputs the binned evaluator must
// honor: a single sample, an all-equal sample (degenerate Silverman
// bandwidth), samples landing exactly on grid nodes, and extreme dynamic
// range — all pinned against the direct Density evaluator.
func TestGridEdgeCases(t *testing.T) {
	t.Run("single-sample", func(t *testing.T) {
		e, err := New([]float64{5}, 0)
		if err != nil {
			t.Fatal(err)
		}
		checkAgainstDensity(t, e, 64)
	})
	t.Run("all-equal", func(t *testing.T) {
		e, err := New([]float64{3, 3, 3, 3}, 0)
		if err != nil {
			t.Fatal(err)
		}
		checkAgainstDensity(t, e, 64)
	})
	t.Run("on-grid-boundaries", func(t *testing.T) {
		// Samples chosen so that after the 3h extension several of them land
		// exactly on grid nodes (integer positions, integer bandwidth, grid
		// step dividing the span evenly).
		xs := make([]float64, 0, 101)
		for i := 0; i <= 100; i++ {
			xs = append(xs, float64(i))
		}
		e, err := New(xs, 2) // span = 112, grid(113) → step 1, nodes at integers
		if err != nil {
			t.Fatal(err)
		}
		checkAgainstDensity(t, e, 113)
	})
	t.Run("extreme-dynamic-range", func(t *testing.T) {
		// Twelve orders of magnitude between the modes.
		xs := []float64{1, 1.5, 2, 1.2, 1e12, 1.0001e12, 1.0002e12}
		e, err := New(xs, 0)
		if err != nil {
			t.Fatal(err)
		}
		checkAgainstDensity(t, e, DefaultGridPoints)
	})
	t.Run("tiny-grid", func(t *testing.T) {
		e, err := New(trimodal(7, 50), 0)
		if err != nil {
			t.Fatal(err)
		}
		checkAgainstDensity(t, e, 2)
	})
}

// checkAgainstDensity compares Grid(n) against per-point Density within the
// binned tolerance (bitwise when the exact path is active).
func checkAgainstDensity(t *testing.T, e *Estimator, n int) {
	t.Helper()
	gx, gd, err := e.Grid(n)
	if err != nil {
		t.Fatal(err)
	}
	tol := binnedTolerance(e, gx)
	for i := range gx {
		want := e.Density(gx[i])
		if diff := math.Abs(gd[i] - want); diff > tol {
			t.Fatalf("grid(%d) point %d (x=%g): |%g - %g| = %g > tol %g",
				n, i, gx[i], gd[i], want, diff, tol)
		}
	}
}

// TestValleysBinnedMatchesExact proves the property the byte-identical-plan
// guarantee rests on: the binned grid and the exact grid yield the same
// valley set — and hence the same downstream sample partition — on
// realistic multimodal instruction-count distributions.
func TestValleysBinnedMatchesExact(t *testing.T) {
	cases := map[string][]float64{
		"trimodal-narrow": trimodal(11, 400),
		"bimodal-far":     append(constSlice(100, 100, 3), constSlice(100, 10000, 5)...),
		"unimodal":        normalSample(13, 500, 0, 5),
	}
	for i := int64(0); i < 8; i++ {
		cases["mixture-"+strconv.FormatInt(i, 10)] = mixtureSample(100 + i)
	}
	for name, xs := range cases {
		assertSameValleySplit(t, name, xs)
	}
}

// TestValleysConsistentOnProfileFixture runs the same binned-vs-exact valley
// check over every kernel of the checked-in lmc profile — the fixture the
// service smoke tests and golden plans are built from.
func TestValleysConsistentOnProfileFixture(t *testing.T) {
	f, err := os.Open("../../testdata/profile_lmc_scale0.01.csv")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r := csv.NewReader(f)
	rows, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	byKernel := map[string][]float64{}
	for _, row := range rows[1:] { // skip header kernel,index,seq,cta_size,instruction_count
		v, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatal(err)
		}
		byKernel[row[0]] = append(byKernel[row[0]], v)
	}
	kernels := 0
	for name, counts := range byKernel {
		if len(counts) < 2 {
			continue
		}
		kernels++
		assertSameValleySplit(t, name, counts)
	}
	if kernels == 0 {
		t.Fatal("fixture yielded no multi-invocation kernels")
	}
}

// assertSameValleySplit fits a Silverman KDE to xs and requires the binned
// and exact valley sets to induce the same partition of the sample.
func assertSameValleySplit(t *testing.T, name string, xs []float64) {
	t.Helper()
	e, err := New(xs, 0)
	if err != nil {
		t.Fatal(err)
	}
	binned, err := e.Valleys(DefaultGridPoints)
	if err != nil {
		t.Fatal(err)
	}
	ex, ed, err := e.GridExact(DefaultGridPoints)
	if err != nil {
		t.Fatal(err)
	}
	exact := ValleysFromGrid(ex, ed)
	gBinned := SplitAtValleys(xs, binned)
	gExact := SplitAtValleys(xs, exact)
	if len(gBinned) != len(gExact) {
		t.Fatalf("%s: binned valleys %v split into %d groups, exact %v into %d",
			name, binned, len(gBinned), exact, len(gExact))
	}
	for i := range gBinned {
		if len(gBinned[i]) != len(gExact[i]) {
			t.Fatalf("%s: group %d has %d members binned vs %d exact",
				name, i, len(gBinned[i]), len(gExact[i]))
		}
	}
}

// TestGridIntoZeroAllocs is the allocation-regression guard for the KDE hot
// path: once warm, GridInto must not allocate at all.
func TestGridIntoZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	e, err := New(trimodal(5, 2000), 0)
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]float64, DefaultGridPoints)
	ds := make([]float64, DefaultGridPoints)
	ctx := context.Background()
	// Warm the buffer pool.
	if err := e.GridInto(ctx, xs, ds); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		if err := e.GridInto(ctx, xs, ds); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("GridInto allocates %g times per run, want 0", allocs)
	}
}

func TestGridIntoValidatesBuffers(t *testing.T) {
	e, err := New([]float64{1, 2, 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := e.GridInto(ctx, make([]float64, 1), make([]float64, 1)); err == nil {
		t.Fatal("want error for 1-point grid")
	}
	if err := e.GridInto(ctx, make([]float64, 8), make([]float64, 4)); err == nil {
		t.Fatal("want error for mismatched buffers")
	}
}

func TestGridContextCancelled(t *testing.T) {
	e, err := New(trimodal(6, 100), 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := e.GridContext(ctx, 64); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func constSlice(n int, v float64, jitterMod int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v + float64(i%jitterMod)
	}
	return out
}

func normalSample(seed int64, n int, mean, sigma float64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = mean + sigma*rng.NormFloat64()
	}
	return out
}

// mixtureSample mimics Tier-3 instruction counts: 2–4 positive modes with a
// few percent of spread each.
func mixtureSample(seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	modes := 2 + rng.Intn(3)
	centers := make([]float64, modes)
	for i := range centers {
		centers[i] = float64(1+rng.Intn(50)) * 1e4
	}
	n := 50 + rng.Intn(400)
	out := make([]float64, n)
	for i := range out {
		c := centers[rng.Intn(modes)]
		out[i] = c * (1 + 0.03*rng.NormFloat64())
		if out[i] < 1 {
			out[i] = 1
		}
	}
	return out
}

func TestNewSortedMatchesNew(t *testing.T) {
	xs := trimodal(3, 500)
	viaNew, err := New(xs, 0)
	if err != nil {
		t.Fatal(err)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	viaSorted, err := NewSorted(sorted, 0)
	if err != nil {
		t.Fatal(err)
	}
	if viaNew.Bandwidth() != viaSorted.Bandwidth() {
		t.Fatalf("bandwidth %g != %g", viaSorted.Bandwidth(), viaNew.Bandwidth())
	}
	if viaNew.N() != viaSorted.N() {
		t.Fatalf("N %d != %d", viaSorted.N(), viaNew.N())
	}
	for _, x := range []float64{0, 10, 55, 123.4, 200} {
		if a, b := viaNew.Density(x), viaSorted.Density(x); a != b {
			t.Fatalf("density at %g: %g != %g", x, b, a)
		}
	}
}

func TestNewSortedRejectsUnsortedAndEmpty(t *testing.T) {
	if _, err := NewSorted([]float64{2, 1}, 0); err == nil {
		t.Fatal("want error for unsorted input")
	}
	if _, err := NewSorted(nil, 0); err == nil {
		t.Fatal("want error for empty input")
	}
}

func TestSilvermanBandwidthSortedMatches(t *testing.T) {
	xs := trimodal(4, 300)
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if a, b := SilvermanBandwidth(xs), SilvermanBandwidthSorted(sorted); a != b {
		t.Fatalf("SilvermanBandwidthSorted %g != SilvermanBandwidth %g", b, a)
	}
	if SilvermanBandwidthSorted(nil) != 1 {
		t.Fatal("empty sample must fall back to bandwidth 1")
	}
}
