package kde

import (
	"context"
	"fmt"
	"math"
	"sort"

	"github.com/gpusampling/sieve/internal/obs"
)

// Mixture is a one-dimensional Gaussian mixture model.
type Mixture struct {
	// Weights, Means and StdDevs describe the components; Weights sum to 1
	// and StdDevs are strictly positive.
	Weights, Means, StdDevs []float64
}

// K returns the number of components.
func (m *Mixture) K() int { return len(m.Weights) }

// gmmMaxIter bounds EM iterations; 1-D mixtures on instruction counts
// converge in a few dozen.
const gmmMaxIter = 200

// minMixtureStdDev floors component standard deviations relative to the
// sample spread to keep the likelihood bounded (EM's classic degenerate
// collapse onto a single point).
const minMixtureStdDevFrac = 1e-4

// FitMixture fits a k-component 1-D Gaussian mixture to xs with
// expectation-maximization. Initialization is deterministic (means at
// sample quantiles, shared variance), so identical inputs give identical
// mixtures.
func FitMixture(xs []float64, k int) (*Mixture, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("kde: no samples for mixture")
	}
	if k < 1 || k > len(xs) {
		return nil, fmt.Errorf("kde: mixture components %d outside [1, %d]", k, len(xs))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)

	var mean, varAcc float64
	for _, x := range sorted {
		mean += x
	}
	mean /= float64(len(sorted))
	for _, x := range sorted {
		d := x - mean
		varAcc += d * d
	}
	sampleSD := math.Sqrt(varAcc / float64(len(sorted)))
	floorSD := sampleSD * minMixtureStdDevFrac
	if floorSD == 0 {
		floorSD = math.Max(math.Abs(mean)*1e-6, 1e-12)
	}

	m := &Mixture{
		Weights: make([]float64, k),
		Means:   make([]float64, k),
		StdDevs: make([]float64, k),
	}
	for c := 0; c < k; c++ {
		m.Weights[c] = 1 / float64(k)
		m.Means[c] = quantileSorted(sorted, (float64(c)+0.5)/float64(k))
		m.StdDevs[c] = math.Max(sampleSD/float64(k), floorSD)
	}

	n := len(sorted)
	resp := make([]float64, n*k)
	var prevLL float64
	for iter := 0; iter < gmmMaxIter; iter++ {
		// E-step: responsibilities.
		var ll float64
		for i, x := range sorted {
			var total float64
			for c := 0; c < k; c++ {
				p := m.Weights[c] * gaussianPDF(x, m.Means[c], m.StdDevs[c])
				resp[i*k+c] = p
				total += p
			}
			if total <= 0 {
				// Point infinitely unlikely under every component (extreme
				// tail): assign to the nearest mean.
				best := 0
				for c := 1; c < k; c++ {
					if math.Abs(x-m.Means[c]) < math.Abs(x-m.Means[best]) {
						best = c
					}
				}
				for c := 0; c < k; c++ {
					resp[i*k+c] = 0
				}
				resp[i*k+best] = 1
				total = 1
			}
			for c := 0; c < k; c++ {
				resp[i*k+c] /= total
			}
			ll += math.Log(total)
		}
		// M-step.
		for c := 0; c < k; c++ {
			var w, mu float64
			for i, x := range sorted {
				w += resp[i*k+c]
				mu += resp[i*k+c] * x
			}
			if w <= 0 {
				// Dead component: reseat on the point least explained.
				worst, worstP := 0, math.Inf(1)
				for i := range sorted {
					var p float64
					for cc := 0; cc < k; cc++ {
						p += resp[i*k+cc] * m.Weights[cc]
					}
					if p < worstP {
						worst, worstP = i, p
					}
				}
				m.Means[c] = sorted[worst]
				m.StdDevs[c] = math.Max(sampleSD/float64(k), floorSD)
				m.Weights[c] = 1 / float64(n)
				continue
			}
			mu /= w
			var va float64
			for i, x := range sorted {
				d := x - mu
				va += resp[i*k+c] * d * d
			}
			m.Weights[c] = w / float64(n)
			m.Means[c] = mu
			m.StdDevs[c] = math.Max(math.Sqrt(va/w), floorSD)
		}
		if iter > 0 && math.Abs(ll-prevLL) < 1e-9*(1+math.Abs(prevLL)) {
			break
		}
		prevLL = ll
	}
	// Keep components sorted by mean for deterministic downstream use.
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return m.Means[idx[a]] < m.Means[idx[b]] })
	out := &Mixture{
		Weights: make([]float64, k),
		Means:   make([]float64, k),
		StdDevs: make([]float64, k),
	}
	for i, j := range idx {
		out.Weights[i] = m.Weights[j]
		out.Means[i] = m.Means[j]
		out.StdDevs[i] = m.StdDevs[j]
	}
	return out, nil
}

// Assign returns the index of the most responsible component for x.
func (m *Mixture) Assign(x float64) int {
	best, bestP := 0, -1.0
	for c := range m.Weights {
		if p := m.Weights[c] * gaussianPDF(x, m.Means[c], m.StdDevs[c]); p > bestP {
			best, bestP = c, p
		}
	}
	return best
}

// SplitUnderCoVGMM stratifies xs like SplitUnderCoV, but with an EM-fitted
// Gaussian mixture instead of KDE valleys: the component count grows until
// every contiguous run of same-component samples has CoV below threshold
// (stubborn runs fall back to median bisection). Groups are ascending and
// partition the input.
func SplitUnderCoVGMM(xs []float64, threshold float64) ([][]float64, error) {
	return SplitUnderCoVGMMContext(context.Background(), xs, threshold)
}

// SplitUnderCoVGMMContext is SplitUnderCoVGMM with observability: a collector
// attached to ctx records a kde.split_gmm span carrying the sample count and
// resulting group count. The EM fit itself is uninterruptible; ctx is observed
// only at span boundaries.
func SplitUnderCoVGMMContext(ctx context.Context, xs []float64, threshold float64) ([][]float64, error) {
	_, sp := obs.StartSpan(ctx, "kde.split_gmm")
	defer sp.End()
	if sp.Active() {
		sp.SetAttr("samples", len(xs))
		sp.SetAttr("threshold", threshold)
	}
	out, err := splitUnderCoVGMM(xs, threshold)
	if err == nil && sp.Active() {
		sp.SetAttr("groups", len(out))
	}
	return out, err
}

func splitUnderCoVGMM(xs []float64, threshold float64) ([][]float64, error) {
	if threshold <= 0 {
		return nil, fmt.Errorf("kde: non-positive CoV threshold %g", threshold)
	}
	if len(xs) == 0 {
		return nil, fmt.Errorf("kde: no samples to split")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if cov(sorted) < threshold {
		return [][]float64{sorted}, nil
	}

	maxK := 16
	if maxK > len(sorted) {
		maxK = len(sorted)
	}
	var groups [][]float64
	for k := 2; k <= maxK; k++ {
		m, err := FitMixture(sorted, k)
		if err != nil {
			return nil, err
		}
		groups = contiguousRuns(sorted, m)
		if allUnder(groups, threshold) {
			return groups, nil
		}
	}
	// Bisect whatever the largest mixture could not make homogeneous.
	var out [][]float64
	for _, g := range groups {
		out = append(out, bisectUnderCoV(g, threshold, 0)...)
	}
	return out, nil
}

// contiguousRuns partitions the sorted sample into runs of equal hard
// assignment.
func contiguousRuns(sorted []float64, m *Mixture) [][]float64 {
	var groups [][]float64
	start := 0
	current := m.Assign(sorted[0])
	for i := 1; i < len(sorted); i++ {
		if a := m.Assign(sorted[i]); a != current {
			groups = append(groups, sorted[start:i:i])
			start, current = i, a
		}
	}
	return append(groups, sorted[start:])
}

func allUnder(groups [][]float64, threshold float64) bool {
	for _, g := range groups {
		if len(g) > 1 && cov(g) >= threshold {
			return false
		}
	}
	return true
}

// gaussianPDF is the normal density.
func gaussianPDF(x, mu, sd float64) float64 {
	u := (x - mu) / sd
	return math.Exp(-0.5*u*u) * invSqrt2Pi / sd
}
