package kde

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFitMixtureValidation(t *testing.T) {
	if _, err := FitMixture(nil, 1); err == nil {
		t.Fatal("want error for empty sample")
	}
	if _, err := FitMixture([]float64{1, 2}, 0); err == nil {
		t.Fatal("want error for zero components")
	}
	if _, err := FitMixture([]float64{1, 2}, 3); err == nil {
		t.Fatal("want error for k > n")
	}
}

func TestFitMixtureSingleComponent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = 100 + rng.NormFloat64()*5
	}
	m, err := FitMixture(xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.K() != 1 {
		t.Fatalf("K = %d", m.K())
	}
	if math.Abs(m.Means[0]-100) > 1 {
		t.Fatalf("mean = %g, want ≈100", m.Means[0])
	}
	if math.Abs(m.StdDevs[0]-5) > 1 {
		t.Fatalf("sd = %g, want ≈5", m.StdDevs[0])
	}
	if math.Abs(m.Weights[0]-1) > 1e-9 {
		t.Fatalf("weight = %g", m.Weights[0])
	}
}

func TestFitMixtureRecoversTwoComponents(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var xs []float64
	for i := 0; i < 300; i++ {
		xs = append(xs, 100+rng.NormFloat64()*3)
	}
	for i := 0; i < 100; i++ {
		xs = append(xs, 1000+rng.NormFloat64()*30)
	}
	m, err := FitMixture(xs, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Components come back sorted by mean.
	if math.Abs(m.Means[0]-100) > 5 || math.Abs(m.Means[1]-1000) > 50 {
		t.Fatalf("means = %v", m.Means)
	}
	if math.Abs(m.Weights[0]-0.75) > 0.05 || math.Abs(m.Weights[1]-0.25) > 0.05 {
		t.Fatalf("weights = %v", m.Weights)
	}
	// Assignment separates the modes.
	if m.Assign(100) == m.Assign(1000) {
		t.Fatal("modes share a component")
	}
}

func TestFitMixtureDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = float64(1+i%4)*100 + rng.NormFloat64()
	}
	a, err := FitMixture(xs, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FitMixture(xs, 3)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 3; c++ {
		if a.Means[c] != b.Means[c] || a.Weights[c] != b.Weights[c] {
			t.Fatal("nondeterministic fit")
		}
	}
}

func TestFitMixtureDegenerateConstantSample(t *testing.T) {
	xs := []float64{7, 7, 7, 7}
	m, err := FitMixture(xs, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, sd := range m.StdDevs {
		if sd <= 0 || math.IsNaN(sd) {
			t.Fatalf("degenerate sd %g", sd)
		}
	}
}

func TestSplitUnderCoVGMMHomogeneous(t *testing.T) {
	groups, err := SplitUnderCoVGMM([]float64{100, 101, 99}, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 || len(groups[0]) != 3 {
		t.Fatalf("groups = %v", groups)
	}
}

func TestSplitUnderCoVGMMBimodal(t *testing.T) {
	var xs []float64
	for i := 0; i < 100; i++ {
		xs = append(xs, 100+float64(i%3))
		xs = append(xs, 10000+float64(i%5))
	}
	groups, err := SplitUnderCoVGMM(xs, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) < 2 {
		t.Fatalf("bimodal sample not split: %d groups", len(groups))
	}
	total := 0
	for _, g := range groups {
		total += len(g)
		if len(g) > 1 && covOf(g) >= 0.4 {
			t.Fatalf("group CoV %g ≥ threshold", covOf(g))
		}
	}
	if total != len(xs) {
		t.Fatalf("samples lost: %d of %d", total, len(xs))
	}
}

func TestSplitUnderCoVGMMErrors(t *testing.T) {
	if _, err := SplitUnderCoVGMM(nil, 0.4); err == nil {
		t.Fatal("want error for empty sample")
	}
	if _, err := SplitUnderCoVGMM([]float64{1}, 0); err == nil {
		t.Fatal("want error for non-positive threshold")
	}
}

func TestSplitUnderCoVGMMProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(200)
		xs := make([]float64, n)
		for i := range xs {
			mode := float64(1+rng.Intn(3)) * 1000
			xs[i] = mode + rng.NormFloat64()*mode*0.02
			if xs[i] < 1 {
				xs[i] = 1
			}
		}
		groups, err := SplitUnderCoVGMM(xs, 0.4)
		if err != nil {
			return false
		}
		total := 0
		prevMax := math.Inf(-1)
		for _, g := range groups {
			if len(g) == 0 {
				return false
			}
			total += len(g)
			// Ascending partition.
			if g[0] < prevMax {
				return false
			}
			prevMax = g[len(g)-1]
			if len(g) > 1 && covOf(g) >= 0.4 {
				return false
			}
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
