// Package kde implements one-dimensional Gaussian kernel density estimation,
// the tool Sieve uses to split high-variability (Tier-3) kernels into strata
// (Section III-B of the paper): the estimated density over instruction counts
// is cut at its local minima ("valleys"), grouping invocations into modes so
// that per-stratum dispersion stays below the CoV threshold.
package kde

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"github.com/gpusampling/sieve/internal/obs"
)

// Estimator is a fitted 1-D Gaussian kernel density estimator.
type Estimator struct {
	samples   []float64 // sorted copy of the input
	bandwidth float64
}

// invSqrt2Pi is 1/√(2π), the Gaussian kernel normalization constant.
var invSqrt2Pi = 1 / math.Sqrt(2*math.Pi)

// New fits a Gaussian KDE to xs with the given bandwidth. A bandwidth ≤ 0
// selects Silverman's rule of thumb. It returns an error for empty input.
func New(xs []float64, bandwidth float64) (*Estimator, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("kde: no samples")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return NewSorted(sorted, bandwidth)
}

// NewSorted fits a Gaussian KDE to already ascending-sorted samples without
// copying them; the estimator takes ownership of sorted, which must not be
// modified afterwards. It returns an error for empty or unsorted input.
// Fitting a pre-sorted sample skips both the defensive copy and the re-sort
// New performs, so callers that hold sorted data pay one sort total.
func NewSorted(sorted []float64, bandwidth float64) (*Estimator, error) {
	if len(sorted) == 0 {
		return nil, fmt.Errorf("kde: no samples")
	}
	for i := 1; i < len(sorted); i++ {
		if sorted[i] < sorted[i-1] {
			return nil, fmt.Errorf("kde: samples not sorted at index %d", i)
		}
	}
	if bandwidth <= 0 {
		bandwidth = SilvermanBandwidthSorted(sorted)
	}
	return &Estimator{samples: sorted, bandwidth: bandwidth}, nil
}

// Bandwidth returns the estimator's bandwidth.
func (e *Estimator) Bandwidth() float64 { return e.bandwidth }

// N returns the number of fitted samples.
func (e *Estimator) N() int { return len(e.samples) }

// Density evaluates the estimated probability density at x.
func (e *Estimator) Density(x float64) float64 {
	h := e.bandwidth
	var acc float64
	// Samples are sorted: only those within 6h of x contribute more than
	// ~1e-8 of the kernel mass, so bound the scan with binary search.
	lo := sort.SearchFloat64s(e.samples, x-6*h)
	hi := sort.SearchFloat64s(e.samples, x+6*h)
	for _, s := range e.samples[lo:hi] {
		u := (x - s) / h
		acc += math.Exp(-0.5 * u * u)
	}
	return acc * invSqrt2Pi / (float64(len(e.samples)) * h)
}

// binnedMinBandwidthSteps gates the linear-binned evaluator. Linear binning
// replaces each sample's kernel contribution by a linear interpolation
// between the two neighboring grid nodes, whose relative error is bounded by
// (step/h)²/8; requiring h ≥ 6·step keeps binned densities within ~0.35% of
// the exact evaluation everywhere, far below anything that moves a valley.
// Narrower bandwidths (where the grid cannot resolve the kernel) fall back
// to the exact sliding-window evaluation, which is cheap there anyway
// because the per-point window holds few samples.
const binnedMinBandwidthSteps = 6

// Grid evaluates the density on n evenly spaced points spanning the sample
// range extended by 3 bandwidths on each side. It returns parallel slices of
// positions and densities. n must be at least 2.
//
// The evaluator is linear-binned: the n samples are accumulated onto the
// grid once (O(n)), and the density is then a convolution of the bin weights
// with a truncated Gaussian kernel table (O(g·w) for w = kernel half-width
// in grid steps, cut off at 6σ) — independent of the sample count per grid
// point. Bandwidths too narrow for the grid to resolve
// (h < binnedMinBandwidthSteps·step) are evaluated exactly instead; see
// GridExact for the reference evaluation.
func (e *Estimator) Grid(n int) (xs, ds []float64, err error) {
	return e.GridContext(context.Background(), n)
}

// GridContext is Grid with cancellation, checked between evaluation chunks
// on the exact fallback path (the binned path is O(n + g·w) and runs in
// microseconds, so it is checked only on entry).
func (e *Estimator) GridContext(ctx context.Context, n int) (xs, ds []float64, err error) {
	if n < 2 {
		return nil, nil, fmt.Errorf("kde: grid needs at least 2 points, got %d", n)
	}
	xs = make([]float64, n)
	ds = make([]float64, n)
	if err := e.GridInto(ctx, xs, ds); err != nil {
		return nil, nil, err
	}
	return xs, ds, nil
}

// GridInto is GridContext writing into caller-provided slices: xs and ds
// must have equal length ≥ 2 and are fully overwritten. All internal
// scratch (bin weights, kernel table) comes from a pooled buffer, so the
// steady-state allocation count is zero — the property the Tier-3 splitting
// hot path relies on.
func (e *Estimator) GridInto(ctx context.Context, xs, ds []float64) error {
	n := len(xs)
	if n < 2 {
		return fmt.Errorf("kde: grid needs at least 2 points, got %d", n)
	}
	if len(ds) != n {
		return fmt.Errorf("kde: grid buffers disagree: %d positions vs %d densities", n, len(ds))
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if _, sp := obs.StartSpan(ctx, "kde.grid"); sp.Active() {
		defer sp.End()
		sp.SetAttr("points", n)
		sp.SetAttr("samples", len(e.samples))
		sp.SetAttr("bandwidth", e.bandwidth)
		sp.Add("evaluations", int64(n))
	}
	lo := e.samples[0] - 3*e.bandwidth
	hi := e.samples[len(e.samples)-1] + 3*e.bandwidth
	step := (hi - lo) / float64(n-1)
	for i := range xs {
		xs[i] = lo + float64(i)*step
	}
	if step > 0 && e.bandwidth >= binnedMinBandwidthSteps*step {
		e.gridBinned(xs, ds, lo, step)
		return nil
	}
	return e.gridExactChunked(ctx, xs, ds)
}

// GridExact is the reference evaluator: the density at every grid point is
// computed directly from the samples with one sliding [x−6h, x+6h) window,
// bitwise equal to calling Density per point. O(g + n) bookkeeping plus the
// window scans — the pre-binning algorithm, kept as the ground truth the
// binned fast path is validated against and as the fallback for bandwidths
// the grid cannot resolve.
func (e *Estimator) GridExact(n int) (xs, ds []float64, err error) {
	if n < 2 {
		return nil, nil, fmt.Errorf("kde: grid needs at least 2 points, got %d", n)
	}
	lo := e.samples[0] - 3*e.bandwidth
	hi := e.samples[len(e.samples)-1] + 3*e.bandwidth
	step := (hi - lo) / float64(n-1)
	xs = make([]float64, n)
	ds = make([]float64, n)
	for i := range xs {
		xs[i] = lo + float64(i)*step
	}
	if err := e.gridExactChunked(context.Background(), xs, ds); err != nil {
		return nil, nil, err
	}
	return xs, ds, nil
}

// gridExactChunkPoints bounds how many grid points the exact path evaluates
// between context checks.
const gridExactChunkPoints = 256

// gridExactChunked runs the exact evaluation over xs in fixed-size chunks,
// observing ctx between chunks.
func (e *Estimator) gridExactChunked(ctx context.Context, xs, ds []float64) error {
	for start := 0; start < len(xs); start += gridExactChunkPoints {
		if err := ctx.Err(); err != nil {
			return err
		}
		end := min(start+gridExactChunkPoints, len(xs))
		e.gridExactEval(xs[start:end], ds[start:end])
	}
	return nil
}

// gridExactEval fills ds with densities at the ascending positions xs using a
// single sliding window over the sorted samples. Only samples within 6
// bandwidths contribute more than ~1e-8 of the kernel mass, matching the
// truncation Density applies.
func (e *Estimator) gridExactEval(xs, ds []float64) {
	if len(xs) == 0 {
		return
	}
	h := e.bandwidth
	lo := sort.SearchFloat64s(e.samples, xs[0]-6*h)
	hi := lo
	for i, x := range xs {
		lower, upper := x-6*h, x+6*h
		for lo < len(e.samples) && e.samples[lo] < lower {
			lo++
		}
		if hi < lo {
			hi = lo
		}
		for hi < len(e.samples) && e.samples[hi] < upper {
			hi++
		}
		var acc float64
		for _, s := range e.samples[lo:hi] {
			u := (x - s) / h
			acc += math.Exp(-0.5 * u * u)
		}
		// Same expression shape as Density so the results stay bitwise
		// equal to per-point evaluation.
		ds[i] = acc * invSqrt2Pi / (float64(len(e.samples)) * h)
	}
}

// gridBinned fills ds with linear-binned densities: samples are spread onto
// the two neighboring grid nodes in one O(n) pass, a truncated kernel table
// is evaluated once per grid offset (w+1 Exp calls total, not per point),
// and each density is a dot product of bin weights with that table.
func (e *Estimator) gridBinned(xs, ds []float64, lo, step float64) {
	g := len(xs)
	h := e.bandwidth
	binsBuf := getFloats(g)
	bins := *binsBuf
	invStep := 1 / step
	for _, s := range e.samples {
		t := (s - lo) * invStep
		j := int(t)
		// Samples live in [lo+3h, hi−3h], so j stays interior; the clamps
		// only guard against last-ulp rounding at the extremes.
		if j < 0 {
			j = 0
		}
		if j >= g-1 {
			bins[g-1]++
			continue
		}
		frac := t - float64(j)
		bins[j] += 1 - frac
		bins[j+1] += frac
	}

	// Kernel half-width in grid steps, truncated at 6σ like Density.
	halfW := int(6*h*invStep) + 1
	if halfW > g-1 {
		halfW = g - 1
	}
	ktabBuf := getFloats(halfW + 1)
	ktab := *ktabBuf
	r := step / h
	for d := 0; d <= halfW; d++ {
		u := float64(d) * r
		ktab[d] = math.Exp(-0.5 * u * u)
	}

	norm := invSqrt2Pi / (float64(len(e.samples)) * h)
	for i := range ds {
		first, last := i-halfW, i+halfW
		if first < 0 {
			first = 0
		}
		if last > g-1 {
			last = g - 1
		}
		var acc float64
		for j, d := i, 0; j >= first; j, d = j-1, d+1 {
			acc += bins[j] * ktab[d]
		}
		for j, d := i+1, 1; j <= last; j, d = j+1, d+1 {
			acc += bins[j] * ktab[d]
		}
		ds[i] = acc * norm
	}
	putFloats(ktabBuf)
	putFloats(binsBuf)
}

// floatsPool recycles the scratch buffers (bin weights, kernel tables, valley
// grids) of the KDE hot path so repeated grid evaluations allocate nothing in
// steady state.
var floatsPool = sync.Pool{New: func() any { s := make([]float64, 0, 1024); return &s }}

// getFloats returns a pooled zeroed []float64 of length n (via pointer, to
// keep the pool allocation-free).
func getFloats(n int) *[]float64 {
	buf := floatsPool.Get().(*[]float64)
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	clear(*buf)
	return buf
}

// putFloats returns a buffer obtained from getFloats to the pool.
func putFloats(buf *[]float64) { floatsPool.Put(buf) }

// SilvermanBandwidth returns Silverman's rule-of-thumb bandwidth
// 0.9·min(σ, IQR/1.34)·n^(-1/5), with fallbacks for degenerate samples so the
// result is always positive.
func SilvermanBandwidth(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return SilvermanBandwidthSorted(sorted)
}

// SilvermanBandwidthSorted is SilvermanBandwidth on an already
// ascending-sorted sample; it neither copies nor re-sorts the input.
func SilvermanBandwidthSorted(sorted []float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 1
	}

	var mean float64
	for _, x := range sorted {
		mean += x
	}
	mean /= float64(n)
	var varAcc float64
	for _, x := range sorted {
		d := x - mean
		varAcc += d * d
	}
	sigma := math.Sqrt(varAcc / float64(n))

	iqr := quantileSorted(sorted, 0.75) - quantileSorted(sorted, 0.25)
	spread := sigma
	if iqr > 0 && iqr/1.34 < spread {
		spread = iqr / 1.34
	}
	if spread == 0 {
		// Constant (or near-constant) sample: any positive bandwidth yields a
		// single mode, which is the behaviour the stratifier wants.
		if mean != 0 {
			spread = math.Abs(mean) * 1e-3
		} else {
			spread = 1
		}
	}
	return 0.9 * spread * math.Pow(float64(n), -0.2)
}

// ScottBandwidth returns Scott's rule bandwidth σ·n^(-1/5), with the same
// degenerate-sample fallback as SilvermanBandwidth.
func ScottBandwidth(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 1
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(n)
	var varAcc float64
	for _, x := range xs {
		d := x - mean
		varAcc += d * d
	}
	sigma := math.Sqrt(varAcc / float64(n))
	if sigma == 0 {
		if mean != 0 {
			sigma = math.Abs(mean) * 1e-3
		} else {
			sigma = 1
		}
	}
	return sigma * math.Pow(float64(n), -0.2)
}

// quantileSorted returns the q-quantile (0 ≤ q ≤ 1) of an already-sorted
// sample using linear interpolation.
func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := q * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
