// Package kde implements one-dimensional Gaussian kernel density estimation,
// the tool Sieve uses to split high-variability (Tier-3) kernels into strata
// (Section III-B of the paper): the estimated density over instruction counts
// is cut at its local minima ("valleys"), grouping invocations into modes so
// that per-stratum dispersion stays below the CoV threshold.
package kde

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/gpusampling/sieve/internal/obs"
)

// Estimator is a fitted 1-D Gaussian kernel density estimator.
type Estimator struct {
	samples   []float64 // sorted copy of the input
	bandwidth float64
}

// invSqrt2Pi is 1/√(2π), the Gaussian kernel normalization constant.
var invSqrt2Pi = 1 / math.Sqrt(2*math.Pi)

// New fits a Gaussian KDE to xs with the given bandwidth. A bandwidth ≤ 0
// selects Silverman's rule of thumb. It returns an error for empty input.
func New(xs []float64, bandwidth float64) (*Estimator, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("kde: no samples")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return NewSorted(sorted, bandwidth)
}

// NewSorted fits a Gaussian KDE to already ascending-sorted samples without
// copying them; the estimator takes ownership of sorted, which must not be
// modified afterwards. It returns an error for empty or unsorted input.
// Fitting a pre-sorted sample skips both the defensive copy and the re-sort
// New performs, so callers that hold sorted data pay one sort total.
func NewSorted(sorted []float64, bandwidth float64) (*Estimator, error) {
	if len(sorted) == 0 {
		return nil, fmt.Errorf("kde: no samples")
	}
	for i := 1; i < len(sorted); i++ {
		if sorted[i] < sorted[i-1] {
			return nil, fmt.Errorf("kde: samples not sorted at index %d", i)
		}
	}
	if bandwidth <= 0 {
		bandwidth = SilvermanBandwidthSorted(sorted)
	}
	return &Estimator{samples: sorted, bandwidth: bandwidth}, nil
}

// Bandwidth returns the estimator's bandwidth.
func (e *Estimator) Bandwidth() float64 { return e.bandwidth }

// N returns the number of fitted samples.
func (e *Estimator) N() int { return len(e.samples) }

// Density evaluates the estimated probability density at x.
func (e *Estimator) Density(x float64) float64 {
	h := e.bandwidth
	var acc float64
	// Samples are sorted: only those within 6h of x contribute more than
	// ~1e-8 of the kernel mass, so bound the scan with binary search.
	lo := sort.SearchFloat64s(e.samples, x-6*h)
	hi := sort.SearchFloat64s(e.samples, x+6*h)
	for _, s := range e.samples[lo:hi] {
		u := (x - s) / h
		acc += math.Exp(-0.5 * u * u)
	}
	return acc * invSqrt2Pi / (float64(len(e.samples)) * h)
}

// Grid evaluates the density on n evenly spaced points spanning the sample
// range extended by 3 bandwidths on each side. It returns parallel slices of
// positions and densities. n must be at least 2.
//
// Grid points ascend, so instead of a per-point binary search the evaluation
// slides one [x−6h, x+6h) window across the sorted samples: the window
// endpoints only ever move forward, dropping the bookkeeping cost from
// O(g·log n) to O(g + n) for g grid points over n samples.
func (e *Estimator) Grid(n int) (xs, ds []float64, err error) {
	return e.GridParallelContext(context.Background(), n, 1)
}

// GridContext is Grid with cancellation, checked between evaluation chunks.
func (e *Estimator) GridContext(ctx context.Context, n int) (xs, ds []float64, err error) {
	return e.GridParallelContext(ctx, n, 1)
}

// gridChunkPoints is the smallest grid chunk worth dispatching to its own
// worker; below this the goroutine overhead outweighs the evaluation.
const gridChunkPoints = 256

// GridParallel is Grid with the evaluation chunked across up to workers
// goroutines (0 selects GOMAXPROCS). Each worker slides its own window over a
// contiguous ascending run of grid points, so results are byte-identical to
// the sequential evaluation regardless of worker count.
func (e *Estimator) GridParallel(n, workers int) (xs, ds []float64, err error) {
	return e.GridParallelContext(context.Background(), n, workers)
}

// GridParallelContext is GridParallel with cancellation: grid points are
// evaluated in fixed-size chunks and ctx is checked between chunks — by each
// worker before it claims the next chunk, and by the sequential path between
// chunks — so a cancelled or timed-out context abandons the remaining grid
// and reports ctx.Err(). Chunks are claimed from a shared counter but each
// writes its own fixed slice region, so the densities are byte-identical to
// the sequential evaluation at any worker count.
func (e *Estimator) GridParallelContext(ctx context.Context, n, workers int) (xs, ds []float64, err error) {
	if n < 2 {
		return nil, nil, fmt.Errorf("kde: grid needs at least 2 points, got %d", n)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	if _, sp := obs.StartSpan(ctx, "kde.grid"); sp.Active() {
		defer sp.End()
		sp.SetAttr("points", n)
		sp.SetAttr("samples", len(e.samples))
		sp.SetAttr("bandwidth", e.bandwidth)
		sp.Add("evaluations", int64(n))
	}
	lo := e.samples[0] - 3*e.bandwidth
	hi := e.samples[len(e.samples)-1] + 3*e.bandwidth
	xs = make([]float64, n)
	ds = make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range xs {
		xs[i] = lo + float64(i)*step
	}
	chunks := (n + gridChunkPoints - 1) / gridChunkPoints
	if workers > chunks {
		workers = chunks
	}
	if workers <= 1 {
		for start := 0; start < n; start += gridChunkPoints {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
			end := min(start+gridChunkPoints, n)
			e.gridEval(xs[start:end], ds[start:end])
		}
		return xs, ds, nil
	}
	var wg sync.WaitGroup
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				c := int(next.Add(1)) - 1
				if c >= chunks {
					return
				}
				start := c * gridChunkPoints
				end := min(start+gridChunkPoints, n)
				e.gridEval(xs[start:end], ds[start:end])
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	return xs, ds, nil
}

// gridEval fills ds with densities at the ascending positions xs using a
// single sliding window over the sorted samples. Only samples within 6
// bandwidths contribute more than ~1e-8 of the kernel mass, matching the
// truncation Density applies.
func (e *Estimator) gridEval(xs, ds []float64) {
	if len(xs) == 0 {
		return
	}
	h := e.bandwidth
	lo := sort.SearchFloat64s(e.samples, xs[0]-6*h)
	hi := lo
	for i, x := range xs {
		lower, upper := x-6*h, x+6*h
		for lo < len(e.samples) && e.samples[lo] < lower {
			lo++
		}
		if hi < lo {
			hi = lo
		}
		for hi < len(e.samples) && e.samples[hi] < upper {
			hi++
		}
		var acc float64
		for _, s := range e.samples[lo:hi] {
			u := (x - s) / h
			acc += math.Exp(-0.5 * u * u)
		}
		// Same expression shape as Density so the results stay bitwise
		// equal to per-point evaluation.
		ds[i] = acc * invSqrt2Pi / (float64(len(e.samples)) * h)
	}
}

// SilvermanBandwidth returns Silverman's rule-of-thumb bandwidth
// 0.9·min(σ, IQR/1.34)·n^(-1/5), with fallbacks for degenerate samples so the
// result is always positive.
func SilvermanBandwidth(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return SilvermanBandwidthSorted(sorted)
}

// SilvermanBandwidthSorted is SilvermanBandwidth on an already
// ascending-sorted sample; it neither copies nor re-sorts the input.
func SilvermanBandwidthSorted(sorted []float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 1
	}

	var mean float64
	for _, x := range sorted {
		mean += x
	}
	mean /= float64(n)
	var varAcc float64
	for _, x := range sorted {
		d := x - mean
		varAcc += d * d
	}
	sigma := math.Sqrt(varAcc / float64(n))

	iqr := quantileSorted(sorted, 0.75) - quantileSorted(sorted, 0.25)
	spread := sigma
	if iqr > 0 && iqr/1.34 < spread {
		spread = iqr / 1.34
	}
	if spread == 0 {
		// Constant (or near-constant) sample: any positive bandwidth yields a
		// single mode, which is the behaviour the stratifier wants.
		if mean != 0 {
			spread = math.Abs(mean) * 1e-3
		} else {
			spread = 1
		}
	}
	return 0.9 * spread * math.Pow(float64(n), -0.2)
}

// ScottBandwidth returns Scott's rule bandwidth σ·n^(-1/5), with the same
// degenerate-sample fallback as SilvermanBandwidth.
func ScottBandwidth(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 1
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(n)
	var varAcc float64
	for _, x := range xs {
		d := x - mean
		varAcc += d * d
	}
	sigma := math.Sqrt(varAcc / float64(n))
	if sigma == 0 {
		if mean != 0 {
			sigma = math.Abs(mean) * 1e-3
		} else {
			sigma = 1
		}
	}
	return sigma * math.Pow(float64(n), -0.2)
}

// quantileSorted returns the q-quantile (0 ≤ q ≤ 1) of an already-sorted
// sample using linear interpolation.
func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := q * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
