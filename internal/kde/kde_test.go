package kde

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewErrors(t *testing.T) {
	if _, err := New(nil, 1); err == nil {
		t.Fatal("want error on empty sample")
	}
}

func TestNewDefaultsToSilverman(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	e, err := New(xs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := SilvermanBandwidth(xs); e.Bandwidth() != want {
		t.Fatalf("bandwidth = %g, want Silverman %g", e.Bandwidth(), want)
	}
	if e.N() != 5 {
		t.Fatalf("N = %d", e.N())
	}
}

func TestDensityIsPositiveAndPeaksAtMass(t *testing.T) {
	xs := []float64{0, 0, 0, 10}
	e, err := New(xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if e.Density(0) <= e.Density(5) {
		t.Fatal("density at the heavy mode should exceed density in the gap")
	}
	if e.Density(0) <= 0 || e.Density(10) <= 0 {
		t.Fatal("density must be positive near samples")
	}
}

func TestDensityIntegratesToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 3
	}
	e, err := New(xs, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Trapezoid rule over a wide grid.
	lo, hi := -30.0, 30.0
	n := 4000
	step := (hi - lo) / float64(n)
	var integral float64
	for i := 0; i <= n; i++ {
		x := lo + float64(i)*step
		w := 1.0
		if i == 0 || i == n {
			w = 0.5
		}
		integral += w * e.Density(x) * step
	}
	if math.Abs(integral-1) > 0.01 {
		t.Fatalf("density integrates to %g, want ≈1", integral)
	}
}

func TestDensityNonNegativeProperty(t *testing.T) {
	f := func(seed int64, probe float64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 100
		}
		e, err := New(xs, 0)
		if err != nil {
			return false
		}
		p := math.Mod(math.Abs(probe), 200) - 50
		if math.IsNaN(p) {
			return true
		}
		return e.Density(p) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGrid(t *testing.T) {
	e, err := New([]float64{1, 2, 3}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	xs, ds, err := e.Grid(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(xs) != 10 || len(ds) != 10 {
		t.Fatalf("grid sizes %d, %d", len(xs), len(ds))
	}
	if xs[0] >= 1 || xs[9] <= 3 {
		t.Fatalf("grid [%g, %g] should extend past the sample range", xs[0], xs[9])
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			t.Fatal("grid not increasing")
		}
	}
	if _, _, err := e.Grid(1); err == nil {
		t.Fatal("want error for 1-point grid")
	}
}

func TestSilvermanBandwidthPositive(t *testing.T) {
	cases := [][]float64{
		{},
		{5},
		{5, 5, 5},
		{0, 0, 0},
		{1, 2, 3, 4, 100},
	}
	for _, xs := range cases {
		if bw := SilvermanBandwidth(xs); bw <= 0 {
			t.Fatalf("Silverman(%v) = %g, want > 0", xs, bw)
		}
		if bw := ScottBandwidth(xs); bw <= 0 {
			t.Fatalf("Scott(%v) = %g, want > 0", xs, bw)
		}
	}
}

func TestSilvermanShrinksWithN(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	small := make([]float64, 50)
	for i := range small {
		small[i] = rng.NormFloat64()
	}
	large := make([]float64, 5000)
	for i := range large {
		large[i] = rng.NormFloat64()
	}
	if SilvermanBandwidth(large) >= SilvermanBandwidth(small) {
		t.Fatal("bandwidth should shrink as the sample grows")
	}
}

func TestValleysBimodal(t *testing.T) {
	// Two clearly separated modes at 0 and 100.
	rng := rand.New(rand.NewSource(8))
	xs := make([]float64, 0, 400)
	for i := 0; i < 200; i++ {
		xs = append(xs, rng.NormFloat64()+0)
		xs = append(xs, rng.NormFloat64()+100)
	}
	e, err := New(xs, 0)
	if err != nil {
		t.Fatal(err)
	}
	valleys, err := e.Valleys(DefaultGridPoints)
	if err != nil {
		t.Fatal(err)
	}
	if len(valleys) != 1 {
		t.Fatalf("valleys = %v, want exactly one", valleys)
	}
	if valleys[0] < 20 || valleys[0] > 80 {
		t.Fatalf("valley at %g, want between the modes", valleys[0])
	}
}

func TestValleysUnimodal(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 5
	}
	e, err := New(xs, 0)
	if err != nil {
		t.Fatal(err)
	}
	valleys, err := e.Valleys(DefaultGridPoints)
	if err != nil {
		t.Fatal(err)
	}
	if len(valleys) > 1 {
		t.Fatalf("unimodal sample produced %d valleys: %v", len(valleys), valleys)
	}
}

func TestSplitAtValleys(t *testing.T) {
	xs := []float64{1, 2, 3, 10, 11, 12}
	groups := SplitAtValleys(xs, []float64{6})
	if len(groups) != 2 {
		t.Fatalf("groups = %v", groups)
	}
	if len(groups[0]) != 3 || groups[0][2] != 3 {
		t.Fatalf("left group = %v", groups[0])
	}
	if len(groups[1]) != 3 || groups[1][0] != 10 {
		t.Fatalf("right group = %v", groups[1])
	}
	// No valleys: single group.
	one := SplitAtValleys(xs, nil)
	if len(one) != 1 || len(one[0]) != 6 {
		t.Fatalf("no-valley split = %v", one)
	}
	// Valley outside range: still one group, none empty.
	outside := SplitAtValleys(xs, []float64{-5, 500})
	total := 0
	for _, g := range outside {
		if len(g) == 0 {
			t.Fatal("empty group produced")
		}
		total += len(g)
	}
	if total != len(xs) {
		t.Fatalf("samples lost: %d of %d", total, len(xs))
	}
}

func TestSplitUnderCoVHomogeneousPassThrough(t *testing.T) {
	xs := []float64{100, 101, 99, 100}
	groups, err := SplitUnderCoV(xs, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 || len(groups[0]) != 4 {
		t.Fatalf("homogeneous sample split unnecessarily: %v", groups)
	}
}

func TestSplitUnderCoVBimodal(t *testing.T) {
	// Far-apart modes give whole-sample CoV near 1; each mode alone is tight.
	var xs []float64
	for i := 0; i < 100; i++ {
		xs = append(xs, 100+float64(i%3))
		xs = append(xs, 10000+float64(i%5))
	}
	groups, err := SplitUnderCoV(xs, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) < 2 {
		t.Fatalf("bimodal sample not split: %d groups", len(groups))
	}
	total := 0
	for _, g := range groups {
		total += len(g)
		if covOf(g) >= 0.4 {
			t.Fatalf("group CoV %g ≥ threshold; group size %d", covOf(g), len(g))
		}
	}
	if total != len(xs) {
		t.Fatalf("samples lost: %d of %d", total, len(xs))
	}
}

func TestSplitUnderCoVErrors(t *testing.T) {
	if _, err := SplitUnderCoV(nil, 0.4); err == nil {
		t.Fatal("want error for empty sample")
	}
	if _, err := SplitUnderCoV([]float64{1}, 0); err == nil {
		t.Fatal("want error for non-positive threshold")
	}
}

func TestSplitUnderCoVPropertyAllGroupsSatisfyThreshold(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(300)
		xs := make([]float64, n)
		for i := range xs {
			// Mixture of up to 4 modes with positive support, like
			// multi-modal instruction counts.
			mode := float64(1+rng.Intn(4)) * 1000
			xs[i] = mode + rng.NormFloat64()*mode*0.02
			if xs[i] < 1 {
				xs[i] = 1
			}
		}
		groups, err := SplitUnderCoV(xs, 0.4)
		if err != nil {
			return false
		}
		total := 0
		for _, g := range groups {
			if len(g) == 0 {
				return false
			}
			total += len(g)
			if len(g) > 1 && covOf(g) >= 0.4 {
				return false
			}
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitUnderCoVKeepsDuplicatesTogether(t *testing.T) {
	// Many duplicates of two far values: duplicates of the same value must
	// land in the same stratum.
	var xs []float64
	for i := 0; i < 50; i++ {
		xs = append(xs, 5, 50000)
	}
	groups, err := SplitUnderCoV(xs, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range groups {
		for _, v := range g[1:] {
			if v != g[0] {
				// Mixed group is fine only if it satisfies the threshold.
				if covOf(g) >= 0.4 {
					t.Fatalf("mixed high-CoV group: %v", g)
				}
			}
		}
	}
}

func covOf(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if mean == 0 {
		return 0
	}
	var v float64
	for _, x := range xs {
		d := x - mean
		v += d * d
	}
	return math.Sqrt(v/float64(len(xs))) / math.Abs(mean)
}
