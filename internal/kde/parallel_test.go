package kde

import (
	"math/rand"
	"sort"
	"testing"
)

// trimodal draws a deterministic three-mode sample.
func trimodal(seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		center := []float64{10, 55, 200}[rng.Intn(3)]
		xs[i] = center + rng.NormFloat64()*center/20
	}
	return xs
}

// TestGridMatchesDensity pins the sliding-window evaluation to the per-point
// Density definition: both truncate the kernel at 6 bandwidths, so every grid
// density must be bitwise equal to an independent Density call.
func TestGridMatchesDensity(t *testing.T) {
	for _, n := range []int{2, 17, 512, 1500} {
		e, err := New(trimodal(1, 400), 0)
		if err != nil {
			t.Fatal(err)
		}
		xs, ds, err := e.Grid(n)
		if err != nil {
			t.Fatal(err)
		}
		for i := range xs {
			if want := e.Density(xs[i]); ds[i] != want {
				t.Fatalf("grid(%d) point %d: density %g != Density(%g) = %g", n, i, ds[i], xs[i], want)
			}
		}
	}
}

func TestGridParallelMatchesSequential(t *testing.T) {
	e, err := New(trimodal(2, 2000), 0)
	if err != nil {
		t.Fatal(err)
	}
	xsSeq, dsSeq, err := e.GridParallel(4096, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 5, 32} {
		xs, ds, err := e.GridParallel(4096, workers)
		if err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		for i := range xs {
			if xs[i] != xsSeq[i] || ds[i] != dsSeq[i] {
				t.Fatalf("workers %d: point %d diverges: (%g, %g) vs (%g, %g)",
					workers, i, xs[i], ds[i], xsSeq[i], dsSeq[i])
			}
		}
	}
}

func TestGridDegenerateSamples(t *testing.T) {
	// A single sample and an all-equal sample exercise the Silverman
	// fallback bandwidth and a window that covers everything.
	for _, xs := range [][]float64{{5}, {3, 3, 3, 3}} {
		e, err := New(xs, 0)
		if err != nil {
			t.Fatal(err)
		}
		gx, gd, err := e.Grid(64)
		if err != nil {
			t.Fatal(err)
		}
		for i := range gx {
			if want := e.Density(gx[i]); gd[i] != want {
				t.Fatalf("degenerate grid point %d: %g != %g", i, gd[i], want)
			}
		}
	}
}

func TestNewSortedMatchesNew(t *testing.T) {
	xs := trimodal(3, 500)
	viaNew, err := New(xs, 0)
	if err != nil {
		t.Fatal(err)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	viaSorted, err := NewSorted(sorted, 0)
	if err != nil {
		t.Fatal(err)
	}
	if viaNew.Bandwidth() != viaSorted.Bandwidth() {
		t.Fatalf("bandwidth %g != %g", viaSorted.Bandwidth(), viaNew.Bandwidth())
	}
	if viaNew.N() != viaSorted.N() {
		t.Fatalf("N %d != %d", viaSorted.N(), viaNew.N())
	}
	for _, x := range []float64{0, 10, 55, 123.4, 200} {
		if a, b := viaNew.Density(x), viaSorted.Density(x); a != b {
			t.Fatalf("density at %g: %g != %g", x, b, a)
		}
	}
}

func TestNewSortedRejectsUnsortedAndEmpty(t *testing.T) {
	if _, err := NewSorted([]float64{2, 1}, 0); err == nil {
		t.Fatal("want error for unsorted input")
	}
	if _, err := NewSorted(nil, 0); err == nil {
		t.Fatal("want error for empty input")
	}
}

func TestSilvermanBandwidthSortedMatches(t *testing.T) {
	xs := trimodal(4, 300)
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if a, b := SilvermanBandwidth(xs), SilvermanBandwidthSorted(sorted); a != b {
		t.Fatalf("SilvermanBandwidthSorted %g != SilvermanBandwidth %g", b, a)
	}
	if SilvermanBandwidthSorted(nil) != 1 {
		t.Fatal("empty sample must fall back to bandwidth 1")
	}
}
