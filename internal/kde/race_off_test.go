//go:build !race

package kde

const raceEnabled = false
