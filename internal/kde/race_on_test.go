//go:build race

package kde

// raceEnabled reports that the race detector is active; its instrumentation
// allocates, so allocation-regression tests skip themselves under -race.
const raceEnabled = true
