package kde

import (
	"context"
	"fmt"
	"math"
	"sort"

	"github.com/gpusampling/sieve/internal/obs"
)

// DefaultGridPoints is the density-grid resolution used by valley splitting.
// 512 points resolves the handful of modes real instruction-count
// distributions exhibit while keeping splitting cost negligible next to
// profiling.
const DefaultGridPoints = 512

// Valleys returns the positions of the local minima of the estimated density
// evaluated on an n-point grid — the natural cut points between modes.
// Plateau minima report their midpoint once.
func (e *Estimator) Valleys(n int) ([]float64, error) {
	return e.ValleysContext(context.Background(), n)
}

// ValleysContext is Valleys with cancellation and observability: the density
// grid underneath observes ctx between evaluation chunks and records a
// kde.grid span when a collector is attached. The grid itself lives in
// pooled scratch, so only the (typically tiny) valley slice is allocated.
func (e *Estimator) ValleysContext(ctx context.Context, n int) ([]float64, error) {
	if n < 2 {
		return nil, fmt.Errorf("kde: grid needs at least 2 points, got %d", n)
	}
	xsBuf, dsBuf := getFloats(n), getFloats(n)
	defer putFloats(xsBuf)
	defer putFloats(dsBuf)
	xs, ds := *xsBuf, *dsBuf
	if err := e.GridInto(ctx, xs, ds); err != nil {
		return nil, err
	}
	return ValleysFromGrid(xs, ds), nil
}

// ValleysFromGrid scans an evaluated density grid for local minima and
// returns their positions; plateau minima report their midpoint once. It is
// the pure reduction ValleysContext applies to the binned grid — exposed so
// verification code can run the identical scan over a reference grid (e.g.
// GridExact) and compare valley sets.
func ValleysFromGrid(xs, ds []float64) []float64 {
	var valleys []float64
	i := 1
	for i < len(ds)-1 {
		if ds[i] < ds[i-1] {
			// Walk any plateau of equal densities.
			j := i
			for j+1 < len(ds) && ds[j+1] == ds[j] {
				j++
			}
			if j < len(ds)-1 && ds[j+1] > ds[j] {
				valleys = append(valleys, (xs[i]+xs[j])/2)
			}
			i = j + 1
			continue
		}
		i++
	}
	return valleys
}

// SplitAtValleys partitions xs into groups separated by the density valleys:
// group k holds every sample between valley k-1 (exclusive) and valley k
// (inclusive). Groups are returned in ascending order of value and are never
// empty. The input is not modified.
func SplitAtValleys(xs []float64, valleys []float64) [][]float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return splitSortedAtValleys(sorted, valleys)
}

// splitSortedAtValleys is SplitAtValleys on an already-sorted sample; the
// returned groups alias sorted.
func splitSortedAtValleys(sorted []float64, valleys []float64) [][]float64 {
	cuts := append([]float64(nil), valleys...)
	sort.Float64s(cuts)

	groups := make([][]float64, 0, len(cuts)+1)
	start := 0
	for _, c := range cuts {
		end := sort.Search(len(sorted), func(i int) bool { return sorted[i] > c })
		if end > start {
			groups = append(groups, sorted[start:end:end])
			start = end
		}
	}
	if start < len(sorted) {
		groups = append(groups, sorted[start:])
	}
	return groups
}

// MaxRecursionDepth bounds SplitUnderCoV's recursive bisection of groups the
// valley pass could not make homogeneous. 2^32 potential leaves is far beyond
// any real instruction-count distribution, so hitting the bound means the
// data is pathological (e.g. heavy mass at zero) and the group is accepted
// as-is rather than split forever.
const MaxRecursionDepth = 32

// SplitUnderCoV stratifies xs so every returned group has a coefficient of
// variation below threshold, using as few strata as possible in practice:
// it first cuts at KDE density valleys (minimizing strata at mode boundaries)
// and then recursively median-bisects any group still above the threshold.
// Groups are sorted ascending; together they contain every input sample.
// threshold must be positive.
func SplitUnderCoV(xs []float64, threshold float64) ([][]float64, error) {
	return SplitUnderCoVContext(context.Background(), xs, threshold)
}

// SplitUnderCoVContext is SplitUnderCoV with context plumbing: a collector
// attached to ctx records a kde.split span (sample count, bandwidth, valley
// and group counts) with the density-grid evaluation nested under it, and a
// cancelled context stops the grid between evaluation chunks.
func SplitUnderCoVContext(ctx context.Context, xs []float64, threshold float64) ([][]float64, error) {
	if threshold <= 0 {
		return nil, fmt.Errorf("kde: non-positive CoV threshold %g", threshold)
	}
	if len(xs) == 0 {
		return nil, fmt.Errorf("kde: no samples to split")
	}
	ctx, sp := obs.StartSpan(ctx, "kde.split")
	defer sp.End()
	if sp.Active() {
		sp.SetAttr("samples", len(xs))
		sp.SetAttr("threshold", threshold)
	}
	// cov must see the caller's order: summation order affects the last ulp
	// and the pass-through decision must not depend on the sort below.
	passThrough := cov(xs) < threshold
	// One sort serves the pass-through, the estimator fit and the valley
	// partition below.
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if passThrough {
		sp.SetAttr("groups", 1)
		return [][]float64{sorted}, nil
	}

	est, err := NewSorted(sorted, 0)
	if err != nil {
		return nil, err
	}
	valleys, err := est.ValleysContext(ctx, DefaultGridPoints)
	if err != nil {
		return nil, err
	}
	var out [][]float64
	for _, g := range splitSortedAtValleys(sorted, valleys) {
		out = append(out, bisectUnderCoV(g, threshold, 0)...)
	}
	if sp.Active() {
		sp.SetAttr("bandwidth", est.Bandwidth())
		sp.SetAttr("valleys", len(valleys))
		sp.SetAttr("groups", len(out))
	}
	return out, nil
}

// bisectUnderCoV recursively splits a sorted group at its median until the
// CoV constraint holds or the group becomes indivisible.
func bisectUnderCoV(sorted []float64, threshold float64, depth int) [][]float64 {
	if len(sorted) <= 1 || cov(sorted) < threshold || depth >= MaxRecursionDepth {
		return [][]float64{sorted}
	}
	mid := len(sorted) / 2
	// Keep equal values together: slide the cut right past duplicates of the
	// median so identical instruction counts never land in different strata.
	for mid < len(sorted) && sorted[mid] == sorted[mid-1] {
		mid++
	}
	if mid == len(sorted) {
		// All remaining values from the median up are equal; cut before them.
		mid = len(sorted) / 2
		for mid > 0 && sorted[mid] == sorted[mid-1] {
			mid--
		}
		if mid == 0 {
			return [][]float64{sorted}
		}
	}
	left := bisectUnderCoV(sorted[:mid], threshold, depth+1)
	right := bisectUnderCoV(sorted[mid:], threshold, depth+1)
	return append(left, right...)
}

// cov is a local coefficient-of-variation helper (population σ / μ), 0 when
// the mean is 0.
func cov(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if mean == 0 {
		return 0
	}
	var varAcc float64
	for _, x := range xs {
		d := x - mean
		varAcc += d * d
	}
	return math.Sqrt(varAcc/float64(len(xs))) / math.Abs(mean)
}
