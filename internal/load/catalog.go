package load

import (
	"fmt"
	"strings"

	sieve "github.com/gpusampling/sieve"
)

// Profile is one catalog entry: a Table I workload at a scale factor. Each
// (workload, scale) pair hashes to a distinct plan on the server, so the
// catalog size relative to the server's cache capacity decides whether a
// run's working set fits in cache.
type Profile struct {
	Workload string  `json:"workload"`
	Scale    float64 `json:"scale"`
	// CSV is the profile rendered in the WriteProfileCSV interchange format,
	// for the sample-csv scenario. Rendered once at catalog build, not per
	// request.
	CSV string `json:"-"`
}

// DefaultProfileNames are the catalog workloads the harness draws from by
// default: the cheapest Table I entries by invocation count, so server-side
// generation cost stays small and the harness measures service overheads
// (routing, caching, coalescing) rather than raw solver time.
var DefaultProfileNames = []string{
	"dwt2d", "bfs_ny", "heartwall", "lud", "nvjpeg", "random", "huffman", "mergesort",
}

// DefaultScales are the scale factors crossed with the profile names.
var DefaultScales = []float64{0.25, 0.5, 1.0}

// BuildCatalog crosses workload names with scale factors into the profile
// catalog, validating every name against the Table I registry and rendering
// each entry's profile CSV when withCSV is set (required by the sample-csv
// scenario; skippable otherwise to save startup time). Order is
// names-major, so under zipfian popularity the first name's scales form the
// hot set.
func BuildCatalog(names []string, scales []float64, withCSV bool) ([]Profile, error) {
	if len(names) == 0 {
		names = DefaultProfileNames
	}
	if len(scales) == 0 {
		scales = DefaultScales
	}
	catalog := make([]Profile, 0, len(names)*len(scales))
	for _, name := range names {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, err := sieve.WorkloadByName(name); err != nil {
			return nil, fmt.Errorf("load: catalog: %w", err)
		}
		for _, scale := range scales {
			if scale <= 0 || scale > 1 {
				return nil, fmt.Errorf("load: catalog: scale %g outside (0, 1]", scale)
			}
			p := Profile{Workload: name, Scale: scale}
			if withCSV {
				csv, err := renderCSV(name, scale)
				if err != nil {
					return nil, fmt.Errorf("load: catalog: render %s@%g: %w", name, scale, err)
				}
				p.CSV = csv
			}
			catalog = append(catalog, p)
		}
	}
	if len(catalog) == 0 {
		return nil, fmt.Errorf("load: empty catalog")
	}
	return catalog, nil
}

// renderCSV generates the workload and profiles it on the default hardware
// model, producing the same rows the server would generate for the
// equivalent {workload, scale} request.
func renderCSV(name string, scale float64) (string, error) {
	w, err := sieve.GenerateWorkload(name, scale)
	if err != nil {
		return "", err
	}
	hw, err := sieve.NewHardware(sieve.Ampere())
	if err != nil {
		return "", err
	}
	p, err := sieve.ProfileInstructionCounts(w, hw)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	if err := sieve.WriteProfileCSV(p, &sb); err != nil {
		return "", err
	}
	return sb.String(), nil
}
