package load

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gpusampling/sieve/client"
	"github.com/gpusampling/sieve/internal/obs"
)

// Loop modes.
const (
	ModeClosed = "closed" // fixed worker pools, each firing back-to-back
	ModeOpen   = "open"   // paced arrivals at a target QPS, drop when saturated
)

// Config describes one load run.
type Config struct {
	// Targets are the sieved base URLs to drive. Requests pick a target at
	// random per call, so a peered cluster sees cross-owner traffic.
	Targets []string
	// Workloads are the scenario names to run concurrently (registry keys).
	Workloads []string
	// Mode selects the loop: ModeClosed ramps worker counts, ModeOpen ramps
	// offered QPS.
	Mode string
	// Duration bounds the run.
	Duration time.Duration
	// Ramp schedules the total load over elapsed time: workers in closed
	// mode, QPS in open mode, shared by all scenarios via max-min
	// allocation.
	Ramp Ramp
	// Budget is the shared global concurrency budget: the most workers
	// (closed) or in-flight requests (open) allowed across all scenarios.
	// 0 means unbounded (the ramp alone limits closed-mode workers).
	Budget int
	// Dist is the popularity distribution over the catalog.
	Dist Dist
	// Seed makes the run reproducible: it derives every worker's RNG and,
	// via Salt, the run's cache salt.
	Seed int64
	// Theta is the sampling budget parameter sent on every request.
	Theta float64
	// Methods is the sampling-methodology pool workload-mode scenarios draw
	// from per request (empty = server default only). See Env.Methods.
	Methods []string
	// Timeout bounds each request (0 = client default).
	Timeout time.Duration
	// TraceEvery makes every Nth request per worker carry a deterministic
	// minted trace id (drawn from the worker's RNG). Sampled traces are
	// fetched back from the targets after the run and summarized as the
	// report's per-stage latency attribution. 0 disables trace sampling.
	TraceEvery int
	// Catalog is the profile set (BuildCatalog). Entry 0 is the zipfian hot
	// spot.
	Catalog []Profile
	// Snapshot is the period between progress lines (0 = silent).
	Snapshot time.Duration
	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...any)
}

// scenario is one workload's live run state.
type scenario struct {
	w    Workload
	name string

	done    atomic.Int64  // completed (recorded) requests
	errs    atomic.Int64  // 4xx/5xx/transport outcomes
	offered atomic.Int64  // open mode: scheduled arrivals incl. drops
	dropped atomic.Int64  // open mode: arrivals shed at the budget
	rate    atomic.Uint64 // open mode: allocated QPS (float64 bits)

	byClass [nClasses]atomic.Int64
}

// Status classes for the latency × outcome breakdown. "err" is a transport
// failure: no HTTP response at all.
const nClasses = 5

var classLabels = [nClasses]string{"2xx", "3xx", "4xx", "5xx", "err"}

func classIndex(status int, err error) int {
	switch {
	case err != nil:
		return 4
	case status >= 500:
		return 3
	case status >= 400:
		return 2
	case status >= 300:
		return 1
	default:
		return 0
	}
}

// Runner drives one configured load run. Build with NewRunner, run once
// with Run.
type Runner struct {
	cfg Config
	reg *obs.Registry
	env *Env

	scenarios []*scenario

	// traceIDs holds the newest sampled trace ids (a rolling window bounded
	// by traceSampleCap), fetched back for the attribution summary after the
	// run. traceSeq counts every sampled request, indexing the window.
	traceMu  sync.Mutex
	traceIDs []string
	traceSeq int
}

// NewRunner validates the config, connects the target clients, and
// instantiates the scenarios.
func NewRunner(cfg Config) (*Runner, error) {
	if cfg.Mode != ModeClosed && cfg.Mode != ModeOpen {
		return nil, fmt.Errorf("load: mode %q (want %s or %s)", cfg.Mode, ModeClosed, ModeOpen)
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("load: non-positive duration %s", cfg.Duration)
	}
	if len(cfg.Ramp) == 0 {
		return nil, fmt.Errorf("load: empty ramp schedule")
	}
	if len(cfg.Workloads) == 0 {
		return nil, fmt.Errorf("load: no workloads selected")
	}
	if cfg.Budget < 0 {
		return nil, fmt.Errorf("load: negative budget %d", cfg.Budget)
	}
	// One shared transport sized for the run's concurrency: the stdlib
	// default keeps only 2 idle connections per host, so a high-QPS run
	// would open and close a socket per request and stall on ephemeral-port
	// exhaustion within seconds.
	idle := cfg.Budget
	if idle <= 0 || idle < 64 {
		idle = 64
	}
	hc := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        idle * 2,
		MaxIdleConnsPerHost: idle,
		IdleConnTimeout:     90 * time.Second,
	}}
	clients := make([]*client.Client, 0, len(cfg.Targets))
	for _, t := range cfg.Targets {
		// The harness never retries: a retry would silently re-shape the
		// offered load and hide the target's error rate.
		c, err := client.New(t, client.WithHTTPClient(hc), client.WithTimeout(cfg.Timeout), client.WithRetries(0))
		if err != nil {
			return nil, err
		}
		clients = append(clients, c)
	}
	env, err := NewEnv(clients, cfg.Catalog, cfg.Theta, uint64(cfg.Seed))
	if err != nil {
		return nil, err
	}
	env.Methods = cfg.Methods
	// Fail fast on bad distribution parameters instead of inside a worker.
	if _, err := cfg.Dist.Picker(rand.New(rand.NewSource(1)), len(cfg.Catalog)); err != nil {
		return nil, err
	}
	r := &Runner{cfg: cfg, reg: obs.NewRegistry(), env: env}
	seen := map[string]bool{}
	for _, name := range cfg.Workloads {
		if seen[name] {
			return nil, fmt.Errorf("load: workload %q selected twice", name)
		}
		seen[name] = true
		w, err := NewWorkload(name)
		if err != nil {
			return nil, err
		}
		r.scenarios = append(r.scenarios, &scenario{w: w, name: name})
	}
	return r, nil
}

// newWorker builds the deterministic per-slot worker state: the RNG seed
// depends only on (run seed, scenario index, slot), so a re-run with the
// same config replays the same per-slot request sequences.
func (r *Runner) newWorker(scenarioIdx, slot int) *Worker {
	seed := r.cfg.Seed + int64(scenarioIdx+1)*1_000_003 + int64(slot+1)*7919
	rng := rand.New(rand.NewSource(seed))
	pick, err := r.cfg.Dist.Picker(rng, len(r.env.Catalog))
	if err != nil {
		// Parameters were validated in NewRunner; this cannot happen.
		panic(err)
	}
	return &Worker{RNG: rng, Pick: pick, Env: r.env}
}

// observe records one completed request into the per-workload and
// per-workload×class histograms and counters.
func (r *Runner) observe(sc *scenario, status int, err error, d time.Duration) {
	sc.done.Add(1)
	ci := classIndex(status, err)
	sc.byClass[ci].Add(1)
	if ci >= 2 {
		sc.errs.Add(1)
	}
	r.reg.Histogram("load_seconds_all").Observe(d.Seconds())
	r.reg.Histogram("load_seconds_" + sc.name).Observe(d.Seconds())
	r.reg.Histogram("load_seconds_" + sc.name + "_class_" + classLabels[ci]).Observe(d.Seconds())
}

// Run executes the configured load: scrape the targets' /debug/metrics,
// drive the loop for the configured duration, scrape again, and return the
// report with the server-side deltas attached.
func (r *Runner) Run(ctx context.Context) (*Report, error) {
	before, err := r.scrape(ctx)
	if err != nil {
		return nil, fmt.Errorf("load: pre-run metrics scrape: %w", err)
	}
	start := time.Now()
	runCtx, cancel := context.WithTimeout(ctx, r.cfg.Duration)
	defer cancel()

	stopSnap := r.startSnapshots(runCtx, start)
	switch r.cfg.Mode {
	case ModeClosed:
		r.runClosed(runCtx, start)
	case ModeOpen:
		r.runOpen(runCtx, start)
	}
	stopSnap()
	elapsed := time.Since(start)

	after, err := r.scrape(ctx)
	if err != nil {
		return nil, fmt.Errorf("load: post-run metrics scrape: %w", err)
	}
	rep := r.buildReport(before, after, elapsed)
	rep.TraceAttribution = r.fetchAttribution(ctx)
	return rep, nil
}

// runClosed maintains per-scenario worker pools sized by the ramp schedule:
// every control tick, the ramp's current total (clamped to the budget) is
// split across scenarios by max-min allocation over their capacity caps,
// and each pool grows or shrinks to its allocation. A re-grown slot reuses
// its deterministic seed, so churn does not change the request streams.
func (r *Runner) runClosed(ctx context.Context, start time.Time) {
	pools := make([][]chan struct{}, len(r.scenarios))
	var wg sync.WaitGroup

	resize := func() {
		total := int(math.Round(r.cfg.Ramp.TargetAt(time.Since(start))))
		if r.cfg.Budget > 0 && total > r.cfg.Budget {
			total = r.cfg.Budget
		}
		demands := make([]int, len(r.scenarios))
		for i, sc := range r.scenarios {
			d := total
			if c := sc.w.Cap(); c > 0 && c < d {
				d = c
			}
			demands[i] = d
		}
		alloc := MaxMinAlloc(total, demands)
		for i, n := range alloc {
			for len(pools[i]) < n {
				slot := len(pools[i])
				stop := make(chan struct{})
				pools[i] = append(pools[i], stop)
				sc, wk := r.scenarios[i], r.newWorker(i, slot)
				wg.Add(1)
				go func() {
					defer wg.Done()
					r.workerLoop(ctx, stop, sc, wk)
				}()
			}
			for len(pools[i]) > n {
				last := len(pools[i]) - 1
				close(pools[i][last])
				pools[i] = pools[i][:last]
			}
		}
	}

	resize()
	tick := time.NewTicker(200 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			for _, pool := range pools {
				for _, stop := range pool {
					close(stop)
				}
			}
			wg.Wait()
			return
		case <-tick.C:
			resize()
		}
	}
}

// workerLoop fires requests back-to-back until stopped. A request cut short
// by the run deadline is not recorded — its latency would measure the
// harness, not the service.
func (r *Runner) workerLoop(ctx context.Context, stop <-chan struct{}, sc *scenario, wk *Worker) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-stop:
			return
		default:
		}
		t0 := time.Now()
		status, err := sc.w.Do(r.traceCtx(ctx, wk), wk)
		if ctx.Err() != nil {
			return
		}
		r.observe(sc, status, err, time.Since(t0))
	}
}

// runOpen paces arrivals at the ramp's QPS target, split equally across
// scenarios, and sheds arrivals that would exceed the shared in-flight
// budget — offered load stays on schedule whether or not the target keeps
// up, which is what makes offered-vs-achieved QPS meaningful.
func (r *Runner) runOpen(ctx context.Context, start time.Time) {
	var sem chan struct{}
	if r.cfg.Budget > 0 {
		sem = make(chan struct{}, r.cfg.Budget)
	}

	setRates := func() {
		share := r.cfg.Ramp.TargetAt(time.Since(start)) / float64(len(r.scenarios))
		for _, sc := range r.scenarios {
			sc.rate.Store(math.Float64bits(share))
		}
	}
	setRates()

	var dispWG, reqWG sync.WaitGroup
	dispWG.Add(1)
	go func() {
		defer dispWG.Done()
		tick := time.NewTicker(200 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				setRates()
			}
		}
	}()
	for i := range r.scenarios {
		dispWG.Add(1)
		go func(i int) {
			defer dispWG.Done()
			r.dispatch(ctx, i, sem, &reqWG)
		}(i)
	}
	dispWG.Wait()
	reqWG.Wait()
}

// dispatch is one scenario's open-loop arrival pacer. Worker states are
// pooled and reused across requests, keeping per-slot RNG streams
// deterministic even though requests overlap.
func (r *Runner) dispatch(ctx context.Context, i int, sem chan struct{}, reqWG *sync.WaitGroup) {
	sc := r.scenarios[i]
	free := make(chan *Worker, 4096)
	created := 0
	getWorker := func() *Worker {
		select {
		case wk := <-free:
			return wk
		default:
			wk := r.newWorker(i, created)
			created++
			return wk
		}
	}

	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	next := time.Now()
	for {
		rate := math.Float64frombits(sc.rate.Load())
		if rate < 1e-3 {
			timer.Reset(100 * time.Millisecond)
			select {
			case <-ctx.Done():
				return
			case <-timer.C:
			}
			next = time.Now()
			continue
		}
		next = next.Add(time.Duration(float64(time.Second) / rate))
		if wait := time.Until(next); wait > 0 {
			timer.Reset(wait)
			select {
			case <-ctx.Done():
				return
			case <-timer.C:
			}
		} else if wait < -time.Second {
			// Fell far behind (rate jump, long GC pause): resynchronize
			// instead of firing a catch-up burst.
			next = time.Now()
		}
		sc.offered.Add(1)
		if sem != nil {
			select {
			case sem <- struct{}{}:
			default:
				sc.dropped.Add(1)
				continue
			}
		}
		wk := getWorker()
		reqWG.Add(1)
		go func() {
			defer reqWG.Done()
			if sem != nil {
				defer func() { <-sem }()
			}
			t0 := time.Now()
			status, err := sc.w.Do(r.traceCtx(ctx, wk), wk)
			if ctx.Err() == nil {
				r.observe(sc, status, err, time.Since(t0))
			}
			select {
			case free <- wk:
			default:
			}
		}()
	}
}

// startSnapshots emits periodic per-scenario progress lines to cfg.Logf.
// The returned stop waits for the printer to finish.
func (r *Runner) startSnapshots(ctx context.Context, start time.Time) (stop func()) {
	if r.cfg.Snapshot <= 0 || r.cfg.Logf == nil {
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		last := make([]int64, len(r.scenarios))
		tick := time.NewTicker(r.cfg.Snapshot)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				elapsed := time.Since(start)
				for i, sc := range r.scenarios {
					n := sc.done.Load()
					qps := float64(n-last[i]) / r.cfg.Snapshot.Seconds()
					last[i] = n
					h := r.reg.Histogram("load_seconds_" + sc.name)
					r.cfg.Logf("t=%5.1fs %-10s n=%-7d qps=%7.1f p50=%6.1fms p99=%6.1fms errs=%d dropped=%d",
						elapsed.Seconds(), sc.name, n, qps,
						h.Quantile(0.50)*1e3, h.Quantile(0.99)*1e3,
						sc.errs.Load(), sc.dropped.Load())
				}
			}
		}
	}()
	return func() { <-done }
}
