package load

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/gpusampling/sieve/internal/server"
)

// testCatalog builds a tiny rendered catalog once per test binary —
// generation and profiling dominate test time otherwise.
var testCatalogCache []Profile

func testCatalog(t *testing.T) []Profile {
	t.Helper()
	if testCatalogCache == nil {
		cat, err := BuildCatalog([]string{"dwt2d", "bfs_ny"}, []float64{0.5, 1.0}, true)
		if err != nil {
			t.Fatal(err)
		}
		testCatalogCache = cat
	}
	return testCatalogCache
}

func startSieved(t *testing.T) string {
	t.Helper()
	ts := httptest.NewServer(server.New(server.Config{}).Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

func baseConfig(t *testing.T, target string) Config {
	ramp, err := ParseRamp("0:4")
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Targets:   []string{target},
		Workloads: []string{"sample", "sample-csv", "batch", "planfetch"},
		Mode:      ModeClosed,
		Duration:  800 * time.Millisecond,
		Ramp:      ramp,
		Budget:    8,
		Dist:      Dist{Kind: "zipfian", S: 1.3},
		Seed:      11,
		Theta:     0.4,
		Timeout:   10 * time.Second,
		Catalog:   testCatalog(t),
	}
}

// TestClosedLoopEndToEnd drives every built-in scenario against an
// in-process sieved and checks the report holds together: traffic flowed,
// nothing 5xx'd, latencies were recorded per scenario, and the server-side
// metric deltas reconcile with the harness's own counts.
func TestClosedLoopEndToEnd(t *testing.T) {
	r, err := NewRunner(baseConfig(t, startSieved(t)))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != ReportSchema || rep.Mode != ModeClosed {
		t.Fatalf("report header = %q/%q", rep.Schema, rep.Mode)
	}
	if rep.AchievedQPS <= 0 {
		t.Fatalf("achieved QPS = %g, want > 0", rep.AchievedQPS)
	}
	var total int64
	for name, wr := range rep.Workloads {
		if wr.Requests == 0 {
			t.Errorf("workload %s made no requests", name)
		}
		if wr.ByClass["5xx"] != 0 || wr.ByClass["err"] != 0 {
			t.Errorf("workload %s: 5xx=%d err=%d", name, wr.ByClass["5xx"], wr.ByClass["err"])
		}
		if wr.Requests > 0 && wr.LatencyMS.P50 <= 0 {
			t.Errorf("workload %s: p50 = %g with %d requests", name, wr.LatencyMS.P50, wr.Requests)
		}
		if wr.LatencyMS.P999 < wr.LatencyMS.P50 {
			t.Errorf("workload %s: p999 %g < p50 %g", name, wr.LatencyMS.P999, wr.LatencyMS.P50)
		}
		total += wr.Requests
	}
	if rep.LatencyMS.P50 <= 0 {
		t.Errorf("pooled p50 = %g", rep.LatencyMS.P50)
	}
	// Every harness request reached the server (batch counts as one server
	// request for several items, so server requests ≤ harness requests is
	// not exact — but the server must have seen at least as many requests
	// as the harness's non-batch count, and some traffic overall).
	if rep.Server.Requests <= 0 {
		t.Fatalf("server saw no requests (delta %+v)", rep.Server)
	}
	// With a zipfian hot set of 4 catalog entries and hundreds of requests,
	// the cache must have been doing work.
	if rep.Server.CacheHits == 0 {
		t.Errorf("no cache hits across the run: %+v", rep.Server)
	}
	if rep.Server.HotRate <= 0 {
		t.Errorf("hot rate = %g", rep.Server.HotRate)
	}
}

// TestOpenLoopEndToEnd checks the paced mode: offered tracks the schedule
// (not the target's speed) and achieved ≤ offered.
func TestOpenLoopEndToEnd(t *testing.T) {
	cfg := baseConfig(t, startSieved(t))
	cfg.Mode = ModeOpen
	cfg.Workloads = []string{"sample", "planfetch"}
	ramp, err := ParseRamp("0:200")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Ramp = ramp
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.OfferedQPS <= 0 {
		t.Fatalf("offered QPS = %g", rep.OfferedQPS)
	}
	if rep.AchievedQPS <= 0 {
		t.Fatalf("achieved QPS = %g", rep.AchievedQPS)
	}
	for name, wr := range rep.Workloads {
		offered := wr.Requests + wr.Dropped
		if float64(offered) < wr.OfferedQPS*rep.DurationSeconds*0.99-1 {
			t.Errorf("workload %s: offered count %d vs offered qps %g over %gs",
				name, offered, wr.OfferedQPS, rep.DurationSeconds)
		}
		if wr.AchievedQPS > wr.OfferedQPS+1e-9 {
			t.Errorf("workload %s: achieved %g > offered %g", name, wr.AchievedQPS, wr.OfferedQPS)
		}
	}
}

// TestRunnerBudgetCapsClosedWorkers: with a budget far below the ramp
// target, the max-min allocation must keep total concurrent workers at the
// budget — observed indirectly via the server's in-flight high-water being
// impossible to exceed the budget. Here we assert the cheaper invariant:
// the run completes and the capped scenario (batch, cap 16) never exceeds
// its cap's share of requests in a way that starves the rest.
func TestRunnerBudgetCapsClosedWorkers(t *testing.T) {
	cfg := baseConfig(t, startSieved(t))
	ramp, err := ParseRamp("0:64")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Ramp = ramp
	cfg.Budget = 6
	cfg.Duration = 500 * time.Millisecond
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for name, wr := range rep.Workloads {
		if wr.Requests == 0 {
			t.Errorf("budgeted run starved workload %s", name)
		}
	}
	if rep.Server.Requests == 0 {
		t.Fatal("no server traffic under budget")
	}
}

func TestNewRunnerRejects(t *testing.T) {
	good := baseConfig(t, "http://sieved.invalid")
	for _, mutate := range []func(*Config){
		func(c *Config) { c.Mode = "drizzle" },
		func(c *Config) { c.Duration = 0 },
		func(c *Config) { c.Ramp = nil },
		func(c *Config) { c.Workloads = nil },
		func(c *Config) { c.Workloads = []string{"sample", "sample"} },
		func(c *Config) { c.Workloads = []string{"nope"} },
		func(c *Config) { c.Targets = []string{"sieved:8372"} },
		func(c *Config) { c.Catalog = nil },
		func(c *Config) { c.Budget = -1 },
		func(c *Config) { c.Dist = Dist{Kind: "zipfian", S: 0.5} },
	} {
		cfg := good
		mutate(&cfg)
		if _, err := NewRunner(cfg); err == nil {
			t.Errorf("NewRunner accepted bad config %+v", cfg)
		}
	}
	if _, err := NewRunner(good); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
}

// TestMethodPoolEndToEnd drives the sample and batch scenarios with a mixed
// methodology pool against an in-process sieved: every drawn method must be
// accepted (no 4xx from the method field) and the server must see traffic on
// every pool member's counter.
func TestMethodPoolEndToEnd(t *testing.T) {
	cfg := baseConfig(t, startSieved(t))
	cfg.Workloads = []string{"sample", "batch"}
	cfg.Methods = []string{"sieve", "twophase", "rss"}
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for name, wr := range rep.Workloads {
		if wr.Requests == 0 {
			t.Errorf("workload %s made no requests", name)
		}
		for _, class := range []string{"4xx", "5xx", "err"} {
			if wr.ByClass[class] != 0 {
				t.Errorf("workload %s: %s=%d under method pool", name, class, wr.ByClass[class])
			}
		}
	}
}

// TestWorkerMethodDraw pins the pool semantics: empty pool means the server
// default (empty string), a populated pool only ever yields its members.
func TestWorkerMethodDraw(t *testing.T) {
	env := &Env{Methods: nil}
	wk := &Worker{RNG: rand.New(rand.NewSource(1)), Env: env}
	if m := wk.method(); m != "" {
		t.Fatalf("empty pool drew %q", m)
	}
	env.Methods = []string{"twophase", "rss"}
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		m := wk.method()
		if m != "twophase" && m != "rss" {
			t.Fatalf("pool drew foreign method %q", m)
		}
		seen[m] = true
	}
	if len(seen) != 2 {
		t.Fatalf("100 draws never mixed the pool: %v", seen)
	}
}
