package load

// MaxMinAlloc splits total units of a shared budget across scenarios by
// max-min fairness: every scenario gets an equal share, except that a
// scenario demanding less than its share is fully satisfied and its unused
// share is redistributed among the rest. The result allocates
// min(total, Σdemands) units with alloc[i] ≤ demands[i], and no scenario can
// gain a unit without taking one from a scenario holding fewer.
//
// This is how the harness stays capacity-aware: a scenario's demand is its
// declared capacity cap (or the whole budget when uncapped), so heavyweight
// scenarios are throttled at their cap while the freed budget flows to the
// uncapped ones instead of going idle.
func MaxMinAlloc(total int, demands []int) []int {
	alloc := make([]int, len(demands))
	if total <= 0 {
		return alloc
	}
	remaining := total
	for {
		var active []int
		for i, d := range demands {
			if alloc[i] < d {
				active = append(active, i)
			}
		}
		if len(active) == 0 || remaining == 0 {
			return alloc
		}
		share := remaining / len(active)
		if share == 0 {
			// Fewer units than unsatisfied scenarios: hand out the remainder
			// one unit each in index order (deterministic tie-break).
			for _, i := range active {
				if remaining == 0 {
					break
				}
				alloc[i]++
				remaining--
			}
			return alloc
		}
		for _, i := range active {
			grant := demands[i] - alloc[i]
			if grant > share {
				grant = share
			}
			alloc[i] += grant
			remaining -= grant
		}
	}
}
