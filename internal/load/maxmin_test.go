package load

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestMaxMinAlloc(t *testing.T) {
	cases := []struct {
		total   int
		demands []int
		want    []int
	}{
		// Plenty of budget: everyone fully satisfied.
		{100, []int{10, 20, 30}, []int{10, 20, 30}},
		// Scarce budget, equal demands: equal split.
		{30, []int{100, 100, 100}, []int{10, 10, 10}},
		// A small demand frees budget for the big ones.
		{30, []int{4, 100, 100}, []int{4, 13, 13}},
		// Capped scenario at its cap, rest shared.
		{64, []int{16, 64, 64}, []int{16, 24, 24}},
		// Fewer units than scenarios: index-order remainder.
		{2, []int{5, 5, 5}, []int{1, 1, 0}},
		// Zero budget.
		{0, []int{5, 5}, []int{0, 0}},
		// Zero demand stays zero.
		{10, []int{0, 7}, []int{0, 7}},
	}
	for _, c := range cases {
		got := MaxMinAlloc(c.total, c.demands)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("MaxMinAlloc(%d, %v) = %v, want %v", c.total, c.demands, got, c.want)
		}
	}
}

// TestMaxMinAllocInvariants fuzzes the two allocation laws: never exceed a
// demand, and allocate exactly min(total, Σdemands).
func TestMaxMinAllocInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(8)
		demands := make([]int, n)
		sum := 0
		for i := range demands {
			demands[i] = rng.Intn(50)
			sum += demands[i]
		}
		total := rng.Intn(120)
		alloc := MaxMinAlloc(total, demands)
		allocated := 0
		for i := range alloc {
			if alloc[i] > demands[i] || alloc[i] < 0 {
				t.Fatalf("alloc %v exceeds demands %v (total %d)", alloc, demands, total)
			}
			allocated += alloc[i]
		}
		want := total
		if sum < want {
			want = sum
		}
		if allocated != want {
			t.Fatalf("MaxMinAlloc(%d, %v) = %v allocates %d, want %d", total, demands, alloc, allocated, want)
		}
	}
}
