package load

import (
	"fmt"
	"math/rand"
)

// Dist names a popularity distribution over the profile catalog. Under
// "zipfian" the catalog's first entries are the hot set — every worker skews
// toward the same few profiles, which is what makes request coalescing and
// cache hits visible under load. Under "uniform" all entries are equally
// likely, the cache-hostile baseline.
type Dist struct {
	Kind string  // "uniform" or "zipfian"
	S    float64 // zipfian skew exponent, > 1 (ignored for uniform)
}

// ParseDist validates a distribution name and skew.
func ParseDist(kind string, s float64) (Dist, error) {
	switch kind {
	case "uniform":
		return Dist{Kind: "uniform"}, nil
	case "zipfian":
		if s <= 1 {
			return Dist{}, fmt.Errorf("load: zipfian skew must be > 1, got %g", s)
		}
		return Dist{Kind: "zipfian", S: s}, nil
	default:
		return Dist{}, fmt.Errorf("load: unknown distribution %q (want uniform or zipfian)", kind)
	}
}

// Picker returns a catalog-index generator over [0, n) bound to the worker's
// own RNG, so every worker draws a deterministic, independent sequence.
func (d Dist) Picker(rng *rand.Rand, n int) (func() int, error) {
	if n <= 0 {
		return nil, fmt.Errorf("load: empty catalog")
	}
	switch d.Kind {
	case "uniform":
		return func() int { return rng.Intn(n) }, nil
	case "zipfian":
		z := rand.NewZipf(rng, d.S, 1, uint64(n-1))
		if z == nil {
			return nil, fmt.Errorf("load: bad zipfian parameters s=%g n=%d", d.S, n)
		}
		return func() int { return int(z.Uint64()) }, nil
	default:
		return nil, fmt.Errorf("load: unknown distribution %q", d.Kind)
	}
}
