package load

import (
	"math/rand"
	"testing"
)

func TestParseDist(t *testing.T) {
	if _, err := ParseDist("uniform", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseDist("zipfian", 1.2); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseDist("zipfian", 1.0); err == nil {
		t.Fatal("zipfian s=1 accepted")
	}
	if _, err := ParseDist("pareto", 2); err == nil {
		t.Fatal("unknown distribution accepted")
	}
}

// TestZipfianSkew checks the zipfian picker concentrates mass on the low
// indices while uniform spreads it evenly — the property the cache-contrast
// benchmark rests on.
func TestZipfianSkew(t *testing.T) {
	const n, draws = 24, 20000
	count := func(d Dist) []int {
		pick, err := d.Picker(rand.New(rand.NewSource(42)), n)
		if err != nil {
			t.Fatal(err)
		}
		c := make([]int, n)
		for i := 0; i < draws; i++ {
			idx := pick()
			if idx < 0 || idx >= n {
				t.Fatalf("pick out of range: %d", idx)
			}
			c[idx]++
		}
		return c
	}
	zipf := count(Dist{Kind: "zipfian", S: 1.2})
	uni := count(Dist{Kind: "uniform"})

	zipfTop4 := zipf[0] + zipf[1] + zipf[2] + zipf[3]
	uniTop4 := uni[0] + uni[1] + uni[2] + uni[3]
	if zipfTop4 < draws/2 {
		t.Errorf("zipfian top-4 share = %d/%d, want ≥ half", zipfTop4, draws)
	}
	if uniTop4 > draws/3 {
		t.Errorf("uniform top-4 share = %d/%d, want ≈ 4/24", uniTop4, draws)
	}
}

// TestPickerDeterminism: same seed, same sequence — the reproducibility
// contract per worker slot.
func TestPickerDeterminism(t *testing.T) {
	for _, d := range []Dist{{Kind: "uniform"}, {Kind: "zipfian", S: 1.3}} {
		a, _ := d.Picker(rand.New(rand.NewSource(9)), 16)
		b, _ := d.Picker(rand.New(rand.NewSource(9)), 16)
		for i := 0; i < 100; i++ {
			if x, y := a(), b(); x != y {
				t.Fatalf("%s: draw %d differs: %d vs %d", d.Kind, i, x, y)
			}
		}
	}
}

func TestPickerSingleEntryCatalog(t *testing.T) {
	d := Dist{Kind: "zipfian", S: 1.5}
	pick, err := d.Picker(rand.New(rand.NewSource(3)), 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if got := pick(); got != 0 {
			t.Fatalf("pick = %d on 1-entry catalog", got)
		}
	}
}
