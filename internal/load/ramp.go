// Package load is the sieved load-generation harness behind cmd/sieveload:
// a closed- and open-loop driver that pushes a running sieved (single node
// or peered cluster) through a registry of pluggable workload scenarios,
// records latency per workload × status class, and emits a machine-readable
// benchmark report with the target's own /debug/metrics deltas attached.
//
// The harness is deliberately built only on the exported api and client
// packages — it exercises exactly the integration surface third parties get.
package load

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// RampStep is one point of a ramp schedule: from At onward the schedule
// heads toward Target.
type RampStep struct {
	At     time.Duration
	Target float64
}

// Ramp is a piecewise-linear load schedule over elapsed run time, kept
// sorted by offset. Between two steps the target is interpolated linearly,
// so "0:100,30s:1000" climbs smoothly instead of jumping; past the last step
// the final target holds.
type Ramp []RampStep

// ParseRamp parses a schedule like "0:100,30s:1000,2m:5000" — comma-
// separated offset:target pairs. Offsets accept time.ParseDuration forms
// ("30s", "2m", "1m30s") or bare numbers meaning seconds; targets are
// non-negative numbers. A single bare number ("400") is a constant schedule.
func ParseRamp(s string) (Ramp, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, fmt.Errorf("load: empty ramp")
	}
	var r Ramp
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		offS, tgtS, found := strings.Cut(part, ":")
		if !found {
			// Bare number: constant target from t=0.
			tgtS, offS = part, "0"
		}
		off, err := parseOffset(offS)
		if err != nil {
			return nil, fmt.Errorf("load: ramp step %q: %w", part, err)
		}
		tgt, err := strconv.ParseFloat(strings.TrimSpace(tgtS), 64)
		if err != nil || math.IsNaN(tgt) || tgt < 0 {
			return nil, fmt.Errorf("load: ramp step %q: bad target %q", part, tgtS)
		}
		r = append(r, RampStep{At: off, Target: tgt})
	}
	if len(r) == 0 {
		return nil, fmt.Errorf("load: empty ramp")
	}
	sort.SliceStable(r, func(a, b int) bool { return r[a].At < r[b].At })
	for i := 1; i < len(r); i++ {
		if r[i].At == r[i-1].At {
			return nil, fmt.Errorf("load: duplicate ramp offset %s", r[i].At)
		}
	}
	return r, nil
}

// parseOffset accepts "30s"/"2m"/"1m30s" duration forms or a bare number of
// seconds ("0", "45", "1.5").
func parseOffset(s string) (time.Duration, error) {
	s = strings.TrimSpace(s)
	if secs, err := strconv.ParseFloat(s, 64); err == nil {
		if secs < 0 {
			return 0, fmt.Errorf("negative offset %q", s)
		}
		return time.Duration(secs * float64(time.Second)), nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d < 0 {
		return 0, fmt.Errorf("bad offset %q", s)
	}
	return d, nil
}

// TargetAt returns the scheduled target at the given elapsed time: the first
// step's target before the schedule begins, linear interpolation between
// steps, and the last step's target thereafter.
func (r Ramp) TargetAt(elapsed time.Duration) float64 {
	if len(r) == 0 {
		return 0
	}
	if elapsed <= r[0].At {
		return r[0].Target
	}
	for i := 1; i < len(r); i++ {
		if elapsed < r[i].At {
			prev, next := r[i-1], r[i]
			frac := float64(elapsed-prev.At) / float64(next.At-prev.At)
			return prev.Target + frac*(next.Target-prev.Target)
		}
	}
	return r[len(r)-1].Target
}

// Peak returns the schedule's maximum target.
func (r Ramp) Peak() float64 {
	var peak float64
	for _, s := range r {
		if s.Target > peak {
			peak = s.Target
		}
	}
	return peak
}

// String renders the schedule back in the parseable offset:target form.
func (r Ramp) String() string {
	parts := make([]string, len(r))
	for i, s := range r {
		parts[i] = fmt.Sprintf("%s:%g", s.At, s.Target)
	}
	return strings.Join(parts, ",")
}
