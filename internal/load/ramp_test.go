package load

import (
	"math"
	"testing"
	"time"
)

func TestParseRamp(t *testing.T) {
	r, err := ParseRamp("0:100,30s:1000,2m:5000")
	if err != nil {
		t.Fatal(err)
	}
	if len(r) != 3 || r[0].Target != 100 || r[1].At != 30*time.Second || r[2].Target != 5000 {
		t.Fatalf("ramp = %+v", r)
	}

	cases := []struct {
		at   time.Duration
		want float64
	}{
		{0, 100},
		{15 * time.Second, 550},  // halfway 100→1000
		{30 * time.Second, 1000}, //
		{75 * time.Second, 3000}, // halfway 1000→5000
		{2 * time.Minute, 5000},  //
		{10 * time.Minute, 5000}, // holds past the last step
		{-time.Second, 100},      // clamps before the first
	}
	for _, c := range cases {
		if got := r.TargetAt(c.at); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("TargetAt(%s) = %g, want %g", c.at, got, c.want)
		}
	}
	if r.Peak() != 5000 {
		t.Errorf("Peak = %g", r.Peak())
	}
}

func TestParseRampBareNumberAndSeconds(t *testing.T) {
	r, err := ParseRamp("400")
	if err != nil {
		t.Fatal(err)
	}
	if r.TargetAt(0) != 400 || r.TargetAt(time.Hour) != 400 {
		t.Fatalf("constant ramp = %+v", r)
	}
	r, err = ParseRamp("0:10,45:20") // bare-number offset means seconds
	if err != nil {
		t.Fatal(err)
	}
	if r[1].At != 45*time.Second {
		t.Fatalf("offset = %s, want 45s", r[1].At)
	}
}

func TestParseRampRejects(t *testing.T) {
	for _, s := range []string{"", "abc", "0:-5", "0:10,0:20", "x:10", "0:nan"} {
		if _, err := ParseRamp(s); err == nil {
			t.Errorf("ParseRamp(%q) accepted", s)
		}
	}
}

func TestRampRoundTrip(t *testing.T) {
	r, err := ParseRamp("0:100,30s:1000")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ParseRamp(r.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", r.String(), err)
	}
	if r2.TargetAt(12*time.Second) != r.TargetAt(12*time.Second) {
		t.Fatal("round-tripped ramp differs")
	}
}
