package load

import (
	"context"
	"time"

	"github.com/gpusampling/sieve/api"
)

// ReportSchema versions the BENCH_load.json document.
const ReportSchema = "sieve-load/v1"

// Percentiles is a latency quantile summary in milliseconds.
type Percentiles struct {
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
}

// WorkloadReport summarizes one scenario's run.
type WorkloadReport struct {
	Requests    int64            `json:"requests"`
	Errors      int64            `json:"errors"`
	Dropped     int64            `json:"dropped"`
	ByClass     map[string]int64 `json:"by_class"`
	LatencyMS   Percentiles      `json:"latency_ms"`
	OfferedQPS  float64          `json:"offered_qps"`
	AchievedQPS float64          `json:"achieved_qps"`
}

// TargetDelta is one replica's /debug/metrics movement across the run.
type TargetDelta struct {
	Target       string `json:"target"`
	Requests     int64  `json:"requests"`
	Failures     int64  `json:"failures"`
	CacheHits    int64  `json:"cache_hits"`
	CacheMisses  int64  `json:"cache_misses"`
	Computations int64  `json:"computations"`
	Coalesced    int64  `json:"coalesced"`
	BatchItems   int64  `json:"batch_items"`
	PeerFills    int64  `json:"peer_fills"`
	PeerProxied  int64  `json:"peer_proxied"`
	Rejected     int64  `json:"rejected"`
}

// ServerSummary aggregates the targets' metric deltas and derives the rates
// the zipfian-vs-uniform comparison reads.
type ServerSummary struct {
	Targets      []TargetDelta `json:"targets"`
	Requests     int64         `json:"requests"`
	Failures     int64         `json:"failures"`
	CacheHits    int64         `json:"cache_hits"`
	CacheMisses  int64         `json:"cache_misses"`
	Computations int64         `json:"computations"`
	Coalesced    int64         `json:"coalesced"`
	PeerFills    int64         `json:"peer_fills"`
	PeerProxied  int64         `json:"peer_proxied"`
	// Rates are per plan lookup (cache_hits + cache_misses; a coalesced
	// request counts as a miss first), not per HTTP request — a batch
	// request performs one lookup per item, so requests would undercount
	// the denominator.
	//
	// CacheHitRate is the fraction of lookups served from cache.
	CacheHitRate float64 `json:"cache_hit_rate"`
	// CoalescedRate is the fraction of lookups that joined another
	// request's in-flight computation.
	CoalescedRate float64 `json:"coalesced_rate"`
	// HotRate is the fraction of lookups that never reached the solver
	// (cache hit or coalesced). Zipfian popularity should push it well
	// above the uniform baseline.
	HotRate float64 `json:"hot_rate"`
}

// StageStat summarizes one serving stage across the run's sampled traces:
// how many traces attributed time to the stage, the stage-duration quantiles,
// and the stage's share of the sampled requests' total wall time.
type StageStat struct {
	Samples int     `json:"samples"`
	P50MS   float64 `json:"p50_ms"`
	P99MS   float64 `json:"p99_ms"`
	Share   float64 `json:"share"`
}

// TraceAttribution is the per-stage latency-attribution summary built from
// the run's sampled distributed traces (Config.TraceEvery). Shares are
// exclusive per stage — the server's stage taxonomy partitions each traced
// request's wall time — so they sum to at most 1 (the remainder is
// unattributed handler overhead).
type TraceAttribution struct {
	// Sampled is how many requests carried a minted trace id.
	Sampled int `json:"sampled"`
	// Fetched is how many of those traces were still resident on a target
	// after the run.
	Fetched int `json:"fetched"`
	// FetchErrors counts sampled ids no target still held (overwritten in
	// the bounded trace store, or the request never completed).
	FetchErrors int `json:"fetch_errors"`
	// Stages maps stage name (decode, cache, slot, flight, compute, proxy,
	// write) to its attribution.
	Stages map[string]StageStat `json:"stages"`
}

// Report is the run's machine-readable result (the BENCH_load.json body).
type Report struct {
	Schema          string                     `json:"schema"`
	Mode            string                     `json:"mode"`
	Dist            string                     `json:"dist"`
	ZipfS           float64                    `json:"zipf_s,omitempty"`
	Seed            int64                      `json:"seed"`
	Theta           float64                    `json:"theta"`
	Budget          int                        `json:"budget"`
	Ramp            string                     `json:"ramp"`
	Targets         []string                   `json:"targets"`
	CatalogSize     int                        `json:"catalog_size"`
	DurationSeconds float64                    `json:"duration_seconds"`
	Workloads       map[string]*WorkloadReport `json:"workloads"`
	OfferedQPS      float64                    `json:"offered_qps"`
	AchievedQPS     float64                    `json:"achieved_qps"`
	LatencyMS       Percentiles                `json:"latency_ms"`
	Server          ServerSummary              `json:"server"`
	// TraceAttribution is present when the run sampled traces
	// (Config.TraceEvery > 0 and at least one request fired).
	TraceAttribution *TraceAttribution `json:"trace_attribution,omitempty"`
}

// scrape snapshots every target's /debug/metrics.
func (r *Runner) scrape(ctx context.Context) ([]*api.DebugMetrics, error) {
	out := make([]*api.DebugMetrics, len(r.env.Clients))
	for i, c := range r.env.Clients {
		m, err := c.DebugMetrics(ctx)
		if err != nil {
			return nil, err
		}
		out[i] = m
	}
	return out, nil
}

func ratio(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// buildReport assembles the final document from the harness counters,
// histograms, and the targets' before/after metric snapshots.
func (r *Runner) buildReport(before, after []*api.DebugMetrics, elapsed time.Duration) *Report {
	rep := &Report{
		Schema:          ReportSchema,
		Mode:            r.cfg.Mode,
		Dist:            r.cfg.Dist.Kind,
		ZipfS:           r.cfg.Dist.S,
		Seed:            r.cfg.Seed,
		Theta:           r.cfg.Theta,
		Budget:          r.cfg.Budget,
		Ramp:            r.cfg.Ramp.String(),
		Targets:         append([]string(nil), r.cfg.Targets...),
		CatalogSize:     len(r.cfg.Catalog),
		DurationSeconds: elapsed.Seconds(),
		Workloads:       make(map[string]*WorkloadReport, len(r.scenarios)),
	}
	secs := elapsed.Seconds()
	for _, sc := range r.scenarios {
		done := sc.done.Load()
		offered := done
		if r.cfg.Mode == ModeOpen {
			offered = sc.offered.Load()
		}
		h := r.reg.Histogram("load_seconds_" + sc.name)
		wr := &WorkloadReport{
			Requests: done,
			Errors:   sc.errs.Load(),
			Dropped:  sc.dropped.Load(),
			ByClass:  make(map[string]int64, nClasses),
			LatencyMS: Percentiles{
				P50:  h.Quantile(0.50) * 1e3,
				P90:  h.Quantile(0.90) * 1e3,
				P99:  h.Quantile(0.99) * 1e3,
				P999: h.Quantile(0.999) * 1e3,
			},
			OfferedQPS:  float64(offered) / maxf(secs, 1e-9),
			AchievedQPS: float64(done) / maxf(secs, 1e-9),
		}
		for ci, label := range classLabels {
			wr.ByClass[label] = sc.byClass[ci].Load()
		}
		rep.Workloads[sc.name] = wr
		rep.OfferedQPS += wr.OfferedQPS
		rep.AchievedQPS += wr.AchievedQPS
	}
	rep.LatencyMS = r.pooledPercentiles()

	rep.Server.Targets = make([]TargetDelta, 0, len(before))
	for i := range before {
		if i >= len(after) {
			break
		}
		b, a := before[i], after[i]
		d := TargetDelta{
			Target:       r.cfg.Targets[i],
			Requests:     a.Requests - b.Requests,
			Failures:     a.Failures - b.Failures,
			CacheHits:    a.CacheHits - b.CacheHits,
			CacheMisses:  a.CacheMisses - b.CacheMisses,
			Computations: a.Computations - b.Computations,
			Coalesced:    a.Coalesced - b.Coalesced,
			BatchItems:   a.BatchItems - b.BatchItems,
			PeerFills:    a.PeerFills - b.PeerFills,
			PeerProxied:  a.PeerProxied - b.PeerProxied,
			Rejected:     a.Rejected - b.Rejected,
		}
		rep.Server.Targets = append(rep.Server.Targets, d)
		rep.Server.Requests += d.Requests
		rep.Server.Failures += d.Failures
		rep.Server.CacheHits += d.CacheHits
		rep.Server.CacheMisses += d.CacheMisses
		rep.Server.Computations += d.Computations
		rep.Server.Coalesced += d.Coalesced
		rep.Server.PeerFills += d.PeerFills
		rep.Server.PeerProxied += d.PeerProxied
	}
	lookups := rep.Server.CacheHits + rep.Server.CacheMisses
	rep.Server.CacheHitRate = ratio(rep.Server.CacheHits, lookups)
	rep.Server.CoalescedRate = ratio(rep.Server.Coalesced, lookups)
	rep.Server.HotRate = ratio(rep.Server.CacheHits+rep.Server.Coalesced, lookups)
	return rep
}

// pooledPercentiles returns the run-wide latency quantiles from the
// all-scenario histogram, fed alongside the per-scenario ones at observe
// time.
func (r *Runner) pooledPercentiles() Percentiles {
	h := r.reg.Histogram("load_seconds_all")
	return Percentiles{
		P50:  h.Quantile(0.50) * 1e3,
		P90:  h.Quantile(0.90) * 1e3,
		P99:  h.Quantile(0.99) * 1e3,
		P999: h.Quantile(0.999) * 1e3,
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
