package load

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"github.com/gpusampling/sieve/api"
	"github.com/gpusampling/sieve/client"
)

// traceSampleCap bounds how many sampled trace ids the run retains for the
// post-run fetch. The retained set is a rolling window of the newest ids:
// the server traces every request (minting ids for untraced ones) into a
// bounded store that overwrites oldest-first, so only the most recent
// samples can still be resident when the run ends — remembering early ids
// would only manufacture fetch misses.
const traceSampleCap = 256

// traceCtx implements trace sampling: every cfg.TraceEvery-th request of a
// worker carries a deterministic minted trace id (drawn from the worker's own
// RNG, so a re-run with the same seed samples the same request positions).
// The newest traceSampleCap sampled ids are remembered for the post-run
// attribution fetch.
func (r *Runner) traceCtx(ctx context.Context, wk *Worker) context.Context {
	if r.cfg.TraceEvery <= 0 {
		return ctx
	}
	n := wk.reqs
	wk.reqs++
	if n%r.cfg.TraceEvery != 0 {
		return ctx
	}
	id := fmt.Sprintf("%016x%016x", wk.RNG.Uint64(), wk.RNG.Uint64())
	r.traceMu.Lock()
	if len(r.traceIDs) < traceSampleCap {
		r.traceIDs = append(r.traceIDs, id)
	} else {
		r.traceIDs[r.traceSeq%traceSampleCap] = id
	}
	r.traceSeq++
	r.traceMu.Unlock()
	return client.WithTraceID(ctx, id)
}

// fetchAttribution retrieves the run's sampled traces from the targets and
// folds their per-stage durations into the latency-attribution summary.
// Returns nil when the run sampled nothing (TraceEvery 0 or no requests).
//
// A proxied request leaves a trace on every replica it touched under the
// same id; the one with the longest duration is the front replica's — it
// covers the whole request including the peer hop — so that is the one
// attributed. An id no target still holds (overwritten in its bounded store)
// counts as a fetch error, not a failure.
func (r *Runner) fetchAttribution(ctx context.Context) *TraceAttribution {
	r.traceMu.Lock()
	ids := append([]string(nil), r.traceIDs...)
	r.traceMu.Unlock()
	if len(ids) == 0 {
		return nil
	}
	att := &TraceAttribution{Sampled: len(ids), Stages: make(map[string]StageStat)}
	stageNS := make(map[string][]float64)
	stageTotal := make(map[string]float64)
	var wallTotal float64
	for _, id := range ids {
		var best *api.Trace
		for _, c := range r.env.Clients {
			t, err := c.GetTrace(ctx, id)
			if err != nil {
				continue
			}
			if best == nil || t.DurationNS > best.DurationNS {
				best = t
			}
		}
		if best == nil {
			att.FetchErrors++
			continue
		}
		att.Fetched++
		wallTotal += float64(best.DurationNS)
		for stage, ns := range best.StageNS {
			stageNS[stage] = append(stageNS[stage], float64(ns))
			stageTotal[stage] += float64(ns)
		}
	}
	for stage, samples := range stageNS {
		sort.Float64s(samples)
		share := 0.0
		if wallTotal > 0 {
			share = stageTotal[stage] / wallTotal
		}
		att.Stages[stage] = StageStat{
			Samples: len(samples),
			P50MS:   quantileSorted(samples, 0.50) / 1e6,
			P99MS:   quantileSorted(samples, 0.99) / 1e6,
			Share:   share,
		}
	}
	return att
}

// quantileSorted reads the p-quantile from an ascending sample slice by
// nearest-rank (0 for an empty slice).
func quantileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted)-1) + 0.5)
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// Table renders the attribution as an aligned text table, stages sorted by
// wall-time share (largest first), for the harness's human-readable output.
func (a *TraceAttribution) Table() string {
	if a == nil || len(a.Stages) == 0 {
		return ""
	}
	type row struct {
		name string
		st   StageStat
	}
	rows := make([]row, 0, len(a.Stages))
	for name, st := range a.Stages {
		rows = append(rows, row{name, st})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].st.Share != rows[j].st.Share {
			return rows[i].st.Share > rows[j].st.Share
		}
		return rows[i].name < rows[j].name
	})
	var b strings.Builder
	fmt.Fprintf(&b, "stage latency attribution (%d/%d traces fetched, %d evicted)\n",
		a.Fetched, a.Sampled, a.FetchErrors)
	fmt.Fprintf(&b, "  %-8s %8s %10s %10s %7s\n", "stage", "samples", "p50_ms", "p99_ms", "share")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-8s %8d %10.3f %10.3f %6.1f%%\n",
			r.name, r.st.Samples, r.st.P50MS, r.st.P99MS, r.st.Share*100)
	}
	return b.String()
}
