package load

import (
	"context"
	"strings"
	"testing"
)

// TestTraceAttributionEndToEnd drives a traced run against an in-process
// sieved and checks the report carries a usable per-stage attribution:
// traces were sampled and fetched back, the stage set matches the server's
// taxonomy, and exclusive-stage shares stay within one request's wall time.
func TestTraceAttributionEndToEnd(t *testing.T) {
	cfg := baseConfig(t, startSieved(t))
	cfg.TraceEvery = 2
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	att := rep.TraceAttribution
	if att == nil {
		t.Fatal("traced run produced no trace_attribution")
	}
	if att.Sampled == 0 || att.Fetched == 0 {
		t.Fatalf("sampled=%d fetched=%d, want both > 0", att.Sampled, att.Fetched)
	}
	if att.Fetched+att.FetchErrors != att.Sampled {
		t.Fatalf("fetched %d + errors %d != sampled %d", att.Fetched, att.FetchErrors, att.Sampled)
	}
	known := map[string]bool{
		"decode": true, "cache": true, "slot": true, "flight": true,
		"compute": true, "proxy": true, "write": true,
	}
	var shareSum float64
	for name, st := range att.Stages {
		if !known[name] {
			t.Errorf("unknown stage %q in attribution", name)
		}
		if st.Samples <= 0 || st.Samples > att.Fetched {
			t.Errorf("stage %s samples = %d with %d fetched", name, st.Samples, att.Fetched)
		}
		if st.P50MS < 0 || st.P99MS < st.P50MS {
			t.Errorf("stage %s quantiles p50=%g p99=%g", name, st.P50MS, st.P99MS)
		}
		if st.Share < 0 || st.Share > 1 {
			t.Errorf("stage %s share = %g", name, st.Share)
		}
		shareSum += st.Share
	}
	// Exclusive attribution partitions wall time: shares cannot overrun it.
	if shareSum > 1.0001 {
		t.Errorf("stage shares sum to %g > 1", shareSum)
	}
	// The cache stage runs on every plan-serving request, so it must appear
	// whatever mix the rolling sample window retained. (Compute may not: the
	// window keeps the newest samples, and with a small hot catalog the tail
	// of the run is all cache hits.)
	if _, ok := att.Stages["cache"]; !ok {
		t.Errorf("no cache stage in %v", att.Stages)
	}

	table := att.Table()
	for _, want := range []string{"stage latency attribution", "p99_ms", "cache"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}

// TestTraceAttributionDisabled: TraceEvery 0 must leave the report without
// an attribution block and never mint trace headers.
func TestTraceAttributionDisabled(t *testing.T) {
	cfg := baseConfig(t, startSieved(t))
	cfg.Duration = cfg.Duration / 2
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.TraceAttribution != nil {
		t.Fatalf("untraced run reported attribution: %+v", rep.TraceAttribution)
	}
}

func TestQuantileSorted(t *testing.T) {
	if q := quantileSorted(nil, 0.5); q != 0 {
		t.Fatalf("empty quantile = %g", q)
	}
	s := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if q := quantileSorted(s, 0); q != 1 {
		t.Fatalf("p0 = %g", q)
	}
	if q := quantileSorted(s, 1); q != 10 {
		t.Fatalf("p100 = %g", q)
	}
	if q := quantileSorted(s, 0.5); q != 6 {
		t.Fatalf("p50 = %g (nearest-rank on 10 samples)", q)
	}
}

func TestAttributionTableNil(t *testing.T) {
	var a *TraceAttribution
	if got := a.Table(); got != "" {
		t.Fatalf("nil table = %q", got)
	}
	if got := (&TraceAttribution{}).Table(); got != "" {
		t.Fatalf("empty table = %q", got)
	}
}
