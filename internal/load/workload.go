package load

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/gpusampling/sieve/api"
	"github.com/gpusampling/sieve/client"
)

// Env is the shared run environment every workload scenario operates in:
// the target replicas (one client each), the profile catalog requests draw
// from, and the run's cache salt.
type Env struct {
	// Clients holds one typed client per target replica. Each request picks
	// a replica at random, so a peered cluster sees requests land on
	// non-owners and exercise the proxy path.
	Clients []*client.Client
	// Catalog is the profile set requests draw from, hottest-first under a
	// zipfian distribution.
	Catalog []Profile
	// Theta is the stratified-sampling budget parameter sent on every
	// request.
	Theta float64
	// Salt is mixed into every request's Options.Seed. The seed participates
	// in the server's plan content hash, so distinct salts see a cold cache
	// even on a long-lived server — each measurement run starts from
	// scratch instead of inheriting the previous run's warm cache.
	Salt uint64
	// Methods is the sampling-methodology pool the workload-mode scenarios
	// (sample, batch, planfetch refills) draw from per request. Empty keeps
	// every request on the server default. Non-default methods hash into
	// distinct plan ids server-side, so a mixed pool multiplies the
	// effective catalog the cache must hold.
	Methods []string

	// planIDs holds the last plan content hash learned for each catalog
	// entry (from any successful response), feeding the planfetch scenario.
	planIDs []atomic.Pointer[string]
}

// NewEnv assembles a run environment. Catalog order matters: index 0 is the
// hottest entry under zipfian popularity.
func NewEnv(clients []*client.Client, catalog []Profile, theta float64, salt uint64) (*Env, error) {
	if len(clients) == 0 {
		return nil, fmt.Errorf("load: no target clients")
	}
	if len(catalog) == 0 {
		return nil, fmt.Errorf("load: empty profile catalog")
	}
	return &Env{
		Clients: clients,
		Catalog: catalog,
		Theta:   theta,
		Salt:    salt,
		planIDs: make([]atomic.Pointer[string], len(catalog)),
	}, nil
}

// storePlanID records the plan content hash observed for catalog entry i.
func (e *Env) storePlanID(i int, id string) {
	if id != "" && i >= 0 && i < len(e.planIDs) {
		e.planIDs[i].Store(&id)
	}
}

// planID returns the last plan hash learned for catalog entry i ("" if none
// yet).
func (e *Env) planID(i int) string {
	if i < 0 || i >= len(e.planIDs) {
		return ""
	}
	if p := e.planIDs[i].Load(); p != nil {
		return *p
	}
	return ""
}

// options builds the request options for one catalog draw.
func (e *Env) options() api.RequestOptions {
	return api.RequestOptions{Theta: e.Theta, Seed: e.Salt}
}

// method draws one methodology from the env's pool with the worker's RNG
// ("" when no pool is configured — the server default). Drawing per request
// keeps a mixed pool mixed within each scenario, not split across them.
func (w *Worker) method() string {
	pool := w.Env.Methods
	if len(pool) == 0 {
		return ""
	}
	return pool[w.RNG.Intn(len(pool))]
}

// methodOptions is options() plus a per-draw methodology from the pool, for
// the workload-mode scenarios (CSV scenarios stay on the default: pks needs
// server-side feature profiling and would reject a CSV source).
func (w *Worker) methodOptions() api.RequestOptions {
	o := w.Env.options()
	o.Method = w.method()
	return o
}

// Worker is one load-generating goroutine's private state: its deterministic
// RNG and the popularity picker bound to it. Workers never share RNG state,
// so a run with the same seed, schedule and catalog replays the same request
// sequence per worker slot.
type Worker struct {
	RNG  *rand.Rand
	Pick func() int
	Env  *Env

	// reqs counts the worker's issued requests, driving the every-Nth trace
	// sampling cadence (Runner.traceCtx).
	reqs int
}

// client picks the target replica for the next request.
func (w *Worker) client() *client.Client {
	return w.Env.Clients[w.RNG.Intn(len(w.Env.Clients))]
}

// Workload is one load scenario: a request shape the harness can drive in
// either loop mode. Implementations must be safe for concurrent Do calls
// (each call gets its own Worker).
type Workload interface {
	// Name is the registry key and the report/metric label.
	Name() string
	// Cap is the scenario's concurrency capacity hint: the most workers the
	// closed loop should ever grant it under the shared budget (0 =
	// uncapped). Max-min allocation redistributes budget a capped scenario
	// cannot use.
	Cap() int
	// Do issues one request and reports its HTTP status. err is non-nil only
	// for transport-level failures (no usable response).
	Do(ctx context.Context, w *Worker) (status int, err error)
}

var (
	registryMu sync.RWMutex
	registry   = map[string]func() Workload{}
)

// Register adds a workload scenario factory under its name. Built-ins
// register at init; external packages may add their own before building a
// Runner.
func Register(name string, factory func() Workload) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("load: workload %q registered twice", name))
	}
	registry[name] = factory
}

// NewWorkload instantiates a registered scenario by name.
func NewWorkload(name string) (Workload, error) {
	registryMu.RLock()
	factory, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("load: unknown workload %q (have %v)", name, WorkloadNames())
	}
	return factory(), nil
}

// WorkloadNames lists the registered scenario names, sorted.
func WorkloadNames() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	Register("sample", func() Workload { return sampleWorkload{} })
	Register("sample-csv", func() Workload { return sampleCSVWorkload{} })
	Register("batch", func() Workload { return batchWorkload{} })
	Register("planfetch", func() Workload { return planfetchWorkload{} })
}

// statusOf folds a client call's outcome into (HTTP status, transport
// error): a typed *api.Error carries the status of a delivered error
// response, anything else is a transport failure.
func statusOf(err error) (int, error) {
	if err == nil {
		return http.StatusOK, nil
	}
	var apiErr *api.Error
	if errors.As(err, &apiErr) && apiErr.Status != 0 {
		return apiErr.Status, nil
	}
	return 0, err
}

// sampleWorkload POSTs the JSON envelope request shape: {workload, scale,
// options}, drawing (workload, scale) from the catalog by popularity.
type sampleWorkload struct{}

func (sampleWorkload) Name() string { return "sample" }
func (sampleWorkload) Cap() int     { return 0 }

func (sampleWorkload) Do(ctx context.Context, w *Worker) (int, error) {
	i := w.Pick()
	p := w.Env.Catalog[i]
	env, err := w.client().Sample(ctx, &api.SampleRequest{
		Workload: p.Workload,
		Scale:    p.Scale,
		Options:  w.methodOptions(),
	})
	if err != nil {
		return statusOf(err)
	}
	w.Env.storePlanID(i, env.PlanID)
	return http.StatusOK, nil
}

// sampleCSVWorkload POSTs the raw text/csv request shape with options as
// query parameters — the curl-style ingest path, exercising CSV parsing on
// the server.
type sampleCSVWorkload struct{}

func (sampleCSVWorkload) Name() string { return "sample-csv" }
func (sampleCSVWorkload) Cap() int     { return 0 }

func (sampleCSVWorkload) Do(ctx context.Context, w *Worker) (int, error) {
	i := w.Pick()
	p := w.Env.Catalog[i]
	if p.CSV == "" {
		return 0, fmt.Errorf("load: catalog entry %d (%s@%g) has no rendered CSV", i, p.Workload, p.Scale)
	}
	env, err := w.client().SampleCSV(ctx, p.CSV, w.Env.options())
	if err != nil {
		return statusOf(err)
	}
	w.Env.storePlanID(i, env.PlanID)
	return http.StatusOK, nil
}

// batchWorkload POSTs /v1/batch with a mixed item count (1–4 catalog draws
// per request), the amortized-ingest path. Batches are heavier per request
// than single samples, so the scenario declares a concurrency cap and lets
// max-min allocation hand its unused share to the lighter scenarios.
type batchWorkload struct{}

func (batchWorkload) Name() string { return "batch" }
func (batchWorkload) Cap() int     { return 16 }

func (batchWorkload) Do(ctx context.Context, w *Worker) (int, error) {
	n := 1 + w.RNG.Intn(4)
	items := make([]api.SampleRequest, n)
	picks := make([]int, n)
	for j := range items {
		i := w.Pick()
		picks[j] = i
		p := w.Env.Catalog[i]
		items[j] = api.SampleRequest{Workload: p.Workload, Scale: p.Scale, Options: w.methodOptions()}
	}
	resp, err := w.client().Batch(ctx, &api.BatchRequest{Items: items})
	if err != nil {
		return statusOf(err)
	}
	for j, item := range resp.Items {
		if j < len(picks) && item.Status == http.StatusOK {
			w.Env.storePlanID(picks[j], item.PlanID)
		}
	}
	return http.StatusOK, nil
}

// planfetchWorkload re-reads plans by content hash: GET /v1/plans/{id} for a
// plan some scenario (or an earlier planfetch) already computed. On the
// owning replica that is a pure cache read; on any other replica it
// exercises peer fetch-and-fill. A 404 means the plan was evicted
// everywhere, so the scenario recomputes it with a sample POST — under an
// LRU-thrashing uniform run that happens constantly, under a zipfian run
// the hot set stays resident.
type planfetchWorkload struct{}

func (planfetchWorkload) Name() string { return "planfetch" }
func (planfetchWorkload) Cap() int     { return 0 }

func (planfetchWorkload) Do(ctx context.Context, w *Worker) (int, error) {
	i := w.Pick()
	id := w.Env.planID(i)
	if id == "" {
		// No hash learned yet for this entry — compute it once so later
		// draws can re-read it.
		return sampleWorkload{}.Do(ctx, w)
	}
	env, err := w.client().GetPlan(ctx, id)
	if err != nil {
		status, terr := statusOf(err)
		if terr == nil && status == http.StatusNotFound {
			// Evicted on every replica: refill by recomputing.
			p := w.Env.Catalog[i]
			senv, serr := w.client().Sample(ctx, &api.SampleRequest{
				Workload: p.Workload, Scale: p.Scale, Options: w.methodOptions(),
			})
			if serr != nil {
				return statusOf(serr)
			}
			w.Env.storePlanID(i, senv.PlanID)
			return http.StatusOK, nil
		}
		return status, terr
	}
	w.Env.storePlanID(i, env.PlanID)
	return http.StatusOK, nil
}
