package mat

import (
	"fmt"
	"math"
	"sort"
)

// Eigen holds the eigendecomposition of a symmetric matrix: Values[i] is the
// i-th eigenvalue (sorted descending) and the i-th column of Vectors is the
// corresponding unit eigenvector.
type Eigen struct {
	Values  []float64
	Vectors *Matrix
}

// maxJacobiSweeps bounds the cyclic Jacobi iteration; 12x12 covariance
// matrices converge in a handful of sweeps, so hitting the bound indicates a
// malformed (e.g. NaN-contaminated) input.
const maxJacobiSweeps = 100

// SymmetricEigen computes the eigendecomposition of a symmetric matrix using
// the cyclic Jacobi method. The input is not modified. It returns an error if
// the matrix is not square/symmetric or the iteration fails to converge.
func SymmetricEigen(m *Matrix) (*Eigen, error) {
	if !m.IsSymmetric(1e-9) {
		return nil, fmt.Errorf("mat: SymmetricEigen requires a symmetric matrix")
	}
	n := m.rows
	a := m.Clone()
	v := Identity(n)

	offDiag := func() float64 {
		var s float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				s += a.At(i, j) * a.At(i, j)
			}
		}
		return s
	}

	for sweep := 0; sweep < maxJacobiSweeps; sweep++ {
		if offDiag() < 1e-22 {
			break
		}
		if sweep == maxJacobiSweeps-1 {
			return nil, fmt.Errorf("mat: Jacobi eigendecomposition did not converge in %d sweeps", maxJacobiSweeps)
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := a.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := a.At(p, p), a.At(q, q)
				// Rotation angle that zeroes a[p][q].
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c

				for k := 0; k < n; k++ {
					akp, akq := a.At(k, p), a.At(k, q)
					a.Set(k, p, c*akp-s*akq)
					a.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk, aqk := a.At(p, k), a.At(q, k)
					a.Set(p, k, c*apk-s*aqk)
					a.Set(q, k, s*apk+c*aqk)
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}

	// Extract, then sort eigenpairs by descending eigenvalue.
	type pair struct {
		val float64
		vec []float64
	}
	pairs := make([]pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = pair{val: a.At(i, i), vec: v.Col(i)}
	}
	sort.SliceStable(pairs, func(i, j int) bool { return pairs[i].val > pairs[j].val })

	e := &Eigen{Values: make([]float64, n), Vectors: New(n, n)}
	for i, p := range pairs {
		e.Values[i] = p.val
		for k := 0; k < n; k++ {
			e.Vectors.Set(k, i, p.vec[k])
		}
	}
	return e, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}
