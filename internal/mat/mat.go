// Package mat provides the small dense-matrix substrate needed by the PKS
// baseline's principal component analysis: a row-major matrix type,
// column standardization, covariance, and a Jacobi eigendecomposition for
// symmetric matrices.
//
// The package is intentionally minimal — the PKS feature space is 12-wide,
// so numerical sophistication beyond a well-tested Jacobi sweep is
// unnecessary.
package mat

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	rows, cols int
	data       []float64
}

// New returns a zero rows×cols matrix. It panics if either dimension is
// non-positive, since a zero-size matrix is always a programming error here.
func New(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices. All rows must be the same
// non-zero length.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, fmt.Errorf("mat: FromRows with empty input")
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("mat: row %d has %d columns, want %d", i, len(r), cols)
		}
		copy(m.data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.rows)
	for i := range out {
		out[i] = m.At(i, j)
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Mul returns m × b. It returns an error when the inner dimensions differ.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	if m.cols != b.rows {
		return nil, fmt.Errorf("mat: cannot multiply %dx%d by %dx%d", m.rows, m.cols, b.rows, b.cols)
	}
	out := New(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < b.cols; j++ {
				out.data[i*out.cols+j] += a * b.At(k, j)
			}
		}
	}
	return out, nil
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	out := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// ColumnStats holds the per-column mean and standard deviation produced by
// Standardize, needed to project new samples into the same space.
type ColumnStats struct {
	Mean   []float64
	StdDev []float64
}

// Standardize returns a copy of m with each column shifted to zero mean and
// scaled to unit standard deviation, together with the applied statistics.
// Constant columns (zero standard deviation) are centered but left unscaled;
// their recorded StdDev is 1 so that inverse transforms stay well defined.
func (m *Matrix) Standardize() (*Matrix, *ColumnStats) {
	out := m.Clone()
	cs := &ColumnStats{Mean: make([]float64, m.cols), StdDev: make([]float64, m.cols)}
	for j := 0; j < m.cols; j++ {
		var mean float64
		for i := 0; i < m.rows; i++ {
			mean += m.At(i, j)
		}
		mean /= float64(m.rows)
		var varAcc float64
		for i := 0; i < m.rows; i++ {
			d := m.At(i, j) - mean
			varAcc += d * d
		}
		sd := math.Sqrt(varAcc / float64(m.rows))
		if sd == 0 {
			sd = 1
		}
		cs.Mean[j], cs.StdDev[j] = mean, sd
		for i := 0; i < m.rows; i++ {
			out.Set(i, j, (m.At(i, j)-mean)/sd)
		}
	}
	return out, cs
}

// Covariance returns the cols×cols sample covariance matrix of m's columns,
// dividing by n (population form, matching Standardize). It returns an error
// for matrices with fewer than two rows.
func (m *Matrix) Covariance() (*Matrix, error) {
	if m.rows < 2 {
		return nil, fmt.Errorf("mat: covariance needs at least 2 rows, have %d", m.rows)
	}
	means := make([]float64, m.cols)
	for j := 0; j < m.cols; j++ {
		for i := 0; i < m.rows; i++ {
			means[j] += m.At(i, j)
		}
		means[j] /= float64(m.rows)
	}
	cov := New(m.cols, m.cols)
	for a := 0; a < m.cols; a++ {
		for b := a; b < m.cols; b++ {
			var acc float64
			for i := 0; i < m.rows; i++ {
				acc += (m.At(i, a) - means[a]) * (m.At(i, b) - means[b])
			}
			acc /= float64(m.rows)
			cov.Set(a, b, acc)
			cov.Set(b, a, acc)
		}
	}
	return cov, nil
}

// IsSymmetric reports whether m is square and symmetric within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}
