package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestNewAndAccessors(t *testing.T) {
	m := New(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("dims = %dx%d", m.Rows(), m.Cols())
	}
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatal("Set/At round trip failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("New(0, 1) should panic")
		}
	}()
	New(0, 1)
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatal("FromRows wrong layout")
	}
	if _, err := FromRows(nil); err == nil {
		t.Fatal("want error on empty input")
	}
	if _, err := FromRows([][]float64{{1}, {1, 2}}); err == nil {
		t.Fatal("want error on ragged input")
	}
}

func TestRowColClone(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	r := m.Row(1)
	if r[0] != 3 || r[1] != 4 {
		t.Fatalf("Row = %v", r)
	}
	c := m.Col(0)
	if c[0] != 1 || c[1] != 3 {
		t.Fatalf("Col = %v", c)
	}
	// Returned slices are copies.
	r[0] = 99
	c[0] = 99
	if m.At(1, 0) != 3 || m.At(0, 0) != 1 {
		t.Fatal("Row/Col leaked internal storage")
	}
	cl := m.Clone()
	cl.Set(0, 0, -1)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestMul(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	p, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if p.At(i, j) != want[i][j] {
				t.Fatalf("Mul[%d][%d] = %g, want %g", i, j, p.At(i, j), want[i][j])
			}
		}
	}
	c := New(3, 3)
	if _, err := a.Mul(c); err == nil {
		t.Fatal("want error on dimension mismatch")
	}
}

func TestTranspose(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.Transpose()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("transpose dims %dx%d", tr.Rows(), tr.Cols())
	}
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatal("transpose mismatch")
			}
		}
	}
}

func TestStandardize(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 10}, {3, 10}, {5, 10}})
	std, cs := m.Standardize()
	// Column 0: mean 3, population sd sqrt(8/3).
	if !almostEqual(cs.Mean[0], 3, 1e-12) {
		t.Fatalf("mean = %g", cs.Mean[0])
	}
	var mean0, var0 float64
	for i := 0; i < 3; i++ {
		mean0 += std.At(i, 0)
	}
	mean0 /= 3
	for i := 0; i < 3; i++ {
		d := std.At(i, 0) - mean0
		var0 += d * d
	}
	var0 /= 3
	if !almostEqual(mean0, 0, 1e-12) || !almostEqual(var0, 1, 1e-12) {
		t.Fatalf("standardized column: mean=%g var=%g", mean0, var0)
	}
	// Constant column: centered, sd recorded as 1.
	if cs.StdDev[1] != 1 {
		t.Fatalf("constant column sd = %g, want 1", cs.StdDev[1])
	}
	for i := 0; i < 3; i++ {
		if std.At(i, 1) != 0 {
			t.Fatal("constant column should standardize to zero")
		}
	}
	// Original untouched.
	if m.At(0, 0) != 1 {
		t.Fatal("Standardize mutated input")
	}
}

func TestCovariance(t *testing.T) {
	// Perfectly correlated columns.
	m, _ := FromRows([][]float64{{1, 2}, {2, 4}, {3, 6}})
	cov, err := m.Covariance()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(cov.At(0, 0), 2.0/3, 1e-12) {
		t.Fatalf("var(x) = %g", cov.At(0, 0))
	}
	if !almostEqual(cov.At(0, 1), 4.0/3, 1e-12) {
		t.Fatalf("cov(x,y) = %g", cov.At(0, 1))
	}
	if cov.At(0, 1) != cov.At(1, 0) {
		t.Fatal("covariance not symmetric")
	}
	one := New(1, 2)
	if _, err := one.Covariance(); err == nil {
		t.Fatal("want error for single-row covariance")
	}
}

func TestIsSymmetric(t *testing.T) {
	s, _ := FromRows([][]float64{{1, 2}, {2, 1}})
	if !s.IsSymmetric(0) {
		t.Fatal("symmetric matrix not detected")
	}
	a, _ := FromRows([][]float64{{1, 2}, {3, 1}})
	if a.IsSymmetric(0.5) {
		t.Fatal("asymmetric matrix passed")
	}
	r := New(2, 3)
	if r.IsSymmetric(1) {
		t.Fatal("non-square matrix cannot be symmetric")
	}
}

func TestSymmetricEigenKnown(t *testing.T) {
	// [[2, 1], [1, 2]] has eigenvalues 3 and 1.
	m, _ := FromRows([][]float64{{2, 1}, {1, 2}})
	e, err := SymmetricEigen(m)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(e.Values[0], 3, 1e-9) || !almostEqual(e.Values[1], 1, 1e-9) {
		t.Fatalf("eigenvalues = %v", e.Values)
	}
	// Eigenvector for λ=3 is (1,1)/√2 up to sign.
	v0 := e.Vectors.Col(0)
	if !almostEqual(math.Abs(v0[0]), 1/math.Sqrt2, 1e-9) || !almostEqual(v0[0], v0[1], 1e-9) {
		t.Fatalf("first eigenvector = %v", v0)
	}
}

func TestSymmetricEigenDiagonal(t *testing.T) {
	m, _ := FromRows([][]float64{{5, 0, 0}, {0, -2, 0}, {0, 0, 3}})
	e, err := SymmetricEigen(m)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 3, -2}
	for i, w := range want {
		if !almostEqual(e.Values[i], w, 1e-9) {
			t.Fatalf("eigenvalues = %v, want %v", e.Values, want)
		}
	}
}

func TestSymmetricEigenRejectsAsymmetric(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	if _, err := SymmetricEigen(m); err == nil {
		t.Fatal("want error for asymmetric input")
	}
}

// randomSymmetric builds a random symmetric PSD-ish matrix AᵀA.
func randomSymmetric(rng *rand.Rand, n int) *Matrix {
	a := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
	}
	at := a.Transpose()
	s, _ := at.Mul(a)
	return s
}

func TestSymmetricEigenReconstruction(t *testing.T) {
	// A = V Λ Vᵀ must reconstruct the input, and trace must equal Σλ.
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(8)
		s := randomSymmetric(rng, n)
		e, err := SymmetricEigen(s)
		if err != nil {
			t.Fatal(err)
		}
		var trace, sum float64
		for i := 0; i < n; i++ {
			trace += s.At(i, i)
			sum += e.Values[i]
		}
		if !almostEqual(trace, sum, 1e-6) {
			t.Fatalf("trace %g != eigenvalue sum %g", trace, sum)
		}
		// Reconstruct.
		lam := New(n, n)
		for i := 0; i < n; i++ {
			lam.Set(i, i, e.Values[i])
		}
		vl, _ := e.Vectors.Mul(lam)
		rec, _ := vl.Mul(e.Vectors.Transpose())
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if !almostEqual(rec.At(i, j), s.At(i, j), 1e-6) {
					t.Fatalf("reconstruction mismatch at (%d,%d): %g vs %g", i, j, rec.At(i, j), s.At(i, j))
				}
			}
		}
	}
}

func TestSymmetricEigenOrthonormalVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	s := randomSymmetric(rng, 6)
	e, err := SymmetricEigen(s)
	if err != nil {
		t.Fatal(err)
	}
	vt := e.Vectors.Transpose()
	prod, _ := vt.Mul(e.Vectors)
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if !almostEqual(prod.At(i, j), want, 1e-8) {
				t.Fatalf("VᵀV[%d][%d] = %g, want %g", i, j, prod.At(i, j), want)
			}
		}
	}
}

func TestEigenValuesSortedDescendingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		e, err := SymmetricEigen(randomSymmetric(rng, n))
		if err != nil {
			return false
		}
		for i := 1; i < len(e.Values); i++ {
			if e.Values[i] > e.Values[i-1]+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestIdentity(t *testing.T) {
	m := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if m.At(i, j) != want {
				t.Fatal("not identity")
			}
		}
	}
}
