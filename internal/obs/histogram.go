package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Log-bucketing parameters. Buckets are geometric: bucket i covers
// [histMin·growth^i, histMin·growth^(i+1)), spanning ~1 ns to ~17 minutes of
// seconds-denominated latencies (and, being unitless, any positive metric in
// that dynamic range). With 8% growth the relative quantile error is bounded
// by the bucket width: ≤ 4% to the geometric bucket midpoint, which the
// quantile test pins down against exact percentiles.
const (
	histMin     = 1e-9
	histGrowth  = 1.08
	histBuckets = 720 // ceil(ln(maxValue/histMin)/ln(histGrowth)); covers ~1e12× range
)

// invLogGrowth is 1/ln(growth), precomputed for bucket indexing.
var invLogGrowth = 1 / math.Log(histGrowth)

// Histogram is a concurrency-safe log-bucketed histogram for latencies and
// other non-negative values. Observations are lock-free atomic increments;
// quantiles are estimated from the bucket counts with relative error bounded
// by the bucket growth factor and clamped to the exact observed min/max.
// The zero value cannot record (create via NewHistogram or
// Registry.Histogram), but every read accessor — Quantile, Count, Sum, Min,
// Max — is safe on a nil receiver and on the zero value, returning the same
// documented empty-histogram results a fresh NewHistogram would.
type Histogram struct {
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
	minBits atomic.Uint64 // float64 bits; +Inf until first observation
	maxBits atomic.Uint64 // float64 bits; -Inf until first observation
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{counts: make([]atomic.Uint64, histBuckets)}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// bucketIndex maps a value to its bucket, clamping the extremes.
func bucketIndex(v float64) int {
	if !(v > histMin) { // also catches NaN and negatives
		return 0
	}
	i := int(math.Log(v/histMin) * invLogGrowth)
	if i < 0 {
		return 0
	}
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// bucketBounds returns bucket i's [lo, hi) value range.
func bucketBounds(i int) (lo, hi float64) {
	lo = histMin * math.Pow(histGrowth, float64(i))
	return lo, lo * histGrowth
}

// Observe records one value. Negative and NaN values count into the lowest
// bucket (they are clock noise in practice, not valid latencies). Observing
// into a nil histogram (a lookup on a nil Registry) is a no-op.
func (h *Histogram) Observe(v float64) {
	if h == nil || h.counts == nil {
		return
	}
	h.counts[bucketIndex(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	for {
		old := h.minBits.Load()
		if v >= math.Float64frombits(old) || h.minBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if v <= math.Float64frombits(old) || h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// ObserveDuration records a wall-clock duration, converted to seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Min returns the smallest observed value (0 before any observation).
func (h *Histogram) Min() float64 {
	if h == nil {
		return 0
	}
	v := math.Float64frombits(h.minBits.Load())
	if math.IsInf(v, 1) {
		return 0
	}
	return v
}

// Max returns the largest observed value (0 before any observation).
func (h *Histogram) Max() float64 {
	if h == nil {
		return 0
	}
	v := math.Float64frombits(h.maxBits.Load())
	if math.IsInf(v, -1) {
		return 0
	}
	return v
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the observed values: the
// geometric midpoint of the bucket holding the target rank, clamped to the
// exact observed [min, max].
//
// An empty histogram — no observations yet, the zero value, or a nil
// receiver — returns exactly 0 for every q. That zero is a documented
// contract (dashboards render "no data yet" as 0ms), not a bucket-math
// artifact: the rank walk below never runs without observations, so the
// empty answer can never drift with the bucket layout.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	// Snapshot the counts; concurrent observers may race individual buckets
	// against the total, so walk with the snapshot's own total.
	snap := make([]uint64, len(h.counts))
	var total uint64
	for i := range h.counts {
		snap[i] = h.counts[i].Load()
		total += snap[i]
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, c := range snap {
		seen += c
		if seen >= rank {
			lo, hi := bucketBounds(i)
			v := math.Sqrt(lo * hi)
			if min := h.Min(); v < min {
				v = min
			}
			if max := h.Max(); v > max {
				v = max
			}
			return v
		}
	}
	return h.Max()
}

// Cumulative maps the histogram onto a fixed explicit-bucket ladder: cum[i]
// is the number of observations ≤ bounds[i] (the Prometheus `le` view), and
// total is the overall observation count (the +Inf bucket). bounds must be
// sorted ascending. The mapping is conservative: a log bucket is attributed
// to the first bound that is ≥ its upper edge, so every reported cum[i]
// counts only observations genuinely ≤ bounds[i]; observations past the last
// bound appear in total alone. Safe on a nil receiver (all-zero ladder).
func (h *Histogram) Cumulative(bounds []float64) (cum []uint64, total uint64) {
	cum = make([]uint64, len(bounds))
	if h == nil || h.counts == nil {
		return cum, 0
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		total += c
		_, hi := bucketBounds(i)
		j := sort.SearchFloat64s(bounds, hi)
		if j < len(bounds) {
			cum[j] += c
		}
	}
	for i := 1; i < len(cum); i++ {
		cum[i] += cum[i-1]
	}
	return cum, total
}

// buckets returns the non-empty (upperBound, cumulativeCount) pairs, the
// Prometheus-histogram view of the data.
func (h *Histogram) buckets() []BucketReport {
	if h == nil {
		return nil
	}
	var out []BucketReport
	var cum uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		_, hi := bucketBounds(i)
		out = append(out, BucketReport{UpperBound: hi, CumulativeCount: cum})
	}
	return out
}
