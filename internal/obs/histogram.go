package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Log-bucketing parameters. Buckets are geometric: bucket i covers
// [histMin·growth^i, histMin·growth^(i+1)), spanning ~1 ns to ~17 minutes of
// seconds-denominated latencies (and, being unitless, any positive metric in
// that dynamic range). With 8% growth the relative quantile error is bounded
// by the bucket width: ≤ 4% to the geometric bucket midpoint, which the
// quantile test pins down against exact percentiles.
const (
	histMin     = 1e-9
	histGrowth  = 1.08
	histBuckets = 720 // ceil(ln(maxValue/histMin)/ln(histGrowth)); covers ~1e12× range
)

// invLogGrowth is 1/ln(growth), precomputed for bucket indexing.
var invLogGrowth = 1 / math.Log(histGrowth)

// Histogram is a concurrency-safe log-bucketed histogram for latencies and
// other non-negative values. Observations are lock-free atomic increments;
// quantiles are estimated from the bucket counts with relative error bounded
// by the bucket growth factor and clamped to the exact observed min/max.
// The zero value is NOT ready; create via NewHistogram or Registry.Histogram.
type Histogram struct {
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
	minBits atomic.Uint64 // float64 bits; +Inf until first observation
	maxBits atomic.Uint64 // float64 bits; -Inf until first observation
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{counts: make([]atomic.Uint64, histBuckets)}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// bucketIndex maps a value to its bucket, clamping the extremes.
func bucketIndex(v float64) int {
	if !(v > histMin) { // also catches NaN and negatives
		return 0
	}
	i := int(math.Log(v/histMin) * invLogGrowth)
	if i < 0 {
		return 0
	}
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// bucketBounds returns bucket i's [lo, hi) value range.
func bucketBounds(i int) (lo, hi float64) {
	lo = histMin * math.Pow(histGrowth, float64(i))
	return lo, lo * histGrowth
}

// Observe records one value. Negative and NaN values count into the lowest
// bucket (they are clock noise in practice, not valid latencies).
func (h *Histogram) Observe(v float64) {
	h.counts[bucketIndex(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	for {
		old := h.minBits.Load()
		if v >= math.Float64frombits(old) || h.minBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if v <= math.Float64frombits(old) || h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// ObserveDuration records a wall-clock duration, converted to seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Min returns the smallest observed value (0 before any observation).
func (h *Histogram) Min() float64 {
	v := math.Float64frombits(h.minBits.Load())
	if math.IsInf(v, 1) {
		return 0
	}
	return v
}

// Max returns the largest observed value (0 before any observation).
func (h *Histogram) Max() float64 {
	v := math.Float64frombits(h.maxBits.Load())
	if math.IsInf(v, -1) {
		return 0
	}
	return v
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the observed values: the
// geometric midpoint of the bucket holding the target rank, clamped to the
// exact observed [min, max]. Returns 0 before any observation.
func (h *Histogram) Quantile(q float64) float64 {
	// Snapshot the counts; concurrent observers may race individual buckets
	// against the total, so walk with the snapshot's own total.
	snap := make([]uint64, histBuckets)
	var total uint64
	for i := range h.counts {
		snap[i] = h.counts[i].Load()
		total += snap[i]
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, c := range snap {
		seen += c
		if seen >= rank {
			lo, hi := bucketBounds(i)
			v := math.Sqrt(lo * hi)
			if min := h.Min(); v < min {
				v = min
			}
			if max := h.Max(); v > max {
				v = max
			}
			return v
		}
	}
	return h.Max()
}

// buckets returns the non-empty (upperBound, cumulativeCount) pairs, the
// Prometheus-histogram view of the data.
func (h *Histogram) buckets() []BucketReport {
	var out []BucketReport
	var cum uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		_, hi := bucketBounds(i)
		out = append(out, BucketReport{UpperBound: hi, CumulativeCount: cum})
	}
	return out
}
