package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// exactQuantile is the reference: nearest-rank quantile on sorted data.
func exactQuantile(sorted []float64, q float64) float64 {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// TestHistogramQuantileAccuracy pins the log-bucketed quantile estimates
// against exact percentiles on known data: the bucket growth factor bounds
// the relative error, so every estimate must land within 10% of the exact
// percentile across three very different distributions.
func TestHistogramQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	distributions := map[string][]float64{
		"uniform":   make([]float64, 10000),
		"lognormal": make([]float64, 10000),
		"bimodal":   make([]float64, 10000),
	}
	for i := range distributions["uniform"] {
		distributions["uniform"][i] = 1e-3 + 0.5*rng.Float64()
		distributions["lognormal"][i] = math.Exp(rng.NormFloat64() - 6) // ~2.5ms median
		if i%2 == 0 {
			distributions["bimodal"][i] = 1e-4 * (1 + 0.1*rng.Float64())
		} else {
			distributions["bimodal"][i] = 2e-1 * (1 + 0.1*rng.Float64())
		}
	}
	for name, data := range distributions {
		t.Run(name, func(t *testing.T) {
			h := NewHistogram()
			for _, v := range data {
				h.Observe(v)
			}
			sorted := append([]float64(nil), data...)
			sort.Float64s(sorted)
			for _, q := range []float64{0.01, 0.25, 0.50, 0.90, 0.99, 0.999} {
				exact := exactQuantile(sorted, q)
				got := h.Quantile(q)
				if rel := math.Abs(got-exact) / exact; rel > 0.10 {
					t.Errorf("q=%g: got %g, exact %g (rel err %.1f%%)", q, got, exact, 100*rel)
				}
			}
			if h.Count() != uint64(len(data)) {
				t.Fatalf("count = %d", h.Count())
			}
			var sum float64
			for _, v := range data {
				sum += v
			}
			if math.Abs(h.Sum()-sum)/sum > 1e-9 {
				t.Fatalf("sum = %g, want %g", h.Sum(), sum)
			}
			if h.Min() != sorted[0] || h.Max() != sorted[len(sorted)-1] {
				t.Fatalf("min/max = %g/%g, want %g/%g", h.Min(), h.Max(), sorted[0], sorted[len(sorted)-1])
			}
		})
	}
}

// TestHistogramEdgeCases covers the empty histogram, a single observation,
// and out-of-range values.
func TestHistogramEdgeCases(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must read all zeros")
	}

	h.Observe(0.125)
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); got != 0.125 {
			t.Fatalf("single-value quantile(%g) = %g (min/max clamp should pin it)", q, got)
		}
	}

	// Values outside the bucket range must not panic and must clamp sanely.
	h2 := NewHistogram()
	h2.Observe(0)
	h2.Observe(-1)
	h2.Observe(1e300)
	h2.Observe(math.NaN())
	if h2.Count() != 4 {
		t.Fatalf("count = %d", h2.Count())
	}
	if got := h2.Quantile(0.99); got > 1e300 {
		t.Fatalf("quantile beyond observed max: %g", got)
	}
}

// TestHistogramConcurrentObserve hammers one histogram from many goroutines;
// under -race this validates the lock-free counters, and the totals must be
// exact regardless of interleaving.
func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram()
	const goroutines, per = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < per; i++ {
				h.Observe(1e-4 * (1 + rng.Float64()))
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != goroutines*per {
		t.Fatalf("count = %d, want %d", h.Count(), goroutines*per)
	}
	if h.Min() < 1e-4 || h.Max() > 2e-4 {
		t.Fatalf("min/max outside observed range: %g/%g", h.Min(), h.Max())
	}
	if q := h.Quantile(0.5); q < 1e-4 || q > 2e-4 {
		t.Fatalf("median outside observed range: %g", q)
	}
}
