package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// exactQuantile is the reference: nearest-rank quantile on sorted data.
func exactQuantile(sorted []float64, q float64) float64 {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// TestHistogramQuantileAccuracy pins the log-bucketed quantile estimates
// against exact percentiles on known data: the bucket growth factor bounds
// the relative error, so every estimate must land within 10% of the exact
// percentile across three very different distributions.
func TestHistogramQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	distributions := map[string][]float64{
		"uniform":   make([]float64, 10000),
		"lognormal": make([]float64, 10000),
		"bimodal":   make([]float64, 10000),
	}
	for i := range distributions["uniform"] {
		distributions["uniform"][i] = 1e-3 + 0.5*rng.Float64()
		distributions["lognormal"][i] = math.Exp(rng.NormFloat64() - 6) // ~2.5ms median
		if i%2 == 0 {
			distributions["bimodal"][i] = 1e-4 * (1 + 0.1*rng.Float64())
		} else {
			distributions["bimodal"][i] = 2e-1 * (1 + 0.1*rng.Float64())
		}
	}
	for name, data := range distributions {
		t.Run(name, func(t *testing.T) {
			h := NewHistogram()
			for _, v := range data {
				h.Observe(v)
			}
			sorted := append([]float64(nil), data...)
			sort.Float64s(sorted)
			for _, q := range []float64{0.01, 0.25, 0.50, 0.90, 0.99, 0.999} {
				exact := exactQuantile(sorted, q)
				got := h.Quantile(q)
				if rel := math.Abs(got-exact) / exact; rel > 0.10 {
					t.Errorf("q=%g: got %g, exact %g (rel err %.1f%%)", q, got, exact, 100*rel)
				}
			}
			if h.Count() != uint64(len(data)) {
				t.Fatalf("count = %d", h.Count())
			}
			var sum float64
			for _, v := range data {
				sum += v
			}
			if math.Abs(h.Sum()-sum)/sum > 1e-9 {
				t.Fatalf("sum = %g, want %g", h.Sum(), sum)
			}
			if h.Min() != sorted[0] || h.Max() != sorted[len(sorted)-1] {
				t.Fatalf("min/max = %g/%g, want %g/%g", h.Min(), h.Max(), sorted[0], sorted[len(sorted)-1])
			}
		})
	}
}

// TestHistogramEdgeCases covers the empty histogram, a single observation,
// and out-of-range values.
func TestHistogramEdgeCases(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must read all zeros")
	}

	h.Observe(0.125)
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); got != 0.125 {
			t.Fatalf("single-value quantile(%g) = %g (min/max clamp should pin it)", q, got)
		}
	}

	// Values outside the bucket range must not panic and must clamp sanely.
	h2 := NewHistogram()
	h2.Observe(0)
	h2.Observe(-1)
	h2.Observe(1e300)
	h2.Observe(math.NaN())
	if h2.Count() != 4 {
		t.Fatalf("count = %d", h2.Count())
	}
	if got := h2.Quantile(0.99); got > 1e300 {
		t.Fatalf("quantile beyond observed max: %g", got)
	}
}

// TestHistogramConcurrentObserve hammers one histogram from many goroutines;
// under -race this validates the lock-free counters, and the totals must be
// exact regardless of interleaving.
func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram()
	const goroutines, per = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < per; i++ {
				h.Observe(1e-4 * (1 + rng.Float64()))
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != goroutines*per {
		t.Fatalf("count = %d, want %d", h.Count(), goroutines*per)
	}
	if h.Min() < 1e-4 || h.Max() > 2e-4 {
		t.Fatalf("min/max outside observed range: %g/%g", h.Min(), h.Max())
	}
	if q := h.Quantile(0.5); q < 1e-4 || q > 2e-4 {
		t.Fatalf("median outside observed range: %g", q)
	}
}

// TestHistogramEmptyQuantileDocumentedZero pins the empty-histogram contract:
// every read accessor returns exactly 0 on a fresh histogram, the zero value,
// and a nil receiver — never a bucket-midpoint artifact.
func TestHistogramEmptyQuantileDocumentedZero(t *testing.T) {
	for name, h := range map[string]*Histogram{
		"fresh": NewHistogram(),
		"zero":  {},
		"nil":   nil,
	} {
		for _, q := range []float64{0, 0.5, 0.99, 1} {
			if got := h.Quantile(q); got != 0 {
				t.Errorf("%s histogram Quantile(%g) = %g, want exactly 0", name, q, got)
			}
		}
		if h.Count() != 0 || h.Sum() != 0 || h.Min() != 0 || h.Max() != 0 {
			t.Errorf("%s histogram non-zero accessors: count=%d sum=%g min=%g max=%g",
				name, h.Count(), h.Sum(), h.Min(), h.Max())
		}
		if cum, total := h.Cumulative([]float64{0.1, 1}); total != 0 || cum[0] != 0 || cum[1] != 0 {
			t.Errorf("%s histogram Cumulative not all-zero: %v total=%d", name, cum, total)
		}
	}
	// Observing into the zero value and a nil receiver must be a no-op, not a
	// panic (nil Registry lookups hand these out).
	var zero Histogram
	zero.Observe(1)
	var nilH *Histogram
	nilH.Observe(1)
	nilH.ObserveDuration(time.Second)
	if zero.Count() != 0 || nilH.Count() != 0 {
		t.Fatalf("zero/nil histogram recorded observations")
	}
}

// TestHistogramCumulative checks the explicit-bucket downsampling: counts land
// at the first bound ≥ their log bucket's upper edge, the ladder is cumulative,
// and values past the last bound show up only in the total (+Inf bucket).
func TestHistogramCumulative(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 10; i++ {
		h.Observe(0.001) // well under the first bound
	}
	for i := 0; i < 5; i++ {
		h.Observe(0.5) // between bounds 0.1 and 1
	}
	for i := 0; i < 3; i++ {
		h.Observe(100) // past the last bound → +Inf only
	}
	bounds := []float64{0.1, 1, 10}
	cum, total := h.Cumulative(bounds)
	if total != 18 {
		t.Fatalf("total = %d, want 18", total)
	}
	if cum[0] != 10 {
		t.Fatalf("cum[0.1] = %d, want 10", cum[0])
	}
	if cum[1] != 15 {
		t.Fatalf("cum[1] = %d, want 15", cum[1])
	}
	if cum[2] != 15 {
		t.Fatalf("cum[10] = %d, want 15 (100s only in +Inf)", cum[2])
	}
	// Monotone non-decreasing ladder, and cum ≤ total throughout.
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Fatalf("ladder not monotone: %v", cum)
		}
	}
	if cum[len(cum)-1] > total {
		t.Fatalf("cum exceeds total: %v > %d", cum, total)
	}
}

// TestRegistryHistograms checks the snapshot accessor returns live histograms
// under a copied map, and is nil-safe.
func TestRegistryHistograms(t *testing.T) {
	var nilReg *Registry
	if m := nilReg.Histograms(); m != nil {
		t.Fatalf("nil registry Histograms() = %v, want nil", m)
	}
	r := NewRegistry()
	r.Histogram("a").Observe(1)
	m := r.Histograms()
	if len(m) != 1 || m["a"] == nil {
		t.Fatalf("Histograms() = %v", m)
	}
	// Live histogram: later observations are visible through the snapshot.
	r.Histogram("a").Observe(2)
	if m["a"].Count() != 2 {
		t.Fatalf("snapshot histogram not live: count=%d", m["a"].Count())
	}
	// Copied map: creating a new histogram does not mutate the snapshot.
	r.Histogram("b")
	if len(m) != 1 {
		t.Fatalf("snapshot map mutated: %v", m)
	}
}
