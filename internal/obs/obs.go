// Package obs is the pipeline's zero-dependency observability layer:
// context-propagated stage spans, log-bucketed latency histograms, and a
// named-metric registry, all exportable as a structured Report (JSON and
// Chrome trace_viewer trace-event JSON) or as Prometheus text format.
//
// The design mirrors how the paper accounts for Sieve's cost (profiling
// overhead, per-stage work, sampled-vs-golden error, Sections V–VI): every
// run of the sampling pipeline should be able to explain where its time and
// its samples went. A Collector travels in the context.Context the compute
// stack already threads (core.StratifyContext, kde.GridContext,
// pks.SelectContext, stream.IngestContext); each stage opens a Span, hangs
// counters and key/value attributes off it, and closes it. When no Collector
// is attached every call is a no-op — StartSpan returns a nil *Span whose
// methods are nil-receiver safe — so un-instrumented runs pay one context
// lookup per stage and produce byte-identical output.
//
// Typical use:
//
//	c := obs.New()
//	ctx := obs.WithCollector(context.Background(), c)
//	plan, err := sieve.SampleContext(ctx, rows, opts)
//	rep := c.Report()
//	rep.WriteJSON(os.Stdout)   // structured stage report
//	rep.WriteTrace(f)          // chrome://tracing / Perfetto flamegraph
package obs

import (
	"context"
	"sort"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value any
}

// Span is one timed pipeline stage: wall-clock interval, counters, key/value
// attributes, and nested child spans. All methods are safe on a nil receiver
// (the disabled-collector case) and safe for concurrent use — parallel
// workers may annotate sibling spans under one parent.
type Span struct {
	collector *Collector
	name      string
	start     time.Time

	mu       sync.Mutex
	end      time.Time
	attrs    []Attr
	counters map[string]int64
	children []*Span
}

// Name returns the span's stage name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// End closes the span, fixing its duration. Ending twice keeps the first end
// time; a span never ended is closed at report time.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = now
	}
	s.mu.Unlock()
}

// SetAttr records a key/value attribute. Later writes to the same key win at
// report time; keys are reported in insertion order of first write.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// Add increments a named counter on the span.
func (s *Span) Add(counter string, delta int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.counters == nil {
		s.counters = make(map[string]int64)
	}
	s.counters[counter] += delta
	s.mu.Unlock()
}

// Active reports whether the span is recording. Use it to gate attribute
// computations that are only worth doing when a collector is attached.
func (s *Span) Active() bool { return s != nil }

// child creates and attaches a sub-span.
func (s *Span) child(name string) *Span {
	c := &Span{collector: s.collector, name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// Collector accumulates one run's spans and metrics. Create with New, attach
// with WithCollector, and snapshot with Report. A Collector may be shared by
// concurrent pipeline stages; it must not be reused across runs whose reports
// should stay separate.
type Collector struct {
	start    time.Time
	registry *Registry

	mu    sync.Mutex
	roots []*Span
}

// New returns an empty Collector with a fresh metric Registry.
func New() *Collector {
	return &Collector{start: time.Now(), registry: NewRegistry()}
}

// Registry returns the collector's metric registry (histograms + counters).
func (c *Collector) Registry() *Registry {
	if c == nil {
		return nil
	}
	return c.registry
}

// root creates and attaches a top-level span.
func (c *Collector) root(name string) *Span {
	s := &Span{collector: c, name: name, start: time.Now()}
	c.mu.Lock()
	c.roots = append(c.roots, s)
	c.mu.Unlock()
	return s
}

// ctxKey keys the collector and current span in a context.Context.
type ctxKey int

const (
	collectorKey ctxKey = iota
	spanKey
)

// WithCollector attaches the collector to the context. A nil collector
// returns ctx unchanged (explicitly disabled instrumentation).
func WithCollector(ctx context.Context, c *Collector) context.Context {
	if c == nil {
		return ctx
	}
	return context.WithValue(ctx, collectorKey, c)
}

// FromContext returns the attached Collector, or nil when instrumentation is
// disabled.
func FromContext(ctx context.Context) *Collector {
	c, _ := ctx.Value(collectorKey).(*Collector)
	return c
}

// StartSpan opens a stage span nested under the context's current span (or as
// a root span) and returns a derived context carrying it. With no Collector
// attached it returns ctx unchanged and a nil *Span: every Span method is a
// no-op, so call sites need no conditionals.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	c := FromContext(ctx)
	if c == nil {
		return ctx, nil
	}
	var s *Span
	if parent, _ := ctx.Value(spanKey).(*Span); parent != nil {
		s = parent.child(name)
	} else {
		s = c.root(name)
	}
	return context.WithValue(ctx, spanKey, s), s
}

// snapshotSpan freezes one span (and its subtree) into report form. Unended
// spans are closed at now.
func snapshotSpan(s *Span, origin, now time.Time) *SpanReport {
	s.mu.Lock()
	end := s.end
	if end.IsZero() {
		end = now
	}
	attrs := make(map[string]any, len(s.attrs))
	for _, a := range s.attrs {
		attrs[a.Key] = a.Value
	}
	var counters map[string]int64
	if len(s.counters) > 0 {
		counters = make(map[string]int64, len(s.counters))
		for k, v := range s.counters {
			counters[k] = v
		}
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()

	r := &SpanReport{
		Name:       s.name,
		StartNS:    s.start.Sub(origin).Nanoseconds(),
		DurationNS: end.Sub(s.start).Nanoseconds(),
		Attrs:      attrs,
		Counters:   counters,
	}
	if r.DurationNS < 0 {
		r.DurationNS = 0
	}
	// Children report in start order so the tree reads chronologically even
	// when parallel workers attached them out of order.
	sort.SliceStable(children, func(a, b int) bool { return children[a].start.Before(children[b].start) })
	for _, c := range children {
		r.Children = append(r.Children, snapshotSpan(c, origin, now))
	}
	return r
}

// Report snapshots the collector: the span forest (chronological), every
// registry counter and every registry histogram. The collector remains usable
// afterwards; spans still open are reported as ending now.
func (c *Collector) Report() *Report {
	if c == nil {
		return &Report{}
	}
	now := time.Now()
	c.mu.Lock()
	roots := append([]*Span(nil), c.roots...)
	c.mu.Unlock()
	sort.SliceStable(roots, func(a, b int) bool { return roots[a].start.Before(roots[b].start) })

	rep := &Report{}
	for _, s := range roots {
		rep.Spans = append(rep.Spans, snapshotSpan(s, c.start, now))
	}
	rep.Counters, rep.Histograms = c.registry.snapshot()
	return rep
}
