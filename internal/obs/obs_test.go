package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// TestNilSpanIsNoOp proves the disabled-collector contract: with no Collector
// in the context, StartSpan returns the context unchanged and a nil span whose
// every method is safe.
func TestNilSpanIsNoOp(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := StartSpan(ctx, "stage")
	if ctx2 != ctx {
		t.Fatal("StartSpan without a collector must return the context unchanged")
	}
	if sp != nil {
		t.Fatal("StartSpan without a collector must return a nil span")
	}
	if sp.Active() {
		t.Fatal("nil span must report inactive")
	}
	// All nil-receiver methods must be no-ops, not panics.
	sp.SetAttr("k", "v")
	sp.Add("n", 1)
	sp.End()
	if got := sp.Name(); got != "" {
		t.Fatalf("nil span name = %q", got)
	}
	if FromContext(ctx) != nil {
		t.Fatal("FromContext on a bare context must be nil")
	}
	if WithCollector(ctx, nil) != ctx {
		t.Fatal("WithCollector(nil) must return the context unchanged")
	}
	// A nil registry hands out nil metrics that are also no-ops.
	var reg *Registry
	reg.Counter("c").Add(1)
	if reg.Counter("c").Value() != 0 {
		t.Fatal("nil counter must read 0")
	}
	if reg.Histogram("h") != nil {
		t.Fatal("nil registry must return nil histogram")
	}
	if err := reg.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

// TestSpanNestingAndOrdering verifies the report reproduces the span tree:
// children nest under their parent, siblings report in chronological start
// order, and attributes/counters survive the snapshot.
func TestSpanNestingAndOrdering(t *testing.T) {
	c := New()
	ctx := WithCollector(context.Background(), c)

	ctx, root := StartSpan(ctx, "pipeline")
	root.SetAttr("theta", 0.4)
	root.Add("rows", 100)

	for _, name := range []string{"first", "second", "third"} {
		_, child := StartSpan(ctx, name)
		child.SetAttr("kernel", name)
		time.Sleep(time.Millisecond)
		child.End()
	}
	// A grandchild under a named child.
	cctx, child := StartSpan(ctx, "fourth")
	_, grand := StartSpan(cctx, "grandchild")
	grand.End()
	child.End()
	root.End()

	rep := c.Report()
	if len(rep.Spans) != 1 {
		t.Fatalf("want 1 root span, got %d", len(rep.Spans))
	}
	r := rep.Spans[0]
	if r.Name != "pipeline" {
		t.Fatalf("root span name = %q", r.Name)
	}
	if r.Attrs["theta"] != 0.4 {
		t.Fatalf("root attrs = %v", r.Attrs)
	}
	if r.Counters["rows"] != 100 {
		t.Fatalf("root counters = %v", r.Counters)
	}
	if len(r.Children) != 4 {
		t.Fatalf("want 4 children, got %d", len(r.Children))
	}
	wantOrder := []string{"first", "second", "third", "fourth"}
	var lastStart int64 = -1
	for i, ch := range r.Children {
		if ch.Name != wantOrder[i] {
			t.Fatalf("child %d = %q, want %q", i, ch.Name, wantOrder[i])
		}
		if ch.StartNS < lastStart {
			t.Fatalf("children not in chronological order: %d after %d", ch.StartNS, lastStart)
		}
		lastStart = ch.StartNS
		if ch.DurationNS < 0 {
			t.Fatalf("negative duration %d", ch.DurationNS)
		}
		if ch.StartNS < r.StartNS {
			t.Fatalf("child starts before parent")
		}
	}
	if len(r.Children[3].Children) != 1 || r.Children[3].Children[0].Name != "grandchild" {
		t.Fatalf("grandchild not nested: %+v", r.Children[3])
	}
	if rep.Find("grandchild") == nil {
		t.Fatal("Find(grandchild) = nil")
	}
	if got := len(rep.FindAll("second")); got != 1 {
		t.Fatalf("FindAll(second) = %d spans", got)
	}
}

// TestSpanEndIdempotent checks that a double End keeps the first end time and
// that unended spans are closed at report time.
func TestSpanEndIdempotent(t *testing.T) {
	c := New()
	ctx := WithCollector(context.Background(), c)
	_, sp := StartSpan(ctx, "s")
	sp.End()
	first := c.Report().Spans[0].DurationNS
	time.Sleep(2 * time.Millisecond)
	sp.End()
	if second := c.Report().Spans[0].DurationNS; second != first {
		t.Fatalf("second End changed duration: %d -> %d", first, second)
	}

	_, open := StartSpan(ctx, "open")
	_ = open
	rep := c.Report()
	if rep.Find("open").DurationNS < 0 {
		t.Fatal("open span must report a non-negative duration")
	}
}

// TestConcurrentSpansAndRegistry exercises the mutable surfaces from many
// goroutines; run under -race this is the concurrency regression test.
func TestConcurrentSpansAndRegistry(t *testing.T) {
	c := New()
	ctx := WithCollector(context.Background(), c)
	ctx, root := StartSpan(ctx, "parallel")

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_, sp := StartSpan(ctx, "worker")
				sp.SetAttr("g", g)
				sp.Add("iter", 1)
				sp.End()
				c.Registry().Counter("ops").Add(1)
				c.Registry().Histogram("lat").Observe(float64(i+1) * 1e-4)
			}
		}(g)
	}
	// Concurrent readers while writers run.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				_ = c.Report()
				_ = c.Registry().WritePrometheus(&bytes.Buffer{})
			}
		}()
	}
	wg.Wait()
	root.End()

	rep := c.Report()
	if got := len(rep.FindAll("worker")); got != 400 {
		t.Fatalf("want 400 worker spans, got %d", got)
	}
	if got := c.Registry().Counter("ops").Value(); got != 400 {
		t.Fatalf("ops counter = %d", got)
	}
	if got := c.Registry().Histogram("lat").Count(); got != 400 {
		t.Fatalf("lat count = %d", got)
	}
}

// TestReportJSONAndTrace validates both export formats parse back and carry
// the span data.
func TestReportJSONAndTrace(t *testing.T) {
	c := New()
	ctx := WithCollector(context.Background(), c)
	ctx, root := StartSpan(ctx, "run")
	_, child := StartSpan(ctx, "stage")
	child.SetAttr("kernel", "k1")
	child.Add("rows", 7)
	child.End()
	root.End()
	c.Registry().Counter("total").Add(3)
	c.Registry().Histogram("seconds").Observe(0.25)

	rep := c.Report()

	var jsonBuf bytes.Buffer
	if err := rep.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(jsonBuf.Bytes(), &back); err != nil {
		t.Fatalf("report JSON does not parse: %v", err)
	}
	if back.Find("stage") == nil {
		t.Fatal("round-tripped report lost the stage span")
	}
	if len(back.Counters) != 1 || back.Counters[0].Name != "total" || back.Counters[0].Value != 3 {
		t.Fatalf("counters = %+v", back.Counters)
	}
	if len(back.Histograms) != 1 || back.Histograms[0].Count != 1 {
		t.Fatalf("histograms = %+v", back.Histograms)
	}

	var traceBuf bytes.Buffer
	if err := rep.WriteTrace(&traceBuf); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    float64        `json:"ts"`
			Dur   float64        `json:"dur"`
			PID   int            `json:"pid"`
			TID   int            `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(traceBuf.Bytes(), &trace); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if len(trace.TraceEvents) != 2 {
		t.Fatalf("want 2 trace events, got %d", len(trace.TraceEvents))
	}
	byName := map[string]int{}
	for i, ev := range trace.TraceEvents {
		if ev.Phase != "X" {
			t.Fatalf("event %d phase = %q", i, ev.Phase)
		}
		byName[ev.Name] = i
	}
	run := trace.TraceEvents[byName["run"]]
	stage := trace.TraceEvents[byName["stage"]]
	if run.TID != stage.TID {
		t.Fatalf("nested child should share the parent lane: run tid %d, stage tid %d", run.TID, stage.TID)
	}
	if stage.TS < run.TS || stage.TS+stage.Dur > run.TS+run.Dur+1e-3 {
		t.Fatalf("stage [%g,%g] not contained in run [%g,%g]", stage.TS, stage.TS+stage.Dur, run.TS, run.TS+run.Dur)
	}
	if stage.Args["kernel"] != "k1" {
		t.Fatalf("stage args = %v", stage.Args)
	}
}

// TestTraceOverlappingSiblingsSplitLanes checks that concurrent sibling spans
// land on distinct viewer lanes (synthesized by hand-building overlapping
// intervals rather than racing real clocks).
func TestTraceOverlappingSiblingsSplitLanes(t *testing.T) {
	rep := &Report{Spans: []*SpanReport{{
		Name: "parent", StartNS: 0, DurationNS: 1000,
		Children: []*SpanReport{
			{Name: "a", StartNS: 10, DurationNS: 500},
			{Name: "b", StartNS: 20, DurationNS: 500}, // overlaps a
			{Name: "c", StartNS: 600, DurationNS: 100},
		},
	}}}
	var buf bytes.Buffer
	if err := rep.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string `json:"name"`
			TID  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatal(err)
	}
	tids := map[string]int{}
	for _, ev := range trace.TraceEvents {
		tids[ev.Name] = ev.TID
	}
	if tids["a"] == tids["b"] {
		t.Fatalf("overlapping siblings share lane %d", tids["a"])
	}
	if tids["a"] != tids["parent"] {
		t.Fatalf("first child should nest on the parent lane: %v", tids)
	}
	if tids["c"] != tids["parent"] {
		t.Fatalf("non-overlapping later sibling should reuse the parent lane: %v", tids)
	}
}

// TestPrometheusFormat spot-checks the exposition text.
func TestPrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("requests_total").Add(5)
	h := reg.Histogram("request seconds") // space must sanitize
	h.Observe(0.1)
	h.Observe(0.2)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE requests_total counter\nrequests_total 5\n",
		"# TYPE request_seconds summary\n",
		`request_seconds{quantile="0.5"}`,
		`request_seconds{quantile="0.99"}`,
		"request_seconds_count 2\n",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}
