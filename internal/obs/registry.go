package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically named counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter.
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.v.Add(delta)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Registry is a concurrency-safe set of named counters and histograms.
// Lookups create on first use, so instrumentation sites need no registration
// step. A nil *Registry is safe: lookups return nil metrics whose methods are
// no-ops.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{counters: make(map[string]*Counter), hists: make(map[string]*Histogram)}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// Histograms returns a point-in-time copy of the name → histogram map. The
// map is a fresh copy (safe to range without locks); the histograms are the
// live ones, so reading them observes concurrent updates. Nil-safe.
func (r *Registry) Histograms() map[string]*Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		out[k] = v
	}
	return out
}

// snapshot freezes the registry into report form, names sorted.
func (r *Registry) snapshot() ([]CounterReport, []HistogramReport) {
	if r == nil {
		return nil, nil
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	var cr []CounterReport
	for name, c := range counters {
		cr = append(cr, CounterReport{Name: name, Value: c.Value()})
	}
	sort.Slice(cr, func(a, b int) bool { return cr[a].Name < cr[b].Name })
	var hr []HistogramReport
	for name, h := range hists {
		hr = append(hr, HistogramReport{
			Name:    name,
			Count:   h.Count(),
			Sum:     h.Sum(),
			Min:     h.Min(),
			Max:     h.Max(),
			P50:     h.Quantile(0.50),
			P90:     h.Quantile(0.90),
			P99:     h.Quantile(0.99),
			Buckets: h.buckets(),
		})
	}
	sort.Slice(hr, func(a, b int) bool { return hr[a].Name < hr[b].Name })
	return cr, hr
}

// promName sanitizes a metric name into the Prometheus charset
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// WritePrometheus renders every counter and histogram in Prometheus text
// exposition format (version 0.0.4): counters as `counter` samples,
// histograms as `summary` quantiles plus `_sum`/`_count`. Names are sanitized
// to the Prometheus charset and emitted sorted, so the output is stable for
// scrape tests.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	counters, hists := r.snapshot()
	for _, c := range counters {
		name := promName(c.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, c.Value); err != nil {
			return err
		}
	}
	for _, h := range hists {
		name := promName(h.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s summary\n", name); err != nil {
			return err
		}
		for _, q := range []struct {
			label string
			v     float64
		}{{"0.5", h.P50}, {"0.9", h.P90}, {"0.99", h.P99}} {
			if _, err := fmt.Fprintf(w, "%s{quantile=%q} %g\n", name, q.label, q.v); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", name, h.Sum, name, h.Count); err != nil {
			return err
		}
	}
	return nil
}
