package obs

import (
	"encoding/json"
	"io"
)

// SpanReport is one frozen span: its interval (nanoseconds relative to the
// collector's creation), attributes, counters and children.
type SpanReport struct {
	Name       string           `json:"name"`
	StartNS    int64            `json:"start_ns"`
	DurationNS int64            `json:"duration_ns"`
	Attrs      map[string]any   `json:"attrs,omitempty"`
	Counters   map[string]int64 `json:"counters,omitempty"`
	Children   []*SpanReport    `json:"children,omitempty"`
}

// CounterReport is one frozen registry counter.
type CounterReport struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// BucketReport is one non-empty log bucket of a histogram in cumulative
// (Prometheus `le`) form.
type BucketReport struct {
	UpperBound      float64 `json:"le"`
	CumulativeCount uint64  `json:"count"`
}

// HistogramReport is one frozen registry histogram: summary statistics plus
// the non-empty log buckets.
type HistogramReport struct {
	Name    string         `json:"name"`
	Count   uint64         `json:"count"`
	Sum     float64        `json:"sum"`
	Min     float64        `json:"min"`
	Max     float64        `json:"max"`
	P50     float64        `json:"p50"`
	P90     float64        `json:"p90"`
	P99     float64        `json:"p99"`
	Buckets []BucketReport `json:"buckets,omitempty"`
}

// Report is one run's complete observability snapshot.
type Report struct {
	Spans      []*SpanReport     `json:"spans"`
	Counters   []CounterReport   `json:"counters,omitempty"`
	Histograms []HistogramReport `json:"histograms,omitempty"`
}

// WriteJSON renders the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Find returns the first span (depth-first, chronological) with the given
// name, or nil. A convenience for tests and report consumers.
func (r *Report) Find(name string) *SpanReport {
	var walk func(spans []*SpanReport) *SpanReport
	walk = func(spans []*SpanReport) *SpanReport {
		for _, s := range spans {
			if s.Name == name {
				return s
			}
			if hit := walk(s.Children); hit != nil {
				return hit
			}
		}
		return nil
	}
	return walk(r.Spans)
}

// FindAll returns every span (depth-first, chronological) with the given name.
func (r *Report) FindAll(name string) []*SpanReport {
	var out []*SpanReport
	var walk func(spans []*SpanReport)
	walk = func(spans []*SpanReport) {
		for _, s := range spans {
			if s.Name == name {
				out = append(out, s)
			}
			walk(s.Children)
		}
	}
	walk(r.Spans)
	return out
}

// traceEvent is one Chrome trace_viewer "complete" event. Timestamps and
// durations are microseconds.
type traceEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteTrace renders the span forest as Chrome trace-event JSON ("complete"
// X events), loadable in chrome://tracing or https://ui.perfetto.dev for a
// flamegraph of the pipeline. Spans that overlap their siblings in time
// (parallel workers) are placed on separate thread lanes so the viewer never
// has to stack concurrent events on one track.
func (r *Report) WriteTrace(w io.Writer) error {
	var events []traceEvent
	nextLane := 1
	newLane := func() int { l := nextLane; nextLane++; return l }

	// laneRec tracks, within one sibling group, when each candidate lane's
	// previous occupant ends. A span nests inside its parent's interval, so
	// the parent's lane is always a candidate (trace viewer stacks
	// time-contained events on one track); only siblings overlapping each
	// other need extra lanes, which are allocated globally fresh so unrelated
	// subtrees never share a track.
	type laneRec struct {
		lane int
		end  int64
	}
	var placeGroup func(spans []*SpanReport, parentLane int)
	placeGroup = func(spans []*SpanReport, parentLane int) {
		lanes := []laneRec{{lane: parentLane}}
		for _, s := range spans {
			pick := -1
			for i := range lanes {
				if lanes[i].end <= s.StartNS {
					pick = i
					break
				}
			}
			if pick == -1 {
				lanes = append(lanes, laneRec{lane: newLane()})
				pick = len(lanes) - 1
			}
			lanes[pick].end = s.StartNS + s.DurationNS

			args := make(map[string]any, len(s.Attrs)+len(s.Counters))
			for k, v := range s.Attrs {
				args[k] = v
			}
			for k, v := range s.Counters {
				args[k] = v
			}
			events = append(events, traceEvent{
				Name:  s.Name,
				Phase: "X",
				TS:    float64(s.StartNS) / 1e3,
				Dur:   float64(s.DurationNS) / 1e3,
				PID:   1,
				TID:   lanes[pick].lane,
				Args:  args,
			})
			placeGroup(s.Children, lanes[pick].lane)
		}
	}
	placeGroup(r.Spans, newLane())
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": events, "displayTimeUnit": "ms"})
}
