// Package pca implements principal component analysis over standardized
// feature matrices — the dimensionality-reduction stage of the PKS baseline.
// PKS profiles 12 microarchitecture-independent characteristics per kernel
// invocation, standardizes them, and projects onto the leading principal
// components before clustering.
package pca

import (
	"fmt"

	"github.com/gpusampling/sieve/internal/mat"
)

// Model is a fitted PCA transform.
type Model struct {
	// Components holds the principal axes as columns (dims × k).
	Components *mat.Matrix
	// Explained holds the eigenvalues (variance along each component),
	// sorted descending, for all original dimensions.
	Explained []float64
	// Stats holds the standardization applied before the eigendecomposition.
	Stats *mat.ColumnStats
	// Kept is the number of retained components.
	Kept int
}

// Fit computes a PCA of the rows of data (observations × features),
// standardizing features first and retaining the smallest number of leading
// components whose cumulative explained-variance ratio reaches varFraction
// (0 < varFraction ≤ 1). At least one component is always kept.
func Fit(data *mat.Matrix, varFraction float64) (*Model, error) {
	if varFraction <= 0 || varFraction > 1 {
		return nil, fmt.Errorf("pca: variance fraction %g outside (0, 1]", varFraction)
	}
	if data.Rows() < 2 {
		return nil, fmt.Errorf("pca: need at least 2 observations, have %d", data.Rows())
	}
	std, cs := data.Standardize()
	cov, err := std.Covariance()
	if err != nil {
		return nil, fmt.Errorf("pca: %w", err)
	}
	eig, err := mat.SymmetricEigen(cov)
	if err != nil {
		return nil, fmt.Errorf("pca: %w", err)
	}

	var total float64
	for _, v := range eig.Values {
		if v > 0 {
			total += v
		}
	}
	kept := 1
	if total > 0 {
		var acc float64
		kept = 0
		for _, v := range eig.Values {
			if v > 0 {
				acc += v
			}
			kept++
			if acc/total >= varFraction {
				break
			}
		}
		if kept == 0 {
			kept = 1
		}
	}

	return &Model{Components: eig.Vectors, Explained: eig.Values, Stats: cs, Kept: kept}, nil
}

// Transform projects the rows of data into the retained component space,
// applying the model's standardization first. data must have the same number
// of features the model was fitted on.
func (m *Model) Transform(data *mat.Matrix) (*mat.Matrix, error) {
	dims := len(m.Stats.Mean)
	if data.Cols() != dims {
		return nil, fmt.Errorf("pca: data has %d features, model fitted on %d", data.Cols(), dims)
	}
	out := mat.New(data.Rows(), m.Kept)
	for i := 0; i < data.Rows(); i++ {
		for c := 0; c < m.Kept; c++ {
			var acc float64
			for j := 0; j < dims; j++ {
				z := (data.At(i, j) - m.Stats.Mean[j]) / m.Stats.StdDev[j]
				acc += z * m.Components.At(j, c)
			}
			out.Set(i, c, acc)
		}
	}
	return out, nil
}

// FitTransform fits a model on data and returns both the model and the
// projected rows.
func FitTransform(data *mat.Matrix, varFraction float64) (*Model, *mat.Matrix, error) {
	m, err := Fit(data, varFraction)
	if err != nil {
		return nil, nil, err
	}
	proj, err := m.Transform(data)
	if err != nil {
		return nil, nil, err
	}
	return m, proj, nil
}

// ExplainedRatio returns the fraction of total variance captured by each
// component (same order as Explained). Non-positive eigenvalues (numerical
// noise) contribute zero.
func (m *Model) ExplainedRatio() []float64 {
	var total float64
	for _, v := range m.Explained {
		if v > 0 {
			total += v
		}
	}
	out := make([]float64, len(m.Explained))
	if total == 0 {
		return out
	}
	for i, v := range m.Explained {
		if v > 0 {
			out[i] = v / total
		}
	}
	return out
}

// Rows converts a projected matrix into row-major point slices, the input
// shape the clustering substrate expects.
func Rows(m *mat.Matrix) [][]float64 {
	out := make([][]float64, m.Rows())
	for i := range out {
		out[i] = m.Row(i)
	}
	return out
}
