package pca

import (
	"math"
	"math/rand"
	"testing"

	"github.com/gpusampling/sieve/internal/mat"
)

func TestFitValidation(t *testing.T) {
	m, _ := mat.FromRows([][]float64{{1, 2}, {3, 4}})
	if _, err := Fit(m, 0); err == nil {
		t.Fatal("want error on zero variance fraction")
	}
	if _, err := Fit(m, 1.5); err == nil {
		t.Fatal("want error on variance fraction > 1")
	}
	one, _ := mat.FromRows([][]float64{{1, 2}})
	if _, err := Fit(one, 0.9); err == nil {
		t.Fatal("want error on single observation")
	}
}

func TestFitPerfectlyCorrelatedData(t *testing.T) {
	// y = 2x: one component should explain everything.
	rows := make([][]float64, 50)
	rng := rand.New(rand.NewSource(1))
	for i := range rows {
		x := rng.NormFloat64()
		rows[i] = []float64{x, 2 * x}
	}
	data, _ := mat.FromRows(rows)
	m, err := Fit(data, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kept != 1 {
		t.Fatalf("Kept = %d, want 1", m.Kept)
	}
	ratios := m.ExplainedRatio()
	if ratios[0] < 0.999 {
		t.Fatalf("first component explains %g, want ≈1", ratios[0])
	}
}

func TestFitIndependentDataKeepsAll(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rows := make([][]float64, 500)
	for i := range rows {
		rows[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	}
	data, _ := mat.FromRows(rows)
	m, err := Fit(data, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kept != 3 {
		t.Fatalf("independent features: Kept = %d, want 3", m.Kept)
	}
}

func TestExplainedRatioSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rows := make([][]float64, 100)
	for i := range rows {
		x := rng.NormFloat64()
		rows[i] = []float64{x, x + rng.NormFloat64()*0.1, rng.NormFloat64()}
	}
	data, _ := mat.FromRows(rows)
	m, err := Fit(data, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, r := range m.ExplainedRatio() {
		if r < 0 {
			t.Fatalf("negative explained ratio %g", r)
		}
		sum += r
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("explained ratios sum to %g", sum)
	}
}

func TestTransformShapeAndMismatch(t *testing.T) {
	rows := [][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 10}}
	data, _ := mat.FromRows(rows)
	m, proj, err := FitTransform(data, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if proj.Rows() != 3 || proj.Cols() != m.Kept {
		t.Fatalf("projection %dx%d, want 3x%d", proj.Rows(), proj.Cols(), m.Kept)
	}
	wrong, _ := mat.FromRows([][]float64{{1, 2}})
	if _, err := m.Transform(wrong); err == nil {
		t.Fatal("want error on feature-count mismatch")
	}
}

func TestTransformPreservesPairwiseDistancesFullRank(t *testing.T) {
	// Keeping all components, PCA is a rotation of the standardized data:
	// pairwise distances in standardized space must be preserved.
	rng := rand.New(rand.NewSource(4))
	rows := make([][]float64, 40)
	for i := range rows {
		rows[i] = []float64{rng.NormFloat64(), rng.NormFloat64() * 5, rng.NormFloat64() * 0.2}
	}
	data, _ := mat.FromRows(rows)
	m, proj, err := FitTransform(data, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kept != 3 {
		t.Skipf("data happened to be rank-deficient (kept %d)", m.Kept)
	}
	std, _ := data.Standardize()
	for trial := 0; trial < 50; trial++ {
		i, j := rng.Intn(40), rng.Intn(40)
		var dStd, dProj float64
		for c := 0; c < 3; c++ {
			d := std.At(i, c) - std.At(j, c)
			dStd += d * d
			p := proj.At(i, c) - proj.At(j, c)
			dProj += p * p
		}
		if math.Abs(dStd-dProj) > 1e-6*(1+dStd) {
			t.Fatalf("distance not preserved: %g vs %g", dStd, dProj)
		}
	}
}

func TestTransformFirstComponentAlignsWithDominantAxis(t *testing.T) {
	// Strongly elongated cloud along (1, 1): first PC scores should separate
	// the two ends of the cloud.
	rng := rand.New(rand.NewSource(5))
	rows := make([][]float64, 200)
	for i := range rows {
		tt := rng.NormFloat64() * 10
		rows[i] = []float64{tt + rng.NormFloat64()*0.1, tt + rng.NormFloat64()*0.1}
	}
	data, _ := mat.FromRows(rows)
	_, proj, err := FitTransform(data, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	// Correlation between x0 and PC1 score should be ~±1.
	var sx, sy, sxy, sxx, syy float64
	n := float64(data.Rows())
	for i := 0; i < data.Rows(); i++ {
		x, y := data.At(i, 0), proj.At(i, 0)
		sx += x
		sy += y
		sxy += x * y
		sxx += x * x
		syy += y * y
	}
	cov := sxy/n - (sx/n)*(sy/n)
	vx := sxx/n - (sx/n)*(sx/n)
	vy := syy/n - (sy/n)*(sy/n)
	corr := cov / math.Sqrt(vx*vy)
	if math.Abs(corr) < 0.999 {
		t.Fatalf("|corr(x, PC1)| = %g, want ≈1", math.Abs(corr))
	}
}

func TestRows(t *testing.T) {
	m, _ := mat.FromRows([][]float64{{1, 2}, {3, 4}})
	rows := Rows(m)
	if len(rows) != 2 || rows[1][0] != 3 {
		t.Fatalf("Rows = %v", rows)
	}
	rows[0][0] = 99
	if m.At(0, 0) != 1 {
		t.Fatal("Rows leaked matrix storage")
	}
}

func TestFitConstantColumn(t *testing.T) {
	// A constant feature must not break fitting (zero-variance guard).
	rows := [][]float64{{1, 7}, {2, 7}, {3, 7}, {4, 7}}
	data, _ := mat.FromRows(rows)
	m, proj, err := FitTransform(data, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kept < 1 {
		t.Fatal("must keep at least one component")
	}
	if proj.Rows() != 4 {
		t.Fatalf("projection rows = %d", proj.Rows())
	}
}
