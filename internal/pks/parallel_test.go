package pks

import (
	"math/rand"
	"reflect"
	"testing"
)

// synthFeatures builds n deterministic 12-D feature rows with a few latent
// groups plus positive golden cycles correlated with the first feature.
func synthFeatures(seed int64, n int) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	features := make([][]float64, n)
	golden := make([]float64, n)
	for i := range features {
		group := float64(rng.Intn(4))
		row := make([]float64, 12)
		for d := range row {
			row[d] = group*10 + rng.NormFloat64()
		}
		features[i] = row
		golden[i] = 1e5 * (1 + group + 0.1*rng.Float64())
	}
	return features, golden
}

func TestSelectParallelMatchesSequential(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		n    int
	}{
		// MinParallelWork: 1 forces the pool on even these small fixtures so
		// the parallel sweep path itself is what gets compared; the
		// work-gated default (which routes sweeps this small inline) is
		// covered by TestSelectWorkGateMatchesForcedPool below.
		{"kmeans-first", Options{Seed: 1, MinParallelWork: 1}, 300},
		{"kmeans-random", Options{Seed: 2, Selection: SelectRandom, MinParallelWork: 1}, 300},
		{"kmeans-centroid", Options{Seed: 3, Selection: SelectCentroid, MinParallelWork: 1}, 300},
		{"kmeans-restarts", Options{Seed: 4, Restarts: 3, MinParallelWork: 1}, 200},
		{"hierarchical", Options{Seed: 5, Clustering: AlgoHierarchical, MinParallelWork: 1}, 150},
		{"subsampled", Options{Seed: 6, ClusterSampleCap: 50, MinParallelWork: 1}, 400},
		{"single-invocation", Options{Seed: 7, MinParallelWork: 1}, 1},
		{"two-invocations", Options{Seed: 8, MinParallelWork: 1}, 2},
		{"work-gated-default", Options{Seed: 9}, 300},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			features, golden := synthFeatures(tc.opts.Seed, tc.n)
			seqOpts := tc.opts
			seqOpts.Parallelism = 1
			seq, err := Select(features, golden, seqOpts)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{0, 3, 16} {
				parOpts := tc.opts
				parOpts.Parallelism = workers
				par, err := Select(features, golden, parOpts)
				if err != nil {
					t.Fatalf("parallelism %d: %v", workers, err)
				}
				if !reflect.DeepEqual(seq, par) {
					t.Fatalf("parallelism %d: result diverges from sequential (k %d vs %d, err %g vs %g)",
						workers, par.K, seq.K, par.KSelectionError, seq.KSelectionError)
				}
			}
		})
	}
}

func TestSelectParallelAcrossSeeds(t *testing.T) {
	features, golden := synthFeatures(42, 250)
	for seed := int64(1); seed <= 5; seed++ {
		seq, err := Select(features, golden, Options{Seed: seed, Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		par, err := Select(features, golden, Options{Seed: seed, Parallelism: 8})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("seed %d: parallel result diverges from sequential", seed)
		}
	}
}

func TestSelectInvalidParallelismAndRestarts(t *testing.T) {
	features, golden := synthFeatures(1, 10)
	if _, err := Select(features, golden, Options{Parallelism: -2}); err == nil {
		t.Fatal("want error for negative parallelism")
	}
	if _, err := Select(features, golden, Options{Restarts: -1}); err == nil {
		t.Fatal("want error for negative restarts")
	}
	if _, err := Select(features, golden, Options{MinParallelWork: -5}); err == nil {
		t.Fatal("want error for negative MinParallelWork")
	}
}

// TestSelectWorkGateMatchesForcedPool proves the work-size gate is purely a
// scheduling decision: routing a sweep inline (high threshold) and forcing
// it onto the pool (threshold 1) produce identical results.
func TestSelectWorkGateMatchesForcedPool(t *testing.T) {
	features, golden := synthFeatures(11, 350)
	inline, err := Select(features, golden, Options{Seed: 11, Parallelism: 4, MinParallelWork: 1 << 62})
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := Select(features, golden, Options{Seed: 11, Parallelism: 4, MinParallelWork: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(inline, pooled) {
		t.Fatalf("work-gated inline sweep diverges from forced pool (k %d vs %d)", inline.K, pooled.K)
	}
}

// TestSelectRestartsNeverWorsenDistortion checks that adding restarts keeps
// the chosen clustering at least as good as advertised: the reported
// k-selection error is still the minimum across the sweep.
func TestSelectRestartsNeverWorsenDistortion(t *testing.T) {
	features, golden := synthFeatures(9, 200)
	for _, restarts := range []int{1, 2, 5} {
		res, err := Select(features, golden, Options{Seed: 3, Restarts: restarts})
		if err != nil {
			t.Fatal(err)
		}
		if res.KSelectionError < 0 || res.K < 1 {
			t.Fatalf("restarts %d: invalid result k=%d err=%g", restarts, res.K, res.KSelectionError)
		}
		total := 0
		for i := range res.Clusters {
			total += res.Clusters[i].Size()
		}
		if total != len(features) {
			t.Fatalf("restarts %d: clusters cover %d of %d invocations", restarts, total, len(features))
		}
	}
}
