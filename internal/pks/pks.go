// Package pks implements Principal Kernel Selection (Baddouh et al., MICRO
// 2021), the state-of-the-art baseline Sieve is evaluated against
// (Section II-A of the Sieve paper).
//
// PKS profiles twelve microarchitecture-independent characteristics per
// kernel invocation, standardizes them, reduces dimensionality with PCA, and
// clusters all invocations — across kernels — with k-means. The number of
// clusters k is chosen from 1..20 by minimizing the prediction error against
// a golden cycle count measured on real hardware (the dependency Section
// II-B criticizes). One representative invocation is selected per cluster
// (first-chronological by default; random and centroid are evaluated
// alternates) and the application cycle count is predicted as the sum over
// clusters of (cluster size × representative cycle count).
package pks

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/gpusampling/sieve/internal/cluster"
	"github.com/gpusampling/sieve/internal/mat"
	"github.com/gpusampling/sieve/internal/obs"
	"github.com/gpusampling/sieve/internal/pca"
)

// DefaultMaxK is the paper-prescribed cap on the cluster count ("up to a
// maximum k of 20").
const DefaultMaxK = 20

// DefaultVarianceFraction is the PCA explained-variance retention target.
const DefaultVarianceFraction = 0.9

// DefaultClusterSampleCap bounds the number of points k-means iterates over;
// larger profiles are fitted on a deterministic stride-subsample and every
// invocation is then assigned to its nearest centroid. This keeps the
// k-sweep tractable on million-invocation profiles.
const DefaultClusterSampleCap = 20000

// Policy selects the representative invocation within a cluster.
type Policy int

const (
	// SelectFirst picks the chronologically first invocation of the
	// cluster — the PKS default ("PKS-first").
	SelectFirst Policy = iota
	// SelectRandom picks a uniformly random member.
	SelectRandom
	// SelectCentroid picks the member nearest the cluster centroid in the
	// reduced feature space.
	SelectCentroid
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case SelectFirst:
		return "first-chronological"
	case SelectRandom:
		return "random"
	case SelectCentroid:
		return "centroid"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ClusteringAlgo selects the clustering engine behind the baseline.
type ClusteringAlgo int

const (
	// AlgoKMeans is PKS's clustering (k-means++ and Lloyd iterations, the
	// scalable choice of Baddouh et al.).
	AlgoKMeans ClusteringAlgo = iota
	// AlgoHierarchical is TBPoint-style agglomerative (average-linkage)
	// clustering — the earlier related-work approach the Sieve paper cites.
	// Quadratic in the fitting sample, so the sample is capped harder.
	AlgoHierarchical
)

// String names the algorithm.
func (a ClusteringAlgo) String() string {
	switch a {
	case AlgoKMeans:
		return "kmeans"
	case AlgoHierarchical:
		return "hierarchical"
	default:
		return fmt.Sprintf("ClusteringAlgo(%d)", int(a))
	}
}

// HierarchicalSampleCap bounds the agglomerative fitting sample (the
// dendrogram is O(n²) in space and worse in time).
const HierarchicalSampleCap = 400

// DefaultMinParallelWork is the estimated sweep size (point-coordinate
// operations: fit points × dims × Lloyd iterations × Σk × restarts) below
// which the k-sweep runs inline instead of fanning out to a worker pool.
// Benchmarks on the default fixture put the crossover around a few million
// point-ops: below that, goroutine + scheduling overhead costs more than the
// sweep itself (this is why the pre-overhaul parallel PKS lost to
// sequential). Tunable via Options.MinParallelWork.
const DefaultMinParallelWork = 4 << 20

// Options configures a PKS run.
type Options struct {
	// MaxK caps the k-means sweep (DefaultMaxK if zero).
	MaxK int
	// VarianceFraction is the PCA retention target
	// (DefaultVarianceFraction if zero).
	VarianceFraction float64
	// Selection is the representative policy.
	Selection Policy
	// Seed drives k-means++ and random selection.
	Seed int64
	// MaxIterations bounds Lloyd iterations per k (30 if zero).
	MaxIterations int
	// ClusterSampleCap bounds the k-means fitting set
	// (DefaultClusterSampleCap if zero; negative disables subsampling).
	ClusterSampleCap int
	// Clustering selects the engine: AlgoKMeans (PKS) or AlgoHierarchical
	// (TBPoint-style).
	Clustering ClusteringAlgo
	// Parallelism bounds the workers running the k = 1..MaxK sweep
	// concurrently: 0 selects GOMAXPROCS, 1 runs the sweep sequentially.
	// Every candidate k derives its RNG from Seed alone, so the result is
	// byte-identical at any parallelism.
	Parallelism int
	// Restarts is the per-k k-means restart count forwarded to the
	// clustering layer (default 1, the original PKS behaviour).
	Restarts int
	// MinParallelWork is the estimated sweep cost (in point-coordinate
	// operations) below which the k-sweep ignores Parallelism and runs
	// inline — small sweeps lose more to goroutine and channel overhead
	// than they gain from concurrency. 0 selects DefaultMinParallelWork;
	// negative is an error. Set to 1 to force the pool on any sweep.
	MinParallelWork int64
}

func (o Options) withDefaults() (Options, error) {
	if o.MaxK == 0 {
		o.MaxK = DefaultMaxK
	}
	if o.MaxK < 1 {
		return o, fmt.Errorf("pks: MaxK %d < 1", o.MaxK)
	}
	if o.VarianceFraction == 0 {
		o.VarianceFraction = DefaultVarianceFraction
	}
	if o.VarianceFraction <= 0 || o.VarianceFraction > 1 {
		return o, fmt.Errorf("pks: variance fraction %g outside (0, 1]", o.VarianceFraction)
	}
	switch o.Selection {
	case SelectFirst, SelectRandom, SelectCentroid:
	default:
		return o, fmt.Errorf("pks: unknown selection policy %d", o.Selection)
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = 30
	}
	if o.ClusterSampleCap == 0 {
		o.ClusterSampleCap = DefaultClusterSampleCap
	}
	if o.Parallelism == 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	if o.Parallelism < 0 {
		return o, fmt.Errorf("pks: negative parallelism %d", o.Parallelism)
	}
	if o.Restarts == 0 {
		o.Restarts = 1
	}
	if o.Restarts < 0 {
		return o, fmt.Errorf("pks: negative restarts %d", o.Restarts)
	}
	if o.MinParallelWork == 0 {
		o.MinParallelWork = DefaultMinParallelWork
	}
	if o.MinParallelWork < 0 {
		return o, fmt.Errorf("pks: negative MinParallelWork %d", o.MinParallelWork)
	}
	switch o.Clustering {
	case AlgoKMeans:
	case AlgoHierarchical:
		if o.ClusterSampleCap < 0 || o.ClusterSampleCap > HierarchicalSampleCap {
			o.ClusterSampleCap = HierarchicalSampleCap
		}
	default:
		return o, fmt.Errorf("pks: unknown clustering algorithm %d", o.Clustering)
	}
	return o, nil
}

// Cluster is one k-means cluster with its representative.
type Cluster struct {
	// Invocations holds member invocation indices, chronological.
	Invocations []int
	// Representative is the selected invocation index.
	Representative int
}

// Size returns the cluster's member count — its prediction weight.
func (c *Cluster) Size() int { return len(c.Invocations) }

// Result is a complete PKS selection.
type Result struct {
	// K is the chosen cluster count.
	K int
	// Clusters holds the clusters; every invocation belongs to exactly one.
	Clusters []Cluster
	// Assignments maps invocation index to cluster index.
	Assignments []int
	// KSelectionError is the per-invocation cycle distortion at the chosen
	// k against the golden reference used during selection:
	// Σᵢ |cycles(rep of i's cluster) − cycles(i)| / Σᵢ cycles(i). PKS picks
	// the k minimizing this representativeness error — the step that makes
	// its selection depend on real-hardware measurements (Section II-B of
	// the Sieve paper).
	KSelectionError float64
}

// Select runs the PKS pipeline. features[i] is the 12-characteristic vector
// of invocation i (chronological); goldenCycles[i] is that invocation's
// measured cycle count on the reference hardware, required by PKS's
// k-selection step.
func Select(features [][]float64, goldenCycles []float64, opts Options) (*Result, error) {
	return SelectContext(context.Background(), features, goldenCycles, opts)
}

// SelectContext is Select with cancellation: the k = 1..MaxK sweep checks ctx
// between candidate clusterings, so a cancelled or timed-out context stops
// the sweep — already-running candidates finish, queued ones never start, the
// worker pool drains — and the call reports ctx.Err().
func SelectContext(ctx context.Context, features [][]float64, goldenCycles []float64, opts Options) (*Result, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(features) == 0 {
		return nil, fmt.Errorf("pks: no invocations")
	}
	if len(features) != len(goldenCycles) {
		return nil, fmt.Errorf("pks: %d feature rows vs %d golden cycles", len(features), len(goldenCycles))
	}
	var goldenTotal float64
	for i, c := range goldenCycles {
		if c <= 0 {
			return nil, fmt.Errorf("pks: non-positive golden cycles %g at invocation %d", c, i)
		}
		goldenTotal += c
	}

	// Observability: each sweep candidate records a pks.k child span under
	// this one (per-k wall time and distortion); without a collector every
	// StartSpan is a no-op and the sweep is untouched.
	ctx, sp := obs.StartSpan(ctx, "pks.select")
	defer sp.End()
	if sp.Active() {
		sp.SetAttr("invocations", len(features))
		sp.SetAttr("clustering", opts.Clustering.String())
		sp.SetAttr("parallelism", opts.Parallelism)
	}

	points, err := reduce(features, opts.VarianceFraction)
	if err != nil {
		return nil, err
	}

	fitSet, fitIdx := subsample(points, opts.ClusterSampleCap)
	maxK := opts.MaxK
	if maxK > len(fitSet) {
		maxK = len(fitSet)
	}

	clusterings := make(map[int]*cluster.Result, maxK)
	if opts.Clustering == AlgoHierarchical {
		ks := make([]int, 0, maxK)
		for k := 1; k <= maxK; k++ {
			ks = append(ks, k)
		}
		cuts, err := cluster.AgglomerativeCuts(fitSet, ks)
		if err != nil {
			return nil, fmt.Errorf("pks: hierarchical: %w", err)
		}
		clusterings = cuts
	}

	// The k-means candidates all iterate over the same fitting sample, so it
	// is flattened once; each sweep lane then reuses one cluster.Scratch
	// across every k it runs, keeping the sweep allocation-free outside
	// result materialization.
	var fitDS *cluster.Dataset
	if opts.Clustering == AlgoKMeans {
		fitDS, err = cluster.NewDataset(fitSet)
		if err != nil {
			return nil, fmt.Errorf("pks: %w", err)
		}
	}

	// Sweep k = 1..maxK. Each candidate's randomness flows through an RNG
	// derived only from the caller's seed and k itself, so the candidates are
	// independent and can run on a bounded worker pool without changing a
	// single byte of the outcome relative to the sequential sweep.
	//
	// Whether the pool pays is decided by an up-front work estimate
	// (point-coordinate operations across the whole sweep): small sweeps run
	// inline because goroutine + scheduling overhead would dominate them.
	candidates := make([]*Result, maxK+1)
	errsByK := make([]float64, maxK+1)
	failures := make([]error, maxK+1)
	workers := opts.Parallelism
	if workers > maxK {
		workers = maxK
	}
	if sweepWork(fitSet, opts, maxK) < opts.MinParallelWork {
		workers = 1
	}
	clusterPar := 1 // the sweep already occupies the workers
	if workers <= 1 {
		clusterPar = opts.Parallelism // sequential sweep: restarts may fan out
	}
	runK := func(k int, scratch *cluster.Scratch) {
		_, ksp := obs.StartSpan(ctx, "pks.k")
		defer ksp.End()
		ksp.SetAttr("k", k)
		rng := rand.New(rand.NewSource(opts.Seed + int64(k)*7919))
		km := clusterings[k]
		if km == nil {
			var err error
			km, err = cluster.KMeansDataset(fitDS, cluster.Config{
				K: k, Rng: rng, MaxIterations: opts.MaxIterations,
				Restarts: opts.Restarts, Parallelism: clusterPar,
			}, scratch)
			if err != nil {
				failures[k] = fmt.Errorf("pks: k=%d: %w", k, err)
				return
			}
		}
		res := assemble(points, fitIdx, km, opts, rng)
		candidates[k] = res
		errsByK[k] = distortion(res, goldenCycles, goldenTotal)
		ksp.SetAttr("distortion", errsByK[k])
	}
	if sp.Active() {
		sp.SetAttr("sweep_workers", workers)
	}
	if workers <= 1 {
		scratch := &cluster.Scratch{}
		for k := 1; k <= maxK; k++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			runK(k, scratch)
		}
	} else {
		// Workers pull candidate k values from a shared counter and check ctx
		// before each pull; every candidate writes to its own slot, so the
		// assembled sweep is byte-identical to the sequential one.
		var wg sync.WaitGroup
		var nextK atomic.Int64
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				scratch := &cluster.Scratch{}
				for ctx.Err() == nil {
					k := int(nextK.Add(1))
					if k > maxK {
						return
					}
					runK(k, scratch)
				}
			}()
		}
		wg.Wait()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for k := 1; k <= maxK; k++ {
		if failures[k] != nil {
			return nil, failures[k]
		}
	}
	// Pick the k minimizing distortion, first-k ties, exactly as the
	// sequential sweep did.
	var best *Result
	for k := 1; k <= maxK; k++ {
		if best == nil || errsByK[k] < best.KSelectionError {
			candidates[k].KSelectionError = errsByK[k]
			best = candidates[k]
		}
	}
	if sp.Active() {
		sp.SetAttr("max_k", maxK)
		sp.SetAttr("chosen_k", best.K)
		sp.SetAttr("distortion", best.KSelectionError)
	}
	return best, nil
}

// sweepWork estimates the k-sweep's cost in point-coordinate operations:
// every candidate k runs up to MaxIterations Lloyd passes over the fitting
// sample, each touching n·dim·k coordinates, per restart. The estimate is an
// upper bound (Lloyd usually converges early), which is the right bias for a
// parallelize/inline decision: an overestimate occasionally fans out work
// that would have been fine inline, never the reverse.
func sweepWork(fitSet [][]float64, opts Options, maxK int) int64 {
	if len(fitSet) == 0 {
		return 0
	}
	sumK := int64(maxK) * int64(maxK+1) / 2
	return int64(len(fitSet)) * int64(len(fitSet[0])) *
		int64(opts.MaxIterations) * sumK * int64(opts.Restarts)
}

// distortion is the per-invocation representativeness error of a clustering:
// the golden-cycle mass mis-modeled when every member of a cluster is assumed
// to cost what the representative costs.
func distortion(r *Result, goldenCycles []float64, goldenTotal float64) float64 {
	var sum float64
	for ci := range r.Clusters {
		c := &r.Clusters[ci]
		rep := goldenCycles[c.Representative]
		for _, i := range c.Invocations {
			sum += math.Abs(rep - goldenCycles[i])
		}
	}
	return sum / goldenTotal
}

// reduce standardizes and PCA-projects the feature rows.
func reduce(features [][]float64, varFraction float64) ([][]float64, error) {
	if len(features) == 1 {
		// PCA needs ≥ 2 observations; a single invocation needs no
		// clustering geometry at all.
		return [][]float64{{0}}, nil
	}
	m, err := mat.FromRows(features)
	if err != nil {
		return nil, fmt.Errorf("pks: %w", err)
	}
	_, proj, err := pca.FitTransform(m, varFraction)
	if err != nil {
		return nil, fmt.Errorf("pks: %w", err)
	}
	return pca.Rows(proj), nil
}

// subsample returns a deterministic stride subsample of points (and the
// original indices) when cap is exceeded; otherwise the full set.
func subsample(points [][]float64, cap int) ([][]float64, []int) {
	if cap <= 0 || len(points) <= cap {
		idx := make([]int, len(points))
		for i := range idx {
			idx[i] = i
		}
		return points, idx
	}
	stride := (len(points) + cap - 1) / cap
	var sub [][]float64
	var idx []int
	for i := 0; i < len(points); i += stride {
		sub = append(sub, points[i])
		idx = append(idx, i)
	}
	return sub, idx
}

// assemble assigns every invocation to its nearest centroid and selects
// representatives.
func assemble(points [][]float64, fitIdx []int, km *cluster.Result, opts Options, rng *rand.Rand) *Result {
	k := len(km.Centroids)
	res := &Result{K: k, Assignments: make([]int, len(points))}
	res.Clusters = make([]Cluster, k)

	fitted := len(fitIdx) == len(points)
	for i, p := range points {
		var c int
		if fitted {
			c = km.Assignments[i]
		} else {
			c = nearestCentroid(p, km.Centroids)
		}
		res.Assignments[i] = c
		res.Clusters[c].Invocations = append(res.Clusters[c].Invocations, i)
	}
	// Nearest-centroid reassignment can empty a cluster that was only
	// populated in the fitting subsample; drop empties and renumber.
	res.compact()

	for ci := range res.Clusters {
		c := &res.Clusters[ci]
		switch opts.Selection {
		case SelectFirst:
			c.Representative = c.Invocations[0]
		case SelectRandom:
			c.Representative = c.Invocations[rng.Intn(len(c.Invocations))]
		case SelectCentroid:
			c.Representative = nearestMember(points, c.Invocations, centroidOf(points, c.Invocations))
		}
	}
	return res
}

// compact removes empty clusters and renumbers assignments.
func (r *Result) compact() {
	var kept []Cluster
	remap := make([]int, len(r.Clusters))
	for i := range r.Clusters {
		if len(r.Clusters[i].Invocations) == 0 {
			remap[i] = -1
			continue
		}
		remap[i] = len(kept)
		kept = append(kept, r.Clusters[i])
	}
	if len(kept) == len(r.Clusters) {
		return
	}
	r.Clusters = kept
	r.K = len(kept)
	for i, a := range r.Assignments {
		r.Assignments[i] = remap[a]
	}
}

// centroidOf computes the mean point of the given member indices.
func centroidOf(points [][]float64, members []int) []float64 {
	dim := len(points[0])
	c := make([]float64, dim)
	for _, i := range members {
		for d, v := range points[i] {
			c[d] += v
		}
	}
	for d := range c {
		c[d] /= float64(len(members))
	}
	return c
}

// nearestMember returns the member index closest to target.
func nearestMember(points [][]float64, members []int, target []float64) int {
	best, bestD := members[0], math.Inf(1)
	for _, i := range members {
		if d := sqDist(points[i], target); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// nearestCentroid returns the index of the centroid closest to p. Distance
// accumulation aborts as soon as the partial sum reaches the best distance so
// far; pruning can only discard candidates whose full distance is ≥ the
// incumbent's, so the argmin (and the strict-< first-wins tie break) is
// identical to the exhaustive scan.
func nearestCentroid(p []float64, centroids [][]float64) int {
	best, bestD := 0, math.Inf(1)
	for c, cent := range centroids {
		var acc float64
		for j, v := range cent {
			diff := p[j] - v
			acc += diff * diff
			if acc >= bestD {
				break
			}
		}
		if acc < bestD {
			best, bestD = c, acc
		}
	}
	return best
}

func sqDist(a, b []float64) float64 {
	var acc float64
	for i := range a {
		d := a[i] - b[i]
		acc += d * d
	}
	return acc
}
