package pks

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/gpusampling/sieve/internal/cudamodel"
)

// syntheticProfile builds nKernels kernels × perKernel invocations with
// distinct feature scales per kernel and golden cycles proportional to a
// per-kernel CPI.
func syntheticProfile(nKernels, perKernel int, seed int64) (features [][]float64, golden []float64) {
	rng := rand.New(rand.NewSource(seed))
	for k := 0; k < nKernels; k++ {
		instr := 1000 * math.Pow(10, float64(k))
		cpi := 1 + rng.Float64()*3
		for j := 0; j < perKernel; j++ {
			c := cudamodel.Characteristics{
				CoalescedGlobalLoads: instr * 0.01,
				ThreadGlobalLoads:    instr * 0.1,
				InstructionCount:     instr * (1 + 0.01*rng.NormFloat64()),
				DivergenceEfficiency: 0.9,
				ThreadBlocks:         instr / 1000,
			}
			features = append(features, c.Vector())
			golden = append(golden, cpi*c.InstructionCount)
		}
	}
	return features, golden
}

func TestOptionsValidation(t *testing.T) {
	f, g := syntheticProfile(2, 3, 1)
	cases := []struct {
		name string
		opts Options
	}{
		{"negative MaxK", Options{MaxK: -1}},
		{"variance fraction > 1", Options{VarianceFraction: 1.5}},
		{"bad policy", Options{Selection: Policy(99)}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Select(f, g, c.opts); err == nil {
				t.Fatal("want error")
			}
		})
	}
	if _, err := Select(nil, nil, Options{}); err == nil {
		t.Fatal("want error for empty input")
	}
	if _, err := Select(f, g[:1], Options{}); err == nil {
		t.Fatal("want error for length mismatch")
	}
	g[0] = 0
	if _, err := Select(f, g, Options{}); err == nil {
		t.Fatal("want error for non-positive golden cycles")
	}
}

func TestPolicyString(t *testing.T) {
	if SelectFirst.String() != "first-chronological" || SelectRandom.String() != "random" ||
		SelectCentroid.String() != "centroid" {
		t.Fatal("policy strings")
	}
	if Policy(9).String() != "Policy(9)" {
		t.Fatal("unknown policy string")
	}
}

func TestSelectPartitionsInvocations(t *testing.T) {
	f, g := syntheticProfile(4, 25, 2)
	res, err := Select(f, g, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if res.K < 1 || res.K > DefaultMaxK {
		t.Fatalf("K = %d", res.K)
	}
	seen := make(map[int]bool)
	for ci, c := range res.Clusters {
		if c.Size() == 0 {
			t.Fatalf("cluster %d empty", ci)
		}
		repMember := false
		for i := 1; i < len(c.Invocations); i++ {
			if c.Invocations[i] <= c.Invocations[i-1] {
				t.Fatal("cluster members out of chronological order")
			}
		}
		for _, idx := range c.Invocations {
			if seen[idx] {
				t.Fatalf("invocation %d in two clusters", idx)
			}
			seen[idx] = true
			if res.Assignments[idx] != ci {
				t.Fatal("assignment inconsistent with cluster membership")
			}
			if idx == c.Representative {
				repMember = true
			}
		}
		if !repMember {
			t.Fatal("representative not a member of its cluster")
		}
	}
	if len(seen) != len(f) {
		t.Fatalf("clusters cover %d of %d invocations", len(seen), len(f))
	}
}

func TestSelectFirstPicksEarliest(t *testing.T) {
	f, g := syntheticProfile(3, 10, 3)
	res, err := Select(f, g, Options{Selection: SelectFirst, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Clusters {
		if c.Representative != c.Invocations[0] {
			t.Fatalf("first policy picked %d, earliest member is %d", c.Representative, c.Invocations[0])
		}
	}
}

func TestSelectDeterministicForSeed(t *testing.T) {
	f, g := syntheticProfile(3, 20, 4)
	a, err := Select(f, g, Options{Seed: 42, Selection: SelectRandom})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Select(f, g, Options{Seed: 42, Selection: SelectRandom})
	if err != nil {
		t.Fatal(err)
	}
	if a.K != b.K {
		t.Fatal("nondeterministic K")
	}
	for i := range a.Clusters {
		if a.Clusters[i].Representative != b.Clusters[i].Representative {
			t.Fatal("nondeterministic representative")
		}
	}
}

func TestKSelectionUsesGoldenReference(t *testing.T) {
	// With well-separated per-kernel scales and per-kernel constant CPI,
	// enough clusters make the prediction near-exact; PKS must find a k
	// with small error.
	f, g := syntheticProfile(4, 30, 6)
	res, err := Select(f, g, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.KSelectionError > 0.05 {
		t.Fatalf("k-selection error %g, want < 5%% on separable data", res.KSelectionError)
	}
	if res.K < 2 {
		t.Fatalf("separable 4-kernel data should need ≥ 2 clusters, got %d", res.K)
	}
}

func TestPredictCyclesWeightsBySize(t *testing.T) {
	res := &Result{
		K: 2,
		Clusters: []Cluster{
			{Invocations: []int{0, 1, 2}, Representative: 0},
			{Invocations: []int{3}, Representative: 3},
		},
	}
	pred, err := res.PredictCycles(func(i int) (float64, error) {
		return float64(100 * (i + 1)), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := 3*100.0 + 1*400.0; pred != want {
		t.Fatalf("predicted %g, want %g", pred, want)
	}
	if _, err := res.PredictCycles(func(int) (float64, error) { return 0, nil }); err == nil {
		t.Fatal("want error on zero cycles")
	}
	if _, err := res.PredictCycles(func(int) (float64, error) { return 0, fmt.Errorf("x") }); err == nil {
		t.Fatal("want error from source")
	}
	empty := &Result{}
	if _, err := empty.PredictCycles(func(int) (float64, error) { return 1, nil }); err == nil {
		t.Fatal("want error for empty result")
	}
}

func TestSpeedupAndCoV(t *testing.T) {
	res := &Result{
		K: 1,
		Clusters: []Cluster{
			{Invocations: []int{0, 1, 2, 3}, Representative: 0},
		},
	}
	golden := []float64{10, 10, 10, 10}
	sp, err := res.Speedup(golden)
	if err != nil {
		t.Fatal(err)
	}
	if sp != 4 {
		t.Fatalf("speedup = %g", sp)
	}
	cov, err := res.WeightedCycleCoV(golden)
	if err != nil {
		t.Fatal(err)
	}
	if cov != 0 {
		t.Fatalf("CoV of constant cluster = %g", cov)
	}
	// Heterogeneous cluster: CoV of {10, 30} around 20 is 0.5.
	res.Clusters[0].Invocations = []int{0, 1}
	cov, err = res.WeightedCycleCoV([]float64{10, 30})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cov-0.5) > 1e-12 {
		t.Fatalf("CoV = %g, want 0.5", cov)
	}
	if _, err := res.Speedup(nil); err == nil {
		t.Fatal("want error for short golden")
	}
	if _, err := res.WeightedCycleCoV(nil); err == nil {
		t.Fatal("want error for short golden")
	}
}

func TestRepresentativeIndicesSorted(t *testing.T) {
	f, g := syntheticProfile(3, 15, 8)
	res, err := Select(f, g, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	idxs := res.RepresentativeIndices()
	if len(idxs) != res.K {
		t.Fatalf("%d representatives for K=%d", len(idxs), res.K)
	}
	for i := 1; i < len(idxs); i++ {
		if idxs[i] <= idxs[i-1] {
			t.Fatalf("not sorted: %v", idxs)
		}
	}
}

func TestSubsamplingStillCoversAllInvocations(t *testing.T) {
	f, g := syntheticProfile(4, 500, 10) // 2000 invocations
	res, err := Select(f, g, Options{Seed: 3, ClusterSampleCap: 100})
	if err != nil {
		t.Fatal(err)
	}
	covered := 0
	for _, c := range res.Clusters {
		covered += c.Size()
	}
	if covered != len(f) {
		t.Fatalf("subsampled run covers %d of %d invocations", covered, len(f))
	}
}

func TestSingleInvocation(t *testing.T) {
	f, g := syntheticProfile(1, 1, 12)
	res, err := Select(f, g, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 1 || res.Clusters[0].Representative != 0 {
		t.Fatalf("single-invocation result = %+v", res)
	}
	if res.KSelectionError > 1e-12 {
		t.Fatalf("single invocation should predict exactly, err %g", res.KSelectionError)
	}
}

func TestCentroidPolicyPicksCentralMember(t *testing.T) {
	// One tight cluster on a line: centroid member of {0, 10, 20} is 10.
	features := [][]float64{
		make12(0), make12(10), make12(20),
	}
	golden := []float64{100, 100, 100}
	res, err := Select(features, golden, Options{Seed: 7, MaxK: 1, Selection: SelectCentroid})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 1 {
		t.Fatalf("K = %d", res.K)
	}
	if res.Clusters[0].Representative != 1 {
		t.Fatalf("centroid policy picked %d, want 1", res.Clusters[0].Representative)
	}
}

func make12(v float64) []float64 {
	out := make([]float64, cudamodel.NumCharacteristics)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestHierarchicalClusteringOption(t *testing.T) {
	f, g := syntheticProfile(4, 40, 21)
	res, err := Select(f, g, Options{Seed: 3, Clustering: AlgoHierarchical})
	if err != nil {
		t.Fatal(err)
	}
	if res.K < 2 {
		t.Fatalf("separable data should need ≥ 2 clusters, got %d", res.K)
	}
	covered := 0
	for _, c := range res.Clusters {
		covered += c.Size()
	}
	if covered != len(f) {
		t.Fatalf("clusters cover %d of %d", covered, len(f))
	}
	// On cleanly separable data, hierarchical clustering should also find a
	// low-distortion cut.
	if res.KSelectionError > 0.1 {
		t.Fatalf("hierarchical distortion %g on separable data", res.KSelectionError)
	}
}

func TestHierarchicalSampleCapEnforced(t *testing.T) {
	f, g := syntheticProfile(3, 400, 22) // 1200 invocations
	res, err := Select(f, g, Options{Seed: 4, Clustering: AlgoHierarchical})
	if err != nil {
		t.Fatal(err)
	}
	covered := 0
	for _, c := range res.Clusters {
		covered += c.Size()
	}
	if covered != len(f) {
		t.Fatalf("subsampled hierarchical run covers %d of %d", covered, len(f))
	}
}

func TestClusteringAlgoString(t *testing.T) {
	if AlgoKMeans.String() != "kmeans" || AlgoHierarchical.String() != "hierarchical" {
		t.Fatal("algo strings")
	}
	if ClusteringAlgo(9).String() != "ClusteringAlgo(9)" {
		t.Fatal("unknown algo string")
	}
	if _, err := Select([][]float64{make12(1)}, []float64{1}, Options{Clustering: ClusteringAlgo(9)}); err == nil {
		t.Fatal("want error for unknown clustering algorithm")
	}
}
