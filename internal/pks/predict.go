package pks

import (
	"fmt"
	"sort"

	"github.com/gpusampling/sieve/internal/stats"
)

// PredictCycles estimates the application's total cycle count per the PKS
// estimator: the sum over clusters of (cluster size × representative cycle
// count). cycles supplies measured/simulated cycles by invocation index.
func (r *Result) PredictCycles(cycles func(invocationIndex int) (float64, error)) (float64, error) {
	if len(r.Clusters) == 0 {
		return 0, fmt.Errorf("pks: no clusters to predict from")
	}
	var total float64
	for ci := range r.Clusters {
		c := &r.Clusters[ci]
		v, err := cycles(c.Representative)
		if err != nil {
			return 0, fmt.Errorf("pks: cycle source for invocation %d: %w", c.Representative, err)
		}
		if v <= 0 {
			return 0, fmt.Errorf("pks: non-positive cycle count %g for invocation %d", v, c.Representative)
		}
		total += float64(c.Size()) * v
	}
	return total, nil
}

// RepresentativeIndices returns the selected invocation indices, ascending.
func (r *Result) RepresentativeIndices() []int {
	out := make([]int, len(r.Clusters))
	for i := range r.Clusters {
		out[i] = r.Clusters[i].Representative
	}
	sort.Ints(out)
	return out
}

// Speedup returns total golden cycles divided by the representatives'
// cycles — the same simulation-speedup definition used for Sieve
// (Section IV).
func (r *Result) Speedup(goldenCycles []float64) (float64, error) {
	var total, reps float64
	for _, c := range goldenCycles {
		total += c
	}
	for ci := range r.Clusters {
		rep := r.Clusters[ci].Representative
		if rep < 0 || rep >= len(goldenCycles) {
			return 0, fmt.Errorf("pks: representative %d outside golden cycles (%d)", rep, len(goldenCycles))
		}
		reps += goldenCycles[rep]
	}
	if reps == 0 {
		return 0, fmt.Errorf("pks: representatives have zero cycles")
	}
	return total / reps, nil
}

// WeightedCycleCoV returns the invocation-weighted mean coefficient of
// variation of cycle counts within clusters — PKS's side of Fig. 4.
func (r *Result) WeightedCycleCoV(goldenCycles []float64) (float64, error) {
	var num, den float64
	for ci := range r.Clusters {
		c := &r.Clusters[ci]
		var acc stats.Accumulator
		for _, idx := range c.Invocations {
			if idx < 0 || idx >= len(goldenCycles) {
				return 0, fmt.Errorf("pks: invocation %d outside golden cycles (%d)", idx, len(goldenCycles))
			}
			acc.Add(goldenCycles[idx])
		}
		num += acc.CoV() * float64(c.Size())
		den += float64(c.Size())
	}
	if den == 0 {
		return 0, fmt.Errorf("pks: no invocations in clusters")
	}
	return num / den, nil
}
