package profiler

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"github.com/gpusampling/sieve/internal/core"
	"github.com/gpusampling/sieve/internal/cudamodel"
)

// fixedColumns are the non-metric CSV columns, in order.
var fixedColumns = []string{"kernel", "index", "seq", "cta_size"}

// WriteCSV serializes the profile as CSV: a header of fixed columns followed
// by the collected metric names, then one row per record. This matches the
// paper's workflow where "the data is converted into a readable CSV file
// which serves as input to PKS and Sieve".
func (p *Profile) WriteCSV(w io.Writer) error {
	if err := p.Validate(); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	header := append(append([]string{}, fixedColumns...), p.Collected...)
	// Validates metric names and rejects duplicate columns, which would
	// round-trip into a last-one-wins parse.
	_, colIdx, err := parseHeader(header)
	if err != nil {
		return err
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("profiler: write header: %w", err)
	}
	row := make([]string, len(header))
	for _, r := range p.Records {
		row[0] = r.Kernel
		row[1] = strconv.Itoa(r.Index)
		row[2] = strconv.Itoa(r.Seq)
		row[3] = strconv.Itoa(r.CTASize)
		vec := r.Chars.Vector()
		for c, j := range colIdx {
			row[len(fixedColumns)+c] = strconv.FormatFloat(vec[j], 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("profiler: write record %d: %w", r.Index, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// parseHeader validates the fixed columns and maps each metric column to its
// characteristic slot. Duplicate metric columns are rejected: both would
// write the same Characteristics field with last-one-wins semantics,
// silently dropping data.
func parseHeader(header []string) (metrics []string, colIdx []int, err error) {
	if len(header) < len(fixedColumns)+1 {
		return nil, nil, fmt.Errorf("profiler: header has %d columns, want at least %d", len(header), len(fixedColumns)+1)
	}
	for i, want := range fixedColumns {
		if header[i] != want {
			return nil, nil, fmt.Errorf("profiler: column %d is %q, want %q", i, header[i], want)
		}
	}
	metrics = append([]string(nil), header[len(fixedColumns):]...)
	names := cudamodel.CharacteristicNames()
	colIdx = make([]int, 0, len(metrics))
	seen := make(map[string]bool, len(metrics))
	for _, m := range metrics {
		if seen[m] {
			return nil, nil, fmt.Errorf("profiler: duplicate metric column %q", m)
		}
		seen[m] = true
		found := -1
		for j, n := range names {
			if n == m {
				found = j
				break
			}
		}
		if found < 0 {
			return nil, nil, fmt.Errorf("profiler: unknown metric column %q", m)
		}
		colIdx = append(colIdx, found)
	}
	return metrics, colIdx, nil
}

// CSVScanner streams a profile CSV record by record without materializing
// the table — the ingestion front-end for bounded-memory sampling of runs
// with millions of invocations. Usage follows bufio.Scanner:
//
//	sc, err := NewCSVScanner(r)
//	for sc.Next() {
//	    rec := sc.Record()
//	    ...
//	}
//	if err := sc.Err(); err != nil { ... }
type CSVScanner struct {
	cr      *csv.Reader
	metrics []string
	colIdx  []int
	rec     Record
	err     error
	line    int
	n       int
}

// NewCSVScanner reads and validates the header, returning a scanner
// positioned before the first record.
func NewCSVScanner(r io.Reader) (*CSVScanner, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true // rows are parsed into Record immediately
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("profiler: read header: %w", err)
	}
	metrics, colIdx, err := parseHeader(header)
	if err != nil {
		return nil, err
	}
	return &CSVScanner{cr: cr, metrics: metrics, colIdx: colIdx, line: 1}, nil
}

// Collected returns the metric names present in every record.
func (s *CSVScanner) Collected() []string { return s.metrics }

// NumRecords returns the number of records scanned so far.
func (s *CSVScanner) NumRecords() int { return s.n }

// Next advances to the next record. It returns false at end of input or on
// error; Err distinguishes the two.
func (s *CSVScanner) Next() bool {
	if s.err != nil {
		return false
	}
	s.line++
	row, err := s.cr.Read()
	if err == io.EOF {
		return false
	}
	if err != nil {
		s.err = fmt.Errorf("profiler: line %d: %w", s.line, err)
		return false
	}
	rec := Record{Kernel: row[0]}
	if rec.Index, err = strconv.Atoi(row[1]); err != nil {
		s.err = fmt.Errorf("profiler: line %d: bad index: %w", s.line, err)
		return false
	}
	if rec.Seq, err = strconv.Atoi(row[2]); err != nil {
		s.err = fmt.Errorf("profiler: line %d: bad seq: %w", s.line, err)
		return false
	}
	if rec.CTASize, err = strconv.Atoi(row[3]); err != nil {
		s.err = fmt.Errorf("profiler: line %d: bad cta_size: %w", s.line, err)
		return false
	}
	var vec [cudamodel.NumCharacteristics]float64
	for c, j := range s.colIdx {
		v, err := strconv.ParseFloat(row[len(fixedColumns)+c], 64)
		if err != nil {
			s.err = fmt.Errorf("profiler: line %d: bad %s: %w", s.line, s.metrics[c], err)
			return false
		}
		vec[j] = v
	}
	rec.Chars = charsFromVector(vec[:])
	s.rec = rec
	s.n++
	return true
}

// Record returns the record produced by the last successful Next.
func (s *CSVScanner) Record() Record { return s.rec }

// Err returns the first error encountered while scanning, if any.
func (s *CSVScanner) Err() error { return s.err }

// ReadCSVFunc streams a profile CSV, invoking fn once per record, and
// returns the collected metric names. It is the push-style counterpart of
// CSVScanner; an error from fn aborts the scan.
func ReadCSVFunc(r io.Reader, fn func(Record) error) ([]string, error) {
	sc, err := NewCSVScanner(r)
	if err != nil {
		return nil, err
	}
	for sc.Next() {
		if err := fn(sc.Record()); err != nil {
			return sc.Collected(), err
		}
	}
	return sc.Collected(), sc.Err()
}

// ReadCSV parses a profile previously written by WriteCSV, materializing the
// whole table (use CSVScanner or ReadCSVFunc to stream instead). Workload,
// Suite, Tool and WallSeconds are not stored in the CSV and are left for the
// caller to fill in.
func ReadCSV(r io.Reader) (*Profile, error) {
	p := &Profile{}
	collected, err := ReadCSVFunc(r, func(rec Record) error {
		p.Records = append(p.Records, rec)
		return nil
	})
	if err != nil {
		return nil, err
	}
	p.Collected = collected
	if len(p.Records) == 0 {
		// Wraps the sentinel so callers (and the sieved status mapping) can
		// distinguish "well-formed but empty" from malformed CSV.
		return nil, fmt.Errorf("profiler: CSV contains no records: %w", core.ErrEmptyProfile)
	}
	return p, nil
}

// charsFromVector rebuilds a Characteristics struct from a Vector()-ordered
// slice.
func charsFromVector(v []float64) cudamodel.Characteristics {
	return cudamodel.Characteristics{
		CoalescedGlobalLoads:  v[0],
		CoalescedGlobalStores: v[1],
		CoalescedLocalLoads:   v[2],
		ThreadGlobalLoads:     v[3],
		ThreadGlobalStores:    v[4],
		ThreadLocalLoads:      v[5],
		ThreadSharedLoads:     v[6],
		ThreadSharedStores:    v[7],
		ThreadGlobalAtomics:   v[8],
		InstructionCount:      v[9],
		DivergenceEfficiency:  v[10],
		ThreadBlocks:          v[11],
	}
}
