package profiler

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"github.com/gpusampling/sieve/internal/cudamodel"
)

// fixedColumns are the non-metric CSV columns, in order.
var fixedColumns = []string{"kernel", "index", "seq", "cta_size"}

// WriteCSV serializes the profile as CSV: a header of fixed columns followed
// by the collected metric names, then one row per record. This matches the
// paper's workflow where "the data is converted into a readable CSV file
// which serves as input to PKS and Sieve".
func (p *Profile) WriteCSV(w io.Writer) error {
	if err := p.Validate(); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	header := append(append([]string{}, fixedColumns...), p.Collected...)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("profiler: write header: %w", err)
	}
	names := cudamodel.CharacteristicNames()
	colIdx := make([]int, 0, len(p.Collected))
	for _, m := range p.Collected {
		found := -1
		for j, n := range names {
			if n == m {
				found = j
				break
			}
		}
		if found < 0 {
			return fmt.Errorf("profiler: unknown metric %q", m)
		}
		colIdx = append(colIdx, found)
	}
	row := make([]string, len(header))
	for _, r := range p.Records {
		row[0] = r.Kernel
		row[1] = strconv.Itoa(r.Index)
		row[2] = strconv.Itoa(r.Seq)
		row[3] = strconv.Itoa(r.CTASize)
		vec := r.Chars.Vector()
		for c, j := range colIdx {
			row[len(fixedColumns)+c] = strconv.FormatFloat(vec[j], 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("profiler: write record %d: %w", r.Index, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a profile previously written by WriteCSV. Workload, Suite,
// Tool and WallSeconds are not stored in the CSV and are left for the caller
// to fill in.
func ReadCSV(r io.Reader) (*Profile, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("profiler: read header: %w", err)
	}
	if len(header) < len(fixedColumns)+1 {
		return nil, fmt.Errorf("profiler: header has %d columns, want at least %d", len(header), len(fixedColumns)+1)
	}
	for i, want := range fixedColumns {
		if header[i] != want {
			return nil, fmt.Errorf("profiler: column %d is %q, want %q", i, header[i], want)
		}
	}
	metrics := header[len(fixedColumns):]
	names := cudamodel.CharacteristicNames()
	colIdx := make([]int, 0, len(metrics))
	for _, m := range metrics {
		found := -1
		for j, n := range names {
			if n == m {
				found = j
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("profiler: unknown metric column %q", m)
		}
		colIdx = append(colIdx, found)
	}

	p := &Profile{Collected: metrics}
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("profiler: line %d: %w", line, err)
		}
		rec := Record{Kernel: row[0]}
		if rec.Index, err = strconv.Atoi(row[1]); err != nil {
			return nil, fmt.Errorf("profiler: line %d: bad index: %w", line, err)
		}
		if rec.Seq, err = strconv.Atoi(row[2]); err != nil {
			return nil, fmt.Errorf("profiler: line %d: bad seq: %w", line, err)
		}
		if rec.CTASize, err = strconv.Atoi(row[3]); err != nil {
			return nil, fmt.Errorf("profiler: line %d: bad cta_size: %w", line, err)
		}
		vec := make([]float64, cudamodel.NumCharacteristics)
		for c, j := range colIdx {
			v, err := strconv.ParseFloat(row[len(fixedColumns)+c], 64)
			if err != nil {
				return nil, fmt.Errorf("profiler: line %d: bad %s: %w", line, metrics[c], err)
			}
			vec[j] = v
		}
		rec.Chars = charsFromVector(vec)
		p.Records = append(p.Records, rec)
	}
	if len(p.Records) == 0 {
		return nil, fmt.Errorf("profiler: CSV contains no records")
	}
	return p, nil
}

// charsFromVector rebuilds a Characteristics struct from a Vector()-ordered
// slice.
func charsFromVector(v []float64) cudamodel.Characteristics {
	return cudamodel.Characteristics{
		CoalescedGlobalLoads:  v[0],
		CoalescedGlobalStores: v[1],
		CoalescedLocalLoads:   v[2],
		ThreadGlobalLoads:     v[3],
		ThreadGlobalStores:    v[4],
		ThreadLocalLoads:      v[5],
		ThreadSharedLoads:     v[6],
		ThreadSharedStores:    v[7],
		ThreadGlobalAtomics:   v[8],
		InstructionCount:      v[9],
		DivergenceEfficiency:  v[10],
		ThreadBlocks:          v[11],
	}
}
