package profiler

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// TestCSVScannerMatchesReadCSV streams a profile record by record and checks
// it yields exactly what the materializing reader yields.
func TestCSVScannerMatchesReadCSV(t *testing.T) {
	w := testWorkload(t, "dwt2d", 1.0)
	p, err := NewFullProfiler().Profile(w, testHW(t))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	want, err := ReadCSV(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := NewCSVScanner(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sc.Collected(), want.Collected) {
		t.Fatalf("collected %v, want %v", sc.Collected(), want.Collected)
	}
	var got []Record
	for sc.Next() {
		got = append(got, sc.Record())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if sc.NumRecords() != len(want.Records) {
		t.Fatalf("scanned %d records, want %d", sc.NumRecords(), len(want.Records))
	}
	if !reflect.DeepEqual(got, want.Records) {
		t.Fatal("streamed records diverge from materialized records")
	}
}

func TestReadCSVFunc(t *testing.T) {
	const csv = "kernel,index,seq,cta_size,instruction_count\nk,0,0,128,5\nk,1,1,128,7\n"
	var n int
	collected, err := ReadCSVFunc(strings.NewReader(csv), func(rec Record) error {
		n++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || len(collected) != 1 || collected[0] != "instruction_count" {
		t.Fatalf("n=%d collected=%v", n, collected)
	}
	// A callback error aborts the scan.
	boom := fmt.Errorf("stop")
	n = 0
	if _, err := ReadCSVFunc(strings.NewReader(csv), func(Record) error { n++; return boom }); err != boom {
		t.Fatalf("err = %v, want callback error", err)
	}
	if n != 1 {
		t.Fatalf("callback ran %d times after aborting, want 1", n)
	}
}

func TestCSVScannerErrors(t *testing.T) {
	if _, err := NewCSVScanner(strings.NewReader("")); err == nil {
		t.Fatal("want header error for empty input")
	}
	if _, err := NewCSVScanner(strings.NewReader("kernel,index,seq,cta_size,instruction_count,instruction_count\n")); err == nil {
		t.Fatal("want error for duplicate metric columns")
	}
	sc, err := NewCSVScanner(strings.NewReader("kernel,index,seq,cta_size,instruction_count\nk,zap,0,128,5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Next() {
		t.Fatal("Next succeeded on a bad row")
	}
	if sc.Err() == nil {
		t.Fatal("scanner swallowed the row error")
	}
	if sc.Next() {
		t.Fatal("Next kept going after an error")
	}
}

// TestWriteCSVRejectsDuplicateCollected: the writer half of the
// duplicate-column fix — a profile whose Collected list repeats a metric
// would serialize into a CSV the reader (rightly) rejects.
func TestWriteCSVRejectsDuplicateCollected(t *testing.T) {
	w := testWorkload(t, "dwt2d", 1.0)
	p, err := NewInstructionCountProfiler().Profile(w, testHW(t))
	if err != nil {
		t.Fatal(err)
	}
	p.Collected = []string{"instruction_count", "instruction_count"}
	var buf bytes.Buffer
	if err := p.WriteCSV(&buf); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("err = %v, want duplicate-column rejection", err)
	}
}
