package profiler

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"github.com/gpusampling/sieve/internal/cudamodel"
	"github.com/gpusampling/sieve/internal/gpu"
	"github.com/gpusampling/sieve/internal/workloads"
)

// FuzzReadCSV exercises the profile-CSV parser with arbitrary input: it must
// never panic, and any accepted profile must survive a write/read round
// trip once the caller-supplied fields are filled in.
func FuzzReadCSV(f *testing.F) {
	w := testWorkloadForFuzz(f)
	hw := testHWForFuzz(f)
	full, err := NewFullProfiler().Profile(w, hw)
	if err != nil {
		f.Fatal(err)
	}
	var seed bytes.Buffer
	if err := full.WriteCSV(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("")
	f.Add("kernel,index,seq,cta_size,instruction_count\nk,0,0,128,5\n")
	f.Add("kernel,index\nbroken\n")
	// Duplicate metric columns must be rejected, not parsed last-one-wins.
	f.Add("kernel,index,seq,cta_size,instruction_count,instruction_count\nk,0,0,128,5,6\n")
	f.Fuzz(func(t *testing.T, in string) {
		p, err := ReadCSV(strings.NewReader(in))
		if err != nil {
			return
		}
		p.Workload = "fuzz"
		if err := p.Validate(); err != nil {
			// ReadCSV does not enforce full profile validity (indices may be
			// non-chronological in foreign CSVs); it must only parse safely.
			return
		}
		var buf bytes.Buffer
		if err := p.WriteCSV(&buf); err != nil {
			t.Fatalf("accepted profile cannot be rewritten: %v", err)
		}
		if _, err := ReadCSV(&buf); err != nil {
			t.Fatalf("rewritten profile cannot be reread: %v", err)
		}
	})
}

// FuzzCSVScanner checks the streaming reader against the materializing one:
// both must accept/reject the same inputs and, when they accept, produce
// identical record streams — so the bounded-memory path can never silently
// diverge from the reference parse.
func FuzzCSVScanner(f *testing.F) {
	f.Add("kernel,index,seq,cta_size,instruction_count\nk,0,0,128,5\nk,1,1,64,9\n")
	f.Add("")
	f.Add("kernel,index,seq,cta_size,instruction_count,instruction_count\nk,0,0,128,5,6\n")
	f.Fuzz(func(t *testing.T, in string) {
		want, wantErr := ReadCSV(strings.NewReader(in))
		var got []Record
		var gotErr error
		sc, err := NewCSVScanner(strings.NewReader(in))
		if err != nil {
			gotErr = err
		} else {
			for sc.Next() {
				got = append(got, sc.Record())
			}
			gotErr = sc.Err()
			if gotErr == nil && len(got) == 0 {
				gotErr = fmt.Errorf("no records") // ReadCSV rejects empty tables
			}
		}
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("accept/reject divergence: ReadCSV err=%v scanner err=%v", wantErr, gotErr)
		}
		if wantErr == nil && !reflect.DeepEqual(got, want.Records) {
			t.Fatal("streamed records diverge from materialized records")
		}
	})
}

func testWorkloadForFuzz(f *testing.F) *cudamodel.Workload {
	f.Helper()
	spec, err := workloads.ByName("dwt2d")
	if err != nil {
		f.Fatal(err)
	}
	w, err := workloads.Generate(spec, 1.0)
	if err != nil {
		f.Fatal(err)
	}
	return w
}

func testHWForFuzz(f *testing.F) *gpu.Model {
	f.Helper()
	m, err := gpu.NewModel(gpu.Ampere())
	if err != nil {
		f.Fatal(err)
	}
	return m
}
