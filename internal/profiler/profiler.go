// Package profiler models the two profiling toolchains of the paper's
// evaluation and produces the per-invocation profile tables that feed the
// sampling back-ends:
//
//   - FullProfiler stands in for Nsight Compute: it collects all twelve
//     microarchitecture-independent characteristics (Table II) per kernel
//     invocation, at the cost of multiple kernel replays per invocation,
//     save/restore overhead between passes, and a per-invocation overhead
//     that grows super-linearly as more kernels are profiled — the
//     behaviours Section V-C reports.
//   - InstructionCountProfiler stands in for NVBit instrumentation: it
//     collects only the dynamic instruction count (plus kernel name,
//     invocation ID and CTA size), adding a small constant per-instruction
//     slowdown.
//
// Both profilers also model profiling *time*, so the Fig. 7 experiment can
// compare the cost of feeding PKS versus feeding Sieve.
package profiler

import (
	"fmt"

	"github.com/gpusampling/sieve/internal/cudamodel"
	"github.com/gpusampling/sieve/internal/gpu"
)

// Record is one profiled kernel invocation. Metrics that the active profiler
// does not collect are zero; Collected on the owning Profile says which
// fields are meaningful.
type Record struct {
	// Kernel is the kernel name.
	Kernel string
	// Index is the global chronological invocation index.
	Index int
	// Seq is the per-kernel invocation sequence number.
	Seq int
	// CTASize is the thread-block size (threads per CTA).
	CTASize int
	// Chars holds the collected characteristics.
	Chars cudamodel.Characteristics
}

// Profile is the output of one profiling run: a table with one row per
// kernel invocation (Section III-A: "the profile essentially is a big
// table").
type Profile struct {
	// Workload and Suite identify the profiled workload.
	Workload string
	Suite    string
	// Tool names the profiler that produced the table.
	Tool string
	// Collected lists the metric names populated in every record, in
	// cudamodel.CharacteristicNames order for the metrics present.
	Collected []string
	// Records holds one row per invocation, chronological.
	Records []Record
	// WallSeconds is the modeled time the profiling run took.
	WallSeconds float64
}

// NumInvocations returns the number of profiled invocations.
func (p *Profile) NumInvocations() int { return len(p.Records) }

// Validate checks the profile table's structural invariants.
func (p *Profile) Validate() error {
	if p.Workload == "" {
		return fmt.Errorf("profiler: profile has no workload name")
	}
	if len(p.Records) == 0 {
		return fmt.Errorf("profiler: profile of %q has no records", p.Workload)
	}
	if len(p.Collected) == 0 {
		return fmt.Errorf("profiler: profile of %q collected no metrics", p.Workload)
	}
	for i, r := range p.Records {
		if r.Index != i {
			return fmt.Errorf("profiler: record %d has index %d", i, r.Index)
		}
		if r.Kernel == "" {
			return fmt.Errorf("profiler: record %d has no kernel name", i)
		}
		if r.Chars.InstructionCount <= 0 {
			return fmt.Errorf("profiler: record %d has non-positive instruction count", i)
		}
		if r.CTASize <= 0 {
			return fmt.Errorf("profiler: record %d has non-positive CTA size", i)
		}
	}
	return nil
}

// Profiler collects a Profile from a workload executing on a hardware model.
type Profiler interface {
	// Name identifies the tool ("nsight-full", "nvbit-instcount").
	Name() string
	// Profile runs the workload under the profiler on the given hardware
	// and returns the profile table.
	Profile(w *cudamodel.Workload, hw *gpu.Model) (*Profile, error)
}

// --- Full (Nsight-style) profiler ------------------------------------------

// FullProfiler collects all twelve characteristics, like Nsight Compute
// driving PKS.
type FullProfiler struct {
	// ReplayPassesBase is the number of kernel replays needed to collect
	// the twelve metrics for a plain workload (counter multiplexing).
	ReplayPassesBase int
	// ExtraPassesTensor is added for tensor-heavy kernels: MLPerf's larger
	// instruction-type diversity needs more collection passes (the paper's
	// explanation for Fig. 7's larger MLPerf speedups).
	ExtraPassesTensor int
	// SaveRestoreSeconds is the per-pass memory save/restore overhead.
	SaveRestoreSeconds float64
	// PerInvocationSeconds is the fixed tool overhead per profiled
	// invocation (reporting, serialization).
	PerInvocationSeconds float64
	// SuperlinearAt is the profiled-invocation count at which the tool's
	// per-invocation overhead has doubled; Nsight becomes progressively
	// slower as its report database grows.
	SuperlinearAt float64
}

// NewFullProfiler returns a FullProfiler with the calibrated defaults used
// throughout the experiments.
func NewFullProfiler() *FullProfiler {
	return &FullProfiler{
		ReplayPassesBase:     4,
		ExtraPassesTensor:    3,
		SaveRestoreSeconds:   0.012,
		PerInvocationSeconds: 0.003,
		SuperlinearAt:        60000,
	}
}

// Name implements Profiler.
func (f *FullProfiler) Name() string { return "nsight-full" }

// Profile implements Profiler: collects every characteristic for every
// invocation and models the multi-pass replay cost.
func (f *FullProfiler) Profile(w *cudamodel.Workload, hw *gpu.Model) (*Profile, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	p := &Profile{
		Workload:  w.Name,
		Suite:     w.Suite,
		Tool:      f.Name(),
		Collected: cudamodel.CharacteristicNames(),
		Records:   make([]Record, len(w.Invocations)),
	}
	var wall float64
	for i := range w.Invocations {
		inv := &w.Invocations[i]
		p.Records[i] = Record{
			Kernel:  inv.Kernel,
			Index:   inv.Index,
			Seq:     inv.Seq,
			CTASize: inv.CTASize(),
			Chars:   inv.Chars,
		}
		passes := f.ReplayPassesBase
		if inv.Hidden.TensorFraction > 0 {
			passes += f.ExtraPassesTensor
		}
		kernelSeconds := hw.Seconds(hw.Cycles(inv))
		// Growth of the report database slows every subsequent invocation.
		growth := 1 + float64(i)/f.SuperlinearAt
		wall += (kernelSeconds+f.SaveRestoreSeconds)*float64(passes)*growth +
			f.PerInvocationSeconds*growth
	}
	p.WallSeconds = wall
	return p, nil
}

// --- Instruction-count (NVBit-style) profiler -------------------------------

// InstructionCountProfiler collects only the dynamic instruction count, like
// NVBit instrumentation driving Sieve.
type InstructionCountProfiler struct {
	// InstrumentationOverhead is the relative kernel slowdown of counting
	// instructions inline (NVBit-style SASS injection).
	InstrumentationOverhead float64
	// PerInvocationSeconds is the fixed per-launch bookkeeping cost.
	PerInvocationSeconds float64
}

// NewInstructionCountProfiler returns an InstructionCountProfiler with the
// calibrated defaults used throughout the experiments.
func NewInstructionCountProfiler() *InstructionCountProfiler {
	return &InstructionCountProfiler{
		InstrumentationOverhead: 1.0,
		PerInvocationSeconds:    0.001,
	}
}

// Name implements Profiler.
func (n *InstructionCountProfiler) Name() string { return "nvbit-instcount" }

// Profile implements Profiler: records kernel name, invocation ID, CTA size
// and instruction count only (Section III-A), in a single instrumented run.
func (n *InstructionCountProfiler) Profile(w *cudamodel.Workload, hw *gpu.Model) (*Profile, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	p := &Profile{
		Workload:  w.Name,
		Suite:     w.Suite,
		Tool:      n.Name(),
		Collected: []string{"instruction_count"},
		Records:   make([]Record, len(w.Invocations)),
	}
	var wall float64
	for i := range w.Invocations {
		inv := &w.Invocations[i]
		p.Records[i] = Record{
			Kernel:  inv.Kernel,
			Index:   inv.Index,
			Seq:     inv.Seq,
			CTASize: inv.CTASize(),
			Chars:   cudamodel.Characteristics{InstructionCount: inv.Chars.InstructionCount},
		}
		kernelSeconds := hw.Seconds(hw.Cycles(inv))
		wall += kernelSeconds*(1+n.InstrumentationOverhead) + n.PerInvocationSeconds
	}
	p.WallSeconds = wall
	return p, nil
}

// Interface conformance checks.
var (
	_ Profiler = (*FullProfiler)(nil)
	_ Profiler = (*InstructionCountProfiler)(nil)
)
