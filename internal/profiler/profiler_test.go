package profiler

import (
	"bytes"
	"strings"
	"testing"

	"github.com/gpusampling/sieve/internal/cudamodel"
	"github.com/gpusampling/sieve/internal/gpu"
	"github.com/gpusampling/sieve/internal/workloads"
)

func testWorkload(t *testing.T, name string, scale float64) *cudamodel.Workload {
	t.Helper()
	spec, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workloads.Generate(spec, scale)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func testHW(t *testing.T) *gpu.Model {
	t.Helper()
	m, err := gpu.NewModel(gpu.Ampere())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestFullProfilerCollectsEverything(t *testing.T) {
	w := testWorkload(t, "histo", 1)
	p, err := NewFullProfiler().Profile(w, testHW(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Collected) != cudamodel.NumCharacteristics {
		t.Fatalf("collected %d metrics, want %d", len(p.Collected), cudamodel.NumCharacteristics)
	}
	if p.NumInvocations() != w.NumInvocations() {
		t.Fatalf("records %d, invocations %d", p.NumInvocations(), w.NumInvocations())
	}
	for i, r := range p.Records {
		inv := &w.Invocations[i]
		if r.Chars != inv.Chars {
			t.Fatalf("record %d characteristics differ from workload", i)
		}
		if r.Kernel != inv.Kernel || r.Seq != inv.Seq || r.CTASize != inv.CTASize() {
			t.Fatalf("record %d identity mismatch", i)
		}
	}
	if p.WallSeconds <= 0 {
		t.Fatal("profiling must take time")
	}
}

func TestInstructionCountProfilerCollectsOnlyInstructionCount(t *testing.T) {
	w := testWorkload(t, "histo", 1)
	p, err := NewInstructionCountProfiler().Profile(w, testHW(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Collected) != 1 || p.Collected[0] != "instruction_count" {
		t.Fatalf("collected = %v", p.Collected)
	}
	for i, r := range p.Records {
		inv := &w.Invocations[i]
		if r.Chars.InstructionCount != inv.Chars.InstructionCount {
			t.Fatalf("record %d instruction count mismatch", i)
		}
		// All other metrics must be zero: the tool does not see them.
		if r.Chars.CoalescedGlobalLoads != 0 || r.Chars.DivergenceEfficiency != 0 ||
			r.Chars.ThreadBlocks != 0 || r.Chars.ThreadSharedLoads != 0 {
			t.Fatalf("record %d leaked uncollected metrics", i)
		}
	}
}

func TestFullProfilingIsSlowerThanInstructionCount(t *testing.T) {
	w := testWorkload(t, "gru", 0.01)
	hw := testHW(t)
	full, err := NewFullProfiler().Profile(w, hw)
	if err != nil {
		t.Fatal(err)
	}
	ic, err := NewInstructionCountProfiler().Profile(w, hw)
	if err != nil {
		t.Fatal(err)
	}
	if full.WallSeconds <= ic.WallSeconds {
		t.Fatalf("full profiling (%gs) should cost more than instruction counting (%gs)",
			full.WallSeconds, ic.WallSeconds)
	}
	if full.WallSeconds/ic.WallSeconds < 2 {
		t.Fatalf("full/instcount ratio %g implausibly small", full.WallSeconds/ic.WallSeconds)
	}
}

func TestTensorWorkloadsCostMoreToProfileFully(t *testing.T) {
	// The profiling-speedup gap must widen for MLPerf (tensor-heavy) versus
	// Cactus at comparable sizes — the paper's Fig. 7 observation.
	hw := testHW(t)
	cactus := testWorkload(t, "gru", 0.005)
	ml := testWorkload(t, "bert", 0.005)

	ratio := func(w *cudamodel.Workload) float64 {
		full, err := NewFullProfiler().Profile(w, hw)
		if err != nil {
			t.Fatal(err)
		}
		ic, err := NewInstructionCountProfiler().Profile(w, hw)
		if err != nil {
			t.Fatal(err)
		}
		return full.WallSeconds / ic.WallSeconds
	}
	if rc, rm := ratio(cactus), ratio(ml); rm <= rc {
		t.Fatalf("MLPerf profiling ratio %g should exceed Cactus ratio %g", rm, rc)
	}
}

func TestSuperlinearGrowth(t *testing.T) {
	// Doubling the invocation count must more than double full-profiling
	// time (Nsight gets slower as it profiles more kernels).
	hw := testHW(t)
	small := testWorkload(t, "gru", 0.01)
	large := testWorkload(t, "gru", 0.02)
	f := NewFullProfiler()
	ps, err := f.Profile(small, hw)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := f.Profile(large, hw)
	if err != nil {
		t.Fatal(err)
	}
	nRatio := float64(pl.NumInvocations()) / float64(ps.NumInvocations())
	tRatio := pl.WallSeconds / ps.WallSeconds
	if tRatio <= nRatio {
		t.Fatalf("profiling time ratio %g not super-linear in invocation ratio %g", tRatio, nRatio)
	}
}

func TestProfileValidateRejections(t *testing.T) {
	valid := func() *Profile {
		return &Profile{
			Workload:  "w",
			Collected: []string{"instruction_count"},
			Records: []Record{{
				Kernel: "k", Index: 0, CTASize: 128,
				Chars: cudamodel.Characteristics{InstructionCount: 10},
			}},
		}
	}
	cases := []struct {
		name   string
		mutate func(*Profile)
	}{
		{"no workload", func(p *Profile) { p.Workload = "" }},
		{"no records", func(p *Profile) { p.Records = nil }},
		{"no metrics", func(p *Profile) { p.Collected = nil }},
		{"bad index", func(p *Profile) { p.Records[0].Index = 3 }},
		{"no kernel", func(p *Profile) { p.Records[0].Kernel = "" }},
		{"zero instructions", func(p *Profile) { p.Records[0].Chars.InstructionCount = 0 }},
		{"zero CTA", func(p *Profile) { p.Records[0].CTASize = 0 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := valid()
			c.mutate(p)
			if err := p.Validate(); err == nil {
				t.Fatal("want validation error")
			}
		})
	}
	if err := valid().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCSVRoundTripFull(t *testing.T) {
	w := testWorkload(t, "dwt2d", 1)
	p, err := NewFullProfiler().Profile(w, testHW(t))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(p.Records) {
		t.Fatalf("round trip lost records: %d vs %d", len(got.Records), len(p.Records))
	}
	for i := range p.Records {
		if got.Records[i] != p.Records[i] {
			t.Fatalf("record %d changed in round trip:\n got %+v\nwant %+v", i, got.Records[i], p.Records[i])
		}
	}
	if len(got.Collected) != len(p.Collected) {
		t.Fatal("collected metrics lost")
	}
}

func TestCSVRoundTripInstructionCount(t *testing.T) {
	w := testWorkload(t, "dwt2d", 1)
	p, err := NewInstructionCountProfiler().Profile(w, testHW(t))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Collected) != 1 || got.Collected[0] != "instruction_count" {
		t.Fatalf("collected = %v", got.Collected)
	}
	for i := range p.Records {
		if got.Records[i].Chars.InstructionCount != p.Records[i].Chars.InstructionCount {
			t.Fatalf("record %d instruction count changed", i)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"too few columns", "kernel,index\nk,0\n"},
		{"wrong fixed column", "kernel,index,seq,block,instruction_count\n"},
		{"unknown metric", "kernel,index,seq,cta_size,warp_count\nk,0,0,128,5\n"},
		{"duplicate metric column", "kernel,index,seq,cta_size,instruction_count,instruction_count\nk,0,0,128,5,6\n"},
		{"bad index", "kernel,index,seq,cta_size,instruction_count\nk,x,0,128,5\n"},
		{"bad seq", "kernel,index,seq,cta_size,instruction_count\nk,0,x,128,5\n"},
		{"bad cta", "kernel,index,seq,cta_size,instruction_count\nk,0,0,x,5\n"},
		{"bad metric value", "kernel,index,seq,cta_size,instruction_count\nk,0,0,128,zap\n"},
		{"no records", "kernel,index,seq,cta_size,instruction_count\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(c.in)); err == nil {
				t.Fatal("want error")
			}
		})
	}
}

func TestWriteCSVRejectsInvalidProfile(t *testing.T) {
	p := &Profile{}
	var buf bytes.Buffer
	if err := p.WriteCSV(&buf); err == nil {
		t.Fatal("want error for invalid profile")
	}
}

func TestProfilerNames(t *testing.T) {
	if NewFullProfiler().Name() != "nsight-full" {
		t.Fatal("full profiler name")
	}
	if NewInstructionCountProfiler().Name() != "nvbit-instcount" {
		t.Fatal("instruction-count profiler name")
	}
}
