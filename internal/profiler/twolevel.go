package profiler

import (
	"fmt"

	"github.com/gpusampling/sieve/internal/cudamodel"
	"github.com/gpusampling/sieve/internal/gpu"
)

// TwoLevelProfiler is the profiling-cost mitigation Baddouh et al. propose
// for PKS and the Sieve paper describes in Section II-B: detailed 12-metric
// profiling for a first batch of kernel invocations, followed by low-overhead
// profiling that collects only kernel names and launch dimensions for the
// remainder. Characteristics for the cheap remainder are approximated from
// the detailed batch: each later invocation inherits the mean characteristics
// observed for its (kernel, CTA size) pair, scaled to its launch size.
//
// The approximation is exactly the weakness the paper exploits: beyond the
// detailed batch, the profile no longer reflects per-invocation behaviour.
type TwoLevelProfiler struct {
	// DetailedBatch is the number of leading invocations profiled in full.
	DetailedBatch int
	// Full profiles the detailed batch.
	Full *FullProfiler
	// LightPerInvocationSeconds is the cost of recording a name and launch
	// dims for one invocation.
	LightPerInvocationSeconds float64
}

// NewTwoLevelProfiler returns a TwoLevelProfiler with the calibrated
// defaults used in the experiments.
func NewTwoLevelProfiler(detailedBatch int) *TwoLevelProfiler {
	if detailedBatch <= 0 {
		detailedBatch = 2000
	}
	return &TwoLevelProfiler{
		DetailedBatch:             detailedBatch,
		Full:                      NewFullProfiler(),
		LightPerInvocationSeconds: 0.0002,
	}
}

// Name implements Profiler.
func (t *TwoLevelProfiler) Name() string { return "nsight-two-level" }

// Profile implements Profiler.
func (t *TwoLevelProfiler) Profile(w *cudamodel.Workload, hw *gpu.Model) (*Profile, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if t.DetailedBatch >= len(w.Invocations) {
		return t.Full.Profile(w, hw)
	}

	// Detailed batch: real characteristics, Nsight cost model.
	p := &Profile{
		Workload:  w.Name,
		Suite:     w.Suite,
		Tool:      t.Name(),
		Collected: cudamodel.CharacteristicNames(),
		Records:   make([]Record, len(w.Invocations)),
	}
	type key struct {
		kernel string
		cta    int
	}
	sums := make(map[key]*charAccumulator)
	var wall float64
	for i := 0; i < t.DetailedBatch; i++ {
		inv := &w.Invocations[i]
		p.Records[i] = Record{
			Kernel:  inv.Kernel,
			Index:   inv.Index,
			Seq:     inv.Seq,
			CTASize: inv.CTASize(),
			Chars:   inv.Chars,
		}
		passes := t.Full.ReplayPassesBase
		if inv.Hidden.TensorFraction > 0 {
			passes += t.Full.ExtraPassesTensor
		}
		growth := 1 + float64(i)/t.Full.SuperlinearAt
		wall += (hw.Seconds(hw.Cycles(inv))+t.Full.SaveRestoreSeconds)*float64(passes)*growth +
			t.Full.PerInvocationSeconds*growth
		k := key{inv.Kernel, inv.CTASize()}
		acc, ok := sums[k]
		if !ok {
			acc = &charAccumulator{}
			sums[k] = acc
		}
		acc.add(&inv.Chars)
	}
	// Fallback pools per kernel (any CTA size) for pairs unseen in the
	// detailed batch.
	kernelSums := make(map[string]*charAccumulator)
	for k, acc := range sums {
		ka, ok := kernelSums[k.kernel]
		if !ok {
			ka = &charAccumulator{}
			kernelSums[k.kernel] = ka
		}
		ka.merge(acc)
	}

	// Light remainder: name + launch dims only; characteristics inherited
	// from the detailed batch, scaled by launch size.
	for i := t.DetailedBatch; i < len(w.Invocations); i++ {
		inv := &w.Invocations[i]
		rec := Record{
			Kernel:  inv.Kernel,
			Index:   inv.Index,
			Seq:     inv.Seq,
			CTASize: inv.CTASize(),
		}
		acc := sums[key{inv.Kernel, inv.CTASize()}]
		if acc == nil {
			acc = kernelSums[inv.Kernel]
		}
		if acc == nil {
			return nil, fmt.Errorf("profiler: two-level: kernel %q never appeared in the detailed batch", inv.Kernel)
		}
		mean := acc.mean()
		// Scale work-proportional counters by the launch-size ratio — the
		// only size signal the light pass records.
		ratio := float64(inv.Grid.Count()) / mean.ThreadBlocks
		if mean.ThreadBlocks == 0 || ratio <= 0 {
			ratio = 1
		}
		rec.Chars = scaleCharacteristics(mean, ratio)
		rec.Chars.ThreadBlocks = float64(inv.Grid.Count())
		p.Records[i] = rec
		wall += t.LightPerInvocationSeconds + hw.Seconds(hw.Cycles(inv))*0.02
	}
	p.WallSeconds = wall
	return p, nil
}

// charAccumulator averages characteristic vectors.
type charAccumulator struct {
	n   int
	sum [cudamodel.NumCharacteristics]float64
}

func (a *charAccumulator) add(c *cudamodel.Characteristics) {
	a.n++
	for i, v := range c.Vector() {
		a.sum[i] += v
	}
}

func (a *charAccumulator) merge(b *charAccumulator) {
	a.n += b.n
	for i := range a.sum {
		a.sum[i] += b.sum[i]
	}
}

func (a *charAccumulator) mean() cudamodel.Characteristics {
	v := make([]float64, cudamodel.NumCharacteristics)
	for i := range v {
		v[i] = a.sum[i] / float64(a.n)
	}
	return cudamodel.Characteristics{
		CoalescedGlobalLoads:  v[0],
		CoalescedGlobalStores: v[1],
		CoalescedLocalLoads:   v[2],
		ThreadGlobalLoads:     v[3],
		ThreadGlobalStores:    v[4],
		ThreadLocalLoads:      v[5],
		ThreadSharedLoads:     v[6],
		ThreadSharedStores:    v[7],
		ThreadGlobalAtomics:   v[8],
		InstructionCount:      v[9],
		DivergenceEfficiency:  v[10],
		ThreadBlocks:          v[11],
	}
}

// scaleCharacteristics multiplies the work-proportional counters by ratio,
// leaving the intensive metrics (divergence efficiency) untouched.
func scaleCharacteristics(c cudamodel.Characteristics, ratio float64) cudamodel.Characteristics {
	c.CoalescedGlobalLoads *= ratio
	c.CoalescedGlobalStores *= ratio
	c.CoalescedLocalLoads *= ratio
	c.ThreadGlobalLoads *= ratio
	c.ThreadGlobalStores *= ratio
	c.ThreadLocalLoads *= ratio
	c.ThreadSharedLoads *= ratio
	c.ThreadSharedStores *= ratio
	c.ThreadGlobalAtomics *= ratio
	c.InstructionCount *= ratio
	c.ThreadBlocks *= ratio
	return c
}

var _ Profiler = (*TwoLevelProfiler)(nil)
