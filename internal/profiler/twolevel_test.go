package profiler

import (
	"testing"

	"github.com/gpusampling/sieve/internal/cudamodel"
)

func TestTwoLevelDefaults(t *testing.T) {
	p := NewTwoLevelProfiler(0)
	if p.DetailedBatch <= 0 || p.Full == nil || p.LightPerInvocationSeconds <= 0 {
		t.Fatalf("defaults = %+v", p)
	}
	if p.Name() != "nsight-two-level" {
		t.Fatal("name")
	}
}

func TestTwoLevelFallsBackToFullForSmallWorkloads(t *testing.T) {
	w := testWorkload(t, "dwt2d", 1) // 10 invocations
	hw := testHW(t)
	two, err := NewTwoLevelProfiler(100).Profile(w, hw)
	if err != nil {
		t.Fatal(err)
	}
	full, err := NewFullProfiler().Profile(w, hw)
	if err != nil {
		t.Fatal(err)
	}
	for i := range full.Records {
		if two.Records[i].Chars != full.Records[i].Chars {
			t.Fatal("small workload should be fully profiled")
		}
	}
}

func TestTwoLevelDetailedBatchIsExact(t *testing.T) {
	w := testWorkload(t, "gru", 0.02)
	hw := testHW(t)
	batch := 200
	p, err := NewTwoLevelProfiler(batch).Profile(w, hw)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < batch; i++ {
		if p.Records[i].Chars != w.Invocations[i].Chars {
			t.Fatalf("detailed record %d not exact", i)
		}
	}
}

func TestTwoLevelRemainderIsApproximated(t *testing.T) {
	w := testWorkload(t, "gru", 0.02)
	hw := testHW(t)
	batch := 200
	p, err := NewTwoLevelProfiler(batch).Profile(w, hw)
	if err != nil {
		t.Fatal(err)
	}
	// Remainder records: identity and launch dims are real; instruction
	// counts are approximations that should sit near — but generally not
	// exactly at — the true values.
	approximated := 0
	for i := batch; i < len(p.Records); i++ {
		rec := p.Records[i]
		inv := &w.Invocations[i]
		if rec.Kernel != inv.Kernel || rec.CTASize != inv.CTASize() {
			t.Fatalf("record %d lost identity", i)
		}
		if rec.Chars.ThreadBlocks != float64(inv.Grid.Count()) {
			t.Fatalf("record %d: ThreadBlocks %g, want grid %d", i, rec.Chars.ThreadBlocks, inv.Grid.Count())
		}
		if rec.Chars.InstructionCount <= 0 {
			t.Fatalf("record %d: non-positive approximated instructions", i)
		}
		ratio := rec.Chars.InstructionCount / inv.Chars.InstructionCount
		if ratio < 0.2 || ratio > 5 {
			t.Fatalf("record %d: approximation off by %gx", i, ratio)
		}
		if rec.Chars != inv.Chars {
			approximated++
		}
	}
	if approximated == 0 {
		t.Fatal("remainder should be approximated, not copied")
	}
}

func TestTwoLevelIsCheaperThanFull(t *testing.T) {
	w := testWorkload(t, "lmc", 0.01)
	hw := testHW(t)
	full, err := NewFullProfiler().Profile(w, hw)
	if err != nil {
		t.Fatal(err)
	}
	two, err := NewTwoLevelProfiler(300).Profile(w, hw)
	if err != nil {
		t.Fatal(err)
	}
	if two.WallSeconds >= full.WallSeconds {
		t.Fatalf("two-level (%gs) should be cheaper than full (%gs)", two.WallSeconds, full.WallSeconds)
	}
	// But still more expensive than pure instruction counting.
	ic, err := NewInstructionCountProfiler().Profile(w, hw)
	if err != nil {
		t.Fatal(err)
	}
	if two.WallSeconds <= ic.WallSeconds {
		t.Fatalf("two-level (%gs) should still cost more than instruction counting (%gs)",
			two.WallSeconds, ic.WallSeconds)
	}
}

func TestTwoLevelRejectsInvalidWorkload(t *testing.T) {
	hw := testHW(t)
	if _, err := NewTwoLevelProfiler(10).Profile(&cudamodel.Workload{}, hw); err == nil {
		t.Fatal("want error for invalid workload")
	}
}
