package sampler

import (
	"context"
	"fmt"

	"github.com/gpusampling/sieve/internal/core"
	"github.com/gpusampling/sieve/internal/pks"
)

// MethodPKS names the Principal Kernel Selection baseline strategy.
const MethodPKS = "pks"

// pksSampler adapts the PKS baseline (12-characteristic PCA + k-means sweep
// calibrated against golden cycles) to the Sampler interface. The selection
// is exactly pks.Select's — same clusters, same representatives, pinned by
// tests — re-expressed as a core plan: one stratum per cluster (synthetic
// "pks-cluster-NNN" labels, since clusters span kernels) with the
// CountWeighted flag set so Predict reproduces the PKS estimator
// (Σ cluster size × representative cycles) rather than Sieve's
// instruction-share harmonic mean.
type pksSampler struct{}

func (pksSampler) Name() string { return MethodPKS }

func (pksSampler) Plan(ctx context.Context, p *Profile, opts Options) (*core.Result, error) {
	opts, err := opts.WithDefaults()
	if err != nil {
		return nil, err
	}
	if len(p.Features) != len(p.Rows) {
		return nil, fmt.Errorf("pks needs one feature vector per profile row (%d features for %d rows); feature vectors come from the full profiler, so run pks in workload mode", len(p.Features), len(p.Rows))
	}
	if len(p.GoldenCycles) != len(p.Rows) {
		return nil, fmt.Errorf("pks needs one golden cycle count per profile row (%d for %d rows); PKS calibrates its k sweep against a measured reference", len(p.GoldenCycles), len(p.Rows))
	}
	sel, err := pks.SelectContext(ctx, p.Features, p.GoldenCycles, opts.PKS)
	if err != nil {
		return nil, err
	}
	specs := make([]core.StratumSpec, len(sel.Clusters))
	for ci := range sel.Clusters {
		c := &sel.Clusters[ci]
		members := make([]int, len(c.Invocations))
		for j, pos := range c.Invocations {
			if pos < 0 || pos >= len(p.Rows) {
				return nil, fmt.Errorf("pks cluster %d references row %d outside the %d-row profile", ci, pos, len(p.Rows))
			}
			members[j] = p.Rows[pos].Index
		}
		tier := core.Tier2
		if len(members) == 1 {
			tier = core.Tier1
		}
		specs[ci] = core.StratumSpec{
			Kernel:         fmt.Sprintf("pks-cluster-%03d", ci),
			Tier:           tier,
			Members:        members,
			Representative: p.Rows[c.Representative].Index,
		}
	}
	res, err := core.Assemble(p.Rows, specs, opts.Core.Theta)
	if err != nil {
		return nil, err
	}
	res.Method = MethodPKS
	res.CountWeighted = true
	return res, nil
}

func init() {
	Register(MethodPKS, func() Sampler { return pksSampler{} })
}
