// Package rss implements ranked-set sampling with repeated subsampling, in
// the style of the NVIDIA CPU-sampling work (*CPU Simulation with Ranked Set
// Sampling and Repeated Subsampling*). Within each base stratum the
// representative is chosen by a ranked-set draw — m seeded candidates are
// ranked by instruction count and the median rank is selected, which
// concentrates selection on centrally representative invocations without
// measuring the whole stratum — and the whole selection is then repeated R
// times under derived seeds. The spread of the R resampled estimates yields
// a confidence interval on the plan's relative estimation error, attached to
// the plan as core.ErrorInterval: an error bar instead of a single point
// estimate, with width shrinking as 1/√R.
//
// Every draw derives deterministically from Options.Seed, the stratum
// position and the resample number, so the same seed produces a
// byte-identical plan and interval.
package rss

import (
	"context"
	"math"
	"math/rand"
	"sort"

	"github.com/gpusampling/sieve/internal/core"
	"github.com/gpusampling/sieve/internal/sampler"
	"github.com/gpusampling/sieve/internal/stats"
)

// Method is the registry name.
const Method = "rss"

type rankedSet struct{}

func (rankedSet) Name() string { return Method }

// subSeed mixes the run seed with the stratum position and resample number
// (splitmix64-style finalizer) so every draw has an independent,
// reproducible stream. Resample 0 is the plan's own selection.
func subSeed(seed int64, stratum, resample int) int64 {
	z := uint64(seed) + uint64(stratum+1)*0x9E3779B97F4A7C15 + uint64(resample)*0xBF58476D1CE4E5B9
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z >> 1)
}

// rankedPick runs one ranked-set draw: up to m distinct seeded candidates
// from the stratum, ranked by (instruction count, index), median rank wins.
func rankedPick(rng *rand.Rand, members []int, rowByIndex map[int]core.InvocationProfile, m int) int {
	n := len(members)
	if m > n {
		m = n
	}
	pool := append([]int(nil), members...)
	cand := make([]core.InvocationProfile, m)
	for i := 0; i < m; i++ {
		j := i + rng.Intn(n-i)
		pool[i], pool[j] = pool[j], pool[i]
		cand[i] = rowByIndex[pool[i]]
	}
	sort.Slice(cand, func(a, b int) bool {
		if cand[a].InstructionCount != cand[b].InstructionCount {
			return cand[a].InstructionCount < cand[b].InstructionCount
		}
		return cand[a].Index < cand[b].Index
	})
	return cand[(m-1)/2].Index
}

// Plan stratifies with the base Sieve pipeline, replaces each stratum's
// representative with a ranked-set selection, and attaches the
// repeated-subsampling error interval.
func (rankedSet) Plan(ctx context.Context, p *sampler.Profile, opts sampler.Options) (*core.Result, error) {
	opts, err := opts.WithDefaults()
	if err != nil {
		return nil, err
	}
	base, err := core.StratifyContext(ctx, p.Rows, opts.Core)
	if err != nil {
		return nil, err
	}
	rowByIndex := make(map[int]core.InvocationProfile, len(p.Rows))
	for _, r := range p.Rows {
		rowByIndex[r.Index] = r
	}

	specs := make([]core.StratumSpec, len(base.Strata))
	for h := range base.Strata {
		s := &base.Strata[h]
		rng := rand.New(rand.NewSource(subSeed(opts.Seed, h, 0)))
		specs[h] = core.StratumSpec{
			Kernel:         s.Kernel,
			Tier:           s.Tier,
			Members:        append([]int(nil), s.Invocations...),
			Representative: rankedPick(rng, s.Invocations, rowByIndex, opts.SetSize),
		}
	}
	res, err := core.Assemble(p.Rows, specs, base.Theta)
	if err != nil {
		return nil, err
	}
	res.Method = Method

	// Repeated subsampling: rerun the ranked-set selection R times under
	// derived seeds and estimate total instructions from each selection
	// (count-expansion: Σ stratum size × selected count). The signed
	// relative errors of the R estimates against the known total give the
	// interval — mean, standard error s/√R, and a ±2·stderr band.
	errs := make([]float64, opts.Resamples)
	for r := 1; r <= opts.Resamples; r++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var est float64
		for h := range base.Strata {
			s := &base.Strata[h]
			rng := rand.New(rand.NewSource(subSeed(opts.Seed, h, r)))
			rep := rankedPick(rng, s.Invocations, rowByIndex, opts.SetSize)
			est += float64(len(s.Invocations)) * rowByIndex[rep].InstructionCount
		}
		errs[r-1] = (est - base.TotalInstructions) / base.TotalInstructions
	}
	mean := stats.Mean(errs)
	stderr := stats.StdDev(errs) / math.Sqrt(float64(opts.Resamples))
	res.Interval = &core.ErrorInterval{
		Mean:      mean,
		StdErr:    stderr,
		Low:       mean - 2*stderr,
		High:      mean + 2*stderr,
		Resamples: opts.Resamples,
	}
	return res, nil
}

// EstimateInterval implements sampler.ErrorEstimator by building the plan
// and returning its attached interval.
func (r rankedSet) EstimateInterval(ctx context.Context, p *sampler.Profile, opts sampler.Options) (*core.ErrorInterval, error) {
	res, err := r.Plan(ctx, p, opts)
	if err != nil {
		return nil, err
	}
	return res.Interval, nil
}

func init() {
	sampler.Register(Method, func() sampler.Sampler { return rankedSet{} })
}
