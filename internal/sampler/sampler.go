// Package sampler is the pluggable sampling-methodology subsystem: a
// Sampler interface, a registry of named strategies, and the option/profile
// types every strategy shares.
//
// The paper's stratified sampler (core.Stratify) and the PKS baseline are
// the first two registered strategies; internal/sampler/twophase and
// internal/sampler/rss add the two NVIDIA CPU-sampling methodologies from
// the related work (two-phase stratified sampling with Neyman allocation,
// and ranked-set sampling with repeated subsampling). Adding a methodology
// is a one-package change: implement Sampler, call Register from init, and
// blank-import the package — the API service, CLIs, experiments tables and
// load harness pick the new method up by name.
package sampler

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"github.com/gpusampling/sieve/internal/core"
	"github.com/gpusampling/sieve/internal/obs"
	"github.com/gpusampling/sieve/internal/pks"
)

// Profile is the input every strategy plans from. Rows is always required;
// Features and GoldenCycles are optional side channels that feature-based
// methodologies (PKS) consume and instruction-count-only methodologies
// ignore.
type Profile struct {
	// Rows is the per-invocation instruction-count profile, chronological.
	Rows []core.InvocationProfile
	// Features holds one characteristic vector per row (chronological,
	// parallel to Rows) for feature-clustering methodologies. Nil for
	// methods that don't need it.
	Features [][]float64
	// GoldenCycles holds the measured reference cycle count per row
	// (positional, parallel to Rows) for golden-calibrated methodologies.
	// Nil for methods that don't need it.
	GoldenCycles []float64
}

// Default knob values shared by the bundled strategies.
const (
	// DefaultSeed drives every seeded draw (pilot subsampling, ranked-set
	// draws) when Options.Seed is zero.
	DefaultSeed = 1
	// DefaultPilotFraction is the share of each base stratum the two-phase
	// pilot measures.
	DefaultPilotFraction = 0.2
	// DefaultSetSize is the ranked-set draw size m.
	DefaultSetSize = 5
	// DefaultResamples is the repeated-subsampling count R.
	DefaultResamples = 16
)

// Options configures a strategy run. Core carries the knobs shared with the
// default sampler (θ, selection policy, splitter, parallelism); the rest are
// methodology-specific and ignored by strategies that don't use them.
type Options struct {
	// Core holds the stratification options. Core.Method is ignored — the
	// methodology is chosen by which Sampler runs, not by this field — and
	// cleared before the options reach core.Stratify.
	Core core.Options
	// Seed drives every randomized draw a strategy makes (two-phase pilot
	// subsampling, ranked-set draws, resampling). Same seed ⇒ byte-identical
	// plan. DefaultSeed if zero.
	Seed int64
	// PilotFraction is the share of each base stratum the two-phase pilot
	// subsample measures (DefaultPilotFraction if zero; must be in (0, 1]).
	PilotFraction float64
	// Budget is the two-phase second-stage representative budget distributed
	// by Neyman allocation. Zero lets the strategy pick its default (twice
	// the base stratum count); negative is an error.
	Budget int
	// SetSize is the ranked-set draw size m (DefaultSetSize if zero).
	SetSize int
	// Resamples is the repeated-subsampling count R behind rss error
	// intervals (DefaultResamples if zero; minimum 2).
	Resamples int
	// PKS carries the PKS baseline's own options, forwarded verbatim to
	// pks.Select — a zero value keeps pks's historical defaults (including
	// its zero seed), so registry-built PKS plans match the legacy call
	// paths exactly.
	PKS pks.Options
}

// WithDefaults validates the options and fills defaults. Strategies call it
// at the top of Plan, so callers may pass a zero Options.
func (o Options) WithDefaults() (Options, error) {
	o.Core.Method = ""
	if o.Core.Theta == 0 && !o.Core.ThetaSet {
		o.Core.Theta = core.DefaultTheta
	}
	if o.Seed == 0 {
		o.Seed = DefaultSeed
	}
	if o.PilotFraction == 0 {
		o.PilotFraction = DefaultPilotFraction
	}
	if o.PilotFraction < 0 || o.PilotFraction > 1 {
		return o, fmt.Errorf("sampler: pilot fraction %g outside (0, 1]", o.PilotFraction)
	}
	if o.Budget < 0 {
		return o, fmt.Errorf("sampler: negative budget %d", o.Budget)
	}
	if o.SetSize == 0 {
		o.SetSize = DefaultSetSize
	}
	if o.SetSize < 1 {
		return o, fmt.Errorf("sampler: set size %d < 1", o.SetSize)
	}
	if o.Resamples == 0 {
		o.Resamples = DefaultResamples
	}
	if o.Resamples < 2 {
		return o, fmt.Errorf("sampler: resamples %d < 2 (an interval needs at least two resamples)", o.Resamples)
	}
	return o, nil
}

// Sampler is one sampling methodology: it turns a profile into a complete,
// predictable sampling plan. Implementations must be deterministic — the
// same profile, options and seed produce a byte-identical plan.
type Sampler interface {
	// Name returns the registry name clients select the method by.
	Name() string
	// Plan builds the sampling plan.
	Plan(ctx context.Context, p *Profile, opts Options) (*core.Result, error)
}

// ErrorEstimator is optionally implemented by strategies that can quantify
// their own estimation uncertainty (resampling-based intervals, pilot
// variance analysis) without the caller building a full plan.
type ErrorEstimator interface {
	EstimateInterval(ctx context.Context, p *Profile, opts Options) (*core.ErrorInterval, error)
}

// Factory constructs a strategy instance.
type Factory func() Sampler

var (
	regMu    sync.RWMutex
	registry = map[string]Factory{}
)

// Register adds a strategy under its name. It is called from package init
// functions; registering an empty or duplicate name is a programming error
// and panics.
func Register(name string, f Factory) {
	if name == "" || f == nil {
		panic("sampler: Register called with empty name or nil factory")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("sampler: duplicate registration of method %q", name))
	}
	registry[name] = f
}

// Canonical maps the empty method name to the default method ("sieve") and
// returns every other name unchanged.
func Canonical(name string) string {
	if name == "" {
		return core.MethodSieve
	}
	return name
}

// New returns a fresh instance of the named strategy ("" selects the
// default). Unknown names report the registered alternatives.
func New(name string) (Sampler, error) {
	name = Canonical(name)
	regMu.RLock()
	f, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("sampler: unknown method %q (registered: %v)", name, Names())
	}
	return f(), nil
}

// Names returns every registered method name, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Run resolves the named strategy and builds its plan under a sampler.plan
// observability span (method, rows and strata attributes). It is the entry
// point the root API, the service and the experiments harness share.
func Run(ctx context.Context, method string, p *Profile, opts Options) (*core.Result, error) {
	s, err := New(method)
	if err != nil {
		return nil, err
	}
	ctx, sp := obs.StartSpan(ctx, "sampler.plan")
	defer sp.End()
	if sp.Active() {
		sp.SetAttr("method", s.Name())
		sp.SetAttr("rows", len(p.Rows))
	}
	res, err := s.Plan(ctx, p, opts)
	if err != nil {
		return nil, fmt.Errorf("sampler: %s: %w", s.Name(), err)
	}
	if sp.Active() {
		sp.SetAttr("strata", len(res.Strata))
	}
	return res, nil
}
