package sampler_test

import (
	"context"
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"github.com/gpusampling/sieve/internal/core"
	"github.com/gpusampling/sieve/internal/gpu"
	"github.com/gpusampling/sieve/internal/pks"
	"github.com/gpusampling/sieve/internal/profiler"
	"github.com/gpusampling/sieve/internal/sampler"
	"github.com/gpusampling/sieve/internal/sampler/rss"
	"github.com/gpusampling/sieve/internal/sampler/twophase"
	"github.com/gpusampling/sieve/internal/workloads"
)

// testProfile generates a small but realistic profile — rows, PKS feature
// vectors and golden cycles — from the workload catalog.
func testProfile(tb testing.TB, name string, scale float64) *sampler.Profile {
	tb.Helper()
	spec, err := workloads.ByName(name)
	if err != nil {
		tb.Fatalf("ByName(%s): %v", name, err)
	}
	w, err := workloads.Generate(spec, scale)
	if err != nil {
		tb.Fatalf("Generate: %v", err)
	}
	hw, err := gpu.NewModel(gpu.Ampere())
	if err != nil {
		tb.Fatalf("NewModel: %v", err)
	}
	icProf, err := profiler.NewInstructionCountProfiler().Profile(w, hw)
	if err != nil {
		tb.Fatalf("instruction-count profile: %v", err)
	}
	rows := make([]core.InvocationProfile, len(icProf.Records))
	for i, r := range icProf.Records {
		rows[i] = core.InvocationProfile{
			Kernel:           r.Kernel,
			Index:            r.Index,
			InstructionCount: r.Chars.InstructionCount,
			CTASize:          r.CTASize,
		}
	}
	fullProf, err := profiler.NewFullProfiler().Profile(w, hw)
	if err != nil {
		tb.Fatalf("full profile: %v", err)
	}
	features := make([][]float64, len(fullProf.Records))
	for i := range fullProf.Records {
		features[i] = fullProf.Records[i].Chars.Vector()
	}
	return &sampler.Profile{Rows: rows, Features: features, GoldenCycles: hw.MeasureWorkload(w)}
}

func TestRegistryHasAllFourMethods(t *testing.T) {
	names := sampler.Names()
	for _, want := range []string{"sieve", "pks", "twophase", "rss"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("registry %v missing %q", names, want)
		}
	}
	if sampler.Canonical("") != "sieve" {
		t.Errorf("Canonical(\"\") = %q, want sieve", sampler.Canonical(""))
	}
	if _, err := sampler.New(""); err != nil {
		t.Errorf("New(\"\"): %v", err)
	}
	_, err := sampler.New("bogus")
	if err == nil || !strings.Contains(err.Error(), "registered") {
		t.Errorf("New(bogus) = %v, want unknown-method error listing registered names", err)
	}
}

// TestSieveIdentity pins the refactor's core acceptance criterion: a plan
// built through the registry's sieve strategy is identical — every field,
// including the unexported prediction indexes — to one built by calling
// core.Stratify directly, so pre-registry golden fixtures and cache keys
// keep working without re-goldening.
func TestSieveIdentity(t *testing.T) {
	p := testProfile(t, "lmc", 0.02)
	direct, err := core.Stratify(p.Rows, core.Options{})
	if err != nil {
		t.Fatalf("direct: %v", err)
	}
	viaRegistry, err := sampler.Run(context.Background(), "sieve", p, sampler.Options{})
	if err != nil {
		t.Fatalf("registry: %v", err)
	}
	if !reflect.DeepEqual(direct, viaRegistry) {
		t.Fatalf("registry sieve plan differs from direct core.Stratify plan")
	}
	if viaRegistry.Method != "" {
		t.Fatalf("sieve plan Method = %q, want empty (wire back-compat)", viaRegistry.Method)
	}
	if viaRegistry.Interval != nil {
		t.Fatalf("sieve plan carries an interval; default method must not")
	}
}

// TestPKSIdentity pins the PKS side: the registry strategy's strata are
// exactly pks.Select's clusters (same members, same representatives, same
// order) and the count-weighted plan predicts the same cycle total as the
// legacy PKS estimator.
func TestPKSIdentity(t *testing.T) {
	p := testProfile(t, "lmc", 0.02)
	popts := pks.Options{Seed: 7}
	legacy, err := pks.Select(p.Features, p.GoldenCycles, popts)
	if err != nil {
		t.Fatalf("legacy pks: %v", err)
	}
	plan, err := sampler.Run(context.Background(), "pks", p, sampler.Options{PKS: popts})
	if err != nil {
		t.Fatalf("registry pks: %v", err)
	}
	if plan.Method != "pks" || !plan.CountWeighted {
		t.Fatalf("plan method/countweighted = %q/%v, want pks/true", plan.Method, plan.CountWeighted)
	}
	if len(plan.Strata) != len(legacy.Clusters) {
		t.Fatalf("%d strata vs %d clusters", len(plan.Strata), len(legacy.Clusters))
	}
	for ci, c := range legacy.Clusters {
		members := make([]int, len(c.Invocations))
		for j, pos := range c.Invocations {
			members[j] = p.Rows[pos].Index
		}
		if !reflect.DeepEqual(plan.Strata[ci].Invocations, members) {
			t.Fatalf("cluster %d members differ: %v vs %v", ci, plan.Strata[ci].Invocations, members)
		}
		if plan.Strata[ci].Representative != p.Rows[c.Representative].Index {
			t.Fatalf("cluster %d representative %d vs %d", ci, plan.Strata[ci].Representative, c.Representative)
		}
	}
	cycles := func(i int) (float64, error) {
		if i < 0 || i >= len(p.GoldenCycles) {
			return 0, fmt.Errorf("invocation %d out of range", i)
		}
		return p.GoldenCycles[i], nil
	}
	legacyCycles, err := legacy.PredictCycles(cycles)
	if err != nil {
		t.Fatalf("legacy predict: %v", err)
	}
	pred, err := plan.Predict(cycles)
	if err != nil {
		t.Fatalf("plan predict: %v", err)
	}
	if pred.Cycles != legacyCycles {
		t.Fatalf("count-weighted prediction %g != legacy PKS prediction %g", pred.Cycles, legacyCycles)
	}
}

// TestSeedDeterminism: the seeded strategies must produce byte-identical
// plans for the same seed and different plans are allowed (not required)
// otherwise — the fixture is chosen so the seeds actually diverge.
func TestSeedDeterminism(t *testing.T) {
	p := testProfile(t, "lmc", 0.02)
	for _, method := range []string{twophase.Method, rss.Method} {
		t.Run(method, func(t *testing.T) {
			a, err := sampler.Run(context.Background(), method, p, sampler.Options{Seed: 42})
			if err != nil {
				t.Fatalf("first run: %v", err)
			}
			b, err := sampler.Run(context.Background(), method, p, sampler.Options{Seed: 42})
			if err != nil {
				t.Fatalf("second run: %v", err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("same seed produced different %s plans", method)
			}
			if a.Method != method {
				t.Fatalf("plan method %q, want %q", a.Method, method)
			}
			if a.Interval == nil {
				t.Fatalf("%s plan carries no error interval", method)
			}
			for _, v := range []float64{a.Interval.Mean, a.Interval.StdErr, a.Interval.Low, a.Interval.High} {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("%s interval not finite: %+v", method, a.Interval)
				}
			}
			if got, err := sampler.Run(context.Background(), method, p, sampler.Options{Seed: 43}); err != nil {
				t.Fatalf("seed 43: %v", err)
			} else if got == nil {
				t.Fatalf("seed 43 returned nil plan")
			}
		})
	}
}

// TestTwophaseRefinesBasePlan: the Neyman second phase must spend its extra
// budget — the plan has strictly more strata than the base sieve plan on a
// fixture with Tier-3 dispersion — while still partitioning every
// invocation.
func TestTwophaseRefinesBasePlan(t *testing.T) {
	p := testProfile(t, "lmc", 0.02)
	base, err := core.Stratify(p.Rows, core.Options{})
	if err != nil {
		t.Fatalf("base: %v", err)
	}
	plan, err := sampler.Run(context.Background(), twophase.Method, p, sampler.Options{Seed: 1})
	if err != nil {
		t.Fatalf("twophase: %v", err)
	}
	if plan.NumStrata() <= base.NumStrata() {
		t.Fatalf("twophase strata %d not finer than base %d", plan.NumStrata(), base.NumStrata())
	}
	if plan.NumInvocations() != len(p.Rows) {
		t.Fatalf("twophase covers %d of %d invocations", plan.NumInvocations(), len(p.Rows))
	}
	// Summation order differs between Assemble and Stratify, so allow
	// floating-point ULP noise but nothing more.
	if rel := math.Abs(plan.TotalInstructions-base.TotalInstructions) / base.TotalInstructions; rel > 1e-12 {
		t.Fatalf("total instructions drifted: %g vs %g (rel %g)", plan.TotalInstructions, base.TotalInstructions, rel)
	}
}

// TestRSSIntervalNarrowsWithResamples pins the repeated-subsampling
// contract: more resamples shrink the interval monotonically (width is
// 4·s/√R) on a synthetic workload under fixed seeds.
func TestRSSIntervalNarrowsWithResamples(t *testing.T) {
	p := testProfile(t, "lmc", 0.02)
	prev := math.Inf(1)
	for _, r := range []int{8, 32, 128, 512} {
		plan, err := sampler.Run(context.Background(), rss.Method, p, sampler.Options{Seed: 5, Resamples: r})
		if err != nil {
			t.Fatalf("R=%d: %v", r, err)
		}
		if plan.Interval == nil || plan.Interval.Resamples != r {
			t.Fatalf("R=%d: interval %+v", r, plan.Interval)
		}
		width := plan.Interval.High - plan.Interval.Low
		if width <= 0 || math.IsNaN(width) {
			t.Fatalf("R=%d: degenerate width %g", r, width)
		}
		if width >= prev {
			t.Fatalf("R=%d: width %g did not narrow (previous %g)", r, width, prev)
		}
		prev = width
	}
}

// TestErrorEstimatorInterface: the two uncertainty-quantifying strategies
// implement the optional interface, and the estimate matches the interval
// the plan carries.
func TestErrorEstimatorInterface(t *testing.T) {
	p := testProfile(t, "lmc", 0.02)
	for _, method := range []string{twophase.Method, rss.Method} {
		s, err := sampler.New(method)
		if err != nil {
			t.Fatalf("New(%s): %v", method, err)
		}
		est, ok := s.(sampler.ErrorEstimator)
		if !ok {
			t.Fatalf("%s does not implement ErrorEstimator", method)
		}
		iv, err := est.EstimateInterval(context.Background(), p, sampler.Options{Seed: 9})
		if err != nil {
			t.Fatalf("%s estimate: %v", method, err)
		}
		plan, err := s.Plan(context.Background(), p, sampler.Options{Seed: 9})
		if err != nil {
			t.Fatalf("%s plan: %v", method, err)
		}
		if !reflect.DeepEqual(iv, plan.Interval) {
			t.Fatalf("%s estimate %+v != plan interval %+v", method, iv, plan.Interval)
		}
	}
}

// TestPKSNeedsFeatures: the pks strategy fails loudly without its feature
// and golden side channels instead of planning from the wrong inputs.
func TestPKSNeedsFeatures(t *testing.T) {
	p := testProfile(t, "lmc", 0.02)
	_, err := sampler.Run(context.Background(), "pks", &sampler.Profile{Rows: p.Rows}, sampler.Options{})
	if err == nil || !strings.Contains(err.Error(), "feature") {
		t.Fatalf("pks without features = %v, want feature-vector error", err)
	}
	_, err = sampler.Run(context.Background(), "pks", &sampler.Profile{Rows: p.Rows, Features: p.Features}, sampler.Options{})
	if err == nil || !strings.Contains(err.Error(), "golden") {
		t.Fatalf("pks without golden = %v, want golden-cycles error", err)
	}
}

// TestCoreRejectsForeignMethod: a non-default Options.Method reaching
// core.Stratify is a dispatch bug and must fail loudly.
func TestCoreRejectsForeignMethod(t *testing.T) {
	p := testProfile(t, "lmc", 0.02)
	_, err := core.Stratify(p.Rows, core.Options{Method: "twophase"})
	if err == nil || !strings.Contains(err.Error(), "method") {
		t.Fatalf("core.Stratify(Method: twophase) = %v, want method error", err)
	}
	if _, err := core.Stratify(p.Rows, core.Options{Method: "sieve"}); err != nil {
		t.Fatalf("core.Stratify(Method: sieve): %v", err)
	}
}

// BenchmarkSamplerPlan compares plan-construction cost across the four
// registered methodologies on the same profile (make bench-sampler →
// BENCH_sampler.json).
func BenchmarkSamplerPlan(b *testing.B) {
	p := testProfile(b, "lmc", 0.1)
	for _, method := range sampler.Names() {
		b.Run(method, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sampler.Run(context.Background(), method, p, sampler.Options{Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
