package sampler

import (
	"context"

	"github.com/gpusampling/sieve/internal/core"
)

// sieveSampler is the default strategy: the paper's stratified sampler,
// delegated wholesale to core.Stratify. Plans are byte-identical to calling
// core directly — Result.Method stays empty and no interval is attached —
// so pre-registry golden fixtures and cache keys are unaffected.
type sieveSampler struct{}

func (sieveSampler) Name() string { return core.MethodSieve }

func (sieveSampler) Plan(ctx context.Context, p *Profile, opts Options) (*core.Result, error) {
	opts, err := opts.WithDefaults()
	if err != nil {
		return nil, err
	}
	return core.StratifyContext(ctx, p.Rows, opts.Core)
}

func init() {
	Register(core.MethodSieve, func() Sampler { return sieveSampler{} })
}
