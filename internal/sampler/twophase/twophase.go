// Package twophase implements two-phase stratified sampling in the style of
// the NVIDIA CPU-sampling work (*CPU Simulation Using Two-Phase Stratified
// Sampling*): a cheap pilot subsample measures each base stratum's observed
// dispersion, and the second phase distributes a representative budget across
// strata Neyman-style (allocation ∝ stratum size × pilot standard
// deviation), splitting high-variance strata into finer sub-strata that each
// get their own representative. Homogeneous strata keep a single
// representative; the extra simulation budget concentrates exactly where the
// instruction-count dispersion — Sieve's proxy for cycle dispersion — says
// prediction risk lives.
//
// Every draw is seeded from Options.Seed, so the same profile, options and
// seed produce a byte-identical plan at any parallelism.
package twophase

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/gpusampling/sieve/internal/core"
	"github.com/gpusampling/sieve/internal/sampler"
	"github.com/gpusampling/sieve/internal/stats"
)

// Method is the registry name.
const Method = "twophase"

type twoPhase struct{}

func (twoPhase) Name() string { return Method }

// pilotSeed derives the per-stratum pilot RNG seed deterministically from
// the run seed and the stratum's position in the (deterministically ordered)
// base plan.
func pilotSeed(seed int64, stratum int) int64 {
	return seed*1_000_003 + int64(stratum)*7919
}

// Plan stratifies with the base Sieve pipeline, pilots each stratum, and
// re-cuts the plan under a Neyman allocation of the representative budget.
func (twoPhase) Plan(ctx context.Context, p *sampler.Profile, opts sampler.Options) (*core.Result, error) {
	opts, err := opts.WithDefaults()
	if err != nil {
		return nil, err
	}
	base, err := core.StratifyContext(ctx, p.Rows, opts.Core)
	if err != nil {
		return nil, err
	}
	rowByIndex := make(map[int]core.InvocationProfile, len(p.Rows))
	for _, r := range p.Rows {
		rowByIndex[r.Index] = r
	}

	// Phase one: pilot each base stratum. The pilot draws a seeded
	// without-replacement subsample of the stratum's instruction counts and
	// records its standard deviation — the dispersion signal Neyman
	// allocation sizes the second phase by.
	scores := make([]float64, len(base.Strata))
	for h := range base.Strata {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		s := &base.Strata[h]
		n := len(s.Invocations)
		if n < 2 {
			continue // a singleton has no dispersion to measure
		}
		pilot := int(math.Ceil(opts.PilotFraction * float64(n)))
		if pilot < 2 {
			pilot = 2
		}
		if pilot > n {
			pilot = n
		}
		// Partial Fisher–Yates over the stratum's (deterministically
		// ordered) member list: the first `pilot` swaps pick the subsample.
		rng := rand.New(rand.NewSource(pilotSeed(opts.Seed, h)))
		members := append([]int(nil), s.Invocations...)
		var acc stats.Accumulator
		for i := 0; i < pilot; i++ {
			j := i + rng.Intn(n-i)
			members[i], members[j] = members[j], members[i]
			acc.Add(rowByIndex[members[i]].InstructionCount)
		}
		scores[h] = float64(n) * acc.StdDev()
	}

	// Phase two: distribute the representative budget by highest-averages
	// (D'Hondt) Neyman allocation — each extra representative goes to the
	// stratum with the largest remaining score per representative, capped by
	// stratum size. Zero-dispersion strata never attract extra budget.
	budget := opts.Budget
	if budget == 0 {
		budget = 2 * len(base.Strata)
	}
	if budget < len(base.Strata) {
		budget = len(base.Strata)
	}
	if budget > len(p.Rows) {
		budget = len(p.Rows)
	}
	alloc := make([]int, len(base.Strata))
	for h := range alloc {
		alloc[h] = 1
	}
	for extra := budget - len(base.Strata); extra > 0; extra-- {
		best, bestScore := -1, 0.0
		for h := range base.Strata {
			if alloc[h] >= len(base.Strata[h].Invocations) {
				continue
			}
			if avg := scores[h] / float64(alloc[h]); avg > bestScore {
				best, bestScore = h, avg
			}
		}
		if best < 0 {
			break // every stratum with dispersion is saturated
		}
		alloc[best]++
	}

	// Re-cut each base stratum into alloc[h] rank-contiguous sub-strata
	// (ordered by instruction count, ties by index — the same ordering the
	// Tier-3 splitters use) and select a representative per sub-stratum with
	// the configured policy.
	var specs []core.StratumSpec
	for h := range base.Strata {
		s := &base.Strata[h]
		ordered := make([]core.InvocationProfile, len(s.Invocations))
		for i, idx := range s.Invocations {
			ordered[i] = rowByIndex[idx]
		}
		sort.SliceStable(ordered, func(a, b int) bool {
			if ordered[a].InstructionCount != ordered[b].InstructionCount {
				return ordered[a].InstructionCount < ordered[b].InstructionCount
			}
			return ordered[a].Index < ordered[b].Index
		})
		parts := alloc[h]
		size, rem := len(ordered)/parts, len(ordered)%parts
		at := 0
		for g := 0; g < parts; g++ {
			n := size
			if g < rem {
				n++
			}
			chunk := ordered[at : at+n]
			at += n
			rep, err := core.ChooseRepresentative(chunk, s.Tier, opts.Core.Selection)
			if err != nil {
				return nil, fmt.Errorf("stratum %s part %d: %w", s.Kernel, g, err)
			}
			members := make([]int, len(chunk))
			for i, r := range chunk {
				members[i] = r.Index
			}
			specs = append(specs, core.StratumSpec{
				Kernel:         s.Kernel,
				Tier:           s.Tier,
				Members:        members,
				Representative: rep,
			})
		}
	}

	res, err := core.Assemble(p.Rows, specs, base.Theta)
	if err != nil {
		return nil, err
	}
	res.Method = Method
	// The interval is analytic: classical stratified-sampling variance of
	// the final (post-allocation) plan, centered on zero because the
	// estimator is unbiased in expectation. Resamples stays 0 to mark it
	// variance-derived rather than resampling-derived.
	bound, err := res.EstimateErrorBound()
	if err != nil {
		return nil, err
	}
	res.Interval = &core.ErrorInterval{
		Mean:   0,
		StdErr: bound.RelativeStdDev,
		Low:    -bound.TwoSigma,
		High:   bound.TwoSigma,
	}
	return res, nil
}

// EstimateInterval implements sampler.ErrorEstimator by building the plan
// and returning its attached interval.
func (t twoPhase) EstimateInterval(ctx context.Context, p *sampler.Profile, opts sampler.Options) (*core.ErrorInterval, error) {
	res, err := t.Plan(ctx, p, opts)
	if err != nil {
		return nil, err
	}
	return res.Interval, nil
}

func init() {
	sampler.Register(Method, func() sampler.Sampler { return twoPhase{} })
}
