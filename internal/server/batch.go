package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"github.com/gpusampling/sieve/api"
	"github.com/gpusampling/sieve/internal/obs"
)

// The batch wire types live in the exported api package; the server consumes
// them through aliases (see the note on SampleRequest in server.go).
type (
	BatchRequest    = api.BatchRequest
	BatchItemResult = api.BatchItemResult
)

// serveBatch answers POST /v1/batch: one scheduler pass over many profiles.
// The batch handler itself holds no worker slot — admission control lives
// where the compute happens, in each item's flight leader — so cache hits
// and coalesced joins cost nothing against the concurrency budget, and a
// batch can never hold a slot while waiting on a flight whose leader needs
// one (the deadlock an earlier whole-batch slot produced under cache-hostile
// load). Each item reuses the plan cache and the in-flight coalescing table,
// so a batch racing identical single requests computes each plan once. Item
// envelopes are streamed (and flushed) as they complete, so a long batch
// delivers results incrementally.
func (s *Server) serveBatch(w http.ResponseWriter, r *http.Request) int {
	_, decodeSpan := obs.StartSpan(r.Context(), stageDecode)
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		decodeSpan.End()
		return s.writeError(w, err)
	}
	var breq BatchRequest
	err = json.Unmarshal(body, &breq)
	decodeSpan.End()
	if err != nil {
		return s.writeError(w, badRequest{fmt.Errorf("decode batch request: %w", err)})
	}
	if len(breq.Items) == 0 {
		return s.writeError(w, badRequest{errors.New("batch has no items")})
	}
	if len(breq.Items) > s.cfg.MaxBatchItems {
		return s.writeError(w, badRequest{fmt.Errorf("batch has %d items, limit is %d", len(breq.Items), s.cfg.MaxBatchItems)})
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	_, _ = io.WriteString(w, `{"items":[`)
	for i := range breq.Items {
		if i > 0 {
			_, _ = io.WriteString(w, ",")
		}
		// Each item traces under its own span, so the batch's trace shows the
		// per-item serving path (cache hit, flight join, compute) in sequence.
		ictx, itemSpan := obs.StartSpan(ctx, "item")
		itemSpan.SetAttr("index", i)
		item := s.batchItem(ictx, &breq.Items[i])
		itemSpan.End()
		buf, err := json.Marshal(item)
		if err != nil {
			buf = []byte(`{"status":500,"error":"marshal item result"}`)
		}
		_, _ = w.Write(buf)
		if flusher != nil {
			flusher.Flush()
		}
	}
	_, _ = io.WriteString(w, "]}\n")
	return http.StatusOK
}

// batchItem resolves and answers one batch item. A computing item's flight
// leader acquires its own worker slot exactly like a single request's would;
// hits and joins need none. Cache hits and coalesced joins count toward the
// same metrics as single requests; batch_items tracks the item volume
// itself.
func (s *Server) batchItem(ctx context.Context, req *SampleRequest) BatchItemResult {
	s.metrics.BatchItems.Add(1)
	rv, err := s.resolve(req)
	if err != nil {
		s.metrics.Failures.Add(1)
		return BatchItemResult{Status: statusFor(err), Error: err.Error()}
	}
	s.metrics.MethodRequests(rv.method).Add(1)
	id := rv.key("sample")
	_, cacheSpan := obs.StartSpan(ctx, stageCache)
	doc, hit := s.cache.get(id)
	cacheSpan.SetAttr("hit", hit)
	cacheSpan.End()
	if hit {
		s.metrics.CacheHits.Add(1)
		return BatchItemResult{Status: http.StatusOK, PlanID: id, Cached: true, Plan: doc}
	}
	s.metrics.CacheMisses.Add(1)
	doc, shared, err := s.computePlan(ctx, id, rv)
	if err != nil {
		s.metrics.Failures.Add(1)
		if s.cfg.Logger != nil {
			s.cfg.Logger.Warn("batch item failed", "status", statusFor(err), "error", err.Error())
		}
		return BatchItemResult{Status: statusFor(err), PlanID: id, Error: err.Error()}
	}
	return BatchItemResult{Status: http.StatusOK, PlanID: id, Coalesced: shared, Plan: doc}
}
