package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"
)

// BatchRequest is the wire form of POST /v1/batch: stratify many profiles in
// one request. Each item is a full SampleRequest, so a batch can mix CSV and
// workload sources and vary options per item.
type BatchRequest struct {
	Items []SampleRequest `json:"items"`
}

// BatchItemResult is the per-item envelope inside a batch response: the
// plan's envelope on success, an HTTP-style status plus error otherwise.
// Items fail independently — one malformed profile does not sink its
// siblings.
type BatchItemResult struct {
	// Status is the item's HTTP-equivalent status (200 on success, else the
	// code /v1/sample would have answered).
	Status int `json:"status"`
	// PlanID is the item's content hash (set whenever the item resolved).
	PlanID string `json:"plan_id,omitempty"`
	// Cached reports the plan was served from the cache without computing.
	Cached bool `json:"cached,omitempty"`
	// Coalesced reports the item joined another request's in-flight
	// computation instead of starting its own.
	Coalesced bool `json:"coalesced,omitempty"`
	// Plan is the marshaled plan document (success only).
	Plan json.RawMessage `json:"plan,omitempty"`
	// Error carries the failure detail (non-2xx only).
	Error string `json:"error,omitempty"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.metrics.Requests.Add(1)
	status := s.serveBatch(w, r)
	s.metrics.observe(status, time.Since(start))
}

// serveBatch answers POST /v1/batch: one scheduler pass over many profiles.
// The whole batch acquires a single worker slot — admission control is
// amortized over the items, which is the shape pilot/refine methodologies
// need — and each item still reuses the plan cache and the in-flight
// coalescing table, so a batch racing identical single requests computes
// each plan once. Item envelopes are streamed (and flushed) as they
// complete, so a long batch delivers results incrementally.
func (s *Server) serveBatch(w http.ResponseWriter, r *http.Request) int {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		return s.writeError(w, err)
	}
	var breq BatchRequest
	if err := json.Unmarshal(body, &breq); err != nil {
		return s.writeError(w, badRequest{fmt.Errorf("decode batch request: %w", err)})
	}
	if len(breq.Items) == 0 {
		return s.writeError(w, badRequest{errors.New("batch has no items")})
	}
	if len(breq.Items) > s.cfg.MaxBatchItems {
		return s.writeError(w, badRequest{fmt.Errorf("batch has %d items, limit is %d", len(breq.Items), s.cfg.MaxBatchItems)})
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	release, err := s.acquireSlot(ctx)
	if err != nil {
		return s.writeError(w, err)
	}
	defer release()

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	_, _ = io.WriteString(w, `{"items":[`)
	for i := range breq.Items {
		if i > 0 {
			_, _ = io.WriteString(w, ",")
		}
		item := s.batchItem(ctx, &breq.Items[i])
		buf, err := json.Marshal(item)
		if err != nil {
			buf = []byte(`{"status":500,"error":"marshal item result"}`)
		}
		_, _ = w.Write(buf)
		if flusher != nil {
			flusher.Flush()
		}
	}
	_, _ = io.WriteString(w, "]}\n")
	return http.StatusOK
}

// batchItem resolves and answers one batch item under the batch's already-
// held worker slot (needSlot=false in computePlan). Cache hits and
// coalesced joins count toward the same metrics as single requests;
// batch_items tracks the item volume itself.
func (s *Server) batchItem(ctx context.Context, req *SampleRequest) BatchItemResult {
	s.metrics.BatchItems.Add(1)
	rv, err := s.resolve(req)
	if err != nil {
		s.metrics.Failures.Add(1)
		return BatchItemResult{Status: statusFor(err), Error: err.Error()}
	}
	id := rv.key("sample")
	if doc, ok := s.cache.get(id); ok {
		s.metrics.CacheHits.Add(1)
		return BatchItemResult{Status: http.StatusOK, PlanID: id, Cached: true, Plan: doc}
	}
	s.metrics.CacheMisses.Add(1)
	doc, shared, err := s.computePlan(ctx, id, false, rv)
	if err != nil {
		s.metrics.Failures.Add(1)
		if s.cfg.Logger != nil {
			s.cfg.Logger.Warn("batch item failed", "status", statusFor(err), "error", err.Error())
		}
		return BatchItemResult{Status: statusFor(err), PlanID: id, Error: err.Error()}
	}
	return BatchItemResult{Status: http.StatusOK, PlanID: id, Coalesced: shared, Plan: doc}
}
