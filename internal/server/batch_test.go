package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// batchResponse mirrors the /v1/batch response document.
type batchResponse struct {
	Items []BatchItemResult `json:"items"`
}

func postBatch(t *testing.T, url, body string) (int, batchResponse, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out batchResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("batch response is not valid JSON: %v\n%s", err, raw)
		}
	}
	return resp.StatusCode, out, raw
}

// TestBatchMixedItems drives one batch through every item outcome: a fresh
// computation, an intra-batch duplicate (served from cache — items run in
// order, so the first fill is visible to the second), a workload-mode item,
// and a malformed item that fails alone without sinking its siblings.
func TestBatchMixedItems(t *testing.T) {
	ts := newTestServer(t, Config{})
	csv := testCSV()
	csvJSON, err := json.Marshal(csv)
	if err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf(`{"items":[
		{"profile_csv":%s},
		{"profile_csv":%s},
		{"workload":"lmc","scale":0.05},
		{"workload":"no-such-workload"}
	]}`, csvJSON, csvJSON)

	status, out, raw := postBatch(t, ts.URL, body)
	if status != http.StatusOK {
		t.Fatalf("batch status %d: %s", status, raw)
	}
	if len(out.Items) != 4 {
		t.Fatalf("items = %d, want 4", len(out.Items))
	}
	if out.Items[0].Status != http.StatusOK || out.Items[0].Cached {
		t.Fatalf("item 0 = %+v, want fresh 200", out.Items[0])
	}
	if out.Items[1].Status != http.StatusOK || !out.Items[1].Cached {
		t.Fatalf("item 1 = %+v, want cached 200 (duplicate of item 0)", out.Items[1])
	}
	if out.Items[1].PlanID != out.Items[0].PlanID || string(out.Items[1].Plan) != string(out.Items[0].Plan) {
		t.Fatal("duplicate items returned different plans")
	}
	if out.Items[2].Status != http.StatusOK || out.Items[2].PlanID == out.Items[0].PlanID {
		t.Fatalf("item 2 = %+v, want a distinct workload plan", out.Items[2])
	}
	if out.Items[3].Status != http.StatusBadRequest || out.Items[3].Error == "" {
		t.Fatalf("item 3 = %+v, want 400 with error", out.Items[3])
	}

	var m metricsDoc
	getJSON(t, ts.URL+"/debug/metrics", &m)
	if m.BatchItems != 4 {
		t.Fatalf("batch_items = %d, want 4", m.BatchItems)
	}
	if m.Requests != 1 { // one batch POST, however many items it carried
		t.Fatalf("requests = %d, want 1", m.Requests)
	}
	if m.Computations != 2 {
		t.Fatalf("computations = %d, want 2 (csv once, workload once)", m.Computations)
	}
	if m.CacheHits != 1 || m.CacheMisses != 2 {
		t.Fatalf("hits/misses = %d/%d, want 1/2", m.CacheHits, m.CacheMisses)
	}

	// Batch-computed plans are addressable like any other.
	var env sampleEnvelope
	if status := getJSON(t, ts.URL+"/v1/plans/"+out.Items[0].PlanID, &env); status != http.StatusOK {
		t.Fatalf("batch plan not cached: %d", status)
	}

	// And a follow-up single request hits the batch's cache entry.
	status2, body2 := postCSV(t, ts.URL+"/v1/sample", csv)
	if status2 != http.StatusOK {
		t.Fatal("follow-up sample failed")
	}
	if err := json.Unmarshal(body2, &env); err != nil {
		t.Fatal(err)
	}
	if !env.Cached || env.PlanID != out.Items[0].PlanID {
		t.Fatal("single request did not reuse the batch's cache entry")
	}
}

func TestBatchValidation(t *testing.T) {
	ts := newTestServer(t, Config{MaxBatchItems: 2})
	cases := []struct {
		name string
		body string
		want int
	}{
		{"broken JSON", "{", http.StatusBadRequest},
		{"no items", `{"items":[]}`, http.StatusBadRequest},
		{"over the item limit", `{"items":[{"workload":"lmc"},{"workload":"lmc"},{"workload":"lmc"}]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, _, raw := postBatch(t, ts.URL, tc.body)
			if status != tc.want {
				t.Fatalf("status = %d, want %d: %s", status, tc.want, raw)
			}
			var doc map[string]string
			if err := json.Unmarshal(raw, &doc); err != nil || doc["error"] == "" {
				t.Fatalf("error body not a JSON {error}: %s", raw)
			}
		})
	}
}

// TestBatchSharesCacheWithSample: a plan computed by /v1/sample is a cache
// hit as a batch item — the two endpoints address one plan store.
func TestBatchSharesCacheWithSample(t *testing.T) {
	ts := newTestServer(t, Config{})
	csv := testCSV()
	status, body := postCSV(t, ts.URL+"/v1/sample", csv)
	if status != http.StatusOK {
		t.Fatal("warmup sample failed")
	}
	var env sampleEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}

	csvJSON, _ := json.Marshal(csv)
	status, out, raw := postBatch(t, ts.URL, fmt.Sprintf(`{"items":[{"profile_csv":%s}]}`, csvJSON))
	if status != http.StatusOK {
		t.Fatalf("batch status %d: %s", status, raw)
	}
	if !out.Items[0].Cached || out.Items[0].PlanID != env.PlanID {
		t.Fatalf("batch item missed the sample's cache entry: %+v", out.Items[0])
	}
	if string(out.Items[0].Plan) != string(env.Plan) {
		t.Fatal("batch served a non-identical plan document")
	}
}

// TestBatchSingleSlotProgress pins the admission model: worker slots bound
// plan computations, not requests, so a batch of several computing items
// completes on a single-slot server — each item's flight leader takes the
// slot in turn, and the batch itself never holds one.
func TestBatchSingleSlotProgress(t *testing.T) {
	ts := newTestServer(t, Config{MaxConcurrent: 1})
	body := `{"items":[
		{"workload":"lmc","scale":0.05},
		{"workload":"lmc","scale":0.04}
	]}`
	status, out, raw := postBatch(t, ts.URL, body)
	if status != http.StatusOK {
		t.Fatalf("batch status %d: %s", status, raw)
	}
	for i, item := range out.Items {
		if item.Status != http.StatusOK {
			t.Fatalf("item %d = %+v, want 200 (slot starvation?)", i, item)
		}
	}
}

// TestBatchDoesNotHoldSlotAcrossFlightWait is the regression test for a slot
// deadlock the load harness exposed: serveBatch used to acquire one worker
// slot for its whole pass and hold it while items waited on the coalescing
// table, so a batch parked on a flight whose leader needed that very slot
// wedged the server until timeouts fired (under cache-hostile load, every
// slot ended up held by a waiter). Deterministic reproduction on a
// single-slot server: a sample request starts a flight whose leader is gated
// before slot acquisition, then a batch item joins that flight. The batch
// must wait slotless, so releasing the gate lets the leader take the slot
// and both requests finish promptly.
func TestBatchDoesNotHoldSlotAcrossFlightWait(t *testing.T) {
	srv := New(Config{MaxConcurrent: 1})
	gate := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	srv.preCompute = func(string) {
		once.Do(func() { close(entered) })
		<-gate
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	csv := testCSV()

	var wg sync.WaitGroup
	var sampleStatus int
	wg.Add(1)
	go func() {
		defer wg.Done()
		sampleStatus, _ = postCSV(t, ts.URL+"/v1/sample", csv)
	}()
	<-entered // flight registered; its leader is parked before acquireSlot

	csvJSON, err := json.Marshal(csv)
	if err != nil {
		t.Fatal(err)
	}
	var batchStatus int
	var out batchResponse
	wg.Add(1)
	go func() {
		defer wg.Done()
		batchStatus, out, _ = postBatch(t, ts.URL, fmt.Sprintf(`{"items":[{"profile_csv":%s}]}`, csvJSON))
	}()
	waitFor(t, "batch item to join the sample's flight", func() bool {
		return srv.metrics.Coalesced.Value() >= 1
	})
	close(gate)
	wg.Wait()

	if sampleStatus != http.StatusOK {
		t.Fatalf("sample status = %d, want 200", sampleStatus)
	}
	if batchStatus != http.StatusOK || len(out.Items) != 1 {
		t.Fatalf("batch status = %d items = %+v, want 200 with one item", batchStatus, out.Items)
	}
	if it := out.Items[0]; it.Status != http.StatusOK || !it.Coalesced {
		t.Fatalf("batch item = %+v, want 200 coalesced", it)
	}
	if got := srv.metrics.Computations.Value(); got != 1 {
		t.Fatalf("computations = %d, want 1 (item must join the sample's flight)", got)
	}
}
