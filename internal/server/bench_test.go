package server

import (
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
)

// loadFixtureCSV reads the checked-in lmc profile (2485 invocations).
func loadFixtureCSV(tb testing.TB) string {
	tb.Helper()
	body, err := os.ReadFile("../../testdata/profile_lmc_scale0.01.csv")
	if err != nil {
		tb.Fatal(err)
	}
	return string(body)
}

func benchPost(b *testing.B, url, csv string, wantCached bool) {
	b.Helper()
	resp, err := http.Post(url, "text/csv", strings.NewReader(csv))
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("status = %d", resp.StatusCode)
	}
}

// BenchmarkServeSampleMiss measures a full request: decode, hash, stratify
// the 2485-row lmc profile, marshal, cache. A fresh server per iteration
// keeps every POST a cache miss.
func BenchmarkServeSampleMiss(b *testing.B) {
	csv := loadFixtureCSV(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ts := httptest.NewServer(New(Config{}).Handler())
		b.StartTimer()
		benchPost(b, ts.URL+"/v1/sample", csv, false)
		b.StopTimer()
		ts.Close()
		b.StartTimer()
	}
}

// BenchmarkServeSampleHit measures the cache-hit fast path: content hash +
// LRU lookup + response write, no stratification.
func BenchmarkServeSampleHit(b *testing.B) {
	csv := loadFixtureCSV(b)
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	benchPost(b, ts.URL+"/v1/sample", csv, false) // warm the cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, ts.URL+"/v1/sample", csv, true)
	}
}
