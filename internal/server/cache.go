package server

import (
	"container/list"
	"sync"
)

// planCache is a content-hash-addressed LRU of marshaled plan documents.
// Keys are the canonical request hash (profile source + resolved options), so
// identical requests are computed once and every hit returns byte-identical
// plan JSON. Values are immutable byte slices shared with responders; they
// must not be mutated.
type planCache struct {
	mu   sync.Mutex
	max  int
	ll   *list.List // front = most recently used
	byID map[string]*list.Element
}

type cacheEntry struct {
	id   string
	body []byte
}

func newPlanCache(max int) *planCache {
	return &planCache{max: max, ll: list.New(), byID: make(map[string]*list.Element)}
}

// get returns the cached document and marks it most recently used.
func (c *planCache) get(id string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byID[id]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// put inserts (or refreshes) a document, evicting the least recently used
// entry beyond capacity.
func (c *planCache) put(id string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byID[id]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).body = body
		return
	}
	c.byID[id] = c.ll.PushFront(&cacheEntry{id: id, body: body})
	for c.ll.Len() > c.max {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.byID, last.Value.(*cacheEntry).id)
	}
}

// len reports the current entry count.
func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
