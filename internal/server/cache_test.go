package server

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// TestCacheConcurrentPutGet hammers the LRU from many goroutines under
// -race: concurrent puts, gets and len calls over a key space larger than
// the capacity, so insertion, promotion and eviction all interleave. Every
// successful get must return exactly the bytes put for that key.
func TestCacheConcurrentPutGet(t *testing.T) {
	const (
		capacity   = 8
		keys       = 32
		goroutines = 16
		rounds     = 200
	)
	c := newPlanCache(capacity)
	body := func(k int) []byte { return []byte(fmt.Sprintf("plan-%d", k)) }

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				k := (g*rounds + r) % keys
				id := fmt.Sprintf("key-%d", k)
				switch r % 3 {
				case 0:
					c.put(id, body(k))
				case 1:
					if doc, ok := c.get(id); ok && !bytes.Equal(doc, body(k)) {
						t.Errorf("get(%s) = %q, want %q", id, doc, body(k))
					}
				default:
					if n := c.len(); n < 0 || n > capacity {
						t.Errorf("len = %d, want 0..%d", n, capacity)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if n := c.len(); n != capacity {
		t.Fatalf("final len = %d, want %d (saturated)", n, capacity)
	}
}

// TestCacheRefreshKeepsOneEntry: re-putting an existing key must refresh in
// place, not duplicate, and serve the newest bytes.
func TestCacheRefreshKeepsOneEntry(t *testing.T) {
	c := newPlanCache(4)
	c.put("a", []byte("v1"))
	c.put("a", []byte("v2"))
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1", c.len())
	}
	doc, ok := c.get("a")
	if !ok || string(doc) != "v2" {
		t.Fatalf("get = %q %v, want v2", doc, ok)
	}
}

// TestCacheLRUOrderUnderGets: a get promotes its entry, so filling past
// capacity evicts the least recently *used*, not the least recently put.
func TestCacheLRUOrderUnderGets(t *testing.T) {
	c := newPlanCache(2)
	c.put("a", []byte("a"))
	c.put("b", []byte("b"))
	c.get("a") // promote a; b is now coldest
	c.put("c", []byte("c"))
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived eviction despite being least recently used")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted despite recent use")
	}
}
