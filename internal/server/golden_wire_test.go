package server

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The fixtures under testdata/golden_*.json were captured from the service
// BEFORE the wire types moved into the api package. These tests replay the
// same requests and demand byte-identical responses, so the extraction is
// provably invisible to existing clients and to the peer protocol.
//
// Regenerating the fixtures is deliberately manual (they are the contract):
// capture fresh bytes only when the wire format changes on purpose.

func golden(t *testing.T, name string) []byte {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestGoldenSampleWire pins the /v1/sample envelope: a computed (cache-miss)
// response and the byte-identical cache-hit re-read.
func TestGoldenSampleWire(t *testing.T) {
	ts := newTestServer(t, Config{})
	csv := testCSV()

	_, miss := postCSV(t, ts.URL+"/v1/sample?theta=0.45", csv)
	if want := golden(t, "golden_sample_miss.json"); string(miss) != string(want) {
		t.Fatalf("cache-miss envelope drifted from pre-api-package bytes:\n got %s\nwant %s", miss, want)
	}
	_, hit := postCSV(t, ts.URL+"/v1/sample?theta=0.45", csv)
	if want := golden(t, "golden_sample_hit.json"); string(hit) != string(want) {
		t.Fatalf("cache-hit envelope drifted from pre-api-package bytes:\n got %s\nwant %s", hit, want)
	}
}

// TestGoldenErrorWire pins the {"error": …} failure document.
func TestGoldenErrorWire(t *testing.T) {
	ts := newTestServer(t, Config{})
	status, body := postCSV(t, ts.URL+"/v1/sample?theta=-1", testCSV())
	if status != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", status)
	}
	if want := golden(t, "golden_error.json"); string(body) != string(want) {
		t.Fatalf("error document drifted:\n got %s\nwant %s", body, want)
	}
}

// TestGoldenBatchWire pins the streamed /v1/batch response — a cache-served
// item plus a failing item — against the pre-extraction bytes. The fixture
// was captured with a warm cache, so the plan is POSTed once first.
func TestGoldenBatchWire(t *testing.T) {
	ts := newTestServer(t, Config{})
	postCSV(t, ts.URL+"/v1/sample?theta=0.45", testCSV())
	csvJSON, err := json.Marshal(testCSV())
	if err != nil {
		t.Fatal(err)
	}
	breq := `{"items":[{"profile_csv":` + string(csvJSON) + `,"options":{"theta":0.45}},{"options":{"theta":0.45}}]}`
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(breq))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if want := golden(t, "golden_batch.json"); string(body) != string(want) {
		t.Fatalf("batch response drifted:\n got %s\nwant %s", body, want)
	}
}

// TestGoldenCharacterizeWire pins the /v1/characterize response.
func TestGoldenCharacterizeWire(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/v1/characterize", "text/csv", strings.NewReader(testCSV()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if want := golden(t, "golden_characterize.json"); string(body) != string(want) {
		t.Fatalf("characterize response drifted:\n got %s\nwant %s", body, want)
	}
}
