package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// postSample POSTs a JSON sample request built from src (profile_csv or
// workload fields) and opts, returning status and body.
func postSample(t *testing.T, url string, req map[string]any) (int, []byte) {
	t.Helper()
	buf, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", strings.NewReader(string(buf)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// planDoc is the subset of the plan wire document the method tests inspect.
type planDoc struct {
	Method        string `json:"method"`
	NumStrata     int    `json:"num_strata"`
	ErrorInterval *struct {
		Mean      float64 `json:"mean"`
		StdErr    float64 `json:"std_err"`
		Low       float64 `json:"low"`
		High      float64 `json:"high"`
		Resamples int     `json:"resamples"`
	} `json:"error_interval"`
}

// TestSampleMethodPlanIDs pins the cache-key contract of the methodology
// knob: an explicit "sieve" hashes exactly like the absent default (one cache
// entry, not two), while twophase and rss address distinct plans whose
// documents carry the method label — and, for these interval-bearing
// strategies, an error_interval.
func TestSampleMethodPlanIDs(t *testing.T) {
	ts := newTestServer(t, Config{})
	csv := testCSV()

	sample := func(method string) (string, planDoc, bool) {
		req := map[string]any{"profile_csv": csv}
		opts := map[string]any{}
		if method != "" {
			opts["method"] = method
		}
		req["options"] = opts
		status, body := postSample(t, ts.URL+"/v1/sample", req)
		if status != http.StatusOK {
			t.Fatalf("method %q status %d, body %s", method, status, body)
		}
		var env sampleEnvelope
		if err := json.Unmarshal(body, &env); err != nil {
			t.Fatal(err)
		}
		var doc planDoc
		if err := json.Unmarshal(env.Plan, &doc); err != nil {
			t.Fatal(err)
		}
		var raw map[string]json.RawMessage
		if err := json.Unmarshal(env.Plan, &raw); err != nil {
			t.Fatal(err)
		}
		_, hasMethod := raw["method"]
		return env.PlanID, doc, hasMethod
	}

	defaultID, defaultDoc, defaultHasMethod := sample("")
	explicitID, _, _ := sample("sieve")
	twophaseID, twophaseDoc, _ := sample("twophase")
	rssID, rssDoc, _ := sample("rss")

	if explicitID != defaultID {
		t.Errorf(`explicit method "sieve" got plan id %s, want the default's %s (must share one cache entry)`, explicitID, defaultID)
	}
	if defaultHasMethod {
		t.Error(`default-method plan document carries a "method" key; pre-subsystem bytes must be unchanged`)
	}
	if defaultDoc.ErrorInterval != nil {
		t.Error("default-method plan document carries an error_interval")
	}
	if twophaseID == defaultID || rssID == defaultID || twophaseID == rssID {
		t.Errorf("method plan ids not distinct: sieve=%s twophase=%s rss=%s", defaultID, twophaseID, rssID)
	}
	if twophaseDoc.Method != "twophase" || rssDoc.Method != "rss" {
		t.Errorf("plan method labels = %q/%q, want twophase/rss", twophaseDoc.Method, rssDoc.Method)
	}
	if twophaseDoc.ErrorInterval == nil {
		t.Error("twophase plan lost its error_interval")
	} else if iv := twophaseDoc.ErrorInterval; iv.High <= iv.Low {
		t.Errorf("twophase interval inverted: [%g, %g]", iv.Low, iv.High)
	}
	if rssDoc.ErrorInterval == nil {
		t.Error("rss plan lost its error_interval")
	} else if rssDoc.ErrorInterval.Resamples == 0 {
		t.Error("rss interval reports zero resamples")
	}
}

// TestSampleMethodPKS runs the pks methodology in workload mode and checks
// the CSV-mode rejection: pks needs server-side feature profiling, so a CSV
// source is the caller's error, not a 500.
func TestSampleMethodPKS(t *testing.T) {
	ts := newTestServer(t, Config{})
	status, body := postSample(t, ts.URL+"/v1/sample", map[string]any{
		"workload": "lmc", "scale": 0.01,
		"options": map[string]any{"method": "pks"},
	})
	if status != http.StatusOK {
		t.Fatalf("pks workload-mode status %d, body %s", status, body)
	}
	var env sampleEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	var doc planDoc
	if err := json.Unmarshal(env.Plan, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Method != "pks" {
		t.Errorf("plan method = %q, want pks", doc.Method)
	}
	if doc.NumStrata == 0 {
		t.Error("pks plan has no strata")
	}

	status, body = postSample(t, ts.URL+"/v1/sample", map[string]any{
		"profile_csv": testCSV(),
		"options":     map[string]any{"method": "pks"},
	})
	if status != http.StatusBadRequest {
		t.Fatalf("pks over CSV status %d, want 400; body %s", status, body)
	}
	if !strings.Contains(string(body), "workload mode") {
		t.Errorf("pks CSV rejection lost its explanation: %s", body)
	}
}

// TestSampleMethodValidation pins the 400s: unknown method names and stream
// mode under a non-default method.
func TestSampleMethodValidation(t *testing.T) {
	ts := newTestServer(t, Config{})
	status, body := postSample(t, ts.URL+"/v1/sample", map[string]any{
		"profile_csv": testCSV(),
		"options":     map[string]any{"method": "bogus"},
	})
	if status != http.StatusBadRequest {
		t.Fatalf("unknown method status %d, want 400; body %s", status, body)
	}
	if !strings.Contains(string(body), "bogus") {
		t.Errorf("unknown-method error does not name the method: %s", body)
	}

	status, body = postSample(t, ts.URL+"/v1/sample", map[string]any{
		"profile_csv": testCSV(),
		"options":     map[string]any{"method": "rss", "stream": true},
	})
	if status != http.StatusBadRequest {
		t.Fatalf("stream+rss status %d, want 400; body %s", status, body)
	}
	if !strings.Contains(string(body), "stream") {
		t.Errorf("stream rejection lost its explanation: %s", body)
	}
}

// TestSampleMethodQueryParam drives the raw-CSV request shape: ?method= must
// reach the same resolution path as the JSON envelope's options.method.
func TestSampleMethodQueryParam(t *testing.T) {
	ts := newTestServer(t, Config{})
	post := func(query string) (int, []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/sample"+query, "text/csv", strings.NewReader(testCSV()))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	status, body := post("?method=twophase")
	if status != http.StatusOK {
		t.Fatalf("?method=twophase status %d, body %s", status, body)
	}
	var env sampleEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	var doc planDoc
	if err := json.Unmarshal(env.Plan, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Method != "twophase" {
		t.Errorf("plan method = %q, want twophase", doc.Method)
	}
	if doc.ErrorInterval == nil {
		t.Error("query-selected twophase plan lost its error_interval")
	}

	if status, body := post("?method=bogus"); status != http.StatusBadRequest {
		t.Fatalf("?method=bogus status %d, want 400; body %s", status, body)
	}
}

// TestMethodRequestCounters checks the per-method observability: the
// method_requests map on /debug/metrics and the labeled
// sieved_method_requests_total series on /metrics, fed by both the single
// and the batch path.
func TestMethodRequestCounters(t *testing.T) {
	ts := newTestServer(t, Config{})
	csv := testCSV()
	for _, method := range []string{"", "twophase", "twophase"} {
		opts := map[string]any{}
		if method != "" {
			opts["method"] = method
		}
		status, body := postSample(t, ts.URL+"/v1/sample", map[string]any{"profile_csv": csv, "options": opts})
		if status != http.StatusOK {
			t.Fatalf("method %q status %d, body %s", method, status, body)
		}
	}
	// One rss item through the batch path must land in the same counters.
	status, body := postSample(t, ts.URL+"/v1/batch", map[string]any{
		"items": []map[string]any{
			{"profile_csv": csv, "options": map[string]any{"method": "rss"}},
		},
	})
	if status != http.StatusOK {
		t.Fatalf("batch status %d, body %s", status, body)
	}

	var m struct {
		MethodRequests map[string]int64 `json:"method_requests"`
	}
	if status := getJSON(t, ts.URL+"/debug/metrics", &m); status != http.StatusOK {
		t.Fatalf("metrics status %d", status)
	}
	want := map[string]int64{"sieve": 1, "twophase": 2, "rss": 1}
	for method, n := range want {
		if m.MethodRequests[method] != n {
			t.Errorf("method_requests[%q] = %d, want %d", method, m.MethodRequests[method], n)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{
		`sieved_method_requests_total{method="sieve"} 1`,
		`sieved_method_requests_total{method="twophase"} 2`,
		`sieved_method_requests_total{method="rss"} 1`,
	} {
		if !strings.Contains(string(text), line) {
			t.Errorf("/metrics missing %q", line)
		}
	}
}
