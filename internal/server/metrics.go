package server

import (
	"expvar"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/gpusampling/sieve/api"
	"github.com/gpusampling/sieve/internal/obs"
)

// requestSecondsMetric names the request-latency histogram in the registry
// and therefore in the Prometheus exposition.
const requestSecondsMetric = "sieved_request_seconds"

// stageSecondsMetric names the per-stage latency histogram family: one
// Prometheus histogram per serving stage, labeled {stage="..."}.
const stageSecondsMetric = "sieved_stage_seconds"

// latencyBuckets is the explicit upper-bound ladder every latency histogram
// is exposed with (Prometheus le values, seconds). The internal log-bucketed
// histograms are far finer; Cumulative downsamples them onto this ladder at
// scrape time, so changing the ladder never loses recorded data.
var latencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// metrics holds the server's expvar counters. The vars are kept off the
// global expvar namespace so several servers can coexist in one process
// (every httptest server would otherwise collide on Publish); cmd/sieved
// additionally publishes them globally under the "sieved" name. Request
// latencies go to a shared obs.Histogram (log-bucketed, lock-free) instead of
// a bespoke ring: quantiles cover the server's lifetime at constant memory
// and the same histogram feeds /debug/metrics and the Prometheus exposition.
// Every terminal response path records latency — errors included — into both
// the overall histogram and a per-status-class one
// (sieved_request_seconds_class_4xx, …), so p99 under errors is visible
// rather than a blind spot.
type metrics struct {
	Requests     expvar.Int // API requests accepted (sample, characterize, plan get, batch)
	Failures     expvar.Int // requests answered with a 4xx/5xx
	CacheHits    expvar.Int // plans served from the content-hash cache
	CacheMisses  expvar.Int // plan lookups that missed the cache
	Computations expvar.Int // sampling runs actually executed (misses minus coalesced/proxied)
	Coalesced    expvar.Int // requests that joined another request's in-flight computation
	BatchItems   expvar.Int // items processed across all /v1/batch requests
	PeerFills    expvar.Int // plans filled into the local cache from a peer replica
	PeerProxied  expvar.Int // requests proxied to the owning peer replica
	InFlight     expvar.Int // requests currently holding a worker slot
	Rejected     expvar.Int // requests that gave up waiting for a slot
	RowsIngested expvar.Int // profile rows ingested across all requests

	// methodCounts counts sample requests per resolved sampling methodology
	// (sieve, pks, twophase, rss, …), keyed by canonical method name. The map
	// grows lazily as methods are first requested, so a server that only ever
	// serves default-method traffic exposes only the "sieve" series.
	methodMu     sync.Mutex
	methodCounts map[string]*expvar.Int

	// stageHists holds one latency histogram per serving stage (decode, slot,
	// compute, …), fed by finishTrace with each completed request's per-stage
	// attribution and exposed as sieved_stage_seconds{stage="..."}. Like
	// methodCounts, the map grows as stages are first observed.
	stageMu    sync.Mutex
	stageHists map[string]*obs.Histogram

	// startOnce pins the epoch for sieved_uptime_seconds: server.New calls
	// started() at construction (the zero-value struct has no constructor of
	// its own), so the gauge measures from server start, not first scrape.
	startOnce sync.Once
	start     time.Time

	regOnce sync.Once
	reg     *obs.Registry
}

// started returns the first-use timestamp backing the uptime gauge.
func (m *metrics) started() time.Time {
	m.startOnce.Do(func() { m.start = time.Now() })
	return m.start
}

// observeStage records one request's attributed time in a serving stage.
func (m *metrics) observeStage(stage string, ns int64) {
	m.stageMu.Lock()
	if m.stageHists == nil {
		m.stageHists = make(map[string]*obs.Histogram)
	}
	h, ok := m.stageHists[stage]
	if !ok {
		h = obs.NewHistogram()
		m.stageHists[stage] = h
	}
	m.stageMu.Unlock()
	h.Observe(float64(ns) / 1e9)
}

// stageSnapshot returns the per-stage histograms sorted by stage name.
func (m *metrics) stageSnapshot() []stageHist {
	m.stageMu.Lock()
	out := make([]stageHist, 0, len(m.stageHists))
	for name, h := range m.stageHists {
		out = append(out, stageHist{name, h})
	}
	m.stageMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].stage < out[j].stage })
	return out
}

type stageHist struct {
	stage string
	h     *obs.Histogram
}

// MethodRequests returns the per-methodology sample-request counter for the
// canonical method name, creating it on first use.
func (m *metrics) MethodRequests(method string) *expvar.Int {
	m.methodMu.Lock()
	defer m.methodMu.Unlock()
	if m.methodCounts == nil {
		m.methodCounts = make(map[string]*expvar.Int)
	}
	c, ok := m.methodCounts[method]
	if !ok {
		c = new(expvar.Int)
		m.methodCounts[method] = c
	}
	return c
}

// methodSnapshot returns the per-method counters sorted by method name, so
// both expositions render deterministically.
func (m *metrics) methodSnapshot() []methodCount {
	m.methodMu.Lock()
	defer m.methodMu.Unlock()
	out := make([]methodCount, 0, len(m.methodCounts))
	for name, c := range m.methodCounts {
		out = append(out, methodCount{name, c.Value()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].method < out[j].method })
	return out
}

type methodCount struct {
	method string
	count  int64
}

// registry lazily creates the metric registry so the zero-value metrics
// struct embedded in Server keeps working without a constructor.
func (m *metrics) registry() *obs.Registry {
	m.regOnce.Do(func() { m.reg = obs.NewRegistry() })
	return m.reg
}

// statusClass buckets an HTTP status for the latency breakdown. 499
// (client-abandoned) counts as 4xx: the client gave up, the server did not
// fail.
func statusClass(status int) string {
	switch {
	case status >= 500:
		return "5xx"
	case status >= 400:
		return "4xx"
	case status >= 300:
		return "3xx"
	default:
		return "2xx"
	}
}

// observe records one terminal response: its wall time into the overall
// latency histogram and the per-status-class one. Handlers route every exit —
// success, caller error, timeout, disconnect — through here, so error-path
// latency shows up in the quantiles instead of only successes.
func (m *metrics) observe(status int, d time.Duration) {
	reg := m.registry()
	reg.Histogram(requestSecondsMetric).ObserveDuration(d)
	reg.Histogram(requestSecondsMetric + "_class_" + statusClass(status)).ObserveDuration(d)
}

// observeLatency records one completed request's wall time without a status
// breakdown (kept for callers that predate observe).
func (m *metrics) observeLatency(d time.Duration) {
	m.registry().Histogram(requestSecondsMetric).ObserveDuration(d)
}

// quantiles returns the p50 and p99 of the recorded latencies, in
// milliseconds (0, 0 before the first request).
func (m *metrics) quantiles() (p50, p99 float64) {
	h := m.registry().Histogram(requestSecondsMetric)
	return h.Quantile(0.50) * 1e3, h.Quantile(0.99) * 1e3
}

// handler serves the /debug/metrics snapshot. expvar.Int values render as
// JSON numbers via String(), so the document is assembled directly. The JSON
// shape (keys and nesting) is a compatibility contract pinned by
// TestDebugMetricsJSONShape — monitoring dashboards parse it. The counters
// satisfy cache_hits + cache_misses + failures == requests for the non-batch
// endpoints (batch adds batch_items on top of its one request).
func (m *metrics) handler(cacheLen func() int) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		p50, p99 := m.quantiles()
		var methods strings.Builder
		for i, mc := range m.methodSnapshot() {
			if i > 0 {
				methods.WriteByte(',')
			}
			fmt.Fprintf(&methods, "%q:%d", mc.method, mc.count)
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"requests":%s,"failures":%s,"cache_hits":%s,"cache_misses":%s,"cache_entries":%d,"computations":%s,"coalesced":%s,"batch_items":%s,"peer_fills":%s,"peer_proxied":%s,"in_flight":%s,"rejected":%s,"rows_ingested":%s,"method_requests":{%s},"latency_ms":{"p50":%g,"p99":%g}}`+"\n",
			m.Requests.String(), m.Failures.String(),
			m.CacheHits.String(), m.CacheMisses.String(), cacheLen(),
			m.Computations.String(), m.Coalesced.String(), m.BatchItems.String(),
			m.PeerFills.String(), m.PeerProxied.String(),
			m.InFlight.String(), m.Rejected.String(), m.RowsIngested.String(),
			methods.String(), p50, p99)
	}
}

// fmtLE renders an upper bound the way Prometheus spells le values.
func fmtLE(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// writeHistogram renders one histogram at the explicit latencyBuckets ladder
// in Prometheus histogram form: cumulative _bucket samples per le (plus
// +Inf), then _sum and _count. labels ("" or `stage="x",`) is spliced before
// the le label, so a labeled family shares one # TYPE header written by the
// caller.
func writeHistogram(w io.Writer, name, labels string, h *obs.Histogram) {
	cum, total := h.Cumulative(latencyBuckets)
	for i, b := range latencyBuckets {
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", name, labels, fmtLE(b), cum[i])
	}
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, labels, total)
	if labels != "" {
		labels = "{" + strings.TrimRight(labels, ",") + "}"
	}
	fmt.Fprintf(w, "%s_sum%s %g\n%s_count%s %d\n", name, labels, h.Sum(), name, labels, h.Count())
}

// prometheus serves the counters and the latency histograms in Prometheus
// text exposition format (0.0.4): counters and gauges are written directly
// from the expvar values; the latency histograms (overall, per status class,
// per serving stage) render with explicit buckets — real _bucket/_sum/_count
// series, not summary quantiles — so scrapes aggregate across replicas.
func (m *metrics) prometheus(cacheLen func() int) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		counter := func(name string, v int64) {
			fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, v)
		}
		gauge := func(name string, v int64) {
			fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, v)
		}
		counter("sieved_requests_total", m.Requests.Value())
		counter("sieved_failures_total", m.Failures.Value())
		counter("sieved_cache_hits_total", m.CacheHits.Value())
		counter("sieved_cache_misses_total", m.CacheMisses.Value())
		counter("sieved_computations_total", m.Computations.Value())
		counter("sieved_coalesced_total", m.Coalesced.Value())
		counter("sieved_batch_items_total", m.BatchItems.Value())
		counter("sieved_peer_fills_total", m.PeerFills.Value())
		counter("sieved_peer_proxied_total", m.PeerProxied.Value())
		counter("sieved_rejected_total", m.Rejected.Value())
		counter("sieved_rows_ingested_total", m.RowsIngested.Value())
		if snap := m.methodSnapshot(); len(snap) > 0 {
			fmt.Fprintf(w, "# TYPE sieved_method_requests_total counter\n")
			for _, mc := range snap {
				fmt.Fprintf(w, "sieved_method_requests_total{method=%q} %d\n", mc.method, mc.count)
			}
		}
		gauge("sieved_in_flight", m.InFlight.Value())
		gauge("sieved_cache_entries", int64(cacheLen()))
		gauge("sieved_goroutines", int64(runtime.NumGoroutine()))
		fmt.Fprintf(w, "# TYPE sieved_uptime_seconds gauge\nsieved_uptime_seconds %g\n",
			time.Since(m.started()).Seconds())
		// Build/protocol identity: the same version /healthz reports, as a
		// constant gauge with the value in a label (the node_exporter idiom).
		fmt.Fprintf(w, "# TYPE sieved_build_info gauge\nsieved_build_info{version=%q} 1\n", api.Version)

		// Request-latency histograms from the shared registry
		// (sieved_request_seconds and its _class_* split), explicit buckets.
		hists := m.registry().Histograms()
		names := make([]string, 0, len(hists))
		for name := range hists {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(w, "# TYPE %s histogram\n", name)
			writeHistogram(w, name, "", hists[name])
		}
		// Per-stage attribution histograms, one labeled family.
		if stages := m.stageSnapshot(); len(stages) > 0 {
			fmt.Fprintf(w, "# TYPE %s histogram\n", stageSecondsMetric)
			for _, st := range stages {
				writeHistogram(w, stageSecondsMetric, fmt.Sprintf("stage=%q,", st.stage), st.h)
			}
		}
	}
}

// Publish registers the counters on the global expvar namespace under
// name.* so the standard /debug/vars endpoint exposes them too. Call at most
// once per process (expvar panics on duplicate names).
func (m *metrics) Publish(name string) {
	expvar.Publish(name+".requests", &m.Requests)
	expvar.Publish(name+".failures", &m.Failures)
	expvar.Publish(name+".cache_hits", &m.CacheHits)
	expvar.Publish(name+".cache_misses", &m.CacheMisses)
	expvar.Publish(name+".computations", &m.Computations)
	expvar.Publish(name+".coalesced", &m.Coalesced)
	expvar.Publish(name+".batch_items", &m.BatchItems)
	expvar.Publish(name+".peer_fills", &m.PeerFills)
	expvar.Publish(name+".peer_proxied", &m.PeerProxied)
	expvar.Publish(name+".in_flight", &m.InFlight)
	expvar.Publish(name+".rejected", &m.Rejected)
	expvar.Publish(name+".rows_ingested", &m.RowsIngested)
}
