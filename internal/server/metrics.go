package server

import (
	"expvar"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"
)

// latencyWindow is the number of recent request latencies retained for the
// p50/p99 estimates: a fixed ring, so the quantiles track current behaviour
// and the memory cost is constant.
const latencyWindow = 512

// metrics holds the server's expvar counters. The vars are kept off the
// global expvar namespace so several servers can coexist in one process
// (every httptest server would otherwise collide on Publish); cmd/sieved
// additionally publishes them globally under the "sieved" name.
type metrics struct {
	Requests     expvar.Int // sampling/characterization requests accepted
	Failures     expvar.Int // requests answered with a 4xx/5xx
	CacheHits    expvar.Int // plans served from the content-hash cache
	CacheMisses  expvar.Int // plans that had to be computed
	InFlight     expvar.Int // requests currently holding a worker slot
	Rejected     expvar.Int // requests that gave up waiting for a slot
	RowsIngested expvar.Int // profile rows ingested across all requests

	mu        sync.Mutex
	latencies [latencyWindow]time.Duration
	at        int
	n         int
}

// observeLatency records one completed request's wall time in the ring.
func (m *metrics) observeLatency(d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.latencies[m.at] = d
	m.at = (m.at + 1) % latencyWindow
	if m.n < latencyWindow {
		m.n++
	}
}

// quantiles returns the p50 and p99 of the retained latencies, in
// milliseconds (0, 0 before the first request).
func (m *metrics) quantiles() (p50, p99 float64) {
	m.mu.Lock()
	snap := make([]time.Duration, m.n)
	copy(snap, m.latencies[:m.n])
	m.mu.Unlock()
	if len(snap) == 0 {
		return 0, 0
	}
	sort.Slice(snap, func(i, j int) bool { return snap[i] < snap[j] })
	q := func(p float64) float64 {
		i := int(p * float64(len(snap)-1))
		return float64(snap[i]) / float64(time.Millisecond)
	}
	return q(0.50), q(0.99)
}

// handler serves the /debug/metrics snapshot. expvar.Int values render as
// JSON numbers via String(), so the document is assembled directly.
func (m *metrics) handler(cacheLen func() int) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		p50, p99 := m.quantiles()
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"requests":%s,"failures":%s,"cache_hits":%s,"cache_misses":%s,"cache_entries":%d,"in_flight":%s,"rejected":%s,"rows_ingested":%s,"latency_ms":{"p50":%g,"p99":%g}}`+"\n",
			m.Requests.String(), m.Failures.String(),
			m.CacheHits.String(), m.CacheMisses.String(), cacheLen(),
			m.InFlight.String(), m.Rejected.String(), m.RowsIngested.String(),
			p50, p99)
	}
}

// Publish registers the counters on the global expvar namespace under
// name.* so the standard /debug/vars endpoint exposes them too. Call at most
// once per process (expvar panics on duplicate names).
func (m *metrics) Publish(name string) {
	expvar.Publish(name+".requests", &m.Requests)
	expvar.Publish(name+".failures", &m.Failures)
	expvar.Publish(name+".cache_hits", &m.CacheHits)
	expvar.Publish(name+".cache_misses", &m.CacheMisses)
	expvar.Publish(name+".in_flight", &m.InFlight)
	expvar.Publish(name+".rejected", &m.Rejected)
	expvar.Publish(name+".rows_ingested", &m.RowsIngested)
}
