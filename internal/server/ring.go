package server

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"

	"github.com/gpusampling/sieve/api"
	"github.com/gpusampling/sieve/client"
	"github.com/gpusampling/sieve/internal/obs"
)

// ringVnodes is the number of virtual points each replica contributes to the
// hash ring. 64 points per node keeps the keyspace split within a few percent
// of even for small clusters while the ring stays tiny (a handful of replicas
// × 64 points is a few KB, binary-searched per lookup).
const ringVnodes = 64

// ring is a consistent-hash ring over replica base URLs: a plan's content
// hash maps to the first virtual point clockwise, and that point's node owns
// the plan. Consistent hashing means adding or removing one replica remaps
// only the keys adjacent to its points instead of reshuffling the whole
// keyspace, so a rolling restart doesn't stampede every shard's cache.
//
// A nil *ring degrades gracefully to single-node operation: the local server
// owns everything and no request is ever proxied.
type ring struct {
	self   string
	nodes  []string
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	node string
}

// normalizePeerURL canonicalizes a replica base URL for ring membership:
// whitespace-trimmed, no trailing slash. Hash placement depends on the exact
// string, so every replica must spell the member list identically.
func normalizePeerURL(u string) string {
	return strings.TrimRight(strings.TrimSpace(u), "/")
}

// splitPeers parses a comma-separated peer list into normalized base URLs,
// dropping empties and duplicates while preserving first-seen order.
func splitPeers(csv string) []string {
	var out []string
	seen := make(map[string]bool)
	for _, p := range strings.Split(csv, ",") {
		p = normalizePeerURL(p)
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		out = append(out, p)
	}
	return out
}

// ringHash hashes a ring placement string (node#vnode or a plan key) to a
// point on the ring. sha256 keeps placement identical across replicas and
// architectures; only the first 8 bytes are used.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// newRing builds the ring for self within peers. self is always a member even
// when absent from peers, so `-peers` may list either every replica or just
// the others. Fewer than two distinct members means no sharding: newRing
// returns nil and the caller serves everything locally.
func newRing(self string, peers []string) (*ring, error) {
	self = normalizePeerURL(self)
	members := make([]string, 0, len(peers)+1)
	seen := make(map[string]bool)
	add := func(u string) error {
		u = normalizePeerURL(u)
		if u == "" || seen[u] {
			return nil
		}
		if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
			return fmt.Errorf("peer %q: base URL must start with http:// or https://", u)
		}
		seen[u] = true
		members = append(members, u)
		return nil
	}
	for _, p := range peers {
		if err := add(p); err != nil {
			return nil, err
		}
	}
	if len(members) > 0 {
		if self == "" {
			return nil, fmt.Errorf("peers configured but self URL is empty: set -self to this replica's base URL")
		}
		if err := add(self); err != nil {
			return nil, err
		}
	}
	if len(members) < 2 {
		return nil, nil
	}
	r := &ring{self: self, nodes: members, points: make([]ringPoint, 0, len(members)*ringVnodes)}
	for _, node := range members {
		for v := 0; v < ringVnodes; v++ {
			r.points = append(r.points, ringPoint{hash: ringHash(fmt.Sprintf("%s#%d", node, v)), node: node})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r, nil
}

// owner returns the replica owning key: the node of the first ring point at
// or clockwise after the key's hash, wrapping at the top. A nil ring owns
// nothing remotely — the local node is always the owner.
func (r *ring) owner(key string) string {
	if r == nil || len(r.points) == 0 {
		return ""
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// ownedElsewhere reports the owning peer URL when key belongs to another
// replica, and false when this replica owns it (or no ring is configured).
func (r *ring) ownedElsewhere(key string) (string, bool) {
	o := r.owner(key)
	if o == "" || o == r.self {
		return "", false
	}
	return o, true
}

// forwardedHeader marks a request as already routed by a replica. A receiver
// always serves a forwarded request locally, so ring disagreement during a
// membership change cannot bounce a request between replicas forever.
const forwardedHeader = "X-Sieved-Forwarded"

func isForwarded(r *http.Request) bool { return r.Header.Get(forwardedHeader) != "" }

// planFromEnvelope extracts the raw plan document from a relayed
// api.PlanEnvelope body for a local cache fill. The plan bytes are taken
// verbatim from the envelope, so the fill is byte-identical to the owner's
// cached document. A mismatched plan_id (peer confusion) is discarded rather
// than poisoning the cache.
func planFromEnvelope(body []byte, id string) []byte {
	var env api.PlanEnvelope
	if err := json.Unmarshal(body, &env); err != nil || env.PlanID != id || len(env.Plan) == 0 {
		return nil
	}
	return append([]byte(nil), env.Plan...)
}

// peerClient builds the typed client for one owning replica. All peer
// traffic goes through the exported client package — no hand-rolled HTTP
// here. Retries are disabled: an unreachable owner should degrade to local
// compute immediately (a dead peer costs latency, not availability), not
// burn a retry budget first. The shared s.peer http.Client keeps one
// connection pool across owners.
func (s *Server) peerClient(owner string) (*client.Client, error) {
	return client.New(owner,
		client.WithHTTPClient(s.peer),
		client.WithTimeout(s.cfg.RequestTimeout),
		client.WithRetries(0),
		client.WithHeader(forwardedHeader, s.selfURL()),
	)
}

// proxySample forwards a resolved sample request to the owning replica and
// relays its response verbatim. It reports ok=false when the owner could not
// be reached (transport error), in which case the caller computes locally —
// graceful degradation. A reachable owner's answer is relayed whatever its
// status, and a successful plan also fills the local cache so the next
// identical request is a local hit. A mismatched plan_id (peer confusion) is
// discarded rather than poisoning the cache.
func (s *Server) proxySample(w http.ResponseWriter, ctx context.Context, rv *resolved, id, owner string) (int, bool) {
	pc, err := s.peerClient(owner)
	if err != nil {
		return 0, false
	}
	// The hop runs under a proxy-stage span and carries this request's trace
	// id, so the owner's trace of the forwarded request shares the id and the
	// cluster-wide path reassembles from the per-replica stores.
	pctx, span := obs.StartSpan(ctx, stageProxy)
	span.SetAttr("owner", owner)
	defer span.End()
	if tid := traceID(ctx); tid != "" {
		pctx = client.WithTraceID(pctx, tid)
	}
	status, respBody, err := pc.SampleRaw(pctx, rv.req)
	if err != nil {
		if s.cfg.Logger != nil {
			s.cfg.Logger.Warn("peer proxy failed, computing locally", "owner", owner, "error", err.Error())
		}
		return 0, false
	}
	s.metrics.PeerProxied.Add(1)
	if status == http.StatusOK {
		if doc := planFromEnvelope(respBody, id); doc != nil {
			s.cache.put(id, doc)
			s.metrics.PeerFills.Add(1)
		}
	} else {
		s.metrics.Failures.Add(1)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(respBody)
	return status, true
}

// fetchPlanFromPeer retrieves a cached plan document from the owning replica
// for a local fill, byte-identical to the owner's cached bytes. Any failure
// — owner down, plan evicted there, mismatched plan_id — returns nil and the
// caller answers 404 as a single node would.
func (s *Server) fetchPlanFromPeer(ctx context.Context, owner, id string) []byte {
	pc, err := s.peerClient(owner)
	if err != nil {
		return nil
	}
	pctx, span := obs.StartSpan(ctx, stageProxy)
	span.SetAttr("owner", owner)
	defer span.End()
	if tid := traceID(ctx); tid != "" {
		pctx = client.WithTraceID(pctx, tid)
	}
	env, err := pc.GetPlan(pctx, id)
	if err != nil {
		if s.cfg.Logger != nil {
			s.cfg.Logger.Warn("peer plan fetch failed", "owner", owner, "error", err.Error())
		}
		return nil
	}
	if env.PlanID != id || len(env.Plan) == 0 {
		return nil
	}
	return append([]byte(nil), env.Plan...)
}
