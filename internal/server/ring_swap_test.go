package server

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// TestSetPeersSwapUnderLoad hammers SetPeers — alternating a two-node ring,
// a different two-node ring, and no ring at all — while reader goroutines
// continuously resolve ownership and serve requests. The atomic.Pointer swap
// must never produce a torn read (race detector) and every lookup must see a
// coherent ring: either an owner from one of the configured member sets or
// single-node operation.
func TestSetPeersSwapUnderLoad(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	memberSets := [][]string{
		{"http://peer-a:1", "http://peer-b:2"},
		{"http://peer-c:3", "http://peer-d:4"},
		nil, // single node
	}
	valid := map[string]bool{"": true}
	for _, set := range memberSets {
		for _, m := range set {
			valid[m] = true
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var writers sync.WaitGroup

	// Writers: swap the ring as fast as possible, a bounded number of times.
	const swapsPerWriter = 600
	for w := 0; w < 2; w++ {
		wg.Add(1)
		writers.Add(1)
		go func(w int) {
			defer wg.Done()
			defer writers.Done()
			for i := 0; i < swapsPerWriter; i++ {
				set := memberSets[(i+w)%len(memberSets)]
				if err := srv.SetPeers(ts.URL, set); err != nil {
					t.Errorf("SetPeers: %v", err)
					return
				}
			}
		}(w)
	}

	// Readers: resolve ownership of many keys mid-swap.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				owner := srv.shardRing().owner("plan-key")
				if !valid[owner] && owner != ts.URL {
					t.Errorf("torn ring read: owner %q from no configured member set", owner)
					return
				}
			}
		}()
	}

	// Requests keep flowing while rings swap underneath them.
	for i := 0; i < 10; i++ {
		var h struct {
			Status string `json:"status"`
		}
		if status := getJSON(t, ts.URL+"/healthz", &h); status != http.StatusOK || h.Status != "ok" {
			t.Fatalf("healthz during ring swaps = %d %+v", status, h)
		}
	}
	writers.Wait()
	close(stop)
	wg.Wait()
}

// TestInFlightProxiedRequestSurvivesRingSwap pins the swap semantics the
// atomic.Pointer buys: a request already proxied to the old ring's owner
// completes against that owner even when the ring is dropped mid-flight.
func TestInFlightProxiedRequestSurvivesRingSwap(t *testing.T) {
	a, b, aURL, bURL := twoReplicas(t, Config{})
	csv := testCSV()
	theta, _ := thetaOwnedBy(t, a, csv, bURL) // B owns; A proxies

	// Gate B's computation so the proxied request is provably in flight when
	// the ring swaps.
	entered := make(chan struct{})
	release := make(chan struct{})
	var gateOnce sync.Once
	b.preCompute = func(string) {
		gateOnce.Do(func() {
			close(entered)
			<-release
		})
	}

	type result struct {
		status int
		body   []byte
	}
	done := make(chan result, 1)
	go func() {
		status, body := postCSV(t, aURL+"/v1/sample?theta="+theta, csv)
		done <- result{status, body}
	}()

	<-entered
	// The proxied request is now computing on B. Drop A's ring entirely:
	// future requests are single-node, but the in-flight proxy must finish
	// against the old ring's owner.
	if err := a.SetPeers(aURL, nil); err != nil {
		t.Fatal(err)
	}
	if a.shardRing() != nil {
		t.Fatal("ring still configured after dropping peers")
	}
	close(release)

	res := <-done
	if res.status != http.StatusOK {
		t.Fatalf("in-flight proxied request failed after ring swap: %d %s", res.status, res.body)
	}
	if a.metrics.PeerProxied.Value() != 1 {
		t.Fatalf("peer_proxied = %d, want 1", a.metrics.PeerProxied.Value())
	}
	if b.metrics.Computations.Value() != 1 || a.metrics.Computations.Value() != 0 {
		t.Fatalf("computations a/b = %d/%d, want 0/1",
			a.metrics.Computations.Value(), b.metrics.Computations.Value())
	}
}
