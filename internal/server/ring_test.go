package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

func TestSplitPeers(t *testing.T) {
	got := splitPeers(" http://a:1/, ,http://b:2,http://a:1,,")
	want := []string{"http://a:1", "http://b:2"}
	if len(got) != len(want) {
		t.Fatalf("splitPeers = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("splitPeers = %v, want %v", got, want)
		}
	}
}

func TestNewRingValidation(t *testing.T) {
	if r, err := newRing("", nil); err != nil || r != nil {
		t.Fatalf("no peers: ring=%v err=%v, want nil,nil", r, err)
	}
	if r, err := newRing("http://a:1", []string{"http://a:1/"}); err != nil || r != nil {
		t.Fatalf("self-only list: ring=%v err=%v, want nil,nil (single node)", r, err)
	}
	if _, err := newRing("", []string{"http://b:2"}); err == nil {
		t.Fatal("peers without self accepted")
	}
	if _, err := newRing("http://a:1", []string{"b:2"}); err == nil {
		t.Fatal("schemeless peer URL accepted")
	}
}

// TestRingOwnershipProperties checks the consistent-hash ring: ownership is
// deterministic and identical however the member list is ordered, spread is
// reasonably even, and removing one node only remaps that node's keys.
func TestRingOwnershipProperties(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:2", "http://c:3"}
	r1, err := newRing(nodes[0], nodes[1:])
	if err != nil {
		t.Fatal(err)
	}
	r2, err := newRing(nodes[2], nodes[:2]) // same set, different self/order
	if err != nil {
		t.Fatal(err)
	}

	const keys = 3000
	counts := map[string]int{}
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("plan-%d", i)
		o := r1.owner(k)
		if o2 := r2.owner(k); o2 != o {
			t.Fatalf("replicas disagree on owner of %s: %s vs %s", k, o, o2)
		}
		counts[o]++
	}
	for _, n := range nodes {
		if counts[n] < keys/10 {
			t.Fatalf("node %s owns %d of %d keys — ring badly unbalanced: %v", n, counts[n], keys, counts)
		}
	}

	// Consistency: dropping node c remaps only c's keys.
	r3, err := newRing(nodes[0], nodes[1:2])
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("plan-%d", i)
		before := r1.owner(k)
		after := r3.owner(k)
		if before != nodes[2] && after != before {
			t.Fatalf("key %s moved %s → %s though its owner never left", k, before, after)
		}
	}
}

func TestNilRingOwnsNothingElsewhere(t *testing.T) {
	var r *ring
	if o := r.owner("k"); o != "" {
		t.Fatalf("nil ring owner = %q", o)
	}
	if o, ok := r.ownedElsewhere("k"); ok || o != "" {
		t.Fatal("nil ring claims remote ownership")
	}
}

// twoReplicas starts two peered servers and returns them with their URLs.
func twoReplicas(t *testing.T, cfg Config) (a, b *Server, aURL, bURL string) {
	t.Helper()
	a, b = New(cfg), New(cfg)
	tsA := httptest.NewServer(a.Handler())
	tsB := httptest.NewServer(b.Handler())
	t.Cleanup(tsA.Close)
	t.Cleanup(tsB.Close)
	if err := a.SetPeers(tsA.URL, []string{tsB.URL}); err != nil {
		t.Fatal(err)
	}
	if err := b.SetPeers(tsB.URL, []string{tsA.URL}); err != nil {
		t.Fatal(err)
	}
	return a, b, tsA.URL, tsB.URL
}

// planIDFor computes the content hash a CSV request resolves to, so tests
// can pick the owning replica deterministically.
func planIDFor(t *testing.T, srv *Server, csv string) string {
	t.Helper()
	rv, err := srv.resolve(&SampleRequest{ProfileCSV: csv})
	if err != nil {
		t.Fatal(err)
	}
	return rv.key("sample")
}

// TestPeerPlanFill is the acceptance check for shard routing: a plan
// computed on one replica is served by the other via GET /v1/plans/{id} —
// the non-owner fetches from the owner and fills its local cache.
func TestPeerPlanFill(t *testing.T) {
	a, b, aURL, bURL := twoReplicas(t, Config{})
	csv := testCSV()
	id := planIDFor(t, a, csv)

	owner, other := aURL, bURL
	ownerSrv, otherSrv := a, b
	if a.shardRing().owner(id) == bURL {
		owner, other = bURL, aURL
		ownerSrv, otherSrv = b, a
	}

	status, body := postCSV(t, owner+"/v1/sample", csv)
	if status != http.StatusOK {
		t.Fatalf("owner POST status %d", status)
	}
	var env sampleEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if env.PlanID != id {
		t.Fatalf("plan id %s, want %s", env.PlanID, id)
	}

	// The non-computing replica serves the plan by fetching from the owner.
	var got sampleEnvelope
	if status := getJSON(t, other+"/v1/plans/"+id, &got); status != http.StatusOK {
		t.Fatalf("non-owner plan GET status %d, want 200", status)
	}
	if !got.Cached || string(got.Plan) != string(env.Plan) {
		t.Fatal("peer-filled plan is not byte-identical to the owner's")
	}
	if otherSrv.metrics.PeerFills.Value() != 1 {
		t.Fatalf("non-owner peer_fills = %d, want 1", otherSrv.metrics.PeerFills.Value())
	}
	if otherSrv.metrics.Computations.Value() != 0 {
		t.Fatalf("non-owner computed %d plans, want 0", otherSrv.metrics.Computations.Value())
	}
	if ownerSrv.metrics.Computations.Value() != 1 {
		t.Fatalf("owner computations = %d, want 1", ownerSrv.metrics.Computations.Value())
	}

	// Second GET on the non-owner is a purely local hit (already filled).
	if status := getJSON(t, other+"/v1/plans/"+id, &got); status != http.StatusOK {
		t.Fatalf("second non-owner GET status %d", status)
	}
	if otherSrv.metrics.PeerFills.Value() != 1 {
		t.Fatalf("peer_fills grew to %d on a local hit", otherSrv.metrics.PeerFills.Value())
	}
}

// TestSampleProxiedToOwner: a POST /v1/sample landing on the non-owner is
// proxied to the owning replica (which computes exactly once) and the
// response fills the non-owner's cache on the way through.
func TestSampleProxiedToOwner(t *testing.T) {
	a, b, aURL, bURL := twoReplicas(t, Config{})
	csv := testCSV()
	id := planIDFor(t, a, csv)

	nonOwnerURL := aURL
	ownerSrv, nonOwnerSrv := b, a
	if a.shardRing().owner(id) == aURL {
		nonOwnerURL = bURL
		ownerSrv, nonOwnerSrv = a, b
	}

	status, body := postCSV(t, nonOwnerURL+"/v1/sample", csv)
	if status != http.StatusOK {
		t.Fatalf("proxied POST status %d: %s", status, body)
	}
	var env sampleEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if env.PlanID != id {
		t.Fatalf("proxied plan id %s, want %s", env.PlanID, id)
	}
	if ownerSrv.metrics.Computations.Value() != 1 || nonOwnerSrv.metrics.Computations.Value() != 0 {
		t.Fatalf("computations owner/non-owner = %d/%d, want 1/0",
			ownerSrv.metrics.Computations.Value(), nonOwnerSrv.metrics.Computations.Value())
	}
	if nonOwnerSrv.metrics.PeerProxied.Value() != 1 || nonOwnerSrv.metrics.PeerFills.Value() != 1 {
		t.Fatalf("non-owner peer_proxied/peer_fills = %d/%d, want 1/1",
			nonOwnerSrv.metrics.PeerProxied.Value(), nonOwnerSrv.metrics.PeerFills.Value())
	}

	// The proxy response filled the non-owner's cache: the next identical
	// POST there is a local hit, no second proxy.
	status, body = postCSV(t, nonOwnerURL+"/v1/sample", csv)
	if status != http.StatusOK {
		t.Fatalf("second POST status %d", status)
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if !env.Cached {
		t.Fatal("second POST on non-owner missed its peer-filled cache")
	}
	if nonOwnerSrv.metrics.PeerProxied.Value() != 1 {
		t.Fatalf("peer_proxied = %d after local hit, want still 1", nonOwnerSrv.metrics.PeerProxied.Value())
	}
}

// thetaOwnedBy searches for a θ whose resolved request hashes to wantOwner
// on srv's ring, so routing tests stay deterministic across the random
// httptest ports that shape the ring. With two members each θ has ~1/2
// chance, so 64 candidates cannot plausibly all miss.
func thetaOwnedBy(t *testing.T, srv *Server, csv, wantOwner string) (theta string, id string) {
	t.Helper()
	for i := 30; i < 94; i++ {
		theta = fmt.Sprintf("0.%d", i)
		f, err := strconv.ParseFloat(theta, 64)
		if err != nil {
			t.Fatal(err)
		}
		rv, err := srv.resolve(&SampleRequest{ProfileCSV: csv, Options: RequestOptions{Theta: f}})
		if err != nil {
			t.Fatal(err)
		}
		id = rv.key("sample")
		if srv.shardRing().owner(id) == wantOwner {
			return theta, id
		}
	}
	t.Fatal("no theta in [0.30, 0.93] hashes to the desired owner")
	return "", ""
}

// TestForwardedRequestServedLocally pins loop prevention: a request carrying
// the forwarded header is served where it lands, never re-proxied, even when
// the ring says another replica owns it.
func TestForwardedRequestServedLocally(t *testing.T) {
	a, _, aURL, bURL := twoReplicas(t, Config{})
	csv := testCSV()
	theta, _ := thetaOwnedBy(t, a, csv, bURL) // B owns; A is the non-owner

	req, err := http.NewRequest(http.MethodPost, aURL+"/v1/sample?theta="+theta, strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/csv")
	req.Header.Set(forwardedHeader, bURL)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded POST status %d", resp.StatusCode)
	}
	if a.metrics.Computations.Value() != 1 || a.metrics.PeerProxied.Value() != 0 {
		t.Fatalf("forwarded request not served locally: computations=%d proxied=%d",
			a.metrics.Computations.Value(), a.metrics.PeerProxied.Value())
	}
}

// TestDeadPeerDegradesToLocal: when the owning replica is unreachable, the
// receiving replica computes locally instead of failing the request, and a
// plan GET answers 404 like a single cold node — not a 5xx.
func TestDeadPeerDegradesToLocal(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	// A peer that is already gone: grab a URL, then close the listener.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()
	if err := srv.SetPeers(ts.URL, []string{deadURL}); err != nil {
		t.Fatal(err)
	}

	csv := testCSV()
	theta, id := thetaOwnedBy(t, srv, csv, deadURL)
	status, body := postCSV(t, ts.URL+"/v1/sample?theta="+theta, csv)
	if status != http.StatusOK {
		t.Fatalf("POST with dead owner status %d: %s", status, body)
	}
	if srv.metrics.Computations.Value() != 1 {
		t.Fatalf("computations = %d, want 1 (local fallback)", srv.metrics.Computations.Value())
	}
	// The locally-computed plan is cached and servable here.
	var env sampleEnvelope
	if status := getJSON(t, ts.URL+"/v1/plans/"+id, &env); status != http.StatusOK {
		t.Fatalf("fallback plan not cached locally: %d", status)
	}

	// An uncached id owned by the dead peer: 404, not an error surface.
	_, unknown := thetaOwnedBy(t, srv, csv+"kern_x,96,96,128,2e6\n", deadURL)
	var errDoc map[string]string
	if status := getJSON(t, ts.URL+"/v1/plans/"+unknown, &errDoc); status != http.StatusNotFound {
		t.Fatalf("plan GET with dead owner status %d, want 404", status)
	}
}
