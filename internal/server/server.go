// Package server implements sieved, a long-lived HTTP JSON service that
// hosts the Sieve sampling pipeline as a shared backend: many concurrent
// "give me a sampling plan for this profile" requests over one process, the
// way PKA-style profiling infrastructure is consumed.
//
// Endpoints:
//
//	POST /v1/sample        profile CSV (text/csv) or JSON envelope → sampling plan
//	POST /v1/batch         many profiles in one request → per-item plan envelopes
//	POST /v1/characterize  same input as /v1/sample → per-kernel workload characterization
//	GET  /v1/plans/{id}    content-hash-addressed plan lookup
//	GET  /healthz          liveness
//	GET  /debug/metrics    expvar counters + latency quantiles (JSON)
//	GET  /metrics          the same metrics in Prometheus text exposition format
//
// Every sampling run is bounded three ways: a worker-slot semaphore caps
// concurrent compute, a per-request timeout caps each run's wall time, and
// http.MaxBytesReader caps request bodies. Plans are cached in a
// content-hash-addressed LRU keyed by (profile source, resolved options), so
// identical requests are computed once and cache hits return byte-identical
// plan JSON.
//
// Concurrent misses on one content hash coalesce onto a single computation
// through a key-indexed in-flight table: the computation runs detached under
// its own timeout (a leader's client disconnect does not fail the
// followers), while each waiting request still honors its own context. With
// peers configured (SetPeers), a consistent-hash ring routes each content
// hash to its owning replica — non-owners proxy sample requests to the owner
// and fetch-and-fill cached plans from it, so the cluster computes each plan
// once and any replica can serve GET /v1/plans/{id}.
package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"mime"
	"net/http"
	"net/url"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"github.com/gpusampling/sieve"
	"github.com/gpusampling/sieve/api"
	"github.com/gpusampling/sieve/internal/core"
	"github.com/gpusampling/sieve/internal/obs"
	"github.com/gpusampling/sieve/internal/pks"
	"github.com/gpusampling/sieve/internal/sampler"
)

// Config bounds the service. The zero value serves with sane defaults.
type Config struct {
	// MaxConcurrent is the worker-slot count: at most this many sampling or
	// characterization runs compute at once (GOMAXPROCS if zero). Further
	// requests wait for a slot until their context expires.
	MaxConcurrent int
	// RequestTimeout caps one run's compute wall time (60s if zero).
	RequestTimeout time.Duration
	// MaxBodyBytes caps request bodies, CSV profiles included (32 MiB if
	// zero).
	MaxBodyBytes int64
	// CacheEntries bounds the plan LRU (128 if zero).
	CacheEntries int
	// MaxBatchItems caps the item count of one POST /v1/batch request (64 if
	// zero).
	MaxBatchItems int
	// Parallelism is the per-request sampling worker default when the
	// request does not choose its own (0 = GOMAXPROCS).
	Parallelism int
	// TraceEntries bounds the completed-trace ring store behind
	// GET /debug/traces (256 if zero). Old traces are overwritten once the
	// store is full.
	TraceEntries int
	// Logger, when set, receives one structured access log line per request
	// (method, path, status, duration) plus error detail for failed runs.
	// Nil disables request logging.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 128
	}
	if c.MaxBatchItems <= 0 {
		c.MaxBatchItems = 64
	}
	if c.TraceEntries <= 0 {
		c.TraceEntries = 256
	}
	return c
}

// Server hosts the sampling pipeline behind an http.Handler.
type Server struct {
	cfg     Config
	slots   chan struct{}
	cache   *planCache
	metrics metrics
	mux     *http.ServeMux
	flights flightGroup
	traces  *traceStore
	shard   atomic.Pointer[ring] // nil = single node, everything local
	peer    *http.Client
	// preCompute, when set (tests only), runs at the start of every
	// coalesced computation before the worker slot is acquired, so tests can
	// hold a flight open while concurrent requests pile onto it.
	preCompute func(id string)
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:    cfg,
		slots:  make(chan struct{}, cfg.MaxConcurrent),
		cache:  newPlanCache(cfg.CacheEntries),
		mux:    http.NewServeMux(),
		traces: newTraceStore(cfg.TraceEntries),
		peer:   &http.Client{},
	}
	s.flights.onJoin = func() { s.metrics.Coalesced.Add(1) }
	s.metrics.started() // pin uptime's epoch to construction, not first scrape
	s.mux.HandleFunc("POST /v1/sample", s.traced(s.serveSample))
	s.mux.HandleFunc("POST /v1/batch", s.traced(s.serveBatch))
	s.mux.HandleFunc("POST /v1/characterize", s.traced(s.serveCharacterize))
	s.mux.HandleFunc("GET /v1/plans/{id}", s.traced(s.servePlanGet))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /debug/metrics", s.metrics.handler(s.cache.len))
	s.mux.HandleFunc("GET /metrics", s.metrics.prometheus(s.cache.len))
	s.mux.HandleFunc("GET /debug/traces", s.handleTraces)
	s.mux.HandleFunc("GET /debug/traces/{id}", s.handleTraceGet)
	return s
}

// SetPeers (re)configures consistent-hash shard routing over the replica set.
// self is this replica's advertised base URL; peers lists the others (or the
// whole set — self is deduplicated in). An empty peer list, or a list that
// collapses to just self, disables routing: the server degrades gracefully
// to single-node operation.
func (s *Server) SetPeers(self string, peers []string) error {
	r, err := newRing(self, peers)
	if err != nil {
		return err
	}
	s.shard.Store(r)
	return nil
}

// SplitPeers parses a comma-separated -peers flag value into normalized base
// URLs for SetPeers.
func SplitPeers(csv string) []string { return splitPeers(csv) }

func (s *Server) shardRing() *ring { return s.shard.Load() }

// selfURL is this replica's advertised base URL ("" when no ring is
// configured).
func (s *Server) selfURL() string {
	if r := s.shardRing(); r != nil {
		return r.self
	}
	return ""
}

// handleHealthz answers GET /healthz. The JSON body reports liveness plus
// ring membership — {status, self, peers, version} — so a load generator or
// operator can discover the replica set from any one replica. Probes that
// only want the old bare-string liveness check ask with Accept: text/plain
// and get exactly "ok".
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if strings.Contains(r.Header.Get("Accept"), "text/plain") {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = io.WriteString(w, "ok")
		return
	}
	h := api.Health{Status: "ok", Version: api.Version}
	if ring := s.shardRing(); ring != nil {
		h.Self = ring.self
		h.Peers = append([]string(nil), ring.nodes...)
	}
	writeJSON(w, http.StatusOK, h)
}

// statusRecorder captures the response status for the access log.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards http.Flusher so handlers that stream — the per-item batch
// envelopes — still flush when wrapped by the access logger. Without this
// the wrapper swallows the interface and streamed responses buffer until the
// handler returns.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Handler returns the routed handler, wrapped in structured access logging
// when Config.Logger is set.
func (s *Server) Handler() http.Handler {
	if s.cfg.Logger == nil {
		return s.mux
	}
	log := s.cfg.Logger
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		s.mux.ServeHTTP(rec, r)
		log.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.status,
			"duration_ms", float64(time.Since(start))/float64(time.Millisecond))
	})
}

// Metrics exposes the counters, e.g. for global expvar publication.
func (s *Server) Metrics() *metrics { return &s.metrics }

// The wire types live in the exported api package — the supported
// integration surface for out-of-process clients — and the server consumes
// them through aliases so every existing reference keeps compiling and the
// marshaled bytes stay identical (pinned by the golden wire tests).
type (
	RequestOptions = api.RequestOptions
	SampleRequest  = api.SampleRequest
)

// badRequest marks an error as caller-caused (HTTP 400).
type badRequest struct{ err error }

func (b badRequest) Error() string { return b.err.Error() }
func (b badRequest) Unwrap() error { return b.err }

// statusFor maps an error onto the HTTP status the API contract promises:
// oversized bodies 413, caller mistakes 400, well-formed but unusable
// profiles 422, expired deadlines 504, client-abandoned work 499 (nginx's
// convention), anything else 500.
func statusFor(err error) int {
	var tooBig *http.MaxBytesError
	var caller badRequest
	switch {
	case errors.As(err, &tooBig):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, sieve.ErrEmptyProfile), errors.Is(err, sieve.ErrSampledPlan):
		return http.StatusUnprocessableEntity
	case errors.Is(err, sieve.ErrInvalidTheta):
		return http.StatusBadRequest
	case errors.As(err, &caller):
		return http.StatusBadRequest
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// writeError answers a failed request and returns the status it wrote, so
// handlers can report it to the latency breakdown.
func (s *Server) writeError(w http.ResponseWriter, err error) int {
	s.metrics.Failures.Add(1)
	status := statusFor(err)
	if s.cfg.Logger != nil {
		s.cfg.Logger.Warn("request failed", "status", status, "error", err.Error())
	}
	writeJSON(w, status, &api.Error{Message: err.Error()})
	return status
}

// decodeRequest reads the bounded body and normalizes both accepted shapes —
// raw CSV with query-parameter options, or the JSON envelope — into a
// SampleRequest.
func (s *Server) decodeRequest(w http.ResponseWriter, r *http.Request) (*SampleRequest, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		return nil, err
	}
	ct := r.Header.Get("Content-Type")
	if mt, _, err := mime.ParseMediaType(ct); err == nil {
		ct = mt
	}
	if ct == "text/csv" || ct == "application/csv" {
		req := &SampleRequest{ProfileCSV: string(body)}
		if err := optionsFromQuery(r.URL.Query(), &req.Options); err != nil {
			return nil, badRequest{err}
		}
		return req, nil
	}
	req := &SampleRequest{}
	if err := json.Unmarshal(body, req); err != nil {
		return nil, badRequest{fmt.Errorf("decode request: %w", err)}
	}
	return req, nil
}

// optionsFromQuery parses ?theta=&selection=&splitter=&parallelism=&stream=
// &reservoir_size=&seed=&arch=&method= for the raw-CSV request shape.
func optionsFromQuery(q url.Values, o *RequestOptions) error {
	var err error
	get := func(key string, parse func(string) error) {
		if err != nil {
			return
		}
		if v := q.Get(key); v != "" {
			if perr := parse(v); perr != nil {
				err = fmt.Errorf("query %s=%q: %w", key, v, perr)
			}
		}
	}
	get("theta", func(v string) error { f, e := strconv.ParseFloat(v, 64); o.Theta = f; return e })
	get("parallelism", func(v string) error { n, e := strconv.Atoi(v); o.Parallelism = n; return e })
	get("reservoir_size", func(v string) error { n, e := strconv.Atoi(v); o.ReservoirSize = n; return e })
	get("seed", func(v string) error { n, e := strconv.ParseUint(v, 10, 64); o.Seed = n; return e })
	get("stream", func(v string) error { b, e := strconv.ParseBool(v); o.Stream = b; return e })
	o.Selection = q.Get("selection")
	o.Splitter = q.Get("splitter")
	o.Arch = q.Get("arch")
	o.Method = q.Get("method")
	return err
}

// resolved is a fully-validated request: concrete sieve options plus the
// profile source, ready to hash and run.
type resolved struct {
	req    *SampleRequest
	opts   sieve.Options
	stream sieve.StreamOptions
	arch   string
	// method is the canonicalized sampling methodology ("sieve" for the
	// default / empty wire value).
	method string
}

// resolve validates the request and turns the wire options into sieve
// options. Validation failures are badRequest (400).
func (s *Server) resolve(req *SampleRequest) (*resolved, error) {
	if (req.ProfileCSV == "") == (req.Workload == "") {
		return nil, badRequest{errors.New("exactly one of profile_csv (or a text/csv body) and workload must be given")}
	}
	o := sieve.Options{Theta: req.Options.Theta}
	// On the wire θ=0 means "paper default". Canonicalize it here, before
	// the options are hashed, so an unset θ and an explicit default-θ
	// address one cache entry instead of computing identical plans twice
	// (negative θ still flows through to the sampler's ErrInvalidTheta).
	if o.Theta == 0 {
		o.Theta = core.DefaultTheta
	}
	switch req.Options.Selection {
	case "", "dominant-cta-first":
		o.Selection = sieve.SelectDominantCTAFirst
	case "first-chronological":
		o.Selection = sieve.SelectFirstChronological
	case "max-cta":
		o.Selection = sieve.SelectMaxCTA
	default:
		return nil, badRequest{fmt.Errorf("unknown selection policy %q", req.Options.Selection)}
	}
	switch req.Options.Splitter {
	case "", "kde":
		o.Tier3Splitter = sieve.SplitKDE
	case "equal-width":
		o.Tier3Splitter = sieve.SplitEqualWidth
	case "gmm":
		o.Tier3Splitter = sieve.SplitGMM
	default:
		return nil, badRequest{fmt.Errorf("unknown splitter %q", req.Options.Splitter)}
	}
	// The server owns its worker budget: a request may lower its
	// parallelism but not exceed the configured per-request default.
	limit := s.cfg.Parallelism
	if limit <= 0 {
		limit = runtime.GOMAXPROCS(0)
	}
	o.Parallelism = limit
	if p := req.Options.Parallelism; p > 0 && p < limit {
		o.Parallelism = p
	}
	if req.Options.ReservoirSize < 0 {
		return nil, badRequest{fmt.Errorf("negative reservoir_size %d", req.Options.ReservoirSize)}
	}
	method := sampler.Canonical(req.Options.Method)
	if _, err := sampler.New(method); err != nil {
		return nil, badRequest{err}
	}
	if method != core.MethodSieve && req.Options.Stream {
		return nil, badRequest{fmt.Errorf("method %q does not support stream mode (only the default sieve sampler streams)", method)}
	}
	if method == sampler.MethodPKS && req.ProfileCSV != "" {
		return nil, badRequest{errors.New(`method "pks" requires workload mode: its 12-characteristic feature vectors and golden cycle reference are profiled server-side`)}
	}
	arch := req.Options.Arch
	if arch == "" {
		arch = "ampere"
	}
	if req.Workload != "" {
		if _, err := sieve.WorkloadByName(req.Workload); err != nil {
			return nil, badRequest{err}
		}
		if req.Scale == 0 {
			req.Scale = 0.05
		}
		if req.Scale < 0 || req.Scale > 1 {
			return nil, badRequest{fmt.Errorf("scale %g outside (0, 1]", req.Scale)}
		}
	}
	return &resolved{
		req:  req,
		opts: o,
		stream: sieve.StreamOptions{
			Options:       o,
			ReservoirSize: req.Options.ReservoirSize,
			Seed:          req.Options.Seed,
		},
		arch:   arch,
		method: method,
	}, nil
}

// key returns the content hash addressing this request's plan: every
// plan-affecting resolved option plus the profile source. Identical
// profile+options pairs collapse onto one cache entry. Parallelism is
// deliberately excluded — plans are byte-identical across worker counts, so
// hashing the scheduling knob would fragment the LRU into recomputations of
// identical plans (and make the hash disagree across replicas with different
// worker budgets).
func (rv *resolved) key(kind string) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s|theta=%g|sel=%d|split=%d|stream=%v|res=%d|seed=%d|arch=%s|",
		kind, rv.opts.Theta, rv.opts.Selection, rv.opts.Tier3Splitter,
		rv.req.Options.Stream, rv.stream.ReservoirSize, rv.stream.Seed, rv.arch)
	// Non-default methodologies are canonicalized into the hash so the same
	// source sampled under two methods addresses two distinct plans. The
	// default contributes nothing, keeping every pre-existing plan id (and
	// the golden wire fixtures pinning them) byte-stable.
	if rv.method != core.MethodSieve {
		fmt.Fprintf(h, "method=%s|", rv.method)
	}
	if rv.req.ProfileCSV != "" {
		io.WriteString(h, "csv|")
		io.WriteString(h, rv.req.ProfileCSV)
	} else {
		fmt.Fprintf(h, "workload|%s|%g", rv.req.Workload, rv.req.Scale)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// acquireSlot claims a compute worker slot, waiting until the request's
// context expires. The returned release must be called when compute ends.
func (s *Server) acquireSlot(ctx context.Context) (release func(), err error) {
	select {
	case s.slots <- struct{}{}:
		s.metrics.InFlight.Add(1)
		return func() {
			<-s.slots
			s.metrics.InFlight.Add(-1)
		}, nil
	case <-ctx.Done():
		s.metrics.Rejected.Add(1)
		return nil, ctx.Err()
	}
}

// rows materializes the request's profile rows. CSV-sourced failures are the
// caller's data (400); workload generation happens server-side, so only an
// unknown name (caught in resolve) is the caller's fault.
func (rv *resolved) rows(ctx context.Context) ([]sieve.InvocationProfile, error) {
	if rv.req.ProfileCSV != "" {
		p, err := sieve.ReadProfileCSV(strings.NewReader(rv.req.ProfileCSV))
		if err != nil {
			return nil, badRequest{err}
		}
		return sieve.ProfileRows(p), nil
	}
	return rv.workloadRows(ctx)
}

func (rv *resolved) workloadRows(ctx context.Context) ([]sieve.InvocationProfile, error) {
	w, err := sieve.GenerateWorkload(rv.req.Workload, rv.req.Scale)
	if err != nil {
		return nil, badRequest{err}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	archCfg, err := sieve.ResolveArch(rv.arch)
	if err != nil {
		return nil, badRequest{err}
	}
	hw, err := sieve.NewHardware(archCfg)
	if err != nil {
		return nil, err
	}
	p, err := sieve.ProfileInstructionCounts(w, hw)
	if err != nil {
		return nil, err
	}
	return sieve.ProfileRows(p), nil
}

// methodProfile materializes the sampler inputs for a non-default
// methodology. Most methods need only the instruction-count rows; pks
// additionally needs the Nsight-style 12-characteristic feature vectors and
// the golden per-invocation cycle reference, both profiled server-side from
// the generated workload (resolve already rejected pks with CSV sources).
func (rv *resolved) methodProfile(ctx context.Context) (*sieve.MethodProfile, error) {
	if rv.method != sampler.MethodPKS {
		rows, err := rv.rows(ctx)
		if err != nil {
			return nil, err
		}
		return &sieve.MethodProfile{Rows: rows}, nil
	}
	w, err := sieve.GenerateWorkload(rv.req.Workload, rv.req.Scale)
	if err != nil {
		return nil, badRequest{err}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	archCfg, err := sieve.ResolveArch(rv.arch)
	if err != nil {
		return nil, badRequest{err}
	}
	hw, err := sieve.NewHardware(archCfg)
	if err != nil {
		return nil, err
	}
	counts, err := sieve.ProfileInstructionCounts(w, hw)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	full, err := sieve.ProfileFull(w, hw)
	if err != nil {
		return nil, err
	}
	return &sieve.MethodProfile{
		Rows:         sieve.ProfileRows(counts),
		Features:     sieve.FeatureRows(full),
		GoldenCycles: hw.MeasureWorkload(w),
	}, nil
}

// methodPlan runs a non-default methodology through the sampler registry.
// The request seed doubles as the methodology seed, so clients reproduce
// stochastic plans (twophase pilots, rss draws) the same way they salt the
// cache: via options.seed.
func (rv *resolved) methodPlan(ctx context.Context) (*sieve.Plan, error) {
	p, err := rv.methodProfile(ctx)
	if err != nil {
		return nil, err
	}
	sopts := sieve.MethodOptions{Core: rv.opts, Seed: int64(rv.stream.Seed)}
	if rv.method == sampler.MethodPKS {
		sopts.PKS = pks.Options{Seed: int64(rv.stream.Seed), Parallelism: rv.opts.Parallelism}
	}
	plan, err := sieve.SampleMethodContext(ctx, rv.method, p, sopts)
	if err != nil && rv.req.ProfileCSV != "" && statusFor(err) == http.StatusInternalServerError {
		// Row-validation failures on caller-supplied CSV are caller data
		// errors, exactly as on the default path below.
		err = badRequest{err}
	}
	return plan, err
}

// samplePlan runs the sampling pipeline for the resolved request.
func (rv *resolved) samplePlan(ctx context.Context) (*sieve.Plan, error) {
	if rv.method != core.MethodSieve {
		return rv.methodPlan(ctx)
	}
	if rv.req.Options.Stream && rv.req.ProfileCSV != "" {
		plan, err := sieve.SampleCSVContext(ctx, strings.NewReader(rv.req.ProfileCSV), rv.stream)
		if err != nil && statusFor(err) == http.StatusInternalServerError {
			// Anything a well-formed CSV cannot produce is the caller's CSV.
			err = badRequest{err}
		}
		return plan, err
	}
	rows, err := rv.rows(ctx)
	if err != nil {
		return nil, err
	}
	if rv.req.Options.Stream {
		return sieve.SampleStreamContext(ctx, sieve.SliceSource(rows), rv.stream)
	}
	plan, err := sieve.SampleContext(ctx, rows, rv.opts)
	if err != nil && rv.req.ProfileCSV != "" && statusFor(err) == http.StatusInternalServerError {
		// Row-validation failures (non-positive counts, duplicate indices)
		// on caller-supplied CSV are caller data errors.
		err = badRequest{err}
	}
	return plan, err
}

func marshalPlan(p *sieve.Plan) ([]byte, error) {
	out := api.Plan{
		Theta:             p.Theta,
		TotalInstructions: p.TotalInstructions,
		TierInvocations:   p.TierInvocations,
		Sampled:           p.Sampled,
		NumStrata:         p.NumStrata(),
		Representatives:   p.RepresentativeIndices(),
		Strata:            make([]api.Stratum, len(p.Strata)),
	}
	for i, s := range p.Strata {
		out.Strata[i] = api.Stratum{
			Kernel:         s.Kernel,
			Tier:           int(s.Tier),
			Members:        len(s.Invocations),
			Invocations:    s.Invocations,
			Representative: s.Representative,
			Weight:         s.Weight,
			InstructionSum: s.InstructionSum,
		}
	}
	// Both fields are empty on default-method plans and omitted from the
	// JSON, so pre-subsystem plan documents keep their exact bytes.
	out.Method = p.Method
	if iv := p.Interval; iv != nil {
		out.ErrorInterval = &api.ErrorInterval{
			Mean:      iv.Mean,
			StdErr:    iv.StdErr,
			Low:       iv.Low,
			High:      iv.High,
			Resamples: iv.Resamples,
		}
	}
	return json.Marshal(out)
}

// respondDocument writes the api.PlanEnvelope around an already-marshaled
// plan document. The envelope marshals to the exact bytes the service has
// always answered ({"plan_id":…,"cached":…,"plan":…} + newline); coalesced
// appears only when true, so non-coalesced responses are unchanged.
func respondDocument(w http.ResponseWriter, id string, cached, coalesced bool, doc []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	buf, err := json.Marshal(api.PlanEnvelope{PlanID: id, Cached: cached, Coalesced: coalesced, Plan: doc})
	if err != nil {
		return
	}
	_, _ = w.Write(append(buf, '\n'))
}

// computePlan produces the marshaled plan for id, coalescing concurrent
// misses on the same content hash onto one computation via the in-flight
// table. The computation runs detached under its own RequestTimeout-bounded
// context, so one client's disconnect cannot fail the requests coalesced
// behind it; ctx still cancels this caller's wait individually. The worker
// slot is acquired by the flight leader, inside the flight — never by a
// caller that then waits. Slots strictly bound concurrent solver work; no
// goroutine ever holds one while blocked on another flight, so a
// slot-holder-waits-on-slot-waiter cycle cannot form (the batch path once
// held a slot across item waits and deadlocked the server under
// cache-hostile load). shared reports whether this call joined an
// already-running flight.
// The flight wait runs under a flight-stage span. For the leader the span
// contains the slot and compute stage spans (the detached computation
// inherits the leader's span chain through context.WithoutCancel, which
// preserves context values); a follower's span stays childless — it links to
// the leader's trace via the leader_trace attribute instead of duplicating
// the compute subtree.
func (s *Server) computePlan(ctx context.Context, id string, rv *resolved) (doc []byte, shared bool, err error) {
	fctx, flightSpan := obs.StartSpan(ctx, stageFlight)
	defer flightSpan.End()
	res, shared, leader, err := s.flights.do(fctx, id, traceID(ctx), func() flightResult {
		if gate := s.preCompute; gate != nil {
			gate(id)
		}
		cctx, cancel := context.WithTimeout(context.WithoutCancel(fctx), s.cfg.RequestTimeout)
		defer cancel()
		_, slotSpan := obs.StartSpan(cctx, stageSlot)
		release, err := s.acquireSlot(cctx)
		slotSpan.End()
		if err != nil {
			return flightResult{err: err}
		}
		defer release()
		s.metrics.Computations.Add(1)
		compCtx, compSpan := obs.StartSpan(cctx, stageCompute)
		defer compSpan.End()
		plan, err := rv.samplePlan(compCtx)
		if err != nil {
			return flightResult{err: err}
		}
		doc, err := marshalPlan(plan)
		if err != nil {
			return flightResult{err: err}
		}
		compSpan.SetAttr("plan_id", id)
		s.metrics.RowsIngested.Add(int64(plan.TierInvocations[0] + plan.TierInvocations[1] + plan.TierInvocations[2]))
		s.cache.put(id, doc)
		return flightResult{doc: doc}
	})
	if shared {
		flightSpan.SetAttr("coalesced", true)
		if leader != "" {
			flightSpan.SetAttr("leader_trace", leader)
		}
	}
	if err != nil {
		return nil, shared, err
	}
	return res.doc, shared, res.err
}

// serveSample answers POST /v1/sample and returns the terminal HTTP status,
// so the traced wrapper can record latency for every outcome, errors
// included.
func (s *Server) serveSample(w http.ResponseWriter, r *http.Request) int {
	_, decodeSpan := obs.StartSpan(r.Context(), stageDecode)
	req, err := s.decodeRequest(w, r)
	if err != nil {
		decodeSpan.End()
		return s.writeError(w, err)
	}
	rv, err := s.resolve(req)
	decodeSpan.End()
	if err != nil {
		return s.writeError(w, err)
	}
	s.metrics.MethodRequests(rv.method).Add(1)
	id := rv.key("sample")
	_, cacheSpan := obs.StartSpan(r.Context(), stageCache)
	doc, hit := s.cache.get(id)
	cacheSpan.SetAttr("hit", hit)
	cacheSpan.End()
	if hit {
		s.metrics.CacheHits.Add(1)
		s.respondTraced(r.Context(), w, id, true, false, doc)
		return http.StatusOK
	}
	s.metrics.CacheMisses.Add(1)

	// Shard routing: a miss on a hash another replica owns is proxied there,
	// so the cluster computes each plan exactly once. Forwarded requests are
	// always served locally (loop prevention), and an unreachable owner
	// degrades to local compute — a dead peer costs latency, not
	// availability.
	if owner, ok := s.shardRing().ownedElsewhere(id); ok && !isForwarded(r) {
		if status, ok := s.proxySample(w, r.Context(), rv, id, owner); ok {
			return status
		}
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	doc, shared, err := s.computePlan(ctx, id, rv)
	if err != nil {
		return s.writeError(w, err)
	}
	s.respondTraced(r.Context(), w, id, false, shared, doc)
	return http.StatusOK
}

// respondTraced writes the plan envelope under a write-stage span.
func (s *Server) respondTraced(ctx context.Context, w http.ResponseWriter, id string, cached, coalesced bool, doc []byte) {
	_, span := obs.StartSpan(ctx, stageWrite)
	respondDocument(w, id, cached, coalesced, doc)
	span.End()
}

func (s *Server) serveCharacterize(w http.ResponseWriter, r *http.Request) int {
	_, decodeSpan := obs.StartSpan(r.Context(), stageDecode)
	req, err := s.decodeRequest(w, r)
	if err != nil {
		decodeSpan.End()
		return s.writeError(w, err)
	}
	rv, err := s.resolve(req)
	decodeSpan.End()
	if err != nil {
		return s.writeError(w, err)
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	_, slotSpan := obs.StartSpan(ctx, stageSlot)
	release, err := s.acquireSlot(ctx)
	slotSpan.End()
	if err != nil {
		return s.writeError(w, err)
	}
	defer release()
	compCtx, compSpan := obs.StartSpan(ctx, stageCompute)
	rows, err := rv.rows(compCtx)
	if err != nil {
		compSpan.End()
		return s.writeError(w, err)
	}
	sums, err := sieve.CharacterizeContext(compCtx, rows, rv.opts.Theta)
	compSpan.End()
	if err != nil {
		if rv.req.ProfileCSV != "" && statusFor(err) == http.StatusInternalServerError {
			err = badRequest{err}
		}
		return s.writeError(w, err)
	}
	s.metrics.RowsIngested.Add(int64(len(rows)))
	out := make([]api.KernelSummary, len(sums))
	for i, k := range sums {
		out[i] = api.KernelSummary{
			Kernel: k.Kernel, Invocations: k.Invocations, Tier: int(k.Tier),
			InstrMin: k.InstrMin, InstrMean: k.InstrMean, InstrMax: k.InstrMax,
			InstrCoV: k.InstrCoV, InstrShare: k.InstrShare,
			DominantCTA: k.DominantCTA, Strata: k.Strata,
		}
	}
	_, writeSpan := obs.StartSpan(ctx, stageWrite)
	writeJSON(w, http.StatusOK, api.CharacterizeResponse{Kernels: out})
	writeSpan.End()
	return http.StatusOK
}

// servePlanGet answers GET /v1/plans/{id}: from the local cache when
// possible, otherwise fetched-and-filled from the owning peer replica, so
// any replica serves any cluster-cached plan.
func (s *Server) servePlanGet(w http.ResponseWriter, r *http.Request) int {
	id := r.PathValue("id")
	_, cacheSpan := obs.StartSpan(r.Context(), stageCache)
	doc, hit := s.cache.get(id)
	cacheSpan.SetAttr("hit", hit)
	cacheSpan.End()
	if hit {
		s.metrics.CacheHits.Add(1)
		s.respondTraced(r.Context(), w, id, true, false, doc)
		return http.StatusOK
	}
	if owner, ok := s.shardRing().ownedElsewhere(id); ok && !isForwarded(r) {
		if doc := s.fetchPlanFromPeer(r.Context(), owner, id); doc != nil {
			s.cache.put(id, doc)
			s.metrics.PeerFills.Add(1)
			s.metrics.CacheHits.Add(1)
			s.respondTraced(r.Context(), w, id, true, false, doc)
			return http.StatusOK
		}
	}
	s.metrics.Failures.Add(1)
	writeJSON(w, http.StatusNotFound, &api.Error{Message: "plan not cached (recompute via POST /v1/sample)"})
	return http.StatusNotFound
}
