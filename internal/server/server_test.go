package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/gpusampling/sieve/api"
)

// testCSV renders a small bimodal profile in the WriteProfileCSV wire
// format: 4 kernels × 24 invocations, enough for Tier-3 KDE splitting.
func testCSV() string {
	var b strings.Builder
	b.WriteString("kernel,index,seq,cta_size,instruction_count\n")
	idx := 0
	for k := 0; k < 4; k++ {
		for i := 0; i < 24; i++ {
			count := 1.0e6 + float64(i)*1e4
			if i%2 == 1 {
				count *= 30
			}
			fmt.Fprintf(&b, "kern_%d,%d,%d,%d,%g\n", k, idx, idx, 128+32*(i%2), count)
			idx++
		}
	}
	return b.String()
}

func newTestServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(cfg).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// sampleEnvelope is the response wrapper around a plan document.
type sampleEnvelope struct {
	PlanID string          `json:"plan_id"`
	Cached bool            `json:"cached"`
	Plan   json.RawMessage `json:"plan"`
}

func postCSV(t *testing.T, url, csv string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "text/csv", strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp.StatusCode
}

// metricsDoc mirrors the /debug/metrics JSON.
type metricsDoc struct {
	Requests     int64 `json:"requests"`
	Failures     int64 `json:"failures"`
	CacheHits    int64 `json:"cache_hits"`
	CacheMisses  int64 `json:"cache_misses"`
	CacheEntries int   `json:"cache_entries"`
	Computations int64 `json:"computations"`
	Coalesced    int64 `json:"coalesced"`
	BatchItems   int64 `json:"batch_items"`
	PeerFills    int64 `json:"peer_fills"`
	PeerProxied  int64 `json:"peer_proxied"`
	InFlight     int64 `json:"in_flight"`
	Rejected     int64 `json:"rejected"`
	RowsIngested int64 `json:"rows_ingested"`
	LatencyMS    struct {
		P50 float64 `json:"p50"`
		P99 float64 `json:"p99"`
	} `json:"latency_ms"`
}

// TestSampleCacheHitMiss is the acceptance check: POSTing the same
// profile+options twice must compute once, report the second response as a
// cache hit via /debug/metrics, and return byte-identical plan JSON.
func TestSampleCacheHitMiss(t *testing.T) {
	ts := newTestServer(t, Config{})
	csv := testCSV()

	status, body1 := postCSV(t, ts.URL+"/v1/sample?theta=0.4", csv)
	if status != http.StatusOK {
		t.Fatalf("first POST status = %d, body %s", status, body1)
	}
	var env1 sampleEnvelope
	if err := json.Unmarshal(body1, &env1); err != nil {
		t.Fatal(err)
	}
	if env1.Cached {
		t.Fatal("first response claims cached=true")
	}
	if env1.PlanID == "" {
		t.Fatal("missing plan_id")
	}

	status, body2 := postCSV(t, ts.URL+"/v1/sample?theta=0.4", csv)
	if status != http.StatusOK {
		t.Fatalf("second POST status = %d, body %s", status, body2)
	}
	var env2 sampleEnvelope
	if err := json.Unmarshal(body2, &env2); err != nil {
		t.Fatal(err)
	}
	if !env2.Cached {
		t.Fatal("second identical request was not a cache hit")
	}
	if env2.PlanID != env1.PlanID {
		t.Fatalf("plan_id changed across identical requests: %s vs %s", env1.PlanID, env2.PlanID)
	}
	if string(env1.Plan) != string(env2.Plan) {
		t.Fatal("cache hit returned non-identical plan JSON")
	}

	var m metricsDoc
	if status := getJSON(t, ts.URL+"/debug/metrics", &m); status != http.StatusOK {
		t.Fatalf("metrics status = %d", status)
	}
	if m.CacheHits != 1 || m.CacheMisses != 1 {
		t.Fatalf("cache hits/misses = %d/%d, want 1/1", m.CacheHits, m.CacheMisses)
	}
	if m.Requests != 2 || m.CacheEntries != 1 {
		t.Fatalf("requests = %d, cache_entries = %d, want 2, 1", m.Requests, m.CacheEntries)
	}
	if m.RowsIngested != 96 {
		t.Fatalf("rows_ingested = %d, want 96", m.RowsIngested)
	}
	if m.LatencyMS.P99 < m.LatencyMS.P50 {
		t.Fatalf("p99 %g < p50 %g", m.LatencyMS.P99, m.LatencyMS.P50)
	}

	// A different θ is a different content hash: must miss.
	status, body3 := postCSV(t, ts.URL+"/v1/sample?theta=0.7", csv)
	if status != http.StatusOK {
		t.Fatalf("theta=0.7 POST status = %d, body %s", status, body3)
	}
	var env3 sampleEnvelope
	if err := json.Unmarshal(body3, &env3); err != nil {
		t.Fatal(err)
	}
	if env3.Cached || env3.PlanID == env1.PlanID {
		t.Fatal("different options should not share a cache entry")
	}
}

// TestPlanLookup covers GET /v1/plans/{id}: hit after a POST, 404 otherwise.
func TestPlanLookup(t *testing.T) {
	ts := newTestServer(t, Config{})
	_, body := postCSV(t, ts.URL+"/v1/sample", testCSV())
	var env sampleEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}

	var got sampleEnvelope
	if status := getJSON(t, ts.URL+"/v1/plans/"+env.PlanID, &got); status != http.StatusOK {
		t.Fatalf("plan lookup status = %d", status)
	}
	if !got.Cached || string(got.Plan) != string(env.Plan) {
		t.Fatal("plan lookup did not return the cached document")
	}

	var errDoc map[string]string
	if status := getJSON(t, ts.URL+"/v1/plans/deadbeef", &errDoc); status != http.StatusNotFound {
		t.Fatalf("unknown plan status = %d, want 404", status)
	}
}

func TestOversizedBodyRejected(t *testing.T) {
	ts := newTestServer(t, Config{MaxBodyBytes: 256})
	status, body := postCSV(t, ts.URL+"/v1/sample", testCSV())
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413; body %s", status, body)
	}
}

func TestMalformedRequests(t *testing.T) {
	ts := newTestServer(t, Config{})
	cases := []struct {
		name        string
		contentType string
		body        string
		query       string
		want        int
	}{
		{"garbage CSV", "text/csv", "not,a,profile\n1,2,3\n", "", http.StatusBadRequest},
		{"bad metric column", "text/csv", "kernel,index,seq,cta_size,bogus\nk,0,0,128,1\n", "", http.StatusBadRequest},
		{"negative theta", "text/csv", testCSV(), "?theta=-1", http.StatusBadRequest},
		{"unparsable theta", "text/csv", testCSV(), "?theta=abc", http.StatusBadRequest},
		{"unknown selection", "text/csv", testCSV(), "?selection=psychic", http.StatusBadRequest},
		{"unknown splitter", "text/csv", testCSV(), "?splitter=axe", http.StatusBadRequest},
		{"empty profile", "text/csv", "kernel,index,seq,cta_size,instruction_count\n", "", http.StatusUnprocessableEntity},
		{"broken JSON", "application/json", "{", "", http.StatusBadRequest},
		{"neither source", "application/json", "{}", "", http.StatusBadRequest},
		{"both sources", "application/json", `{"profile_csv":"x","workload":"lmc"}`, "", http.StatusBadRequest},
		{"unknown workload", "application/json", `{"workload":"nope"}`, "", http.StatusBadRequest},
		{"bad scale", "application/json", `{"workload":"lmc","scale":7}`, "", http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/sample"+tc.query, tc.contentType, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("status = %d, want %d; body %s", resp.StatusCode, tc.want, body)
			}
			var doc map[string]string
			if err := json.Unmarshal(body, &doc); err != nil || doc["error"] == "" {
				t.Fatalf("error body not a JSON {error}: %s", body)
			}
		})
	}
}

// TestStreamModeSample exercises the bounded-memory path and its option
// plumbing through the query string.
func TestStreamModeSample(t *testing.T) {
	ts := newTestServer(t, Config{})
	status, body := postCSV(t, ts.URL+"/v1/sample?stream=true&reservoir_size=8&seed=42", testCSV())
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, body)
	}
	var env sampleEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	var plan struct {
		Sampled bool `json:"sampled"`
	}
	if err := json.Unmarshal(env.Plan, &plan); err != nil {
		t.Fatal(err)
	}
	if !plan.Sampled {
		t.Fatal("24 invocations over an 8-row reservoir should mark the plan sampled")
	}
}

// TestWorkloadMode samples a catalog workload generated server-side via the
// JSON envelope.
func TestWorkloadMode(t *testing.T) {
	ts := newTestServer(t, Config{})
	req := `{"workload":"lmc","scale":0.05,"options":{"theta":0.4}}`
	resp, err := http.Post(ts.URL+"/v1/sample", "application/json", strings.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var env sampleEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	var plan struct {
		NumStrata       int   `json:"num_strata"`
		Representatives []int `json:"representatives"`
	}
	if err := json.Unmarshal(env.Plan, &plan); err != nil {
		t.Fatal(err)
	}
	if plan.NumStrata == 0 || len(plan.Representatives) != plan.NumStrata {
		t.Fatalf("degenerate workload plan: %d strata, %d representatives", plan.NumStrata, len(plan.Representatives))
	}

	// Same workload+options → cache hit without re-simulating.
	resp2, err := http.Post(ts.URL+"/v1/sample", "application/json", strings.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	var env2 sampleEnvelope
	if err := json.Unmarshal(body2, &env2); err != nil {
		t.Fatal(err)
	}
	if !env2.Cached || string(env2.Plan) != string(env.Plan) {
		t.Fatal("workload-mode cache hit missing or non-identical")
	}
}

func TestCharacterize(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/v1/characterize", "text/csv", strings.NewReader(testCSV()))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var doc struct {
		Kernels []api.KernelSummary `json:"kernels"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Kernels) != 4 {
		t.Fatalf("kernels = %d, want 4", len(doc.Kernels))
	}
	for _, k := range doc.Kernels {
		if k.Invocations != 24 || k.Tier != 3 {
			t.Fatalf("kernel %s: invocations=%d tier=%d, want 24, 3", k.Kernel, k.Invocations, k.Tier)
		}
	}
}

// TestRequestTimeout maps an expired per-request deadline onto 504.
func TestRequestTimeout(t *testing.T) {
	ts := newTestServer(t, Config{RequestTimeout: time.Nanosecond})
	status, body := postCSV(t, ts.URL+"/v1/sample", testCSV())
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504; body %s", status, body)
	}
}

// TestHealthz covers both response shapes: the JSON body with ring
// membership and version, and the bare-string body legacy probes request via
// Accept: text/plain.
func TestHealthz(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	var doc api.Health
	if status := getJSON(t, ts.URL+"/healthz", &doc); status != http.StatusOK || doc.Status != "ok" {
		t.Fatalf("healthz = %d %+v", status, doc)
	}
	if doc.Version != api.Version {
		t.Fatalf("healthz version = %q, want %q", doc.Version, api.Version)
	}
	if doc.Self != "" || len(doc.Peers) != 0 {
		t.Fatalf("single-node healthz reports ring membership: %+v", doc)
	}

	// With a ring configured, membership is discoverable from the replica.
	peer := "http://198.51.100.1:8372"
	if err := srv.SetPeers(ts.URL, []string{peer}); err != nil {
		t.Fatal(err)
	}
	if status := getJSON(t, ts.URL+"/healthz", &doc); status != http.StatusOK {
		t.Fatalf("peered healthz status %d", status)
	}
	if doc.Self != ts.URL {
		t.Fatalf("healthz self = %q, want %q", doc.Self, ts.URL)
	}
	if len(doc.Peers) != 2 {
		t.Fatalf("healthz peers = %v, want self + 1 peer", doc.Peers)
	}

	// Old probes: Accept: text/plain gets exactly "ok".
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || string(body) != "ok" {
		t.Fatalf("text/plain healthz = %d %q, want 200 \"ok\"", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("text/plain healthz content type %q", ct)
	}
}

// TestCacheEviction bounds the LRU: distinct requests beyond capacity evict
// the oldest entry.
func TestCacheEviction(t *testing.T) {
	ts := newTestServer(t, Config{CacheEntries: 2})
	ids := make([]string, 3)
	for i, theta := range []string{"0.3", "0.4", "0.5"} {
		status, body := postCSV(t, ts.URL+"/v1/sample?theta="+theta, testCSV())
		if status != http.StatusOK {
			t.Fatalf("POST theta=%s status = %d", theta, status)
		}
		var env sampleEnvelope
		if err := json.Unmarshal(body, &env); err != nil {
			t.Fatal(err)
		}
		ids[i] = env.PlanID
	}
	var m metricsDoc
	getJSON(t, ts.URL+"/debug/metrics", &m)
	if m.CacheEntries != 2 {
		t.Fatalf("cache_entries = %d, want 2", m.CacheEntries)
	}
	var doc map[string]any
	if status := getJSON(t, ts.URL+"/v1/plans/"+ids[0], &doc); status != http.StatusNotFound {
		t.Fatalf("oldest plan still cached: status = %d, want 404", status)
	}
	if status := getJSON(t, ts.URL+"/v1/plans/"+ids[2], &doc); status != http.StatusOK {
		t.Fatalf("newest plan evicted: status = %d, want 200", status)
	}
}

// TestParallelismCappedByServer verifies a request cannot exceed the server's
// per-request worker budget (it silently runs with the cap) while still being
// cached under the capped key.
func TestParallelismCappedByServer(t *testing.T) {
	ts := newTestServer(t, Config{Parallelism: 2})
	status, body := postCSV(t, ts.URL+"/v1/sample?parallelism=64", testCSV())
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, body)
	}
	status, body = postCSV(t, ts.URL+"/v1/sample?parallelism=128", testCSV())
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, body)
	}
	var env sampleEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if !env.Cached {
		t.Fatal("both requests cap to the same parallelism; second should hit the cache")
	}
}

// TestDebugMetricsJSONShape pins the /debug/metrics document's exact key set
// and nesting: dashboards parse this JSON, so replacing the latency backend
// (ring buffer → shared obs.Histogram) must not move a single key. It also
// pins the counter arithmetic: every non-batch API request — plan GETs
// included — counts toward requests, so in this scenario
// cache_hits + cache_misses + failures == requests exactly.
func TestDebugMetricsJSONShape(t *testing.T) {
	ts := newTestServer(t, Config{})
	status, body := postCSV(t, ts.URL+"/v1/sample", testCSV())
	if status != http.StatusOK {
		t.Fatalf("sample status %d", status)
	}
	var env sampleEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	// One plan-cache hit via GET and one 404: both must count as requests.
	var discard sampleEnvelope
	if status := getJSON(t, ts.URL+"/v1/plans/"+env.PlanID, &discard); status != http.StatusOK {
		t.Fatalf("plan get status %d", status)
	}
	var errDoc map[string]string
	if status := getJSON(t, ts.URL+"/v1/plans/deadbeef", &errDoc); status != http.StatusNotFound {
		t.Fatalf("missing plan status %d, want 404", status)
	}

	var m metricsDoc
	if status := getJSON(t, ts.URL+"/debug/metrics", &m); status != http.StatusOK {
		t.Fatalf("metrics status %d", status)
	}
	if m.Requests != 3 {
		t.Fatalf("requests = %d, want 3 (sample + plan hit + plan 404)", m.Requests)
	}
	if got := m.CacheHits + m.CacheMisses + m.Failures; got != m.Requests {
		t.Fatalf("cache_hits(%d) + cache_misses(%d) + failures(%d) = %d, want requests = %d",
			m.CacheHits, m.CacheMisses, m.Failures, got, m.Requests)
	}
	if m.CacheHits != 1 || m.CacheMisses != 1 || m.Failures != 1 || m.Computations != 1 {
		t.Fatalf("hits/misses/failures/computations = %d/%d/%d/%d, want 1/1/1/1",
			m.CacheHits, m.CacheMisses, m.Failures, m.Computations)
	}

	resp, err := http.Get(ts.URL + "/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"requests", "failures", "cache_hits", "cache_misses", "cache_entries",
		"computations", "coalesced", "batch_items", "peer_fills", "peer_proxied",
		"in_flight", "rejected", "rows_ingested", "method_requests", "latency_ms",
	}
	for _, k := range want {
		if _, ok := doc[k]; !ok {
			t.Errorf("/debug/metrics lost key %q", k)
		}
	}
	if len(doc) != len(want) {
		t.Errorf("/debug/metrics has %d keys, want %d: %v", len(doc), len(want), doc)
	}
	var methods map[string]int64
	if err := json.Unmarshal(doc["method_requests"], &methods); err != nil {
		t.Fatal(err)
	}
	if methods["sieve"] != 1 {
		t.Errorf(`method_requests["sieve"] = %d, want 1`, methods["sieve"])
	}
	var lat struct {
		P50 *float64 `json:"p50"`
		P99 *float64 `json:"p99"`
	}
	if err := json.Unmarshal(doc["latency_ms"], &lat); err != nil {
		t.Fatal(err)
	}
	if lat.P50 == nil || lat.P99 == nil {
		t.Fatalf("latency_ms lost p50/p99: %s", doc["latency_ms"])
	}
	if *lat.P50 <= 0 || *lat.P99 < *lat.P50 {
		t.Fatalf("implausible latency quantiles after one request: p50=%g p99=%g", *lat.P50, *lat.P99)
	}
}

// TestPrometheusMetricsEndpoint checks GET /metrics serves valid-looking
// Prometheus text exposition: the counters, the request-latency histogram
// with explicit buckets (real _bucket series, not summary quantiles), the
// per-stage attribution histograms, and the build/uptime/goroutine gauges
// with the version /healthz reports.
func TestPrometheusMetricsEndpoint(t *testing.T) {
	ts := newTestServer(t, Config{})
	if status, _ := postCSV(t, ts.URL+"/v1/sample", testCSV()); status != http.StatusOK {
		t.Fatalf("sample status %d", status)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		"# TYPE sieved_requests_total counter\nsieved_requests_total 1\n",
		"# TYPE sieved_cache_misses_total counter\nsieved_cache_misses_total 1\n",
		"# TYPE sieved_in_flight gauge\n",
		"# TYPE sieved_request_seconds histogram\n",
		`sieved_request_seconds_bucket{le="+Inf"} 1`,
		"sieved_request_seconds_count 1\n",
		"# TYPE sieved_stage_seconds histogram\n",
		`sieved_stage_seconds_bucket{stage="compute",le="+Inf"} 1`,
		`sieved_stage_seconds_count{stage="slot"} 1`,
		`sieved_stage_seconds_count{stage="decode"} 1`,
		fmt.Sprintf("# TYPE sieved_build_info gauge\nsieved_build_info{version=%q} 1\n", api.Version),
		"# TYPE sieved_uptime_seconds gauge\n",
		"# TYPE sieved_goroutines gauge\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "summary") || strings.Contains(out, `quantile="`) {
		t.Errorf("/metrics still exposes summary quantiles:\n%s", out)
	}
	// The explicit-bucket ladder must be cumulative: the one recorded request
	// appears in every bucket at or above its latency.
	if !strings.Contains(out, `sieved_request_seconds_bucket{le="60"} 1`) {
		t.Errorf("/metrics top finite bucket does not hold the request:\n%s", out)
	}
	// Uptime's epoch is server construction, not the first scrape: by scrape
	// time at least the slept interval must have elapsed.
	time.Sleep(5 * time.Millisecond)
	resp2, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body2, err := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var uptime float64
	for _, line := range strings.Split(string(body2), "\n") {
		if rest, ok := strings.CutPrefix(line, "sieved_uptime_seconds "); ok {
			if _, err := fmt.Sscanf(rest, "%g", &uptime); err != nil {
				t.Fatalf("parse uptime %q: %v", rest, err)
			}
		}
	}
	if uptime < 0.005 {
		t.Errorf("sieved_uptime_seconds = %g, want >= 0.005 (epoch should be server construction)", uptime)
	}
}

// TestRequestLogging checks that a configured slog.Logger receives one access
// line per request with method/path/status attributes.
func TestRequestLogging(t *testing.T) {
	var buf syncBuffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	ts := newTestServer(t, Config{Logger: logger})
	if status, _ := postCSV(t, ts.URL+"/v1/sample", testCSV()); status != http.StatusOK {
		t.Fatalf("sample status %d", status)
	}
	// A failing request must log too (and at warn level via writeError).
	if status, _ := postCSV(t, ts.URL+"/v1/sample", "not,a,profile\n1,2,3\n"); status == http.StatusOK {
		t.Fatal("malformed CSV unexpectedly accepted")
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	var access []map[string]any
	for _, ln := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("non-JSON log line %q: %v", ln, err)
		}
		if rec["msg"] == "request" {
			access = append(access, rec)
		}
	}
	if len(access) != 2 {
		t.Fatalf("want 2 access log lines, got %d: %s", len(access), buf.String())
	}
	first := access[0]
	if first["method"] != "POST" || first["path"] != "/v1/sample" || first["status"] != float64(http.StatusOK) {
		t.Fatalf("access line = %v", first)
	}
	if _, ok := first["duration_ms"].(float64); !ok {
		t.Fatalf("access line missing duration_ms: %v", first)
	}
}

// TestParallelismNotInCacheKey is the regression test for the plan-cache
// fragmentation bug: plans are byte-identical across worker counts (proven
// since PR 1), so two requests differing only in parallelism must share one
// cache entry and one computation. Config.Parallelism is left high enough
// that 2 and 4 resolve to genuinely different worker counts — before the
// fix, that fragmented the LRU into two entries and two computations.
func TestParallelismNotInCacheKey(t *testing.T) {
	ts := newTestServer(t, Config{Parallelism: 8})
	csv := testCSV()

	status, body1 := postCSV(t, ts.URL+"/v1/sample?parallelism=2", csv)
	if status != http.StatusOK {
		t.Fatalf("first POST status = %d, body %s", status, body1)
	}
	status, body2 := postCSV(t, ts.URL+"/v1/sample?parallelism=4", csv)
	if status != http.StatusOK {
		t.Fatalf("second POST status = %d, body %s", status, body2)
	}
	var env1, env2 sampleEnvelope
	if err := json.Unmarshal(body1, &env1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(body2, &env2); err != nil {
		t.Fatal(err)
	}
	if env1.PlanID != env2.PlanID {
		t.Fatalf("parallelism fragments the content hash: %s vs %s", env1.PlanID, env2.PlanID)
	}
	if !env2.Cached {
		t.Fatal("request differing only in parallelism missed the cache")
	}
	if string(env1.Plan) != string(env2.Plan) {
		t.Fatal("plans differ across parallelism — cache sharing would be unsound")
	}
	var m metricsDoc
	getJSON(t, ts.URL+"/debug/metrics", &m)
	if m.Computations != 1 || m.CacheEntries != 1 {
		t.Fatalf("computations = %d, cache_entries = %d, want 1, 1", m.Computations, m.CacheEntries)
	}
}

// TestDefaultThetaSharesCacheEntry pins θ canonicalization in the content
// hash: on the wire θ=0 means "paper default", so a request leaving θ unset
// and one passing the default explicitly are the same plan and must share
// one cache entry — not compute identical plans twice under two ids.
func TestDefaultThetaSharesCacheEntry(t *testing.T) {
	ts := newTestServer(t, Config{})
	csv := testCSV()

	status, body1 := postCSV(t, ts.URL+"/v1/sample", csv)
	if status != http.StatusOK {
		t.Fatalf("unset-theta POST status = %d, body %s", status, body1)
	}
	status, body2 := postCSV(t, ts.URL+"/v1/sample?theta=0.4", csv)
	if status != http.StatusOK {
		t.Fatalf("explicit-theta POST status = %d, body %s", status, body2)
	}
	var env1, env2 sampleEnvelope
	if err := json.Unmarshal(body1, &env1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(body2, &env2); err != nil {
		t.Fatal(err)
	}
	if env1.PlanID != env2.PlanID {
		t.Fatalf("default θ fragments the content hash: %s vs %s", env1.PlanID, env2.PlanID)
	}
	if !env2.Cached {
		t.Fatal("explicit default-θ request missed the unset-θ cache entry")
	}
	if string(env1.Plan) != string(env2.Plan) {
		t.Fatal("plans differ between unset and explicit default θ")
	}
	var m metricsDoc
	getJSON(t, ts.URL+"/debug/metrics", &m)
	if m.Computations != 1 || m.CacheEntries != 1 {
		t.Fatalf("computations = %d, cache_entries = %d, want 1, 1", m.Computations, m.CacheEntries)
	}
}

// TestErrorLatencyRecorded closes the metrics blind spot: failed requests
// must record latency too, broken down by status class, so p99 under errors
// is visible. One success and one 400 must yield one observation each in the
// 2xx and 4xx class summaries and two in the overall histogram.
func TestErrorLatencyRecorded(t *testing.T) {
	ts := newTestServer(t, Config{})
	if status, _ := postCSV(t, ts.URL+"/v1/sample", testCSV()); status != http.StatusOK {
		t.Fatal("sample failed")
	}
	if status, _ := postCSV(t, ts.URL+"/v1/sample", "not,a,profile\n1,2,3\n"); status != http.StatusBadRequest {
		t.Fatalf("malformed CSV status = %d, want 400", status)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		"sieved_request_seconds_count 2\n",
		"sieved_request_seconds_class_2xx_count 1\n",
		"sieved_request_seconds_class_4xx_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q — error-path latency unrecorded:\n%s", want, out)
		}
	}
}

// TestStatusRecorderForwardsFlush pins the access-log wrapper's Flusher
// passthrough: batch responses stream per-item envelopes, so the wrapped
// ResponseWriter must still satisfy http.Flusher and forward the flush.
func TestStatusRecorderForwardsFlush(t *testing.T) {
	rec := httptest.NewRecorder()
	var w http.ResponseWriter = &statusRecorder{ResponseWriter: rec, status: http.StatusOK}
	f, ok := w.(http.Flusher)
	if !ok {
		t.Fatal("statusRecorder does not satisfy http.Flusher")
	}
	f.Flush()
	if !rec.Flushed {
		t.Fatal("Flush was not forwarded to the underlying ResponseWriter")
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer: the server handles requests on
// its own goroutines, so the log sink must be safe for concurrent writes.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
