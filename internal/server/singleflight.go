package server

import (
	"context"
	"sync"
)

// flightResult is what one coalesced computation produces: the marshaled plan
// document or the computation's error, shared verbatim by every waiter.
type flightResult struct {
	doc []byte
	err error
}

// flight is one in-progress computation. res is written exactly once, before
// done is closed; waiters read it only after <-done, so the channel close
// publishes the result. owner is the trace id of the request that started
// the flight ("" untraced), immutable after creation, so joiners can link
// their trace to the leader's instead of duplicating its compute spans.
type flight struct {
	done  chan struct{}
	owner string
	res   flightResult
}

// flightGroup is the key-indexed in-flight table behind request coalescing:
// concurrent misses on one content hash block on a single computation instead
// of each computing an identical plan. Unlike x/sync/singleflight, the
// computation runs on a detached goroutine — the caller that starts a flight
// is just its first waiter — so a leader's client disconnect never fails the
// followers; each waiter's own context still cancels that waiter
// individually.
type flightGroup struct {
	mu      sync.Mutex
	flights map[string]*flight
	// onJoin, when set, runs each time a call joins an existing flight —
	// before the wait, so a blocked computation's follower count is already
	// observable (the Coalesced metric rides this hook).
	onJoin func()
}

// do returns the result of computing key, coalescing with any in-progress
// computation of the same key. The first caller starts fn on a detached
// goroutine (fn is responsible for bounding itself — see computePlan's
// detached timeout); every caller then waits for the flight to finish or for
// its own ctx to expire, whichever is first. owner is the caller's trace id
// ("" untraced): it names the flight when this call starts one, and comes
// back as leader when this call joins one, so a joiner can link its trace to
// the computation it waited on. shared reports whether this call joined a
// flight another call started. err is non-nil only when ctx expired while
// waiting; the computation's own error travels inside the result so all
// waiters see it.
func (g *flightGroup) do(ctx context.Context, key, owner string, fn func() flightResult) (res flightResult, shared bool, leader string, err error) {
	g.mu.Lock()
	if g.flights == nil {
		g.flights = make(map[string]*flight)
	}
	f, ok := g.flights[key]
	if !ok {
		f = &flight{done: make(chan struct{}), owner: owner}
		g.flights[key] = f
		go func() {
			res := fn()
			// Publish order matters: set the result, drop the table entry,
			// then close done. A request arriving after the delete starts a
			// fresh flight, but a successful fn has already filled the plan
			// cache, so it hits there instead of recomputing.
			g.mu.Lock()
			f.res = res
			delete(g.flights, key)
			g.mu.Unlock()
			close(f.done)
		}()
	}
	g.mu.Unlock()
	if ok {
		leader = f.owner
		if g.onJoin != nil {
			g.onJoin()
		}
	}

	select {
	case <-f.done:
		return f.res, ok, leader, nil
	case <-ctx.Done():
		return flightResult{}, ok, leader, ctx.Err()
	}
}

// inFlight reports the number of keys currently being computed.
func (g *flightGroup) inFlight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.flights)
}
