package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCoalescedBurstComputesOnce is the acceptance check for request
// coalescing: a burst of 50 concurrent identical /v1/sample requests
// performs exactly one computation. The flight is held open by the
// preCompute gate until all 49 followers have joined (observable via the
// coalesced counter, which increments at join time), so the assertion is
// deterministic rather than a race the burst usually wins.
func TestCoalescedBurstComputesOnce(t *testing.T) {
	const burst = 50
	srv := New(Config{})
	gate := make(chan struct{})
	srv.preCompute = func(string) { <-gate }
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	csv := testCSV()

	var wg sync.WaitGroup
	results := make([]sampleEnvelope, burst)
	statuses := make([]int, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, body := postCSV(t, ts.URL+"/v1/sample", csv)
			statuses[i] = status
			_ = json.Unmarshal(body, &results[i])
		}(i)
	}
	waitFor(t, "49 followers to coalesce", func() bool {
		return srv.metrics.Coalesced.Value() == burst-1
	})
	close(gate)
	wg.Wait()

	for i := 0; i < burst; i++ {
		if statuses[i] != http.StatusOK {
			t.Fatalf("request %d status = %d", i, statuses[i])
		}
		if results[i].PlanID != results[0].PlanID || string(results[i].Plan) != string(results[0].Plan) {
			t.Fatalf("request %d returned a different plan", i)
		}
	}
	if got := srv.metrics.Computations.Value(); got != 1 {
		t.Fatalf("computations = %d, want exactly 1 for %d concurrent identical requests", got, burst)
	}
	if got := srv.metrics.Coalesced.Value(); got != burst-1 {
		t.Fatalf("coalesced = %d, want %d", got, burst-1)
	}
	if got := srv.metrics.CacheMisses.Value(); got != burst {
		t.Fatalf("cache_misses = %d, want %d (all arrived before the plan was cached)", got, burst)
	}
	// The burst's plan must now be a plain cache hit.
	status, body := postCSV(t, ts.URL+"/v1/sample", csv)
	var env sampleEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if status != http.StatusOK || !env.Cached {
		t.Fatalf("post-burst request: status %d cached %v, want 200 cached", status, env.Cached)
	}
}

// TestCoalescedLeaderDisconnect pins the detached-computation contract: the
// client that started a flight disconnecting must not fail the follower
// coalesced behind it — the computation finishes under its own timeout and
// the follower gets the plan.
func TestCoalescedLeaderDisconnect(t *testing.T) {
	srv := New(Config{})
	gate := make(chan struct{})
	srv.preCompute = func(string) { <-gate }
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	csv := testCSV()

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() {
		req, err := http.NewRequestWithContext(leaderCtx, http.MethodPost, ts.URL+"/v1/sample", strings.NewReader(csv))
		if err != nil {
			leaderErr <- err
			return
		}
		req.Header.Set("Content-Type", "text/csv")
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		leaderErr <- err
	}()
	waitFor(t, "leader flight to start", func() bool { return srv.flights.inFlight() == 1 })

	followerDone := make(chan sampleEnvelope, 1)
	go func() {
		_, body := postCSV(t, ts.URL+"/v1/sample", csv)
		var env sampleEnvelope
		_ = json.Unmarshal(body, &env)
		followerDone <- env
	}()
	waitFor(t, "follower to coalesce", func() bool { return srv.metrics.Coalesced.Value() == 1 })

	// The leader's client walks away; the flight must keep computing.
	cancelLeader()
	if err := <-leaderErr; err == nil {
		t.Fatal("cancelled leader request unexpectedly succeeded")
	}
	close(gate)

	env := <-followerDone
	if env.PlanID == "" || len(env.Plan) == 0 {
		t.Fatalf("follower did not receive the plan after leader disconnect: %+v", env)
	}
	if got := srv.metrics.Computations.Value(); got != 1 {
		t.Fatalf("computations = %d, want 1", got)
	}
}

// TestFlightGroupFollowerTimeout checks per-waiter cancellation directly on
// the in-flight table: a follower whose context expires fails individually
// while the flight runs on and delivers to patient waiters.
func TestFlightGroupFollowerTimeout(t *testing.T) {
	var g flightGroup
	gate := make(chan struct{})
	started := make(chan struct{})
	patient := make(chan flightResult, 1)
	go func() {
		res, _, _, err := g.do(context.Background(), "k", "", func() flightResult {
			close(started)
			<-gate
			return flightResult{doc: []byte("plan")}
		})
		if err != nil {
			t.Errorf("patient waiter failed: %v", err)
		}
		patient <- res
	}()
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, shared, _, err := g.do(ctx, "k", "", func() flightResult {
		t.Error("follower started a second computation")
		return flightResult{}
	})
	if !shared {
		t.Fatal("follower did not join the existing flight")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("follower err = %v, want deadline exceeded", err)
	}

	close(gate)
	if res := <-patient; string(res.doc) != "plan" {
		t.Fatalf("patient waiter got %q", res.doc)
	}
	if g.inFlight() != 0 {
		t.Fatalf("flight table not drained: %d in flight", g.inFlight())
	}
}

// TestFlightGroupSharesErrors: a failed computation's error reaches every
// waiter, and the key is retryable afterwards (the table entry is gone).
func TestFlightGroupSharesErrors(t *testing.T) {
	var g flightGroup
	boom := errors.New("boom")
	res, shared, _, err := g.do(context.Background(), "k", "", func() flightResult {
		return flightResult{err: boom}
	})
	if err != nil || shared {
		t.Fatalf("do: shared=%v err=%v", shared, err)
	}
	if !errors.Is(res.err, boom) {
		t.Fatalf("res.err = %v, want boom", res.err)
	}
	// The failure must not be sticky.
	res, _, _, err = g.do(context.Background(), "k", "", func() flightResult {
		return flightResult{doc: []byte("ok")}
	})
	if err != nil || res.err != nil || string(res.doc) != "ok" {
		t.Fatalf("retry after failure: %+v err=%v", res, err)
	}
}

// TestFlightGroupConcurrent hammers the table from many goroutines across a
// small key space under -race: every waiter of one flight generation
// observes that generation's result, exactly one fn runs per generation, and
// the table drains.
func TestFlightGroupConcurrent(t *testing.T) {
	var g flightGroup
	keys := []string{"a", "b", "c"}
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		for _, k := range keys {
			wg.Add(1)
			go func(k string) {
				defer wg.Done()
				res, _, _, err := g.do(context.Background(), k, "", func() flightResult {
					time.Sleep(100 * time.Microsecond)
					return flightResult{doc: []byte(k)}
				})
				if err != nil || string(res.doc) != k {
					t.Errorf("key %s: res=%q err=%v", k, res.doc, err)
				}
			}(k)
		}
	}
	wg.Wait()
	if g.inFlight() != 0 {
		t.Fatalf("flight table not drained: %d", g.inFlight())
	}
}

// TestEvictionDuringFlight: an LRU evicting entries while a flight is still
// computing must stay consistent — the in-flight plan lands in the cache
// when it completes, bumping out the colder entry, and stays addressable.
func TestEvictionDuringFlight(t *testing.T) {
	srv := New(Config{CacheEntries: 1})
	slowID := make(chan string, 1)
	gate := make(chan struct{})
	// Only the first flight blocks (sync.Once.Do would stall later callers
	// until the first returns, deadlocking the gate).
	var first atomic.Bool
	first.Store(true)
	srv.preCompute = func(id string) {
		if first.CompareAndSwap(true, false) {
			slowID <- id
			<-gate
		}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	slowDone := make(chan sampleEnvelope, 1)
	go func() {
		_, body := postCSV(t, ts.URL+"/v1/sample?theta=0.4", testCSV())
		var env sampleEnvelope
		_ = json.Unmarshal(body, &env)
		slowDone <- env
	}()
	<-slowID

	// While the first flight is held open, a different request completes and
	// occupies the single cache slot.
	status, body := postCSV(t, ts.URL+"/v1/sample?theta=0.6", testCSV())
	if status != http.StatusOK {
		t.Fatalf("fast request status %d", status)
	}
	var fast sampleEnvelope
	if err := json.Unmarshal(body, &fast); err != nil {
		t.Fatal(err)
	}
	if srv.cache.len() != 1 {
		t.Fatalf("cache len = %d, want 1", srv.cache.len())
	}

	close(gate)
	slow := <-slowDone
	if slow.PlanID == "" {
		t.Fatal("slow flight returned no plan")
	}
	// The completed flight's put evicted the fast plan (capacity 1).
	if srv.cache.len() != 1 {
		t.Fatalf("cache len = %d after flight completion, want 1", srv.cache.len())
	}
	var env sampleEnvelope
	if status := getJSON(t, ts.URL+"/v1/plans/"+slow.PlanID, &env); status != http.StatusOK {
		t.Fatalf("in-flight plan not cached after completion: %d", status)
	}
	var errDoc map[string]string
	if status := getJSON(t, ts.URL+"/v1/plans/"+fast.PlanID, &errDoc); status != http.StatusNotFound {
		t.Fatalf("evicted plan still served: %d", status)
	}
}
