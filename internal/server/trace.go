// Distributed request tracing: every API request runs under an obs.Collector
// whose span tree covers the full serving path — decode, cache lookup,
// worker-slot wait, flight join/lead, compute, peer proxy, response write.
// The trace id arrives in the api.TraceHeader request header (minted here
// when absent), is echoed on the response, and rides proxy and
// fetch-and-fill hops to peers, so one id names the request on every replica
// it touched. Completed traces land in a bounded lock-free ring store served
// by GET /debug/traces (recent + slowest) and GET /debug/traces/{id} (full
// tree, ?format=chrome for a trace-viewer flamegraph), and the per-stage
// durations feed the sieved_stage_seconds Prometheus histograms.
package server

import (
	"context"
	"net/http"
	"sort"
	"sync/atomic"
	"time"

	"github.com/gpusampling/sieve/api"
	"github.com/gpusampling/sieve/client"
	"github.com/gpusampling/sieve/internal/obs"
)

// The stage taxonomy: every span named after a stage contributes its
// exclusive time (own duration minus nested stage spans) to that stage's
// attribution, so the stages partition a request's wall time without double
// counting. A follower's flight span has no stage children — its whole wait
// is flight time — while a leader's flight span contains the slot and
// compute stages, leaving only coordination overhead attributed to flight.
const (
	stageDecode  = "decode"  // body read + request validation
	stageCache   = "cache"   // content-hash cache lookup
	stageSlot    = "slot"    // worker-slot wait (admission control)
	stageFlight  = "flight"  // coalesced-computation wait
	stageCompute = "compute" // sampling pipeline + plan marshal
	stageProxy   = "proxy"   // peer hop (proxied sample or plan fetch)
	stageWrite   = "write"   // response serialization
)

// traceStages is the closed set of stage names (attribution ignores other
// span names, e.g. the sampler.plan subtree nested under compute).
var traceStages = map[string]bool{
	stageDecode:  true,
	stageCache:   true,
	stageSlot:    true,
	stageFlight:  true,
	stageCompute: true,
	stageProxy:   true,
	stageWrite:   true,
}

// requestTrace is one in-progress request's trace handle, carried on the
// request context so the proxy path can propagate the id and the flight
// table can link followers to their leader's trace.
type requestTrace struct {
	id        string
	collector *obs.Collector
	root      *obs.Span
	startWall time.Time
	method    string
	path      string
}

// traceCtxKey carries the *requestTrace on a request context.
type traceCtxKey struct{}

// traceFrom returns the context's trace handle (nil when the request is not
// traced — crypto/rand failure, or an internal call without a handler).
func traceFrom(ctx context.Context) *requestTrace {
	t, _ := ctx.Value(traceCtxKey{}).(*requestTrace)
	return t
}

// traceID returns the context's trace id ("" untraced).
func traceID(ctx context.Context) string {
	if t := traceFrom(ctx); t != nil {
		return t.id
	}
	return ""
}

// startTrace opens a trace for the request: the id from the incoming
// api.TraceHeader when valid, a freshly minted one otherwise. The id is
// echoed on the response header immediately (before any WriteHeader), and
// the returned context carries the collector, the root "request" span and
// the trace handle.
func (s *Server) startTrace(w http.ResponseWriter, r *http.Request) (context.Context, *requestTrace) {
	id := client.ParseTraceHeader(r.Header.Get(api.TraceHeader))
	if id == "" {
		id = client.NewTraceID()
		if id == "" {
			return r.Context(), nil
		}
	}
	col := obs.New()
	ctx := obs.WithCollector(r.Context(), col)
	ctx, root := obs.StartSpan(ctx, "request")
	root.SetAttr("trace_id", id)
	root.SetAttr("method", r.Method)
	root.SetAttr("path", r.URL.Path)
	if fwd := r.Header.Get(forwardedHeader); fwd != "" {
		root.SetAttr("forwarded_by", fwd)
	}
	tr := &requestTrace{
		id:        id,
		collector: col,
		root:      root,
		startWall: time.Now(),
		method:    r.Method,
		path:      r.URL.Path,
	}
	w.Header().Set(api.TraceHeader, id)
	return context.WithValue(ctx, traceCtxKey{}, tr), tr
}

// finishTrace closes the root span, snapshots the span tree into the trace
// store, and feeds the per-stage durations into the sieved_stage_seconds
// histograms. Safe on a nil trace (untraced request).
func (s *Server) finishTrace(tr *requestTrace, status int) {
	if tr == nil {
		return
	}
	tr.root.SetAttr("status", status)
	tr.root.End()
	rep := tr.collector.Report()
	var durationNS int64
	if len(rep.Spans) > 0 {
		durationNS = rep.Spans[0].DurationNS
	}
	stages := stageSums(rep.Spans)
	for name, ns := range stages {
		s.metrics.observeStage(name, ns)
	}
	s.traces.put(&storedTrace{
		id:          tr.id,
		method:      tr.method,
		path:        tr.path,
		status:      status,
		startUnixNS: tr.startWall.UnixNano(),
		durationNS:  durationNS,
		stages:      stages,
		report:      rep,
	})
}

// traced wraps a serve function with the request accounting every API
// handler shares: the request counter, the trace lifecycle, and the latency
// observation for every terminal status.
func (s *Server) traced(serve func(http.ResponseWriter, *http.Request) int) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.metrics.Requests.Add(1)
		ctx, tr := s.startTrace(w, r)
		status := serve(w, r.WithContext(ctx))
		s.metrics.observe(status, time.Since(start))
		s.finishTrace(tr, status)
	}
}

// stageSums attributes the span forest's wall time to the stage taxonomy:
// each stage span contributes its duration minus the durations of stage
// spans directly nested in it (exclusive time), so a leader's flight span
// does not re-count the slot wait and compute it contains.
func stageSums(spans []*obs.SpanReport) map[string]int64 {
	sums := make(map[string]int64)
	var walk func(sp *obs.SpanReport)
	walk = func(sp *obs.SpanReport) {
		if traceStages[sp.Name] {
			own := sp.DurationNS
			for _, c := range sp.Children {
				if traceStages[c.Name] {
					own -= c.DurationNS
				}
			}
			if own < 0 {
				own = 0
			}
			sums[sp.Name] += own
		}
		for _, c := range sp.Children {
			walk(c)
		}
	}
	for _, sp := range spans {
		walk(sp)
	}
	return sums
}

// storedTrace is one completed request in the trace store.
type storedTrace struct {
	seq         uint64
	id          string
	method      string
	path        string
	status      int
	startUnixNS int64
	durationNS  int64
	stages      map[string]int64
	report      *obs.Report
}

// traceStore is a bounded lock-free ring of completed traces: writers claim
// slots with an atomic sequence counter and publish with an atomic pointer
// store, readers scan the slots. Once full, each new trace overwrites the
// oldest slot, so memory is bounded by the configured capacity and reads
// never block the request path.
type traceStore struct {
	slots []atomic.Pointer[storedTrace]
	next  atomic.Uint64
}

func newTraceStore(capacity int) *traceStore {
	return &traceStore{slots: make([]atomic.Pointer[storedTrace], capacity)}
}

// put publishes a completed trace, overwriting the oldest slot when full.
func (ts *traceStore) put(t *storedTrace) {
	if ts == nil || len(ts.slots) == 0 || t == nil {
		return
	}
	t.seq = ts.next.Add(1)
	ts.slots[(t.seq-1)%uint64(len(ts.slots))].Store(t)
}

// get returns the resident trace with the given id (the newest one when an
// id was reused), or nil.
func (ts *traceStore) get(id string) *storedTrace {
	if ts == nil {
		return nil
	}
	var best *storedTrace
	for i := range ts.slots {
		if t := ts.slots[i].Load(); t != nil && t.id == id && (best == nil || t.seq > best.seq) {
			best = t
		}
	}
	return best
}

// traceListN bounds the recent and slowest lists of GET /debug/traces.
const traceListN = 16

// list snapshots the store: the resident count, the most recent traces
// (newest first) and the slowest (longest first).
func (ts *traceStore) list() (stored int, recent, slowest []*storedTrace) {
	if ts == nil {
		return 0, nil, nil
	}
	all := make([]*storedTrace, 0, len(ts.slots))
	for i := range ts.slots {
		if t := ts.slots[i].Load(); t != nil {
			all = append(all, t)
		}
	}
	stored = len(all)
	sort.Slice(all, func(a, b int) bool { return all[a].seq > all[b].seq })
	recent = append(recent, all[:min(traceListN, len(all))]...)
	slow := append([]*storedTrace(nil), all...)
	sort.Slice(slow, func(a, b int) bool {
		if slow[a].durationNS != slow[b].durationNS {
			return slow[a].durationNS > slow[b].durationNS
		}
		return slow[a].seq > slow[b].seq
	})
	slowest = append(slowest, slow[:min(traceListN, len(slow))]...)
	return stored, recent, slowest
}

// summary renders the store entry as its wire listing row.
func (t *storedTrace) summary() api.TraceSummary {
	return api.TraceSummary{
		TraceID:     t.id,
		Method:      t.method,
		Path:        t.path,
		Status:      t.status,
		StartUnixNS: t.startUnixNS,
		DurationNS:  t.durationNS,
	}
}

// toAPISpans converts an obs span forest into the wire form.
func toAPISpans(spans []*obs.SpanReport) []*api.TraceSpan {
	if len(spans) == 0 {
		return nil
	}
	out := make([]*api.TraceSpan, len(spans))
	for i, sp := range spans {
		out[i] = &api.TraceSpan{
			Name:       sp.Name,
			StartNS:    sp.StartNS,
			DurationNS: sp.DurationNS,
			Attrs:      sp.Attrs,
			Counters:   sp.Counters,
			Children:   toAPISpans(sp.Children),
		}
	}
	return out
}

// handleTraces answers GET /debug/traces: the recent and slowest resident
// traces. Like /debug/metrics, the debug surface does not count toward the
// request metrics.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	stored, recent, slowest := s.traces.list()
	out := api.TraceList{
		Stored:   stored,
		Capacity: len(s.traces.slots),
		Recent:   make([]api.TraceSummary, 0, len(recent)),
		Slowest:  make([]api.TraceSummary, 0, len(slowest)),
	}
	for _, t := range recent {
		out.Recent = append(out.Recent, t.summary())
	}
	for _, t := range slowest {
		out.Slowest = append(out.Slowest, t.summary())
	}
	writeJSON(w, http.StatusOK, out)
}

// handleTraceGet answers GET /debug/traces/{id}: the full trace document,
// or the same span tree as Chrome trace-event JSON with ?format=chrome.
func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	t := s.traces.get(id)
	if t == nil {
		writeJSON(w, http.StatusNotFound, &api.Error{Message: "no such trace (evicted from the bounded store, or never seen by this replica)"})
		return
	}
	if r.URL.Query().Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		_ = t.report.WriteTrace(w)
		return
	}
	out := api.Trace{
		TraceSummary: t.summary(),
		Replica:      s.selfURL(),
		StageNS:      t.stages,
		Spans:        toAPISpans(t.report.Spans),
	}
	writeJSON(w, http.StatusOK, out)
}
