package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/gpusampling/sieve/api"
	"github.com/gpusampling/sieve/internal/obs"
)

// storeTrace is a shorthand for filling a traceStore in unit tests.
func storeTrace(ts *traceStore, id string, durationNS int64) {
	ts.put(&storedTrace{id: id, durationNS: durationNS, report: &obs.Report{}})
}

func TestTraceStoreBoundsAndOrdering(t *testing.T) {
	ts := newTraceStore(4)
	for i := 0; i < 6; i++ {
		storeTrace(ts, fmt.Sprintf("trace-%d", i), int64(i))
	}
	stored, recent, slowest := ts.list()
	if stored != 4 {
		t.Fatalf("stored = %d, want 4 (capacity bound)", stored)
	}
	// Traces 0 and 1 were overwritten by 4 and 5.
	if ts.get("trace-0") != nil || ts.get("trace-1") != nil {
		t.Fatal("overwritten traces still resident")
	}
	if got := ts.get("trace-5"); got == nil || got.durationNS != 5 {
		t.Fatalf("trace-5 not resident: %+v", got)
	}
	if recent[0].id != "trace-5" || recent[len(recent)-1].id != "trace-2" {
		t.Fatalf("recent order wrong: first %s last %s", recent[0].id, recent[len(recent)-1].id)
	}
	if slowest[0].id != "trace-5" || slowest[0].durationNS != 5 {
		t.Fatalf("slowest[0] = %s (%dns)", slowest[0].id, slowest[0].durationNS)
	}
}

func TestTraceStoreReusedIDReturnsNewest(t *testing.T) {
	ts := newTraceStore(8)
	storeTrace(ts, "dup", 1)
	storeTrace(ts, "dup", 2)
	if got := ts.get("dup"); got == nil || got.durationNS != 2 {
		t.Fatalf("get(dup) = %+v, want the newer entry", got)
	}
}

func TestTraceStoreNilSafe(t *testing.T) {
	var ts *traceStore
	ts.put(&storedTrace{id: "x"})
	if ts.get("x") != nil {
		t.Fatal("nil store returned a trace")
	}
	if stored, recent, slowest := ts.list(); stored != 0 || recent != nil || slowest != nil {
		t.Fatal("nil store listed traces")
	}
}

// findSpan returns the first span named name in the forest, depth-first.
func findSpan(spans []*api.TraceSpan, name string) *api.TraceSpan {
	for _, sp := range spans {
		if sp.Name == name {
			return sp
		}
		if c := findSpan(sp.Children, name); c != nil {
			return c
		}
	}
	return nil
}

// getTrace fetches one trace document over HTTP ("" id lists instead).
func getTrace(t *testing.T, baseURL, id string) (int, api.Trace) {
	t.Helper()
	var tr api.Trace
	status := getJSON(t, baseURL+"/debug/traces/"+id, &tr)
	return status, tr
}

// TestTracedSampleEndToEnd is the single-replica acceptance check for the
// tentpole: a traced cold-miss sample request yields a retrievable trace
// whose span tree and stage attribution cover the full serving path.
func TestTracedSampleEndToEnd(t *testing.T) {
	ts := newTestServer(t, Config{})
	id := strings.Repeat("ab", 16)

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/sample", strings.NewReader(testCSV()))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/csv")
	req.Header.Set(api.TraceHeader, id+"-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sample status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(api.TraceHeader); got != id {
		t.Fatalf("response %s = %q, want the request id %q", api.TraceHeader, got, id)
	}

	status, tr := getTrace(t, ts.URL, id)
	if status != http.StatusOK {
		t.Fatalf("GET /debug/traces/%s status %d", id, status)
	}
	if tr.TraceID != id || tr.Method != http.MethodPost || tr.Path != "/v1/sample" || tr.Status != http.StatusOK {
		t.Fatalf("trace summary wrong: %+v", tr.TraceSummary)
	}
	if tr.DurationNS <= 0 {
		t.Fatalf("duration_ns = %d", tr.DurationNS)
	}
	// A cold miss touches every local stage.
	for _, stage := range []string{stageDecode, stageCache, stageSlot, stageFlight, stageCompute, stageWrite} {
		if _, ok := tr.StageNS[stage]; !ok {
			t.Fatalf("stage_ns missing %q: %v", stage, tr.StageNS)
		}
	}
	if _, ok := tr.StageNS[stageProxy]; ok {
		t.Fatalf("single-node trace attributes proxy time: %v", tr.StageNS)
	}

	root := findSpan(tr.Spans, "request")
	if root == nil {
		t.Fatal("no request root span")
	}
	flight := findSpan(root.Children, stageFlight)
	if flight == nil {
		t.Fatal("no flight span under request")
	}
	// The leader's slot and compute stages nest inside its flight span.
	if findSpan(flight.Children, stageSlot) == nil || findSpan(flight.Children, stageCompute) == nil {
		t.Fatal("leader flight span missing slot/compute children")
	}
	comp := findSpan(flight.Children, stageCompute)
	// The sampling pipeline's own span subtree (core.stratify on the default
	// path, sampler.plan for registry methods) nests inside the compute stage.
	if findSpan(comp.Children, "core.stratify") == nil {
		t.Fatal("pipeline subtree not nested under the compute stage")
	}
	if pid, _ := comp.Attrs["plan_id"].(string); pid == "" {
		t.Fatal("compute span has no plan_id attr")
	}

	// Chrome trace-event export of the same tree.
	var chrome struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if status := getJSON(t, ts.URL+"/debug/traces/"+id+"?format=chrome", &chrome); status != http.StatusOK {
		t.Fatalf("chrome export status %d", status)
	}
	names := make(map[string]bool)
	for _, ev := range chrome.TraceEvents {
		names[ev.Name] = true
	}
	if !names["request"] || !names[stageCompute] {
		t.Fatalf("chrome export missing spans: %v", names)
	}

	var errDoc api.Error
	if status := getJSON(t, ts.URL+"/debug/traces/"+strings.Repeat("ff", 16), &errDoc); status != http.StatusNotFound {
		t.Fatalf("unknown trace id status %d, want 404", status)
	}
}

// TestServerMintsTraceID: an untraced request still gets a trace — the server
// mints the id and reveals it on the response header.
func TestServerMintsTraceID(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/v1/sample", "text/csv", strings.NewReader(testCSV()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id := resp.Header.Get(api.TraceHeader)
	if len(id) != 32 {
		t.Fatalf("minted trace id %q, want 32 hex digits", id)
	}
	if status, _ := getTrace(t, ts.URL, id); status != http.StatusOK {
		t.Fatalf("minted trace not retrievable: %d", status)
	}
}

func TestTracesListEndpoint(t *testing.T) {
	ts := newTestServer(t, Config{})
	for i := 0; i < 3; i++ {
		status, _ := postCSV(t, fmt.Sprintf("%s/v1/sample?theta=0.%d", ts.URL, i+3), testCSV())
		if status != http.StatusOK {
			t.Fatalf("sample %d status %d", i, status)
		}
	}
	var list api.TraceList
	if status := getJSON(t, ts.URL+"/debug/traces", &list); status != http.StatusOK {
		t.Fatalf("list status %d", status)
	}
	if list.Stored != 3 || list.Capacity != 256 {
		t.Fatalf("stored=%d capacity=%d, want 3/256", list.Stored, list.Capacity)
	}
	if len(list.Recent) != 3 || len(list.Slowest) != 3 {
		t.Fatalf("recent=%d slowest=%d, want 3/3", len(list.Recent), len(list.Slowest))
	}
	for _, row := range list.Recent {
		if row.TraceID == "" || row.Path != "/v1/sample" || row.Status != http.StatusOK {
			t.Fatalf("bad listing row: %+v", row)
		}
	}
	// Slowest is duration-sorted.
	for i := 1; i < len(list.Slowest); i++ {
		if list.Slowest[i].DurationNS > list.Slowest[i-1].DurationNS {
			t.Fatalf("slowest not sorted: %d > %d at %d", list.Slowest[i].DurationNS, list.Slowest[i-1].DurationNS, i)
		}
	}
}

// TestTwoReplicaTraceSpansBothReplicas is the cluster acceptance check: one
// trace id names a proxied request on every replica it touched — the
// non-owner's trace attributes the hop to the proxy stage, the owner's trace
// holds the compute.
func TestTwoReplicaTraceSpansBothReplicas(t *testing.T) {
	a, _, aURL, bURL := twoReplicas(t, Config{})
	csv := testCSV()
	id := planIDFor(t, a, csv)

	ownerURL, otherURL := aURL, bURL
	if a.shardRing().owner(id) == bURL {
		ownerURL, otherURL = bURL, aURL
	}

	tid := strings.Repeat("cd", 16)
	req, err := http.NewRequest(http.MethodPost, otherURL+"/v1/sample", strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/csv")
	req.Header.Set(api.TraceHeader, tid+"-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proxied sample status %d", resp.StatusCode)
	}

	status, front := getTrace(t, otherURL, tid)
	if status != http.StatusOK {
		t.Fatalf("non-owner trace status %d", status)
	}
	status, back := getTrace(t, ownerURL, tid)
	if status != http.StatusOK {
		t.Fatalf("owner trace status %d (trace id did not propagate)", status)
	}

	if front.TraceID != tid || back.TraceID != tid {
		t.Fatalf("trace ids diverge: front %s back %s", front.TraceID, back.TraceID)
	}
	if front.Replica == back.Replica {
		t.Fatalf("both trace documents claim replica %q", front.Replica)
	}
	if _, ok := front.StageNS[stageProxy]; !ok {
		t.Fatalf("non-owner trace has no proxy stage: %v", front.StageNS)
	}
	if _, ok := front.StageNS[stageCompute]; ok {
		t.Fatalf("non-owner computed a proxied plan: %v", front.StageNS)
	}
	if _, ok := back.StageNS[stageCompute]; !ok {
		t.Fatalf("owner trace has no compute stage: %v", back.StageNS)
	}
	// The owner's trace records who forwarded the request.
	ownerRoot := findSpan(back.Spans, "request")
	if ownerRoot == nil {
		t.Fatal("owner trace has no request span")
	}
	if fwd, _ := ownerRoot.Attrs["forwarded_by"].(string); fwd == "" {
		t.Fatal("owner request span missing forwarded_by attr")
	}
	proxy := findSpan(front.Spans, stageProxy)
	if proxy == nil {
		t.Fatal("non-owner trace has no proxy span")
	}
	if owner, _ := proxy.Attrs["owner"].(string); owner != ownerURL {
		t.Fatalf("proxy span owner = %q, want %q", owner, ownerURL)
	}
}

// TestCoalescedStormTracing pins follower linking: a 50-burst of identical
// requests under distinct trace ids yields exactly one trace holding the
// compute span, and 49 follower traces whose flight span links to the
// leader's trace id instead of duplicating the compute subtree.
func TestCoalescedStormTracing(t *testing.T) {
	const burst = 50
	srv := New(Config{})
	gate := make(chan struct{})
	srv.preCompute = func(string) { <-gate }
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	csv := testCSV()

	ids := make([]string, burst)
	for i := range ids {
		ids[i] = fmt.Sprintf("%032x", i+1)
	}
	var wg sync.WaitGroup
	statuses := make([]int, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/sample", strings.NewReader(csv))
			if err != nil {
				return
			}
			req.Header.Set("Content-Type", "text/csv")
			req.Header.Set(api.TraceHeader, ids[i]+"-01")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				return
			}
			resp.Body.Close()
			statuses[i] = resp.StatusCode
		}(i)
	}
	waitFor(t, "49 followers to coalesce", func() bool {
		return srv.metrics.Coalesced.Value() == burst-1
	})
	close(gate)
	wg.Wait()

	var computeID string
	followers := 0
	for i, id := range ids {
		if statuses[i] != http.StatusOK {
			t.Fatalf("request %d status %d", i, statuses[i])
		}
		tr := srv.traces.get(id)
		if tr == nil {
			t.Fatalf("trace %s not stored", id)
		}
		spans := toAPISpans(tr.report.Spans)
		flight := findSpan(spans, stageFlight)
		if flight == nil {
			t.Fatalf("trace %s has no flight span", id)
		}
		if findSpan(spans, stageCompute) != nil {
			if computeID != "" {
				t.Fatalf("both %s and %s hold compute spans, want exactly one leader", computeID, id)
			}
			computeID = id
			continue
		}
		leader, _ := flight.Attrs["leader_trace"].(string)
		if co, _ := flight.Attrs["coalesced"].(bool); !co || leader == "" {
			t.Fatalf("follower %s flight attrs = %v, want coalesced + leader_trace", id, flight.Attrs)
		}
		followers++
		if leader != computeID && computeID != "" && srv.traces.get(leader) == nil {
			t.Fatalf("follower %s links to unknown leader %s", id, leader)
		}
	}
	if computeID == "" || followers != burst-1 {
		t.Fatalf("leader=%q followers=%d, want one leader and %d followers", computeID, followers, burst-1)
	}
	// Every follower must name the one trace that actually computed.
	for _, id := range ids {
		if id == computeID {
			continue
		}
		flight := findSpan(toAPISpans(srv.traces.get(id).report.Spans), stageFlight)
		if leader, _ := flight.Attrs["leader_trace"].(string); leader != computeID {
			t.Fatalf("follower %s leader_trace = %s, want %s", id, leader, computeID)
		}
	}
}
