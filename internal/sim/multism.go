package sim

import (
	"fmt"

	"github.com/gpusampling/sieve/internal/trace"
)

// MultiSMResult extends Result with per-SM detail from a multi-SM
// simulation.
type MultiSMResult struct {
	Result
	// SMs is the number of simulated streaming multiprocessors.
	SMs int
	// PerSMCycles is each SM's finish cycle; the Result's SMCycles is the
	// maximum (the kernel ends when its slowest SM drains).
	PerSMCycles []uint64
	// Imbalance is max/mean of PerSMCycles: 1.0 is a perfectly balanced
	// launch.
	Imbalance float64
	// OpMix counts executed warp instructions per opcode class.
	OpMix map[trace.Opcode]int
}

// SimulateMultiSM replays a trace across nSMs streaming multiprocessors:
// warps are distributed round-robin, each SM has a private L1 and its own
// issue slots, and all SMs share the L2 and a bandwidth-limited DRAM
// channel. nSMs ≤ 0 selects min(arch SMs, traced warps).
//
// Compared to Simulate (one SM + wave extrapolation), the multi-SM mode
// captures inter-SM load imbalance and L2/DRAM contention explicitly.
func (s *Simulator) SimulateMultiSM(t *trace.Trace, nSMs int) (*MultiSMResult, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if nSMs <= 0 {
		nSMs = s.arch.SMs
	}
	if nSMs > t.Warps {
		nSMs = t.Warps
	}

	perWarp := make([][]trace.Instr, t.Warps)
	for _, ins := range t.Instrs {
		perWarp[ins.Warp] = append(perWarp[ins.Warp], ins)
	}

	type smState struct {
		warps []int // warp IDs owned by this SM
		l1    *cache
		done  bool
		endAt uint64
		rr    int
	}
	sms := make([]*smState, nSMs)
	for i := range sms {
		sms[i] = &smState{l1: newCache(l1Bytes/lineBytes/l1Ways, l1Ways)}
	}
	for w := 0; w < t.Warps; w++ {
		sm := sms[w%nSMs]
		sm.warps = append(sm.warps, w)
	}

	mem := newMemSystem(s.arch)
	warps := make([]warpState, t.Warps)
	remaining := 0
	for w := range perWarp {
		if len(perWarp[w]) == 0 {
			warps[w].done = true
			continue
		}
		remaining++
	}
	if remaining == 0 {
		return nil, fmt.Errorf("sim: trace has no instructions in any warp")
	}

	var (
		cycle    uint64
		executed int
	)
	issueWidth := int(s.arch.IssuePerSM)
	if issueWidth < 1 {
		issueWidth = 1
	}
	opMix := make(map[trace.Opcode]int)

	for remaining > 0 {
		anyIssued := false
		for _, sm := range sms {
			if sm.done {
				continue
			}
			issued := 0
			scanned := 0
			smRemaining := false
			for scanned < len(sm.warps) {
				w := sm.warps[(sm.rr+scanned)%len(sm.warps)]
				scanned++
				ws := &warps[w]
				if ws.done {
					continue
				}
				smRemaining = true
				if issued >= issueWidth || ws.readyAt > cycle {
					continue
				}
				ins := perWarp[w][ws.next]
				lat := s.latency(ins, sm.l1, mem, cycle)
				ws.readyAt = cycle + lat
				ws.next++
				executed++
				issued++
				opMix[ins.Op]++
				if ws.next == len(perWarp[w]) {
					ws.done = true
					remaining--
					if remaining == 0 {
						break
					}
				}
			}
			sm.rr++
			if issued > 0 {
				anyIssued = true
			}
			if !smRemaining && !sm.done {
				sm.done = true
				sm.endAt = cycle
			}
		}
		if remaining == 0 {
			break
		}
		if !anyIssued {
			// Jump to the earliest wake-up across all SMs.
			nextWake := ^uint64(0)
			for w := range warps {
				if !warps[w].done && warps[w].readyAt > cycle && warps[w].readyAt < nextWake {
					nextWake = warps[w].readyAt
				}
			}
			if nextWake == ^uint64(0) {
				return nil, fmt.Errorf("sim: multi-SM deadlock with %d warps remaining", remaining)
			}
			cycle = nextWake
			continue
		}
		cycle++
	}

	res := &MultiSMResult{SMs: nSMs, OpMix: opMix}
	res.Kernel = t.Kernel
	res.Invocation = t.Invocation
	res.WarpInstructions = executed
	res.PerSMCycles = make([]uint64, nSMs)
	var sum float64
	for i, sm := range sms {
		end := sm.endAt
		if !sm.done || end == 0 {
			end = cycle
		}
		res.PerSMCycles[i] = end
		if end > res.SMCycles {
			res.SMCycles = end
		}
		sum += float64(end)
	}
	if res.SMCycles > 0 {
		res.IPC = float64(executed) / float64(res.SMCycles)
	}
	if mean := sum / float64(nSMs); mean > 0 {
		res.Imbalance = float64(res.SMCycles) / mean
	}
	if mem.l1Refs > 0 {
		res.L1HitRate = float64(mem.l1Hits) / float64(mem.l1Refs)
	}
	if mem.l2Refs > 0 {
		res.L2HitRate = float64(mem.l2Hits) / float64(mem.l2Refs)
	}
	// Whole-GPU extrapolation: the traced warps already span nSMs SMs; the
	// remaining waves of CTAs replay the same shape.
	totalWarps := float64(t.Grid.Count()) * float64((t.Block.Count()+31)/32)
	waves := totalWarps / (float64(t.Warps) / float64(nSMs) * float64(s.arch.SMs))
	if waves < 1 {
		waves = 1
	}
	res.Cycles = float64(res.SMCycles)*waves + s.arch.LaunchOverheadCycles
	return res, nil
}
