package sim

import (
	"testing"

	"github.com/gpusampling/sieve/internal/cudamodel"
	"github.com/gpusampling/sieve/internal/trace"
	"github.com/gpusampling/sieve/internal/workloads"
)

// multiWarpALU builds nWarps independent warps of perWarp ALU instructions.
func multiWarpALU(nWarps, perWarp int) *trace.Trace {
	tr := &trace.Trace{
		Kernel: "malu", Invocation: 0,
		Grid:  cudamodel.Dim3{X: int32(nWarps), Y: 1, Z: 1},
		Block: cudamodel.Dim3{X: 32, Y: 1, Z: 1},
		Warps: nWarps,
	}
	for w := 0; w < nWarps; w++ {
		pc := uint64(0x1000)
		for i := 0; i < perWarp; i++ {
			tr.Instrs = append(tr.Instrs, trace.Instr{Warp: w, PC: pc, Op: trace.OpIMAD, ActiveMask: 0xFFFFFFFF})
			pc += 16
		}
		tr.Instrs = append(tr.Instrs, trace.Instr{Warp: w, PC: pc, Op: trace.OpEXIT, ActiveMask: 0xFFFFFFFF})
	}
	return tr
}

func TestMultiSMValidation(t *testing.T) {
	s := mustSim(t)
	if _, err := s.SimulateMultiSM(&trace.Trace{}, 4); err == nil {
		t.Fatal("want error for invalid trace")
	}
}

func TestMultiSMSpreadsWork(t *testing.T) {
	s := mustSim(t)
	// 64 warps: 16 per SM at nSMs=4, enough to hide the ALU latency and
	// saturate each SM's issue width.
	tr := multiWarpALU(64, 300)
	one, err := s.SimulateMultiSM(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	four, err := s.SimulateMultiSM(tr, 4)
	if err != nil {
		t.Fatal(err)
	}
	if four.SMs != 4 || len(four.PerSMCycles) != 4 {
		t.Fatalf("SMs = %d, per-SM = %d", four.SMs, len(four.PerSMCycles))
	}
	// Four SMs of issue width each finish compute-bound work far sooner.
	if four.SMCycles*2 >= one.SMCycles {
		t.Fatalf("4 SMs (%d cycles) should be at least 2x faster than 1 SM (%d)", four.SMCycles, one.SMCycles)
	}
	if one.WarpInstructions != four.WarpInstructions {
		t.Fatal("instruction counts must match across SM counts")
	}
}

func TestMultiSMBalancedLaunchHasLowImbalance(t *testing.T) {
	s := mustSim(t)
	tr := multiWarpALU(32, 300) // 8 equal warps per SM at nSMs=4
	res, err := s.SimulateMultiSM(tr, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Imbalance < 1 || res.Imbalance > 1.1 {
		t.Fatalf("balanced launch imbalance = %g, want ≈1", res.Imbalance)
	}
}

func TestMultiSMImbalancedLaunch(t *testing.T) {
	// One warp does 10x the work of the others: the slowest SM dominates.
	s := mustSim(t)
	tr := multiWarpALU(4, 100)
	// Extend warp 0 with extra work.
	pc := uint64(0x100000)
	var extra []trace.Instr
	for i := 0; i < 2000; i++ {
		extra = append(extra, trace.Instr{Warp: 0, PC: pc, Op: trace.OpIMAD, ActiveMask: 0xFFFFFFFF})
		pc += 16
	}
	// Keep per-warp program order: rebuild with warp 0's stream extended
	// before its EXIT.
	var rebuilt []trace.Instr
	for _, ins := range tr.Instrs {
		if ins.Warp == 0 && ins.Op == trace.OpEXIT {
			rebuilt = append(rebuilt, extra...)
		}
		rebuilt = append(rebuilt, ins)
	}
	tr.Instrs = rebuilt
	res, err := s.SimulateMultiSM(tr, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Imbalance < 1.5 {
		t.Fatalf("skewed launch imbalance = %g, want clearly above 1", res.Imbalance)
	}
}

func TestMultiSMOpMix(t *testing.T) {
	s := mustSim(t)
	tr := multiWarpALU(4, 50)
	res, err := s.SimulateMultiSM(tr, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.OpMix[trace.OpIMAD] != 4*50 {
		t.Fatalf("IMAD count = %d, want %d", res.OpMix[trace.OpIMAD], 4*50)
	}
	if res.OpMix[trace.OpEXIT] != 4 {
		t.Fatalf("EXIT count = %d, want 4", res.OpMix[trace.OpEXIT])
	}
	total := 0
	for _, n := range res.OpMix {
		total += n
	}
	if total != res.WarpInstructions {
		t.Fatal("op mix does not sum to executed instructions")
	}
}

func TestMultiSMOnGeneratedTrace(t *testing.T) {
	spec, err := workloads.ByName("lmc")
	if err != nil {
		t.Fatal(err)
	}
	w, err := workloads.Generate(spec, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	s := mustSim(t)
	tr, err := trace.Generate(&w.Invocations[0], 20000, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.SimulateMultiSM(tr, 0) // default SM count
	if err != nil {
		t.Fatal(err)
	}
	if res.SMs < 1 || res.SMs > s.Arch().SMs {
		t.Fatalf("SMs = %d", res.SMs)
	}
	if res.Cycles <= 0 || res.IPC <= 0 {
		t.Fatalf("degenerate result %+v", res.Result)
	}
	// Memory-bound traces contend on shared DRAM: more SMs cannot make the
	// result slower than the single-SM engine by definition of the shared
	// bottleneck, but must still finish.
	single, err := s.Simulate(tr)
	if err != nil {
		t.Fatal(err)
	}
	// Splitting warps across private L1s and contending on shared DRAM can
	// shift cycles either way; the two engines must stay in the same
	// ballpark on the same warp set.
	ratio := float64(res.SMCycles) / float64(single.SMCycles)
	if ratio < 0.2 || ratio > 1.5 {
		t.Fatalf("multi-SM (%d) diverges wildly from single SM (%d)", res.SMCycles, single.SMCycles)
	}
}

// Arch accessor used by tests.
func TestArchAccessor(t *testing.T) {
	s := mustSim(t)
	if s.Arch().Name == "" {
		t.Fatal("Arch() should return the configured architecture")
	}
}
