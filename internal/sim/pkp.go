package sim

import (
	"fmt"

	"github.com/gpusampling/sieve/internal/trace"
)

// PKPOptions configures Principal Kernel Projection (Baddouh et al., MICRO
// 2021), the intra-invocation sampling technique the Sieve paper discusses in
// Section II-A: per-kernel IPC converges quickly as execution progresses, so
// simulation can stop once the running IPC is stable and the remainder of
// the invocation can be projected. PKP is orthogonal to both Sieve and PKS
// (it shortens each representative's simulation; they shorten the list of
// representatives).
type PKPOptions struct {
	// WindowInstrs is the warp-instruction epoch between IPC checks
	// (default 5000).
	WindowInstrs int
	// Tolerance is the maximum relative IPC change across consecutive
	// windows to count as stable (default 0.02).
	Tolerance float64
	// StableWindows is how many consecutive stable windows constitute
	// convergence (default 4).
	StableWindows int
	// MinFraction is the minimum fraction of the trace simulated before
	// early exit is allowed (default 0.25).
	MinFraction float64
}

func (o PKPOptions) withDefaults() PKPOptions {
	if o.WindowInstrs <= 0 {
		o.WindowInstrs = 5000
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 0.02
	}
	if o.StableWindows <= 0 {
		o.StableWindows = 4
	}
	if o.MinFraction <= 0 {
		o.MinFraction = 0.25
	}
	return o
}

// PKPResult is a projected simulation outcome.
type PKPResult struct {
	// Result is the projected full-invocation result: Cycles and SMCycles
	// are extrapolated from the converged IPC.
	Result
	// SimulatedInstructions is how many warp instructions actually ran.
	SimulatedInstructions int
	// SimulatedFraction is SimulatedInstructions over the trace length.
	SimulatedFraction float64
	// Converged reports whether IPC stabilized before the trace ended.
	Converged bool
}

// SimulateProjected replays a trace with PKP early exit: once the running
// IPC is stable across consecutive instruction windows, simulation stops and
// full-invocation cycles are projected as total instructions divided by the
// converged IPC.
func (s *Simulator) SimulateProjected(t *trace.Trace, opts PKPOptions) (*PKPResult, error) {
	opts = opts.withDefaults()
	if err := t.Validate(); err != nil {
		return nil, err
	}
	total := len(t.Instrs)
	minInstrs := int(opts.MinFraction * float64(total))

	// Reuse the full simulator on growing prefixes: simulate window by
	// window using the incremental engine below.
	eng, err := newEngine(s, t)
	if err != nil {
		return nil, err
	}
	var (
		prevWindowIPC float64
		stable        int
		executed      int
	)
	for {
		cycleBefore := eng.cycle
		n, done := eng.run(opts.WindowInstrs)
		executed += n
		windowCycles := eng.cycle - cycleBefore
		var windowIPC float64
		if windowCycles > 0 {
			windowIPC = float64(n) / float64(windowCycles)
		}
		if done {
			res := eng.result(t)
			return &PKPResult{
				Result:                *res,
				SimulatedInstructions: executed,
				SimulatedFraction:     1,
				Converged:             false,
			}, nil
		}
		if prevWindowIPC > 0 && windowIPC > 0 && executed >= minInstrs {
			delta := windowIPC - prevWindowIPC
			if delta < 0 {
				delta = -delta
			}
			if delta/prevWindowIPC <= opts.Tolerance {
				stable++
			} else {
				stable = 0
			}
			if stable >= opts.StableWindows {
				// Project with the converged steady-state (window) IPC.
				ipc := windowIPC
				// Project: the remaining instructions run at the converged
				// IPC.
				res := eng.result(t)
				remaining := float64(total - executed)
				projCycles := float64(eng.cycle) + remaining/ipc
				scale := projCycles / float64(eng.cycle)
				res.SMCycles = uint64(projCycles)
				res.Cycles *= scale
				res.WarpInstructions = total
				res.IPC = ipc
				return &PKPResult{
					Result:                *res,
					SimulatedInstructions: executed,
					SimulatedFraction:     float64(executed) / float64(total),
					Converged:             true,
				}, nil
			}
		}
		prevWindowIPC = windowIPC
	}
}

// engine is the incremental core of the simulator, shared by Simulate and
// SimulateProjected.
type engine struct {
	sim       *Simulator
	perWarp   [][]trace.Instr
	warps     []warpState
	remaining int
	cycle     uint64
	rr        int

	l1       *cache
	mem      *memSystem
	executed int
}

func newEngine(s *Simulator, t *trace.Trace) (*engine, error) {
	perWarp := make([][]trace.Instr, t.Warps)
	for _, ins := range t.Instrs {
		perWarp[ins.Warp] = append(perWarp[ins.Warp], ins)
	}
	e := &engine{
		sim:     s,
		perWarp: perWarp,
		warps:   make([]warpState, t.Warps),
		l1:      newCache(l1Bytes/lineBytes/l1Ways, l1Ways),
		mem:     newMemSystem(s.arch),
	}
	for w := range perWarp {
		if len(perWarp[w]) == 0 {
			e.warps[w].done = true
			continue
		}
		e.remaining++
	}
	if e.remaining == 0 {
		return nil, fmt.Errorf("sim: trace has no instructions in any warp")
	}
	return e, nil
}

// run executes up to budget warp instructions; it reports how many ran and
// whether the trace is finished.
func (e *engine) run(budget int) (ran int, done bool) {
	issueWidth := int(e.sim.arch.IssuePerSM)
	if issueWidth < 1 {
		issueWidth = 1
	}
	for e.remaining > 0 && ran < budget {
		issued := 0
		scanned := 0
		for issued < issueWidth && scanned < len(e.warps) {
			w := (e.rr + scanned) % len(e.warps)
			scanned++
			ws := &e.warps[w]
			if ws.done || ws.readyAt > e.cycle {
				continue
			}
			ins := e.perWarp[w][ws.next]
			lat := e.sim.latency(ins, e.l1, e.mem, e.cycle)
			ws.readyAt = e.cycle + lat
			ws.next++
			ran++
			issued++
			e.executed++
			if ws.next == len(e.perWarp[w]) {
				ws.done = true
				e.remaining--
			}
		}
		e.rr = (e.rr + 1) % len(e.warps)
		if issued == 0 {
			nextWake := ^uint64(0)
			for w := range e.warps {
				if !e.warps[w].done && e.warps[w].readyAt > e.cycle && e.warps[w].readyAt < nextWake {
					nextWake = e.warps[w].readyAt
				}
			}
			if nextWake == ^uint64(0) {
				// Should be unreachable: a non-done warp is always ready or
				// waiting.
				return ran, true
			}
			e.cycle = nextWake
			continue
		}
		e.cycle++
	}
	return ran, e.remaining == 0
}

// result snapshots the engine state into a Result.
func (e *engine) result(t *trace.Trace) *Result {
	res := &Result{
		Kernel:           t.Kernel,
		Invocation:       t.Invocation,
		SMCycles:         e.cycle,
		WarpInstructions: e.executed,
	}
	if e.cycle > 0 {
		res.IPC = float64(e.executed) / float64(e.cycle)
	}
	if e.mem.l1Refs > 0 {
		res.L1HitRate = float64(e.mem.l1Hits) / float64(e.mem.l1Refs)
	}
	if e.mem.l2Refs > 0 {
		res.L2HitRate = float64(e.mem.l2Hits) / float64(e.mem.l2Refs)
	}
	totalWarps := float64(t.Grid.Count()) * float64((t.Block.Count()+31)/32)
	waves := totalWarps / (float64(t.Warps) * float64(e.sim.arch.SMs))
	if waves < 1 {
		waves = 1
	}
	res.Cycles = float64(e.cycle)*waves + e.sim.arch.LaunchOverheadCycles
	return res
}
