package sim

import (
	"math"
	"testing"

	"github.com/gpusampling/sieve/internal/trace"
	"github.com/gpusampling/sieve/internal/workloads"
)

func TestPKPOptionsDefaults(t *testing.T) {
	o := PKPOptions{}.withDefaults()
	if o.WindowInstrs <= 0 || o.Tolerance <= 0 || o.StableWindows <= 0 || o.MinFraction <= 0 {
		t.Fatalf("defaults = %+v", o)
	}
}

func TestPKPConvergesOnSteadyTrace(t *testing.T) {
	// A long homogeneous ALU trace has constant IPC: PKP must converge and
	// project accurately.
	s := mustSim(t)
	tr := aluTrace(60000)
	full, err := s.Simulate(tr)
	if err != nil {
		t.Fatal(err)
	}
	proj, err := s.SimulateProjected(tr, PKPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !proj.Converged {
		t.Fatal("steady trace should converge")
	}
	if proj.SimulatedFraction >= 0.9 {
		t.Fatalf("simulated %.0f%% of the trace, PKP should stop much earlier", 100*proj.SimulatedFraction)
	}
	relErr := math.Abs(float64(proj.SMCycles)-float64(full.SMCycles)) / float64(full.SMCycles)
	if relErr > 0.05 {
		t.Fatalf("projected cycles err %.2f%% vs full simulation", 100*relErr)
	}
	if proj.WarpInstructions != full.WarpInstructions {
		t.Fatalf("projected instruction count %d, want full %d", proj.WarpInstructions, full.WarpInstructions)
	}
}

func TestPKPRunsToCompletionOnShortTrace(t *testing.T) {
	s := mustSim(t)
	tr := aluTrace(50)
	proj, err := s.SimulateProjected(tr, PKPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if proj.Converged {
		t.Fatal("trace shorter than a window cannot converge early")
	}
	if proj.SimulatedFraction != 1 {
		t.Fatalf("fraction = %g", proj.SimulatedFraction)
	}
	full, err := s.Simulate(tr)
	if err != nil {
		t.Fatal(err)
	}
	if proj.SMCycles != full.SMCycles {
		t.Fatalf("non-converged projection must equal full simulation: %d vs %d", proj.SMCycles, full.SMCycles)
	}
}

func TestPKPRejectsInvalidTrace(t *testing.T) {
	s := mustSim(t)
	if _, err := s.SimulateProjected(&trace.Trace{}, PKPOptions{}); err != nil {
		return
	}
	t.Fatal("want error for invalid trace")
}

func TestPKPOnGeneratedTraceMatchesFullWithinTolerance(t *testing.T) {
	spec, err := workloads.ByName("gms")
	if err != nil {
		t.Fatal(err)
	}
	w, err := workloads.Generate(spec, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	s := mustSim(t)
	tr, err := trace.Generate(&w.Invocations[0], 40000, 3)
	if err != nil {
		t.Fatal(err)
	}
	full, err := s.Simulate(tr)
	if err != nil {
		t.Fatal(err)
	}
	proj, err := s.SimulateProjected(tr, PKPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	relErr := math.Abs(float64(proj.SMCycles)-float64(full.SMCycles)) / float64(full.SMCycles)
	if relErr > 0.2 {
		t.Fatalf("PKP projection err %.1f%% on generated trace", 100*relErr)
	}
	if proj.Converged && proj.SimulatedFraction >= 1 {
		t.Fatal("converged projection should have simulated a strict fraction")
	}
}

func TestPKPTighterToleranceSimulatesMore(t *testing.T) {
	s := mustSim(t)
	spec, _ := workloads.ByName("lmc")
	w, err := workloads.Generate(spec, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Generate(&w.Invocations[0], 40000, 5)
	if err != nil {
		t.Fatal(err)
	}
	loose, err := s.SimulateProjected(tr, PKPOptions{Tolerance: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := s.SimulateProjected(tr, PKPOptions{Tolerance: 0.0005, StableWindows: 8})
	if err != nil {
		t.Fatal(err)
	}
	if tight.SimulatedInstructions < loose.SimulatedInstructions {
		t.Fatalf("tighter tolerance simulated less: %d vs %d",
			tight.SimulatedInstructions, loose.SimulatedInstructions)
	}
}

func TestEngineMatchesSimulate(t *testing.T) {
	// The incremental engine driven to completion must agree exactly with
	// the one-shot Simulate loop.
	s := mustSim(t)
	tr := memTrace(800, func(i int) uint64 { return uint64(i%37) * 128 })
	full, err := s.Simulate(tr)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := newEngine(s, tr)
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, done := eng.run(97); done {
			break
		}
	}
	res := eng.result(tr)
	if res.SMCycles != full.SMCycles || res.WarpInstructions != full.WarpInstructions {
		t.Fatalf("engine (%d cycles, %d instrs) != Simulate (%d cycles, %d instrs)",
			res.SMCycles, res.WarpInstructions, full.SMCycles, full.WarpInstructions)
	}
	if res.L1HitRate != full.L1HitRate || res.L2HitRate != full.L2HitRate {
		t.Fatal("cache statistics diverge between engine and Simulate")
	}
}
