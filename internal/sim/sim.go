// Package sim is a trace-driven, cycle-level GPU simulator in the spirit of
// Accel-sim: it replays SASS-like traces (package trace) through a model of
// one streaming multiprocessor with warp scheduling, opcode latencies, an
// L1/L2 cache hierarchy and a bandwidth-limited DRAM, and extrapolates
// whole-GPU cycles from the per-SM result.
//
// It exists for the paper's Section V-G workflow: after Sieve selects
// representative kernel invocations, only their traces are simulated —
// serially on one core or dispatched in parallel, where total time is set by
// the longest-running kernel.
package sim

import (
	"fmt"
	"runtime"
	"sync"

	"github.com/gpusampling/sieve/internal/gpu"
	"github.com/gpusampling/sieve/internal/trace"
)

// Latencies for the opcode classes, in core cycles. Values follow published
// microbenchmark ranges for Turing/Ampere-class parts.
const (
	latALU    = 4
	latFP     = 4
	latTensor = 16
	latBranch = 6
	latShared = 22
	latL1     = 28
	latL2     = 190
	latDRAM   = 420
)

// cache geometry
const (
	lineBytes = 128
	l1Bytes   = 128 << 10
	l1Ways    = 4
	l2Ways    = 16
)

// memSystem bundles the shared part of the memory hierarchy: the L2, the
// DRAM channel, and the MSHR-style in-flight miss table that merges
// concurrent requests to the same line (a second requester waits for the
// outstanding fill instead of consuming DRAM bandwidth again).
type memSystem struct {
	l2         *cache
	inFlight   map[uint64]uint64 // line -> fill-completion cycle
	dramFreeAt uint64
	dramEvery  uint64

	l1Hits, l1Refs int
	l2Hits, l2Refs int
}

func newMemSystem(arch gpu.Arch) *memSystem {
	return &memSystem{
		l2:        newCache(int(arch.L2Bytes)/lineBytes/l2Ways, l2Ways),
		inFlight:  make(map[uint64]uint64),
		dramEvery: uint64(lineBytes/arch.BytesPerCycle()) + 1,
	}
}

// access serves one line through the hierarchy (private L1, shared L2,
// MSHR-merged DRAM) and returns its latency from cycle. An L2 miss installs
// the line only once its DRAM fill completes; until then concurrent
// requesters merge onto the outstanding fill instead of consuming DRAM
// bandwidth again.
func (m *memSystem) access(l1 *cache, line, cycle uint64) uint64 {
	m.l1Refs++
	if l1.access(line) {
		m.l1Hits++
		return latL1
	}
	m.l2Refs++
	if fillAt, ok := m.inFlight[line]; ok {
		if fillAt > cycle {
			// Merged with the outstanding fill.
			return fillAt - cycle
		}
		// The fill has completed: install the line.
		delete(m.inFlight, line)
		m.l2.insert(line)
	}
	if m.l2.lookup(line) {
		m.l2Hits++
		return latL2
	}
	start := cycle
	if m.dramFreeAt > start {
		start = m.dramFreeAt
	}
	m.dramFreeAt = start + m.dramEvery
	lat := (start - cycle) + latDRAM
	m.inFlight[line] = cycle + lat
	return lat
}

// Result summarizes one simulated trace.
type Result struct {
	// Kernel and Invocation identify the simulated trace.
	Kernel     string
	Invocation int
	// Cycles is the estimated whole-GPU cycle count for the invocation.
	Cycles float64
	// SMCycles is the simulated cycle count of the modeled SM.
	SMCycles uint64
	// WarpInstructions is the number of executed warp instructions.
	WarpInstructions int
	// IPC is warp instructions per SM cycle on the modeled SM.
	IPC float64
	// L1HitRate and L2HitRate summarize the memory hierarchy behaviour.
	L1HitRate, L2HitRate float64
}

// Simulator replays traces against one architecture.
type Simulator struct {
	arch gpu.Arch
}

// New returns a Simulator for the architecture.
func New(arch gpu.Arch) (*Simulator, error) {
	if err := arch.Validate(); err != nil {
		return nil, err
	}
	return &Simulator{arch: arch}, nil
}

// Arch returns the simulated architecture.
func (s *Simulator) Arch() gpu.Arch { return s.arch }

// warpState tracks one in-flight warp.
type warpState struct {
	next    int    // index of the next instruction in the warp's stream
	readyAt uint64 // cycle at which the warp may issue again
	done    bool
}

// Simulate replays one trace and returns its result.
func (s *Simulator) Simulate(t *trace.Trace) (*Result, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	// Split the stream per warp, preserving program order.
	perWarp := make([][]trace.Instr, t.Warps)
	for _, ins := range t.Instrs {
		perWarp[ins.Warp] = append(perWarp[ins.Warp], ins)
	}

	l1 := newCache(l1Bytes/lineBytes/l1Ways, l1Ways)
	mem := newMemSystem(s.arch)

	warps := make([]warpState, t.Warps)
	remaining := 0
	for w := range perWarp {
		if len(perWarp[w]) == 0 {
			warps[w].done = true
			continue
		}
		remaining++
	}
	if remaining == 0 {
		return nil, fmt.Errorf("sim: trace has no instructions in any warp")
	}

	var (
		cycle    uint64
		executed int
	)
	issueWidth := int(s.arch.IssuePerSM)
	if issueWidth < 1 {
		issueWidth = 1
	}
	rr := 0 // round-robin pointer

	for remaining > 0 {
		issued := 0
		scanned := 0
		for issued < issueWidth && scanned < len(warps) {
			w := (rr + scanned) % len(warps)
			scanned++
			ws := &warps[w]
			if ws.done || ws.readyAt > cycle {
				continue
			}
			ins := perWarp[w][ws.next]
			lat := s.latency(ins, l1, mem, cycle)
			ws.readyAt = cycle + lat
			ws.next++
			executed++
			issued++
			if ws.next == len(perWarp[w]) {
				ws.done = true
				remaining--
			}
		}
		rr = (rr + 1) % len(warps)
		if issued == 0 {
			// Nothing ready: jump to the earliest wake-up instead of
			// stepping cycle by cycle.
			nextWake := ^uint64(0)
			for w := range warps {
				if !warps[w].done && warps[w].readyAt > cycle && warps[w].readyAt < nextWake {
					nextWake = warps[w].readyAt
				}
			}
			if nextWake == ^uint64(0) {
				return nil, fmt.Errorf("sim: deadlock with %d warps remaining", remaining)
			}
			cycle = nextWake
			continue
		}
		cycle++
	}

	res := &Result{
		Kernel:           t.Kernel,
		Invocation:       t.Invocation,
		SMCycles:         cycle,
		WarpInstructions: executed,
	}
	if cycle > 0 {
		res.IPC = float64(executed) / float64(cycle)
	}
	if mem.l1Refs > 0 {
		res.L1HitRate = float64(mem.l1Hits) / float64(mem.l1Refs)
	}
	if mem.l2Refs > 0 {
		res.L2HitRate = float64(mem.l2Hits) / float64(mem.l2Refs)
	}
	// The modeled SM executes the traced warps; a full launch spreads its
	// CTAs across all SMs, so whole-GPU cycles scale with the untraced
	// work divided by the SM count (waves of equal-shaped warps).
	totalWarps := float64(t.Grid.Count()) * float64((t.Block.Count()+31)/32)
	tracedWarps := float64(t.Warps)
	waves := totalWarps / (tracedWarps * float64(s.arch.SMs))
	if waves < 1 {
		waves = 1
	}
	res.Cycles = float64(cycle)*waves + s.arch.LaunchOverheadCycles
	return res, nil
}

// latency computes an instruction's issue-to-ready latency, updating the
// memory-system state for memory operations.
func (s *Simulator) latency(ins trace.Instr, l1 *cache, mem *memSystem, cycle uint64) uint64 {
	switch {
	case ins.Op == trace.OpEXIT:
		return 1
	case ins.Op == trace.OpBRA:
		return latBranch
	case ins.Op == trace.OpHMMA:
		return latTensor
	case ins.Op == trace.OpFFMA:
		return latFP
	case ins.Op.IsShared():
		return latShared
	case ins.Op.IsMemory():
		// An uncoalesced warp access touches several lines; the sectors are
		// fetched in parallel where possible, so the warp's latency is the
		// worst line's, while every DRAM line consumes channel bandwidth.
		lines := ins.Lines
		if lines < 1 {
			lines = 1
		}
		var worst uint64 = latL1
		for l := 0; l < lines; l++ {
			line := ins.Addr/lineBytes + uint64(l)
			if lat := mem.access(l1, line, cycle); lat > worst {
				worst = lat
			}
		}
		return worst
	default:
		return latALU
	}
}

// --- serial / parallel dispatch ------------------------------------------------

// SimulateAll replays every trace serially and returns per-trace results in
// input order.
func (s *Simulator) SimulateAll(traces []*trace.Trace) ([]*Result, error) {
	out := make([]*Result, len(traces))
	for i, t := range traces {
		r, err := s.Simulate(t)
		if err != nil {
			return nil, fmt.Errorf("sim: trace %d (%s/%d): %w", i, t.Kernel, t.Invocation, err)
		}
		out[i] = r
	}
	return out, nil
}

// SimulateParallel replays the traces across workers goroutines (each trace
// file dispatched to a separate core, as in Section V-G). workers ≤ 0 uses
// GOMAXPROCS. Results are returned in input order.
func (s *Simulator) SimulateParallel(traces []*trace.Trace, workers int) ([]*Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make([]*Result, len(traces))
	errs := make([]error, len(traces))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, t := range traces {
		wg.Add(1)
		go func(i int, t *trace.Trace) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out[i], errs[i] = s.Simulate(t)
		}(i, t)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sim: trace %d: %w", i, err)
		}
	}
	return out, nil
}

// --- simple set-associative LRU cache ------------------------------------------

type cache struct {
	sets int
	ways int
	tags []uint64 // sets × ways, 0 = empty
	age  []uint64
	tick uint64
}

func newCache(sets, ways int) *cache {
	if sets < 1 {
		sets = 1
	}
	if ways < 1 {
		ways = 1
	}
	return &cache{
		sets: sets,
		ways: ways,
		tags: make([]uint64, sets*ways),
		age:  make([]uint64, sets*ways),
	}
}

// lookup reports whether the line is resident, refreshing its recency on a
// hit without inserting on a miss.
func (c *cache) lookup(line uint64) bool {
	c.tick++
	tag := line + 1
	set := int(line % uint64(c.sets))
	base := set * c.ways
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == tag {
			c.age[i] = c.tick
			return true
		}
	}
	return false
}

// insert installs the line, evicting the set's LRU way if needed.
func (c *cache) insert(line uint64) {
	c.tick++
	tag := line + 1
	set := int(line % uint64(c.sets))
	base := set * c.ways
	victim, oldest := base, ^uint64(0)
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == tag {
			c.age[i] = c.tick
			return
		}
		if c.age[i] < oldest {
			victim, oldest = i, c.age[i]
		}
	}
	c.tags[victim] = tag
	c.age[victim] = c.tick
}

// access looks line up, inserting on miss; reports hit.
func (c *cache) access(line uint64) bool {
	c.tick++
	tag := line + 1 // shift so 0 means empty
	set := int(line % uint64(c.sets))
	base := set * c.ways
	victim, oldest := base, ^uint64(0)
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == tag {
			c.age[i] = c.tick
			return true
		}
		if c.age[i] < oldest {
			victim, oldest = i, c.age[i]
		}
	}
	c.tags[victim] = tag
	c.age[victim] = c.tick
	return false
}
