package sim

import (
	"testing"

	"github.com/gpusampling/sieve/internal/cudamodel"
	"github.com/gpusampling/sieve/internal/gpu"
	"github.com/gpusampling/sieve/internal/trace"
	"github.com/gpusampling/sieve/internal/workloads"
)

func mustSim(t *testing.T) *Simulator {
	t.Helper()
	s, err := New(gpu.Ampere())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// aluTrace builds a trace of n ALU instructions on one warp.
func aluTrace(n int) *trace.Trace {
	tr := &trace.Trace{
		Kernel: "alu", Invocation: 0,
		Grid:  cudamodel.Dim3{X: 1, Y: 1, Z: 1},
		Block: cudamodel.Dim3{X: 32, Y: 1, Z: 1},
		Warps: 1,
	}
	pc := uint64(0x1000)
	for i := 0; i < n; i++ {
		tr.Instrs = append(tr.Instrs, trace.Instr{Warp: 0, PC: pc, Op: trace.OpIMAD, ActiveMask: 0xFFFFFFFF})
		pc += 16
	}
	tr.Instrs = append(tr.Instrs, trace.Instr{Warp: 0, PC: pc, Op: trace.OpEXIT, ActiveMask: 0xFFFFFFFF})
	return tr
}

// memTrace builds a trace alternating loads over a configurable address
// pattern.
func memTrace(n int, addr func(i int) uint64) *trace.Trace {
	tr := &trace.Trace{
		Kernel: "mem", Invocation: 1,
		Grid:  cudamodel.Dim3{X: 1, Y: 1, Z: 1},
		Block: cudamodel.Dim3{X: 32, Y: 1, Z: 1},
		Warps: 1,
	}
	pc := uint64(0x1000)
	for i := 0; i < n; i++ {
		tr.Instrs = append(tr.Instrs, trace.Instr{
			Warp: 0, PC: pc, Op: trace.OpLDG, ActiveMask: 0xFFFFFFFF, Addr: addr(i),
		})
		pc += 16
	}
	tr.Instrs = append(tr.Instrs, trace.Instr{Warp: 0, PC: pc, Op: trace.OpEXIT, ActiveMask: 0xFFFFFFFF})
	return tr
}

func TestNewRejectsInvalidArch(t *testing.T) {
	bad := gpu.Ampere()
	bad.SMs = 0
	if _, err := New(bad); err == nil {
		t.Fatal("want error for invalid arch")
	}
}

func TestSimulateALUChain(t *testing.T) {
	s := mustSim(t)
	res, err := s.Simulate(aluTrace(100))
	if err != nil {
		t.Fatal(err)
	}
	if res.WarpInstructions != 101 {
		t.Fatalf("executed %d instructions", res.WarpInstructions)
	}
	// A single warp issues one ALU op every latALU cycles.
	if res.SMCycles < 100*latALU || res.SMCycles > 110*latALU {
		t.Fatalf("ALU chain cycles = %d, want ≈ %d", res.SMCycles, 100*latALU)
	}
	if res.IPC <= 0 || res.IPC > float64(latALU) {
		t.Fatalf("IPC = %g", res.IPC)
	}
}

func TestSimulateRejectsInvalidTrace(t *testing.T) {
	s := mustSim(t)
	if _, err := s.Simulate(&trace.Trace{}); err == nil {
		t.Fatal("want error for invalid trace")
	}
}

func TestCacheHitsBeatMisses(t *testing.T) {
	s := mustSim(t)
	// Same line every access: after one miss, everything hits in L1.
	hot, err := s.Simulate(memTrace(500, func(int) uint64 { return 0x1000 }))
	if err != nil {
		t.Fatal(err)
	}
	if hot.L1HitRate < 0.99 {
		t.Fatalf("hot-line L1 hit rate = %g", hot.L1HitRate)
	}
	// Streaming: every access a fresh line → all misses to DRAM.
	cold, err := s.Simulate(memTrace(500, func(i int) uint64 { return uint64(i) * 128 * 7919 }))
	if err != nil {
		t.Fatal(err)
	}
	if cold.L1HitRate > 0.01 || cold.L2HitRate > 0.01 {
		t.Fatalf("streaming hit rates = %g / %g", cold.L1HitRate, cold.L2HitRate)
	}
	if cold.SMCycles <= hot.SMCycles*3 {
		t.Fatalf("streaming (%d cycles) should be much slower than hot-line (%d)", cold.SMCycles, hot.SMCycles)
	}
}

func TestMultiWarpOverlapsLatency(t *testing.T) {
	s := mustSim(t)
	// One warp of n loads vs eight warps of n/8 loads each: total work equal,
	// but multi-warp overlaps memory latency and finishes sooner.
	single := memTrace(400, func(i int) uint64 { return uint64(i) * 128 * 31 })
	multi := &trace.Trace{
		Kernel: "mem8", Invocation: 2,
		Grid:  cudamodel.Dim3{X: 8, Y: 1, Z: 1},
		Block: cudamodel.Dim3{X: 32, Y: 1, Z: 1},
		Warps: 8,
	}
	pc := uint64(0x1000)
	for i := 0; i < 400; i++ {
		multi.Instrs = append(multi.Instrs, trace.Instr{
			Warp: i % 8, PC: pc, Op: trace.OpLDG, ActiveMask: 0xFFFFFFFF,
			Addr: uint64(i) * 128 * 31,
		})
		pc += 16
	}
	for w := 0; w < 8; w++ {
		multi.Instrs = append(multi.Instrs, trace.Instr{Warp: w, PC: pc + uint64(w)*16, Op: trace.OpEXIT, ActiveMask: 0xFFFFFFFF})
	}
	rs, err := s.Simulate(single)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := s.Simulate(multi)
	if err != nil {
		t.Fatal(err)
	}
	if rm.SMCycles >= rs.SMCycles {
		t.Fatalf("8 warps (%d cycles) should beat 1 warp (%d cycles)", rm.SMCycles, rs.SMCycles)
	}
}

func TestSimulateGeneratedTraces(t *testing.T) {
	spec, err := workloads.ByName("gru")
	if err != nil {
		t.Fatal(err)
	}
	w, err := workloads.Generate(spec, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	s := mustSim(t)
	var traces []*trace.Trace
	for i := 0; i < 4; i++ {
		tr, err := trace.Generate(&w.Invocations[i*7], 3000, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		traces = append(traces, tr)
	}
	serial, err := s.SimulateAll(traces)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := s.SimulateParallel(traces, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i].Cycles <= 0 || serial[i].IPC <= 0 {
			t.Fatalf("trace %d: degenerate result %+v", i, serial[i])
		}
		// Parallel dispatch must be a pure scheduling change: identical
		// per-trace results.
		if serial[i].SMCycles != parallel[i].SMCycles || serial[i].WarpInstructions != parallel[i].WarpInstructions {
			t.Fatalf("trace %d: parallel result differs from serial", i)
		}
	}
}

func TestSimulateParallelPropagatesErrors(t *testing.T) {
	s := mustSim(t)
	bad := &trace.Trace{Kernel: "x", Warps: 1} // no instructions
	if _, err := s.SimulateParallel([]*trace.Trace{bad}, 2); err == nil {
		t.Fatal("want error")
	}
	if _, err := s.SimulateAll([]*trace.Trace{bad}); err == nil {
		t.Fatal("want error")
	}
}

func TestWholeGPUCyclesScaleWithGrid(t *testing.T) {
	s := mustSim(t)
	small := aluTrace(200)
	large := aluTrace(200)
	large.Grid = cudamodel.Dim3{X: 1 << 16, Y: 1, Z: 1} // far more CTAs than traced
	rs, err := s.Simulate(small)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := s.Simulate(large)
	if err != nil {
		t.Fatal(err)
	}
	if rl.Cycles <= rs.Cycles {
		t.Fatalf("wide grid (%g) should extrapolate to more cycles than single CTA (%g)", rl.Cycles, rs.Cycles)
	}
}

func TestCacheLRU(t *testing.T) {
	c := newCache(1, 2) // one set, two ways
	if c.access(1) {
		t.Fatal("first touch cannot hit")
	}
	if c.access(2) {
		t.Fatal("first touch cannot hit")
	}
	if !c.access(1) {
		t.Fatal("line 1 should still be resident")
	}
	// Insert 3 → evicts LRU (line 2).
	if c.access(3) {
		t.Fatal("line 3 first touch")
	}
	if c.access(2) {
		t.Fatal("line 2 should have been evicted")
	}
	if !c.access(3) {
		t.Fatal("line 3 should be resident")
	}
}

func TestMSHRMergesConcurrentMissesToSameLine(t *testing.T) {
	s := mustSim(t)
	// Two warps each load the same line once; the second request merges
	// with the first's outstanding DRAM fill instead of paying a fresh
	// bandwidth slot + full latency.
	sameLine := &trace.Trace{
		Kernel: "mshr", Invocation: 0,
		Grid:  cudamodel.Dim3{X: 2, Y: 1, Z: 1},
		Block: cudamodel.Dim3{X: 32, Y: 1, Z: 1},
		Warps: 2,
		Instrs: []trace.Instr{
			{Warp: 0, PC: 0x1000, Op: trace.OpLDG, ActiveMask: 0xFFFFFFFF, Addr: 0x80000, Lines: 1},
			{Warp: 1, PC: 0x1000, Op: trace.OpLDG, ActiveMask: 0xFFFFFFFF, Addr: 0x80000, Lines: 1},
			{Warp: 0, PC: 0x1010, Op: trace.OpEXIT, ActiveMask: 0xFFFFFFFF},
			{Warp: 1, PC: 0x1010, Op: trace.OpEXIT, ActiveMask: 0xFFFFFFFF},
		},
	}
	res, err := s.Simulate(sameLine)
	if err != nil {
		t.Fatal(err)
	}
	// Both requests complete within roughly one DRAM fill.
	if res.SMCycles > latDRAM+16 {
		t.Fatalf("merged misses took %d cycles, want ≈ %d", res.SMCycles, latDRAM)
	}
}

func TestMSHRFillInstallsLine(t *testing.T) {
	s := mustSim(t)
	// One warp loads a line, computes long enough for the fill to land,
	// then reloads it from a cold L1 path: the reload must hit in L2.
	// (Use a second line to evict nothing; L1 is large, so force the second
	// access via a different warp with its own... simpler: same warp
	// re-touches after eviction cannot be forced, so check hit rates via
	// two warps touching the same line far apart in time.)
	tr := &trace.Trace{
		Kernel: "fill", Invocation: 0,
		Grid:  cudamodel.Dim3{X: 2, Y: 1, Z: 1},
		Block: cudamodel.Dim3{X: 32, Y: 1, Z: 1},
		Warps: 2,
	}
	tr.Instrs = append(tr.Instrs, trace.Instr{Warp: 0, PC: 0x1000, Op: trace.OpLDG, ActiveMask: 0xFFFFFFFF, Addr: 0x90000, Lines: 1})
	pc := uint64(0x1000)
	for i := 0; i < 300; i++ { // ~1200 cycles of ALU on warp 1 before its load
		tr.Instrs = append(tr.Instrs, trace.Instr{Warp: 1, PC: pc, Op: trace.OpIMAD, ActiveMask: 0xFFFFFFFF})
		pc += 16
	}
	tr.Instrs = append(tr.Instrs, trace.Instr{Warp: 1, PC: pc, Op: trace.OpLDG, ActiveMask: 0xFFFFFFFF, Addr: 0x90000, Lines: 1})
	tr.Instrs = append(tr.Instrs, trace.Instr{Warp: 0, PC: 0x1010, Op: trace.OpEXIT, ActiveMask: 0xFFFFFFFF})
	tr.Instrs = append(tr.Instrs, trace.Instr{Warp: 1, PC: pc + 16, Op: trace.OpEXIT, ActiveMask: 0xFFFFFFFF})
	res, err := s.Simulate(tr)
	if err != nil {
		t.Fatal(err)
	}
	// Warp 1's load arrives after the fill completed: it must be an L2 hit
	// (warp 1 has never touched the line, and L1 is shared on one SM here —
	// its first access went through warp 0, so the L1 may also hit; either
	// way at least one of the hierarchy levels shows a hit).
	if res.L1HitRate == 0 && res.L2HitRate == 0 {
		t.Fatalf("late same-line access missed everywhere: %+v", res)
	}
}
