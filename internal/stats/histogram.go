package stats

import (
	"fmt"
	"math"
)

// Histogram is a fixed-width binning of a sample, used by the equal-width
// Tier-3 splitting ablation and by workload characterization reports.
type Histogram struct {
	// Lo is the lower edge of the first bin.
	Lo float64
	// Width is the width of each bin; always > 0.
	Width float64
	// Counts holds the number of samples per bin.
	Counts []int
}

// NewHistogram bins xs into n equal-width bins spanning [min(xs), max(xs)].
// The top edge is inclusive so the maximum lands in the last bin. It returns
// an error for empty input or n < 1. Degenerate samples (all values equal)
// produce a single-bin histogram of unit width.
func NewHistogram(xs []float64, n int) (*Histogram, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("stats: histogram of empty sample")
	}
	if n < 1 {
		return nil, fmt.Errorf("stats: histogram with %d bins", n)
	}
	lo, hi := Min(xs), Max(xs)
	if lo == hi {
		return &Histogram{Lo: lo, Width: 1, Counts: []int{len(xs)}}, nil
	}
	h := &Histogram{Lo: lo, Width: (hi - lo) / float64(n), Counts: make([]int, n)}
	for _, x := range xs {
		b := int((x - lo) / h.Width)
		if b >= n {
			b = n - 1
		}
		h.Counts[b]++
	}
	return h, nil
}

// Bin returns the bin index x falls into, clamped to the histogram's range.
func (h *Histogram) Bin(x float64) int {
	b := int((x - h.Lo) / h.Width)
	if b < 0 {
		return 0
	}
	if b >= len(h.Counts) {
		return len(h.Counts) - 1
	}
	return b
}

// Total returns the number of binned samples.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Mode returns the index of the most populated bin (the lowest such index on
// ties).
func (h *Histogram) Mode() int {
	best, bestCount := 0, -1
	for i, c := range h.Counts {
		if c > bestCount {
			best, bestCount = i, c
		}
	}
	return best
}

// Edges returns the n+1 bin edges.
func (h *Histogram) Edges() []float64 {
	edges := make([]float64, len(h.Counts)+1)
	for i := range edges {
		edges[i] = h.Lo + float64(i)*h.Width
	}
	return edges
}

// FreedmanDiaconisBins suggests a bin count for xs using the
// Freedman–Diaconis rule, clamped to [1, maxBins].
func FreedmanDiaconisBins(xs []float64, maxBins int) int {
	if len(xs) < 2 || maxBins < 1 {
		return 1
	}
	q1, err1 := Percentile(xs, 25)
	q3, err3 := Percentile(xs, 75)
	if err1 != nil || err3 != nil {
		return 1
	}
	iqr := q3 - q1
	if iqr <= 0 {
		return 1
	}
	width := 2 * iqr / math.Cbrt(float64(len(xs)))
	span := Max(xs) - Min(xs)
	if span <= 0 || width <= 0 {
		return 1
	}
	n := int(math.Ceil(span / width))
	if n < 1 {
		n = 1
	}
	if n > maxBins {
		n = maxBins
	}
	return n
}
