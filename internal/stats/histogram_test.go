package stats

import (
	"math/rand"
	"testing"
)

func TestNewHistogramBasic(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	h, err := NewHistogram(xs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Counts) != 5 {
		t.Fatalf("bins = %d, want 5", len(h.Counts))
	}
	if h.Total() != len(xs) {
		t.Fatalf("Total = %d, want %d", h.Total(), len(xs))
	}
	for i, c := range h.Counts {
		if c != 2 {
			t.Fatalf("bin %d count = %d, want 2", i, c)
		}
	}
}

func TestNewHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(nil, 3); err == nil {
		t.Fatal("want error on empty sample")
	}
	if _, err := NewHistogram([]float64{1}, 0); err == nil {
		t.Fatal("want error on zero bins")
	}
}

func TestNewHistogramDegenerate(t *testing.T) {
	h, err := NewHistogram([]float64{7, 7, 7}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Counts) != 1 || h.Counts[0] != 3 {
		t.Fatalf("degenerate histogram = %+v", h)
	}
}

func TestHistogramMaxLandsInLastBin(t *testing.T) {
	h, err := NewHistogram([]float64{0, 10}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.Counts[len(h.Counts)-1] != 1 {
		t.Fatalf("max not in last bin: %v", h.Counts)
	}
	if got := h.Bin(10); got != 3 {
		t.Fatalf("Bin(max) = %d, want 3", got)
	}
	if got := h.Bin(-5); got != 0 {
		t.Fatalf("Bin below range = %d, want 0", got)
	}
	if got := h.Bin(99); got != 3 {
		t.Fatalf("Bin above range = %d, want 3", got)
	}
}

func TestHistogramTotalPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(500)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 1e6
		}
		bins := 1 + rng.Intn(32)
		h, err := NewHistogram(xs, bins)
		if err != nil {
			t.Fatal(err)
		}
		if h.Total() != n {
			t.Fatalf("lost samples: total %d, want %d", h.Total(), n)
		}
	}
}

func TestHistogramMode(t *testing.T) {
	xs := []float64{1, 5, 5, 5, 9}
	h, err := NewHistogram(xs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Mode(); got != 1 {
		t.Fatalf("Mode = %d, want 1 (middle bin)", got)
	}
}

func TestHistogramEdges(t *testing.T) {
	h, err := NewHistogram([]float64{0, 8}, 4)
	if err != nil {
		t.Fatal(err)
	}
	edges := h.Edges()
	want := []float64{0, 2, 4, 6, 8}
	if len(edges) != len(want) {
		t.Fatalf("edges = %v", edges)
	}
	for i := range want {
		if !almostEqual(edges[i], want[i], 1e-12) {
			t.Fatalf("edges[%d] = %g, want %g", i, edges[i], want[i])
		}
	}
}

func TestFreedmanDiaconisBins(t *testing.T) {
	if got := FreedmanDiaconisBins(nil, 10); got != 1 {
		t.Fatalf("empty sample bins = %d, want 1", got)
	}
	if got := FreedmanDiaconisBins([]float64{5, 5, 5}, 10); got != 1 {
		t.Fatalf("constant sample bins = %d, want 1", got)
	}
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	got := FreedmanDiaconisBins(xs, 64)
	if got < 2 || got > 64 {
		t.Fatalf("normal sample bins = %d, want in [2, 64]", got)
	}
}
