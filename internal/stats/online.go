package stats

import "math"

// Accumulator computes running count, mean and variance using Welford's
// online algorithm, plus min/max and sum. It lets profile consumers compute
// per-stratum dispersion in a single pass over millions of invocations
// without materializing intermediate slices.
//
// The zero value is ready to use.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
	sum  float64
	min  float64
	max  float64
}

// Add folds x into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	a.sum += x
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// AddAll folds every value of xs into the accumulator.
func (a *Accumulator) AddAll(xs []float64) {
	for _, x := range xs {
		a.Add(x)
	}
}

// N returns the number of accumulated samples.
func (a *Accumulator) N() int { return a.n }

// Sum returns the sum of the accumulated samples.
func (a *Accumulator) Sum() float64 { return a.sum }

// Mean returns the running mean, or 0 with no samples.
func (a *Accumulator) Mean() float64 {
	if a.n == 0 {
		return 0
	}
	return a.mean
}

// Variance returns the population variance, or 0 with fewer than two samples.
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n)
}

// StdDev returns the population standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// CoV returns the coefficient of variation σ/μ, or 0 when the mean is zero.
func (a *Accumulator) CoV() float64 {
	m := a.Mean()
	if m == 0 {
		return 0
	}
	return a.StdDev() / math.Abs(m)
}

// Min returns the smallest accumulated sample, or 0 with no samples.
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest accumulated sample, or 0 with no samples.
func (a *Accumulator) Max() float64 { return a.max }

// Merge folds another accumulator into a (Chan et al. parallel combination),
// so per-shard accumulators can be reduced after a parallel profile pass.
func (a *Accumulator) Merge(b *Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	n := a.n + b.n
	delta := b.mean - a.mean
	mean := a.mean + delta*float64(b.n)/float64(n)
	m2 := a.m2 + b.m2 + delta*delta*float64(a.n)*float64(b.n)/float64(n)
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	a.n, a.mean, a.m2 = n, mean, m2
	a.sum += b.sum
}
