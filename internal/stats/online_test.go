package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAccumulatorMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		xs := make([]float64, n)
		var acc Accumulator
		for i := range xs {
			xs[i] = rng.NormFloat64()*50 + 10
			acc.Add(xs[i])
		}
		if acc.N() != n {
			t.Fatalf("N = %d, want %d", acc.N(), n)
		}
		if !almostEqual(acc.Mean(), Mean(xs), 1e-9) {
			t.Fatalf("Mean: online %g vs batch %g", acc.Mean(), Mean(xs))
		}
		if !almostEqual(acc.Variance(), Variance(xs), 1e-9) {
			t.Fatalf("Variance: online %g vs batch %g", acc.Variance(), Variance(xs))
		}
		if !almostEqual(acc.CoV(), CoV(xs), 1e-9) {
			t.Fatalf("CoV: online %g vs batch %g", acc.CoV(), CoV(xs))
		}
		if acc.Min() != Min(xs) || acc.Max() != Max(xs) {
			t.Fatalf("Min/Max: online (%g, %g) vs batch (%g, %g)", acc.Min(), acc.Max(), Min(xs), Max(xs))
		}
		if !almostEqual(acc.Sum(), Sum(xs), 1e-9) {
			t.Fatalf("Sum: online %g vs batch %g", acc.Sum(), Sum(xs))
		}
	}
}

func TestAccumulatorZeroValue(t *testing.T) {
	var acc Accumulator
	if acc.N() != 0 || acc.Mean() != 0 || acc.Variance() != 0 || acc.CoV() != 0 {
		t.Fatal("zero-value accumulator should report zeros")
	}
	acc.Add(5)
	if acc.N() != 1 || acc.Mean() != 5 || acc.Variance() != 0 {
		t.Fatalf("singleton accumulator: N=%d mean=%g var=%g", acc.N(), acc.Mean(), acc.Variance())
	}
	if acc.Min() != 5 || acc.Max() != 5 {
		t.Fatal("singleton min/max should equal the sample")
	}
}

func TestAccumulatorAddAll(t *testing.T) {
	var a, b Accumulator
	xs := []float64{1, 2, 3, 4, 5}
	a.AddAll(xs)
	for _, x := range xs {
		b.Add(x)
	}
	if a.Mean() != b.Mean() || a.Variance() != b.Variance() || a.N() != b.N() {
		t.Fatal("AddAll should match element-wise Add")
	}
}

func TestAccumulatorMergeEquivalentToSequential(t *testing.T) {
	f := func(left, right []float64) bool {
		clamp := func(vs []float64) []float64 {
			out := make([]float64, 0, len(vs))
			for _, v := range vs {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					continue
				}
				out = append(out, math.Mod(v, 1e6))
			}
			return out
		}
		l, r := clamp(left), clamp(right)
		var a, b, whole Accumulator
		a.AddAll(l)
		b.AddAll(r)
		whole.AddAll(l)
		whole.AddAll(r)
		a.Merge(&b)
		if a.N() != whole.N() {
			return false
		}
		if a.N() == 0 {
			return true
		}
		return almostEqual(a.Mean(), whole.Mean(), 1e-6) &&
			almostEqual(a.Variance(), whole.Variance(), 1e-6) &&
			a.Min() == whole.Min() && a.Max() == whole.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAccumulatorMergeEmptyCases(t *testing.T) {
	var a, b Accumulator
	a.Add(3)
	saved := a
	a.Merge(&b) // merging empty is a no-op
	if a != saved {
		t.Fatal("merge with empty accumulator changed state")
	}
	var c Accumulator
	c.Merge(&a) // merging into empty copies
	if c.N() != 1 || c.Mean() != 3 {
		t.Fatalf("merge into empty: N=%d mean=%g", c.N(), c.Mean())
	}
}
