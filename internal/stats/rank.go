package stats

import (
	"fmt"
	"math"
	"sort"
)

// Ranks returns the 1-based ranks of xs, assigning tied values their average
// rank (the convention Spearman correlation expects).
func Ranks(xs []float64) []float64 {
	type kv struct {
		v float64
		i int
	}
	s := make([]kv, len(xs))
	for i, v := range xs {
		s[i] = kv{v, i}
	}
	sort.Slice(s, func(a, b int) bool { return s[a].v < s[b].v })
	out := make([]float64, len(xs))
	for i := 0; i < len(s); {
		j := i
		for j+1 < len(s) && s[j+1].v == s[i].v {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[s[k].i] = avg
		}
		i = j + 1
	}
	return out
}

// Spearman returns the Spearman rank-correlation coefficient of two paired
// samples in [-1, 1]. Samples shorter than two elements, or with a constant
// side, correlate trivially and return 1. Mismatched lengths are an error.
func Spearman(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("stats: spearman: %d vs %d samples", len(a), len(b))
	}
	n := float64(len(a))
	if n < 2 {
		return 1, nil
	}
	ra, rb := Ranks(a), Ranks(b)
	var ma, mb float64
	for i := range ra {
		ma += ra[i]
		mb += rb[i]
	}
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range ra {
		da, db := ra[i]-ma, rb[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 1, nil
	}
	return cov / math.Sqrt(va*vb), nil
}

// PearsonCorrelation returns the linear correlation coefficient of two
// paired samples. Constant sides correlate trivially and return 1.
func PearsonCorrelation(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("stats: pearson: %d vs %d samples", len(a), len(b))
	}
	if len(a) < 2 {
		return 1, nil
	}
	ma, mb := Mean(a), Mean(b)
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 1, nil
	}
	return cov / math.Sqrt(va*vb), nil
}
