package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRanksBasics(t *testing.T) {
	got := Ranks([]float64{30, 10, 20})
	want := []float64{3, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v", got)
		}
	}
	// Ties share the average rank.
	got = Ranks([]float64{5, 5, 1})
	if got[0] != 2.5 || got[1] != 2.5 || got[2] != 1 {
		t.Fatalf("tied Ranks = %v", got)
	}
	if len(Ranks(nil)) != 0 {
		t.Fatal("empty Ranks")
	}
}

func TestSpearmanKnown(t *testing.T) {
	got, err := Spearman([]float64{1, 2, 3}, []float64{10, 20, 30})
	if err != nil || got != 1 {
		t.Fatalf("monotone Spearman = %g, %v", got, err)
	}
	got, err = Spearman([]float64{1, 2, 3}, []float64{30, 20, 10})
	if err != nil || got != -1 {
		t.Fatalf("inverted Spearman = %g, %v", got, err)
	}
	got, err = Spearman([]float64{5}, []float64{7})
	if err != nil || got != 1 {
		t.Fatalf("singleton Spearman = %g, %v", got, err)
	}
	got, err = Spearman([]float64{1, 1, 1}, []float64{1, 2, 3})
	if err != nil || got != 1 {
		t.Fatalf("constant-side Spearman = %g, %v", got, err)
	}
	if _, err := Spearman([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("want error for mismatched lengths")
	}
}

func TestSpearmanBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		rho, err := Spearman(a, b)
		if err != nil {
			return false
		}
		return rho >= -1-1e-9 && rho <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSpearmanInvariantUnderMonotoneTransform(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := make([]float64, 40)
	b := make([]float64, 40)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = a[i]*2 + rng.NormFloat64()*0.5
	}
	before, err := Spearman(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Apply a strictly increasing nonlinear transform to one side: ranks
	// (and thus Spearman) are unchanged.
	bt := make([]float64, len(b))
	for i, v := range b {
		bt[i] = math.Exp(v)
	}
	after, err := Spearman(a, bt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(before-after) > 1e-12 {
		t.Fatalf("Spearman changed under monotone transform: %g vs %g", before, after)
	}
}

func TestPearsonCorrelation(t *testing.T) {
	got, err := PearsonCorrelation([]float64{1, 2, 3}, []float64{2, 4, 6})
	if err != nil || math.Abs(got-1) > 1e-12 {
		t.Fatalf("perfect linear Pearson = %g, %v", got, err)
	}
	got, err = PearsonCorrelation([]float64{1, 2, 3}, []float64{6, 4, 2})
	if err != nil || math.Abs(got+1) > 1e-12 {
		t.Fatalf("anti-linear Pearson = %g, %v", got, err)
	}
	if _, err := PearsonCorrelation([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("want error for mismatched lengths")
	}
	got, err = PearsonCorrelation([]float64{7, 7}, []float64{1, 2})
	if err != nil || got != 1 {
		t.Fatalf("constant-side Pearson = %g, %v", got, err)
	}
}
